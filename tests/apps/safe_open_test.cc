// safe_open family tests: semantic guarantees of each Figure 4 variant,
// including directed races. The key property sweep lives in
// tests/props/toctou_property_test.cc; these cover per-variant behaviour.

#include <gtest/gtest.h>

#include "src/apps/programs.h"
#include "src/apps/rule_library.h"
#include "src/apps/safe_open.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::apps {
namespace {

using sim::Pid;
using sim::Proc;

class SafeOpenTest : public pf::testing::SimTest {
 protected:
  SafeOpenTest() { InstallPrograms(kernel()); }

  int64_t Call(int64_t (*fn)(Proc&, const std::string&), const std::string& path) {
    int64_t rv = 0;
    Pid pid = sched().Spawn({.name = "opener", .exe = sim::kBinTrue},
                            [&](Proc& p) { rv = fn(p, path); });
    sched().RunUntilExit(pid);
    return rv;
  }
};

TEST_F(SafeOpenTest, AllVariantsOpenPlainFiles) {
  for (auto fn : {&OpenPlain, &OpenNofollow, &OpenNolink, &OpenRace, &SafeOpen,
                  &SafeOpenPF}) {
    EXPECT_GE(Call(fn, "/etc/passwd"), 0);
  }
}

TEST_F(SafeOpenTest, VariantsDifferOnFinalSymlink) {
  kernel().MkSymlinkAt("/tmp/lnk", "/etc/passwd", sim::kMalloryUid, sim::kMalloryUid,
                       "tmp_t");
  EXPECT_GE(Call(&OpenPlain, "/tmp/lnk"), 0) << "no defense follows the link";
  EXPECT_EQ(Call(&OpenNofollow, "/tmp/lnk"), sim::SysError(sim::Err::kLoop));
  EXPECT_EQ(Call(&OpenNolink, "/tmp/lnk"), sim::SysError(sim::Err::kLoop));
  EXPECT_EQ(Call(&OpenRace, "/tmp/lnk"), sim::SysError(sim::Err::kLoop));
  EXPECT_EQ(Call(&SafeOpen, "/tmp/lnk"), sim::SysError(sim::Err::kLoop));
}

TEST_F(SafeOpenTest, OnlySafeOpenCatchesIntermediateForeignLink) {
  // A symlinked *directory* component owned by the adversary: the lstat-
  // based final-component checks are blind to it (Chari et al.'s point).
  kernel().MkDirAt("/srv", 0755, 0, 0, "var_t");
  kernel().MkDirAt("/srv/app", 0755, 0, 0, "var_t");
  kernel().MkFileAt("/srv/app/config", "x", 0644, 0, 0, "var_t");
  kernel().MkSymlinkAt("/tmp/appdir", "/srv/app", sim::kMalloryUid, sim::kMalloryUid,
                       "tmp_t");
  EXPECT_GE(Call(&OpenNolink, "/tmp/appdir/config"), 0) << "final-only check passes";
  EXPECT_GE(Call(&OpenRace, "/tmp/appdir/config"), 0) << "final-only check passes";
  EXPECT_LT(Call(&SafeOpen, "/tmp/appdir/config"), 0)
      << "per-component check sees the adversary's directory link";
}

TEST_F(SafeOpenTest, SafeOpenAllowsAdversaryLinkToOwnFile) {
  // Chari policy: an adversary may link to *their own* files.
  kernel().MkFileAt("/tmp/mallorys-data", "m", 0644, sim::kMalloryUid, sim::kMalloryUid,
                    "tmp_t");
  kernel().MkSymlinkAt("/tmp/mallorys-link", "/tmp/mallorys-data", sim::kMalloryUid,
                       sim::kMalloryUid, "tmp_t");
  EXPECT_GE(Call(&SafeOpen, "/tmp/mallorys-link"), 0);
}

TEST_F(SafeOpenTest, SafeOpenPFBlocksForeignLinkOnlyWithRules) {
  kernel().MkSymlinkAt("/tmp/lnk2", "/etc/passwd", sim::kMalloryUid, sim::kMalloryUid,
                       "tmp_t");
  EXPECT_GE(Call(&SafeOpenPF, "/tmp/lnk2"), 0) << "without rules it is a plain open";

  core::Engine* engine = core::InstallProcessFirewall(kernel());
  core::Pftables pft(engine);
  ASSERT_TRUE(pft.ExecAll(RuleLibrary::SafeOpenRules()).ok());
  EXPECT_EQ(Call(&SafeOpenPF, "/tmp/lnk2"), sim::SysError(sim::Err::kAcces));
  // Adversary's link to their own file still passes (owner match).
  kernel().MkFileAt("/tmp/own", "d", 0644, sim::kMalloryUid, sim::kMalloryUid, "tmp_t");
  kernel().MkSymlinkAt("/tmp/ownlnk", "/tmp/own", sim::kMalloryUid, sim::kMalloryUid,
                       "tmp_t");
  EXPECT_GE(Call(&SafeOpenPF, "/tmp/ownlnk"), 0);
}

TEST_F(SafeOpenTest, OpenRaceDetectsSwapAfterOpen) {
  kernel().MkFileAt("/tmp/race", "v1", 0666, sim::kMalloryUid, sim::kMalloryUid, "tmp_t");
  int64_t rv = 1;
  Pid victim = sched().Spawn({.name = "victim", .exe = sim::kBinTrue}, [&](Proc& p) {
    rv = OpenRace(p, "/tmp/race");
  });
  // Swap the file for a symlink between the victim's lstat (syscall 1 after
  // spawn) and open. (A plain unlink+recreate would recycle the inode number
  // and evade this very check — the cryogenic-sleep weakness, covered
  // elsewhere.) OpenRace's post-open fstat must report the race.
  ASSERT_TRUE(sched().StepSyscalls(victim, 1));  // the lstat completed
  Pid mallory = sched().Spawn({.name = "mallory", .cred = UserCred(sim::kMalloryUid)},
                              [](Proc& p) {
    p.Unlink("/tmp/race");
    p.Symlink("/etc/passwd", "/tmp/race");
  });
  sched().RunUntilExit(mallory);
  sched().RunUntilExit(victim);
  EXPECT_EQ(rv, sim::SysError(sim::Err::kAgain)) << "identity mismatch detected";
}

TEST_F(SafeOpenTest, MissingFileErrorsPropagate) {
  EXPECT_EQ(Call(&SafeOpen, "/no/such/file"), sim::SysError(sim::Err::kNoEnt));
  EXPECT_EQ(Call(&OpenRace, "/no/such/file"), sim::SysError(sim::Err::kNoEnt));
}

}  // namespace
}  // namespace pf::apps
