// Web server model tests: request mapping, traversal filtering,
// SymLinksIfOwnerMatch program checks, authentication, access logging.

#include <gtest/gtest.h>

#include "src/apps/programs.h"
#include "src/apps/webserver.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::apps {
namespace {

using sim::Pid;
using sim::Proc;

class WebserverTest : public pf::testing::SimTest {
 protected:
  WebserverTest() { InstallPrograms(kernel()); }

  int Serve(const WebConfig& cfg, const std::string& url, std::string* body = nullptr) {
    int status = 0;
    sim::SpawnOpts opts;
    opts.name = "apache2";
    opts.exe = sim::kApache;
    opts.cred.sid = kernel().labels().Intern("httpd_t");
    Pid pid = sched().Spawn(opts, [&](Proc& p) {
      Webserver server(cfg);
      std::string content;
      status = server.HandleRequest(p, url, &content);
      if (body != nullptr) {
        *body = content;
      }
    });
    sched().RunUntilExit(pid);
    return status;
  }
};

TEST_F(WebserverTest, ServesContentFromDocroot) {
  std::string body;
  EXPECT_EQ(Serve({}, "/index.html", &body), 200);
  EXPECT_EQ(body, "<html>home</html>");
}

TEST_F(WebserverTest, MissingFileIs404) { EXPECT_EQ(Serve({}, "/nope.html"), 404); }

TEST_F(WebserverTest, TraversalFilteredByDefault) {
  EXPECT_EQ(Serve({}, "/../../etc/passwd"), 403);
}

TEST_F(WebserverTest, TraversalEscapesWhenFilterDisabled) {
  WebConfig cfg;
  cfg.filter_traversal = false;
  std::string body;
  EXPECT_EQ(Serve(cfg, "/../../etc/passwd", &body), 200)
      << "the vulnerable configuration";
  EXPECT_NE(body.find("root:"), std::string::npos);
}

TEST_F(WebserverTest, OwnerMatchAllowsSameOwnerLink) {
  kernel().MkFileAt("/var/www/real.html", "<html>r</html>", 0644, sim::kWebUid,
                    sim::kWebUid, "httpd_sys_content_t");
  kernel().MkSymlinkAt("/var/www/alias.html", "/var/www/real.html", sim::kWebUid,
                       sim::kWebUid, "httpd_sys_content_t");
  WebConfig cfg;
  cfg.symlinks_if_owner_match = true;
  EXPECT_EQ(Serve(cfg, "/alias.html"), 200);
}

TEST_F(WebserverTest, OwnerMatchRejectsForeignLink) {
  kernel().MkSymlinkAt("/var/www/steal.html", "/etc/passwd", sim::kMalloryUid,
                       sim::kMalloryUid, "httpd_sys_content_t");
  WebConfig cfg;
  cfg.symlinks_if_owner_match = true;
  EXPECT_EQ(Serve(cfg, "/steal.html"), 403);
  // Without the option the link is followed (the vulnerable default).
  EXPECT_EQ(Serve({}, "/steal.html"), 200);
}

TEST_F(WebserverTest, AuthenticationReadsPasswd) {
  sim::SpawnOpts opts;
  opts.exe = sim::kApache;
  Pid pid = sched().Spawn(opts, [](Proc& p) {
    Webserver server(WebConfig{});
    EXPECT_TRUE(server.Authenticate(p, "alice"));
    EXPECT_FALSE(server.Authenticate(p, "eve"));
  });
  sched().RunUntilExit(pid);
}

TEST_F(WebserverTest, AccessLogAppends) {
  WebConfig cfg;
  cfg.access_log = true;
  EXPECT_EQ(Serve(cfg, "/index.html"), 200);
  EXPECT_EQ(Serve(cfg, "/page0.html"), 200);
  auto log = kernel().LookupNoHooks("/var/log/apache-access.log");
  ASSERT_NE(log, nullptr);
  EXPECT_NE(log->data.find("GET /index.html 200"), std::string::npos);
  EXPECT_NE(log->data.find("GET /page0.html 200"), std::string::npos);
}

TEST_F(WebserverTest, RequestWorkDoesNotChangeSemantics) {
  WebConfig cfg;
  cfg.request_work = 10;
  std::string body;
  EXPECT_EQ(Serve(cfg, "/index.html", &body), 200);
  EXPECT_EQ(body, "<html>home</html>");
}

}  // namespace
}  // namespace pf::apps
