// Interpreter runtimes and D-Bus model tests: include resolution, module
// search order, interpreter frames visible to the kernel unwinder, daemon
// bind/chmod sequencing, libdbus address-variable handling.

#include <gtest/gtest.h>

#include "src/apps/dbus.h"
#include "src/apps/interp.h"
#include "src/apps/programs.h"
#include "src/core/unwind.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::apps {
namespace {

using sim::Pid;
using sim::Proc;

class InterpTest : public pf::testing::SimTest {
 protected:
  InterpTest() { InstallPrograms(kernel()); }
};

TEST_F(InterpTest, PhpIncludeResolvesRelativeToScriptDir) {
  Pid pid = sched().Spawn({.exe = sim::kPhp}, [](Proc& p) {
    PhpInterp php(p, "/var/www/app/index.php");
    auto body = php.Include("gcalendar.php", 5);
    ASSERT_TRUE(body.has_value());
    EXPECT_NE(body->find("component"), std::string::npos);
  });
  sched().RunUntilExit(pid);
}

TEST_F(InterpTest, PhpIncludeAbsolutePath) {
  Pid pid = sched().Spawn({.exe = sim::kPhp}, [](Proc& p) {
    PhpInterp php(p, "/var/www/app/index.php");
    auto body = php.Include("/var/www/app/index.php", 5);
    EXPECT_TRUE(body.has_value());
    EXPECT_FALSE(php.Include("/var/www/app/missing.php", 6).has_value());
  });
  sched().RunUntilExit(pid);
}

TEST_F(InterpTest, PhpFramesVisibleToKernelUnwinder) {
  Pid pid = sched().Spawn({.exe = sim::kPhp}, [](Proc& p) {
    PhpInterp php(p, "/var/www/app/index.php");
    // During include the interpreter pushes a frame; emulate mid-include
    // inspection by nesting.
    sim::InterpFrame frame(p, sim::InterpLang::kPhp, "/var/www/app/index.php", 23);
    core::InterpUnwindResult res = core::UnwindInterpStack(p.task());
    ASSERT_EQ(res.status, core::UnwindStatus::kOk);
    ASSERT_GE(res.frames.size(), 2u);
    EXPECT_EQ(res.frames[0].script_path, "/var/www/app/index.php");
    EXPECT_EQ(res.frames[0].line, 23u);
  });
  sched().RunUntilExit(pid);
}

TEST_F(InterpTest, PythonSearchOrderPrefersFirstHit) {
  Pid pid = sched().Spawn({.exe = sim::kPython}, [](Proc& p) {
    PythonInterp py(p, "/usr/bin/dstat");
    EXPECT_EQ(py.ImportModule("os", 3), "/usr/lib/python2.7/os.py");
    EXPECT_EQ(py.ImportModule("nonexistent", 4), "");
  });
  sched().RunUntilExit(pid);
}

TEST_F(InterpTest, PythonCwdEntryShadowsStdlib) {
  kernel().MkFileAt("/tmp/os.py", "trojan", 0644, sim::kMalloryUid, sim::kMalloryUid,
                    "tmp_t");
  Pid pid = sched().Spawn({.exe = sim::kPython, .cwd = "/tmp"}, [](Proc& p) {
    PythonInterp py(p, "");
    // sys.path[0] is "." for script-less invocation.
    EXPECT_EQ(py.ImportModule("os", 3), "./os.py") << "the E2 hazard";
  });
  sched().RunUntilExit(pid);
}

class DbusTest : public pf::testing::SimTest {
 protected:
  DbusTest() { InstallPrograms(kernel()); }
};

TEST_F(DbusTest, PublishSocketCreatesListeningSocketWithFinalMode) {
  sim::SpawnOpts opts;
  opts.name = "dbus-daemon";
  opts.exe = sim::kDbusDaemon;
  Pid pid = sched().Spawn(opts, [](Proc& p) {
    EXPECT_EQ(DbusDaemon::PublishSocket(p, "/var/run/dbus/test_socket", 0777), 0);
  });
  sched().RunUntilExit(pid);
  auto sock = kernel().LookupNoHooks("/var/run/dbus/test_socket");
  ASSERT_NE(sock, nullptr);
  EXPECT_TRUE(sock->IsSocket());
  EXPECT_TRUE(sock->socket_listening);
  EXPECT_EQ(sock->mode & sim::kModePermMask, 0777u);
}

TEST_F(DbusTest, ConnectUsesDefaultPathWithoutEnv) {
  sim::SpawnOpts daemon_opts;
  daemon_opts.name = "dbus-daemon";
  daemon_opts.exe = sim::kDbusDaemon;
  Pid daemon = sched().Spawn(daemon_opts, [](Proc& p) {
    DbusDaemon::PublishSocket(p, kSystemBusPath);
  });
  sched().RunUntilExit(daemon);

  sim::SpawnOpts client_opts;
  client_opts.name = "client";
  client_opts.exe = sim::kSuidHelper;
  Pid client = sched().Spawn(client_opts, [](Proc& p) {
    int lib = static_cast<int>(p.Open(sim::kLibDbus, sim::kORdOnly));
    p.MmapFd(lib);
    p.Close(lib);
    int64_t fd = Libdbus::ConnectSystemBus(p);
    ASSERT_GE(fd, 0);
    auto file = p.task().fds.Get(static_cast<int>(fd));
    EXPECT_TRUE(file->connected_socket);
  });
  sched().RunUntilExit(client);
}

TEST_F(DbusTest, ConnectFailsCleanlyWhenNoBus) {
  sim::SpawnOpts opts;
  opts.exe = sim::kSuidHelper;
  Pid client = sched().Spawn(opts, [](Proc& p) {
    int lib = static_cast<int>(p.Open(sim::kLibDbus, sim::kORdOnly));
    p.MmapFd(lib);
    p.Close(lib);
    EXPECT_LT(Libdbus::ConnectSystemBus(p), 0);
    EXPECT_EQ(p.task().fds.open_count(), 0u) << "no leaked descriptors";
  });
  sched().RunUntilExit(client);
}

}  // namespace
}  // namespace pf::apps
