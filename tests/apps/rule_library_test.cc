// Rule library unit tests: every shipped group installs cleanly on the base
// image, templates expand to valid rules, and the default base is coherent.

#include <gtest/gtest.h>

#include "src/apps/entrypoints.h"
#include "src/apps/rule_library.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::apps {
namespace {

class RuleLibraryTest : public pf::testing::SimTest {
 protected:
  RuleLibraryTest() : engine_(core::InstallProcessFirewall(kernel())), pft_(engine_) {}

  core::Engine* engine_;
  core::Pftables pft_;
};

TEST_F(RuleLibraryTest, EveryGroupInstallsCleanly) {
  core::Status s = pft_.ExecAll(RuleLibrary::RuntimeAnalysisRules());
  EXPECT_TRUE(s.ok()) << s.message();
  s = pft_.ExecAll(RuleLibrary::KnownVulnerabilityRules());
  EXPECT_TRUE(s.ok()) << s.message();
  s = pft_.Exec(RuleLibrary::ApacheSymlinkOwnerRule());
  EXPECT_TRUE(s.ok()) << s.message();
  s = pft_.ExecAll(RuleLibrary::SignalRaceRules());
  EXPECT_TRUE(s.ok()) << s.message();
  s = pft_.ExecAll(RuleLibrary::SafeOpenRules());
  EXPECT_TRUE(s.ok()) << s.message();
}

TEST_F(RuleLibraryTest, DefaultRuleBaseIsTheUnion) {
  auto base = RuleLibrary::DefaultRuleBase();
  size_t expected = RuleLibrary::RuntimeAnalysisRules().size() +
                    RuleLibrary::KnownVulnerabilityRules().size() + 1 +
                    RuleLibrary::SignalRaceRules().size() +
                    RuleLibrary::SafeOpenRules().size();
  EXPECT_EQ(base.size(), expected);
  core::Status s = pft_.ExecAll(base);
  EXPECT_TRUE(s.ok()) << s.message();
  // 12 paper rules + generalizations, minus the two non-rule commands (-N).
  EXPECT_GT(engine_->ruleset().total_rules(), 10u);
}

TEST_F(RuleLibraryTest, PaperEntrypointValuesAreVerbatim) {
  auto r = RuleLibrary::RuntimeAnalysisRules();
  EXPECT_NE(r[0].find("-i 0x596b"), std::string::npos);   // R1 ld.so
  EXPECT_NE(r[1].find("-i 0x34f05"), std::string::npos);  // R2 python
  EXPECT_NE(r[2].find("-i 0x39231"), std::string::npos);  // R3 libdbus
  EXPECT_NE(r[3].find("-i 0x27ad2c"), std::string::npos); // R4 php
  EXPECT_NE(RuleLibrary::ApacheSymlinkOwnerRule().find("-i 0x2d637"),
            std::string::npos);                           // R8 apache
}

TEST_F(RuleLibraryTest, TemplateT1Expansion) {
  std::string rule = RuleLibrary::TemplateT1("/bin/true", 0xabc, "{lib_t|usr_t}",
                                             "FILE_OPEN");
  EXPECT_NE(rule.find("-i 0xabc"), std::string::npos);
  EXPECT_NE(rule.find("-p /bin/true"), std::string::npos);
  EXPECT_NE(rule.find("-d ~{lib_t|usr_t}"), std::string::npos);
  EXPECT_NE(rule.find("-j DROP"), std::string::npos);
  EXPECT_TRUE(pft_.Exec(rule).ok());
}

TEST_F(RuleLibraryTest, TemplateT2Expansion) {
  auto rules = RuleLibrary::TemplateT2("/bin/true", 0x10, 0x20, "FILE_GETATTR",
                                       "FILE_OPEN", "mykey");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_NE(rules[0].find("-i 0x10"), std::string::npos);
  EXPECT_NE(rules[0].find("STATE --set --key mykey --value C_INO"), std::string::npos);
  EXPECT_NE(rules[1].find("-i 0x20"), std::string::npos);
  EXPECT_NE(rules[1].find("--cmp C_INO --nequal -j DROP"), std::string::npos);
  EXPECT_TRUE(pft_.ExecAll(rules).ok());
}

TEST_F(RuleLibraryTest, EntrypointConstantsMatchAppsUsage) {
  // The library's hex literals must equal the constants the apps push
  // frames with — otherwise the shipped rules silently never match.
  EXPECT_EQ(kLdsoOpenLibrary, 0x596bu);
  EXPECT_EQ(kPythonImport, 0x34f05u);
  EXPECT_EQ(kLibdbusConnect, 0x39231u);
  EXPECT_EQ(kPhpInclude, 0x27ad2cu);
  EXPECT_EQ(kDbusBind, 0x3c750u);
  EXPECT_EQ(kDbusSetattr, 0x3c786u);
  EXPECT_EQ(kJavaConfigOpen, 0x5d7eu);
  EXPECT_EQ(kApacheLinkRead, 0x2d637u);
}

}  // namespace
}  // namespace pf::apps
