// One scenario per attack class of paper Tables 1/2, each run vulnerable
// and protected — the taxonomy as an executable matrix. (The CVE-specific
// exploits live in exploits_test.cc; these are the *class-generic* shapes,
// including two not covered by Table 4: executable PATH hijacking and file
// squatting.)

#include <gtest/gtest.h>

#include "src/apps/entrypoints.h"
#include "src/apps/misc.h"
#include "src/apps/programs.h"
#include "src/apps/rule_library.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::apps {
namespace {

using sim::Pid;
using sim::Proc;

class AttackClassTest : public pf::testing::SimTest {
 protected:
  AttackClassTest() : engine_(core::InstallProcessFirewall(kernel())), pft_(engine_) {
    InstallPrograms(kernel());
  }

  core::Engine* engine_;
  core::Pftables pft_;
};

// --- Untrusted Search Path (CWE-426): PATH hijacking of a shell command ----

TEST_F(AttackClassTest, PathHijackVulnerableByDefault) {
  kernel().MkDirAt("/tmp/bin", 0777, sim::kMalloryUid, sim::kMalloryUid, "tmp_t");
  kernel().MkFileAt("/tmp/bin/backup-tool", "\x7f" "ELF", 0755, sim::kMalloryUid,
                    sim::kMalloryUid, "tmp_t");
  Pid pid = sched().Spawn(
      {.name = "sh", .exe = sim::kBinSh, .env = {{"PATH", "/tmp/bin:/bin:/usr/bin"}}},
      [](Proc& p) {
        std::string resolved = ShellResolveInPath(p, "backup-tool");
        p.Exit(resolved == "/tmp/bin/backup-tool" ? 1 : 0);
      });
  EXPECT_EQ(sched().RunUntilExit(pid), 1) << "the Trojan resolves first";
}

TEST_F(AttackClassTest, PathHijackBlockedByShellExecRule) {
  // Restrict the shell's exec-probing call site to TCB resources.
  ASSERT_TRUE(pft_.Exec(RuleLibrary::TemplateT1(sim::kBinSh, kShellExec, "{SYSHIGH}",
                                                "FILE_GETATTR"))
                  .ok());
  ASSERT_TRUE(pft_.Exec(RuleLibrary::TemplateT1(sim::kBinSh, kShellExec, "{SYSHIGH}",
                                                "FILE_EXEC"))
                  .ok());
  kernel().MkDirAt("/tmp/bin", 0777, sim::kMalloryUid, sim::kMalloryUid, "tmp_t");
  kernel().MkFileAt("/tmp/bin/true", "\x7f" "ELF", 0755, sim::kMalloryUid,
                    sim::kMalloryUid, "tmp_t");
  Pid pid = sched().Spawn(
      {.name = "sh", .exe = sim::kBinSh, .env = {{"PATH", "/tmp/bin:/bin:/usr/bin"}}},
      [](Proc& p) {
        std::string resolved = ShellResolveInPath(p, "true");
        // The Trojan probe is denied; resolution falls through to /bin.
        p.Exit(resolved == "/bin/true" ? 0 : 1);
      });
  EXPECT_EQ(sched().RunUntilExit(pid), 0);
}

// --- File squat (CWE-283): the victim "creates" a file the adversary
// already planted --------------------------------------------------------------

TEST_F(AttackClassTest, FileSquatVulnerableByDefault) {
  Pid mallory = sched().Spawn({.name = "mallory", .cred = UserCred(sim::kMalloryUid)},
                              [](Proc& p) {
    int64_t fd = p.Open("/tmp/daemon.state", sim::kOWrOnly | sim::kOCreat, 0777);
    p.Write(static_cast<int>(fd), "forged-state");
    p.Close(static_cast<int>(fd));
  });
  sched().RunUntilExit(mallory);
  std::string state;
  Pid victim = sched().Spawn({.name = "daemon", .exe = sim::kBinTrue}, [&](Proc& p) {
    sim::UserFrame site(p, sim::kBinTrue, 0x5151);
    int64_t fd = p.Open("/tmp/daemon.state", sim::kORdWr | sim::kOCreat, 0600);
    ASSERT_GE(fd, 0);
    p.Read(static_cast<int>(fd), &state, 4096);
  });
  sched().RunUntilExit(victim);
  EXPECT_EQ(state, "forged-state") << "the daemon trusted the squatted file";
}

TEST_F(AttackClassTest, FileSquatBlockedByOwnerInvariant) {
  // At this creation call site, the opened file must belong to the caller:
  // drop when C_DAC_OWNER != C_EUID (squatted files are adversary-owned).
  ASSERT_TRUE(pft_.Exec("pftables -p /bin/true -i 0x5151 -o FILE_OPEN -m COMPARE "
                        "--v1 C_DAC_OWNER --v2 C_EUID --nequal -j DROP")
                  .ok());
  Pid mallory = sched().Spawn({.name = "mallory", .cred = UserCred(sim::kMalloryUid)},
                              [](Proc& p) {
    int64_t fd = p.Open("/tmp/daemon.state", sim::kOWrOnly | sim::kOCreat, 0777);
    p.Write(static_cast<int>(fd), "forged-state");
    p.Close(static_cast<int>(fd));
  });
  sched().RunUntilExit(mallory);
  Pid victim = sched().Spawn({.name = "daemon", .exe = sim::kBinTrue}, [&](Proc& p) {
    sim::UserFrame site(p, sim::kBinTrue, 0x5151);
    EXPECT_EQ(p.Open("/tmp/daemon.state", sim::kORdWr | sim::kOCreat, 0600),
              sim::SysError(sim::Err::kAcces))
        << "squatted (foreign-owned) file denied";
    // Freshly created files are the caller's own: allowed.
    EXPECT_GE(p.Open("/tmp/daemon.fresh", sim::kORdWr | sim::kOCreat, 0600), 0);
  });
  sched().RunUntilExit(victim);
}

// --- IPC squat: connecting to an adversary's socket -------------------------

TEST_F(AttackClassTest, IpcSquatVulnerableThenBlocked) {
  // The adversary squats the well-known socket name before the real daemon.
  Pid mallory = sched().Spawn({.name = "mallory", .cred = UserCred(sim::kMalloryUid)},
                              [](Proc& p) {
    int64_t fd = p.Socket();
    p.Bind(static_cast<int>(fd), "/tmp/app.sock", 0777);
    p.Listen(static_cast<int>(fd));
    p.Checkpoint("squatted");
    p.Pause();
  });
  ASSERT_TRUE(sched().RunUntilLabel(mallory, "squatted"));

  auto connect_once = [&](int64_t* rv) {
    Pid client = sched().Spawn({.name = "client", .exe = sim::kBinTrue}, [&](Proc& p) {
      sim::UserFrame site(p, sim::kBinTrue, 0x6161);
      int64_t fd = p.Socket();
      *rv = p.Connect(static_cast<int>(fd), "/tmp/app.sock");
    });
    sched().RunUntilExit(client);
  };
  int64_t rv = -1;
  connect_once(&rv);
  EXPECT_EQ(rv, 0) << "victim happily talks to the adversary's socket";

  ASSERT_TRUE(pft_.Exec("pftables -p /bin/true -i 0x6161 -o SOCKET_CONNECT "
                        "-d ~{SYSHIGH} -j DROP")
                  .ok());
  connect_once(&rv);
  EXPECT_EQ(rv, sim::SysError(sim::Err::kAcces))
      << "connects restricted to TCB-labeled sockets";
  sched().Wake(mallory);
  sched().RunUntilExit(mallory);
}

// --- Directory traversal (CWE-22) generic shape ------------------------------

TEST_F(AttackClassTest, TraversalBlockedByServeRule) {
  ASSERT_TRUE(pft_.Exec(RuleLibrary::TemplateT1(
                            sim::kBinTrue, 0x7171,
                            "{httpd_sys_content_t|httpd_user_content_t}", "FILE_OPEN"))
                  .ok());
  Pid victim = sched().Spawn({.name = "server", .exe = sim::kBinTrue}, [&](Proc& p) {
    sim::UserFrame site(p, sim::kBinTrue, 0x7171);
    EXPECT_GE(p.Open("/var/www/index.html", sim::kORdOnly), 0);
    EXPECT_EQ(p.Open("/var/www/../../etc/passwd", sim::kORdOnly),
              sim::SysError(sim::Err::kAcces))
        << "the escaped path resolves to etc_t and is dropped";
  });
  sched().RunUntilExit(victim);
}

}  // namespace
}  // namespace pf::apps
