// Dynamic linker model tests: search path construction (env, RUNPATH,
// defaults), setid environment filtering, fallback on blocked candidates.

#include <gtest/gtest.h>

#include "src/apps/entrypoints.h"
#include "src/apps/ldso.h"
#include "src/apps/programs.h"
#include "src/apps/rule_library.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::apps {
namespace {

using sim::Pid;
using sim::Proc;

class LdsoTest : public pf::testing::SimTest {
 protected:
  LdsoTest() { InstallPrograms(kernel()); }

  int RunAs(sim::Cred cred, std::map<std::string, std::string> env,
            std::function<void(Proc&)> body, const std::string& exe = sim::kBinTrue) {
    sim::SpawnOpts opts;
    opts.name = "prog";
    opts.cred = cred;
    opts.exe = exe;
    opts.env = std::move(env);
    Pid pid = sched().Spawn(opts, std::move(body));
    return sched().RunUntilExit(pid);
  }
};

TEST_F(LdsoTest, DefaultSearchPathIsLibThenUsrLib) {
  RunAs({}, {}, [](Proc& p) {
    auto dirs = Ldso::BuildSearchPath(p);
    ASSERT_GE(dirs.size(), 2u);
    EXPECT_EQ(dirs[dirs.size() - 2], "/lib");
    EXPECT_EQ(dirs.back(), "/usr/lib");
  });
}

TEST_F(LdsoTest, LdLibraryPathComesFirst) {
  RunAs({}, {{"LD_LIBRARY_PATH", "/opt/weird:/tmp/libs"}}, [](Proc& p) {
    auto dirs = Ldso::BuildSearchPath(p);
    ASSERT_GE(dirs.size(), 4u);
    EXPECT_EQ(dirs[0], "/opt/weird");
    EXPECT_EQ(dirs[1], "/tmp/libs");
  });
}

TEST_F(LdsoTest, SetidProcessesIgnoreAndScrubEnvironment) {
  sim::Cred setid;
  setid.uid = sim::kMalloryUid;
  setid.gid = sim::kMalloryUid;
  setid.euid = 0;  // setuid root
  RunAs(setid, {{"LD_LIBRARY_PATH", "/tmp/evil"}, {"LD_PRELOAD", "/tmp/evil/pre.so"}},
        [](Proc& p) {
          auto dirs = Ldso::BuildSearchPath(p);
          for (const auto& d : dirs) {
            EXPECT_NE(d, "/tmp/evil");
          }
          EXPECT_FALSE(p.HasEnv("LD_LIBRARY_PATH")) << "Figure 1(b): unsetenv";
          EXPECT_FALSE(p.HasEnv("LD_PRELOAD"));
        });
}

TEST_F(LdsoTest, RunpathIsSearchedBeforeDefaults) {
  auto exe = kernel().LookupNoHooks(sim::kBinTrue);
  exe->binary->runpath = {"/opt/vendor"};
  kernel().MkDirAt("/opt", 0755, 0, 0, "usr_t");
  kernel().MkDirAt("/opt/vendor", 0755, 0, 0, "usr_t");
  kernel().MkFileAt("/opt/vendor/libc-2.15.so", "\x7f" "ELF", 0644, 0, 0, "lib_t");
  RunAs({}, {}, [](Proc& p) {
    EXPECT_EQ(Ldso::LoadLibrary(p, "libc-2.15.so"), "/opt/vendor/libc-2.15.so");
  });
  exe->binary->runpath.clear();
}

TEST_F(LdsoTest, LinkAllLoadsEveryNeededLibrary) {
  RunAs({}, {}, [](Proc& p) {
    LinkResult res = Ldso::LinkAll(p);
    ASSERT_TRUE(res.ok);
    ASSERT_EQ(res.loaded.size(), 1u);  // /bin/true needs libc
    EXPECT_EQ(res.loaded[0].second, "/lib/libc-2.15.so");
    EXPECT_NE(p.task().mm.FindMappingByPath("/lib/libc-2.15.so"), nullptr);
  });
}

TEST_F(LdsoTest, MissingLibraryReportsFailure) {
  auto exe = kernel().LookupNoHooks(sim::kBinTrue);
  exe->binary->needed.push_back("libmissing.so");
  RunAs({}, {}, [](Proc& p) {
    LinkResult res = Ldso::LinkAll(p);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.failed_library, "libmissing.so");
  });
  exe->binary->needed.pop_back();
}

TEST_F(LdsoTest, AbsolutePathNeededBypassesSearch) {
  RunAs({}, {{"LD_LIBRARY_PATH", "/tmp"}}, [](Proc& p) {
    EXPECT_EQ(Ldso::LoadLibrary(p, "/lib/libdbus-1.so.3"), "/lib/libdbus-1.so.3");
  });
}

TEST_F(LdsoTest, BlockedCandidateFallsThroughToTrustedDirectory) {
  // With rule R1 installed, a planted library in an untrusted dir is
  // skipped and the trusted one loads — graceful degradation, not failure.
  core::Engine* engine = core::InstallProcessFirewall(kernel());
  core::Pftables pft(engine);
  ASSERT_TRUE(pft.ExecAll(RuleLibrary::RuntimeAnalysisRules()).ok());
  kernel().MkFileAt("/tmp/libc-2.15.so", "evil", 0755, sim::kMalloryUid,
                    sim::kMalloryUid, "tmp_t");
  RunAs({}, {{"LD_LIBRARY_PATH", "/tmp"}}, [](Proc& p) {
    EXPECT_EQ(Ldso::LoadLibrary(p, "libc-2.15.so"), "/lib/libc-2.15.so");
  });
}

}  // namespace
}  // namespace pf::apps
