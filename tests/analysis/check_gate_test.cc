// The commit-time analysis gate: `pftables --check[=error|warn]` and checked
// Restore(). kError must behave transactionally — a rejected command leaves
// the rule base, its indexes, and the published generation exactly as they
// were — while kWarn commits and only reports. The default path must not
// run the analyzer at all (its cost belongs to opted-in commits only).

#include <gtest/gtest.h>

#include <string>

#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::core {
namespace {

class CheckGateTest : public pf::testing::SimTest {
 protected:
  CheckGateTest() : engine_(InstallProcessFirewall(kernel())), pft_(engine_) {}

  Engine* engine_;
  Pftables pft_;
};

TEST_F(CheckGateTest, ErrorModeRejectsAndRollsBack) {
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_READ -j DROP").ok());
  const std::string before = pft_.Save();
  const uint64_t gen = engine_->ruleset_generation();

  // Appending a strictly narrower DROP after the wildcard DROP is a
  // shadowed-rule error; the gate must refuse it.
  Status s = pft_.Exec("pftables --check=error -A input -o FILE_READ -d shadow_t -j DROP");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("shadowed-rule"), std::string::npos) << s.message();

  // Transactional: same rules, same serialization, no new generation.
  EXPECT_EQ(pft_.Save(), before);
  EXPECT_EQ(engine_->ruleset_generation(), gen);
  EXPECT_EQ(engine_->ruleset().filter().Find("input")->size(), 1u);
  EXPECT_TRUE(pft_.last_check().HasErrors());
}

TEST_F(CheckGateTest, BareCheckFlagMeansErrorMode) {
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_READ -j DROP").ok());
  Status s = pft_.Exec("pftables --check -A input -o FILE_READ -d shadow_t -j DROP");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(engine_->ruleset().filter().Find("input")->size(), 1u);
}

TEST_F(CheckGateTest, WarnModeCommitsAndLogs) {
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_READ -j DROP").ok());
  const uint64_t gen = engine_->ruleset_generation();

  Status s = pft_.Exec("pftables --check=warn -A input -o FILE_READ -d shadow_t -j DROP");
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(engine_->ruleset().filter().Find("input")->size(), 2u);
  EXPECT_GT(engine_->ruleset_generation(), gen);
  EXPECT_TRUE(pft_.last_check().HasErrors());  // reported, not enforced
}

TEST_F(CheckGateTest, CleanCommandPassesErrorMode) {
  Status s = pft_.Exec("pftables --check=error -A input -o FILE_READ -d shadow_t -j DROP");
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(engine_->ruleset().filter().Find("input")->size(), 1u);
  EXPECT_FALSE(pft_.last_check().HasErrors());
}

TEST_F(CheckGateTest, DefaultModeSkipsAnalysisEntirely) {
  // Without --check, even a defective append succeeds and no report is
  // produced — identical to the pre-analyzer behavior.
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_READ -j DROP").ok());
  Status s = pft_.Exec("pftables -A input -o FILE_READ -d shadow_t -j DROP");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(engine_->ruleset().filter().Find("input")->size(), 2u);
  EXPECT_TRUE(pft_.last_check().empty());
}

TEST_F(CheckGateTest, BadCheckModeIsAParseError) {
  Status s = pft_.Exec("pftables --check=fatal -o FILE_READ -j DROP");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("--check mode"), std::string::npos) << s.message();
}

TEST_F(CheckGateTest, CheckedRestoreRejectsWholeDumpOnError) {
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_WRITE -d etc_t -j DROP").ok());
  const std::string before = pft_.Save();

  // Line 2 shadows line 1: in kError mode the whole dump must be rolled
  // back, including the non-defective first line.
  const std::string dump =
      "pftables -A input -o FILE_READ -j DROP\n"
      "pftables -A input -o FILE_READ -d shadow_t -j DROP\n";
  Status s = pft_.Restore(dump, CheckMode::kError);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(pft_.Save(), before);
  EXPECT_EQ(engine_->ruleset().filter().Find("input")->size(), 1u);
}

TEST_F(CheckGateTest, CheckedRestoreAppliesCleanDump) {
  const std::string dump =
      "pftables -A input -o FILE_READ -d shadow_t -j DROP\n"
      "pftables -A input -o FILE_WRITE -d etc_t -j DROP\n";
  Status s = pft_.Restore(dump, CheckMode::kError);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(engine_->ruleset().filter().Find("input")->size(), 2u);
}

TEST_F(CheckGateTest, RestoreLineFailureRollsBackWhenChecked) {
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_WRITE -d etc_t -j DROP").ok());
  const std::string before = pft_.Save();
  const std::string dump =
      "pftables -A input -o FILE_READ -j DROP\n"
      "pftables -A input -o NO_SUCH_OP -j DROP\n";
  Status s = pft_.Restore(dump, CheckMode::kError);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(pft_.Save(), before);
}

TEST_F(CheckGateTest, ListAnnotatesFilterTableWithFindings) {
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_READ -j DROP").ok());
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_READ -d shadow_t -j DROP").ok());
  const std::string listing = pft_.List();
  EXPECT_NE(listing.find("# analyzer:"), std::string::npos) << listing;
  EXPECT_NE(listing.find("shadowed-rule"), std::string::npos) << listing;
}

TEST_F(CheckGateTest, ListOfCleanBaseHasNoAnnotations) {
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_READ -d shadow_t -j DROP").ok());
  const std::string listing = pft_.List();
  EXPECT_EQ(listing.find("# analyzer:"), std::string::npos) << listing;
}

}  // namespace
}  // namespace pf::core
