// Differential proof of the symbolic decision-space model: seeded random
// rule bases (the same five generator flavors the compiled-evaluator fuzz
// battery uses, tests/core/fuzz_rules.h) replayed as concrete request
// streams through Engine::Authorize, with every request also mapped to its
// atom assignment in the model's universe. The region containing the
// assignment must predict the engine's verdict exactly — over evolving
// per-task STATE, entrypoint-indexed chains (both ept modes), JUMP nests at
// the depth cutoff, and native extension modules valued concretely.
//
// The second half proves pfdiff against brute force: for rule base A and a
// one-rule-deleted copy B, a request's concrete verdict flips between A and
// B if and only if its assignment lies in a verdict-changing DiffRegion,
// with from/to matching the observed verdicts.
//
// Seed control: PF_FUZZ_SEEDS=N runs N consecutive seeds (default 16).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "src/analysis/symbolic/diff.h"
#include "src/analysis/symbolic/model.h"
#include "src/apps/programs.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/error.h"
#include "src/sim/sysimage.h"
#include "tests/core/fuzz_rules.h"

namespace pf::analysis::symbolic {
namespace {

constexpr uint64_t kSeedBase = 0xf002;  // same base as the evaluator battery

int SeedCount() {
  if (const char* env = std::getenv("PF_FUZZ_SEEDS"); env != nullptr) {
    const int n = std::atoi(env);
    if (n >= 1) {
      return n;
    }
  }
  return 16;
}

// COUNT with a declared static kind: the runtime behavior is identical to
// the fuzz harness's CountTarget (side-effecting continue), but the model
// can see that it continues — without this the whole model is indeterminate
// by design (a dynamic target could be anything).
class StaticCountTarget : public core::fuzzgen::CountTarget {
 public:
  using CountTarget::CountTarget;
  std::optional<core::TargetKind> StaticKind() const override {
    return core::TargetKind::kContinue;
  }
};

struct TaskProfile {
  const char* label;
  const char* bin;        // nullptr = no stack frames (invalid entrypoint)
  uint64_t offset = 0;    // binary-relative entrypoint offset
};

// Entrypoint classes the generators mention (-i 0x100/0x200/0x300 and
// 0x8000+k*0x40 on the three bins), plus an unmentioned offset and an
// invalid stack.
const TaskProfile kProfiles[] = {
    {"staff_t", "/bin/true", 0x100},
    {"user_t", "/bin/true", 0x200},
    {"etc_t", "/usr/bin/apache2", 0x8000},
    {"user_t", "/bin/sh", 0x8040},
    {"staff_t", "/bin/true", 0x9999},  // offset no rule mentions
    {"tmp_t", nullptr},                // unwind yields no entrypoint
};

struct Env {
  std::unique_ptr<sim::Kernel> kernel;
  core::Engine* engine = nullptr;  // owned by the kernel module list
  std::unique_ptr<core::Engine> scratch;  // for the diff test's B side
  std::unique_ptr<core::Pftables> pft;
  uint64_t count_fires = 0;
};

void RegisterStaticFuzzModules(core::Pftables& pft, uint64_t* count_fires) {
  core::fuzzgen::RegisterFuzzModules(pft, count_fires);
  // Shadow the harness's COUNT with the statically-kinded twin.
  pft.RegisterTarget("COUNT", [count_fires](const std::vector<std::string>& opts,
                                            std::unique_ptr<core::TargetModule>* t) {
    if (!opts.empty()) {
      return core::Status::Error("COUNT takes no options");
    }
    *t = std::make_unique<StaticCountTarget>(count_fires);
    return core::Status::Ok();
  });
}

std::unique_ptr<sim::Task> MakeTask(sim::Kernel& kernel, const TaskProfile& prof,
                                    sim::Pid pid) {
  auto task = std::make_unique<sim::Task>();
  task->pid = pid;
  task->comm = "symfuzz";
  task->exe = prof.bin != nullptr ? prof.bin : sim::kBinTrue;
  task->cred.uid = 0;
  task->cred.euid = 0;
  task->cred.sid = kernel.labels().Intern(prof.label);
  task->cwd = kernel.vfs().root()->id();
  task->mm.Reset(kernel.AslrStackBase());
  if (prof.bin != nullptr) {
    kernel.MapImage(*task, kernel.LookupNoHooks(prof.bin), prof.bin);
    const sim::Mapping* map = task->mm.FindMappingByPath(prof.bin);
    task->mm.PushFrame(map->base + prof.offset, 16, false);
  }
  return task;
}

// Truth of an uninterpreted predicate dimension for a concrete request. The
// generators emit exactly three opaque shapes: the ODD_INO native match, the
// SIGNAL_MATCH handler test (always false here: no task installs handlers),
// and COMPARE with a C_UID variable operand (uid pinned to 0 above).
bool OpaqueTruth(const std::string& id, bool has_object, uint64_t ino) {
  if (id.rfind("ODD_INO", 0) == 0) {
    return has_object && ino % 2 == 1;
  }
  if (id.rfind("SIGNAL_MATCH", 0) == 0) {
    return false;
  }
  if (id.rfind("COMPARE", 0) == 0) {
    const size_t v2 = id.find("--v2 ");
    EXPECT_NE(v2, std::string::npos) << "unparseable COMPARE id: " << id;
    const int64_t rhs = std::strtoll(id.c_str() + v2 + 5, nullptr, 0);
    const bool negate = id.find("--nequal") != std::string::npos;
    const bool equal = rhs == 0;  // C_UID is 0 for every task in this test
    return negate ? !equal : equal;
  }
  ADD_FAILURE() << "opaque dimension with unknown concrete semantics: " << id;
  return false;
}

// Maps one concrete request onto its atom assignment. `dict` is the task's
// STATE dictionary as it stands when Authorize begins.
std::vector<uint32_t> Assignment(const Universe& u, sim::Kernel& kernel,
                                 const TaskProfile& prof, const sim::Task& task,
                                 const sim::AccessRequest& req,
                                 const std::map<std::string, int64_t>& dict) {
  std::vector<uint32_t> a(u.dim_count(), 0);
  a[kDimSubject] = u.AtomForSid(task.cred.sid);
  const bool has_object = req.inode != nullptr;
  const uint64_t ino = has_object ? req.id.ino : 0;
  if (has_object) {
    a[kDimObject] = u.AtomForSid(req.inode->sid);
    a[kDimIno] = u.AtomForIno(ino);
  }
  if (prof.bin != nullptr) {
    const sim::FileId image = kernel.LookupNoHooks(prof.bin)->id();
    a[kDimEpt] = u.AtomForEpt(true, image, prof.offset);
  } else {
    a[kDimEpt] = u.AtomForEpt(false, {}, 0);
  }
  a[kDimInterp] = u.AtomForInterp(sim::InterpLang::kNone, "");
  a[kDimArgBase] = u.AtomForArg(0, static_cast<int64_t>(req.syscall_nr));
  for (int i = 1; i < kNumArgDims; ++i) {
    a[kDimArgBase + i] = u.AtomForArg(i, req.args[static_cast<size_t>(i - 1)]);
  }
  for (size_t i = 0; i < u.state_dims.size(); ++i) {
    const auto it = dict.find(u.state_dims[i].key);
    a[u.StateDimIndex(i)] = u.AtomForState(
        i, it == dict.end() ? std::nullopt : std::optional<int64_t>(it->second));
  }
  for (size_t i = 0; i < u.opaque_ids.size(); ++i) {
    a[u.OpaqueDimIndex(i)] = OpaqueTruth(u.opaque_ids[i], has_object, ino) ? 1 : 0;
  }
  return a;
}

int64_t VerdictOf(OutcomeKind k) {
  return k == OutcomeKind::kAllow ? 0 : sim::SysError(sim::Err::kAcces);
}

Env BootEnv(uint64_t seed, bool ept, bool scratch_second_engine) {
  Env env;
  env.kernel = std::make_unique<sim::Kernel>(0x5eed);
  sim::BuildSysImage(*env.kernel);
  apps::InstallPrograms(*env.kernel);
  core::EngineConfig cfg;
  cfg.ept_chains = ept;
  cfg.verdict_cache = false;
  env.engine = core::InstallProcessFirewall(*env.kernel, cfg);
  env.pft = std::make_unique<core::Pftables>(env.engine);
  RegisterStaticFuzzModules(*env.pft, &env.count_fires);
  env.kernel->MkFileAt("/tmp/t", "x", 0666, 0, 0, "tmp_t");

  std::mt19937_64 rule_rng(seed);
  core::Status s = env.pft->ExecAll(
      core::fuzzgen::RandomRules(rule_rng, core::fuzzgen::FlavorForSeed(seed)));
  EXPECT_TRUE(s.ok()) << "seed " << seed << ": " << s.message();
  if (scratch_second_engine) {
    env.scratch = std::make_unique<core::Engine>(*env.kernel, cfg);
  }
  return env;
}

// ~800 requests per (seed, ept mode): every verdict the engine returns must
// equal the verdict of the unique region containing the request's atoms.
void RunVerdictProof(uint64_t seed, bool ept) {
  Env env = BootEnv(seed, ept, /*scratch_second_engine=*/false);
  if (::testing::Test::HasFatalFailure()) {
    return;
  }
  ModelOptions opts;
  opts.ept_chains = ept;
  const SymbolicModel model =
      BuildModel(*env.engine->CompileRuleset(), env.engine->policy(), nullptr, opts);
  ASSERT_FALSE(model.indeterminate)
      << "seed " << seed << ": static COUNT should keep the model determinate";
  ASSERT_TRUE(model.exact_state)
      << "seed " << seed << ": generators only write literal STATE values";

  std::vector<std::unique_ptr<sim::Task>> tasks;
  for (size_t i = 0; i < std::size(kProfiles); ++i) {
    tasks.push_back(
        MakeTask(*env.kernel, kProfiles[i], static_cast<sim::Pid>(400 + i)));
  }

  const char* kPaths[] = {"/etc/passwd", "/etc/shadow", "/tmp/t", "/bin/true"};
  std::vector<std::shared_ptr<sim::Inode>> pins;
  std::mt19937_64 rng(seed ^ 0x51f7ed);
  const Universe& u = *model.universe;

  for (int i = 0; i < 800; ++i) {
    const size_t ti = rng() % std::size(kProfiles);
    sim::Task& task = *tasks[ti];
    sim::AccessRequest req;
    req.task = &task;
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2: {
        auto inode = env.kernel->LookupNoHooks(kPaths[rng() % std::size(kPaths)]);
        req.op = sim::Op::kFileOpen;
        req.inode = inode.get();
        req.id = inode->id();
        req.syscall_nr = sim::SyscallNr::kOpen;
        pins.push_back(std::move(inode));
        break;
      }
      case 3: {
        auto inode = env.kernel->LookupNoHooks(kPaths[rng() % std::size(kPaths)]);
        req.op = sim::Op::kFileGetattr;
        req.inode = inode.get();
        req.id = inode->id();
        req.syscall_nr = sim::SyscallNr::kStat;
        pins.push_back(std::move(inode));
        break;
      }
      case 4: {
        // The model (like the pairwise analyzer) assumes object-carrying
        // ops carry an object, so the bind request pins one.
        auto inode = env.kernel->LookupNoHooks("/tmp/t");
        req.op = sim::Op::kSocketBind;
        req.inode = inode.get();
        req.id = inode->id();
        req.syscall_nr = sim::SyscallNr::kBind;
        pins.push_back(std::move(inode));
        break;
      }
      case 5:
        req.op = sim::Op::kSignalDeliver;
        req.sig = sim::kSigUsr1;
        req.sig_sender = 1;
        req.syscall_nr = sim::SyscallNr::kKill;
        break;
      default:
        req.op = sim::Op::kSyscallBegin;
        req.syscall_nr = static_cast<sim::SyscallNr>(rng() % 8);
        break;
    }

    // Snapshot the STATE dictionary before the call: region membership is a
    // function of the pre-decision state.
    const std::map<std::string, int64_t> dict = env.engine->TaskState(task).dict;
    const std::vector<uint32_t> a =
        Assignment(u, *env.kernel, kProfiles[ti], task, req, dict);
    const DecisionRegion* region = model.Find(req.op, a);
    ASSERT_NE(region, nullptr)
        << "seed " << seed << " request " << i << ": assignment in no region — "
        << "the partition is not total";
    ASSERT_NE(region->outcome, OutcomeKind::kIndeterminate);

    const int64_t got = env.engine->Authorize(req);
    ASSERT_EQ(got, VerdictOf(region->outcome))
        << "seed " << seed << " (flavor "
        << core::fuzzgen::FlavorName(core::fuzzgen::FlavorForSeed(seed))
        << ", ept " << (ept ? "on" : "off") << ") request " << i << " op "
        << sim::OpName(req.op) << ": engine disagrees with region decided by "
        << region->decided_by << " [" << u.Witness(region->region) << "]";
  }
}

TEST(SymbolicDiffFuzzTest, ModelPredictsEveryVerdict) {
  const int seeds = SeedCount();
  for (int i = 0; i < seeds; ++i) {
    for (const bool ept : {true, false}) {
      RunVerdictProof(kSeedBase + static_cast<uint64_t>(i), ept);
      if (::testing::Test::HasFailure()) {
        return;  // first divergence wins
      }
    }
  }
}

// pfdiff vs brute force: delete the first `input` rule of each seed's base
// and check region membership against observed verdict flips, request by
// request (fresh task per request: both sides decide from empty STATE).
TEST(SymbolicDiffFuzzTest, DiffEqualsBruteForceDelta) {
  const int seeds = std::min(SeedCount(), 6);
  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = kSeedBase + static_cast<uint64_t>(i);
    Env env = BootEnv(seed, /*ept=*/true, /*scratch_second_engine=*/true);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    // B = A minus its first input rule, loaded into the scratch engine.
    core::Pftables bpft(env.scratch.get());
    uint64_t scratch_count = 0;
    RegisterStaticFuzzModules(bpft, &scratch_count);
    std::mt19937_64 rule_rng(seed);
    ASSERT_TRUE(bpft.ExecAll(core::fuzzgen::RandomRules(
                                 rule_rng, core::fuzzgen::FlavorForSeed(seed)))
                    .ok());
    ASSERT_TRUE(bpft.Exec("pftables -D input 1").ok())
        << "every generator flavor seeds the input chain";

    const DiffResult diff =
        DiffRulesets(*env.engine->CompileRuleset(), *env.scratch->CompileRuleset(),
                     env.engine->policy());
    const Universe& u = *diff.universe;
    ASSERT_TRUE(diff.exact) << "seed " << seed;

    const char* kPaths[] = {"/etc/passwd", "/etc/shadow", "/tmp/t", "/bin/true"};
    const sim::Op kObjOps[] = {sim::Op::kFileOpen, sim::Op::kFileGetattr,
                               sim::Op::kSocketBind};
    sim::Pid pid = 900;
    int flips = 0;
    for (size_t ti = 0; ti < std::size(kProfiles); ++ti) {
      for (int nr = 0; nr < 8; nr += 3) {
        std::vector<sim::AccessRequest> reqs;
        std::vector<std::shared_ptr<sim::Inode>> pins;
        for (const sim::Op op : kObjOps) {
          for (const char* path : kPaths) {
            auto inode = env.kernel->LookupNoHooks(path);
            sim::AccessRequest req;
            req.op = op;
            req.inode = inode.get();
            req.id = inode->id();
            req.syscall_nr = static_cast<sim::SyscallNr>(nr);
            pins.push_back(std::move(inode));
            reqs.push_back(req);
          }
        }
        {
          sim::AccessRequest sig;
          sig.op = sim::Op::kSignalDeliver;
          sig.sig = sim::kSigUsr1;
          sig.sig_sender = 1;
          sig.syscall_nr = static_cast<sim::SyscallNr>(nr);
          reqs.push_back(sig);
          sim::AccessRequest sys;
          sys.op = sim::Op::kSyscallBegin;
          sys.syscall_nr = static_cast<sim::SyscallNr>(nr);
          reqs.push_back(sys);
        }
        for (sim::AccessRequest& req : reqs) {
          // Fresh task per request: STATE targets fired by one request must
          // not leak into the next (the brute force compares stateless
          // single-request verdicts, which is what the diff regions encode).
          auto task = MakeTask(*env.kernel, kProfiles[ti], pid++);
          req.task = task.get();
          const std::vector<uint32_t> a =
              Assignment(u, *env.kernel, kProfiles[ti], *task, req, {});
          const int64_t va = env.engine->Authorize(req);
          const int64_t vb = env.scratch->Authorize(req);

          const DiffRegion* hit = nullptr;
          int hits = 0;
          for (const DiffRegion& dr : diff.regions) {
            if (dr.op == req.op && dr.region.Contains(a)) {
              ++hits;
              hit = &dr;
            }
          }
          ASSERT_LE(hits, 1) << "seed " << seed << ": diff regions overlap";
          if (va != vb) {
            ++flips;
            ASSERT_EQ(hits, 1)
                << "seed " << seed << " op " << sim::OpName(req.op)
                << ": brute-force verdict flip (" << va << " -> " << vb
                << ") missed by pfdiff";
            EXPECT_EQ(VerdictOf(hit->from), va) << "seed " << seed;
            EXPECT_EQ(VerdictOf(hit->to), vb) << "seed " << seed;
          } else if (hits == 1) {
            EXPECT_EQ(hit->from, hit->to)
                << "seed " << seed << " op " << sim::OpName(req.op)
                << ": pfdiff claims a verdict flip brute force cannot see at "
                << hit->witness;
          }
        }
      }
      if (::testing::Test::HasFailure()) {
        return;
      }
    }
    // Not every seed's deleted rule decides verdicts, but across the seed
    // set at least one must (otherwise the proof proves nothing).
    if (i == 0) {
      RecordProperty("flips_seed0", flips);
    }
  }
}

}  // namespace
}  // namespace pf::analysis::symbolic
