// Symbolic decision-space model: exactness corners the pairwise analyzer
// cannot reach, the pairwise-is-a-subset cross-check, the pftables
// --widening-gate transaction, and the semantic diff / query consumers.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/symbolic/diff.h"
#include "src/analysis/symbolic/model.h"
#include "src/analysis/symbolic/query.h"
#include "src/apps/programs.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"

namespace pf::analysis::symbolic {
namespace {

class SymbolicModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = std::make_unique<sim::Kernel>(0x5eed);
    sim::BuildSysImage(*kernel_);
    apps::InstallPrograms(*kernel_);
    engine_ = core::InstallProcessFirewall(*kernel_);
    pft_ = std::make_unique<core::Pftables>(engine_);
  }

  void Install(const std::vector<std::string>& rules) {
    core::Status s = pft_->ExecAll(rules);
    ASSERT_TRUE(s.ok()) << s.message();
  }

  SymbolicModel Model() {
    return BuildModel(*engine_->CompileRuleset(), engine_->policy());
  }

  // A task whose subject label is `label`, with no stack frames (invalid
  // entrypoint) so entrypoint-pinned rules never match it.
  std::unique_ptr<sim::Task> MakeTask(const std::string& label) {
    auto task = std::make_unique<sim::Task>();
    task->pid = next_pid_++;
    task->comm = "symtest";
    task->exe = sim::kBinTrue;
    task->cred.sid = kernel_->labels().Intern(label);
    task->cwd = kernel_->vfs().root()->id();
    task->mm.Reset(kernel_->AslrStackBase());
    return task;
  }

  int64_t OpenEtcPasswd(sim::Task& task) {
    auto inode = kernel_->LookupNoHooks("/etc/passwd");
    sim::AccessRequest req;
    req.task = &task;
    req.op = sim::Op::kFileOpen;
    req.inode = inode.get();
    req.id = inode->id();
    req.syscall_nr = sim::SyscallNr::kOpen;
    return engine_->Authorize(req);
  }

  std::unique_ptr<sim::Kernel> kernel_;
  core::Engine* engine_ = nullptr;
  std::unique_ptr<core::Pftables> pft_;
  sim::Pid next_pid_ = 300;
};

std::set<std::pair<std::string, size_t>> DeadSet(const SymbolicModel& model) {
  std::set<std::pair<std::string, size_t>> dead;
  for (const RuleLocusInfo& info : model.dead) {
    dead.emplace(info.chain, info.pos);
  }
  return dead;
}

// A rule shadowed only by the *union* of two earlier rules: no single
// predecessor subsumes it, so the pairwise pass (a heuristic tier by design,
// DESIGN.md) cannot see it — the symbolic partition must.
TEST_F(SymbolicModelTest, UnionShadowingNeedsTheSymbolicPass) {
  Install({
      "pftables -A input -o FILE_OPEN -s {etc_t|tmp_t} -j DROP",
      "pftables -A input -o FILE_OPEN -s {shadow_t|bin_t} -j DROP",
      // Shadowed by rules 1+2 together, by neither alone.
      "pftables -A input -o FILE_OPEN -s {etc_t|shadow_t} -j DROP",
  });
  const SymbolicModel model = Model();
  ASSERT_FALSE(model.indeterminate);
  EXPECT_TRUE(DeadSet(model).count({"input", 3}))
      << "symbolic pass must prove input:3 dead";

  const AnalysisReport pairwise =
      AnalyzeRuleset(*engine_->CompileRuleset(), engine_->policy());
  for (const Diagnostic& d : pairwise.diagnostics()) {
    EXPECT_FALSE((d.code == "shadowed-rule" || d.code == "unreachable-rule") &&
                 d.locus.chain == "input" && d.locus.pos == 3)
        << "pairwise pass unexpectedly proves union shadowing: " << d.message;
  }
}

// Aggregate cross-check on a base with both kinds of dead rule: every
// pairwise shadow finding is confirmed by the symbolic pass (subset), and
// the subset is strict (the union-shadowed rule is symbolic-only).
TEST_F(SymbolicModelTest, PairwiseFindingsAreAStrictSubsetOfSymbolicDead) {
  Install({
      "pftables -A input -o FILE_OPEN -s {etc_t|tmp_t} -j DROP",
      "pftables -A input -o FILE_OPEN -s {shadow_t|bin_t} -j DROP",
      "pftables -A input -o FILE_OPEN -s {etc_t|shadow_t} -j DROP",
      // Pairwise-visible: identical to rule 1.
      "pftables -A input -o FILE_OPEN -s {etc_t|tmp_t} -j DROP",
  });
  const SymbolicModel model = Model();
  ASSERT_FALSE(model.indeterminate);
  const auto dead = DeadSet(model);

  const AnalysisReport pairwise =
      AnalyzeRuleset(*engine_->CompileRuleset(), engine_->policy());
  size_t pairwise_findings = 0;
  for (const Diagnostic& d : pairwise.diagnostics()) {
    if (d.code == "shadowed-rule" || d.code == "unreachable-rule") {
      ++pairwise_findings;
      EXPECT_TRUE(dead.count({d.locus.chain, d.locus.pos}))
          << "pairwise finding at " << d.locus.Render()
          << " not confirmed by the symbolic pass";
    }
  }
  EXPECT_GE(pairwise_findings, 1u) << "expected the identical-rule shadow";
  EXPECT_GT(dead.size(), pairwise_findings)
      << "symbolic dead set should strictly contain the pairwise findings";
  EXPECT_TRUE(dead.count({"input", 3}));
  EXPECT_TRUE(dead.count({"input", 4}));
}

// The --widening-gate vetoes a DROP -> ALLOW flip transactionally: the
// staged edit rolls back and the previously published generation keeps
// serving (the probe request still drops), while narrowing edits and
// --allow-widening overrides pass.
TEST_F(SymbolicModelTest, WideningGateIsTransactional) {
  ASSERT_TRUE(pft_->Exec("pftables -A input -o FILE_OPEN -s etc_t -j DROP").ok());
  auto task = MakeTask("etc_t");
  ASSERT_LT(OpenEtcPasswd(*task), 0) << "probe must drop before the edit";

  // Deleting the deny rule widens: rejected, nothing changes.
  core::Status s = pft_->Exec("pftables --widening-gate -D input 1");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("widen"), std::string::npos) << s.message();
  EXPECT_EQ(engine_->ruleset().filter().Find("input")->rules().size(), 1u)
      << "staged base must roll back";
  EXPECT_LT(OpenEtcPasswd(*task), 0) << "published generation must stay live";

  // A narrowing edit passes the gate.
  EXPECT_TRUE(pft_->Exec("pftables --widening-gate -A input -o SOCKET_BIND -j DROP").ok());

  // The override applies the widening.
  EXPECT_TRUE(pft_->Exec("pftables --widening-gate --allow-widening -D input 1").ok());
  EXPECT_EQ(OpenEtcPasswd(*task), 0) << "widened base must now allow";
}

// Semantic diff: deleting one deny rule yields exactly one DROP -> ALLOW
// widening region; a pure reordering of disjoint rules diffs empty.
TEST_F(SymbolicModelTest, DiffFindsExactlyTheDeletedDenyRegion) {
  core::Engine old_engine(*kernel_, {});
  core::Engine new_engine(*kernel_, {});
  core::Pftables old_pft(&old_engine);
  core::Pftables new_pft(&new_engine);
  const std::vector<std::string> base = {
      "pftables -A input -o FILE_OPEN -d shadow_t -j DROP",
      "pftables -A input -o SOCKET_BIND -s user_t -j DROP",
  };
  ASSERT_TRUE(old_pft.ExecAll(base).ok());
  ASSERT_TRUE(new_pft.ExecAll({base[0]}).ok());  // rule 2 deleted

  const DiffResult diff = DiffRulesets(*old_engine.CompileRuleset(),
                                       *new_engine.CompileRuleset(),
                                       old_engine.policy());
  ASSERT_EQ(diff.regions.size(), 1u);
  EXPECT_EQ(diff.regions[0].op, sim::Op::kSocketBind);
  EXPECT_EQ(diff.regions[0].from, OutcomeKind::kDrop);
  EXPECT_EQ(diff.regions[0].to, OutcomeKind::kAllow);
  EXPECT_TRUE(diff.regions[0].widening);
  EXPECT_TRUE(diff.any_widening);
  EXPECT_FALSE(diff.regions[0].witness.empty());

  core::Engine reordered(*kernel_, {});
  core::Pftables reordered_pft(&reordered);
  ASSERT_TRUE(reordered_pft.ExecAll({base[1], base[0]}).ok());
  const DiffResult noop = DiffRulesets(*old_engine.CompileRuleset(),
                                       *reordered.CompileRuleset(),
                                       old_engine.policy());
  EXPECT_TRUE(noop.regions.empty())
      << "reordering disjoint rules must diff semantically empty";
  EXPECT_FALSE(noop.any_widening);
}

// pftables --diff loads the old base from a file and reports standalone.
TEST_F(SymbolicModelTest, PftablesDiffFlagRuns) {
  Install({"pftables -A input -o FILE_OPEN -d shadow_t -j DROP"});
  const std::string path = ::testing::TempDir() + "/pfdiff_old.rules";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("pftables -A input -o FILE_OPEN -d shadow_t -j DROP\n"
               "pftables -A input -o SOCKET_BIND -j DROP\n", f);
    std::fclose(f);
  }
  EXPECT_TRUE(pft_->Exec("pftables --diff " + path).ok());
}

// Queries answer partial concretizations with verdicts and witnesses, and
// reject unknown labels with an error instead of an empty result.
TEST_F(SymbolicModelTest, QueriesIntersectThePartition) {
  Install({
      "pftables -A input -o FILE_OPEN -s user_t -d shadow_t -j DROP",
      "pftables -N audit",
      "pftables -A input -o SOCKET_BIND -j audit",
      "pftables -A audit -s user_t -j DROP",
  });
  const SymbolicModel model = Model();

  QuerySpec spec;
  spec.op = sim::Op::kFileOpen;
  spec.subject = "user_t";
  spec.object = "shadow_t";
  const QueryResult result = RunQuery(model, spec);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_FALSE(result.matches.empty());
  bool saw_drop = false;
  for (const QueryMatch& m : result.matches) {
    if (m.outcome == OutcomeKind::kDrop) {
      saw_drop = true;
      EXPECT_EQ(m.decided_by, "input:1");
      EXPECT_FALSE(m.witness.empty());
    }
  }
  EXPECT_TRUE(saw_drop);

  QuerySpec want_drop = spec;
  want_drop.want = OutcomeKind::kDrop;
  const QueryResult only_drop = RunQuery(model, want_drop);
  ASSERT_TRUE(only_drop.ok);
  for (const QueryMatch& m : only_drop.matches) {
    EXPECT_EQ(m.outcome, OutcomeKind::kDrop);
  }

  QuerySpec bad;
  bad.subject = "no_such_label_t";
  EXPECT_FALSE(RunQuery(model, bad).ok);

  const ReachResult reach = ChainReachability(model, "audit");
  ASSERT_TRUE(reach.found);
  EXPECT_TRUE(reach.entered);
  ASSERT_EQ(reach.ops.size(), 1u);
  EXPECT_EQ(reach.ops[0], "SOCKET_BIND");
  EXPECT_FALSE(ChainReachability(model, "nonexistent").found);
}

}  // namespace
}  // namespace pf::analysis::symbolic
