// Static analyzer tests: each analysis family is exercised against a rule
// base seeded with a known defect, and the resulting diagnostic is checked
// by code AND locus (chain:pos) — a lint that fires on the wrong rule is
// worse than one that does not fire. The shipped paper rule base must come
// out error-free (it is installed by distributors as-is, §6.3.2).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/apps/programs.h"
#include "src/apps/rule_library.h"
#include "src/core/engine.h"
#include "src/core/modules.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::analysis {
namespace {

using core::Engine;
using core::InstallProcessFirewall;
using core::Pftables;

class AnalyzerTest : public pf::testing::SimTest {
 protected:
  AnalyzerTest() : engine_(InstallProcessFirewall(kernel())), pft_(engine_) {}

  AnalysisReport Analyze() { return AnalyzeEngine(*engine_); }

  void Exec(const std::string& cmd) { ASSERT_TRUE(pft_.Exec(cmd).ok()) << cmd; }

  // The diagnostics carrying `code`, rendered as "severity locus" strings —
  // tests assert on exact placement, not just presence.
  static std::vector<std::string> Where(const AnalysisReport& report,
                                        const std::string& code) {
    std::vector<std::string> out;
    for (const Diagnostic& d : report.diagnostics()) {
      if (d.code == code) {
        out.push_back(std::string(SeverityName(d.severity)) + " " + d.locus.Render());
      }
    }
    return out;
  }

  Engine* engine_;
  Pftables pft_;
};

TEST_F(AnalyzerTest, CleanRuleBaseHasNoFindings) {
  Exec("pftables -o FILE_READ -d shadow_t -j DROP");
  Exec("pftables -o FILE_WRITE -d etc_t -j DROP");
  AnalysisReport r = Analyze();
  EXPECT_TRUE(r.empty()) << r.RenderText();
}

TEST_F(AnalyzerTest, ShippedPaperLibraryIsErrorFree) {
  apps::InstallPrograms(kernel());
  ASSERT_TRUE(pft_.ExecAll(apps::RuleLibrary::DefaultRuleBase()).ok());
  AnalysisReport r = Analyze();
  EXPECT_EQ(r.errors(), 0u) << r.RenderText();
  EXPECT_EQ(r.warnings(), 0u) << r.RenderText();
}

// --- shadowing / dead rules --------------------------------------------------

TEST_F(AnalyzerTest, DetectsShadowedDenyRule) {
  Exec("pftables -o FILE_READ -j DROP");             // wildcard object
  Exec("pftables -o FILE_READ -d shadow_t -j DROP");  // strictly narrower
  AnalysisReport r = Analyze();
  EXPECT_EQ(Where(r, "shadowed-rule"),
            std::vector<std::string>{"error filter/input:2"})
      << r.RenderText();
  // The shadower is referenced as the related locus.
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.code == "shadowed-rule") {
      EXPECT_EQ(d.related.Render(), "filter/input:1");
    }
  }
}

TEST_F(AnalyzerTest, ShadowedAllowIsOnlyAWarning) {
  Exec("pftables -o FILE_READ -j ACCEPT");
  Exec("pftables -o FILE_READ -d shadow_t -j ACCEPT");
  AnalysisReport r = Analyze();
  EXPECT_EQ(Where(r, "shadowed-rule"),
            std::vector<std::string>{"warning filter/input:2"})
      << r.RenderText();
}

TEST_F(AnalyzerTest, DistinctOpsDoNotShadow) {
  Exec("pftables -o FILE_READ -j DROP");
  Exec("pftables -o FILE_WRITE -d shadow_t -j DROP");
  AnalysisReport r = Analyze();
  EXPECT_TRUE(Where(r, "shadowed-rule").empty()) << r.RenderText();
}

TEST_F(AnalyzerTest, NonTerminalTargetDoesNotShadow) {
  Exec("pftables -o FILE_READ -j LOG");  // continues traversal
  Exec("pftables -o FILE_READ -d shadow_t -j DROP");
  AnalysisReport r = Analyze();
  EXPECT_TRUE(Where(r, "shadowed-rule").empty()) << r.RenderText();
}

TEST_F(AnalyzerTest, DetectsContextUnavailableRule) {
  // SIGNAL_MATCH is pinned to SIGNAL_DELIVER; on FILE_READ it can never
  // match, making the rule dead.
  Exec("pftables -o FILE_READ -m SIGNAL_MATCH -j DROP");
  AnalysisReport r = Analyze();
  EXPECT_EQ(Where(r, "context-unavailable"),
            std::vector<std::string>{"error filter/input:1"})
      << r.RenderText();
}

// --- JUMP graph --------------------------------------------------------------

TEST_F(AnalyzerTest, DetectsUndefinedJumpTarget) {
  // pftables creates jump targets on demand, so an undefined chain can only
  // come from a custom target module — exactly the hole the analyzer plugs.
  pft_.RegisterTarget("GOTO", [](const std::vector<std::string>&,
                                 std::unique_ptr<core::TargetModule>* out) {
    *out = std::make_unique<core::JumpTarget>("no_such_chain");
    return core::Status::Ok();
  });
  Exec("pftables -o FILE_READ -j GOTO");
  AnalysisReport r = Analyze();
  EXPECT_EQ(Where(r, "undefined-chain"),
            std::vector<std::string>{"error filter/input:1"})
      << r.RenderText();
}

TEST_F(AnalyzerTest, DetectsJumpCycle) {
  Exec("pftables -N loopa");
  Exec("pftables -N loopb");
  Exec("pftables -A loopa -j loopb");
  Exec("pftables -A loopb -j loopa");
  Exec("pftables -A input -o FILE_OPEN -j loopa");
  AnalysisReport r = Analyze();
  auto cycles = Where(r, "jump-cycle");
  ASSERT_EQ(cycles.size(), 1u) << r.RenderText();
  EXPECT_EQ(cycles[0].substr(0, 5), "error");
}

TEST_F(AnalyzerTest, DetectsUnreachableChain) {
  Exec("pftables -N island");
  Exec("pftables -A island -o FILE_READ -j DROP");
  AnalysisReport r = Analyze();
  EXPECT_EQ(Where(r, "unreachable-chain"),
            std::vector<std::string>{"warning filter/island"})
      << r.RenderText();
}

TEST_F(AnalyzerTest, DetectsReturnFromRootChain) {
  Exec("pftables -A input -o FILE_READ -j RETURN");
  AnalysisReport r = Analyze();
  EXPECT_EQ(Where(r, "return-from-root"),
            std::vector<std::string>{"warning filter/input:1"})
      << r.RenderText();
}

TEST_F(AnalyzerTest, DetectsDepthExceededChains) {
  // A linear JUMP chain longer than the engine's traversal bound: the tail
  // chains can never evaluate.
  const int n = core::kMaxChainDepth + 2;
  for (int i = 0; i < n; ++i) {
    Exec("pftables -N hop" + std::to_string(i));
  }
  for (int i = 0; i + 1 < n; ++i) {
    Exec("pftables -A hop" + std::to_string(i) + " -j hop" + std::to_string(i + 1));
  }
  Exec("pftables -A input -o FILE_OPEN -j hop0");
  AnalysisReport r = Analyze();
  EXPECT_FALSE(Where(r, "depth-exceeded").empty()) << r.RenderText();
}

// --- STATE protocol ----------------------------------------------------------

TEST_F(AnalyzerTest, DetectsStateCheckedButNeverSet) {
  Exec("pftables -o FILE_READ -m STATE --key tocttou --cmp C_INO --nequal -j DROP");
  AnalysisReport r = Analyze();
  EXPECT_EQ(Where(r, "state-never-set"),
            std::vector<std::string>{"error filter/input:1"})
      << r.RenderText();
}

TEST_F(AnalyzerTest, DetectsStateSetButNeverChecked) {
  Exec("pftables -o FILE_OPEN -j STATE --key tocttou --set --value C_INO");
  AnalysisReport r = Analyze();
  EXPECT_EQ(Where(r, "state-never-checked"),
            std::vector<std::string>{"warning filter/input:1"})
      << r.RenderText();
}

TEST_F(AnalyzerTest, PairedStateSetAndCheckIsClean) {
  Exec("pftables -o FILE_OPEN -j STATE --key tocttou --set --value C_INO");
  Exec("pftables -o FILE_READ -m STATE --key tocttou --cmp C_INO --nequal -j DROP");
  AnalysisReport r = Analyze();
  EXPECT_TRUE(Where(r, "state-never-set").empty()) << r.RenderText();
  EXPECT_TRUE(Where(r, "state-never-checked").empty()) << r.RenderText();
}

// --- cacheability ------------------------------------------------------------

// A module that (falsely) claims its verdict is a pure function of the
// verdict-cache key while reading the symlink target, which the key does
// not cover.
class StaleCacheMatch : public core::MatchModule {
 public:
  std::string_view Name() const override { return "STALE"; }
  core::CtxMask Needs() const override {
    return core::CtxBit(core::Ctx::kLinkTarget);
  }
  bool CacheableByKey() const override { return true; }
  bool Matches(core::Packet&, core::Engine&) const override { return true; }
  std::string Render() const override { return "STALE"; }
};

TEST_F(AnalyzerTest, DetectsFalselyCacheableModule) {
  pft_.RegisterMatch("STALE", [](const std::vector<std::string>&,
                                 std::unique_ptr<core::MatchModule>* out) {
    *out = std::make_unique<StaleCacheMatch>();
    return core::Status::Ok();
  });
  Exec("pftables -o LNK_FILE_READ -m STALE -j DROP");
  AnalysisReport r = Analyze();
  EXPECT_EQ(Where(r, "false-cacheable"),
            std::vector<std::string>{"error filter/input:1"})
      << r.RenderText();
}

TEST_F(AnalyzerTest, HonestlyNonCacheableModuleIsClean) {
  // Same context needs, but CacheableByKey() stays false (the default):
  // the engine will simply not cache — nothing to report.
  class HonestMatch : public core::MatchModule {
   public:
    std::string_view Name() const override { return "HONEST"; }
    core::CtxMask Needs() const override {
      return core::CtxBit(core::Ctx::kLinkTarget);
    }
    bool Matches(core::Packet&, core::Engine&) const override { return true; }
    std::string Render() const override { return "HONEST"; }
  };
  pft_.RegisterMatch("HONEST", [](const std::vector<std::string>&,
                                  std::unique_ptr<core::MatchModule>* out) {
    *out = std::make_unique<HonestMatch>();
    return core::Status::Ok();
  });
  Exec("pftables -o LNK_FILE_READ -m HONEST -j DROP");
  AnalysisReport r = Analyze();
  EXPECT_TRUE(Where(r, "false-cacheable").empty()) << r.RenderText();
}

// --- report plumbing ---------------------------------------------------------

TEST_F(AnalyzerTest, ReportRendersTextAndJson) {
  Exec("pftables -o FILE_READ -j DROP");
  Exec("pftables -o FILE_READ -d shadow_t -j DROP");
  AnalysisReport r = Analyze();
  ASSERT_FALSE(r.empty());
  const std::string text = r.RenderText();
  EXPECT_NE(text.find("error[shadowed-rule] filter/input:2"), std::string::npos)
      << text;
  const std::string json = r.RenderJson();
  EXPECT_NE(json.find("\"code\":\"shadowed-rule\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"locus\":\"filter/input:2\""), std::string::npos) << json;
}

}  // namespace
}  // namespace pf::analysis
