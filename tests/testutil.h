// Shared test fixtures: a booted simulated system (kernel + scheduler +
// standard system image).
#ifndef TESTS_TESTUTIL_H_
#define TESTS_TESTUTIL_H_

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/kernel.h"
#include "src/sim/sched.h"
#include "src/sim/sysimage.h"

namespace pf::testing {

class SimTest : public ::testing::Test {
 protected:
  SimTest() : kernel_(std::make_unique<sim::Kernel>(0x5eed)), sched_(*kernel_) {
    sim::BuildSysImage(*kernel_);
  }

  sim::Kernel& kernel() { return *kernel_; }
  sim::Scheduler& sched() { return sched_; }

  // Credentials helpers.
  static sim::Cred RootCred() { return sim::Cred{}; }
  sim::Cred UserCred(sim::Uid uid, std::string_view label = "user_t") {
    sim::Cred c;
    c.uid = c.euid = uid;
    c.gid = c.egid = uid;
    c.sid = kernel_->labels().Intern(label);
    return c;
  }

  std::unique_ptr<sim::Kernel> kernel_;
  sim::Scheduler sched_;
};

}  // namespace pf::testing

#endif  // TESTS_TESTUTIL_H_
