// Exporter and exposition-format validation (ISSUE acceptance criteria):
//
//   * `pftrace --format=chrome` output must be valid Chrome trace_event
//     JSON — checked here with a hand-rolled strict JSON parser over both
//     synthetic records and a real traced engine run;
//   * Engine::MetricsText() must parse as Prometheus text exposition —
//     checked with a line-grammar parser that also enforces histogram
//     invariants (cumulative monotone buckets, +Inf terminal, _sum/_count).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/programs.h"
#include "src/audit/hub.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sched.h"
#include "src/sim/sysimage.h"
#include "src/trace/export.h"
#include "src/trace/hub.h"

namespace pf::trace {
namespace {

// ---------------------------------------------------------------------------
// A strict recursive-descent JSON validator (subset sufficient for the
// exporters: objects, arrays, strings with escapes, numbers, true/false/null).
// Returns false on ANY deviation from RFC 8259 grammar.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool Validate() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

  // Collects top-level object keys seen during validation (depth 1 only).
  const std::vector<std::string>& top_keys() const { return top_keys_; }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String(nullptr);
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++depth_;
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!String(&key)) {
        return false;
      }
      if (depth_ == 1) {
        top_keys_.push_back(key);
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String(std::string* out) {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character: invalid JSON
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (out != nullptr) {
        out->push_back(c);
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      return false;
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    const size_t len = std::string(lit).size();
    if (s_.compare(pos_, len, lit) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::vector<std::string> top_keys_;
};

// ---------------------------------------------------------------------------
// Prometheus text exposition parser (enough of the format spec to catch any
// malformed line): comment lines `# HELP <name> <text>` / `# TYPE <name>
// <counter|gauge|histogram>`, sample lines `name[{label="v",...}] value`.
struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0;
};

struct PromParse {
  std::map<std::string, std::string> types;  // family -> TYPE
  std::vector<PromSample> samples;
  std::vector<std::string> errors;
};

bool ValidMetricName(const std::string& n) {
  if (n.empty() || !(std::isalpha(static_cast<unsigned char>(n[0])) || n[0] == '_' || n[0] == ':')) {
    return false;
  }
  for (char c : n) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')) {
      return false;
    }
  }
  return true;
}

PromParse ParsePrometheus(const std::string& text) {
  PromParse out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto fail = [&](const std::string& why) {
      out.errors.push_back("line " + std::to_string(lineno) + ": " + why + ": " + line);
    };
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, name;
      ls >> hash >> kind >> name;
      if (kind == "HELP") {
        if (!ValidMetricName(name)) {
          fail("bad HELP name");
        }
      } else if (kind == "TYPE") {
        std::string type;
        ls >> type;
        if (!ValidMetricName(name)) {
          fail("bad TYPE name");
        } else if (type != "counter" && type != "gauge" && type != "histogram" &&
                   type != "summary" && type != "untyped") {
          fail("bad TYPE value");
        } else {
          out.types[name] = type;
        }
      } else {
        fail("unknown comment kind");
      }
      continue;
    }
    // Sample line: name[{labels}] value
    PromSample s;
    size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') {
      s.name.push_back(line[i++]);
    }
    if (!ValidMetricName(s.name)) {
      fail("bad metric name");
      continue;
    }
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::string k, v;
        while (i < line.size() && line[i] != '=') {
          k.push_back(line[i++]);
        }
        if (i >= line.size() || !ValidMetricName(k)) {
          fail("bad label name");
          break;
        }
        ++i;  // '='
        if (i >= line.size() || line[i] != '"') {
          fail("label value not quoted");
          break;
        }
        ++i;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            ++i;
            if (i >= line.size() ||
                (line[i] != '"' && line[i] != '\\' && line[i] != 'n')) {
              fail("bad label escape");
              break;
            }
          }
          v.push_back(line[i++]);
        }
        if (i >= line.size()) {
          fail("unterminated label value");
          break;
        }
        ++i;  // closing quote
        s.labels[k] = v;
        if (i < line.size() && line[i] == ',') {
          ++i;
        }
      }
      if (i >= line.size() || line[i] != '}') {
        fail("unterminated label set");
        continue;
      }
      ++i;
    }
    if (i >= line.size() || line[i] != ' ') {
      fail("missing value separator");
      continue;
    }
    ++i;
    const std::string value = line.substr(i);
    if (value == "+Inf" || value == "-Inf" || value == "NaN") {
      s.value = value == "-Inf" ? -HUGE_VAL : HUGE_VAL;
    } else {
      char* end = nullptr;
      s.value = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        fail("bad sample value");
        continue;
      }
    }
    out.samples.push_back(std::move(s));
  }
  return out;
}

// ---------------------------------------------------------------------------

TraceRecord MakeDecision(uint64_t ts, uint16_t worker, bool drop) {
  TraceRecord r;
  r.ts_ns = ts;
  r.worker = worker;
  r.event = static_cast<uint8_t>(Event::kDecision);
  r.path = static_cast<uint8_t>(Path::kCompiled);
  r.cache = kCacheMiss;
  r.subject_sid = 7;
  r.object_sid = 9;
  r.chain_id = 2;
  r.rule_index = 1;
  r.ctx_ns = 120;
  r.eval_ns = 340;
  r.total_ns = 980;
  if (drop) {
    r.flags = kFlagDrop;
  }
  return r;
}

std::vector<TraceRecord> SyntheticRecords() {
  std::vector<TraceRecord> recs;
  recs.push_back(MakeDecision(1000, 0, false));
  recs.push_back(MakeDecision(5000, 1, true));
  TraceRecord rule;
  rule.ts_ns = 2000;
  rule.event = static_cast<uint8_t>(Event::kRule);
  rule.chain_id = 3;
  rule.rule_index = 0;
  rule.eval_ns = 55;
  rule.flags = kFlagDrop;
  recs.push_back(rule);
  TraceRecord vc;
  vc.ts_ns = 3000;
  vc.event = static_cast<uint8_t>(Event::kVcache);
  vc.cache = kCacheHit;
  recs.push_back(vc);
  return recs;
}

TEST(TraceExportTest, ChromeTraceIsValidJson) {
  NameTable names;  // numeric fallback mode
  const std::string chrome = RenderChromeTrace(SyntheticRecords(), names);
  JsonValidator v(chrome);
  EXPECT_TRUE(v.Validate()) << chrome;
  bool has_events = false;
  for (const std::string& k : v.top_keys()) {
    has_events |= k == "traceEvents";
  }
  EXPECT_TRUE(has_events) << chrome;
  EXPECT_NE(chrome.find("\"ph\""), std::string::npos);
  EXPECT_NE(chrome.find("\"pid\""), std::string::npos);
  EXPECT_NE(chrome.find("\"tid\""), std::string::npos);
}

TEST(TraceExportTest, ChromeTraceOfEmptyStreamIsValid) {
  NameTable names;
  const std::string chrome = RenderChromeTrace({}, names);
  JsonValidator v(chrome);
  EXPECT_TRUE(v.Validate()) << chrome;
}

TEST(TraceExportTest, JsonLinesEachLineParses) {
  NameTable names;
  const std::string jsonl = RenderJsonLines(SyntheticRecords(), names);
  std::istringstream in(jsonl);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    JsonValidator v(line);
    EXPECT_TRUE(v.Validate()) << line;
    ++lines;
  }
  EXPECT_EQ(lines, SyntheticRecords().size());
}

TEST(TraceExportTest, TextRendersVerdictsAndEvents) {
  NameTable names;
  const std::string text = RenderText(SyntheticRecords(), names);
  EXPECT_NE(text.find("decision"), std::string::npos);
  EXPECT_NE(text.find("rule"), std::string::npos);
  EXPECT_NE(text.find("vcache"), std::string::npos);
  EXPECT_NE(text.find("drop"), std::string::npos);
  EXPECT_NE(text.find("accept"), std::string::npos);
  EXPECT_NE(text.find("hit"), std::string::npos);
}

TEST(TraceExportTest, VerdictAndCacheStrings) {
  TraceRecord r;
  EXPECT_EQ(VerdictString(r), "accept");
  r.flags = kFlagDrop;
  EXPECT_EQ(VerdictString(r), "drop");
  r.flags = kFlagDrop | kFlagAudited;
  EXPECT_EQ(VerdictString(r), "drop(audited)");
  EXPECT_EQ(CacheString(kCacheHit), "hit");
  EXPECT_EQ(CacheString(kCacheMiss), "miss");
  EXPECT_EQ(CacheString(kCacheBypass), "bypass");
  EXPECT_EQ(CacheString(kCacheNone), "none");
}

TEST(TraceExportTest, JsonEscapingSurvivesHostileLabelNames) {
  // Label names flow into JSON strings; a name full of quotes, backslashes
  // and control characters must not break validity.
  std::vector<TraceRecord> recs = {MakeDecision(100, 0, true)};
  NameTable names;  // sid 7 -> "sid:7" fallback is already safe; exercise op
  const std::string chrome = RenderChromeTrace(recs, names);
  JsonValidator v(chrome);
  EXPECT_TRUE(v.Validate());
}

// --- end-to-end: a real traced engine run feeds every exporter ------------

struct TracedRun {
  std::string chrome;
  std::string jsonl;
  std::string text;
  std::string prom;
  size_t records = 0;
};

TracedRun RunTracedWorkload() {
  sim::Kernel kernel(0x5eed);
  sim::BuildSysImage(kernel);
  apps::InstallPrograms(kernel);
  core::Engine* engine = core::InstallProcessFirewall(kernel);
  core::Pftables pftables(engine);
  EXPECT_TRUE(
      pftables.ExecAll({"pftables -o FILE_OPEN -d shadow_t -j DROP"}).ok());

  engine->trace().Enable();
  sim::Scheduler sched(kernel);
  sim::SpawnOpts opts;
  opts.name = "traced";
  opts.exe = sim::kBinTrue;
  sim::Pid pid = sched.Spawn(opts, [](sim::Proc& p) {
    sim::UserFrame frame(p, sim::kBinTrue, 0x4000);
    sim::StatBuf st;
    for (int i = 0; i < 32; ++i) {
      p.Stat("/etc/passwd", &st);
      int64_t fd = p.Open("/etc/passwd", sim::kORdOnly);
      if (fd >= 0) {
        p.Close(static_cast<int>(fd));
      }
      p.Open("/etc/shadow", sim::kORdOnly);  // denied by the rule
    }
  });
  sched.RunUntilExit(pid);
  engine->trace().Disable();

  TracedRun out;
  std::vector<TraceRecord> recs = engine->trace().Drain();
  out.records = recs.size();
  NameTable names{&kernel.labels()};
  out.chrome = RenderChromeTrace(recs, names);
  out.jsonl = RenderJsonLines(recs, names);
  out.text = RenderText(recs, names);
  out.prom = engine->MetricsText();
  return out;
}

TEST(TraceExportTest, RealEngineRunExportsValidChromeTrace) {
  if (!kTraceCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (PF_NO_TRACE)";
  }
  TracedRun run = RunTracedWorkload();
  ASSERT_GT(run.records, 0u) << "traced workload produced no records";
  JsonValidator chrome(run.chrome);
  EXPECT_TRUE(chrome.Validate());
  std::istringstream in(run.jsonl);
  std::string line;
  while (std::getline(in, line)) {
    JsonValidator v(line);
    EXPECT_TRUE(v.Validate()) << line;
  }
  // The denied opens must surface as drops with resolved label names.
  EXPECT_NE(run.text.find("drop"), std::string::npos);
  EXPECT_NE(run.text.find("shadow_t"), std::string::npos);
}

TEST(TraceExportTest, MetricsTextParsesAsPrometheusExposition) {
  if (!kTraceCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (PF_NO_TRACE)";
  }
  TracedRun run = RunTracedWorkload();
  PromParse p = ParsePrometheus(run.prom);
  for (const std::string& e : p.errors) {
    ADD_FAILURE() << e;
  }
  ASSERT_FALSE(p.samples.empty());

  // Core families must be present and typed.
  EXPECT_EQ(p.types["pf_invocations_total"], "counter");
  EXPECT_EQ(p.types["pf_decision_latency_ns"], "histogram");

  // Histogram invariants per (op, path) series: cumulative monotone buckets
  // terminated by +Inf, with _count equal to the +Inf bucket.
  std::map<std::string, std::vector<const PromSample*>> series;
  std::map<std::string, double> counts;
  for (const PromSample& s : p.samples) {
    if (s.name == "pf_decision_latency_ns_bucket") {
      std::string key;
      for (const auto& [k, v] : s.labels) {
        if (k != "le") {
          key += k + "=" + v + ",";
        }
      }
      series[key].push_back(&s);
    } else if (s.name == "pf_decision_latency_ns_count") {
      std::string key;
      for (const auto& [k, v] : s.labels) {
        key += k + "=" + v + ",";
      }
      counts[key] = s.value;
    }
  }
  ASSERT_FALSE(series.empty()) << "no latency histogram series";
  for (const auto& [key, buckets] : series) {
    ASSERT_FALSE(buckets.empty());
    ASSERT_TRUE(buckets.back()->labels.count("le"));
    EXPECT_EQ(buckets.back()->labels.at("le"), "+Inf") << key;
    double prev = 0;
    for (const PromSample* b : buckets) {
      EXPECT_GE(b->value, prev) << "non-cumulative bucket in " << key;
      prev = b->value;
    }
    ASSERT_TRUE(counts.count(key)) << key;
    EXPECT_EQ(counts[key], buckets.back()->value) << key;
  }

  // Sanity: invocation counter reflects the workload.
  double invocations = 0;
  for (const PromSample& s : p.samples) {
    if (s.name == "pf_invocations_total") {
      invocations = s.value;
    }
  }
  EXPECT_GT(invocations, 0.0);
}

// Audit families (DESIGN.md §5j): with the audit pipeline armed over a
// denied workload, MetricsText() must expose the pf_audit_* families and
// the per-ring pf_trace_ring_utilization gauge, and the sampled counters
// must satisfy the hub's conservation contract.
TEST(TraceExportTest, AuditFamiliesExposeConservedCounters) {
  if (!audit::kAuditCompiledIn) {
    GTEST_SKIP() << "audit compiled out (PF_AUDIT=OFF)";
  }
  sim::Kernel kernel(0x5eed);
  sim::BuildSysImage(kernel);
  apps::InstallPrograms(kernel);
  core::Engine* engine = core::InstallProcessFirewall(kernel);
  core::Pftables pftables(engine);
  ASSERT_TRUE(
      pftables.ExecAll({"pftables -o FILE_OPEN -d shadow_t -j DROP"}).ok());

  audit::AuditHub::Config acfg;
  acfg.bucket_capacity = 4;  // force suppression so the counter is nonzero
  acfg.refill_per_sec = 0;
  engine->audit().Enable(acfg);
  if (kTraceCompiledIn) {
    engine->trace().Enable();
  }
  sim::Scheduler sched(kernel);
  sim::SpawnOpts opts;
  opts.name = "audited";
  opts.exe = sim::kBinTrue;
  sim::Pid pid = sched.Spawn(opts, [](sim::Proc& p) {
    sim::UserFrame frame(p, sim::kBinTrue, 0x4000);
    for (int i = 0; i < 32; ++i) {
      p.Open("/etc/shadow", sim::kORdOnly);  // denied every time
    }
  });
  sched.RunUntilExit(pid);
  const size_t drained = engine->audit().Drain().size();
  EXPECT_GT(drained, 0u);

  PromParse p = ParsePrometheus(engine->MetricsText());
  for (const std::string& e : p.errors) {
    ADD_FAILURE() << e;
  }
  EXPECT_EQ(p.types["pf_audit_emitted_total"], "counter");
  EXPECT_EQ(p.types["pf_audit_records_total"], "counter");
  EXPECT_EQ(p.types["pf_audit_suppressed_total"], "counter");
  EXPECT_EQ(p.types["pf_audit_ring_drops_total"], "counter");
  EXPECT_EQ(p.types["pf_audit_drained_total"], "counter");
  EXPECT_EQ(p.types["pf_audit_window_keys"], "gauge");

  std::map<std::string, double> v;
  for (const PromSample& s : p.samples) {
    if (s.labels.empty()) {
      v[s.name] = s.value;
    }
  }
  EXPECT_GT(v["pf_audit_emitted_total"], 0.0);
  EXPECT_GT(v["pf_audit_suppressed_total"], 0.0);
  // Conservation as exposed: emitted == pushed + suppressed; with every
  // ring drained and nothing evicted, pushed == drained.
  EXPECT_EQ(v["pf_audit_emitted_total"],
            v["pf_audit_records_total"] + v["pf_audit_suppressed_total"]);
  EXPECT_EQ(v["pf_audit_records_total"],
            v["pf_audit_drained_total"] + v["pf_audit_ring_drops_total"]);
  EXPECT_GE(v["pf_audit_window_keys"], 1.0);

  if (kTraceCompiledIn) {
    // The companion utilization gauge: one series per allocated ring, a
    // fill fraction in [0, 1].
    size_t util_series = 0;
    for (const PromSample& s : p.samples) {
      if (s.name != "pf_trace_ring_utilization") {
        continue;
      }
      ++util_series;
      ASSERT_TRUE(s.labels.count("ring"));
      EXPECT_EQ(s.labels.at("ring").rfind("worker-", 0), 0u);
      EXPECT_GE(s.value, 0.0);
      EXPECT_LE(s.value, 1.0);
    }
    EXPECT_GT(util_series, 0u) << "a traced run must expose ring utilization";
  }
}

TEST(TraceExportTest, MetricsTextParsesEvenWithoutTraffic) {
  sim::Kernel kernel(0x5eed);
  sim::BuildSysImage(kernel);
  apps::InstallPrograms(kernel);
  core::Engine* engine = core::InstallProcessFirewall(kernel);
  PromParse p = ParsePrometheus(engine->MetricsText());
  for (const std::string& e : p.errors) {
    ADD_FAILURE() << e;
  }
  EXPECT_FALSE(p.samples.empty());
}

}  // namespace
}  // namespace pf::trace
