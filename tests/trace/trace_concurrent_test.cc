// Concurrent producer/consumer stress for the trace ring and hub (label:
// stress; run under the tsan preset). The invariants checked:
//
//   * no record is ever corrupted — a consumed record is always one the
//     producer published, bit for bit (encoded self-checks);
//   * conservation: pushed == consumed + dropped + left-in-ring;
//   * consumed timestamps are strictly increasing (FIFO survives eviction);
//   * the hub's multi-worker Drain() under live producers stays sane.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/trace/hub.h"
#include "src/trace/record.h"
#include "src/trace/ring.h"

namespace pf::trace {
namespace {

// A record whose payload fields are all derived from its sequence number, so
// a consumer can detect any torn or corrupted copy.
TraceRecord SelfChecking(uint64_t n, uint16_t worker) {
  TraceRecord r;
  r.ts_ns = n + 1;  // strictly positive, strictly increasing
  r.ept_ino = n * 0x9e3779b97f4a7c15ull;
  r.ept_offset = ~n;
  r.ept_dev = static_cast<uint32_t>(n);
  r.subject_sid = static_cast<uint32_t>(n >> 1);
  r.object_sid = static_cast<uint32_t>(n >> 2);
  r.chain_id = static_cast<int32_t>(n % 97);
  r.rule_index = static_cast<int32_t>(n % 31);
  r.ctx_ns = static_cast<uint32_t>(n * 3);
  r.eval_ns = static_cast<uint32_t>(n * 5);
  r.total_ns = static_cast<uint32_t>(n * 7);
  r.worker = worker;
  r.op = static_cast<uint8_t>(n % 19);
  r.event = static_cast<uint8_t>(Event::kDecision);
  return r;
}

::testing::AssertionResult CheckRecord(const TraceRecord& r) {
  const uint64_t n = r.ts_ns - 1;
  if (r.ept_ino != n * 0x9e3779b97f4a7c15ull || r.ept_offset != ~n ||
      r.ept_dev != static_cast<uint32_t>(n) ||
      r.subject_sid != static_cast<uint32_t>(n >> 1) ||
      r.object_sid != static_cast<uint32_t>(n >> 2) ||
      r.chain_id != static_cast<int32_t>(n % 97) ||
      r.rule_index != static_cast<int32_t>(n % 31) ||
      r.ctx_ns != static_cast<uint32_t>(n * 3) ||
      r.eval_ns != static_cast<uint32_t>(n * 5) ||
      r.total_ns != static_cast<uint32_t>(n * 7) ||
      r.op != static_cast<uint8_t>(n % 19)) {
    return ::testing::AssertionFailure() << "torn record at n=" << n;
  }
  return ::testing::AssertionSuccess();
}

TEST(TraceConcurrentTest, SpscStressNoTornRecords) {
  constexpr uint64_t kPushes = 200000;
  TraceRing ring(64);  // small ring: maximizes eviction/consumer races

  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (uint64_t n = 0; n < kPushes; ++n) {
      ring.Push(SelfChecking(n, 0));
    }
    done.store(true, std::memory_order_release);
  });

  uint64_t consumed = 0;
  uint64_t last_ts = 0;
  TraceRecord out;
  for (;;) {
    if (ring.Pop(&out)) {
      ASSERT_TRUE(CheckRecord(out));
      ASSERT_GT(out.ts_ns, last_ts) << "FIFO violated after " << consumed;
      last_ts = out.ts_ns;
      ++consumed;
    } else if (done.load(std::memory_order_acquire)) {
      break;  // producer finished and the ring is drained
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  // One more sweep: records published between the last empty Pop and the
  // done flag.
  while (ring.Pop(&out)) {
    ASSERT_TRUE(CheckRecord(out));
    ASSERT_GT(out.ts_ns, last_ts);
    last_ts = out.ts_ns;
    ++consumed;
  }

  // Conservation: every record is accounted for exactly once.
  EXPECT_EQ(ring.pushed(), kPushes);
  EXPECT_EQ(consumed + ring.drops(), kPushes);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_GT(ring.drops(), 0u) << "stress never overflowed a 64-slot ring?";
}

TEST(TraceConcurrentTest, SlowConsumerOnlyLosesOldest) {
  constexpr uint64_t kPushes = 50000;
  TraceRing ring(256);
  std::atomic<bool> done{false};

  std::thread producer([&] {
    for (uint64_t n = 0; n < kPushes; ++n) {
      ring.Push(SelfChecking(n, 0));
    }
    done.store(true, std::memory_order_release);
  });

  // A deliberately slow consumer: pop in bursts with pauses. Everything it
  // does read must be valid and in order.
  uint64_t consumed = 0;
  uint64_t last_ts = 0;
  TraceRecord out;
  while (!done.load(std::memory_order_acquire) || ring.size() > 0) {
    for (int burst = 0; burst < 16 && ring.Pop(&out); ++burst) {
      ASSERT_TRUE(CheckRecord(out));
      ASSERT_GT(out.ts_ns, last_ts);
      last_ts = out.ts_ns;
      ++consumed;
    }
    std::this_thread::yield();
  }
  producer.join();
  while (ring.Pop(&out)) {
    ASSERT_TRUE(CheckRecord(out));
    ASSERT_GT(out.ts_ns, last_ts);
    last_ts = out.ts_ns;
    ++consumed;
  }
  EXPECT_EQ(consumed + ring.drops(), kPushes);
}

TEST(TraceConcurrentTest, HubManyProducersOneFollower) {
  if (!kTraceCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (PF_NO_TRACE)";
  }
  constexpr int kWorkers = 4;
  constexpr uint64_t kPerWorker = 40000;
  TraceHub hub(128);
  hub.Enable();

  std::atomic<int> running{kWorkers};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&hub, &running, w] {
      for (uint64_t n = 0; n < kPerWorker; ++n) {
        hub.Emit(SelfChecking(n, static_cast<uint16_t>(w)));
      }
      running.fetch_sub(1, std::memory_order_acq_rel);
    });
  }

  // Follower drains concurrently; every record it sees must be intact and
  // attributed to a real worker.
  uint64_t consumed = 0;
  while (running.load(std::memory_order_acquire) > 0) {
    for (const TraceRecord& r : hub.Drain()) {
      ASSERT_TRUE(CheckRecord(r));
      ASSERT_LT(r.worker, kWorkers);
      ++consumed;
    }
    std::this_thread::yield();
  }
  for (std::thread& t : workers) {
    t.join();
  }
  for (const TraceRecord& r : hub.Drain()) {
    ASSERT_TRUE(CheckRecord(r));
    ++consumed;
  }
  EXPECT_EQ(hub.records(), kWorkers * kPerWorker);
  EXPECT_EQ(consumed + hub.drops(), kWorkers * kPerWorker);
}

}  // namespace
}  // namespace pf::trace
