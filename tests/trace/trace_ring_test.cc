// TraceRing unit tests: wraparound, overflow accounting (drops increment,
// oldest-record eviction), and the hub's enable/filter gating — the
// single-threaded half of the tracing contract. The concurrent half lives
// in trace_concurrent_test.cc (label: stress).
#include <gtest/gtest.h>

#include <vector>

#include "src/trace/hub.h"
#include "src/trace/record.h"
#include "src/trace/ring.h"

namespace pf::trace {
namespace {

TraceRecord Rec(uint64_t n) {
  TraceRecord r;
  r.ts_ns = n;
  r.subject_sid = static_cast<uint32_t>(n);
  r.event = static_cast<uint8_t>(Event::kDecision);
  return r;
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 16u);   // floor
  EXPECT_EQ(TraceRing(16).capacity(), 16u);
  EXPECT_EQ(TraceRing(17).capacity(), 32u);
  EXPECT_EQ(TraceRing(4096).capacity(), 4096u);
}

TEST(TraceRingTest, FifoWithinCapacity) {
  TraceRing ring(16);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(ring.Push(Rec(i)));
  }
  EXPECT_EQ(ring.size(), 10u);
  TraceRecord out;
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring.Pop(&out));
    EXPECT_EQ(out.ts_ns, i);
    EXPECT_EQ(out.subject_sid, i);
  }
  EXPECT_FALSE(ring.Pop(&out));
  EXPECT_EQ(ring.drops(), 0u);
  EXPECT_EQ(ring.pushed(), 10u);
}

TEST(TraceRingTest, WraparoundPreservesOrderAcrossManyLaps) {
  TraceRing ring(16);
  TraceRecord out;
  uint64_t next_expected = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    ring.Push(Rec(i));
    if (i % 3 == 0) {
      ASSERT_TRUE(ring.Pop(&out));
      EXPECT_GE(out.ts_ns, next_expected);
      next_expected = out.ts_ns + 1;
    }
  }
  // Drain the rest; order must stay monotone.
  while (ring.Pop(&out)) {
    EXPECT_GE(out.ts_ns, next_expected);
    next_expected = out.ts_ns + 1;
  }
  EXPECT_EQ(ring.pushed(), 1000u);
}

TEST(TraceRingTest, OverflowEvictsOldestAndCountsDrops) {
  TraceRing ring(16);  // capacity exactly 16
  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(ring.Push(Rec(i)));
  }
  // The next 4 pushes displace records 0..3.
  for (uint64_t i = 16; i < 20; ++i) {
    EXPECT_FALSE(ring.Push(Rec(i)));  // reports the displacement
  }
  EXPECT_EQ(ring.drops(), 4u);
  EXPECT_EQ(ring.size(), 16u);

  // What remains is the most recent window [4, 20), oldest first.
  TraceRecord out;
  for (uint64_t i = 4; i < 20; ++i) {
    ASSERT_TRUE(ring.Pop(&out));
    EXPECT_EQ(out.ts_ns, i);
  }
  EXPECT_FALSE(ring.Pop(&out));
  EXPECT_EQ(ring.drops(), 4u);  // popping does not drop
}

TEST(TraceRingTest, PayloadSurvivesEvictionIntact) {
  TraceRing ring(16);
  for (uint64_t i = 0; i < 64; ++i) {
    TraceRecord r = Rec(i);
    r.ept_ino = ~i;
    r.ept_offset = i * 3;
    r.chain_id = static_cast<int32_t>(i % 7);
    ring.Push(r);
  }
  TraceRecord out;
  size_t n = 0;
  while (ring.Pop(&out)) {
    EXPECT_EQ(out.ept_ino, ~out.ts_ns);
    EXPECT_EQ(out.ept_offset, out.ts_ns * 3);
    EXPECT_EQ(out.chain_id, static_cast<int32_t>(out.ts_ns % 7));
    ++n;
  }
  EXPECT_EQ(n, 16u);
  EXPECT_EQ(ring.drops(), 48u);
}

TEST(TraceHubTest, DisabledByDefaultAndGatesOnEventAndOp) {
  TraceHub hub;
  EXPECT_FALSE(hub.enabled());
  EXPECT_FALSE(hub.ShouldTrace(Event::kDecision, 0));

  hub.Enable(EventBit(Event::kDecision));
  EXPECT_TRUE(hub.ShouldTrace(Event::kDecision, 0));
  EXPECT_FALSE(hub.ShouldTrace(Event::kRule, 0));

  hub.SetOpFilter(1ull << 5);
  EXPECT_FALSE(hub.ShouldTrace(Event::kDecision, 0));
  EXPECT_TRUE(hub.ShouldTrace(Event::kDecision, 5));

  hub.Disable();
  EXPECT_FALSE(hub.ShouldTrace(Event::kDecision, 5));
}

TEST(TraceHubTest, EmitRoutesByWorkerAndDrainMergesByTimestamp) {
  if (!kTraceCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (PF_NO_TRACE)";
  }
  TraceHub hub(16);
  hub.Enable();
  TraceRecord a = Rec(100);
  a.worker = 0;
  TraceRecord b = Rec(50);
  b.worker = 3;
  TraceRecord c = Rec(75);
  c.worker = 3;
  hub.Emit(a);
  hub.Emit(b);
  hub.Emit(c);

  EXPECT_NE(hub.ring(0), nullptr);
  EXPECT_NE(hub.ring(3), nullptr);
  EXPECT_EQ(hub.ring(1), nullptr);  // never emitted -> never allocated
  EXPECT_EQ(hub.records(), 3u);

  std::vector<TraceRecord> all = hub.Drain();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].ts_ns, 50u);
  EXPECT_EQ(all[1].ts_ns, 75u);
  EXPECT_EQ(all[2].ts_ns, 100u);
  EXPECT_TRUE(hub.Drain().empty());
}

TEST(TraceHubTest, DropsAggregateAcrossRings) {
  if (!kTraceCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (PF_NO_TRACE)";
  }
  TraceHub hub(16);
  hub.Enable();
  for (uint64_t i = 0; i < 20; ++i) {
    TraceRecord r = Rec(i);
    r.worker = 1;
    hub.Emit(r);
  }
  for (uint64_t i = 0; i < 18; ++i) {
    TraceRecord r = Rec(i);
    r.worker = 2;
    hub.Emit(r);
  }
  EXPECT_EQ(hub.drops(), 4u + 2u);
  EXPECT_EQ(hub.records(), 38u);
}

TEST(LatencyHistogramTest, PowerOfTwoBuckets) {
  EXPECT_EQ(LatencyHistogram::BucketOf(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketOf(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketOf(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketOf(4), 3u);
  EXPECT_EQ(LatencyHistogram::BucketOf(~0ull), LatencyHistogram::kBuckets - 1);

  LatencyHistogram h;
  h.Record(0);
  h.Record(3);
  h.Record(3);
  h.Record(1024);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 0u + 3 + 3 + 1024);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(11), 1u);  // bit_width(1024) == 11

  // Bucket bounds are 2^i - 1 and cumulative-compatible (monotone).
  for (size_t i = 0; i + 2 < LatencyHistogram::kBuckets; ++i) {
    EXPECT_LT(LatencyHistogram::BucketBound(i), LatencyHistogram::BucketBound(i + 1));
  }
  EXPECT_EQ(LatencyHistogram::BucketBound(LatencyHistogram::kBuckets - 1), ~0ull);

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

}  // namespace
}  // namespace pf::trace
