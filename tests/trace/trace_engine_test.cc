// Engine-side tracing semantics: what the tracepoints in Authorize /
// ExecEntries / EnsureContext / the verdict cache actually record, that
// per-rule time attribution lands in the pftables counters, that `-Z`
// zeroing is transactional (stats_generation), and that `-L -v` exposes
// the attribution without changing the non-verbose rendering.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/apps/programs.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"
#include "src/trace/export.h"
#include "src/trace/hub.h"

namespace pf::core {
namespace {

using trace::Event;
using trace::TraceRecord;

EngineConfig FullConfig() {
  EngineConfig cfg;
  cfg.verdict_cache = false;  // deterministic traversal counts
  return cfg;
}

// Kernel + engine + a raw task on /bin/true with one user frame, same shape
// as the verdict-cache rig.
struct Rig {
  sim::Kernel kernel{0x5eed};
  Engine* engine = nullptr;
  sim::Task task;
  std::vector<std::shared_ptr<sim::Inode>> pins;

  explicit Rig(const EngineConfig& cfg = FullConfig()) {
    sim::BuildSysImage(kernel);
    apps::InstallPrograms(kernel);
    engine = InstallProcessFirewall(kernel, cfg);
    task.pid = 100;
    task.comm = "traced";
    task.exe = sim::kBinTrue;
    task.cred.sid = kernel.labels().Intern("staff_t");
    task.cwd = kernel.vfs().root()->id();
    task.mm.Reset(kernel.AslrStackBase());
    kernel.MapImage(task, kernel.LookupNoHooks(sim::kBinTrue), sim::kBinTrue);
    const sim::Mapping* map = task.mm.FindMappingByPath(sim::kBinTrue);
    task.mm.PushFrame(map->base + 0x100, 16, false);
  }

  Status Install(const std::vector<std::string>& rules) {
    Pftables pft(engine);
    return pft.ExecAll(rules);
  }

  int64_t Open(const char* path) {
    ++task.syscall_count;
    auto inode = kernel.LookupNoHooks(path);
    sim::AccessRequest req;
    req.task = &task;
    req.op = sim::Op::kFileOpen;
    req.inode = inode.get();
    req.id = inode->id();
    req.syscall_nr = sim::SyscallNr::kOpen;
    pins.push_back(std::move(inode));
    return engine->Authorize(req);
  }
};

std::vector<TraceRecord> OfKind(const std::vector<TraceRecord>& recs, Event e) {
  std::vector<TraceRecord> out;
  for (const TraceRecord& r : recs) {
    if (r.event == static_cast<uint8_t>(e)) {
      out.push_back(r);
    }
  }
  return out;
}

TEST(TraceEngineTest, DisabledEmitsNothing) {
  Rig rig;
  ASSERT_TRUE(rig.Install({"pftables -o FILE_OPEN -d shadow_t -j DROP"}).ok());
  EXPECT_LT(rig.Open("/etc/shadow"), 0);
  EXPECT_EQ(rig.Open("/etc/passwd"), 0);
  EXPECT_EQ(rig.engine->trace().records(), 0u);
  EXPECT_TRUE(rig.engine->trace().Drain().empty());
  EngineStats s = rig.engine->stats();
  EXPECT_EQ(s.trace_records, 0u);
  EXPECT_EQ(s.trace_drops, 0u);
}

TEST(TraceEngineTest, DecisionRecordCarriesVerdictAndAttribution) {
  if (!trace::kTraceCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (PF_NO_TRACE)";
  }
  Rig rig;
  ASSERT_TRUE(rig.Install({"pftables -o FILE_OPEN -d shadow_t -j DROP"}).ok());
  rig.engine->trace().Enable();

  EXPECT_LT(rig.Open("/etc/shadow"), 0);
  EXPECT_EQ(rig.Open("/etc/passwd"), 0);
  rig.engine->trace().Disable();

  std::vector<TraceRecord> decisions =
      OfKind(rig.engine->trace().Drain(), Event::kDecision);
  ASSERT_EQ(decisions.size(), 2u);

  const TraceRecord& drop = decisions[0];
  EXPECT_EQ(drop.op, static_cast<uint8_t>(sim::Op::kFileOpen));
  EXPECT_TRUE(drop.flags & trace::kFlagDrop);
  EXPECT_EQ(drop.subject_sid, rig.task.cred.sid);
  EXPECT_EQ(drop.object_sid, rig.kernel.labels().Intern("shadow_t"));
  // The verdict came from the compiled program's input chain, rule 0.
  EXPECT_EQ(drop.path, static_cast<uint8_t>(trace::Path::kCompiled));
  EXPECT_GE(drop.chain_id, 0);
  EXPECT_EQ(drop.rule_index, 0);
  EXPECT_GT(drop.total_ns, 0u);
  EXPECT_LE(drop.eval_ns, drop.total_ns);

  const TraceRecord& accept = decisions[1];
  EXPECT_FALSE(accept.flags & trace::kFlagDrop);
  // Default-accept: no rule produced the verdict.
  EXPECT_EQ(accept.chain_id, -1);
  EXPECT_EQ(accept.rule_index, -1);

  // Timestamps are monotone in emission order.
  EXPECT_LE(drop.ts_ns, accept.ts_ns);
}

TEST(TraceEngineTest, RuleEventsAttributeTimeToCounters) {
  if (!trace::kTraceCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (PF_NO_TRACE)";
  }
  Rig rig;
  ASSERT_TRUE(rig.Install({"pftables -o FILE_OPEN -d shadow_t -j DROP"}).ok());
  rig.engine->trace().Enable();
  for (int i = 0; i < 8; ++i) {
    EXPECT_LT(rig.Open("/etc/shadow"), 0);
  }
  rig.engine->trace().Disable();

  std::vector<TraceRecord> rules =
      OfKind(rig.engine->trace().Drain(), Event::kRule);
  ASSERT_FALSE(rules.empty());
  for (const TraceRecord& r : rules) {
    EXPECT_TRUE(r.flags & trace::kFlagDrop);
    EXPECT_GE(r.chain_id, 0);
    EXPECT_EQ(r.rule_index, 0);
  }

  // The accumulated per-rule time surfaces in the verbose listing only.
  Pftables pft(rig.engine);
  const std::string verbose = pft.List("filter", /*verbose=*/true);
  EXPECT_NE(verbose.find("time="), std::string::npos) << verbose;
  EXPECT_NE(verbose.find("evals="), std::string::npos);
  const std::string plain = pft.List("filter");
  EXPECT_EQ(plain.find("time="), std::string::npos) << plain;
}

TEST(TraceEngineTest, VcacheProbesAreTraced) {
  if (!trace::kTraceCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (PF_NO_TRACE)";
  }
  EngineConfig cfg;  // verdict cache on
  Rig rig(cfg);
  ASSERT_TRUE(rig.Install({"pftables -o FILE_OPEN -d shadow_t -j DROP"}).ok());
  rig.engine->trace().Enable();
  EXPECT_LT(rig.Open("/etc/shadow"), 0);  // miss
  EXPECT_LT(rig.Open("/etc/shadow"), 0);  // hit
  rig.engine->trace().Disable();

  std::vector<TraceRecord> all = rig.engine->trace().Drain();
  std::vector<TraceRecord> probes = OfKind(all, Event::kVcache);
  ASSERT_EQ(probes.size(), 2u);
  EXPECT_EQ(probes[0].cache, trace::kCacheMiss);
  EXPECT_EQ(probes[1].cache, trace::kCacheHit);

  // The hit decision is attributed to the VCACHE path, the miss to the
  // traversal that filled it.
  std::vector<TraceRecord> decisions = OfKind(all, Event::kDecision);
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].cache, trace::kCacheMiss);
  EXPECT_EQ(decisions[1].cache, trace::kCacheHit);
  EXPECT_EQ(decisions[1].path, static_cast<uint8_t>(trace::Path::kVcache));
}

TEST(TraceEngineTest, OpFilterSelectsOps) {
  if (!trace::kTraceCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (PF_NO_TRACE)";
  }
  Rig rig;
  ASSERT_TRUE(rig.Install({"pftables -o FILE_OPEN -d shadow_t -j DROP"}).ok());
  rig.engine->trace().Enable();
  // Admit only DIR_SEARCH; the FILE_OPEN decision below must not record.
  rig.engine->trace().SetOpFilter(
      1ull << static_cast<uint32_t>(sim::Op::kDirSearch));
  EXPECT_LT(rig.Open("/etc/shadow"), 0);
  rig.engine->trace().SetOpFilter(~0ull);
  EXPECT_LT(rig.Open("/etc/shadow"), 0);
  rig.engine->trace().Disable();

  std::vector<TraceRecord> decisions =
      OfKind(rig.engine->trace().Drain(), Event::kDecision);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].op, static_cast<uint8_t>(sim::Op::kFileOpen));
}

TEST(TraceEngineTest, LatencyHistogramsPopulate) {
  if (!trace::kTraceCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (PF_NO_TRACE)";
  }
  Rig rig;
  ASSERT_TRUE(rig.Install({"pftables -o FILE_OPEN -d shadow_t -j DROP"}).ok());
  rig.engine->trace().Enable();
  for (int i = 0; i < 16; ++i) {
    rig.Open("/etc/shadow");
  }
  rig.engine->trace().Disable();
  const trace::LatencyHistogram& h = rig.engine->trace().histogram(
      static_cast<uint32_t>(sim::Op::kFileOpen), trace::Path::kCompiled);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_GT(h.sum(), 0u);
}

TEST(TraceEngineTest, StatsGenerationDetectsZeroing) {
  Rig rig;
  ASSERT_TRUE(rig.Install({"pftables -o FILE_OPEN -d shadow_t -j DROP"}).ok());
  EXPECT_LT(rig.Open("/etc/shadow"), 0);

  EngineStats before = rig.engine->stats();
  EXPECT_FALSE(before.torn);
  EXPECT_EQ(before.stats_generation % 2, 0u) << "generation odd outside a mutation";

  Pftables pft(rig.engine);
  ASSERT_TRUE(pft.ZeroCounters().ok());
  EngineStats after = rig.engine->stats();
  EXPECT_FALSE(after.torn);
  EXPECT_EQ(after.stats_generation, before.stats_generation + 2)
      << "one zeroing = one begin/end generation pair";

  // A mid-mutation reader must see itself torn.
  rig.engine->BeginCounterMutation();
  EngineStats mid = rig.engine->stats();
  EXPECT_TRUE(mid.torn);
  rig.engine->EndCounterMutation();
  EXPECT_FALSE(rig.engine->stats().torn);
}

TEST(TraceEngineTest, ZeroCountersIsScopedAndValidated) {
  Rig rig;
  ASSERT_TRUE(rig.Install({
      "pftables -N web",
      "pftables -o FILE_OPEN -d shadow_t -j DROP",
      "pftables -A web -o FILE_OPEN -j ACCEPT",
  }).ok());
  EXPECT_LT(rig.Open("/etc/shadow"), 0);
  EXPECT_EQ(rig.Open("/etc/passwd"), 0);

  Pftables pft(rig.engine);
  std::string listing = pft.List();
  EXPECT_NE(listing.find("evals"), std::string::npos);

  // Unknown chain: an error, nothing zeroed.
  EXPECT_FALSE(pft.ZeroCounters("nope").ok());

  // Zeroing one chain leaves the others' counters alone; zeroing all
  // clears everything. Counter state is visible via the -L rendering.
  ASSERT_TRUE(pft.ZeroCounters("web").ok());
  ASSERT_TRUE(pft.ZeroCounters().ok());
  // After a full zero the input rule reports zero evals; run one more
  // access and it counts from zero again.
  EXPECT_LT(rig.Open("/etc/shadow"), 0);
  EngineStats s = rig.engine->stats();
  EXPECT_FALSE(s.torn);
}

TEST(TraceEngineTest, PftablesZCommandParses) {
  Rig rig;
  ASSERT_TRUE(rig.Install({"pftables -o FILE_OPEN -d shadow_t -j DROP"}).ok());
  EXPECT_LT(rig.Open("/etc/shadow"), 0);
  Pftables pft(rig.engine);
  EXPECT_TRUE(pft.Exec("pftables -Z").ok());
  EXPECT_TRUE(pft.Exec("pftables -Z input").ok());
  EXPECT_FALSE(pft.Exec("pftables -Z no_such_chain").ok());
  // `-L -v` must parse (the -v must not be taken for a chain name).
  EXPECT_TRUE(pft.Exec("pftables -L -v").ok());
}

TEST(TraceEngineTest, TraceRecordsSurfaceInEngineStats) {
  if (!trace::kTraceCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (PF_NO_TRACE)";
  }
  Rig rig;
  ASSERT_TRUE(rig.Install({"pftables -o FILE_OPEN -d shadow_t -j DROP"}).ok());
  rig.engine->trace().Enable(trace::EventBit(Event::kDecision));
  for (int i = 0; i < 4; ++i) {
    rig.Open("/etc/shadow");
  }
  rig.engine->trace().Disable();
  EngineStats s = rig.engine->stats();
  EXPECT_EQ(s.trace_records, 4u);
  EXPECT_EQ(s.trace_drops, 0u);
}

}  // namespace
}  // namespace pf::core
