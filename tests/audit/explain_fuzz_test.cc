// Differential proof of pfexplain (DESIGN.md §5j): over the same seeded
// random rule bases the evaluator and symbolic-model batteries use,
// ExplainRequest's replay must agree with Engine::Authorize (its verdict IS
// the engine's verdict) *and* with the symbolic decision-space model (the
// region containing the request's atom assignment predicts the same
// outcome), while the provenance tree stays internally consistent: a denial
// served by a traversal tier names a rule whose eval counter moved, and the
// serving tier matches the verdict-cache counter movement.
//
// Seed control: PF_FUZZ_SEEDS=N runs N consecutive seeds (default 16).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "src/analysis/symbolic/model.h"
#include "src/apps/explain.h"
#include "src/apps/programs.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/error.h"
#include "src/sim/sysimage.h"
#include "tests/core/fuzz_rules.h"

namespace pf::apps {
namespace {

namespace sym = pf::analysis::symbolic;

constexpr uint64_t kSeedBase = 0xf002;  // same base as the evaluator battery

int SeedCount() {
  if (const char* env = std::getenv("PF_FUZZ_SEEDS"); env != nullptr) {
    const int n = std::atoi(env);
    if (n >= 1) {
      return n;
    }
  }
  return 16;
}

// COUNT with a declared static kind, so the model stays determinate (same
// shadowing the symbolic battery performs).
class StaticCountTarget : public core::fuzzgen::CountTarget {
 public:
  using CountTarget::CountTarget;
  std::optional<core::TargetKind> StaticKind() const override {
    return core::TargetKind::kContinue;
  }
};

struct TaskProfile {
  const char* label;
  const char* bin;      // nullptr = no stack frames (invalid entrypoint)
  uint64_t offset = 0;  // binary-relative entrypoint offset
};

const TaskProfile kProfiles[] = {
    {"staff_t", "/bin/true", 0x100},
    {"user_t", "/bin/true", 0x200},
    {"etc_t", "/usr/bin/apache2", 0x8000},
    {"user_t", "/bin/sh", 0x8040},
    {"staff_t", "/bin/true", 0x9999},
    {"tmp_t", nullptr},
};

struct Env {
  std::unique_ptr<sim::Kernel> kernel;
  core::Engine* engine = nullptr;  // owned by the kernel module list
  std::unique_ptr<core::Pftables> pft;
  uint64_t count_fires = 0;
};

Env BootEnv(uint64_t seed, bool ept) {
  Env env;
  env.kernel = std::make_unique<sim::Kernel>(0x5eed);
  sim::BuildSysImage(*env.kernel);
  apps::InstallPrograms(*env.kernel);
  core::EngineConfig cfg;
  cfg.ept_chains = ept;
  env.engine = core::InstallProcessFirewall(*env.kernel, cfg);
  env.pft = std::make_unique<core::Pftables>(env.engine);
  core::fuzzgen::RegisterFuzzModules(*env.pft, &env.count_fires);
  env.pft->RegisterTarget(
      "COUNT", [fires = &env.count_fires](const std::vector<std::string>& opts,
                                          std::unique_ptr<core::TargetModule>* t) {
        if (!opts.empty()) {
          return core::Status::Error("COUNT takes no options");
        }
        *t = std::make_unique<StaticCountTarget>(fires);
        return core::Status::Ok();
      });
  env.kernel->MkFileAt("/tmp/t", "x", 0666, 0, 0, "tmp_t");

  std::mt19937_64 rule_rng(seed);
  core::Status s = env.pft->ExecAll(
      core::fuzzgen::RandomRules(rule_rng, core::fuzzgen::FlavorForSeed(seed)));
  EXPECT_TRUE(s.ok()) << "seed " << seed << ": " << s.message();
  return env;
}

std::unique_ptr<sim::Task> MakeTask(sim::Kernel& kernel, const TaskProfile& prof,
                                    sim::Pid pid) {
  auto task = std::make_unique<sim::Task>();
  task->pid = pid;
  task->comm = "explainfuzz";
  task->exe = prof.bin != nullptr ? prof.bin : sim::kBinTrue;
  task->cred.uid = 0;
  task->cred.euid = 0;
  task->cred.sid = kernel.labels().Intern(prof.label);
  task->cwd = kernel.vfs().root()->id();
  task->mm.Reset(kernel.AslrStackBase());
  if (prof.bin != nullptr) {
    kernel.MapImage(*task, kernel.LookupNoHooks(prof.bin), prof.bin);
    const sim::Mapping* map = task->mm.FindMappingByPath(prof.bin);
    task->mm.PushFrame(map->base + prof.offset, 16, false);
  }
  return task;
}

// Concrete truth of the generators' three opaque predicate shapes (the same
// semantics the symbolic battery pins down).
bool OpaqueTruth(const std::string& id, bool has_object, uint64_t ino) {
  if (id.rfind("ODD_INO", 0) == 0) {
    return has_object && ino % 2 == 1;
  }
  if (id.rfind("SIGNAL_MATCH", 0) == 0) {
    return false;
  }
  if (id.rfind("COMPARE", 0) == 0) {
    const size_t v2 = id.find("--v2 ");
    EXPECT_NE(v2, std::string::npos) << "unparseable COMPARE id: " << id;
    const int64_t rhs = std::strtoll(id.c_str() + v2 + 5, nullptr, 0);
    const bool negate = id.find("--nequal") != std::string::npos;
    const bool equal = rhs == 0;  // C_UID is 0 for every task in this test
    return negate ? !equal : equal;
  }
  ADD_FAILURE() << "opaque dimension with unknown concrete semantics: " << id;
  return false;
}

std::vector<uint32_t> Assignment(const sym::Universe& u, sim::Kernel& kernel,
                                 const TaskProfile& prof, const sim::Task& task,
                                 const sim::AccessRequest& req,
                                 const std::map<std::string, int64_t>& dict) {
  std::vector<uint32_t> a(u.dim_count(), 0);
  a[sym::kDimSubject] = u.AtomForSid(task.cred.sid);
  const bool has_object = req.inode != nullptr;
  const uint64_t ino = has_object ? req.id.ino : 0;
  if (has_object) {
    a[sym::kDimObject] = u.AtomForSid(req.inode->sid);
    a[sym::kDimIno] = u.AtomForIno(ino);
  }
  if (prof.bin != nullptr) {
    const sim::FileId image = kernel.LookupNoHooks(prof.bin)->id();
    a[sym::kDimEpt] = u.AtomForEpt(true, image, prof.offset);
  } else {
    a[sym::kDimEpt] = u.AtomForEpt(false, {}, 0);
  }
  a[sym::kDimInterp] = u.AtomForInterp(sim::InterpLang::kNone, "");
  a[sym::kDimArgBase] = u.AtomForArg(0, static_cast<int64_t>(req.syscall_nr));
  for (int i = 1; i < sym::kNumArgDims; ++i) {
    a[sym::kDimArgBase + i] = u.AtomForArg(i, req.args[static_cast<size_t>(i - 1)]);
  }
  for (size_t i = 0; i < u.state_dims.size(); ++i) {
    const auto it = dict.find(u.state_dims[i].key);
    a[u.StateDimIndex(i)] = u.AtomForState(
        i, it == dict.end() ? std::nullopt : std::optional<int64_t>(it->second));
  }
  for (size_t i = 0; i < u.opaque_ids.size(); ++i) {
    a[u.OpaqueDimIndex(i)] = OpaqueTruth(u.opaque_ids[i], has_object, ino) ? 1 : 0;
  }
  return a;
}

// The tiers whose name ExplainRequest may report, for the consistency check.
bool IsTraversalTier(const std::string& tier) {
  return tier == "compiled" || tier == "legacy" || tier == "bypass";
}

void RunExplainProof(uint64_t seed, bool ept) {
  Env env = BootEnv(seed, ept);
  if (::testing::Test::HasFatalFailure()) {
    return;
  }
  sym::ModelOptions opts;
  opts.ept_chains = ept;
  const sym::SymbolicModel model = sym::BuildModel(
      *env.engine->CompileRuleset(), env.engine->policy(), nullptr, opts);
  ASSERT_FALSE(model.indeterminate) << "seed " << seed;
  const sym::Universe& u = *model.universe;

  std::vector<std::unique_ptr<sim::Task>> tasks;
  for (size_t i = 0; i < std::size(kProfiles); ++i) {
    tasks.push_back(
        MakeTask(*env.kernel, kProfiles[i], static_cast<sim::Pid>(700 + i)));
  }

  const char* kPaths[] = {"/etc/passwd", "/etc/shadow", "/tmp/t", "/bin/true"};
  std::vector<std::shared_ptr<sim::Inode>> pins;
  std::mt19937_64 rng(seed ^ 0xe8b1a117ull);

  for (int i = 0; i < 120; ++i) {
    const size_t ti = rng() % std::size(kProfiles);
    sim::Task& task = *tasks[ti];
    sim::AccessRequest req;
    req.task = &task;
    switch (rng() % 6) {
      case 0:
      case 1:
      case 2: {
        auto inode = env.kernel->LookupNoHooks(kPaths[rng() % std::size(kPaths)]);
        req.op = sim::Op::kFileOpen;
        req.inode = inode.get();
        req.id = inode->id();
        req.syscall_nr = sim::SyscallNr::kOpen;
        pins.push_back(std::move(inode));
        break;
      }
      case 3: {
        auto inode = env.kernel->LookupNoHooks(kPaths[rng() % std::size(kPaths)]);
        req.op = sim::Op::kFileGetattr;
        req.inode = inode.get();
        req.id = inode->id();
        req.syscall_nr = sim::SyscallNr::kStat;
        pins.push_back(std::move(inode));
        break;
      }
      case 4:
        req.op = sim::Op::kSignalDeliver;
        req.sig = sim::kSigUsr1;
        req.sig_sender = 1;
        req.syscall_nr = sim::SyscallNr::kKill;
        break;
      default:
        req.op = sim::Op::kSyscallBegin;
        req.syscall_nr = static_cast<sim::SyscallNr>(rng() % 8);
        break;
    }

    // Region membership is a function of the pre-decision STATE.
    const std::map<std::string, int64_t> dict = env.engine->TaskState(task).dict;
    const std::vector<uint32_t> a =
        Assignment(u, *env.kernel, kProfiles[ti], task, req, dict);
    const sym::DecisionRegion* region = model.Find(req.op, a);
    ASSERT_NE(region, nullptr) << "seed " << seed << " request " << i;

    const ExplainResult got = ExplainRequest(*env.engine, req);
    const int64_t predicted = region->outcome == sym::OutcomeKind::kAllow
                                  ? 0
                                  : sim::SysError(sim::Err::kAcces);
    ASSERT_EQ(got.verdict, predicted)
        << "seed " << seed << " (flavor "
        << core::fuzzgen::FlavorName(core::fuzzgen::FlavorForSeed(seed))
        << ", ept " << (ept ? "on" : "off") << ") request " << i << " op "
        << sim::OpName(req.op) << " tier " << got.tier
        << ": pfexplain disagrees with region decided by " << region->decided_by;

    // Internal consistency of the provenance tree.
    EXPECT_EQ(got.drop, got.verdict != 0);
    EXPECT_FALSE(got.tier.empty());
    if (got.drop && IsTraversalTier(got.tier) && got.chain_id >= 0) {
      bool named = false;
      for (const ExplainStep& s : got.steps) {
        named |= s.produced_verdict;
        if (s.produced_verdict) {
          EXPECT_GT(s.hits, 0u)
              << "seed " << seed << " request " << i
              << ": the verdict-producing rule's hit counter did not move";
        }
      }
      EXPECT_TRUE(named)
          << "seed " << seed << " request " << i << ": denial attributed to "
          << got.chain_id << ":" << got.rule_index
          << " but no evaluated step carries it";
    }
    if (got.tier == "fast-path") {
      EXPECT_TRUE(got.steps.empty())
          << "seed " << seed << " request " << i
          << ": a fast-path decision cannot have evaluated rules";
    }
  }
}

TEST(ExplainFuzzTest, ExplainAgreesWithEngineAndModel) {
  const int seeds = SeedCount();
  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = kSeedBase + static_cast<uint64_t>(i);
    RunExplainProof(seed, /*ept=*/i % 2 == 0);
    if (::testing::Test::HasFailure()) {
      return;  // first divergence wins
    }
  }
}

}  // namespace
}  // namespace pf::apps
