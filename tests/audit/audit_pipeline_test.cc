// pfaudit pipeline proof (DESIGN.md §5j):
//
//   * AuditHub unit behavior against synthetic records: the kind enable
//     mask, token-bucket suppression with the collapsed-run count carried on
//     the first admitted record, sliding-window rotation and the deny-rate
//     anomaly flag, and ring eviction accounting;
//   * the conservation contract stated in hub.h — emitted == pushed +
//     suppressed, pushed == drained + ring_drops + still-buffered — nothing
//     the engine emits is ever unaccounted for;
//   * end-to-end attribution (the ISSUE acceptance criterion): every denial
//     a real workload provokes yields a drained AuditRecord whose (rule,
//     subject, entrypoint, tier) attribution matches the per-rule hit
//     counters exactly, including denials served from the verdict cache;
//   * audit-only mode, LOG-hit and @phase-transition records.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/apps/programs.h"
#include "src/audit/export.h"
#include "src/audit/hub.h"
#include "src/core/engine.h"
#include "src/core/modules.h"
#include "src/core/pftables.h"
#include "src/sim/error.h"
#include "src/sim/sched.h"
#include "src/sim/sysimage.h"

namespace pf::audit {
namespace {

AuditRecord MakeDeny(uint64_t ts, int32_t chain = 2, int32_t rule = 1,
                     uint32_t sid = 7) {
  AuditRecord r;
  r.ts_ns = ts;
  r.kind = static_cast<uint8_t>(Kind::kDeny);
  r.tier = static_cast<uint8_t>(Tier::kCompiled);
  r.chain_id = chain;
  r.rule_index = rule;
  r.subject_sid = sid;
  r.op = 1;
  return r;
}

// --- hub unit behavior ----------------------------------------------------

TEST(AuditHubTest, KindMaskDropsDisabledKindsSilently) {
  AuditHub hub;
  AuditHub::Config cfg;
  cfg.kinds = KindBit(Kind::kDeny);
  hub.Enable(cfg);
  AuditRecord log = MakeDeny(100);
  log.kind = static_cast<uint8_t>(Kind::kLogHit);
  EXPECT_FALSE(hub.Emit(0, log));
  EXPECT_EQ(hub.emitted(), 0u) << "a masked kind must not count as emitted";
  EXPECT_TRUE(hub.Emit(0, MakeDeny(200)));
  EXPECT_EQ(hub.emitted(), 1u);
  EXPECT_EQ(hub.Drain().size(), 1u);
}

TEST(AuditHubTest, TokenBucketCollapsesRunsAndCarriesTheCount) {
  AuditHub hub;
  AuditHub::Config cfg;
  cfg.bucket_capacity = 4;
  cfg.refill_per_sec = 1;
  hub.Enable(cfg);

  // A dense run at one key: 4 admitted on the initial burst, 6 collapsed.
  for (int i = 0; i < 10; ++i) {
    const bool admitted = hub.Emit(0, MakeDeny(1000 + static_cast<uint64_t>(i)));
    EXPECT_EQ(admitted, i < 4) << "record " << i;
  }
  EXPECT_EQ(hub.emitted(), 10u);
  EXPECT_EQ(hub.suppressed(), 6u);

  // One second later a token has refilled: the next record is admitted and
  // carries the collapsed-run count — the stream loses no information.
  ASSERT_TRUE(hub.Emit(0, MakeDeny(1000 + 1'000'000'000ull)));
  std::vector<AuditRecord> recs = hub.Drain();
  ASSERT_EQ(recs.size(), 5u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(recs[i].flags & kFlagSuppressedTail, 0) << i;
    EXPECT_EQ(recs[i].suppressed, 0u) << i;
  }
  EXPECT_NE(recs.back().flags & kFlagSuppressedTail, 0);
  EXPECT_EQ(recs.back().suppressed, 6u);

  // Per-key accounting matches the global counters.
  std::vector<KeyWindow> windows = hub.WindowSnapshot();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].suppressed, 6u);
  EXPECT_EQ(windows[0].total, 11u);
}

TEST(AuditHubTest, DifferentKeysHaveIndependentBuckets) {
  AuditHub hub;
  AuditHub::Config cfg;
  cfg.bucket_capacity = 1;
  cfg.refill_per_sec = 0;
  hub.Enable(cfg);
  EXPECT_TRUE(hub.Emit(0, MakeDeny(10, /*chain=*/1, /*rule=*/0)));
  EXPECT_FALSE(hub.Emit(0, MakeDeny(11, /*chain=*/1, /*rule=*/0)));
  // A different rule, subject, or entrypoint is a different key.
  EXPECT_TRUE(hub.Emit(0, MakeDeny(12, /*chain=*/1, /*rule=*/1)));
  EXPECT_TRUE(hub.Emit(0, MakeDeny(13, /*chain=*/1, /*rule=*/0, /*sid=*/8)));
  AuditRecord ept = MakeDeny(14, 1, 0);
  ept.flags |= kFlagEptValid;
  ept.ept_ino = 42;
  ept.ept_offset = 0x100;
  EXPECT_TRUE(hub.Emit(0, ept));
}

TEST(AuditHubTest, ZeroBucketCapacityDisablesSuppression) {
  AuditHub hub;
  AuditHub::Config cfg;
  cfg.bucket_capacity = 0;
  hub.Enable(cfg);
  for (int i = 0; i < 256; ++i) {
    EXPECT_TRUE(hub.Emit(0, MakeDeny(static_cast<uint64_t>(i))));
  }
  EXPECT_EQ(hub.suppressed(), 0u);
  EXPECT_EQ(hub.Drain().size(), 256u);
}

TEST(AuditHubTest, WindowRotationFlagsAndClearsAnomalies) {
  AuditHub hub;
  AuditHub::Config cfg;
  cfg.bucket_capacity = 0;  // suppression off: observe every record
  cfg.window_ns = 1000;
  cfg.spike_min = 8;
  cfg.spike_factor = 4.0;
  hub.Enable(cfg);

  // Window 1: a quiet baseline of 2 records.
  hub.Emit(0, MakeDeny(0));
  hub.Emit(0, MakeDeny(1));
  // Window 2: a burst. The spike trips once window_count >= spike_min and
  // count > factor * trailing (2): at the 9th record (9 > 8 = 4.0*2).
  for (int i = 0; i < 12; ++i) {
    hub.Emit(0, MakeDeny(1000 + static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(hub.anomalies(), 1u);
  std::vector<AuditRecord> recs = hub.Drain();
  ASSERT_EQ(recs.size(), 14u);
  size_t flagged = 0;
  for (const AuditRecord& r : recs) {
    flagged += (r.flags & kFlagAnomaly) != 0 ? 1 : 0;
  }
  EXPECT_EQ(flagged, 4u) << "records 9..12 of the burst window spike";

  std::vector<KeyWindow> windows = hub.WindowSnapshot();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_TRUE(windows[0].anomaly);
  EXPECT_EQ(windows[0].window_count, 12u);
  EXPECT_EQ(windows[0].trailing_count, 2u);

  // Window 3, calm again: the flag clears on rotation, the burst becomes
  // the trailing baseline.
  hub.Emit(0, MakeDeny(2000));
  windows = hub.WindowSnapshot();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_FALSE(windows[0].anomaly);
  EXPECT_EQ(windows[0].trailing_count, 12u);
  EXPECT_EQ(windows[0].window_count, 1u);

  // A long gap (more than one full window) zeroes the baseline: spikes are
  // judged against the immediately preceding window, not ancient history.
  hub.Emit(0, MakeDeny(50000));
  windows = hub.WindowSnapshot();
  EXPECT_EQ(windows[0].trailing_count, 0u);
}

TEST(AuditHubTest, ConservationHoldsAcrossSuppressionAndRingEviction) {
  AuditHub hub;
  AuditHub::Config cfg;
  cfg.ring_capacity = 16;  // force eviction of unread records
  cfg.bucket_capacity = 32;
  cfg.refill_per_sec = 0;
  hub.Enable(cfg);

  // 64 distinct keys x 2 records: 128 emitted, later keys evict earlier
  // records from the tiny ring; one key also runs into its bucket.
  for (int k = 0; k < 64; ++k) {
    hub.Emit(0, MakeDeny(static_cast<uint64_t>(k), /*chain=*/k, /*rule=*/0));
  }
  for (int i = 0; i < 64; ++i) {
    hub.Emit(0, MakeDeny(100 + static_cast<uint64_t>(i), /*chain=*/99, /*rule=*/0));
  }

  const uint64_t emitted = hub.emitted();
  const uint64_t suppressed = hub.suppressed();
  const uint64_t pushed = hub.records();
  EXPECT_EQ(emitted, 128u);
  EXPECT_EQ(emitted, pushed + suppressed)
      << "every emitted record is either pushed or suppressed";

  const size_t drained_now = hub.Drain().size();
  EXPECT_EQ(hub.drained(), drained_now);
  EXPECT_EQ(pushed, hub.drained() + hub.ring_drops())
      << "after a full drain nothing is buffered: pushed == drained + evicted";
  EXPECT_GT(hub.ring_drops(), 0u) << "the 16-slot ring must have evicted";
  EXPECT_GT(suppressed, 0u) << "key 99 must have exhausted its bucket";
}

TEST(AuditHubTest, DrainMergesWorkersInTimestampOrder) {
  AuditHub hub;
  AuditHub::Config cfg;
  cfg.bucket_capacity = 0;
  hub.Enable(cfg);
  hub.Emit(0, MakeDeny(300));
  hub.Emit(1, MakeDeny(100));
  hub.Emit(2, MakeDeny(200));
  std::vector<AuditRecord> recs = hub.Drain();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].ts_ns, 100u);
  EXPECT_EQ(recs[1].ts_ns, 200u);
  EXPECT_EQ(recs[2].ts_ns, 300u);
}

// --- end-to-end: a real denied workload ----------------------------------

struct BootedEngine {
  std::unique_ptr<sim::Kernel> kernel;
  core::Engine* engine = nullptr;  // owned by the kernel module list
  std::unique_ptr<core::Pftables> pft;
};

BootedEngine Boot(const std::vector<std::string>& rules,
                  core::EngineConfig cfg = {}) {
  BootedEngine env;
  env.kernel = std::make_unique<sim::Kernel>(0x5eed);
  sim::BuildSysImage(*env.kernel);
  apps::InstallPrograms(*env.kernel);
  env.engine = core::InstallProcessFirewall(*env.kernel, cfg);
  env.pft = std::make_unique<core::Pftables>(env.engine);
  EXPECT_TRUE(env.pft->ExecAll(rules).ok());
  return env;
}

// A task stopped at a known entrypoint, issuing requests directly.
std::unique_ptr<sim::Task> MakeTask(sim::Kernel& kernel, const char* label,
                                    uint64_t offset = 0x4000) {
  auto task = std::make_unique<sim::Task>();
  task->pid = 777;
  task->comm = "audit-test";
  task->exe = sim::kBinTrue;
  task->cred.uid = 0;
  task->cred.euid = 0;
  task->cred.sid = kernel.labels().Intern(label);
  task->cwd = kernel.vfs().root()->id();
  task->mm.Reset(kernel.AslrStackBase());
  kernel.MapImage(*task, kernel.LookupNoHooks(sim::kBinTrue), sim::kBinTrue);
  const sim::Mapping* map = task->mm.FindMappingByPath(sim::kBinTrue);
  task->mm.PushFrame(map->base + offset, 16, false);
  return task;
}

sim::AccessRequest OpenRequest(sim::Task& task, sim::Inode* inode) {
  sim::AccessRequest req;
  req.task = &task;
  req.op = sim::Op::kFileOpen;
  req.inode = inode;
  req.id = inode->id();
  req.syscall_nr = sim::SyscallNr::kOpen;
  return req;
}

TEST(AuditPipelineTest, EveryBlockedAccessYieldsAnExactlyAttributedRecord) {
  if (!kAuditCompiledIn) {
    GTEST_SKIP() << "audit compiled out (PF_AUDIT=OFF)";
  }
  // Entrypoint-filtered so the lazily resolved entrypoint context is
  // material to the decision — every deny record must carry the binding.
  BootedEngine env =
      Boot({"pftables -p /bin/true -i 0x4000 -o FILE_OPEN -d shadow_t -j DROP"});
  AuditHub::Config acfg;
  acfg.bucket_capacity = 0;  // count every denial
  env.engine->audit().Enable(acfg);

  // Locate the DROP rule in the published program for hit-counter ground
  // truth: attribution must match it *exactly*.
  std::shared_ptr<const core::CompiledRuleset> rs = env.engine->PublishedRuleset();
  ASSERT_NE(rs, nullptr);
  const core::RuleRecord* drop_rr = nullptr;
  for (const core::RuleRecord& rr : rs->program.rules) {
    if (rr.rule != nullptr && rr.rule->source.find("DROP") != std::string::npos) {
      drop_rr = &rr;
    }
  }
  ASSERT_NE(drop_rr, nullptr);
  const uint64_t hits_before = drop_rr->rule->hits.load(std::memory_order_relaxed);
  const core::EngineStats before = env.engine->stats();

  // A scheduler-driven workload: 32 denied opens interleaved with allowed
  // traffic, all from one frame (one entrypoint binding).
  sim::Scheduler sched(*env.kernel);
  sim::SpawnOpts opts;
  opts.name = "victim";
  opts.exe = sim::kBinTrue;
  sim::Pid pid = sched.Spawn(opts, [](sim::Proc& p) {
    sim::UserFrame frame(p, sim::kBinTrue, 0x4000);
    for (int i = 0; i < 32; ++i) {
      int64_t fd = p.Open("/etc/passwd", sim::kORdOnly);
      if (fd >= 0) {
        p.Close(static_cast<int>(fd));
      }
      EXPECT_EQ(p.Open("/etc/shadow", sim::kORdOnly),
                sim::SysError(sim::Err::kAcces));
    }
  });
  sched.RunUntilExit(pid);

  const core::EngineStats after = env.engine->stats();
  const uint64_t drops = after.drops - before.drops;
  const uint64_t hits =
      drop_rr->rule->hits.load(std::memory_order_relaxed) - hits_before;
  EXPECT_GE(drops, 32u);

  std::vector<AuditRecord> recs = env.engine->audit().Drain();
  std::vector<const AuditRecord*> denies;
  for (const AuditRecord& r : recs) {
    if (r.kind == static_cast<uint8_t>(Kind::kDeny)) {
      denies.push_back(&r);
    }
  }
  // One record per denial — cached-tier denials included.
  ASSERT_EQ(denies.size(), drops);

  uint64_t traversed = 0, cached = 0;
  const uint32_t shadow_sid = env.kernel->labels().Intern("shadow_t");
  for (const AuditRecord* r : denies) {
    // Rule attribution is exact on every tier: the verdict cache memoizes
    // the producing rule at insert time.
    EXPECT_EQ(r->chain_id, drop_rr->chain_id);
    EXPECT_EQ(r->rule_index, static_cast<int32_t>(drop_rr->chain_index));
    EXPECT_EQ(r->subject_sid, denies[0]->subject_sid);
    EXPECT_NE(r->flags & kFlagHasObject, 0);
    EXPECT_EQ(r->object_sid, shadow_sid);
    EXPECT_NE(r->flags & kFlagEptValid, 0) << "workload runs framed";
    EXPECT_EQ(r->ept_offset, 0x4000u);
    EXPECT_EQ(r->ept_ino, denies[0]->ept_ino);
    EXPECT_EQ(r->generation, rs->generation);
    const Tier tier = static_cast<Tier>(r->tier);
    if (tier == Tier::kCompiled || tier == Tier::kLegacy) {
      ++traversed;
    } else if (tier == Tier::kVcache) {
      ++cached;
    } else {
      ADD_FAILURE() << "unexpected tier " << TierName(tier);
    }
  }
  // Tier attribution must match the hit counters exactly: a rule's hits
  // move only when a traversal fired it, so traversal-tier records == hit
  // delta and the rest were served by the cache.
  EXPECT_EQ(traversed, hits);
  EXPECT_EQ(cached, drops - hits);
  EXPECT_GT(cached, 0u) << "a repeated denial must hit the verdict cache";

  // Conservation, as surfaced through EngineStats.
  const core::EngineStats s = env.engine->stats();
  EXPECT_EQ(s.audit_emitted, s.audit_records + s.audit_suppressed);
  EXPECT_EQ(s.audit_records,
            env.engine->audit().drained() + s.audit_ring_drops);

  // The aggregator groups everything under one (rule, subject, entrypoint).
  std::vector<KeyWindow> windows = env.engine->audit().WindowSnapshot();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].key.chain_id, drop_rr->chain_id);
  EXPECT_EQ(windows[0].total, drops);
}

TEST(AuditPipelineTest, AuditOnlyModeEmitsAuditedDenyAndAllows) {
  if (!kAuditCompiledIn) {
    GTEST_SKIP() << "audit compiled out (PF_AUDIT=OFF)";
  }
  core::EngineConfig cfg;
  cfg.audit_only = true;
  BootedEngine env = Boot({"pftables -o FILE_OPEN -d shadow_t -j DROP"}, cfg);
  AuditHub::Config acfg;
  acfg.bucket_capacity = 0;
  env.engine->audit().Enable(acfg);

  std::unique_ptr<sim::Task> task = MakeTask(*env.kernel, "staff_t");
  auto shadow = env.kernel->LookupNoHooks("/etc/shadow");
  sim::AccessRequest req = OpenRequest(*task, shadow.get());
  EXPECT_EQ(env.engine->Authorize(req), 0) << "audit mode allows";
  EXPECT_EQ(env.engine->stats().audited_drops, 1u);

  std::vector<AuditRecord> recs = env.engine->audit().Drain();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].kind, static_cast<uint8_t>(Kind::kAuditedDeny));
  EXPECT_EQ(recs[0].subject_sid, task->cred.sid);

  // The kAuditedDeny kind has its own mask bit.
  AuditHub::Config masked;
  masked.bucket_capacity = 0;
  masked.kinds = KindBit(Kind::kDeny);
  env.engine->audit().Enable(masked);
  EXPECT_EQ(env.engine->Authorize(req), 0);
  EXPECT_TRUE(env.engine->audit().Drain().empty());
}

TEST(AuditPipelineTest, LogHitsCarryTheLogRulesAttribution) {
  if (!kAuditCompiledIn) {
    GTEST_SKIP() << "audit compiled out (PF_AUDIT=OFF)";
  }
  BootedEngine env = Boot({
      "pftables -o FILE_OPEN -d shadow_t -j LOG --prefix audit-test",
      "pftables -o FILE_OPEN -d shadow_t -j DROP",
  });
  AuditHub::Config acfg;
  acfg.bucket_capacity = 0;
  env.engine->audit().Enable(acfg);

  std::unique_ptr<sim::Task> task = MakeTask(*env.kernel, "staff_t");
  auto shadow = env.kernel->LookupNoHooks("/etc/shadow");
  sim::AccessRequest req = OpenRequest(*task, shadow.get());
  EXPECT_EQ(env.engine->Authorize(req), sim::SysError(sim::Err::kAcces));

  std::vector<AuditRecord> recs = env.engine->audit().Drain();
  const AuditRecord* log = nullptr;
  const AuditRecord* deny = nullptr;
  for (const AuditRecord& r : recs) {
    if (r.kind == static_cast<uint8_t>(Kind::kLogHit)) {
      log = &r;
    } else if (r.kind == static_cast<uint8_t>(Kind::kDeny)) {
      deny = &r;
    }
  }
  ASSERT_NE(log, nullptr);
  ASSERT_NE(deny, nullptr);
  // Both rules live in the same chain; LOG fired first.
  EXPECT_EQ(log->chain_id, deny->chain_id);
  EXPECT_LT(log->rule_index, deny->rule_index);
  EXPECT_EQ(log->subject_sid, deny->subject_sid);
}

TEST(AuditPipelineTest, PhaseTransitionsEmitFromToRecords) {
  if (!kAuditCompiledIn) {
    GTEST_SKIP() << "audit compiled out (PF_AUDIT=OFF)";
  }
  BootedEngine env = Boot({
      "pftables -o FILE_OPEN -d shadow_t -j PHASE --enter serving",
  });
  AuditHub::Config acfg;
  acfg.bucket_capacity = 0;
  env.engine->audit().Enable(acfg);

  std::unique_ptr<sim::Task> task = MakeTask(*env.kernel, "staff_t");
  auto shadow = env.kernel->LookupNoHooks("/etc/shadow");
  sim::AccessRequest req = OpenRequest(*task, shadow.get());
  EXPECT_EQ(env.engine->Authorize(req), 0) << "PHASE continues, no verdict";

  std::vector<AuditRecord> recs = env.engine->audit().Drain();
  const AuditRecord* phase = nullptr;
  for (const AuditRecord& r : recs) {
    if (r.kind == static_cast<uint8_t>(Kind::kPhase)) {
      phase = &r;
    }
  }
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->astate_in,
            static_cast<uint64_t>(core::PhaseId(core::kPhaseInitName)));
  EXPECT_EQ(phase->astate_out, static_cast<uint64_t>(core::PhaseId("serving")));
  EXPECT_EQ(phase->automaton, kNoAutomaton);
  EXPECT_EQ(phase->chain_id, -1) << "a phase record is not rule-attributed";
  EXPECT_EQ(phase->subject_sid, task->cred.sid);
}

TEST(AuditPipelineTest, DisabledHubEmitsNothing) {
  BootedEngine env = Boot({"pftables -o FILE_OPEN -d shadow_t -j DROP"});
  std::unique_ptr<sim::Task> task = MakeTask(*env.kernel, "staff_t");
  auto shadow = env.kernel->LookupNoHooks("/etc/shadow");
  sim::AccessRequest req = OpenRequest(*task, shadow.get());
  EXPECT_EQ(env.engine->Authorize(req), sim::SysError(sim::Err::kAcces));
  EXPECT_EQ(env.engine->audit().emitted(), 0u);
  EXPECT_TRUE(env.engine->audit().Drain().empty());
}

// --- exporters over real records ------------------------------------------

TEST(AuditExportTest, RenderersCoverDrainedRecords) {
  if (!kAuditCompiledIn) {
    GTEST_SKIP() << "audit compiled out (PF_AUDIT=OFF)";
  }
  BootedEngine env = Boot({"pftables -o FILE_OPEN -d shadow_t -j DROP"});
  AuditHub::Config acfg;
  acfg.bucket_capacity = 0;
  env.engine->audit().Enable(acfg);
  std::unique_ptr<sim::Task> task = MakeTask(*env.kernel, "staff_t");
  auto shadow = env.kernel->LookupNoHooks("/etc/shadow");
  sim::AccessRequest req = OpenRequest(*task, shadow.get());
  EXPECT_EQ(env.engine->Authorize(req), sim::SysError(sim::Err::kAcces));

  std::vector<AuditRecord> recs = env.engine->audit().Drain();
  ASSERT_FALSE(recs.empty());
  trace::NameTable names{&env.kernel->labels()};
  const std::string text = RenderText(recs, names);
  EXPECT_NE(text.find("deny"), std::string::npos);
  EXPECT_NE(text.find("shadow_t"), std::string::npos);
  EXPECT_NE(text.find("staff_t"), std::string::npos);
  const std::string jsonl = RenderJsonLines(recs, names);
  EXPECT_NE(jsonl.find("\"kind\""), std::string::npos);
  const std::string windows = RenderWindows(env.engine->audit(), names);
  EXPECT_NE(windows.find("staff_t"), std::string::npos);
}

}  // namespace
}  // namespace pf::audit
