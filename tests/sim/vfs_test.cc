// Superblock / VFS unit tests: inode allocation, link counting, inode-number
// recycling (the cryogenic-sleep precondition), mounts, reverse lookup.

#include <gtest/gtest.h>

#include "src/sim/vfs.h"

namespace pf::sim {
namespace {

TEST(Superblock, AllocatesDistinctInodeNumbers) {
  Vfs vfs;
  Superblock& sb = vfs.root_sb();
  auto a = sb.Alloc(InodeType::kRegular, 0644, 0, 0, 1);
  auto b = sb.Alloc(InodeType::kRegular, 0644, 0, 0, 1);
  EXPECT_NE(a->ino, b->ino);
  EXPECT_EQ(a->dev, b->dev);
}

TEST(Superblock, RecyclesFreedInodeNumbers) {
  Vfs vfs;
  Superblock& sb = vfs.root_sb();
  auto a = sb.Alloc(InodeType::kRegular, 0644, 0, 0, 1);
  Ino ino = a->ino;
  uint64_t gen = a->generation;
  // nlink and open_count are zero: freeing is allowed.
  sb.MaybeFree(a);
  EXPECT_EQ(sb.Get(ino), nullptr);
  auto b = sb.Alloc(InodeType::kRegular, 0644, 0, 0, 1);
  EXPECT_EQ(b->ino, ino) << "freed inode number must be recycled (LIFO)";
  EXPECT_NE(b->generation, gen) << "generation must distinguish recycled inodes";
}

TEST(Superblock, OpenCountPinsInodeNumber) {
  Vfs vfs;
  Superblock& sb = vfs.root_sb();
  auto a = sb.Alloc(InodeType::kRegular, 0644, 0, 0, 1);
  a->open_count = 1;  // held open
  Ino ino = a->ino;
  sb.MaybeFree(a);
  EXPECT_NE(sb.Get(ino), nullptr) << "an open inode must not be freed";
  a->open_count = 0;
  sb.MaybeFree(a);
  EXPECT_EQ(sb.Get(ino), nullptr);
}

TEST(Superblock, LinkCountPinsInode) {
  Vfs vfs;
  Superblock& sb = vfs.root_sb();
  auto a = sb.Alloc(InodeType::kRegular, 0644, 0, 0, 1);
  a->nlink = 2;
  sb.MaybeFree(a);
  EXPECT_NE(sb.Get(a->ino), nullptr);
}

TEST(Superblock, RecyclingCanBeDisabled) {
  Vfs vfs;
  Superblock& sb = vfs.root_sb();
  sb.set_recycle_inodes(false);
  auto a = sb.Alloc(InodeType::kRegular, 0644, 0, 0, 1);
  Ino ino = a->ino;
  sb.MaybeFree(a);
  auto b = sb.Alloc(InodeType::kRegular, 0644, 0, 0, 1);
  EXPECT_NE(b->ino, ino);
}

TEST(Vfs, MountRedirectsToMountedRoot) {
  Vfs vfs;
  Superblock& root = vfs.root_sb();
  auto mnt = root.Alloc(InodeType::kDirectory, 0755, 0, 0, 1);
  mnt->nlink = 1;
  root.root()->entries["tmp"] = mnt->ino;
  Superblock& tmpfs = vfs.CreateFs("tmpfs", 2);
  vfs.Mount(mnt->id(), tmpfs.dev());
  auto crossed = vfs.CrossMount(mnt);
  EXPECT_EQ(crossed->id(), tmpfs.root()->id());
  // Non-mountpoint directories are unchanged.
  EXPECT_EQ(vfs.CrossMount(root.root())->id(), root.root()->id());
}

TEST(Vfs, PathOfFindsNestedInode) {
  Vfs vfs;
  Superblock& sb = vfs.root_sb();
  auto dir = sb.Alloc(InodeType::kDirectory, 0755, 0, 0, 1);
  dir->nlink = 1;
  sb.root()->entries["etc"] = dir->ino;
  auto file = sb.Alloc(InodeType::kRegular, 0644, 0, 0, 1);
  file->nlink = 1;
  dir->entries["passwd"] = file->ino;
  EXPECT_EQ(vfs.PathOf(file->id()), "/etc/passwd");
  EXPECT_EQ(vfs.PathOf(sb.root()->id()), "/");
}

TEST(Vfs, PathOfUnlinkedInodeReportsPlaceholder) {
  Vfs vfs;
  FileId bogus{1, 9999};
  EXPECT_NE(vfs.PathOf(bogus).find("<unlinked"), std::string::npos);
}

}  // namespace
}  // namespace pf::sim
