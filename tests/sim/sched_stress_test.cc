// Scheduler stress and determinism: fork trees, many concurrent processes,
// signal storms, and bit-identical behaviour across same-seed runs.

#include <gtest/gtest.h>

#include <numeric>

#include "src/sim/sched.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::sim {
namespace {

class SchedStressTest : public pf::testing::SimTest {};

TEST_F(SchedStressTest, ForkTreeOfDepthThree) {
  // Each node forks two children down to depth 3 and sums their exits.
  std::function<void(Proc&, int)> node = [&](Proc& p, int depth) {
    if (depth == 0) {
      p.Exit(1);
    }
    int total = 0;
    for (int i = 0; i < 2; ++i) {
      int64_t child = p.Fork([&node, depth](Proc& c) { node(c, depth - 1); });
      ASSERT_GT(child, 0);
      int status = 0;
      ASSERT_EQ(p.Waitpid(static_cast<Pid>(child), &status), child);
      total += status;
    }
    p.Exit(total);
  };
  Pid root = sched().Spawn({.name = "root"}, [&](Proc& p) { node(p, 3); });
  EXPECT_EQ(sched().RunUntilExit(root), 8) << "2^3 leaves";
  EXPECT_EQ(sched().live_procs(), 0u);
}

TEST_F(SchedStressTest, ManyProcessesRunAll) {
  int done = 0;
  for (int i = 0; i < 64; ++i) {
    sched().Spawn({.name = "worker" + std::to_string(i)}, [&, i](Proc& p) {
      for (int k = 0; k < i % 7; ++k) {
        p.Null();
      }
      ++done;
    });
  }
  sched().RunAll();
  EXPECT_EQ(done, 64);
}

TEST_F(SchedStressTest, SignalStormIsLossless) {
  // 30 signals sent one at a time; every one must be delivered (each sender
  // runs to completion before the victim resumes, so none coalesce).
  int received = 0;
  Pid victim = sched().Spawn({.name = "victim"}, [&](Proc& p) {
    p.Sigaction(kSigUsr1, [&](SigNum) { ++received; });
    for (int i = 0; i < 64; ++i) {
      p.Checkpoint("tick");
      p.Null();
    }
  });
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(sched().RunUntilLabel(victim, "tick"));
    Pid sender = sched().Spawn({.name = "sender"},
                               [&](Proc& p) { p.Kill(victim, kSigUsr1); });
    sched().RunUntilExit(sender);
  }
  sched().RunUntilExit(victim);
  EXPECT_EQ(received, 30);
}

TEST_F(SchedStressTest, WaitpidReapsInAnyOrder) {
  Pid parent = sched().Spawn({.name = "parent"}, [](Proc& p) {
    std::vector<Pid> kids;
    for (int i = 0; i < 8; ++i) {
      int64_t c = p.Fork([i](Proc& ch) { ch.Exit(i); });
      kids.push_back(static_cast<Pid>(c));
    }
    // Reap in reverse order of creation.
    int sum = 0;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      int status = 0;
      EXPECT_EQ(p.Waitpid(*it, &status), *it);
      sum += status;
    }
    p.Exit(sum);
  });
  EXPECT_EQ(sched().RunUntilExit(parent), 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
}

TEST_F(SchedStressTest, WaitAnyChild) {
  Pid parent = sched().Spawn({.name = "parent"}, [](Proc& p) {
    for (int i = 0; i < 5; ++i) {
      p.Fork([](Proc& ch) { ch.Exit(7); });
    }
    int reaped = 0;
    int status = 0;
    while (p.Waitpid(kInvalidPid, &status) > 0) {
      EXPECT_EQ(status, 7);
      ++reaped;
    }
    p.Exit(reaped);
  });
  EXPECT_EQ(sched().RunUntilExit(parent), 5);
}

TEST_F(SchedStressTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [](uint64_t seed) {
    sim::Kernel kernel(seed);
    BuildSysImage(kernel);
    Scheduler sched(kernel);
    std::vector<int> order;
    for (int i = 0; i < 6; ++i) {
      sched.Spawn({.name = "p" + std::to_string(i)}, [&, i](Proc& p) {
        p.Null();
        order.push_back(i);
        p.Null();
        order.push_back(i + 100);
      });
    }
    sched.RunAll();
    return order;
  };
  auto a = run_once(1234);
  auto b = run_once(1234);
  EXPECT_EQ(a, b) << "same seed, same interleaving";
}

TEST_F(SchedStressTest, ExitReleasesOpenFiles) {
  kernel().MkFileAt("/tmp/held", "x", 0666, 0, 0, "tmp_t");
  auto inode = kernel().LookupNoHooks("/tmp/held");
  Pid pid = sched().Spawn({}, [](Proc& p) {
    p.Open("/tmp/held", kORdOnly);
    p.Open("/tmp/held", kORdOnly);
    p.Exit(0);  // never closes
  });
  sched().RunUntilExit(pid);
  EXPECT_EQ(inode->open_count, 0u) << "exit must release open file descriptions";
}

TEST_F(SchedStressTest, ZombieChildHoldsExitCodeUntilReaped) {
  Pid parent = sched().Spawn({.name = "parent"}, [](Proc& p) {
    int64_t child = p.Fork([](Proc& c) { c.Exit(42); });
    // Let the child run and exit before we wait.
    p.Null();
    p.Checkpoint("child-spawned");
    int status = 0;
    EXPECT_EQ(p.Waitpid(static_cast<Pid>(child), &status), child);
    p.Exit(status);
  });
  ASSERT_TRUE(sched().RunUntilLabel(parent, "child-spawned"));
  // Drive everything else (the child) to completion first.
  EXPECT_EQ(sched().RunUntilExit(parent), 42);
}

}  // namespace
}  // namespace pf::sim
