// File descriptor table unit tests: slot allocation, reuse, sharing, drain.

#include <gtest/gtest.h>

#include "src/sim/fdtable.h"

namespace pf::sim {
namespace {

std::shared_ptr<File> MakeFile() {
  auto f = std::make_shared<File>();
  f->inode = std::make_shared<Inode>();
  return f;
}

TEST(FdTable, AllocatesLowestFreeSlot) {
  FdTable t;
  EXPECT_EQ(t.Install(MakeFile()), 0);
  EXPECT_EQ(t.Install(MakeFile()), 1);
  EXPECT_EQ(t.Install(MakeFile()), 2);
  t.Remove(1);
  EXPECT_EQ(t.Install(MakeFile()), 1) << "freed slot is reused first";
  EXPECT_EQ(t.Install(MakeFile()), 3);
}

TEST(FdTable, GetAndRemove) {
  FdTable t;
  auto f = MakeFile();
  int fd = t.Install(f);
  EXPECT_EQ(t.Get(fd), f);
  EXPECT_EQ(t.Get(99), nullptr);
  EXPECT_EQ(t.Get(-1), nullptr);
  EXPECT_EQ(t.Remove(fd), f);
  EXPECT_EQ(t.Get(fd), nullptr);
  EXPECT_EQ(t.Remove(fd), nullptr) << "double remove is a no-op";
}

TEST(FdTable, CloneSharesOpenFileDescriptions) {
  FdTable t;
  auto f = MakeFile();
  int fd = t.Install(f);
  FdTable copy = t.Clone();
  EXPECT_EQ(copy.Get(fd), f) << "dup semantics: same description";
  f->offset = 42;
  EXPECT_EQ(copy.Get(fd)->offset, 42u) << "offset is shared state";
  // Removing from one table leaves the other's reference intact.
  t.Remove(fd);
  EXPECT_NE(copy.Get(fd), nullptr);
}

TEST(FdTable, DrainEmptiesEverything) {
  FdTable t;
  t.Install(MakeFile());
  t.Install(MakeFile());
  t.Remove(0);
  auto drained = t.Drain();
  EXPECT_EQ(drained.size(), 1u);
  EXPECT_EQ(t.open_count(), 0u);
  EXPECT_TRUE(t.Drain().empty());
}

TEST(FdTable, OpenCountSkipsHoles) {
  FdTable t;
  t.Install(MakeFile());
  t.Install(MakeFile());
  t.Install(MakeFile());
  t.Remove(1);
  EXPECT_EQ(t.open_count(), 2u);
}

TEST(File, ReadableWritableFlags) {
  File f;
  f.flags = kORdOnly;
  EXPECT_TRUE(f.readable());
  EXPECT_FALSE(f.writable());
  f.flags = kOWrOnly;
  EXPECT_FALSE(f.readable());
  EXPECT_TRUE(f.writable());
  f.flags = kORdWr;
  EXPECT_TRUE(f.readable());
  EXPECT_TRUE(f.writable());
}

}  // namespace
}  // namespace pf::sim
