// Base system image sanity: the tree, labels, users, binaries, and policy
// every other test builds on.

#include <gtest/gtest.h>

#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::sim {
namespace {

class SysImageTest : public pf::testing::SimTest {};

TEST_F(SysImageTest, StandardTreeExists) {
  for (const char* path : {"/bin", "/lib", "/usr/bin", "/usr/lib", "/etc", "/tmp",
                           "/var/run/dbus", "/var/www", "/home/alice", "/home/mallory"}) {
    auto inode = kernel().LookupNoHooks(path);
    ASSERT_NE(inode, nullptr) << path;
    EXPECT_TRUE(inode->IsDir()) << path;
  }
}

TEST_F(SysImageTest, TmpIsWorldWritableSticky) {
  auto tmp = kernel().LookupNoHooks("/tmp");
  EXPECT_EQ(tmp->mode & kModePermMask, 01777u);
  EXPECT_TRUE(tmp->IsSticky());
  EXPECT_EQ(kernel().labels().Name(tmp->sid), "tmp_t");
}

TEST_F(SysImageTest, SensitiveFilesLabeledAndProtected) {
  auto shadow = kernel().LookupNoHooks("/etc/shadow");
  ASSERT_NE(shadow, nullptr);
  EXPECT_EQ(kernel().labels().Name(shadow->sid), "shadow_t");
  EXPECT_EQ(shadow->mode & kModePermMask, 0600u);
  EXPECT_EQ(shadow->uid, kRootUid);
}

TEST_F(SysImageTest, BinariesHaveImagesAndInterpreters) {
  for (const char* bin : {kBinTrue, kBinSh, kApache, kPhp, kPython, kDbusDaemon}) {
    auto inode = kernel().LookupNoHooks(bin);
    ASSERT_NE(inode, nullptr) << bin;
    ASSERT_NE(inode->binary, nullptr) << bin;
    EXPECT_EQ(inode->binary->entry_key, bin);
    EXPECT_EQ(inode->binary->interp, kLdso);
    EXPECT_FALSE(inode->binary->needed.empty());
  }
  auto libc = kernel().LookupNoHooks(kLibc);
  ASSERT_NE(libc->binary, nullptr);
  EXPECT_TRUE(libc->binary->entry_key.empty()) << "libraries are not executable entries";
}

TEST_F(SysImageTest, SuidHelperIsSetuidRoot) {
  auto helper = kernel().LookupNoHooks(kSuidHelper);
  ASSERT_NE(helper, nullptr);
  EXPECT_TRUE(helper->IsSetuid());
  EXPECT_EQ(helper->uid, kRootUid);
}

TEST_F(SysImageTest, PolicyMakesTmpAdversaryWritableButNotEtc) {
  auto& pol = kernel().policy();
  auto& labels = kernel().labels();
  EXPECT_TRUE(pol.AdversaryWritable(*labels.Lookup("tmp_t")));
  EXPECT_TRUE(pol.AdversaryWritable(*labels.Lookup("user_home_t")));
  EXPECT_FALSE(pol.AdversaryWritable(*labels.Lookup("etc_t")));
  EXPECT_FALSE(pol.AdversaryWritable(*labels.Lookup("lib_t")));
  EXPECT_FALSE(pol.AdversaryWritable(*labels.Lookup("shadow_t")));
  EXPECT_TRUE(pol.AdversaryReadable(*labels.Lookup("etc_t")));
  EXPECT_FALSE(pol.AdversaryReadable(*labels.Lookup("shadow_t")));
}

TEST_F(SysImageTest, SyshighCoversTheTcbLabels) {
  auto& pol = kernel().policy();
  auto& labels = kernel().labels();
  for (const char* t : {"etc_t", "lib_t", "bin_t", "shadow_t", "ld_so_t"}) {
    EXPECT_TRUE(pol.IsSyshighObject(*labels.Lookup(t))) << t;
  }
  for (const char* t : {"tmp_t", "user_home_t", "httpd_user_content_t"}) {
    EXPECT_FALSE(pol.IsSyshighObject(*labels.Lookup(t))) << t;
  }
  EXPECT_FALSE(pol.IsSyshighSubject(*labels.Lookup("user_t")));
  EXPECT_TRUE(pol.IsSyshighSubject(*labels.Lookup("httpd_t")));
}

TEST_F(SysImageTest, WebContentPresent) {
  EXPECT_NE(kernel().LookupNoHooks("/var/www/index.html"), nullptr);
  EXPECT_NE(kernel().LookupNoHooks("/var/www/app/index.php"), nullptr);
  auto php = kernel().LookupNoHooks("/var/www/app/gcalendar.php");
  ASSERT_NE(php, nullptr);
  EXPECT_EQ(kernel().labels().Name(php->sid), "httpd_user_script_exec_t");
}

TEST_F(SysImageTest, ConfigurableScale) {
  sim::Kernel big(9);
  SysImageOptions opts;
  opts.web_files = 64;
  opts.extra_libs = 32;
  BuildSysImage(big, opts);
  EXPECT_NE(big.LookupNoHooks("/var/www/page63.html"), nullptr);
  EXPECT_NE(big.LookupNoHooks("/usr/lib/lib31.so"), nullptr);
  EXPECT_EQ(big.LookupNoHooks("/var/www/page64.html"), nullptr);
}

}  // namespace
}  // namespace pf::sim
