// Pathname resolution tests: component walks, symlink following, loops,
// dot-dot, want-parent semantics, DAC search permission.

#include <gtest/gtest.h>

#include "src/sim/kernel.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::sim {
namespace {

class NameiTest : public pf::testing::SimTest {
 protected:
  Task MakeTask(Cred cred) {
    Task t;
    t.pid = 99;
    t.comm = "namei-test";
    t.cred = cred;
    t.cwd = kernel().vfs().root()->id();
    return t;
  }
};

TEST_F(NameiTest, ResolvesAbsolutePath) {
  Task t = MakeTask(RootCred());
  Nameidata nd;
  ASSERT_EQ(kernel().PathWalk(t, "/etc/passwd", kFollowFinal, &nd), 0);
  ASSERT_NE(nd.inode, nullptr);
  EXPECT_TRUE(nd.inode->IsRegular());
  EXPECT_EQ(nd.last, "passwd");
  EXPECT_EQ(kernel().labels().Name(nd.inode->sid), "etc_t");
}

TEST_F(NameiTest, ResolvesRelativePathFromCwd) {
  Task t = MakeTask(RootCred());
  auto etc = kernel().LookupNoHooks("/etc");
  t.cwd = etc->id();
  Nameidata nd;
  ASSERT_EQ(kernel().PathWalk(t, "passwd", kFollowFinal, &nd), 0);
  EXPECT_EQ(nd.inode->id(), kernel().LookupNoHooks("/etc/passwd")->id());
}

TEST_F(NameiTest, MissingFinalComponentIsENOENT) {
  Task t = MakeTask(RootCred());
  Nameidata nd;
  EXPECT_EQ(kernel().PathWalk(t, "/etc/nope", kFollowFinal, &nd), SysError(Err::kNoEnt));
}

TEST_F(NameiTest, WantParentToleratesMissingFinal) {
  Task t = MakeTask(RootCred());
  Nameidata nd;
  ASSERT_EQ(kernel().PathWalk(t, "/etc/newfile", kWantParent, &nd), 0);
  EXPECT_EQ(nd.inode, nullptr);
  EXPECT_EQ(nd.last, "newfile");
  EXPECT_EQ(nd.parent->id(), kernel().LookupNoHooks("/etc")->id());
}

TEST_F(NameiTest, MissingIntermediateIsENOENTEvenWithWantParent) {
  Task t = MakeTask(RootCred());
  Nameidata nd;
  EXPECT_EQ(kernel().PathWalk(t, "/no/such/dir/file", kWantParent, &nd),
            SysError(Err::kNoEnt));
}

TEST_F(NameiTest, NonDirectoryIntermediateIsENOTDIR) {
  Task t = MakeTask(RootCred());
  Nameidata nd;
  EXPECT_EQ(kernel().PathWalk(t, "/etc/passwd/x", kFollowFinal, &nd),
            SysError(Err::kNotDir));
}

TEST_F(NameiTest, FollowsFinalSymlinkOnlyWhenAsked) {
  kernel().MkSymlinkAt("/tmp/link", "/etc/passwd", kMalloryUid, kMalloryUid, "tmp_t");
  Task t = MakeTask(RootCred());
  Nameidata nd;
  ASSERT_EQ(kernel().PathWalk(t, "/tmp/link", kFollowFinal, &nd), 0);
  EXPECT_TRUE(nd.inode->IsRegular());
  Nameidata nd2;
  ASSERT_EQ(kernel().PathWalk(t, "/tmp/link", 0, &nd2), 0);
  EXPECT_TRUE(nd2.inode->IsSymlink());
}

TEST_F(NameiTest, FollowsIntermediateSymlinksAlways) {
  kernel().MkSymlinkAt("/tmp/etclink", "/etc", 0, 0, "tmp_t");
  Task t = MakeTask(RootCred());
  Nameidata nd;
  ASSERT_EQ(kernel().PathWalk(t, "/tmp/etclink/passwd", 0, &nd), 0);
  EXPECT_EQ(nd.inode->id(), kernel().LookupNoHooks("/etc/passwd")->id());
}

TEST_F(NameiTest, RelativeSymlinkResolvesAgainstLinkDirectory) {
  kernel().MkFileAt("/tmp/real", "data", 0644, 0, 0, "tmp_t");
  kernel().MkSymlinkAt("/tmp/rel", "real", 0, 0, "tmp_t");
  Task t = MakeTask(RootCred());
  Nameidata nd;
  ASSERT_EQ(kernel().PathWalk(t, "/tmp/rel", kFollowFinal, &nd), 0);
  EXPECT_EQ(nd.inode->id(), kernel().LookupNoHooks("/tmp/real")->id());
}

TEST_F(NameiTest, SymlinkLoopIsELOOP) {
  kernel().MkSymlinkAt("/tmp/a", "/tmp/b", 0, 0, "tmp_t");
  kernel().MkSymlinkAt("/tmp/b", "/tmp/a", 0, 0, "tmp_t");
  Task t = MakeTask(RootCred());
  Nameidata nd;
  EXPECT_EQ(kernel().PathWalk(t, "/tmp/a", kFollowFinal, &nd), SysError(Err::kLoop));
}

TEST_F(NameiTest, DotAndDotDotNavigate) {
  Task t = MakeTask(RootCred());
  Nameidata nd;
  ASSERT_EQ(kernel().PathWalk(t, "/etc/./../etc/passwd", kFollowFinal, &nd), 0);
  EXPECT_EQ(nd.inode->id(), kernel().LookupNoHooks("/etc/passwd")->id());
}

TEST_F(NameiTest, DotDotAtRootStaysAtRoot) {
  Task t = MakeTask(RootCred());
  Nameidata nd;
  ASSERT_EQ(kernel().PathWalk(t, "/../../etc/passwd", kFollowFinal, &nd), 0);
  EXPECT_EQ(nd.inode->id(), kernel().LookupNoHooks("/etc/passwd")->id());
}

TEST_F(NameiTest, SearchPermissionRequiredOnIntermediateDirs) {
  // /home/alice is 0755 alice; make it 0700 and walk as mallory.
  auto alice = kernel().LookupNoHooks("/home/alice");
  alice->mode = 0700;
  kernel().MkFileAt("/home/alice/secret", "x", 0644, kAliceUid, kAliceUid, "user_home_t");
  Task t = MakeTask(UserCred(kMalloryUid));
  Nameidata nd;
  EXPECT_EQ(kernel().PathWalk(t, "/home/alice/secret", kFollowFinal, &nd),
            SysError(Err::kAcces));
  Task rt = MakeTask(RootCred());
  EXPECT_EQ(kernel().PathWalk(rt, "/home/alice/secret", kFollowFinal, &nd), 0);
}

TEST_F(NameiTest, EmptyPathIsENOENT) {
  Task t = MakeTask(RootCred());
  Nameidata nd;
  EXPECT_EQ(kernel().PathWalk(t, "", kFollowFinal, &nd), SysError(Err::kNoEnt));
}

TEST_F(NameiTest, RootPathResolvesToRoot) {
  Task t = MakeTask(RootCred());
  Nameidata nd;
  ASSERT_EQ(kernel().PathWalk(t, "/", kFollowFinal, &nd), 0);
  EXPECT_EQ(nd.inode->id(), kernel().vfs().root()->id());
}

TEST_F(NameiTest, OverlongPathIsENAMETOOLONG) {
  Task t = MakeTask(RootCred());
  std::string path = "/";
  path.append(5000, 'a');
  Nameidata nd;
  EXPECT_EQ(kernel().PathWalk(t, path, kFollowFinal, &nd), SysError(Err::kNameTooLong));
}

}  // namespace
}  // namespace pf::sim
