// MAC policy tests: allow rules, enforcing mode, adversary accessibility,
// and SYSHIGH derivation — the "system knowledge" half of the PF invariants.

#include <gtest/gtest.h>

#include "src/sim/label.h"
#include "src/sim/mac_policy.h"

namespace pf::sim {
namespace {

class MacTest : public ::testing::Test {
 protected:
  LabelRegistry labels_;
  MacPolicy pol_{&labels_};
};

TEST_F(MacTest, LabelRegistryInternsStably) {
  Sid a = labels_.Intern("httpd_t");
  Sid b = labels_.Intern("httpd_t");
  Sid c = labels_.Intern("shadow_t");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(labels_.Name(a), "httpd_t");
  EXPECT_EQ(labels_.Lookup("shadow_t"), c);
  EXPECT_EQ(labels_.Lookup("absent_t"), std::nullopt);
  EXPECT_EQ(labels_.Name(9999), "<invalid>");
}

TEST_F(MacTest, PermissiveModeAllowsEverything) {
  Sid s = labels_.Intern("a_t");
  Sid o = labels_.Intern("b_t");
  EXPECT_TRUE(pol_.Check(s, o, kMacWrite));
  EXPECT_FALSE(pol_.Grants(s, o, kMacWrite)) << "raw query ignores permissive mode";
}

TEST_F(MacTest, EnforcingModeDeniesWithoutRule) {
  pol_.set_enforcing(true);
  Sid s = labels_.Intern("a_t");
  Sid o = labels_.Intern("b_t");
  EXPECT_FALSE(pol_.Check(s, o, kMacRead));
  pol_.Allow(s, o, kMacRead);
  EXPECT_TRUE(pol_.Check(s, o, kMacRead));
  EXPECT_FALSE(pol_.Check(s, o, kMacRead | kMacWrite)) << "all requested perms required";
}

TEST_F(MacTest, AdversaryAccessibilityTracksUntrustedWriters) {
  Sid user = labels_.Intern("user_t");
  Sid tmp = labels_.Intern("tmp_t");
  Sid etc = labels_.Intern("etc_t");
  Sid shadow = labels_.Intern("shadow_t");
  pol_.MarkUntrusted(user);
  pol_.Allow(user, tmp, kMacAll);
  pol_.Allow(user, etc, kMacRead);

  EXPECT_TRUE(pol_.AdversaryWritable(tmp));
  EXPECT_FALSE(pol_.AdversaryWritable(etc));
  EXPECT_TRUE(pol_.AdversaryReadable(etc));
  EXPECT_FALSE(pol_.AdversaryWritable(shadow));
  EXPECT_FALSE(pol_.AdversaryReadable(shadow));
}

TEST_F(MacTest, CacheInvalidatedOnPolicyChange) {
  Sid user = labels_.Intern("user_t");
  Sid var = labels_.Intern("var_t");
  pol_.MarkUntrusted(user);
  EXPECT_FALSE(pol_.AdversaryWritable(var));
  pol_.Allow(user, var, kMacWrite);
  EXPECT_TRUE(pol_.AdversaryWritable(var)) << "new allow rule must invalidate the cache";
}

TEST_F(MacTest, SyshighSubjectsAreNonUntrusted) {
  Sid user = labels_.Intern("user_t");
  Sid httpd = labels_.Intern("httpd_t");
  pol_.MarkUntrusted(user);
  EXPECT_FALSE(pol_.IsSyshighSubject(user));
  EXPECT_TRUE(pol_.IsSyshighSubject(httpd));
}

TEST_F(MacTest, SyshighObjectsExcludeAdversaryWritable) {
  Sid user = labels_.Intern("user_t");
  Sid tmp = labels_.Intern("tmp_t");
  Sid lib = labels_.Intern("lib_t");
  pol_.MarkUntrusted(user);
  pol_.Allow(user, tmp, kMacAll);
  pol_.Allow(user, lib, kMacRead | kMacExec);
  EXPECT_FALSE(pol_.IsSyshighObject(tmp));
  EXPECT_TRUE(pol_.IsSyshighObject(lib));
  auto syshigh = pol_.SyshighObjects();
  EXPECT_NE(std::find(syshigh.begin(), syshigh.end(), lib), syshigh.end());
  EXPECT_EQ(std::find(syshigh.begin(), syshigh.end(), tmp), syshigh.end());
}

TEST_F(MacTest, CreatePermissionCountsAsWriteForAdversaryAccess) {
  Sid user = labels_.Intern("user_t");
  Sid spool = labels_.Intern("spool_t");
  pol_.MarkUntrusted(user);
  pol_.Allow(user, spool, kMacCreate);
  EXPECT_TRUE(pol_.AdversaryWritable(spool))
      << "ability to plant names is an integrity threat";
}

}  // namespace
}  // namespace pf::sim
