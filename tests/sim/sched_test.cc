// Scheduler tests: spawn/run, directed interleavings (checkpoints, syscall
// stepping), fork/waitpid, signals, execve, and TOCTTOU-style adversary
// scheduling — the substrate behaviour every exploit scenario relies on.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/sched.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::sim {
namespace {

class SchedTest : public pf::testing::SimTest {};

TEST_F(SchedTest, SpawnRunExit) {
  SpawnOpts opts;
  opts.name = "hello";
  Pid pid = sched().Spawn(opts, [](Proc& p) { p.Exit(42); });
  EXPECT_EQ(sched().RunUntilExit(pid), 42);
  EXPECT_TRUE(sched().Exited(pid));
}

TEST_F(SchedTest, FallingOffBodyIsExitZero) {
  Pid pid = sched().Spawn({}, [](Proc& p) { p.Null(); });
  EXPECT_EQ(sched().RunUntilExit(pid), 0);
}

TEST_F(SchedTest, SyscallsWorkInsideProc) {
  Pid pid = sched().Spawn({}, [](Proc& p) {
    int64_t fd = p.Open("/etc/passwd", kORdOnly);
    ASSERT_GE(fd, 0);
    std::string data;
    ASSERT_GT(p.Read(static_cast<int>(fd), &data, 4096), 0);
    EXPECT_NE(data.find("root"), std::string::npos);
    p.Exit(0);
  });
  EXPECT_EQ(sched().RunUntilExit(pid), 0);
}

TEST_F(SchedTest, RunUntilLabelPausesExactlyThere) {
  std::vector<std::string> events;
  Pid pid = sched().Spawn({}, [&](Proc& p) {
    events.push_back("before");
    p.Checkpoint("mid");
    events.push_back("after");
  });
  ASSERT_TRUE(sched().RunUntilLabel(pid, "mid"));
  EXPECT_EQ(events, std::vector<std::string>{"before"});
  sched().RunUntilExit(pid);
  EXPECT_EQ(events, (std::vector<std::string>{"before", "after"}));
}

TEST_F(SchedTest, RunUntilLabelReturnsFalseIfNeverReached) {
  Pid pid = sched().Spawn({}, [](Proc& p) { p.Null(); });
  EXPECT_FALSE(sched().RunUntilLabel(pid, "never"));
}

TEST_F(SchedTest, StepSyscallsStopsAfterN) {
  // Preemption happens on the syscall return path, before control returns
  // to user code — exactly the kernel's behaviour. Count completed syscalls
  // from the task structure.
  int count = 0;
  Pid pid = sched().Spawn({}, [&](Proc& p) {
    for (int i = 0; i < 10; ++i) {
      p.Null();
      ++count;
    }
  });
  ASSERT_TRUE(sched().StepSyscalls(pid, 3));
  EXPECT_EQ(sched().FindTask(pid)->syscall_count, 3u);
  EXPECT_EQ(count, 2) << "user code after the 3rd syscall has not resumed yet";
  ASSERT_TRUE(sched().StepSyscalls(pid, 2));
  EXPECT_EQ(sched().FindTask(pid)->syscall_count, 5u);
  sched().RunUntilExit(pid);
  EXPECT_EQ(count, 10);
}

TEST_F(SchedTest, AdversaryInterleavesBetweenVictimSyscalls) {
  // The canonical TOCTTOU shape: victim checks, adversary swaps, victim uses.
  kernel().MkFileAt("/tmp/file", "benign", 0666, kMalloryUid, kMalloryUid, "tmp_t");
  std::string victim_read;

  Pid victim = sched().Spawn({.name = "victim"}, [&](Proc& p) {
    StatBuf st;
    ASSERT_EQ(p.Lstat("/tmp/file", &st), 0);  // check
    p.Checkpoint("between-check-and-use");
    int64_t fd = p.Open("/tmp/file", kORdOnly);  // use
    ASSERT_GE(fd, 0);
    p.Read(static_cast<int>(fd), &victim_read, 4096);
  });
  Pid adversary = sched().Spawn({.name = "mallory", .cred = UserCred(kMalloryUid)},
                                [&](Proc& p) {
    ASSERT_EQ(p.Unlink("/tmp/file"), 0);
    ASSERT_EQ(p.Symlink("/etc/passwd", "/tmp/file"), 0);
  });

  ASSERT_TRUE(sched().RunUntilLabel(victim, "between-check-and-use"));
  sched().RunUntilExit(adversary);
  sched().RunUntilExit(victim);
  EXPECT_NE(victim_read.find("root"), std::string::npos)
      << "without defenses the victim must read the swapped-in /etc/passwd";
}

TEST_F(SchedTest, ForkAndWaitpid) {
  Pid pid = sched().Spawn({}, [](Proc& p) {
    int64_t child = p.Fork([](Proc& c) { c.Exit(7); });
    ASSERT_GT(child, 0);
    int status = -1;
    ASSERT_EQ(p.Waitpid(static_cast<Pid>(child), &status), child);
    p.Exit(status);
  });
  EXPECT_EQ(sched().RunUntilExit(pid), 7);
}

TEST_F(SchedTest, WaitpidWithNoChildrenIsECHILD) {
  Pid pid = sched().Spawn({}, [](Proc& p) {
    EXPECT_EQ(p.Waitpid(kInvalidPid), SysError(Err::kChild));
  });
  sched().RunUntilExit(pid);
}

TEST_F(SchedTest, ForkInheritsFdsAndCwd) {
  Pid pid = sched().Spawn({}, [](Proc& p) {
    ASSERT_EQ(p.Chdir("/etc"), 0);
    int64_t fd = p.Open("passwd", kORdOnly);
    ASSERT_GE(fd, 0);
    int64_t child = p.Fork([fd](Proc& c) {
      std::string data;
      // Shared open file description: the child reads through the same fd.
      if (c.Read(static_cast<int>(fd), &data, 10) <= 0) {
        c.Exit(1);
      }
      StatBuf st;
      if (c.Stat("shadow", &st) != 0) {  // cwd inherited (/etc)
        c.Exit(2);
      }
      c.Exit(0);
    });
    int status = -1;
    p.Waitpid(static_cast<Pid>(child), &status);
    p.Exit(status);
  });
  EXPECT_EQ(sched().RunUntilExit(pid), 0);
}

TEST_F(SchedTest, SignalHandlerRuns) {
  int got = 0;
  Pid victim = sched().Spawn({.name = "victim"}, [&](Proc& p) {
    p.Sigaction(kSigUsr1, [&](SigNum s) { got = s; });
    p.Checkpoint("armed");
    p.Pause();
  });
  ASSERT_TRUE(sched().RunUntilLabel(victim, "armed"));
  Pid killer = sched().Spawn({.name = "killer"}, [&](Proc& p) {
    EXPECT_EQ(p.Kill(victim, kSigUsr1), 0);
  });
  sched().RunUntilExit(killer);
  sched().RunUntilExit(victim);
  EXPECT_EQ(got, kSigUsr1);
}

TEST_F(SchedTest, BlockedSignalIsNotDelivered) {
  int got = 0;
  Pid victim = sched().Spawn({.name = "victim"}, [&](Proc& p) {
    p.Sigaction(kSigUsr1, [&](SigNum) { ++got; });
    p.Sigprocmask(/*block=*/true, kSigUsr1);
    p.Checkpoint("blocked");
    p.Null();  // delivery point: nothing should arrive
    p.Checkpoint("still-blocked");
    p.Sigprocmask(/*block=*/false, kSigUsr1);
    p.Null();  // now it arrives
  });
  ASSERT_TRUE(sched().RunUntilLabel(victim, "blocked"));
  Pid killer = sched().Spawn({}, [&](Proc& p) { p.Kill(victim, kSigUsr1); });
  sched().RunUntilExit(killer);
  ASSERT_TRUE(sched().RunUntilLabel(victim, "still-blocked"));
  EXPECT_EQ(got, 0);
  sched().RunUntilExit(victim);
  EXPECT_EQ(got, 1);
}

TEST_F(SchedTest, SigkillTerminates) {
  Pid victim = sched().Spawn({.name = "victim"}, [](Proc& p) {
    p.Checkpoint("running");
    p.Pause();
    p.Exit(0);  // unreachable
  });
  ASSERT_TRUE(sched().RunUntilLabel(victim, "running"));
  Pid killer = sched().Spawn({}, [&](Proc& p) { p.Kill(victim, kSigKill); });
  sched().RunUntilExit(killer);
  EXPECT_EQ(sched().RunUntilExit(victim), 128 + kSigKill);
}

TEST_F(SchedTest, KillPermissionDenied) {
  Pid victim = sched().Spawn({.name = "victim", .cred = UserCred(kAliceUid)}, [](Proc& p) {
    p.Checkpoint("up");
    p.Null();
    p.Exit(3);
  });
  ASSERT_TRUE(sched().RunUntilLabel(victim, "up"));
  Pid mallory = sched().Spawn({.name = "mallory", .cred = UserCred(kMalloryUid)},
                              [&](Proc& p) {
    EXPECT_EQ(p.Kill(victim, kSigTerm), SysError(Err::kPerm));
  });
  sched().RunUntilExit(mallory);
  EXPECT_EQ(sched().RunUntilExit(victim), 3) << "denied SIGTERM must not terminate victim";
}

TEST_F(SchedTest, ExecveReplacesImage) {
  kernel().RegisterProgram(kBinTrue, [](Proc& p) {
    EXPECT_EQ(p.task().comm, "true");
    EXPECT_NE(p.task().mm.FindMappingByPath(kBinTrue), nullptr);
    return 0;
  });
  Pid pid = sched().Spawn({}, [](Proc& p) {
    p.Execve(kBinTrue, {kBinTrue}, {});
    ADD_FAILURE() << "execve must not return on success";
  });
  EXPECT_EQ(sched().RunUntilExit(pid), 0);
}

TEST_F(SchedTest, ExecveHonorsSetuid) {
  kernel().RegisterProgram(kSuidHelper, [](Proc& p) {
    EXPECT_EQ(p.task().cred.euid, kRootUid);
    EXPECT_EQ(p.task().cred.uid, kMalloryUid);
    EXPECT_TRUE(p.task().cred.IsSetid());
    return 0;
  });
  Pid pid = sched().Spawn({.cred = UserCred(kMalloryUid)}, [](Proc& p) {
    p.Execve(kSuidHelper, {kSuidHelper}, {});
  });
  EXPECT_EQ(sched().RunUntilExit(pid), 0);
}

TEST_F(SchedTest, ExecveMissingBinaryFails) {
  Pid pid = sched().Spawn({}, [](Proc& p) {
    EXPECT_EQ(p.Execve("/no/such", {}, {}), SysError(Err::kNoEnt));
    EXPECT_EQ(p.Execve("/etc/passwd", {}, {}), SysError(Err::kNoExec));
    p.Exit(5);
  });
  EXPECT_EQ(sched().RunUntilExit(pid), 5);
}

TEST_F(SchedTest, RunAllFinishesEverything) {
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    sched().Spawn({}, [&](Proc& p) {
      p.Null();
      ++done;
    });
  }
  sched().RunAll();
  EXPECT_EQ(done, 5);
}

TEST_F(SchedTest, DestructorKillsLiveProcs) {
  // A process parked at a checkpoint is force-terminated at teardown; the
  // fixture's destructor must not hang. Nothing to assert beyond survival.
  Pid pid = sched().Spawn({}, [](Proc& p) {
    p.Checkpoint("parked");
    p.Pause();
  });
  ASSERT_TRUE(sched().RunUntilLabel(pid, "parked"));
}

TEST_F(SchedTest, NestedSignalDeliveryReentersHandler) {
  // The kernel itself permits handler re-entry — that is the vulnerability
  // the Process Firewall's signal rules close (E5).
  int depth = 0;
  int max_depth = 0;
  Pid victim = sched().Spawn({.name = "victim"}, [&](Proc& p) {
    p.Sigaction(kSigUsr1, [&](SigNum) {
      ++depth;
      max_depth = std::max(max_depth, depth);
      p.Checkpoint("in-handler");
      p.Null();  // nested delivery point
      --depth;
    });
    p.Checkpoint("armed");
    p.Null();
    p.Checkpoint("done");
  });
  ASSERT_TRUE(sched().RunUntilLabel(victim, "armed"));
  Pid a1 = sched().Spawn({}, [&](Proc& p) { p.Kill(victim, kSigUsr1); });
  sched().RunUntilExit(a1);
  ASSERT_TRUE(sched().RunUntilLabel(victim, "in-handler"));
  Pid a2 = sched().Spawn({}, [&](Proc& p) { p.Kill(victim, kSigUsr1); });
  sched().RunUntilExit(a2);
  ASSERT_TRUE(sched().RunUntilLabel(victim, "done"));
  EXPECT_EQ(max_depth, 2) << "second signal must re-enter the handler";
  sched().RunUntilExit(victim);
}

}  // namespace
}  // namespace pf::sim
