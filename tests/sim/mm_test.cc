// User address-space tests: frame records, validated copies, mappings,
// arena allocation — the raw material of the entrypoint context module.

#include <gtest/gtest.h>

#include "src/sim/mm.h"

namespace pf::sim {
namespace {

constexpr Addr kBase = 0x7ffc12340000ULL;

Mapping MakeMapping(const std::string& path, Addr base, bool eh = true, bool fp = true) {
  Mapping m;
  m.path = path;
  m.base = base;
  m.size = 0x10000;
  m.has_eh_info = eh;
  m.has_frame_pointers = fp;
  return m;
}

TEST(Mm, ResetInitializesRegisters) {
  Mm mm;
  mm.Reset(kBase);
  EXPECT_EQ(mm.sp(), kBase + kUserRegionSize);
  EXPECT_EQ(mm.fp(), 0u);
  EXPECT_TRUE(mm.frames().empty());
}

TEST(Mm, PushPopFrameMaintainsChain) {
  Mm mm;
  mm.Reset(kBase);
  mm.PushFrame(0x1000, 32, false);
  Addr fp1 = mm.fp();
  mm.PushFrame(0x2000, 16, false);
  ASSERT_EQ(mm.frames().size(), 2u);
  // The newest record's saved-FP slot must point at the previous frame.
  uint64_t saved_fp = 0;
  ASSERT_TRUE(mm.ReadU64(mm.fp(), &saved_fp));
  EXPECT_EQ(saved_fp, fp1);
  uint64_t ret_pc = 0;
  ASSERT_TRUE(mm.ReadU64(mm.fp() + 8, &ret_pc));
  EXPECT_EQ(ret_pc, 0x2000u);
  mm.PopFrame();
  EXPECT_EQ(mm.fp(), fp1);
  mm.PopFrame();
  EXPECT_TRUE(mm.frames().empty());
}

TEST(Mm, ScrambledFramesBreakTheChain) {
  Mm mm;
  mm.Reset(kBase);
  mm.PushFrame(0x1000, 0, false);
  mm.PushFrame(0x2000, 0, /*scramble_fp=*/true);
  uint64_t saved_fp = 0;
  ASSERT_TRUE(mm.ReadU64(mm.fp(), &saved_fp));
  EXPECT_FALSE(mm.ContainsUser(saved_fp, 16))
      << "scrambled saved-FP must not point into the user region";
}

TEST(Mm, CopyFromUserRejectsOutOfRange) {
  Mm mm;
  mm.Reset(kBase);
  uint8_t buf[16];
  EXPECT_FALSE(mm.CopyFromUser(kBase - 1, buf, 16));
  EXPECT_FALSE(mm.CopyFromUser(kBase + kUserRegionSize - 8, buf, 16));
  EXPECT_FALSE(mm.CopyFromUser(0, buf, 16));
  EXPECT_TRUE(mm.CopyFromUser(kBase, buf, 16));
  // Overflow-proof: len larger than the region.
  EXPECT_FALSE(mm.CopyFromUser(kBase, buf, kUserRegionSize + 1));
}

TEST(Mm, CopyToUserThenFromRoundTrips) {
  Mm mm;
  mm.Reset(kBase);
  uint64_t v = 0xdeadbeefcafef00dULL;
  ASSERT_TRUE(mm.WriteU64(kBase + 128, v));
  uint64_t r = 0;
  ASSERT_TRUE(mm.ReadU64(kBase + 128, &r));
  EXPECT_EQ(r, v);
}

TEST(Mm, FindMappingByAddressAndPath) {
  Mm mm;
  mm.Reset(kBase);
  mm.AddMapping(MakeMapping("/lib/ld-2.15.so", 0x7f0000100000));
  mm.AddMapping(MakeMapping("/usr/bin/apache2", 0x7f0000200000));
  EXPECT_EQ(mm.FindMapping(0x7f0000100008)->path, "/lib/ld-2.15.so");
  EXPECT_EQ(mm.FindMapping(0x7f0000200008)->path, "/usr/bin/apache2");
  EXPECT_EQ(mm.FindMapping(0x7f0000210000), nullptr) << "one past the end";
  EXPECT_EQ(mm.FindMapping(0x1), nullptr);
  EXPECT_EQ(mm.FindMappingByPath("/usr/bin/apache2")->base, 0x7f0000200000u);
  EXPECT_EQ(mm.FindMappingByPath("apache2")->base, 0x7f0000200000u)
      << "basename lookup must work";
  EXPECT_EQ(mm.FindMappingByPath("nope"), nullptr);
}

TEST(Mm, ArenaAllocatesAndRollsBack) {
  Mm mm;
  mm.Reset(kBase);
  Addr a = mm.ArenaAlloc(24);
  Addr b = mm.ArenaAlloc(24);
  EXPECT_NE(a, kNullAddr);
  EXPECT_NE(b, kNullAddr);
  EXPECT_NE(a, b);
  mm.ArenaRollback(b, 24);
  Addr c = mm.ArenaAlloc(24);
  EXPECT_EQ(c, b) << "LIFO rollback must reuse the slot";
}

TEST(Mm, ArenaExhaustionReturnsNull) {
  Mm mm;
  mm.Reset(kBase);
  Addr last = 0;
  for (;;) {
    Addr a = mm.ArenaAlloc(1024);
    if (a == kNullAddr) {
      break;
    }
    last = a;
  }
  EXPECT_NE(last, 0u);
  EXPECT_LT(last + 1024, kBase + kArenaSize + 1);
}

TEST(Mm, CloneDuplicatesBackingStore) {
  Mm mm;
  mm.Reset(kBase);
  mm.WriteU64(kBase + 64, 1111);
  Mm copy = mm.Clone();
  copy.WriteU64(kBase + 64, 2222);
  uint64_t orig = 0, dup = 0;
  mm.ReadU64(kBase + 64, &orig);
  copy.ReadU64(kBase + 64, &dup);
  EXPECT_EQ(orig, 1111u);
  EXPECT_EQ(dup, 2222u);
}

}  // namespace
}  // namespace pf::sim
