// Mount and cross-device semantics: resolution across mountpoints, EXDEV
// for cross-device link/rename, and per-superblock inode-number spaces.

#include <gtest/gtest.h>

#include "src/sim/sched.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::sim {
namespace {

class MountTest : public pf::testing::SimTest {
 protected:
  MountTest() {
    // Mount a tmpfs over /mnt.
    kernel().MkDirAt("/mnt", 0755, 0, 0, "var_t");
    auto mnt = kernel().LookupNoHooks("/mnt");
    Superblock& tmpfs = kernel().vfs().CreateFs("tmpfs", kernel().labels().Intern("tmp_t"));
    tmpfs.root()->mode = 01777;
    tmpfs.root()->parent_dir = mnt->parent_dir;
    kernel().vfs().Mount(mnt->id(), tmpfs.dev());
    tmpfs_dev_ = tmpfs.dev();
  }

  int Run(std::function<void(Proc&)> body) {
    Pid pid = sched().Spawn({.name = "mnt"}, std::move(body));
    return sched().RunUntilExit(pid);
  }

  Dev tmpfs_dev_ = 0;
};

TEST_F(MountTest, ResolutionCrossesTheMountpoint) {
  Run([&](Proc& p) {
    int64_t fd = p.Open("/mnt/file", kOWrOnly | kOCreat, 0644);
    ASSERT_GE(fd, 0);
    StatBuf st;
    ASSERT_EQ(p.Fstat(static_cast<int>(fd), &st), 0);
    EXPECT_EQ(st.dev, tmpfs_dev_) << "the file lives on the mounted filesystem";
    EXPECT_NE(st.dev, kernel().vfs().root()->dev);
  });
}

TEST_F(MountTest, MountedRootLabelGoverns) {
  Run([&](Proc& p) {
    StatBuf st;
    ASSERT_EQ(p.Stat("/mnt", &st), 0);
    EXPECT_EQ(st.sid, kernel().labels().Intern("tmp_t"));
  });
}

TEST_F(MountTest, HardLinkAcrossDevicesIsEXDEV) {
  kernel().MkFileAt("/etc/linkme", "x", 0644, 0, 0, "etc_t");
  Run([](Proc& p) {
    EXPECT_EQ(p.Link("/etc/linkme", "/mnt/alias"), SysError(Err::kXDev));
  });
}

TEST_F(MountTest, RenameAcrossDevicesIsEXDEV) {
  kernel().MkFileAt("/etc/moveme", "x", 0644, 0, 0, "etc_t");
  Run([](Proc& p) {
    EXPECT_EQ(p.Rename("/etc/moveme", "/mnt/moved"), SysError(Err::kXDev));
  });
}

TEST_F(MountTest, InodeNumbersAreOnlyUniquePerDevice) {
  // Same inode number can exist on both devices — the reason TOCTTOU
  // identity checks must compare (dev, ino), not ino alone.
  Run([&](Proc& p) {
    int64_t a = p.Open("/mnt/a", kOWrOnly | kOCreat, 0644);
    StatBuf sa;
    p.Fstat(static_cast<int>(a), &sa);
    // Find a root-fs file with a potentially overlapping ino space.
    StatBuf sb;
    p.Stat("/etc/passwd", &sb);
    EXPECT_NE(sa.dev, sb.dev);
    EXPECT_NE(sa.id(), sb.id());
  });
}

TEST_F(MountTest, DotDotOutOfMountReturnsToParentTree) {
  Run([](Proc& p) {
    StatBuf st;
    ASSERT_EQ(p.Stat("/mnt/../etc/passwd", &st), 0);
    EXPECT_EQ(st.ino, 0u + st.ino);  // resolves without error
  });
}

}  // namespace
}  // namespace pf::sim
