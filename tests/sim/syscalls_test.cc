// File/socket system-call tests: open flags, DAC enforcement, sticky
// directories, inode identity across TOCTTOU-relevant operations, sockets.

#include <gtest/gtest.h>

#include "src/sim/sched.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::sim {
namespace {

class SyscallTest : public pf::testing::SimTest {
 protected:
  // Runs `body` in a fresh proc with the given creds; returns its exit code.
  int Run(Cred cred, std::function<void(Proc&)> body) {
    SpawnOpts opts;
    opts.cred = cred;
    Pid pid = sched().Spawn(opts, std::move(body));
    return sched().RunUntilExit(pid);
  }
};

TEST_F(SyscallTest, OpenReadWriteRoundTrip) {
  Run(RootCred(), [](Proc& p) {
    int64_t fd = p.Open("/tmp/new.txt", kOWrOnly | kOCreat, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(p.Write(static_cast<int>(fd), "hello world"), 11);
    ASSERT_EQ(p.Close(static_cast<int>(fd)), 0);
    fd = p.Open("/tmp/new.txt", kORdOnly);
    ASSERT_GE(fd, 0);
    std::string data;
    ASSERT_EQ(p.Read(static_cast<int>(fd), &data, 4096), 11);
    EXPECT_EQ(data, "hello world");
  });
}

TEST_F(SyscallTest, OCreatRespectsUmask) {
  Run(RootCred(), [](Proc& p) {
    p.Umask(077);
    int64_t fd = p.Open("/tmp/masked", kOWrOnly | kOCreat, 0666);
    ASSERT_GE(fd, 0);
    StatBuf st;
    ASSERT_EQ(p.Fstat(static_cast<int>(fd), &st), 0);
    EXPECT_EQ(st.mode & kModePermMask, 0600u);
  });
}

TEST_F(SyscallTest, OExclFailsOnExisting) {
  kernel().MkFileAt("/tmp/existing", "", 0644, 0, 0, "tmp_t");
  Run(RootCred(), [](Proc& p) {
    EXPECT_EQ(p.Open("/tmp/existing", kOWrOnly | kOCreat | kOExcl),
              SysError(Err::kExist));
  });
}

TEST_F(SyscallTest, ONofollowRefusesSymlink) {
  kernel().MkSymlinkAt("/tmp/lnk", "/etc/passwd", kMalloryUid, kMalloryUid, "tmp_t");
  Run(RootCred(), [](Proc& p) {
    EXPECT_EQ(p.Open("/tmp/lnk", kORdOnly | kONofollow), SysError(Err::kLoop));
    EXPECT_GE(p.Open("/tmp/lnk", kORdOnly), 0);  // followed without the flag
  });
}

TEST_F(SyscallTest, OCreatFollowsFinalSymlink) {
  // Classic squat: O_CREAT through a planted link creates/opens the target.
  kernel().MkSymlinkAt("/tmp/victimfile", "/tmp/target", kMalloryUid, kMalloryUid, "tmp_t");
  Run(RootCred(), [&](Proc& p) {
    int64_t fd = p.Open("/tmp/victimfile", kOWrOnly | kOCreat, 0644);
    ASSERT_GE(fd, 0);
    StatBuf st;
    ASSERT_EQ(p.Fstat(static_cast<int>(fd), &st), 0);
    StatBuf target;
    ASSERT_EQ(p.Lstat("/tmp/target", &target), 0);
    EXPECT_EQ(st.id(), target.id()) << "open(O_CREAT) must have followed the link";
  });
}

TEST_F(SyscallTest, DacDeniesUnreadableFile) {
  Run(UserCred(kMalloryUid), [](Proc& p) {
    EXPECT_EQ(p.Open("/etc/shadow", kORdOnly), SysError(Err::kAcces));
  });
  Run(RootCred(), [](Proc& p) { EXPECT_GE(p.Open("/etc/shadow", kORdOnly), 0); });
}

TEST_F(SyscallTest, DacDeniesWriteToReadOnlyDir) {
  Run(UserCred(kMalloryUid), [](Proc& p) {
    EXPECT_EQ(p.Open("/etc/evil", kOWrOnly | kOCreat), SysError(Err::kAcces));
    EXPECT_GE(p.Open("/tmp/ok", kOWrOnly | kOCreat), 0);  // /tmp is 1777
  });
}

TEST_F(SyscallTest, StickyTmpPreventsDeletingOthersFiles) {
  kernel().MkFileAt("/tmp/alices", "", 0666, kAliceUid, kAliceUid, "tmp_t");
  Run(UserCred(kMalloryUid), [](Proc& p) {
    EXPECT_EQ(p.Unlink("/tmp/alices"), SysError(Err::kAcces));
  });
  Run(UserCred(kAliceUid), [](Proc& p) { EXPECT_EQ(p.Unlink("/tmp/alices"), 0); });
}

TEST_F(SyscallTest, UnlinkThenRecreateRecyclesInode) {
  // The precondition of the cryogenic-sleep attack: same inode number, new
  // file (distinguishable only by generation, which stat does not expose).
  Run(RootCred(), [](Proc& p) {
    int64_t fd = p.Open("/tmp/r", kOWrOnly | kOCreat);
    StatBuf before;
    p.Fstat(static_cast<int>(fd), &before);
    p.Close(static_cast<int>(fd));
    p.Unlink("/tmp/r");
    int64_t fd2 = p.Open("/tmp/r2", kOWrOnly | kOCreat);
    StatBuf after;
    p.Fstat(static_cast<int>(fd2), &after);
    EXPECT_EQ(before.ino, after.ino) << "inode number must be recycled";
  });
}

TEST_F(SyscallTest, HeldOpenFilePinsItsInodeNumber) {
  Run(RootCred(), [](Proc& p) {
    int64_t fd = p.Open("/tmp/pinned", kOWrOnly | kOCreat);
    StatBuf pinned;
    p.Fstat(static_cast<int>(fd), &pinned);
    p.Unlink("/tmp/pinned");
    int64_t fd2 = p.Open("/tmp/other", kOWrOnly | kOCreat);
    StatBuf other;
    p.Fstat(static_cast<int>(fd2), &other);
    EXPECT_NE(pinned.ino, other.ino) << "open file's inode number must not be recycled";
  });
}

TEST_F(SyscallTest, StatVsLstatOnSymlink) {
  kernel().MkSymlinkAt("/tmp/sl", "/etc/passwd", 0, 0, "tmp_t");
  Run(RootCred(), [](Proc& p) {
    StatBuf st, lst;
    ASSERT_EQ(p.Stat("/tmp/sl", &st), 0);
    ASSERT_EQ(p.Lstat("/tmp/sl", &lst), 0);
    EXPECT_FALSE(st.IsSymlink());
    EXPECT_TRUE(lst.IsSymlink());
    EXPECT_NE(st.id(), lst.id());
  });
}

TEST_F(SyscallTest, MkdirRmdirReaddir) {
  Run(RootCred(), [](Proc& p) {
    ASSERT_EQ(p.Mkdir("/tmp/d", 0755), 0);
    ASSERT_EQ(p.Mkdir("/tmp/d/sub", 0755), 0);
    EXPECT_EQ(p.Rmdir("/tmp/d"), SysError(Err::kNotEmpty));
    std::vector<std::string> names;
    ASSERT_EQ(p.Readdir("/tmp/d", &names), 1);
    EXPECT_EQ(names[0], "sub");
    ASSERT_EQ(p.Rmdir("/tmp/d/sub"), 0);
    ASSERT_EQ(p.Rmdir("/tmp/d"), 0);
    EXPECT_EQ(p.Rmdir("/tmp/d"), SysError(Err::kNoEnt));
  });
}

TEST_F(SyscallTest, HardLinkSharesInode) {
  kernel().MkFileAt("/tmp/orig", "payload", 0644, 0, 0, "tmp_t");
  Run(RootCred(), [](Proc& p) {
    ASSERT_EQ(p.Link("/tmp/orig", "/tmp/alias"), 0);
    StatBuf a, b;
    p.Stat("/tmp/orig", &a);
    p.Stat("/tmp/alias", &b);
    EXPECT_EQ(a.id(), b.id());
    EXPECT_EQ(a.nlink, 2u);
    ASSERT_EQ(p.Unlink("/tmp/orig"), 0);
    std::string data;
    int64_t fd = p.Open("/tmp/alias", kORdOnly);
    p.Read(static_cast<int>(fd), &data, 100);
    EXPECT_EQ(data, "payload");
  });
}

TEST_F(SyscallTest, RenameReplacesDestination) {
  kernel().MkFileAt("/tmp/src", "new", 0644, 0, 0, "tmp_t");
  kernel().MkFileAt("/tmp/dst", "old", 0644, 0, 0, "tmp_t");
  Run(RootCred(), [](Proc& p) {
    ASSERT_EQ(p.Rename("/tmp/src", "/tmp/dst"), 0);
    StatBuf st;
    EXPECT_EQ(p.Stat("/tmp/src", &st), SysError(Err::kNoEnt));
    int64_t fd = p.Open("/tmp/dst", kORdOnly);
    std::string data;
    p.Read(static_cast<int>(fd), &data, 100);
    EXPECT_EQ(data, "new");
  });
}

TEST_F(SyscallTest, ChmodChownPermissions) {
  kernel().MkFileAt("/tmp/f", "", 0644, kAliceUid, kAliceUid, "tmp_t");
  Run(UserCred(kMalloryUid), [](Proc& p) {
    EXPECT_EQ(p.Chmod("/tmp/f", 0777), SysError(Err::kPerm));  // not owner
    EXPECT_EQ(p.Chown("/tmp/f", kMalloryUid, kMalloryUid), SysError(Err::kPerm));
  });
  Run(UserCred(kAliceUid), [](Proc& p) { EXPECT_EQ(p.Chmod("/tmp/f", 0600), 0); });
  Run(RootCred(), [](Proc& p) { EXPECT_EQ(p.Chown("/tmp/f", 0, 0), 0); });
}

TEST_F(SyscallTest, AccessUsesRealUid) {
  // A setuid-root process: euid 0, real uid mallory. access() must answer
  // for the real uid (the racy recommendation the paper criticizes).
  Cred setuid_cred;
  setuid_cred.uid = kMalloryUid;
  setuid_cred.gid = kMalloryUid;
  setuid_cred.euid = 0;
  setuid_cred.egid = 0;
  Run(setuid_cred, [](Proc& p) {
    EXPECT_EQ(p.Access("/etc/shadow", AccessBit(Access::kRead)), SysError(Err::kAcces));
    EXPECT_GE(p.Open("/etc/shadow", kORdOnly), 0) << "but open uses the effective uid";
  });
}

TEST_F(SyscallTest, SocketBindListenConnect) {
  Pid server = sched().Spawn({.name = "server"}, [](Proc& p) {
    int64_t fd = p.Socket();
    ASSERT_GE(fd, 0);
    ASSERT_EQ(p.Bind(static_cast<int>(fd), "/tmp/sock"), 0);
    ASSERT_EQ(p.Listen(static_cast<int>(fd)), 0);
    p.Checkpoint("listening");
    p.Pause();
  });
  ASSERT_TRUE(sched().RunUntilLabel(server, "listening"));
  Pid client = sched().Spawn({.name = "client"}, [](Proc& p) {
    int64_t fd = p.Socket();
    ASSERT_GE(fd, 0);
    EXPECT_EQ(p.Connect(static_cast<int>(fd), "/tmp/sock"), 0);
  });
  sched().RunUntilExit(client);
  sched().Wake(server);
  sched().RunUntilExit(server);
}

TEST_F(SyscallTest, BindToExistingPathIsEADDRINUSE) {
  kernel().MkFileAt("/tmp/squatted", "", 0644, kMalloryUid, kMalloryUid, "tmp_t");
  Run(RootCred(), [](Proc& p) {
    int64_t fd = p.Socket();
    EXPECT_EQ(p.Bind(static_cast<int>(fd), "/tmp/squatted"), SysError(Err::kAddrInUse));
  });
}

TEST_F(SyscallTest, ConnectToNonSocketRefused) {
  Run(RootCred(), [](Proc& p) {
    int64_t fd = p.Socket();
    EXPECT_EQ(p.Connect(static_cast<int>(fd), "/etc/passwd"),
              SysError(Err::kConnRefused));
  });
}

TEST_F(SyscallTest, BadFdErrors) {
  Run(RootCred(), [](Proc& p) {
    std::string s;
    EXPECT_EQ(p.Read(42, &s, 1), SysError(Err::kBadF));
    EXPECT_EQ(p.Write(42, "x"), SysError(Err::kBadF));
    EXPECT_EQ(p.Close(42), SysError(Err::kBadF));
    StatBuf st;
    EXPECT_EQ(p.Fstat(42, &st), SysError(Err::kBadF));
  });
}

TEST_F(SyscallTest, MmapMapsLibraryIntoAddressSpace) {
  Run(RootCred(), [](Proc& p) {
    int64_t fd = p.Open(kLibc, kORdOnly);
    ASSERT_GE(fd, 0);
    int64_t base = p.MmapFd(static_cast<int>(fd));
    ASSERT_GT(base, 0);
    const Mapping* m = p.task().mm.FindMapping(static_cast<Addr>(base) + 8);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->path, kLibc);
  });
}

}  // namespace
}  // namespace pf::sim
