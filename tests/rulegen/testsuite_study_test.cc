// The §6.3.1 rule-source study: rules generated from program *test suites*
// vs. rules generated from the *deployment* trace.
//
// Test suites exercise configurations the deployment never uses (the paper's
// example: Apache suites run with and without .htaccess support), so
// suite-derived rules allow resource labels the deployed program never
// touches. Both rule sets are false-positive-free on the deployment
// workload, but the suite rules miss attacks that deployment rules block —
// "unnecessary false negatives".

#include <gtest/gtest.h>

#include "src/apps/programs.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/rulegen/classify.h"
#include "src/sim/sched.h"
#include "src/sim/sysimage.h"

namespace pf::rulegen {
namespace {

using sim::Pid;
using sim::Proc;

constexpr uint64_t kServeEpt = 0x2e100;

struct World {
  std::unique_ptr<sim::Kernel> kernel;
  core::Engine* engine = nullptr;
  std::unique_ptr<sim::Scheduler> sched;
  std::unique_ptr<core::Pftables> pft;

  World() {
    kernel = std::make_unique<sim::Kernel>(0x5717e);
    sim::BuildSysImage(*kernel);
    apps::InstallPrograms(*kernel);
    engine = core::InstallProcessFirewall(*kernel);
    pft = std::make_unique<core::Pftables>(engine);
    sched = std::make_unique<sim::Scheduler>(*kernel);
    // A configuration file only the test suite's "AllowOverride" runs touch
    // (high-integrity, but a label the deployment never serves).
    kernel->MkFileAt("/var/www/override.conf", "AllowOverride All", 0644, 0, 0,
                     "httpd_config_t");
  }

  // Runs the "server" opening a set of files at the serve entrypoint.
  void RunServer(const std::vector<std::string>& paths) {
    Pid pid = sched->Spawn({.name = "apache2", .exe = sim::kApache}, [&](Proc& p) {
      for (const std::string& path : paths) {
        sim::UserFrame site(p, sim::kApache, kServeEpt);
        int64_t fd = p.Open(path, sim::kORdOnly);
        if (fd >= 0) {
          p.Close(static_cast<int>(fd));
        }
      }
    });
    sched->RunUntilExit(pid);
  }

  // Probes one open at the serve entrypoint; true if it was denied.
  bool ProbeDenied(const std::string& path) {
    bool denied = false;
    Pid pid = sched->Spawn({.name = "apache2", .exe = sim::kApache}, [&](Proc& p) {
      sim::UserFrame site(p, sim::kApache, kServeEpt);
      int64_t fd = p.Open(path, sim::kORdOnly);
      denied = fd == sim::SysError(sim::Err::kAcces);
      if (fd >= 0) {
        p.Close(static_cast<int>(fd));
      }
    });
    sched->RunUntilExit(pid);
    return denied;
  }
};

// Produces suggested rules for a trace of paths (run under a LOG rule).
std::vector<std::string> RulesFromTrace(const std::vector<std::string>& paths) {
  World w;
  w.pft->Exec("pftables -I input -o FILE_OPEN -j LOG");
  for (int i = 0; i < 4; ++i) {  // enough invocations to clear the threshold
    w.RunServer(paths);
  }
  EntrypointClassifier classifier;
  classifier.AddAll(w.engine->log().records());
  return classifier.SuggestRules(/*threshold=*/4);
}

TEST(TestSuiteStudy, SuiteRulesAreBroaderThanDeploymentRules) {
  // The test suite also exercises the .htaccess configuration; the
  // deployment serves only system content.
  auto suite_rules =
      RulesFromTrace({"/var/www/index.html", "/var/www/override.conf"});
  auto deploy_rules = RulesFromTrace({"/var/www/index.html"});
  ASSERT_FALSE(suite_rules.empty());
  ASSERT_FALSE(deploy_rules.empty());
  // The suite rule's allowed label set must contain the config label; the
  // deployment rule's must not.
  EXPECT_NE(suite_rules[0].find("httpd_config_t"), std::string::npos);
  EXPECT_EQ(deploy_rules[0].find("httpd_config_t"), std::string::npos);
}

TEST(TestSuiteStudy, NeitherSourceCausesDeploymentFalsePositives) {
  for (auto* rules : {new std::vector<std::string>(RulesFromTrace(
                          {"/var/www/index.html", "/var/www/override.conf"})),
                      new std::vector<std::string>(
                          RulesFromTrace({"/var/www/index.html"}))}) {
    World w;
    ASSERT_TRUE(w.pft->ExecAll(*rules).ok());
    EXPECT_FALSE(w.ProbeDenied("/var/www/index.html"))
        << "deployment accesses must stay allowed";
    delete rules;
  }
}

TEST(TestSuiteStudy, SuiteRulesMissAttacksDeploymentRulesBlock) {
  auto suite_rules =
      RulesFromTrace({"/var/www/index.html", "/var/www/override.conf"});
  auto deploy_rules = RulesFromTrace({"/var/www/index.html"});

  // The attack: the adversary redirects the serve entrypoint to their
  // user-content file (a label the deployment never serves).
  {
    World w;
    ASSERT_TRUE(w.pft->ExecAll(deploy_rules).ok());
    EXPECT_TRUE(w.ProbeDenied("/var/www/override.conf"))
        << "deployment-derived rule blocks the foreign label";
  }
  {
    World w;
    ASSERT_TRUE(w.pft->ExecAll(suite_rules).ok());
    EXPECT_FALSE(w.ProbeDenied("/var/www/override.conf"))
        << "suite-derived rule allows it: the unnecessary false negative";
  }
}

}  // namespace
}  // namespace pf::rulegen
