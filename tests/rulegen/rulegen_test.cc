// Rule generation tests: classification from real LOG records, threshold-
// based suggestion, generation from known vulnerabilities (rules must parse
// and actually block), the synthetic deployment trace and Table 8 analysis
// invariants, and the launch-consistency study.

#include <gtest/gtest.h>

#include "src/apps/entrypoints.h"
#include "src/apps/programs.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/rulegen/classify.h"
#include "src/rulegen/synthetic.h"
#include "src/rulegen/vuln.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::rulegen {
namespace {

using sim::Pid;
using sim::Proc;
using sim::UserFrame;

class RulegenTest : public pf::testing::SimTest {
 protected:
  RulegenTest() : engine_(core::InstallProcessFirewall(kernel())), pft_(engine_) {
    apps::InstallPrograms(kernel());
  }

  core::Engine* engine_;
  core::Pftables pft_;
};

TEST_F(RulegenTest, ClassifiesEntrypointsFromLogRecords) {
  // Log every open, then drive one entrypoint at trusted files and another
  // at adversary-writable ones.
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -j LOG").ok());
  kernel().MkFileAt("/tmp/loot", "x", 0666, sim::kMalloryUid, sim::kMalloryUid, "tmp_t");
  Pid pid = sched().Spawn({.exe = sim::kBinTrue}, [](Proc& p) {
    for (int i = 0; i < 3; ++i) {
      UserFrame f(p, sim::kBinTrue, 0xaaa);
      p.Close(static_cast<int>(p.Open("/etc/passwd", sim::kORdOnly)));
    }
    for (int i = 0; i < 2; ++i) {
      UserFrame f(p, sim::kBinTrue, 0xbbb);
      p.Close(static_cast<int>(p.Open("/tmp/loot", sim::kORdOnly)));
    }
    UserFrame f(p, sim::kBinTrue, 0xccc);
    p.Close(static_cast<int>(p.Open("/etc/passwd", sim::kORdOnly)));
    p.Close(static_cast<int>(p.Open("/tmp/loot", sim::kORdOnly)));
  });
  sched().RunUntilExit(pid);

  EntrypointClassifier classifier;
  classifier.AddAll(engine_->log().records());
  ASSERT_EQ(classifier.entrypoints().size(), 3u);
  EptKey high_key{sim::kBinTrue, 0xaaa};
  EptKey low_key{sim::kBinTrue, 0xbbb};
  EptKey both_key{sim::kBinTrue, 0xccc};
  EXPECT_EQ(classifier.entrypoints().at(high_key).Classification(), EptClass::kHigh);
  EXPECT_EQ(classifier.entrypoints().at(high_key).invocations, 3u);
  EXPECT_EQ(classifier.entrypoints().at(low_key).Classification(), EptClass::kLow);
  EXPECT_EQ(classifier.entrypoints().at(both_key).Classification(), EptClass::kBoth);
  EXPECT_EQ(classifier.CountClass(EptClass::kHigh), 1u);
  EXPECT_EQ(classifier.CountClass(EptClass::kBoth), 1u);
}

TEST_F(RulegenTest, SuggestionHonorsThresholdAndSkipsBoth) {
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -j LOG").ok());
  Pid pid = sched().Spawn({.exe = sim::kBinTrue}, [](Proc& p) {
    for (int i = 0; i < 5; ++i) {
      UserFrame f(p, sim::kBinTrue, 0xaaa);
      p.Close(static_cast<int>(p.Open("/etc/passwd", sim::kORdOnly)));
    }
    UserFrame f(p, sim::kBinTrue, 0xbbb);
    p.Close(static_cast<int>(p.Open("/etc/passwd", sim::kORdOnly)));
  });
  sched().RunUntilExit(pid);

  EntrypointClassifier classifier;
  classifier.AddAll(engine_->log().records());
  auto strict = classifier.SuggestRules(/*threshold=*/5);
  ASSERT_EQ(strict.size(), 1u) << "only the 5x entrypoint qualifies";
  EXPECT_NE(strict[0].find("0xaaa"), std::string::npos);
  EXPECT_NE(strict[0].find("~{etc_t}"), std::string::npos);
  auto lax = classifier.SuggestRules(/*threshold=*/1);
  EXPECT_EQ(lax.size(), 2u);
  // Suggested rules must install cleanly.
  EXPECT_TRUE(pft_.ExecAll(strict).ok());
}

TEST_F(RulegenTest, SuggestedRuleBlocksDeviation) {
  // Learn that entrypoint 0xaaa only opens etc_t, install the suggestion,
  // and verify a later tmp_t access at that entrypoint is blocked.
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -j LOG").ok());
  Pid train = sched().Spawn({.exe = sim::kBinTrue}, [](Proc& p) {
    for (int i = 0; i < 3; ++i) {
      UserFrame f(p, sim::kBinTrue, 0xaaa);
      p.Close(static_cast<int>(p.Open("/etc/passwd", sim::kORdOnly)));
    }
  });
  sched().RunUntilExit(train);

  EntrypointClassifier classifier;
  classifier.AddAll(engine_->log().records());
  auto rules = classifier.SuggestRules(3);
  ASSERT_EQ(rules.size(), 1u);
  ASSERT_TRUE(pft_.ExecAll(rules).ok());

  kernel().MkFileAt("/tmp/planted", "x", 0666, sim::kMalloryUid, sim::kMalloryUid,
                    "tmp_t");
  Pid deploy = sched().Spawn({.exe = sim::kBinTrue}, [](Proc& p) {
    {
      UserFrame f(p, sim::kBinTrue, 0xaaa);
      // Deviating access: blocked.
      if (p.Open("/tmp/planted", sim::kORdOnly) != sim::SysError(sim::Err::kAcces)) {
        p.Exit(1);
      }
      // Learned access: still fine.
      if (p.Open("/etc/passwd", sim::kORdOnly) < 0) {
        p.Exit(2);
      }
    }
    p.Exit(0);
  });
  EXPECT_EQ(sched().RunUntilExit(deploy), 0);
}

TEST_F(RulegenTest, VulnGenerationTocttouTemplate) {
  VulnRecord rec;
  rec.type = VulnType::kTocttou;
  rec.program = "/bin/dbus-daemon";
  rec.check_entrypoint = apps::kDbusBind;
  rec.check_op = "SOCKET_BIND";
  rec.entrypoint = apps::kDbusSetattr;
  rec.op = "SOCKET_SETATTR";
  auto rules = GenerateRules(rec);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_TRUE(pft_.ExecAll(rules).ok());
  EXPECT_NE(rules[0].find("STATE --set"), std::string::npos);
  EXPECT_NE(rules[1].find("--nequal -j DROP"), std::string::npos);
}

TEST_F(RulegenTest, VulnGenerationSearchPathIsSyshighGeneralized) {
  VulnRecord rec;
  rec.type = VulnType::kUntrustedSearchPath;
  rec.program = "/usr/bin/java";
  rec.entrypoint = apps::kJavaConfigOpen;
  auto rules = GenerateRules(rec);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_NE(rules[0].find("~{SYSHIGH}"), std::string::npos);
  EXPECT_TRUE(pft_.ExecAll(rules).ok());
}

TEST_F(RulegenTest, VulnGenerationAllTypesProduceInstallableRules) {
  for (VulnType type :
       {VulnType::kUntrustedSearchPath, VulnType::kUntrustedLibrary,
        VulnType::kPhpInclusion, VulnType::kDirectoryTraversal, VulnType::kLinkFollowing,
        VulnType::kFileSquat, VulnType::kTocttou, VulnType::kSignalRace}) {
    sim::Kernel k(7);
    sim::BuildSysImage(k);
    core::Engine* engine = core::InstallProcessFirewall(k);
    core::Pftables pft(engine);
    VulnRecord rec;
    rec.type = type;
    rec.program = "/bin/true";
    rec.entrypoint = 0x1000;
    rec.check_entrypoint = 0x900;
    auto rules = GenerateRules(rec);
    ASSERT_FALSE(rules.empty());
    core::Status s = pft.ExecAll(rules);
    EXPECT_TRUE(s.ok()) << "type " << static_cast<int>(type) << ": " << s.message();
  }
}

// --- synthetic trace / Table 8 ---

class SyntheticTraceTest : public ::testing::Test {
 protected:
  SyntheticTrace trace_ = GenerateDeploymentTrace();
  const std::vector<uint64_t> thresholds_ = {0, 5, 10, 50, 100, 500, 1000, 1149, 5000};
};

TEST_F(SyntheticTraceTest, MatchesPaperScale) {
  EXPECT_EQ(trace_.entrypoints.size(), 5234u);
  // ~410k accesses: same order of magnitude.
  EXPECT_GT(trace_.total_accesses, 100000u);
  EXPECT_LT(trace_.total_accesses, 2000000u);
}

TEST_F(SyntheticTraceTest, GroundTruthClassCountsCalibrated) {
  size_t high = 0, low = 0, both = 0;
  for (const auto& e : trace_.entrypoints) {
    switch (e.truth) {
      case SyntheticEpt::Truth::kHigh: ++high; break;
      case SyntheticEpt::Truth::kLow: ++low; break;
      case SyntheticEpt::Truth::kBoth: ++both; break;
    }
  }
  EXPECT_NEAR(static_cast<double>(high), 4229, 10);
  EXPECT_NEAR(static_cast<double>(low), 480, 10);
  EXPECT_NEAR(static_cast<double>(both), 525, 10);
}

TEST_F(SyntheticTraceTest, Table8RowsAreMonotone) {
  auto rows = AnalyzeThresholds(trace_, thresholds_);
  ASSERT_EQ(rows.size(), thresholds_.size());
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i].rules_produced, rows[i - 1].rules_produced)
        << "higher thresholds cannot produce more rules";
    EXPECT_LE(rows[i].false_positives, rows[i - 1].false_positives);
    EXPECT_GE(rows[i].both, rows[i - 1].both)
        << "more invocations can only reveal more dual entrypoints";
  }
  for (const auto& row : rows) {
    EXPECT_EQ(row.high_only + row.low_only + row.both, trace_.entrypoints.size());
    EXPECT_LE(row.false_positives, row.rules_produced);
  }
}

TEST_F(SyntheticTraceTest, ZeroFalsePositivesAtPaperThreshold) {
  auto rows = AnalyzeThresholds(trace_, thresholds_);
  const Table8Row* r1149 = nullptr;
  const Table8Row* r0 = nullptr;
  for (const auto& row : rows) {
    if (row.threshold == 1149) {
      r1149 = &row;
    }
    if (row.threshold == 0) {
      r0 = &row;
    }
  }
  ASSERT_NE(r1149, nullptr);
  ASSERT_NE(r0, nullptr);
  EXPECT_EQ(r1149->false_positives, 0u)
      << "the paper's empirical threshold must be clean by construction";
  EXPECT_GT(r1149->rules_produced, 0u);
  EXPECT_EQ(r0->both, 0u) << "one invocation can never classify as both";
  EXPECT_EQ(r0->rules_produced, trace_.entrypoints.size());
  EXPECT_GT(r0->false_positives, 400u) << "every dual entrypoint misfires at t=0";
}

TEST_F(SyntheticTraceTest, DeterministicForSameSeed) {
  SyntheticTrace again = GenerateDeploymentTrace();
  ASSERT_EQ(again.entrypoints.size(), trace_.entrypoints.size());
  EXPECT_EQ(again.total_accesses, trace_.total_accesses);
  SyntheticTraceConfig other;
  other.seed = 99;
  SyntheticTrace different = GenerateDeploymentTrace(other);
  EXPECT_NE(different.total_accesses, trace_.total_accesses);
}

TEST(ConsistencyTest, RoughlyMatchesPaperFraction) {
  ConsistencyReport report = AnalyzeLaunchConsistency();
  EXPECT_EQ(report.programs, 318);
  // Paper: 232 of 318 — accept the same ballpark.
  EXPECT_GT(report.consistent, 190);
  EXPECT_LT(report.consistent, 290);
}

}  // namespace
}  // namespace pf::rulegen
