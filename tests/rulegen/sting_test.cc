// STING tool tests: end-to-end monitor -> plant -> confirm -> generate ->
// enforce, plus negative cases (protected directories yield no candidates,
// sticky-bit-protected files cannot be planted over).

#include <gtest/gtest.h>

#include "src/apps/programs.h"
#include "src/core/pftables.h"
#include "src/rulegen/sting.h"
#include "src/sim/sysimage.h"

namespace pf::rulegen {
namespace {

using sim::Pid;
using sim::Proc;

StingWorld MakeWorld() {
  StingWorld world;
  world.kernel = std::make_unique<sim::Kernel>(0x57164);
  sim::BuildSysImage(*world.kernel);
  apps::InstallPrograms(*world.kernel);
  world.engine = core::InstallProcessFirewall(*world.kernel);
  world.sched = std::make_unique<sim::Scheduler>(*world.kernel);
  return world;
}

// A victim daemon that reads its cache file from /tmp at a fixed call site —
// a planted symlink there redirects it (the classic vulnerable pattern).
void VulnerableWorkload(StingWorld& world) {
  world.kernel->MkFileAt("/tmp/victimd.cache", "cached", 0644, 0, 0, "tmp_t");
  Pid pid = world.sched->Spawn({.name = "victimd", .exe = sim::kBinTrue},
                               [](Proc& p) {
    sim::UserFrame site(p, sim::kBinTrue, 0x7777);
    int64_t fd = p.Open("/tmp/victimd.cache", sim::kORdOnly);
    if (fd >= 0) {
      std::string data;
      p.Read(static_cast<int>(fd), &data, 4096);
      p.Close(static_cast<int>(fd));
    }
  });
  world.sched->RunUntilExit(pid);
}

// A careful daemon that only touches /etc (no adversary-writable surface).
void SafeWorkload(StingWorld& world) {
  Pid pid = world.sched->Spawn({.name = "safed", .exe = sim::kBinTrue}, [](Proc& p) {
    sim::UserFrame site(p, sim::kBinTrue, 0x8888);
    int64_t fd = p.Open("/etc/passwd", sim::kORdOnly);
    if (fd >= 0) {
      p.Close(static_cast<int>(fd));
    }
  });
  world.sched->RunUntilExit(pid);
}

TEST(StingTest, MonitorFindsAdversaryWritableSurfaces) {
  Sting sting(&MakeWorld, &VulnerableWorkload);
  auto candidates = sting.Monitor();
  ASSERT_FALSE(candidates.empty());
  bool found = false;
  for (const auto& c : candidates) {
    if (c.path == "/tmp/victimd.cache" && c.entrypoint == 0x7777) {
      found = true;
      EXPECT_EQ(c.program, sim::kBinTrue);
    }
  }
  EXPECT_TRUE(found);
}

TEST(StingTest, MonitorIgnoresProtectedSurfaces) {
  Sting sting(&MakeWorld, &SafeWorkload);
  for (const auto& c : sting.Monitor()) {
    EXPECT_NE(c.path.rfind("/etc/", 0), 0u)
        << "/etc is not adversary-writable; no candidate should target it: " << c.path;
  }
}

TEST(StingTest, TestPhaseConfirmsExploitability) {
  Sting sting(&MakeWorld, &VulnerableWorkload);
  auto findings = sting.TestCandidates(sting.Monitor());
  ASSERT_FALSE(findings.empty());
  EXPECT_TRUE(findings.front().exploitable);
  EXPECT_EQ(findings.front().record.program, sim::kBinTrue);
  EXPECT_EQ(findings.front().record.entrypoint, 0x7777u);
}

TEST(StingTest, GeneratedRulesBlockTheAttackWithoutBreakingTheVictim) {
  Sting sting(&MakeWorld, &VulnerableWorkload);
  auto rules = sting.GenerateBlockingRules();
  ASSERT_FALSE(rules.empty());

  // Enforcing world, attack planted.
  StingWorld world = MakeWorld();
  core::Pftables pft(world.engine);
  ASSERT_TRUE(pft.ExecAll(rules).ok());
  world.kernel->MkFileAt("/etc/secret", "s3cr3t", 0600, 0, 0, "shadow_t");
  world.kernel->MkSymlinkAt("/tmp/victimd.cache", "/etc/secret", sim::kMalloryUid,
                            sim::kMalloryUid, "tmp_t");
  std::string leaked;
  Pid pid = world.sched->Spawn({.name = "victimd", .exe = sim::kBinTrue},
                               [&](Proc& p) {
    sim::UserFrame site(p, sim::kBinTrue, 0x7777);
    int64_t fd = p.Open("/tmp/victimd.cache", sim::kORdOnly);
    if (fd >= 0) {
      p.Read(static_cast<int>(fd), &leaked, 4096);
    }
  });
  world.sched->RunUntilExit(pid);
  EXPECT_TRUE(leaked.empty()) << "generated rule must block the redirected open";

  // Victim function preserved: a fresh world with a real cache file works.
  StingWorld clean = MakeWorld();
  core::Pftables pft2(clean.engine);
  ASSERT_TRUE(pft2.ExecAll(rules).ok());
  clean.kernel->MkFileAt("/tmp/victimd.cache", "cached", 0644, 0, 0, "tmp_t");
  std::string read_back;
  Pid ok = clean.sched->Spawn({.name = "victimd", .exe = sim::kBinTrue},
                              [&](Proc& p) {
    sim::UserFrame site(p, sim::kBinTrue, 0x7777);
    int64_t fd = p.Open("/tmp/victimd.cache", sim::kORdOnly);
    if (fd >= 0) {
      p.Read(static_cast<int>(fd), &read_back, 4096);
    }
  });
  clean.sched->RunUntilExit(ok);
  EXPECT_EQ(read_back, "cached") << "no false positive on the benign path";
}

TEST(StingTest, StickyBitStopsThePlantAndTheFinding) {
  // The victim's file is root-owned in sticky /tmp and exists *before* the
  // adversary acts (created here in the factory): the adversary can neither
  // unlink it nor squat its name, so STING must report the surface as not
  // exploitable.
  auto factory = [] {
    StingWorld w = MakeWorld();
    w.kernel->MkFileAt("/tmp/rootd.cache", "cached", 0644, 0, 0, "tmp_t");
    return w;
  };
  auto workload = [](StingWorld& world) {
    Pid pid = world.sched->Spawn({.name = "rootd", .exe = sim::kBinTrue}, [](Proc& p) {
      sim::UserFrame site(p, sim::kBinTrue, 0x9999);
      int64_t fd = p.Open("/tmp/rootd.cache", sim::kORdOnly);
      if (fd >= 0) {
        p.Close(static_cast<int>(fd));
      }
    });
    world.sched->RunUntilExit(pid);
  };
  Sting sting(factory, workload);
  auto findings = sting.TestCandidates(sting.Monitor());
  for (const auto& f : findings) {
    if (f.candidate.path == "/tmp/rootd.cache") {
      EXPECT_FALSE(f.exploitable) << "sticky /tmp protects a root-owned file";
    }
  }
}

}  // namespace
}  // namespace pf::rulegen
