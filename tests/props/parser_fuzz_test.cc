// pftables parser robustness: random token soups and mutated valid rules
// must never crash the front-end — they either parse or return an error
// Status — and failed commands must never leave partial rules behind.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/rng.h"
#include "src/sim/sysimage.h"

namespace pf::core {
namespace {

const char* kFragments[] = {
    "pftables", "-t",     "filter",   "mangle",  "-I",       "-A",    "-D",
    "-F",       "-N",     "input",    "output",  "create",   "syscallbegin",
    "-s",       "-d",     "-i",       "-o",      "-p",       "--ino", "-m",
    "-j",       "DROP",   "ACCEPT",   "RETURN",  "LOG",      "STATE", "COMPARE",
    "SIGNAL_MATCH", "SYSCALL_ARGS", "INTERP", "--key", "--cmp", "--set", "--value",
    "--equal",  "--nequal", "--arg",  "--v1",    "--v2",     "--prefix", "--script",
    "C_INO",    "C_DEV",  "C_DAC_OWNER", "C_TGT_DAC_OWNER", "NR_open", "NR_sigreturn",
    "SYSHIGH",  "~SYSHIGH", "{tmp_t|etc_t}", "~{lib_t}", "tmp_t", "0x596b", "12",
    "-42",      "/bin/true", "/lib/ld-2.15.so", "/no/such", "FILE_OPEN", "LNK_FILE_READ",
    "PROCESS_SIGNAL_DELIVERY", "", "'sig'", "}{", "~{", "|", "0x",
};

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RandomTokenSoupNeverCrashes) {
  sim::Kernel kernel(1);
  sim::BuildSysImage(kernel);
  Engine* engine = InstallProcessFirewall(kernel);
  Pftables pft(engine);
  sim::SplitMix64 rng(GetParam());

  for (int round = 0; round < 40; ++round) {
    std::string cmd;
    int tokens = static_cast<int>(rng.Range(1, 14));
    for (int t = 0; t < tokens; ++t) {
      cmd += kFragments[rng.Below(sizeof(kFragments) / sizeof(kFragments[0]))];
      cmd += " ";
    }
    size_t before = engine->ruleset().total_rules();
    Status s = pft.Exec(cmd);
    if (!s.ok()) {
      EXPECT_EQ(engine->ruleset().total_rules(), before)
          << "failed command must not leave partial rules: " << cmd;
      EXPECT_FALSE(s.message().empty());
    }
  }
  // The engine must still evaluate whatever (valid) rules accumulated.
  sim::Task task;
  task.pid = 1;
  task.cwd = kernel.vfs().root()->id();
  sim::AccessRequest req;
  req.task = &task;
  req.op = sim::Op::kFileOpen;
  auto inode = kernel.LookupNoHooks("/etc/passwd");
  req.inode = inode.get();
  req.id = inode->id();
  (void)engine->Authorize(req);
}

TEST_P(ParserFuzz, MutatedValidRulesFailCleanly) {
  sim::Kernel kernel(1);
  sim::BuildSysImage(kernel);
  Engine* engine = InstallProcessFirewall(kernel);
  Pftables pft(engine);
  sim::SplitMix64 rng(GetParam() * 31337);

  const std::string valid =
      "pftables -p /lib/ld-2.15.so -i 0x596b -s SYSHIGH -d ~{lib_t} -o FILE_OPEN -j DROP";
  for (int round = 0; round < 40; ++round) {
    std::string mutated = valid;
    int edits = static_cast<int>(rng.Range(1, 4));
    for (int e = 0; e < edits; ++e) {
      size_t at = rng.Below(mutated.size());
      switch (rng.Below(3)) {
        case 0:
          mutated[at] = static_cast<char>(rng.Range(33, 126));
          break;
        case 1:
          mutated.erase(at, 1);
          break;
        default:
          mutated.insert(at, 1, static_cast<char>(rng.Range(33, 126)));
          break;
      }
    }
    (void)pft.Exec(mutated);  // must not crash; outcome may be either
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range<uint64_t>(1, 31));

}  // namespace
}  // namespace pf::core
