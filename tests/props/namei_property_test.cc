// Pathname-resolution properties over randomly generated trees and paths:
// agreement with a string-normalizing reference model (for link-free paths),
// termination on random symlink graphs, and equivalence of resolution
// through "." / ".." decorations.

#include <gtest/gtest.h>

#include <set>

#include "src/sim/kernel.h"
#include "src/sim/rng.h"
#include "tests/testutil.h"

namespace pf::sim {
namespace {

// Reference model: lexically normalize an absolute, link-free path.
std::string Normalize(const std::string& path) {
  std::vector<std::string> stack;
  size_t i = 0;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) {
      j = path.size();
    }
    std::string comp = path.substr(i, j - i);
    if (comp == "..") {
      if (!stack.empty()) {
        stack.pop_back();
      }
    } else if (!comp.empty() && comp != ".") {
      stack.push_back(comp);
    }
    i = j + 1;
  }
  std::string out;
  for (const auto& c : stack) {
    out += "/" + c;
  }
  return out.empty() ? "/" : out;
}

class NameiProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NameiProperty, AgreesWithLexicalModelOnLinkFreeTrees) {
  SplitMix64 rng(GetParam());
  Kernel kernel(GetParam());
  Task task;
  task.pid = 5;
  task.cwd = kernel.vfs().root()->id();

  // Random directory tree, depth <= 4, recording every file's true path.
  std::vector<std::string> dirs = {""};
  std::vector<std::string> files;
  for (int d = 0; d < 12; ++d) {
    std::string parent = dirs[rng.Below(dirs.size())];
    std::string dir = parent + "/dir" + std::to_string(d);
    if (kernel.MkDirAt(dir, 0755, 0, 0, "var_t")) {
      dirs.push_back(dir);
    }
  }
  for (int f = 0; f < 16; ++f) {
    std::string parent = dirs[rng.Below(dirs.size())];
    std::string file = parent + "/file" + std::to_string(f);
    if (kernel.MkFileAt(file, "data", 0644, 0, 0, "var_t")) {
      files.push_back(file);
    }
  }
  ASSERT_FALSE(files.empty());

  // Decorate true paths with random "." and ".." detours; resolution must
  // agree with the lexical model.
  for (int round = 0; round < 24; ++round) {
    const std::string& target = files[rng.Below(files.size())];
    std::string decorated;
    size_t i = 1;
    while (i <= target.size()) {
      size_t j = target.find('/', i);
      if (j == std::string::npos) {
        j = target.size();
      }
      if (rng.Chance(0.3)) {
        decorated += "/.";
      }
      if (rng.Chance(0.2) && !dirs.empty()) {
        // Detour into a sibling directory and back out.
        const std::string& detour = dirs[rng.Below(dirs.size())];
        if (!detour.empty() && decorated.empty()) {
          decorated += detour;
          for (size_t c = 0; c < static_cast<size_t>(
                                     std::count(detour.begin(), detour.end(), '/'));
               ++c) {
            decorated += "/..";
          }
        }
      }
      decorated += "/" + target.substr(i, j - i);
      i = j + 1;
    }
    Nameidata nd;
    int64_t rv = kernel.PathWalk(task, decorated, kFollowFinal, &nd);
    ASSERT_EQ(rv, 0) << decorated;
    EXPECT_EQ(kernel.vfs().PathOf(nd.inode->id()), Normalize(decorated))
        << "decorated: " << decorated;
  }
}

TEST_P(NameiProperty, RandomSymlinkGraphsTerminate) {
  SplitMix64 rng(GetParam() ^ 0xabcdef);
  Kernel kernel(GetParam());
  Task task;
  task.pid = 5;
  task.cwd = kernel.vfs().root()->id();

  kernel.MkDirAt("/maze", 0755, 0, 0, "var_t");
  kernel.MkFileAt("/maze/exit", "out", 0644, 0, 0, "var_t");
  // Random links pointing at each other, at the exit, at garbage.
  std::vector<std::string> names;
  for (int i = 0; i < 12; ++i) {
    names.push_back("/maze/l" + std::to_string(i));
  }
  for (int i = 0; i < 12; ++i) {
    std::string target;
    switch (rng.Below(4)) {
      case 0: target = names[rng.Below(names.size())]; break;
      case 1: target = "/maze/exit"; break;
      case 2: target = "/maze/missing" + std::to_string(rng.Below(4)); break;
      default: target = "l" + std::to_string(rng.Below(12)); break;  // relative
    }
    kernel.MkSymlinkAt(names[static_cast<size_t>(i)], target, 0, 0, "var_t");
  }
  for (const std::string& name : names) {
    Nameidata nd;
    int64_t rv = kernel.PathWalk(task, name, kFollowFinal, &nd);
    // Must terminate with success, ENOENT, or ELOOP — nothing else.
    EXPECT_TRUE(rv == 0 || rv == SysError(Err::kNoEnt) || rv == SysError(Err::kLoop))
        << name << " -> " << rv;
    if (rv == 0) {
      EXPECT_FALSE(nd.inode->IsSymlink()) << "followed resolution must not end on a link";
    }
  }
}

TEST_P(NameiProperty, HookCountMatchesComponentCount) {
  // Every directory lookup fires exactly one DIR_SEARCH authorization; the
  // count is what the per-component PF rules rely on.
  Kernel kernel(GetParam());
  Task task;
  task.pid = 5;
  task.cwd = kernel.vfs().root()->id();
  kernel.MkDirAt("/a", 0755, 0, 0, "var_t");
  kernel.MkDirAt("/a/b", 0755, 0, 0, "var_t");
  kernel.MkDirAt("/a/b/c", 0755, 0, 0, "var_t");
  kernel.MkFileAt("/a/b/c/f", "", 0644, 0, 0, "var_t");

  class Counter : public SecurityModule {
   public:
    std::string_view ModuleName() const override { return "counter"; }
    int64_t Authorize(AccessRequest& req) override {
      if (req.op == Op::kDirSearch) {
        ++dir_searches;
      }
      return 0;
    }
    int dir_searches = 0;
  };
  auto counter = std::make_unique<Counter>();
  Counter* raw = counter.get();
  kernel.AddModule(std::move(counter));

  Nameidata nd;
  ASSERT_EQ(kernel.PathWalk(task, "/a/b/c/f", kFollowFinal, &nd), 0);
  EXPECT_EQ(raw->dir_searches, 4) << "/, a, b, c";
}

INSTANTIATE_TEST_SUITE_P(Seeds, NameiProperty, ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace pf::sim
