// TOCTTOU interleaving property sweep.
//
// The paper's claim (via Cai et al.) is that system-only defenses without
// process context are unsound, while the Process Firewall's stateful
// check/use invariant holds for *every* interleaving. We sweep the
// adversary's preemption point over every system call position in the
// victim's check-use window and assert:
//
//   * without rules, some preemption point yields the attack (the window
//     is real), and
//   * with template-T2 rules, NO preemption point lets the victim use the
//     swapped resource, and non-racing runs are never disturbed (no false
//     positives).

#include <gtest/gtest.h>

#include "src/apps/entrypoints.h"
#include "src/apps/programs.h"
#include "src/apps/rule_library.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf {
namespace {

using sim::Pid;
using sim::Proc;

enum class Outcome { kReadSwapped, kReadOriginal, kDenied, kDetected };

class TocttouSweep : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

// The victim: lstat (check), a few unrelated syscalls (a realistic window),
// then open+read (use).
Outcome RunVictim(uint64_t preempt_after, bool protect) {
  sim::Kernel kernel(0x7e57 + preempt_after);
  sim::BuildSysImage(kernel);
  apps::InstallPrograms(kernel);
  core::Engine* engine = core::InstallProcessFirewall(kernel);
  core::Pftables pft(engine);
  if (protect) {
    auto rules = apps::RuleLibrary::TemplateT2(sim::kBinTrue, apps::kSafeOpenCheck,
                                               apps::kSafeOpenUse, "FILE_GETATTR",
                                               "FILE_OPEN", "sweep");
    if (!pft.ExecAll(rules).ok()) {
      ADD_FAILURE() << "rule install failed";
    }
  } else {
    engine->config().enabled = false;
  }
  kernel.MkFileAt("/tmp/target", "ORIGINAL", 0666, sim::kMalloryUid, sim::kMalloryUid,
                  "tmp_t");
  sim::Scheduler sched(kernel);

  Outcome outcome = Outcome::kDetected;
  Pid victim = sched.Spawn({.name = "victim", .exe = sim::kBinTrue}, [&](Proc& p) {
    sim::StatBuf st;
    {
      sim::UserFrame check(p, sim::kBinTrue, apps::kSafeOpenCheck);
      if (p.Lstat("/tmp/target", &st) != 0 || st.IsSymlink()) {
        outcome = Outcome::kDetected;
        p.Exit(0);
      }
    }
    // Unrelated work widening the race window.
    p.Null();
    p.Getpid();
    sim::StatBuf other;
    p.Stat("/etc/passwd", &other);
    int64_t fd;
    {
      sim::UserFrame use(p, sim::kBinTrue, apps::kSafeOpenUse);
      fd = p.Open("/tmp/target", sim::kORdOnly);
    }
    if (fd < 0) {
      outcome = Outcome::kDenied;
      p.Exit(0);
    }
    std::string data;
    p.Read(static_cast<int>(fd), &data, 4096);
    outcome = data.find("root:") != std::string::npos ? Outcome::kReadSwapped
              : data == "ORIGINAL"                    ? Outcome::kReadOriginal
                                                      : Outcome::kDetected;
  });

  // Adversary swap, scheduled after exactly `preempt_after` victim syscalls.
  bool victim_still_running = preempt_after == 0
                                  ? true
                                  : sched.StepSyscalls(victim, preempt_after);
  if (victim_still_running) {
    sim::SpawnOpts mopts;
    mopts.name = "mallory";
    mopts.cred.uid = mopts.cred.euid = sim::kMalloryUid;
    mopts.cred.gid = mopts.cred.egid = sim::kMalloryUid;
    mopts.cred.sid = kernel.labels().Intern("user_t");
    Pid mallory = sched.Spawn(mopts, [](Proc& p) {
      p.Unlink("/tmp/target");
      p.Symlink("/etc/passwd", "/tmp/target");
    });
    sched.RunUntilExit(mallory);
  }
  sched.RunUntilExit(victim);
  return outcome;
}

TEST_P(TocttouSweep, InvariantHoldsAtEveryPreemptionPoint) {
  auto [preempt_after, protect] = GetParam();
  Outcome outcome = RunVictim(preempt_after, protect);
  if (protect) {
    EXPECT_NE(outcome, Outcome::kReadSwapped)
        << "preemption point " << preempt_after
        << ": the victim used a swapped resource despite T2 rules";
  }
  // Whether protected or not, a run must never produce garbage.
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(AllPreemptionPoints, TocttouSweep,
                         ::testing::Combine(::testing::Range<uint64_t>(0, 9),
                                            ::testing::Bool()),
                         [](const auto& info) {
                           return "after" +
                                  std::to_string(std::get<0>(info.param)) +
                                  (std::get<1>(info.param) ? "_protected"
                                                           : "_vulnerable");
                         });

TEST(TocttouSweepSummary, WindowExistsWithoutRulesAndClosesWithThem) {
  int vulnerable_hits = 0;
  int protected_hits = 0;
  int protected_denials = 0;
  for (uint64_t k = 0; k < 9; ++k) {
    if (RunVictim(k, /*protect=*/false) == Outcome::kReadSwapped) {
      ++vulnerable_hits;
    }
    Outcome prot = RunVictim(k, /*protect=*/true);
    if (prot == Outcome::kReadSwapped) {
      ++protected_hits;
    }
    if (prot == Outcome::kDenied) {
      ++protected_denials;
    }
  }
  EXPECT_GT(vulnerable_hits, 0) << "the race window must be real";
  EXPECT_EQ(protected_hits, 0);
  EXPECT_EQ(protected_denials, vulnerable_hits)
      << "every exploitable interleaving must turn into a denial";

  // No false positives: a run without any adversary must succeed under the
  // same rules.
  sim::Kernel kernel(1);
  sim::BuildSysImage(kernel);
  apps::InstallPrograms(kernel);
  core::Engine* engine = core::InstallProcessFirewall(kernel);
  core::Pftables pft(engine);
  ASSERT_TRUE(pft.ExecAll(apps::RuleLibrary::TemplateT2(
                              sim::kBinTrue, apps::kSafeOpenCheck, apps::kSafeOpenUse,
                              "FILE_GETATTR", "FILE_OPEN", "sweep"))
                  .ok());
  kernel.MkFileAt("/tmp/calm", "CALM", 0666, 0, 0, "tmp_t");
  sim::Scheduler sched(kernel);
  std::string read_back;
  Pid pid = sched.Spawn({.name = "calm", .exe = sim::kBinTrue}, [&](Proc& p) {
    sim::StatBuf st;
    {
      sim::UserFrame check(p, sim::kBinTrue, apps::kSafeOpenCheck);
      ASSERT_EQ(p.Lstat("/tmp/calm", &st), 0);
    }
    sim::UserFrame use(p, sim::kBinTrue, apps::kSafeOpenUse);
    int64_t fd = p.Open("/tmp/calm", sim::kORdOnly);
    ASSERT_GE(fd, 0);
    p.Read(static_cast<int>(fd), &read_back, 64);
  });
  sched.RunUntilExit(pid);
  EXPECT_EQ(read_back, "CALM");
}

}  // namespace
}  // namespace pf
