// Adversarial-robustness fuzzing of the kernel-side unwinders (paper §4.4):
// a malicious process may write anything into its user memory. For hundreds
// of seeded random corruptions, the unwinders must (a) never read outside
// the user region (enforced by CopyFromUser, crash = test failure),
// (b) terminate within the frame limits, and (c) never fabricate frames
// with PCs outside mapped images.

#include <gtest/gtest.h>

#include "src/core/unwind.h"
#include "src/sim/kernel.h"
#include "src/sim/rng.h"
#include "src/sim/sysimage.h"

namespace pf::core {
namespace {

class UnwindFuzz : public ::testing::TestWithParam<uint64_t> {
 protected:
  UnwindFuzz() : kernel_(0xfacade) { sim::BuildSysImage(kernel_); }

  // Builds a task with a plausible stack, then corrupts it.
  sim::Task MakeTask(sim::SplitMix64& rng) {
    sim::Task task;
    task.pid = 9;
    task.exe = sim::kBinTrue;
    task.mm.Reset(kernel_.AslrStackBase());
    kernel_.MapImage(task, kernel_.LookupNoHooks(sim::kBinTrue), sim::kBinTrue);
    const sim::Mapping* map = task.mm.FindMappingByPath(sim::kBinTrue);
    int frames = static_cast<int>(rng.Range(1, 12));
    for (int i = 0; i < frames; ++i) {
      task.mm.PushFrame(map->base + rng.Range(0x10, 0x3fff00), rng.Range(0, 64),
                        rng.Chance(0.3));
    }
    return task;
  }

  sim::Kernel kernel_;
};

TEST_P(UnwindFuzz, RandomStackCorruptionIsContained) {
  sim::SplitMix64 rng(GetParam());
  sim::Task task = MakeTask(rng);
  // Corrupt a handful of random user-memory words, possibly including the
  // FP register itself.
  int corruptions = static_cast<int>(rng.Range(1, 12));
  for (int i = 0; i < corruptions; ++i) {
    sim::Addr at = task.mm.region_base() + (rng.Below(sim::kUserRegionSize - 8) & ~7ULL);
    task.mm.WriteU64(at, rng.Next());
  }
  if (rng.Chance(0.3)) {
    task.mm.set_fp(rng.Next());
  }
  UnwindResult res = UnwindUserStack(task);
  EXPECT_LE(res.frames.size(), static_cast<size_t>(kMaxUnwindFrames));
  for (const BinFrame& f : res.frames) {
    EXPECT_NE(task.mm.FindMapping(f.pc), nullptr)
        << "unwinder fabricated a PC outside every image";
  }
}

TEST_P(UnwindFuzz, RandomInterpListCorruptionIsContained) {
  sim::SplitMix64 rng(GetParam() ^ 0x1234);
  sim::Task task = MakeTask(rng);
  // Build a random interpreter list, then corrupt node links.
  sim::Addr head = sim::kNullAddr;
  int nodes = static_cast<int>(rng.Range(1, 20));
  for (int i = 0; i < nodes; ++i) {
    sim::Addr node = task.mm.ArenaAlloc(24);
    if (node == sim::kNullAddr) {
      break;
    }
    task.mm.WriteU64(node, head);
    uint32_t vals[4] = {static_cast<uint32_t>(rng.Next()),
                        static_cast<uint32_t>(rng.Next()),
                        static_cast<uint32_t>(rng.Below(4)), 0};
    task.mm.CopyToUser(node + 8, vals, 16);
    head = node;
  }
  task.mm.set_interp_head(head);
  for (int i = 0; i < 4; ++i) {
    sim::Addr at = task.mm.region_base() + (rng.Below(sim::kArenaSize) & ~7ULL);
    task.mm.WriteU64(at, rng.Next());
  }
  if (rng.Chance(0.25)) {
    task.mm.set_interp_head(rng.Next());
  }
  InterpUnwindResult res = UnwindInterpStack(task);
  EXPECT_LE(res.frames.size(), static_cast<size_t>(kMaxInterpFrames));
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnwindFuzz, ::testing::Range<uint64_t>(1, 121));

}  // namespace
}  // namespace pf::core
