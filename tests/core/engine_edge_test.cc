// Engine edge cases: chain-jump loops and depth limits, output/create chain
// routing, mid-resolution denials, INTERP matches in rules, statistics, and
// behavior with MAC enforcing in front of the PF.

#include <gtest/gtest.h>

#include "src/apps/interp.h"
#include "src/apps/programs.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/mac_module.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::core {
namespace {

using sim::Pid;
using sim::Proc;

class EngineEdgeTest : public pf::testing::SimTest {
 protected:
  EngineEdgeTest() : engine_(InstallProcessFirewall(kernel())), pft_(engine_) {
    apps::InstallPrograms(kernel());
  }

  int Run(std::function<void(Proc&)> body) {
    Pid pid = sched().Spawn({.name = "edge", .exe = sim::kBinTrue}, std::move(body));
    return sched().RunUntilExit(pid);
  }

  Engine* engine_;
  Pftables pft_;
};

TEST_F(EngineEdgeTest, SelfJumpLoopIsDepthLimited) {
  ASSERT_TRUE(pft_.Exec("pftables -N loop").ok());
  ASSERT_TRUE(pft_.Exec("pftables -A loop -o FILE_OPEN -j loop").ok());
  ASSERT_TRUE(pft_.Exec("pftables -I input -o FILE_OPEN -j loop").ok());
  Run([](Proc& p) {
    // Must terminate and fall through to the default allow.
    EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0);
  });
}

TEST_F(EngineEdgeTest, MutualJumpLoopIsDepthLimited) {
  ASSERT_TRUE(pft_.Exec("pftables -N ping").ok());
  ASSERT_TRUE(pft_.Exec("pftables -N pong").ok());
  ASSERT_TRUE(pft_.Exec("pftables -A ping -j pong").ok());
  ASSERT_TRUE(pft_.Exec("pftables -A pong -j ping").ok());
  ASSERT_TRUE(pft_.Exec("pftables -I input -j ping").ok());
  Run([](Proc& p) { EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0); });
}

TEST_F(EngineEdgeTest, OutputChainSeesWritesNotReads) {
  ASSERT_TRUE(pft_.Exec("pftables -I output -o FILE_WRITE -d tmp_t -j DROP").ok());
  kernel().MkFileAt("/tmp/w", "x", 0666, 0, 0, "tmp_t");
  Run([](Proc& p) {
    int fd = static_cast<int>(p.Open("/tmp/w", sim::kORdWr));
    ASSERT_GE(fd, 0) << "open (a read-side op) is not output-mediated";
    std::string buf;
    EXPECT_GE(p.Read(fd, &buf, 1), 0);
    EXPECT_EQ(p.Write(fd, "y"), sim::SysError(sim::Err::kAcces));
  });
}

TEST_F(EngineEdgeTest, CreateChainMediatesCreationOnly) {
  ASSERT_TRUE(pft_.Exec("pftables -I create -o DIR_ADD_NAME -d tmp_t -j DROP").ok());
  Run([](Proc& p) {
    EXPECT_EQ(p.Open("/tmp/new", sim::kOWrOnly | sim::kOCreat),
              sim::SysError(sim::Err::kAcces));
    EXPECT_EQ(p.Mkdir("/tmp/newdir", 0755), sim::SysError(sim::Err::kAcces));
    EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0);
  });
}

TEST_F(EngineEdgeTest, DenialDuringResolutionAbortsTheWalk) {
  ASSERT_TRUE(pft_.Exec("pftables -o DIR_SEARCH -d httpd_sys_content_t -j DROP").ok());
  Run([](Proc& p) {
    EXPECT_EQ(p.Open("/var/www/index.html", sim::kORdOnly),
              sim::SysError(sim::Err::kAcces))
        << "searching the content dir itself is denied";
    EXPECT_GE(p.Open("/var/log", sim::kORdOnly), 0);
  });
}

TEST_F(EngineEdgeTest, InterpMatchRestrictsByScript) {
  // Drop opens performed while the gCalendar component is the innermost
  // interpreter frame — a script-granular rule the INTERP extension allows.
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -m INTERP --script gcalendar.php "
                        "--lang php -j DROP")
                  .ok());
  Pid pid = sched().Spawn({.name = "php5", .exe = sim::kPhp}, [](Proc& p) {
    apps::PhpInterp php(p, "/var/www/app/index.php");
    {
      sim::InterpFrame gcal(p, sim::InterpLang::kPhp, "/var/www/app/gcalendar.php", 8);
      EXPECT_EQ(p.Open("/etc/passwd", sim::kORdOnly), sim::SysError(sim::Err::kAcces));
    }
    EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0)
        << "outside the component the open is fine";
  });
  sched().RunUntilExit(pid);
}

TEST_F(EngineEdgeTest, MacDenialPreemptsTheFirewall) {
  // With MAC enforcing in front, a MAC-denied access never reaches the PF
  // (the PF sees only authorized operations, paper Figure 2 step 1->2).
  sim::Kernel k(3);
  sim::BuildSysImage(k);
  k.AddModule(std::make_unique<sim::MacModule>(&k.policy()));
  Engine* engine = InstallProcessFirewall(k);
  Pftables pft(engine);
  ASSERT_TRUE(pft.Exec("pftables -o FILE_OPEN -d etc_t -j DROP").ok());
  k.policy().set_enforcing(true);
  k.policy().Allow("trusted_t", "etc_t", sim::kMacRead);
  // A domain with no MAC rule at all: denied by MAC before the PF runs.
  sim::Scheduler sched(k);
  uint64_t pf_invocations_before = engine->stats().invocations;
  sim::SpawnOpts opts;
  opts.name = "nobody";
  opts.cred.uid = opts.cred.euid = 4242;  // non-root so DAC/MAC apply
  opts.cred.sid = k.labels().Intern("isolated_t");
  Pid pid = sched.Spawn(opts, [](Proc& p) {
    EXPECT_EQ(p.Open("/etc/passwd", sim::kORdOnly), sim::SysError(sim::Err::kAcces));
  });
  sched.RunUntilExit(pid);
  // The PF never saw the FILE_OPEN (only syscallbegin/dir hooks at most).
  EXPECT_GE(engine->stats().invocations, pf_invocations_before);
  EXPECT_EQ(engine->stats().drops, 0u);
}

TEST_F(EngineEdgeTest, StatsAccounting) {
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -d shadow_t -j DROP").ok());
  engine_->ResetStats();
  Run([](Proc& p) {
    p.Open("/etc/shadow", sim::kORdOnly);
    p.Open("/etc/passwd", sim::kORdOnly);
  });
  EXPECT_EQ(engine_->stats().drops, 1u);
  EXPECT_GT(engine_->stats().invocations, 2u) << "per-component hooks included";
  EXPECT_GT(engine_->stats().rules_evaluated, 0u);
}

TEST_F(EngineEdgeTest, SignalChainOnlySeesDeliveries) {
  ASSERT_TRUE(pft_.ExecAll({
                      "pftables -N sigchain",
                      "pftables -I input -o PROCESS_SIGNAL_DELIVERY -j sigchain",
                      "pftables -A sigchain -j DROP",
                  })
                  .ok());
  int handled = 0;
  Pid victim = sched().Spawn({.name = "victim", .exe = sim::kBinTrue}, [&](Proc& p) {
    p.Sigaction(sim::kSigUsr1, [&](sim::SigNum) { ++handled; });
    EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0) << "file ops unaffected";
    p.Checkpoint("armed");
    p.Null();
  });
  ASSERT_TRUE(sched().RunUntilLabel(victim, "armed"));
  Pid killer = sched().Spawn({}, [&](Proc& p) { p.Kill(victim, sim::kSigUsr1); });
  sched().RunUntilExit(killer);
  sched().RunUntilExit(victim);
  EXPECT_EQ(handled, 0) << "every delivery is dropped by the chain";
}

TEST_F(EngineEdgeTest, RuleOnMangleTableIsInertForNow) {
  ASSERT_TRUE(pft_.Exec("pftables -t mangle -o FILE_OPEN -d etc_t -j DROP").ok());
  Run([](Proc& p) {
    EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0)
        << "only the filter table carries verdicts";
  });
}

TEST_F(EngineEdgeTest, ForkChildDoesNotInheritUnwindCaches) {
  // An entrypoint rule forces a stack unwind (and cache fill) on open.
  ASSERT_TRUE(pft_.Exec("pftables -p /bin/true -i 0x100 -o FILE_OPEN -j DROP").ok());
  Pid pid = sched().Spawn({.name = "edge", .exe = sim::kBinTrue}, [&](Proc& p) {
    p.Open("/etc/passwd", sim::kORdOnly);
    PfTaskState& parent = engine_->TaskState(p.task());
    parent.dict["k"] = 7;
    if (parent.stack.load() == nullptr) {
      p.Exit(3);  // precondition failed: the open did not fill the cache
      return;
    }
    int64_t child = p.Fork([&](Proc& c) {
      PfTaskState& st = engine_->TaskState(c.task());
      bool fresh = st.stack.load() == nullptr && st.interp.load() == nullptr;
      bool inherited = st.dict.count("k") == 1 && st.dict["k"] == 7;
      c.Exit(fresh ? (inherited ? 0 : 2) : 1);
    });
    int status = -1;
    p.Waitpid(static_cast<Pid>(child), &status);
    p.Exit(status);
  });
  EXPECT_EQ(sched().RunUntilExit(pid), 0)
      << "1 = stale cache inherited, 2 = dict lost, 3 = cache never filled";
}

TEST_F(EngineEdgeTest, ExecHookDropsContextCaches) {
  // Unit-level check of the OnTaskExec contract: the old image's unwind
  // snapshots must not survive into the new image.
  ASSERT_TRUE(pft_.Exec("pftables -p /bin/true -i 0x200 -o FILE_OPEN -j DROP").ok());
  sim::Task task;
  task.pid = 4141;
  task.comm = "raw";
  task.exe = sim::kBinTrue;
  task.cred.sid = kernel().labels().Intern("staff_t");
  task.cwd = kernel().vfs().root()->id();
  task.mm.Reset(kernel().AslrStackBase());
  kernel().MapImage(task, kernel().LookupNoHooks(sim::kBinTrue), sim::kBinTrue);
  const sim::Mapping* map = task.mm.FindMappingByPath(sim::kBinTrue);
  ASSERT_NE(map, nullptr);
  task.mm.PushFrame(map->base + 0x200, 16, false);

  auto inode = kernel().LookupNoHooks("/etc/passwd");
  sim::AccessRequest req;
  req.task = &task;
  req.op = sim::Op::kFileOpen;
  req.inode = inode.get();
  req.id = inode->id();
  req.syscall_nr = sim::SyscallNr::kOpen;
  ++task.syscall_count;
  EXPECT_EQ(engine_->Authorize(req), sim::SysError(sim::Err::kAcces));

  PfTaskState& state = engine_->TaskState(task);
  ASSERT_NE(state.stack.load(), nullptr) << "the entrypoint rule must fill the cache";
  engine_->OnTaskExec(task);
  EXPECT_EQ(state.stack.load(), nullptr);
  EXPECT_EQ(state.interp.load(), nullptr);
}

TEST_F(EngineEdgeTest, KernelNotifiesModulesOnExecve) {
  struct ExecProbe : sim::SecurityModule {
    int execs = 0;
    std::string_view ModuleName() const override { return "probe"; }
    int64_t Authorize(sim::AccessRequest&) override { return 0; }
    void OnTaskExec(sim::Task&) override { ++execs; }
  };
  auto probe = std::make_unique<ExecProbe>();
  ExecProbe* probe_raw = probe.get();
  kernel().AddModule(std::move(probe));
  Pid pid = sched().Spawn({.name = "edge", .exe = sim::kBinSh}, [](Proc& p) {
    p.Execve(sim::kBinTrue, {sim::kBinTrue}, {});
  });
  sched().RunUntilExit(pid);
  EXPECT_EQ(probe_raw->execs, 1) << "image replacement must fire OnTaskExec once";
}

}  // namespace
}  // namespace pf::core
