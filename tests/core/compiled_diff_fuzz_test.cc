// Differential fuzzing of the compiled evaluator against the legacy tree
// walker: seeded random rule bases (including extension modules that lower
// through the native escape ops) replayed over seeded random operation
// streams, with EngineConfig::compiled_eval as the only difference between
// the two runs. Everything observable must be bit-identical — the verdict
// sequence, per-task STATE dictionaries, LOG records, rule counters (via the
// List() rendering), and the engine statistics, including the context-fetch
// counters that would expose a divergent EnsureContext order.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/apps/programs.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"

namespace pf::core {
namespace {

constexpr int kOps = 2000;
constexpr int kTasks = 3;
constexpr int kRandomRules = 30;

// --- extension modules (exercise the kMatchNative / kTargetNative escapes) --

// Matches objects with an odd inode number.
class OddInoMatch : public MatchModule {
 public:
  std::string_view Name() const override { return "ODD_INO"; }
  CtxMask Needs() const override { return CtxBit(Ctx::kObject); }
  bool Matches(Packet& pkt, Engine&) const override {
    return pkt.has_object && pkt.object_id.ino % 2 == 1;
  }
  std::string Render() const override { return "ODD_INO"; }
};

// Counts fires and continues.
class CountTarget : public TargetModule {
 public:
  explicit CountTarget(uint64_t* counter) : counter_(counter) {}
  std::string_view Name() const override { return "COUNT"; }
  TargetKind Fire(Packet&, Engine&) const override {
    ++*counter_;
    return TargetKind::kContinue;
  }
  std::string Render() const override { return "COUNT"; }

 private:
  uint64_t* counter_;
};

// --- random rule bases ------------------------------------------------------

// Builds a random but always-installable rule base: a user chain fed from
// input, rules spread over every builtin chain, every builtin module and
// target, entrypoint-indexed rules (some matching the workload tasks' real
// frames in /bin/true, some chaff), and the two extension modules above.
std::vector<std::string> RandomRules(std::mt19937_64& rng) {
  const char* kLabels[] = {"etc_t", "tmp_t", "shadow_t", "bin_t", "user_t"};
  const char* kOpsPool[] = {"FILE_OPEN", "SOCKET_BIND", "PROCESS_SIGNAL_DELIVERY",
                            "FILE_GETATTR"};
  const char* kChains[] = {"input", "input", "input", "output", "create",
                           "syscallbegin", "fz"};
  const char* kKeys[] = {"k0", "k1", "k2"};
  const char* kBins[] = {"/bin/true", "/usr/bin/apache2", "/bin/sh"};

  std::vector<std::string> rules = {"pftables -N fz",
                                    "pftables -A input -s staff_t -j fz"};
  for (int i = 0; i < kRandomRules; ++i) {
    std::string r = "pftables -A ";
    r += kChains[rng() % std::size(kChains)];
    if (rng() % 2 == 0) {
      r += std::string(" -o ") + kOpsPool[rng() % std::size(kOpsPool)];
    }
    switch (rng() % 4) {
      case 0:
        r += std::string(" -s ") + kLabels[rng() % std::size(kLabels)];
        break;
      case 1:
        r += std::string(" -s ~") + kLabels[rng() % std::size(kLabels)];
        break;
      case 2:
        r += std::string(" -s {") + kLabels[rng() % std::size(kLabels)] + "|" +
             kLabels[rng() % std::size(kLabels)] + "}";
        break;
      default:
        break;  // wildcard subject
    }
    if (rng() % 3 == 0) {
      r += std::string(" -d ") + kLabels[rng() % std::size(kLabels)];
    }
    if (rng() % 4 == 0) {
      char ept[64];
      std::snprintf(ept, sizeof(ept), " -p %s -i 0x%x",
                    kBins[rng() % std::size(kBins)],
                    rng() % 3 == 0 ? 0x100 * (1 + static_cast<int>(rng() % 3))
                                   : 0x8000 + static_cast<int>(rng() % 8) * 0x40);
      r += ept;
    }
    switch (rng() % 6) {
      case 0:
        r += std::string(" -m STATE --key ") + kKeys[rng() % std::size(kKeys)];
        break;
      case 1:
        r += std::string(" -m STATE --key ") + kKeys[rng() % std::size(kKeys)] +
             " --cmp " + std::to_string(rng() % 3) + (rng() % 2 ? " --nequal" : "");
        break;
      case 2:
        r += " -m SYSCALL_ARGS --arg 0 --equal " + std::to_string(rng() % 8);
        break;
      case 3:
        r += " -m COMPARE --v1 C_UID --v2 " + std::to_string(rng() % 2) +
             (rng() % 2 ? " --nequal" : "");
        break;
      case 4:
        r += " -m ODD_INO";
        break;
      default:
        break;  // no module
    }
    switch (rng() % 8) {
      case 0:
      case 1:
        r += " -j DROP";
        break;
      case 2:
        r += " -j ACCEPT";
        break;
      case 3:
        r += " -j RETURN";
        break;
      case 4:
        r += std::string(" -j STATE --set --key ") + kKeys[rng() % std::size(kKeys)] +
             " --value " + std::to_string(rng() % 3);
        break;
      case 5:
        r += std::string(" -j STATE --unset --key ") + kKeys[rng() % std::size(kKeys)];
        break;
      case 6:
        r += " -j LOG --prefix fz" + std::to_string(rng() % 3);
        break;
      default:
        r += " -j COUNT";
        break;
    }
    rules.push_back(std::move(r));
  }
  return rules;
}

// --- workload ----------------------------------------------------------------

struct FuzzRun {
  std::vector<int64_t> verdicts;
  std::vector<std::map<std::string, int64_t>> dicts;
  std::string log_lines;
  std::string listing;
  uint64_t count_fires = 0;
  EngineStats stats;
};

// Builds a kernel (fixed sim seed: both runs see identical inode numbers and
// labels), installs the rule base, and replays the seeded operation stream.
FuzzRun Replay(uint64_t seed, bool compiled, bool ept) {
  EngineConfig cfg;
  cfg.compiled_eval = compiled;
  cfg.ept_chains = ept;
  cfg.verdict_cache = false;  // the cache would hide traversal differences

  FuzzRun out;
  sim::Kernel kernel{0x5eed};
  sim::BuildSysImage(kernel);
  apps::InstallPrograms(kernel);
  Engine* engine = InstallProcessFirewall(kernel, cfg);
  Pftables pft(engine);
  pft.RegisterMatch("ODD_INO", [](const std::vector<std::string>& opts,
                                  std::unique_ptr<MatchModule>* m) {
    if (!opts.empty()) {
      return Status::Error("ODD_INO takes no options");
    }
    *m = std::make_unique<OddInoMatch>();
    return Status::Ok();
  });
  pft.RegisterTarget("COUNT", [&out](const std::vector<std::string>& opts,
                                     std::unique_ptr<TargetModule>* t) {
    if (!opts.empty()) {
      return Status::Error("COUNT takes no options");
    }
    *t = std::make_unique<CountTarget>(&out.count_fires);
    return Status::Ok();
  });

  std::mt19937_64 rule_rng(seed);
  Status s = pft.ExecAll(RandomRules(rule_rng));
  if (!s.ok()) {
    ADD_FAILURE() << "rule install failed: " << s.message();
    return out;
  }

  kernel.MkFileAt("/tmp/t", "x", 0666, 0, 0, "tmp_t");
  std::vector<std::unique_ptr<sim::Task>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    auto task = std::make_unique<sim::Task>();
    task->pid = static_cast<sim::Pid>(200 + i);
    task->comm = "fuzz";
    task->exe = sim::kBinTrue;
    task->cred.sid = kernel.labels().Intern(i == 0 ? "staff_t" : "user_t");
    task->cwd = kernel.vfs().root()->id();
    task->mm.Reset(kernel.AslrStackBase());
    kernel.MapImage(*task, kernel.LookupNoHooks(sim::kBinTrue), sim::kBinTrue);
    const sim::Mapping* map = task->mm.FindMappingByPath(sim::kBinTrue);
    for (int f = 0; f <= i; ++f) {
      task->mm.PushFrame(map->base + 0x100 * static_cast<uint64_t>(f + 1), 16, false);
    }
    tasks.push_back(std::move(task));
  }

  std::vector<std::shared_ptr<sim::Inode>> pins;
  const char* kPaths[] = {"/etc/passwd", "/etc/shadow", "/tmp/t", "/bin/true"};
  std::mt19937_64 rng(seed ^ 0x0bdeadbeefULL);
  out.verdicts.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    sim::Task& task = *tasks[rng() % kTasks];
    if (rng() % 4 != 0) {
      ++task.syscall_count;
    }
    sim::AccessRequest req;
    req.task = &task;
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2: {
        auto inode = kernel.LookupNoHooks(kPaths[rng() % std::size(kPaths)]);
        req.op = sim::Op::kFileOpen;
        req.inode = inode.get();
        req.id = inode->id();
        req.syscall_nr = sim::SyscallNr::kOpen;
        pins.push_back(std::move(inode));
        break;
      }
      case 3: {
        auto inode = kernel.LookupNoHooks(kPaths[rng() % std::size(kPaths)]);
        req.op = sim::Op::kFileGetattr;
        req.inode = inode.get();
        req.id = inode->id();
        req.syscall_nr = sim::SyscallNr::kStat;
        pins.push_back(std::move(inode));
        break;
      }
      case 4:
        req.op = sim::Op::kSocketBind;
        req.name = "/tmp/sock";
        req.syscall_nr = sim::SyscallNr::kBind;
        break;
      case 5:
        req.op = sim::Op::kSignalDeliver;
        req.sig = sim::kSigUsr1;
        req.sig_sender = 1;
        req.syscall_nr = sim::SyscallNr::kKill;
        break;
      default:
        req.op = sim::Op::kSyscallBegin;
        req.syscall_nr = static_cast<sim::SyscallNr>(rng() % 8);
        break;
    }
    out.verdicts.push_back(engine->Authorize(req));
  }

  for (auto& task : tasks) {
    out.dicts.push_back(engine->TaskState(*task).dict);
  }
  out.log_lines = engine->log().ToJsonLines();
  out.listing = pft.List();
  out.stats = engine->stats();
  return out;
}

void ExpectBitEquivalent(const FuzzRun& legacy, const FuzzRun& compiled,
                         const std::string& what) {
  ASSERT_EQ(legacy.verdicts.size(), compiled.verdicts.size()) << what;
  for (size_t i = 0; i < legacy.verdicts.size(); ++i) {
    ASSERT_EQ(compiled.verdicts[i], legacy.verdicts[i])
        << what << ": verdicts diverge at op " << i;
  }
  EXPECT_EQ(compiled.dicts, legacy.dicts) << what << ": STATE dicts diverge";
  EXPECT_EQ(compiled.log_lines, legacy.log_lines) << what << ": LOG records diverge";
  EXPECT_EQ(compiled.count_fires, legacy.count_fires)
      << what << ": native target fire counts diverge";
  EXPECT_EQ(compiled.listing, legacy.listing)
      << what << ": List() rendering (rule evals/hits counters) diverges";

  const EngineStats& a = legacy.stats;
  const EngineStats& b = compiled.stats;
  EXPECT_EQ(b.invocations, a.invocations) << what;
  EXPECT_EQ(b.drops, a.drops) << what;
  EXPECT_EQ(b.audited_drops, a.audited_drops) << what;
  EXPECT_EQ(b.rules_evaluated, a.rules_evaluated) << what << ": eval counts diverge";
  EXPECT_EQ(b.ept_chain_hits, a.ept_chain_hits) << what;
  EXPECT_EQ(b.unwinds, a.unwinds) << what;
  EXPECT_EQ(b.unwind_cache_hits, a.unwind_cache_hits) << what;
  EXPECT_EQ(b.ctx_fetches, a.ctx_fetches) << what << ": context fetch order diverges";
}

TEST(CompiledDiffFuzzTest, CompiledMatchesLegacyAcrossSeeds) {
  for (uint64_t seed : {0x11aaULL, 0x22bbULL, 0x33ccULL, 0x44ddULL}) {
    for (bool ept : {true, false}) {
      FuzzRun legacy = Replay(seed, /*compiled=*/false, ept);
      FuzzRun compiled = Replay(seed, /*compiled=*/true, ept);
      ExpectBitEquivalent(legacy, compiled,
                          "seed=" + std::to_string(seed) +
                              (ept ? " ept=on" : " ept=off"));
    }
  }
}

TEST(CompiledDiffFuzzTest, ReplayIsDeterministic) {
  FuzzRun a = Replay(0x55eeULL, /*compiled=*/true, /*ept=*/true);
  FuzzRun b = Replay(0x55eeULL, /*compiled=*/true, /*ept=*/true);
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.log_lines, b.log_lines);
  EXPECT_EQ(a.listing, b.listing);
}

}  // namespace
}  // namespace pf::core
