// Differential fuzzing of the compiled evaluators against the legacy tree
// walker: seeded random rule bases (five generator flavors, see
// fuzz_rules.h) replayed over seeded random operation streams, with the
// evaluator selection (legacy walker / portable switch loop / computed-goto
// threaded loop) as the only difference between runs. Everything observable
// must be bit-identical across all three — the verdict sequence, per-task
// STATE dictionaries, LOG records, rule counters (via the List() rendering),
// and the engine statistics, including the context-fetch counters that would
// expose a divergent EnsureContext order.
//
// A second three-way diff covers the stateful verdict-cache tier: automata
// on (STATE decisions cached under automaton-extended keys, effects replayed
// on hits) vs automata off (STATE decisions bypass and traverse every time)
// vs the uncached legacy walker. Everything a caller or auditor can observe
// — verdicts, dictionaries, LOG records, native fires, drop totals — must be
// bit-identical across the three builds, and the per-rule hit counters must
// agree between the two cached builds (stateful replay == bypass traversal).
//
// Seed control (for CI sharding and reproduction):
//   --pf_fuzz_seed=0xNNN   run exactly one seed (also env PF_FUZZ_SEED)
//   PF_FUZZ_SEEDS=N        run N consecutive seeds from the fixed base
// The default is 16 seeds, cycling through every generator flavor. On a
// mismatch the failing seed and the compiled-program disassembly
// (pftables ListCompiled, i.e. `pftables -L --compiled`) are printed.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/apps/programs.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"
#include "tests/core/fuzz_rules.h"

namespace pf::core {
namespace {

constexpr int kOps = 2000;
constexpr int kTasks = 3;

// Consecutive seeds from this base cycle through every fuzzgen::Flavor
// (flavor = seed % kFlavorCount).
constexpr uint64_t kSeedBase = 0xf002;
constexpr int kDefaultSeedCount = 16;

// Filled by main() from --pf_fuzz_seed / PF_FUZZ_SEED / PF_FUZZ_SEEDS.
std::vector<uint64_t>& SeedList() {
  static std::vector<uint64_t> seeds;
  return seeds;
}

// The three evaluator builds under diff.
enum class Mode { kLegacy, kSwitch, kThreaded };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kLegacy:
      return "legacy";
    case Mode::kSwitch:
      return "switch";
    case Mode::kThreaded:
      return "threaded";
  }
  return "?";
}

// --- workload ----------------------------------------------------------------

struct FuzzRun {
  std::vector<int64_t> verdicts;
  std::vector<std::map<std::string, int64_t>> dicts;
  std::string log_lines;
  std::string listing;
  std::string compiled_listing;  // ListCompiled() dump for failure reports
  std::vector<uint64_t> hits;    // per-rule hit counters in chain order
  uint64_t count_fires = 0;
  EngineStats stats;
};

// Builds a kernel (fixed sim seed: all runs see identical inode numbers and
// labels), installs the seed's flavor-specific rule base, and replays the
// seeded operation stream under the requested evaluator. `vcache`/`automata`
// select the stateful-tier build for the cache equivalence diff; the
// evaluator diffs keep the cache off, as it would hide traversal differences.
// `rules` overrides the seed-derived rule base (the seed still drives the
// operation stream).
FuzzRun Replay(uint64_t seed, Mode mode, bool ept, bool vcache = false,
               bool automata = true,
               const std::vector<std::string>* rules = nullptr) {
  EngineConfig cfg;
  cfg.compiled_eval = mode != Mode::kLegacy;
  cfg.threaded_eval = mode == Mode::kThreaded;
  cfg.ept_chains = ept;
  cfg.verdict_cache = vcache;
  cfg.automata = automata;

  FuzzRun out;
  sim::Kernel kernel{0x5eed};
  sim::BuildSysImage(kernel);
  apps::InstallPrograms(kernel);
  Engine* engine = InstallProcessFirewall(kernel, cfg);
  Pftables pft(engine);
  fuzzgen::RegisterFuzzModules(pft, &out.count_fires);

  std::mt19937_64 rule_rng(seed);
  Status s = pft.ExecAll(rules != nullptr
                             ? *rules
                             : fuzzgen::RandomRules(rule_rng,
                                                    fuzzgen::FlavorForSeed(seed)));
  if (!s.ok()) {
    ADD_FAILURE() << "rule install failed: " << s.message();
    return out;
  }

  kernel.MkFileAt("/tmp/t", "x", 0666, 0, 0, "tmp_t");
  std::vector<std::unique_ptr<sim::Task>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    auto task = std::make_unique<sim::Task>();
    task->pid = static_cast<sim::Pid>(200 + i);
    task->comm = "fuzz";
    task->exe = sim::kBinTrue;
    task->cred.sid = kernel.labels().Intern(i == 0 ? "staff_t" : "user_t");
    task->cwd = kernel.vfs().root()->id();
    task->mm.Reset(kernel.AslrStackBase());
    kernel.MapImage(*task, kernel.LookupNoHooks(sim::kBinTrue), sim::kBinTrue);
    const sim::Mapping* map = task->mm.FindMappingByPath(sim::kBinTrue);
    for (int f = 0; f <= i; ++f) {
      task->mm.PushFrame(map->base + 0x100 * static_cast<uint64_t>(f + 1), 16, false);
    }
    tasks.push_back(std::move(task));
  }

  std::vector<std::shared_ptr<sim::Inode>> pins;
  const char* kPaths[] = {"/etc/passwd", "/etc/shadow", "/tmp/t", "/bin/true"};
  std::mt19937_64 rng(seed ^ 0x0bdeadbeefULL);
  out.verdicts.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    sim::Task& task = *tasks[rng() % kTasks];
    if (rng() % 4 != 0) {
      ++task.syscall_count;
    }
    sim::AccessRequest req;
    req.task = &task;
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2: {
        auto inode = kernel.LookupNoHooks(kPaths[rng() % std::size(kPaths)]);
        req.op = sim::Op::kFileOpen;
        req.inode = inode.get();
        req.id = inode->id();
        req.syscall_nr = sim::SyscallNr::kOpen;
        pins.push_back(std::move(inode));
        break;
      }
      case 3: {
        auto inode = kernel.LookupNoHooks(kPaths[rng() % std::size(kPaths)]);
        req.op = sim::Op::kFileGetattr;
        req.inode = inode.get();
        req.id = inode->id();
        req.syscall_nr = sim::SyscallNr::kStat;
        pins.push_back(std::move(inode));
        break;
      }
      case 4:
        req.op = sim::Op::kSocketBind;
        req.name = "/tmp/sock";
        req.syscall_nr = sim::SyscallNr::kBind;
        break;
      case 5:
        req.op = sim::Op::kSignalDeliver;
        req.sig = sim::kSigUsr1;
        req.sig_sender = 1;
        req.syscall_nr = sim::SyscallNr::kKill;
        break;
      default:
        req.op = sim::Op::kSyscallBegin;
        req.syscall_nr = static_cast<sim::SyscallNr>(rng() % 8);
        break;
    }
    out.verdicts.push_back(engine->Authorize(req));
  }

  for (auto& task : tasks) {
    out.dicts.push_back(engine->TaskState(*task).dict);
  }
  for (const auto& [name, chain] : engine->ruleset().filter().chains()) {
    for (const auto& r : chain.rules()) {
      out.hits.push_back(r->hits.load(std::memory_order_relaxed));
    }
  }
  out.log_lines = engine->log().ToJsonLines();
  out.listing = pft.List();
  out.compiled_listing = pft.ListCompiled();
  out.stats = engine->stats();
  return out;
}

void ExpectBitEquivalent(const FuzzRun& want, const FuzzRun& got,
                         const std::string& what) {
  ASSERT_EQ(want.verdicts.size(), got.verdicts.size()) << what;
  for (size_t i = 0; i < want.verdicts.size(); ++i) {
    ASSERT_EQ(got.verdicts[i], want.verdicts[i])
        << what << ": verdicts diverge at op " << i;
  }
  EXPECT_EQ(got.dicts, want.dicts) << what << ": STATE dicts diverge";
  EXPECT_EQ(got.log_lines, want.log_lines) << what << ": LOG records diverge";
  EXPECT_EQ(got.count_fires, want.count_fires)
      << what << ": native target fire counts diverge";
  EXPECT_EQ(got.listing, want.listing)
      << what << ": List() rendering (rule evals/hits counters) diverges";
  EXPECT_EQ(got.hits, want.hits) << what << ": per-rule hit counters diverge";

  const EngineStats& a = want.stats;
  const EngineStats& b = got.stats;
  EXPECT_EQ(b.invocations, a.invocations) << what;
  EXPECT_EQ(b.drops, a.drops) << what;
  EXPECT_EQ(b.audited_drops, a.audited_drops) << what;
  EXPECT_EQ(b.rules_evaluated, a.rules_evaluated) << what << ": eval counts diverge";
  EXPECT_EQ(b.ept_chain_hits, a.ept_chain_hits) << what;
  EXPECT_EQ(b.unwinds, a.unwinds) << what;
  EXPECT_EQ(b.unwind_cache_hits, a.unwind_cache_hits) << what;
  EXPECT_EQ(b.ctx_fetches, a.ctx_fetches) << what << ": context fetch order diverges";
}

// Prints everything needed to replay a divergence offline: the exact seed,
// its flavor, and the compiled program as `pftables -L --compiled` shows it.
void DumpFailure(uint64_t seed, bool ept, const FuzzRun& compiled) {
  std::fprintf(stderr,
               "\n=== fuzz mismatch: reproduce with --pf_fuzz_seed=0x%llx "
               "(flavor %s, ept %s) ===\ncompiled program:\n%s\n",
               static_cast<unsigned long long>(seed),
               fuzzgen::FlavorName(fuzzgen::FlavorForSeed(seed)),
               ept ? "on" : "off", compiled.compiled_listing.c_str());
}

TEST(CompiledDiffFuzzTest, ThreeWayEquivalenceAcrossSeeds) {
  for (uint64_t seed : SeedList()) {
    const std::string tag =
        "seed=" + std::to_string(seed) + " flavor=" +
        fuzzgen::FlavorName(fuzzgen::FlavorForSeed(seed));
    for (bool ept : {true, false}) {
      const std::string what = tag + (ept ? " ept=on" : " ept=off");
      FuzzRun legacy = Replay(seed, Mode::kLegacy, ept);
      FuzzRun swtch = Replay(seed, Mode::kSwitch, ept);
      FuzzRun threaded = Replay(seed, Mode::kThreaded, ept);
      ExpectBitEquivalent(legacy, swtch, what + " switch-vs-legacy");
      ExpectBitEquivalent(legacy, threaded, what + " threaded-vs-legacy");
      if (::testing::Test::HasFailure()) {
        DumpFailure(seed, ept, threaded);
        return;  // first divergence wins; later seeds would bury the dump
      }
    }
  }
}

// The cached builds legitimately differ from the walker in traversal-shaped
// stats (rules_evaluated, ctx_fetches) — a cache hit skips both — so this
// narrower comparator pins only what callers and auditors can observe.
void ExpectObservablyEquivalent(const FuzzRun& want, const FuzzRun& got,
                                const std::string& what) {
  ASSERT_EQ(want.verdicts.size(), got.verdicts.size()) << what;
  for (size_t i = 0; i < want.verdicts.size(); ++i) {
    ASSERT_EQ(got.verdicts[i], want.verdicts[i])
        << what << ": verdicts diverge at op " << i;
  }
  EXPECT_EQ(got.dicts, want.dicts)
      << what << ": STATE dicts diverge (delta replay is not bit-identical)";
  EXPECT_EQ(got.log_lines, want.log_lines) << what << ": LOG records diverge";
  EXPECT_EQ(got.count_fires, want.count_fires)
      << what << ": native target fire counts diverge";
  EXPECT_EQ(got.stats.invocations, want.stats.invocations) << what;
  EXPECT_EQ(got.stats.drops, want.stats.drops)
      << what << ": drop totals diverge";
}

// Stateful-tier three-way diff over the fuzz corpus: automata-cached vs
// interpreted-STATE-cached vs uncached legacy. The fuzz flavors sprinkle LOG
// and native escapes through nearly every chain, so most decisions ride the
// bypass path in both cached builds — which is exactly what this sweep pins
// down: lowering must classify those closures identically and the bypass
// traversal must stay bit-identical to the walker.
TEST(CompiledDiffFuzzTest, AutomataCacheEquivalenceAcrossSeeds) {
  uint64_t interp_bypasses = 0;
  for (uint64_t seed : SeedList()) {
    const std::string tag =
        "seed=" + std::to_string(seed) + " flavor=" +
        fuzzgen::FlavorName(fuzzgen::FlavorForSeed(seed));
    FuzzRun legacy =
        Replay(seed, Mode::kLegacy, /*ept=*/true, /*vcache=*/false, /*automata=*/false);
    FuzzRun interp =
        Replay(seed, Mode::kThreaded, /*ept=*/true, /*vcache=*/true, /*automata=*/false);
    FuzzRun automata =
        Replay(seed, Mode::kThreaded, /*ept=*/true, /*vcache=*/true, /*automata=*/true);
    ExpectObservablyEquivalent(legacy, interp, tag + " interp-cache-vs-legacy");
    ExpectObservablyEquivalent(legacy, automata, tag + " automata-cache-vs-legacy");
    // Pure cache hits skip the traversal and its per-rule hit bumps in both
    // cached builds (long-standing cache semantics), so counters are compared
    // between the two cached builds: a stateful hit's effect replay must bump
    // exactly what the interpreted bypass traversal would have.
    EXPECT_EQ(automata.hits, interp.hits)
        << tag << ": per-rule hit counters diverge (hit replay missed a rule)";
    if (::testing::Test::HasFailure()) {
      DumpFailure(seed, /*ept=*/true, automata);
      return;
    }
    interp_bypasses += interp.stats.vcache_bypasses;
    EXPECT_EQ(interp.stats.vcache_state_hits, 0u)
        << tag << ": ablated build must not reach the stateful tier";
  }
  EXPECT_GT(interp_bypasses, 0u)
      << "no seed bypassed in the ablated build; the sweep is vacuous";
}

// The engagement leg the LOG-saturated fuzz corpus cannot provide: a clean
// STATE protocol (set / unset / compare, all literal) over the same seeded
// operation stream. The automata build must serve this workload from the
// stateful tier with zero bypasses and still be observably identical to the
// interpreted-bypass build and the uncached walker — including per-rule hit
// counters, whose only source on a stateful hit is the effect replay.
TEST(CompiledDiffFuzzTest, AutomataTierEngagesAndMatchesUncachedBuilds) {
  const std::vector<std::string> rules = {
      "pftables -o SOCKET_BIND -j STATE --set --key b --value 1",
      "pftables -o PROCESS_SIGNAL_DELIVERY -m STATE --key b --cmp 1 -j DROP",
      "pftables -o FILE_OPEN -d tmp_t -j STATE --set --key k0 --value 2",
      "pftables -o FILE_GETATTR -d etc_t -j STATE --unset --key b",
      "pftables -A syscallbegin -m STATE --key k0 --cmp 2 -j DROP",
  };
  const uint64_t seed = SeedList().empty() ? kSeedBase : SeedList().front();
  FuzzRun legacy = Replay(seed, Mode::kLegacy, /*ept=*/true, /*vcache=*/false,
                          /*automata=*/false, &rules);
  FuzzRun interp = Replay(seed, Mode::kThreaded, /*ept=*/true, /*vcache=*/true,
                          /*automata=*/false, &rules);
  FuzzRun automata = Replay(seed, Mode::kThreaded, /*ept=*/true, /*vcache=*/true,
                            /*automata=*/true, &rules);
  ExpectObservablyEquivalent(legacy, interp, "stateful interp-cache-vs-legacy");
  ExpectObservablyEquivalent(legacy, automata, "stateful automata-cache-vs-legacy");
  EXPECT_EQ(automata.hits, interp.hits)
      << "per-rule hit counters diverge (hit replay missed a rule)";

  EXPECT_GT(automata.stats.vcache_state_hits, 0u)
      << "the automaton tier never engaged on a fully lowerable protocol";
  EXPECT_EQ(automata.stats.vcache_bypasses, 0u)
      << "a fully lowerable protocol must not bypass";
  EXPECT_GT(interp.stats.vcache_bypasses, 0u)
      << "the ablated build must interpret these STATE decisions every time";
}

TEST(CompiledDiffFuzzTest, ReplayIsDeterministic) {
  const uint64_t seed = SeedList().empty() ? kSeedBase : SeedList().front();
  FuzzRun a = Replay(seed, Mode::kThreaded, /*ept=*/true);
  FuzzRun b = Replay(seed, Mode::kThreaded, /*ept=*/true);
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.log_lines, b.log_lines);
  EXPECT_EQ(a.listing, b.listing);
}

// The mode plumbing itself: a threaded run and a switch run of the same seed
// agree even when the legacy walker is left out of the loop, so a regression
// in the shared handler bodies cannot hide behind a matching legacy bug.
TEST(CompiledDiffFuzzTest, SwitchAndThreadedAgree) {
  const uint64_t seed = SeedList().empty() ? kSeedBase : SeedList().front();
  FuzzRun swtch = Replay(seed, Mode::kSwitch, /*ept=*/true);
  FuzzRun threaded = Replay(seed, Mode::kThreaded, /*ept=*/true);
  ExpectBitEquivalent(swtch, threaded, std::string(ModeName(Mode::kThreaded)) +
                                           "-vs-" + ModeName(Mode::kSwitch));
}

}  // namespace
}  // namespace pf::core

// Custom main (overrides gtest_main's): resolves the seed list before any
// test runs. Precedence: --pf_fuzz_seed flag, then PF_FUZZ_SEED, then
// PF_FUZZ_SEEDS (a count of consecutive seeds, for CI sharding), then the
// 16-seed default.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);

  uint64_t single = 0;
  bool have_single = false;
  int count = pf::core::kDefaultSeedCount;
  for (int i = 1; i < argc; ++i) {
    constexpr const char kFlag[] = "--pf_fuzz_seed=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      single = std::strtoull(argv[i] + sizeof(kFlag) - 1, nullptr, 0);
      have_single = true;
    }
  }
  if (const char* env = std::getenv("PF_FUZZ_SEED"); env != nullptr && !have_single) {
    single = std::strtoull(env, nullptr, 0);
    have_single = true;
  }
  if (const char* env = std::getenv("PF_FUZZ_SEEDS"); env != nullptr) {
    count = std::atoi(env);
    if (count < 1) {
      count = 1;
    }
  }

  std::vector<uint64_t>& seeds = pf::core::SeedList();
  if (have_single) {
    seeds = {single};
  } else {
    for (int i = 0; i < count; ++i) {
      seeds.push_back(pf::core::kSeedBase + static_cast<uint64_t>(i));
    }
  }
  return RUN_ALL_TESTS();
}
