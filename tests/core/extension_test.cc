// Module extensibility: the paper adopts iptables' architecture precisely
// because new attacks should be handled by writing new match/target/context
// modules, not by touching the engine. These tests register custom modules
// through the public API and use them in rules.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::core {
namespace {

using sim::Pid;
using sim::Proc;

// A custom match: -m OWNER --uid N matches when the object is owned by N.
class OwnerMatch : public MatchModule {
 public:
  std::string_view Name() const override { return "OWNER"; }
  CtxMask Needs() const override { return CtxBit(Ctx::kObject); }
  bool Matches(Packet& pkt, Engine&) const override {
    return pkt.has_object && pkt.object_owner == uid;
  }
  std::string Render() const override { return "OWNER --uid " + std::to_string(uid); }

  sim::Uid uid = 0;
};

// A custom target: -j COUNT increments a shared counter and continues.
class CountTarget : public TargetModule {
 public:
  explicit CountTarget(int* counter) : counter_(counter) {}
  std::string_view Name() const override { return "COUNT"; }
  TargetKind Fire(Packet&, Engine&) const override {
    ++*counter_;
    return TargetKind::kContinue;
  }
  std::string Render() const override { return "COUNT"; }

 private:
  int* counter_;
};

class ExtensionTest : public pf::testing::SimTest {
 protected:
  ExtensionTest() : engine_(InstallProcessFirewall(kernel())), pft_(engine_) {}

  Engine* engine_;
  Pftables pft_;
};

TEST_F(ExtensionTest, CustomMatchModuleWorksInRules) {
  pft_.RegisterMatch("OWNER", [](const std::vector<std::string>& opts,
                                 std::unique_ptr<MatchModule>* out) {
    auto m = std::make_unique<OwnerMatch>();
    if (opts.size() != 2 || opts[0] != "--uid") {
      return Status::Error("OWNER requires --uid N");
    }
    m->uid = static_cast<sim::Uid>(std::stoul(opts[1]));
    *out = std::move(m);
    return Status::Ok();
  });

  kernel().MkFileAt("/tmp/alice-file", "x", 0666, sim::kAliceUid, sim::kAliceUid,
                    "tmp_t");
  kernel().MkFileAt("/tmp/mallory-file", "x", 0666, sim::kMalloryUid, sim::kMalloryUid,
                    "tmp_t");
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -m OWNER --uid " +
                        std::to_string(sim::kMalloryUid) + " -j DROP")
                  .ok());
  Pid pid = sched().Spawn({.exe = sim::kBinTrue}, [](Proc& p) {
    EXPECT_EQ(p.Open("/tmp/mallory-file", sim::kORdOnly),
              sim::SysError(sim::Err::kAcces));
    EXPECT_GE(p.Open("/tmp/alice-file", sim::kORdOnly), 0);
  });
  sched().RunUntilExit(pid);
}

TEST_F(ExtensionTest, CustomMatchOptionErrorsPropagate) {
  pft_.RegisterMatch("OWNER", [](const std::vector<std::string>& opts,
                                 std::unique_ptr<MatchModule>* out) {
    (void)opts;
    (void)out;
    return Status::Error("OWNER requires --uid N");
  });
  Status s = pft_.Exec("pftables -o FILE_OPEN -m OWNER --bogus -j DROP");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("--uid"), std::string::npos);
}

TEST_F(ExtensionTest, CustomTargetModuleFires) {
  int counter = 0;
  pft_.RegisterTarget("COUNT", [&counter](const std::vector<std::string>& opts,
                                          std::unique_ptr<TargetModule>* out) {
    if (!opts.empty()) {
      return Status::Error("COUNT takes no options");
    }
    *out = std::make_unique<CountTarget>(&counter);
    return Status::Ok();
  });
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -d etc_t -j COUNT").ok());
  Pid pid = sched().Spawn({.exe = sim::kBinTrue}, [](Proc& p) {
    p.Open("/etc/passwd", sim::kORdOnly);
    p.Open("/etc/ld.so.conf", sim::kORdOnly);  // also etc_t
    p.Open("/etc/shadow", sim::kORdOnly);      // shadow_t: not counted
    p.Open("/tmp", sim::kORdOnly);             // tmp_t: not counted
  });
  sched().RunUntilExit(pid);
  EXPECT_EQ(counter, 2);
}

TEST_F(ExtensionTest, CustomModulesShadowBuiltins) {
  bool used_custom = false;
  pft_.RegisterMatch("STATE", [&used_custom](const std::vector<std::string>&,
                                             std::unique_ptr<MatchModule>* out) {
    used_custom = true;
    auto m = std::make_unique<OwnerMatch>();
    *out = std::move(m);
    return Status::Ok();
  });
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -m STATE --whatever x -j DROP").ok());
  EXPECT_TRUE(used_custom);
}

}  // namespace
}  // namespace pf::core
