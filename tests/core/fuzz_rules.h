// Shared random rule-base generators for the differential fuzz battery
// (compiled_diff_fuzz_test.cc) and the verifier property test
// (verifier_test.cc). Every generator emits an always-installable pftables
// command list; the flavor steers the shape of the program the lowering
// pipeline produces so the battery covers the compiled artifact's corners:
//
//   kMixed       every builtin module/target, entrypoint rules, extensions
//   kStateHeavy  long STATE match/set/unset protocols across user chains
//   kNativeHeavy dominated by native-escape modules (ODD_INO / COUNT)
//   kDeepJumps   a JUMP nest of exactly kMaxChainDepth chains, so the last
//                chain sits on the runtime depth cutoff (entered at depth
//                kMaxChainDepth, where ExecChain/TraverseChain bail)
//   kSparse      empty and one-rule chains, single-op buckets
//
// The flavor is derived from the seed (seed % kFlavorCount), so a failing
// seed alone reproduces the exact program.
#ifndef TESTS_CORE_FUZZ_RULES_H_
#define TESTS_CORE_FUZZ_RULES_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/engine.h"
#include "src/core/pftables.h"

namespace pf::core::fuzzgen {

// --- extension modules (exercise the kMatchNative / kTargetNative escapes) --

// Matches objects with an odd inode number.
class OddInoMatch : public MatchModule {
 public:
  std::string_view Name() const override { return "ODD_INO"; }
  CtxMask Needs() const override { return CtxBit(Ctx::kObject); }
  bool Matches(Packet& pkt, Engine&) const override {
    return pkt.has_object && pkt.object_id.ino % 2 == 1;
  }
  std::string Render() const override { return "ODD_INO"; }
};

// Counts fires and continues.
class CountTarget : public TargetModule {
 public:
  explicit CountTarget(uint64_t* counter) : counter_(counter) {}
  std::string_view Name() const override { return "COUNT"; }
  TargetKind Fire(Packet&, Engine&) const override {
    ++*counter_;
    return TargetKind::kContinue;
  }
  std::string Render() const override { return "COUNT"; }

 private:
  uint64_t* counter_;
};

// Registers both extension modules on `pft`. `count_fires` must outlive the
// engine (every COUNT target instantiated from the rule base writes to it).
inline void RegisterFuzzModules(Pftables& pft, uint64_t* count_fires) {
  pft.RegisterMatch("ODD_INO", [](const std::vector<std::string>& opts,
                                  std::unique_ptr<MatchModule>* m) {
    if (!opts.empty()) {
      return Status::Error("ODD_INO takes no options");
    }
    *m = std::make_unique<OddInoMatch>();
    return Status::Ok();
  });
  pft.RegisterTarget("COUNT", [count_fires](const std::vector<std::string>& opts,
                                            std::unique_ptr<TargetModule>* t) {
    if (!opts.empty()) {
      return Status::Error("COUNT takes no options");
    }
    *t = std::make_unique<CountTarget>(count_fires);
    return Status::Ok();
  });
}

enum class Flavor : int {
  kMixed = 0,
  kStateHeavy,
  kNativeHeavy,
  kDeepJumps,
  kSparse,
};
inline constexpr int kFlavorCount = 5;

inline const char* FlavorName(Flavor f) {
  switch (f) {
    case Flavor::kMixed:
      return "mixed";
    case Flavor::kStateHeavy:
      return "state-heavy";
    case Flavor::kNativeHeavy:
      return "native-heavy";
    case Flavor::kDeepJumps:
      return "deep-jumps";
    case Flavor::kSparse:
      return "sparse";
  }
  return "?";
}

inline Flavor FlavorForSeed(uint64_t seed) {
  return static_cast<Flavor>(seed % kFlavorCount);
}

namespace detail {

inline const char* kLabels[] = {"etc_t", "tmp_t", "shadow_t", "bin_t", "user_t"};
inline const char* kOpsPool[] = {"FILE_OPEN", "SOCKET_BIND",
                                 "PROCESS_SIGNAL_DELIVERY", "FILE_GETATTR"};
inline const char* kKeys[] = {"k0", "k1", "k2", "k3"};
inline const char* kBins[] = {"/bin/true", "/usr/bin/apache2", "/bin/sh"};

template <typename T, size_t N>
const T& Pick(std::mt19937_64& rng, const T (&pool)[N]) {
  return pool[rng() % N];
}

// A rule base exercising every builtin chain, module, and target, plus
// entrypoint-indexed rules and the two extension modules registered by the
// fuzz harness (ODD_INO / COUNT).
inline std::vector<std::string> MixedRules(std::mt19937_64& rng) {
  const char* kChains[] = {"input", "input", "input", "output", "create",
                           "syscallbegin", "fz"};
  std::vector<std::string> rules = {"pftables -N fz",
                                    "pftables -A input -s staff_t -j fz"};
  for (int i = 0; i < 30; ++i) {
    std::string r = "pftables -A ";
    r += Pick(rng, kChains);
    if (rng() % 2 == 0) {
      r += std::string(" -o ") + Pick(rng, kOpsPool);
    }
    switch (rng() % 4) {
      case 0:
        r += std::string(" -s ") + Pick(rng, kLabels);
        break;
      case 1:
        r += std::string(" -s ~") + Pick(rng, kLabels);
        break;
      case 2:
        r += std::string(" -s {") + Pick(rng, kLabels) + "|" + Pick(rng, kLabels) +
             "}";
        break;
      default:
        break;  // wildcard subject
    }
    if (rng() % 3 == 0) {
      r += std::string(" -d ") + Pick(rng, kLabels);
    }
    if (rng() % 4 == 0) {
      char ept[64];
      std::snprintf(ept, sizeof(ept), " -p %s -i 0x%x", Pick(rng, kBins),
                    rng() % 3 == 0 ? 0x100 * (1 + static_cast<int>(rng() % 3))
                                   : 0x8000 + static_cast<int>(rng() % 8) * 0x40);
      r += ept;
    }
    switch (rng() % 6) {
      case 0:
        r += std::string(" -m STATE --key ") + Pick(rng, kKeys);
        break;
      case 1:
        r += std::string(" -m STATE --key ") + Pick(rng, kKeys) + " --cmp " +
             std::to_string(rng() % 3) + (rng() % 2 ? " --nequal" : "");
        break;
      case 2:
        r += " -m SYSCALL_ARGS --arg 0 --equal " + std::to_string(rng() % 8);
        break;
      case 3:
        r += " -m COMPARE --v1 C_UID --v2 " + std::to_string(rng() % 2) +
             (rng() % 2 ? " --nequal" : "");
        break;
      case 4:
        r += " -m ODD_INO";
        break;
      default:
        break;  // no module
    }
    switch (rng() % 8) {
      case 0:
      case 1:
        r += " -j DROP";
        break;
      case 2:
        r += " -j ACCEPT";
        break;
      case 3:
        r += " -j RETURN";
        break;
      case 4:
        r += std::string(" -j STATE --set --key ") + Pick(rng, kKeys) +
             " --value " + std::to_string(rng() % 3);
        break;
      case 5:
        r += std::string(" -j STATE --unset --key ") + Pick(rng, kKeys);
        break;
      case 6:
        r += " -j LOG --prefix fz" + std::to_string(rng() % 3);
        break;
      default:
        r += " -j COUNT";
        break;
    }
    rules.push_back(std::move(r));
  }
  return rules;
}

// Long STATE protocols: most rules either test a key (with and without a
// comparison value) or set/unset one, spread over two user chains, so the
// specialized kMatchStateEq/Ne forms dominate the program.
inline std::vector<std::string> StateHeavyRules(std::mt19937_64& rng) {
  std::vector<std::string> rules = {
      "pftables -N sa",
      "pftables -N sb",
      "pftables -A input -s staff_t -j sa",
      "pftables -A input -j sb",
      "pftables -A syscallbegin -j sb",
  };
  const char* kChains[] = {"sa", "sa", "sb", "sb", "input", "syscallbegin"};
  for (int i = 0; i < 40; ++i) {
    std::string r = "pftables -A ";
    r += Pick(rng, kChains);
    if (rng() % 5 == 0) {
      r += std::string(" -o ") + Pick(rng, kOpsPool);
    }
    if (rng() % 4 == 0) {
      r += std::string(" -s ") + Pick(rng, kLabels);
    }
    switch (rng() % 3) {
      case 0:
        r += std::string(" -m STATE --key ") + Pick(rng, kKeys);
        break;
      case 1:
        r += std::string(" -m STATE --key ") + Pick(rng, kKeys) + " --cmp " +
             std::to_string(rng() % 4) + (rng() % 2 ? " --nequal" : "");
        break;
      default:
        break;  // no module: unconditional mutation below
    }
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2:
        r += std::string(" -j STATE --set --key ") + Pick(rng, kKeys) +
             " --value " + std::to_string(rng() % 4);
        break;
      case 3:
      case 4:
        r += std::string(" -j STATE --unset --key ") + Pick(rng, kKeys);
        break;
      case 5:
        r += " -j RETURN";
        break;
      case 6:
        r += " -j LOG --prefix st" + std::to_string(rng() % 2);
        break;
      default:
        r += rng() % 3 == 0 ? " -j DROP" : " -j ACCEPT";
        break;
    }
    rules.push_back(std::move(r));
  }
  return rules;
}

// Dominated by the native escapes: ODD_INO matches and COUNT targets, so
// kMatchNative/kTargetNative dispatch (and its module-index operands) carry
// most of the evaluation.
inline std::vector<std::string> NativeHeavyRules(std::mt19937_64& rng) {
  std::vector<std::string> rules = {"pftables -N nz",
                                    "pftables -A input -j nz"};
  const char* kChains[] = {"input", "output", "nz", "nz"};
  for (int i = 0; i < 30; ++i) {
    std::string r = "pftables -A ";
    r += Pick(rng, kChains);
    if (rng() % 3 == 0) {
      r += std::string(" -o ") + Pick(rng, kOpsPool);
    }
    if (rng() % 3 == 0) {
      r += std::string(" -s ") + Pick(rng, kLabels);
    }
    switch (rng() % 4) {
      case 0:
      case 1:
        r += " -m ODD_INO";
        break;
      case 2:
        r += std::string(" -m STATE --key ") + Pick(rng, kKeys) + " --cmp " +
             std::to_string(rng() % 2);
        break;
      default:
        break;
    }
    switch (rng() % 5) {
      case 0:
      case 1:
        r += " -j COUNT";
        break;
      case 2:
        r += " -j DROP";
        break;
      case 3:
        r += " -j LOG --prefix nh";
        break;
      default:
        r += " -j RETURN";
        break;
    }
    rules.push_back(std::move(r));
  }
  return rules;
}

// A JUMP nest of exactly kMaxChainDepth user chains: d1 is entered at depth
// 1, d<kMaxChainDepth-1> at the last depth that still executes, and
// d<kMaxChainDepth> at the runtime cutoff itself (ExecChain/TraverseChain
// fall through without evaluating it). All three evaluators must agree on
// that boundary; the verifier flags the cut chain with a depth warning.
inline std::vector<std::string> DeepJumpRules(std::mt19937_64& rng) {
  std::vector<std::string> rules;
  const int depth = kMaxChainDepth;
  for (int i = 1; i <= depth; ++i) {
    rules.push_back("pftables -N d" + std::to_string(i));
  }
  rules.push_back("pftables -A input -j d1");
  rules.push_back("pftables -A syscallbegin -s staff_t -j d1");
  for (int i = 1; i <= depth; ++i) {
    const std::string chain = "d" + std::to_string(i);
    // One or two filler rules per level so hit/eval counters at every depth
    // are part of the diffed observable state.
    rules.push_back("pftables -A " + chain + " -s " + Pick(rng, kLabels) +
                    " -j LOG --prefix " + chain);
    if (rng() % 2 == 0) {
      rules.push_back("pftables -A " + chain + " -j STATE --set --key depth" +
                      " --value " + std::to_string(i));
    }
    if (rng() % 4 == 0) {
      rules.push_back("pftables -A " + chain + " -m STATE --key depth --cmp " +
                      std::to_string(rng() % depth) + " -j RETURN");
    }
    if (i < depth) {
      rules.push_back("pftables -A " + chain + " -j d" + std::to_string(i + 1));
    } else {
      // Never reached at runtime: entering this chain needs depth ==
      // kMaxChainDepth, where the evaluators bail.
      rules.push_back("pftables -A " + chain + " -j DROP");
    }
  }
  return rules;
}

// Degenerate shapes: an empty user chain that is still jumped to, a one-rule
// chain, and buckets populated for a single operation only.
inline std::vector<std::string> SparseRules(std::mt19937_64& rng) {
  std::vector<std::string> rules = {
      "pftables -N empty",
      "pftables -N one",
      "pftables -A input -s staff_t -j empty",
      "pftables -A input -j one",
      "pftables -A one -d etc_t -j DROP",
      std::string("pftables -A output -o ") + Pick(rng, kOpsPool) +
          " -j LOG --prefix sp",
  };
  const int extra = static_cast<int>(rng() % 3);
  for (int i = 0; i < extra; ++i) {
    rules.push_back(std::string("pftables -A create -o FILE_OPEN -s ") +
                    Pick(rng, kLabels) + " -j ACCEPT");
  }
  return rules;
}

}  // namespace detail

// Builds the flavor's rule base. The same (seed-derived) rng must be handed
// in freshly seeded so the command list is a pure function of the seed.
inline std::vector<std::string> RandomRules(std::mt19937_64& rng, Flavor flavor) {
  switch (flavor) {
    case Flavor::kMixed:
      return detail::MixedRules(rng);
    case Flavor::kStateHeavy:
      return detail::StateHeavyRules(rng);
    case Flavor::kNativeHeavy:
      return detail::NativeHeavyRules(rng);
    case Flavor::kDeepJumps:
      return detail::DeepJumpRules(rng);
    case Flavor::kSparse:
      return detail::SparseRules(rng);
  }
  return {};
}

}  // namespace pf::core::fuzzgen

#endif  // TESTS_CORE_FUZZ_RULES_H_
