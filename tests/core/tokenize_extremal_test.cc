// Rule-language corners at operand extremes: Tokenize() quoting edges, the
// empty label set as a parse error, the full-width sid set, and every
// builtin match module round-tripped through Save()/Restore() with extremal
// operand values (SYSCALL_ARGS values span the whole int64 range, --ino the
// whole uint64 range). A dump that re-parses into a different rule base —
// or fails to re-parse at all — would silently change enforcement on the
// next pftables-restore, so each case asserts dump == Save(Restore(dump)).

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "tests/testutil.h"

namespace pf::core {
namespace {

class TokenizeExtremalTest : public pf::testing::SimTest {
 protected:
  TokenizeExtremalTest() : engine_(InstallProcessFirewall(kernel())), pft_(engine_) {}

  // Installs one rule, then proves the save dump re-installs to the
  // byte-identical dump (the round trip is the idempotence fixed point).
  void ExpectRoundTrips(const std::string& rule) {
    ASSERT_TRUE(pft_.Exec("pftables -F").ok());
    Status s = pft_.Exec(rule);
    ASSERT_TRUE(s.ok()) << rule << ": " << s.message();
    const std::string dump = pft_.Save();
    ASSERT_TRUE(pft_.Exec("pftables -F").ok());
    s = pft_.Restore(dump);
    ASSERT_TRUE(s.ok()) << rule << ": restore failed: " << s.message() << "\n" << dump;
    EXPECT_EQ(pft_.Save(), dump) << rule << ": dump is not a fixed point";
  }

  Engine* engine_;
  Pftables pft_;
};

TEST_F(TokenizeExtremalTest, TokenizeHonorsQuotesAndRejectsUnterminated) {
  std::vector<std::string> tokens;
  ASSERT_TRUE(Pftables::Tokenize("a 'b c'  \"d\te\"", &tokens).ok());
  EXPECT_EQ(tokens, (std::vector<std::string>{"a", "b c", "d\te"}));

  // Adjacent quoted segments join into one token (shell semantics).
  ASSERT_TRUE(Pftables::Tokenize("pre'fix'\"-post\"", &tokens).ok());
  EXPECT_EQ(tokens, (std::vector<std::string>{"prefix-post"}));

  // Empty quotes produce no token: "" is not an operand.
  ASSERT_TRUE(Pftables::Tokenize("x '' y", &tokens).ok());
  EXPECT_EQ(tokens, (std::vector<std::string>{"x", "y"}));

  Status s = Pftables::Tokenize("pftables -A input -j 'DROP", &tokens);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unterminated single"), std::string::npos);
  s = Pftables::Tokenize("pftables -m LOG --prefix \"oops", &tokens);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unterminated double"), std::string::npos);
}

TEST_F(TokenizeExtremalTest, EmptyLabelSetIsAParseError) {
  Status s = pft_.Exec("pftables -A input -s {} -j DROP");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("empty label set"), std::string::npos) << s.message();

  // The negated and destination forms fail identically; nothing half-parses.
  EXPECT_FALSE(pft_.Exec("pftables -A input -s ~{} -j DROP").ok());
  EXPECT_FALSE(pft_.Exec("pftables -A input -d {} -j DROP").ok());
  EXPECT_FALSE(pft_.Exec("pftables -A input -s ~ -j DROP").ok());
  EXPECT_EQ(engine_->ruleset().filter().total_rules(), 0u);

  // An unterminated set is its own error, not an empty set.
  s = pft_.Exec("pftables -A input -s {etc_t -j DROP");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unterminated label set"), std::string::npos);
}

TEST_F(TokenizeExtremalTest, MaximalSidSetRoundTrips) {
  // Every label the system image interns, in one set, both polarities.
  const std::vector<std::string> labels = {
      "bin_t",         "etc_t",       "lib_t",
      "ld_so_t",       "root_t",      "shadow_t",
      "usr_t",         "var_t",       "tmp_t",
      "user_t",        "user_home_t", "user_tmp_t",
      "var_log_t",     "var_run_t",   "httpd_t",
      "httpd_config_t", "init_t",     "sshd_t"};
  std::string set = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    set += (i != 0 ? "|" : "") + labels[i];
  }
  set += "}";
  ExpectRoundTrips("pftables -A input -o FILE_OPEN -s " + set + " -j DROP");
  ExpectRoundTrips("pftables -A input -o FILE_OPEN -s ~" + set + " -j DROP");
  ExpectRoundTrips("pftables -A input -s {SYSHIGH|user_t} -d SYSHIGH -j DROP");
}

TEST_F(TokenizeExtremalTest, SyscallArgsSpansInt64) {
  ExpectRoundTrips("pftables -A input -m SYSCALL_ARGS --arg 0 --equal 0 -j DROP");
  ExpectRoundTrips(
      "pftables -A input -m SYSCALL_ARGS --arg 4 --equal 9223372036854775807 -j DROP");
  ExpectRoundTrips(
      "pftables -A input -m SYSCALL_ARGS --arg 1 --nequal -9223372036854775807 -j DROP");
  // Symbolic syscall names resolve at parse time and re-render numerically.
  ExpectRoundTrips("pftables -A input -m SYSCALL_ARGS --arg 0 --equal NR_open -j DROP");

  EXPECT_FALSE(pft_.Exec("pftables -A input -m SYSCALL_ARGS --arg 5 --equal 0 -j DROP").ok());
  EXPECT_FALSE(pft_.Exec("pftables -A input -m SYSCALL_ARGS --arg 0 -j DROP").ok());
  EXPECT_FALSE(
      pft_.Exec("pftables -A input -m SYSCALL_ARGS --arg 0 --equal zzz -j DROP").ok());
}

TEST_F(TokenizeExtremalTest, InoSpansUint64) {
  ExpectRoundTrips("pftables -A input -o FILE_OPEN --ino 0 -j DROP");
  ExpectRoundTrips("pftables -A input -o FILE_OPEN --ino 18446744073709551615 -j DROP");
  // Hex parses; the dump's decimal rendering must still round-trip.
  ExpectRoundTrips("pftables -A input -o FILE_OPEN --ino 0xffffffffffffffff -j DROP");
  EXPECT_FALSE(pft_.Exec("pftables -A input --ino 18446744073709551616 -j DROP").ok());
  EXPECT_FALSE(pft_.Exec("pftables -A input --ino -1 -j DROP").ok());
}

TEST_F(TokenizeExtremalTest, EntrypointSpansUint64) {
  ExpectRoundTrips("pftables -A input -p /bin/true -i 0 -j DROP");
  ExpectRoundTrips("pftables -A input -p /bin/true -i 0xffffffffffffffff -j DROP");
  EXPECT_FALSE(pft_.Exec("pftables -A input -p /bin/true -i nope -j DROP").ok());
}

TEST_F(TokenizeExtremalTest, StateMatchAndTargetExtremes) {
  ExpectRoundTrips("pftables -A input -m STATE --key k -j DROP");
  ExpectRoundTrips(
      "pftables -A input -m STATE --key k --cmp 9223372036854775807 -j DROP");
  ExpectRoundTrips(
      "pftables -A input -m STATE --key k --cmp -9223372036854775807 --nequal -j DROP");
  ExpectRoundTrips("pftables -A input -m STATE --key k --cmp C_INO -j DROP");
  ExpectRoundTrips(
      "pftables -A input -j STATE --set --key k --value 9223372036854775807");
  ExpectRoundTrips("pftables -A input -j STATE --unset --key k");
  EXPECT_FALSE(pft_.Exec("pftables -A input -m STATE -j DROP").ok());
  EXPECT_FALSE(pft_.Exec("pftables -A input -j STATE --set --key k").ok());
}

TEST_F(TokenizeExtremalTest, CompareInterpAndSignalMatchExtremes) {
  ExpectRoundTrips("pftables -A input -m COMPARE --v1 C_UID --v2 0 -j DROP");
  ExpectRoundTrips(
      "pftables -A input -m COMPARE --v1 9223372036854775807 --v2 "
      "-9223372036854775807 --nequal -j DROP");
  ExpectRoundTrips("pftables -A input -m COMPARE --v1 C_INO --v2 C_UID -j DROP");
  ExpectRoundTrips("pftables -A input -m INTERP --lang php -j DROP");
  ExpectRoundTrips("pftables -A input -m INTERP --script .php -j DROP");
  ExpectRoundTrips(
      "pftables -A input -m INTERP --script /var/www/upload/a.php --lang php -j DROP");
  ExpectRoundTrips(
      "pftables -A input -o PROCESS_SIGNAL_DELIVERY -m SIGNAL_MATCH -j DROP");
  EXPECT_FALSE(pft_.Exec("pftables -A input -m COMPARE --v1 C_UID -j DROP").ok());
  EXPECT_FALSE(pft_.Exec("pftables -A input -m INTERP -j DROP").ok());
  EXPECT_FALSE(
      pft_.Exec("pftables -A input -m SIGNAL_MATCH --sig 9 -j DROP").ok());
}

TEST_F(TokenizeExtremalTest, LogPrefixQuotingRoundTrips) {
  ExpectRoundTrips("pftables -A input -o FILE_OPEN -d shadow_t -j LOG --prefix audit0");
  // A quoted prefix tokenizes as one operand.
  ASSERT_TRUE(pft_.Exec("pftables -F").ok());
  ASSERT_TRUE(pft_.Exec("pftables -A input -j LOG --prefix 'x'").ok());
  EXPECT_NE(pft_.Save().find("--prefix x"), std::string::npos);
}

}  // namespace
}  // namespace pf::core
