// Entrypoint context retrieval: binary stack unwinding across the three
// methods (FP chain, unwind tables, prologue scan), interpreter backtraces,
// and — critically — robustness against malicious user memory (paper §4.4).

#include <gtest/gtest.h>

#include "src/core/unwind.h"
#include "src/sim/sched.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::core {
namespace {

using sim::Addr;
using sim::InterpFrame;
using sim::InterpLang;
using sim::Pid;
using sim::Proc;
using sim::SpawnOpts;
using sim::UserFrame;

class UnwindTest : public pf::testing::SimTest {
 protected:
  // Spawns a proc with /bin/true mapped, runs `body` inside it.
  void RunProc(std::function<void(Proc&)> body,
               const std::string& exe = sim::kBinTrue) {
    SpawnOpts opts;
    opts.exe = exe;
    Pid pid = sched().Spawn(opts, std::move(body));
    sched().RunUntilExit(pid);
  }
};

TEST_F(UnwindTest, UnwindsFramePointerChain) {
  RunProc([&](Proc& p) {
    UserFrame f1(p, sim::kBinTrue, 0x100);
    UserFrame f2(p, sim::kBinTrue, 0x200);
    UserFrame f3(p, sim::kBinTrue, 0x300);
    UnwindResult res = UnwindUserStack(p.task());
    ASSERT_EQ(res.status, UnwindStatus::kOk);
    // _start frame (pushed at spawn) + 3 explicit frames, innermost first.
    ASSERT_EQ(res.frames.size(), 4u);
    EXPECT_EQ(res.frames[0].offset, 0x300u);
    EXPECT_EQ(res.frames[1].offset, 0x200u);
    EXPECT_EQ(res.frames[2].offset, 0x100u);
    EXPECT_EQ(res.frames[3].offset, sim::kEntryOffset);
    EXPECT_EQ(res.frames[0].image_path, sim::kBinTrue);
  });
}

TEST_F(UnwindTest, OffsetsAreAslrIndependent) {
  uint64_t offset_run1 = 0;
  Addr pc_run1 = 0;
  RunProc([&](Proc& p) {
    UserFrame f(p, sim::kBinTrue, 0x4242);
    UnwindResult res = UnwindUserStack(p.task());
    ASSERT_TRUE(res.usable());
    offset_run1 = res.frames[0].offset;
    pc_run1 = res.frames[0].pc;
  });
  RunProc([&](Proc& p) {
    UserFrame f(p, sim::kBinTrue, 0x4242);
    UnwindResult res = UnwindUserStack(p.task());
    ASSERT_TRUE(res.usable());
    EXPECT_EQ(res.frames[0].offset, offset_run1) << "relative offsets must match";
    EXPECT_NE(res.frames[0].pc, pc_run1) << "ASLR must randomize absolute PCs";
  });
}

TEST_F(UnwindTest, CrossLibraryFrames) {
  RunProc([&](Proc& p) {
    int64_t fd = p.Open(sim::kLibDbus, sim::kORdOnly);
    ASSERT_GE(fd, 0);
    ASSERT_GT(p.MmapFd(static_cast<int>(fd)), 0);
    UserFrame f1(p, sim::kBinTrue, 0x900);
    UserFrame f2(p, sim::kLibDbus, 0x39231);
    UnwindResult res = UnwindUserStack(p.task());
    ASSERT_TRUE(res.usable());
    EXPECT_EQ(res.frames[0].image_path, sim::kLibDbus);
    EXPECT_EQ(res.frames[0].offset, 0x39231u);
    EXPECT_EQ(res.frames[1].image_path, sim::kBinTrue);
  });
}

TEST_F(UnwindTest, EhInfoRecoversBrokenChainAndDetectsTampering) {
  // Build a no-FP binary whose frames break the chain; eh-info allows
  // recovery via unwind tables.
  auto nofp = kernel().MkFileAt("/usr/bin/nofp", "\x7f" "ELF", 0755, 0, 0, "bin_t");
  auto img = std::make_unique<sim::BinaryImage>();
  img->entry_key = "/usr/bin/nofp";
  img->has_frame_pointers = false;
  img->has_eh_info = true;
  nofp->binary = std::move(img);

  RunProc(
      [&](Proc& p) {
        UserFrame f1(p, "/usr/bin/nofp", 0x500);
        UserFrame f2(p, "/usr/bin/nofp", 0x600);
        UnwindResult res = UnwindUserStack(p.task());
        ASSERT_EQ(res.status, UnwindStatus::kOk);
        ASSERT_EQ(res.frames.size(), 3u);
        EXPECT_EQ(res.frames[0].offset, 0x600u);
        EXPECT_EQ(res.frames[1].offset, 0x500u);

        // Now tamper: overwrite the caller's stored return PC. The table
        // cross-validation must abort instead of trusting corrupt memory.
        const auto& gt = p.task().mm.frames();
        sim::Addr caller_record = gt[gt.size() - 2].record;
        p.task().mm.WriteU64(caller_record + 8, 0xdeadbeef);
        UnwindResult tampered = UnwindUserStack(p.task());
        EXPECT_EQ(tampered.status, UnwindStatus::kAborted);
      },
      "/usr/bin/nofp");
}

TEST_F(UnwindTest, PrologueScanRecoversWithoutEhInfo) {
  auto bare = kernel().MkFileAt("/usr/bin/bare", "\x7f" "ELF", 0755, 0, 0, "bin_t");
  auto img = std::make_unique<sim::BinaryImage>();
  img->entry_key = "/usr/bin/bare";
  img->has_frame_pointers = false;
  img->has_eh_info = false;
  bare->binary = std::move(img);

  RunProc(
      [&](Proc& p) {
        UserFrame f1(p, "/usr/bin/bare", 0x700);
        UserFrame f2(p, "/usr/bin/bare", 0x800);
        UnwindResult res = UnwindUserStack(p.task());
        // The heuristic must recover at least the innermost frames.
        ASSERT_TRUE(res.usable());
        EXPECT_EQ(res.frames[0].offset, 0x800u);
        EXPECT_GE(res.frames.size(), 2u);
      },
      "/usr/bin/bare");
}

TEST_F(UnwindTest, CorruptFpRegisterAborts) {
  RunProc([&](Proc& p) {
    UserFrame f(p, sim::kBinTrue, 0x100);
    p.task().mm.set_fp(0x1234);  // points outside the user region
    UnwindResult res = UnwindUserStack(p.task());
    EXPECT_EQ(res.status, UnwindStatus::kAborted);
  });
}

TEST_F(UnwindTest, CyclicChainTerminatesBounded) {
  RunProc([&](Proc& p) {
    UserFrame f1(p, sim::kBinTrue, 0x100);
    UserFrame f2(p, sim::kBinTrue, 0x200);
    // Make the inner frame's saved-FP point at itself: a naive unwinder
    // would loop forever. Monotonicity forces the fallback paths (here the
    // unwind tables recover the true chain); the walk must stay bounded.
    sim::Mm& mm = p.task().mm;
    mm.WriteU64(mm.fp(), mm.fp());
    UnwindResult res = UnwindUserStack(p.task());
    EXPECT_LE(res.frames.size(), static_cast<size_t>(kMaxUnwindFrames));
    if (res.status == UnwindStatus::kOk) {
      // Recovery via tables must yield the true frames, not the forged loop.
      ASSERT_EQ(res.frames.size(), 3u);  // f2, f1, _start
      EXPECT_EQ(res.frames[0].offset, 0x200u);
      EXPECT_EQ(res.frames[1].offset, 0x100u);
    }
  });
}

TEST_F(UnwindTest, CyclicChainWithoutRecoveryInfoStillTerminates) {
  auto bare = kernel().MkFileAt("/usr/bin/bare2", "\x7f" "ELF", 0755, 0, 0, "bin_t");
  auto img = std::make_unique<sim::BinaryImage>();
  img->entry_key = "/usr/bin/bare2";
  img->has_frame_pointers = true;  // FP chain exists, but we forge a cycle
  img->has_eh_info = false;
  bare->binary = std::move(img);
  RunProc(
      [&](Proc& p) {
        UserFrame f1(p, "/usr/bin/bare2", 0x100);
        UserFrame f2(p, "/usr/bin/bare2", 0x200);
        sim::Mm& mm = p.task().mm;
        mm.WriteU64(mm.fp(), mm.fp());
        UnwindResult res = UnwindUserStack(p.task());
        EXPECT_LE(res.frames.size(), static_cast<size_t>(kMaxUnwindFrames));
      },
      "/usr/bin/bare2");
}

TEST_F(UnwindTest, ReturnAddressOutsideImagesAborts) {
  RunProc([&](Proc& p) {
    UserFrame f(p, sim::kBinTrue, 0x100);
    sim::Mm& mm = p.task().mm;
    mm.WriteU64(mm.fp() + 8, 0x4141414141414141ULL);
    UnwindResult res = UnwindUserStack(p.task());
    EXPECT_EQ(res.status, UnwindStatus::kAborted);
  });
}

TEST_F(UnwindTest, EmptyStackIsValidAndEmpty) {
  sim::Task task;
  task.mm.Reset(0x7ffc00000000ULL);
  UnwindResult res = UnwindUserStack(task);
  EXPECT_EQ(res.status, UnwindStatus::kOk);
  EXPECT_TRUE(res.frames.empty());
  EXPECT_FALSE(res.usable());
}

TEST_F(UnwindTest, InterpreterBacktrace) {
  RunProc([&](Proc& p) {
    InterpFrame f1(p, InterpLang::kPhp, "/var/www/app/index.php", 3);
    InterpFrame f2(p, InterpLang::kPhp, "/var/www/app/lib.php", 17);
    InterpUnwindResult res = UnwindInterpStack(p.task());
    ASSERT_EQ(res.status, UnwindStatus::kOk);
    ASSERT_EQ(res.frames.size(), 2u);
    EXPECT_EQ(res.frames[0].script_path, "/var/www/app/lib.php");
    EXPECT_EQ(res.frames[0].line, 17u);
    EXPECT_EQ(res.frames[1].script_path, "/var/www/app/index.php");
    EXPECT_EQ(res.frames[0].lang, InterpLang::kPhp);
  });
}

TEST_F(UnwindTest, InterpreterFramesUnwindAfterPop) {
  RunProc([&](Proc& p) {
    InterpFrame f1(p, InterpLang::kBash, "/etc/init.d/rc", 1);
    {
      InterpFrame f2(p, InterpLang::kBash, "/etc/init.d/apache2", 42);
    }
    InterpUnwindResult res = UnwindInterpStack(p.task());
    ASSERT_EQ(res.status, UnwindStatus::kOk);
    ASSERT_EQ(res.frames.size(), 1u);
    EXPECT_EQ(res.frames[0].script_path, "/etc/init.d/rc");
  });
}

TEST_F(UnwindTest, CyclicInterpListAborts) {
  RunProc([&](Proc& p) {
    InterpFrame f1(p, InterpLang::kPython, "/usr/bin/dstat", 10);
    InterpFrame f2(p, InterpLang::kPython, "/usr/bin/dstat", 20);
    // Forge a cycle: the newest node points at itself.
    sim::Mm& mm = p.task().mm;
    mm.WriteU64(f2.node(), f2.node());
    InterpUnwindResult res = UnwindInterpStack(p.task());
    EXPECT_EQ(res.status, UnwindStatus::kAborted);
  });
}

TEST_F(UnwindTest, NoInterpreterMeansEmptyOk) {
  RunProc([&](Proc& p) {
    InterpUnwindResult res = UnwindInterpStack(p.task());
    EXPECT_EQ(res.status, UnwindStatus::kOk);
    EXPECT_TRUE(res.frames.empty());
  });
}

}  // namespace
}  // namespace pf::core
