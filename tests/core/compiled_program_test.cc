// Compiled PF programs: commit-time lowering into the arena-packed form
// (program.h), the `pftables -L --compiled` disassembly, and the compiled
// evaluator. Bit-equivalence with the legacy walker is covered separately by
// the COMPILED ablation rung and the differential fuzz test; these tests pin
// the structure of the artifact itself.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/apps/programs.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/core/program.h"
#include "src/sim/sched.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::core {
namespace {

using sim::Pid;
using sim::Proc;

// A rule base exercising every lowering path: default matches (-o, -s, -d,
// -p, -i, --ino), all builtin -m modules with inline lowerings, every
// builtin target, a user chain, and entrypoint-indexed rules.
std::vector<std::string> RepresentativeRules() {
  return {
      "pftables -N guard",
      "pftables -A guard -o FILE_OPEN -d shadow_t -j DROP",
      "pftables -A guard -m STATE --key seen --cmp 1 -j RETURN",
      "pftables -A input -s staff_t -j guard",
      "pftables -A input -o SOCKET_BIND -j STATE --set --key seen --value 1",
      "pftables -A input -o FILE_OPEN -d etc_t -m COMPARE --v1 C_UID --v2 0 "
      "-j LOG --prefix root-etc",
      "pftables -A input -o PROCESS_SIGNAL_DELIVERY -m SIGNAL_MATCH -j DROP",
      "pftables -A syscallbegin -m SYSCALL_ARGS --arg 0 --equal 2 -j CONTINUE",
      "pftables -A input -o FILE_OPEN -m INTERP --lang php --script admin.php -j DROP",
      "pftables -p /bin/true -i 0x100 -o FILE_OPEN -d tmp_t -j DROP",
      "pftables -p /usr/bin/apache2 -i 0x200 -o FILE_OPEN -j DROP",
  };
}

class CompiledProgramTest : public pf::testing::SimTest {
 protected:
  CompiledProgramTest() : engine_(InstallProcessFirewall(kernel())), pft_(engine_) {
    apps::InstallPrograms(kernel());
  }

  Engine* engine_;
  Pftables pft_;
};

TEST_F(CompiledProgramTest, DisassemblyListsLoweredRules) {
  ASSERT_TRUE(pft_.ExecAll(RepresentativeRules()).ok());
  std::string disasm = pft_.ListCompiled();

  // Header + chain banners.
  EXPECT_NE(disasm.find(";; pf program:"), std::string::npos);
  EXPECT_NE(disasm.find("chain input (builtin"), std::string::npos);
  EXPECT_NE(disasm.find("chain guard (user"), std::string::npos);

  // Default matches lower to guard ops with pool operands rendered by value.
  EXPECT_NE(disasm.find("CHECK_OP FILE_OPEN"), std::string::npos);
  EXPECT_NE(disasm.find("MATCH_SUBJECT staff_t"), std::string::npos);
  EXPECT_NE(disasm.find("MATCH_OBJECT shadow_t"), std::string::npos);
  EXPECT_NE(disasm.find("CHECK_PROGRAM /bin/true"), std::string::npos);
  EXPECT_NE(disasm.find("CHECK_EPT_OFF 0x100"), std::string::npos);

  // Builtin modules lower inline; JUMP edges resolve to chain names.
  EXPECT_NE(disasm.find("MATCH_STATE --key seen"), std::string::npos);
  EXPECT_NE(disasm.find("MATCH_COMPARE"), std::string::npos);
  EXPECT_NE(disasm.find("MATCH_SIGNAL"), std::string::npos);
  EXPECT_NE(disasm.find("MATCH_SYSCALL_ARG --arg 0"), std::string::npos);
  EXPECT_NE(disasm.find("MATCH_INTERP --script admin.php --lang php"), std::string::npos);
  EXPECT_NE(disasm.find("STATE_SET --key seen"), std::string::npos);
  EXPECT_NE(disasm.find("LOG --prefix root-etc"), std::string::npos);
  EXPECT_NE(disasm.find("JUMP -> guard"), std::string::npos);

  // Nothing lowered through the native escape hatch: every module above is
  // a builtin with an inline instruction form.
  EXPECT_EQ(disasm.find("MATCH_NATIVE"), std::string::npos);
  EXPECT_EQ(disasm.find("TARGET_NATIVE"), std::string::npos);
  EXPECT_NE(disasm.find("native_matches=0 native_targets=0"), std::string::npos);

  // The entrypoint index made it into the program form.
  EXPECT_NE(disasm.find("ept /bin/true+0x100"), std::string::npos);
}

TEST_F(CompiledProgramTest, DisassemblyRoundTripsThroughSaveRestore) {
  ASSERT_TRUE(pft_.ExecAll(RepresentativeRules()).ok());
  std::string disasm = pft_.ListCompiled();
  std::string dump = pft_.Save();

  // Restore into a *different* kernel instance (different seed, so inode
  // numbers and interned sids differ). The disassembly prints interned
  // content by value, so the listing must match byte for byte.
  sim::Kernel other(0xf00d);
  sim::BuildSysImage(other);
  apps::InstallPrograms(other);
  Engine* engine2 = InstallProcessFirewall(other);
  Pftables pft2(engine2);
  Status s = pft2.Restore(dump);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(pft2.ListCompiled(), disasm);
}

TEST_F(CompiledProgramTest, BucketsRePointAtEntrySlices) {
  ASSERT_TRUE(pft_.ExecAll(RepresentativeRules()).ok());
  auto snap = engine_->CompileRuleset();
  const PfProgram& prog = snap->program;
  ASSERT_EQ(prog.chains.size(), snap->compiled.size());

  for (const auto& [chain, cc] : snap->compiled) {
    ASSERT_GE(cc.program_chain, 0) << chain->name();
    const ProgramChain& pc = prog.chains[static_cast<size_t>(cc.program_chain)];
    EXPECT_EQ(pc.name, chain->name());
    EXPECT_EQ(pc.op_mask, cc.op_mask);
    for (size_t op = 0; op < sim::kOpCount; ++op) {
      const OpBucket& ob = cc.ops[op];
      const ProgramBucket& pb = pc.ops[op];
      ASSERT_EQ(pb.all_len, ob.all.size());
      ASSERT_EQ(pb.plain_len, ob.plain.size());
      EXPECT_EQ(pb.needs, ob.needs);
      EXPECT_EQ(pb.cacheable, ob.cacheable);
      EXPECT_EQ(pb.has_indexed, ob.has_indexed);
      // The entry-table slice resolves to exactly the bucket's rules, in
      // bucket order.
      for (size_t i = 0; i < ob.all.size(); ++i) {
        EXPECT_EQ(prog.rules[prog.entries[pb.all_off + i]].rule, ob.all[i]);
      }
      for (size_t i = 0; i < ob.plain.size(); ++i) {
        EXPECT_EQ(prog.rules[prog.entries[pb.plain_off + i]].rule, ob.plain[i]);
      }
    }
  }
}

TEST_F(CompiledProgramTest, RuleBodiesAreContiguousAlignedRecords) {
  ASSERT_TRUE(pft_.ExecAll(RepresentativeRules()).ok());
  auto snap = engine_->CompileRuleset();
  const PfProgram& prog = snap->program;
  ASSERT_FALSE(prog.rules.empty());
  EXPECT_EQ(prog.arena.size() % kPfInsnWords, 0u);
  for (const RuleRecord& rec : prog.rules) {
    EXPECT_EQ(rec.entry % kPfInsnWords, 0u);
    EXPECT_EQ((rec.end - rec.entry) % kPfInsnWords, 0u);
    EXPECT_GT(rec.end, rec.entry);  // at least RULE_BEGIN + target
    ASSERT_NE(rec.rule, nullptr);
    // Every body starts with RULE_BEGIN naming its own record and ends with
    // a terminal/target instruction.
    EXPECT_EQ(static_cast<PfOp>(prog.Fetch(rec.entry).op), PfOp::kRuleBegin);
  }
}

TEST_F(CompiledProgramTest, NativeEscapesDispatchIntoModules) {
  // A custom target lowers through the TARGET_NATIVE escape and must still
  // fire (virtually) under the compiled evaluator.
  int counter = 0;
  pft_.RegisterTarget("COUNT", [&counter](const std::vector<std::string>& opts,
                                          std::unique_ptr<TargetModule>* out) {
    if (!opts.empty()) {
      return Status::Error("COUNT takes no options");
    }
    class CountTarget : public TargetModule {
     public:
      explicit CountTarget(int* c) : c_(c) {}
      std::string_view Name() const override { return "COUNT"; }
      TargetKind Fire(Packet&, Engine&) const override {
        ++*c_;
        return TargetKind::kContinue;
      }
      std::string Render() const override { return "COUNT"; }

     private:
      int* c_;
    };
    *out = std::make_unique<CountTarget>(&counter);
    return Status::Ok();
  });
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -d etc_t -j COUNT").ok());
  ASSERT_TRUE(engine_->config().compiled_eval);

  std::string disasm = pft_.ListCompiled();
  EXPECT_NE(disasm.find("TARGET_NATIVE COUNT"), std::string::npos);

  Pid pid = sched().Spawn({.exe = sim::kBinTrue}, [](Proc& p) {
    p.Open("/etc/passwd", sim::kORdOnly);
    p.Open("/etc/shadow", sim::kORdOnly);  // shadow_t: not counted
  });
  sched().RunUntilExit(pid);
  EXPECT_EQ(counter, 1);
}

TEST_F(CompiledProgramTest, CompiledEvaluatorEnforces) {
  ASSERT_TRUE(engine_->config().compiled_eval) << "compiled evaluation is the default";
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -d shadow_t -j DROP").ok());
  Pid pid = sched().Spawn({.exe = sim::kBinTrue}, [](Proc& p) {
    EXPECT_EQ(p.Open("/etc/shadow", sim::kORdOnly), sim::SysError(sim::Err::kAcces));
    EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0);
  });
  sched().RunUntilExit(pid);
  EXPECT_EQ(engine_->stats().drops, 1u);
}

}  // namespace
}  // namespace pf::core
