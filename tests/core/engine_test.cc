// Engine semantics: packet construction, default-match evaluation, verdicts,
// entrypoint matching under ASLR, SYSHIGH expansion, stateful rules, chain
// jumps, per-syscall context caching, optimization-config equivalence, and
// the protect-not-confine property for malicious stacks.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::core {
namespace {

using sim::Pid;
using sim::Proc;
using sim::SpawnOpts;
using sim::UserFrame;

class EngineTest : public pf::testing::SimTest {
 protected:
  EngineTest() : engine_(InstallProcessFirewall(kernel())), pft_(engine_) {}

  // Runs body in a proc with /bin/true mapped and root creds.
  int RunTrue(std::function<void(Proc&)> body, sim::Cred cred = {}) {
    SpawnOpts opts;
    opts.exe = sim::kBinTrue;
    opts.cred = cred;
    Pid pid = sched().Spawn(opts, std::move(body));
    return sched().RunUntilExit(pid);
  }

  Engine* engine_;
  Pftables pft_;
};

TEST_F(EngineTest, DefaultIsAllow) {
  RunTrue([](Proc& p) { EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0); });
  EXPECT_GT(engine_->stats().invocations, 0u);
  EXPECT_EQ(engine_->stats().drops, 0u);
}

TEST_F(EngineTest, DropByObjectLabel) {
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -d shadow_t -j DROP").ok());
  RunTrue([](Proc& p) {
    EXPECT_EQ(p.Open("/etc/shadow", sim::kORdOnly), sim::SysError(sim::Err::kAcces));
    EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0) << "other labels unaffected";
  });
  EXPECT_EQ(engine_->stats().drops, 1u);
}

TEST_F(EngineTest, DropByOperationOnly) {
  kernel().MkSymlinkAt("/tmp/lnk", "/etc/passwd", sim::kMalloryUid, sim::kMalloryUid,
                       "tmp_t");
  ASSERT_TRUE(pft_.Exec("pftables -o LNK_FILE_READ -d tmp_t -j DROP").ok());
  RunTrue([](Proc& p) {
    EXPECT_EQ(p.Open("/tmp/lnk", sim::kORdOnly), sim::SysError(sim::Err::kAcces))
        << "following a tmp_t symlink must be blocked";
    EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0);
  });
}

TEST_F(EngineTest, EntrypointMatchingIsAslrRelative) {
  ASSERT_TRUE(
      pft_.Exec("pftables -p /bin/true -i 0xcafe -o FILE_OPEN -d etc_t -j DROP").ok());
  for (int run = 0; run < 2; ++run) {  // different ASLR bases each run
    RunTrue([](Proc& p) {
      {
        UserFrame f(p, sim::kBinTrue, 0xcafe);
        EXPECT_EQ(p.Open("/etc/passwd", sim::kORdOnly), sim::SysError(sim::Err::kAcces));
      }
      {
        UserFrame f(p, sim::kBinTrue, 0xbeef);
        EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0)
            << "different call site must not match";
      }
      EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0) << "no frame: no match";
    });
  }
}

TEST_F(EngineTest, ProgramMatchRequiresSameBinary) {
  ASSERT_TRUE(
      pft_.Exec("pftables -p /bin/false -i 0xcafe -o FILE_OPEN -d etc_t -j DROP").ok());
  RunTrue([](Proc& p) {
    UserFrame f(p, sim::kBinTrue, 0xcafe);  // same offset, different binary
    EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0);
  });
}

TEST_F(EngineTest, SyshighObjectNegationMatchesAdversaryWritable) {
  // ~{SYSHIGH} = adversary-writable objects (R7's shape).
  ASSERT_TRUE(pft_.Exec("pftables -p /bin/true -i 0x5d7e -d ~{SYSHIGH} "
                        "-o FILE_OPEN -j DROP")
                  .ok());
  kernel().MkFileAt("/tmp/evil.conf", "x", 0666, sim::kMalloryUid, sim::kMalloryUid,
                    "tmp_t");
  RunTrue([](Proc& p) {
    UserFrame f(p, sim::kBinTrue, 0x5d7e);
    EXPECT_EQ(p.Open("/tmp/evil.conf", sim::kORdOnly), sim::SysError(sim::Err::kAcces))
        << "tmp_t is adversary-writable -> not SYSHIGH -> dropped";
    EXPECT_GE(p.Open("/etc/java.conf", sim::kORdOnly), 0)
        << "etc_t is SYSHIGH -> allowed";
  });
}

TEST_F(EngineTest, SyshighSubjectRestrictsRuleToTcb) {
  ASSERT_TRUE(pft_.Exec("pftables -s SYSHIGH -o FILE_OPEN -d tmp_t -j DROP").ok());
  kernel().MkFileAt("/tmp/data", "x", 0666, 0, 0, "tmp_t");
  RunTrue([](Proc& p) {  // root/unlabeled subject: SYSHIGH
    EXPECT_EQ(p.Open("/tmp/data", sim::kORdOnly), sim::SysError(sim::Err::kAcces));
  });
  RunTrue(
      [](Proc& p) {  // user_t subject: not SYSHIGH, rule does not apply
        EXPECT_GE(p.Open("/tmp/data", sim::kORdOnly), 0);
      },
      UserCred(sim::kMalloryUid));
}

TEST_F(EngineTest, AcceptShortCircuitsLaterDrops) {
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -d etc_t -j ACCEPT").ok());
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -d etc_t -j DROP").ok());
  RunTrue([](Proc& p) { EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0); });
}

TEST_F(EngineTest, JumpAndReturn) {
  ASSERT_TRUE(pft_.Exec("pftables -N subchain").ok());
  ASSERT_TRUE(pft_.Exec("pftables -I input -o FILE_OPEN -j subchain").ok());
  ASSERT_TRUE(pft_.Exec("pftables -A subchain -d etc_t -j RETURN").ok());
  ASSERT_TRUE(pft_.Exec("pftables -A subchain -j DROP").ok());
  kernel().MkFileAt("/tmp/f", "x", 0666, 0, 0, "tmp_t");
  RunTrue([](Proc& p) {
    EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0) << "RETURN path allows";
    EXPECT_EQ(p.Open("/tmp/f", sim::kORdOnly), sim::SysError(sim::Err::kAcces))
        << "fallthrough to DROP in subchain";
  });
}

TEST_F(EngineTest, StateRulesImplementCheckUseInvariant) {
  // T2 shape: record the inode at lstat (check), drop the open (use) if the
  // inode changed in between.
  ASSERT_TRUE(pft_.Exec("pftables -p /bin/true -i 0x111 -o FILE_GETATTR "
                        "-j STATE --set --key use --value C_INO")
                  .ok());
  ASSERT_TRUE(pft_.Exec("pftables -p /bin/true -i 0x222 -o FILE_OPEN "
                        "-m STATE --key use --cmp C_INO --nequal -j DROP")
                  .ok());
  kernel().MkFileAt("/tmp/target", "v1", 0666, sim::kMalloryUid, sim::kMalloryUid,
                    "tmp_t");

  Pid victim = sched().Spawn({.name = "victim", .exe = sim::kBinTrue}, [](Proc& p) {
    sim::StatBuf st;
    {
      UserFrame f(p, sim::kBinTrue, 0x111);
      ASSERT_EQ(p.Lstat("/tmp/target", &st), 0);  // check
    }
    p.Checkpoint("between");
    {
      UserFrame f(p, sim::kBinTrue, 0x222);
      int64_t fd = p.Open("/tmp/target", sim::kORdOnly);  // use
      p.Exit(fd >= 0 ? 0 : 1);
    }
  });
  ASSERT_TRUE(sched().RunUntilLabel(victim, "between"));
  Pid adversary =
      sched().Spawn({.name = "mallory", .cred = UserCred(sim::kMalloryUid)}, [](Proc& p) {
        ASSERT_EQ(p.Unlink("/tmp/target"), 0);
        ASSERT_EQ(p.Symlink("/etc/passwd", "/tmp/target"), 0);
      });
  sched().RunUntilExit(adversary);
  EXPECT_EQ(sched().RunUntilExit(victim), 1) << "swapped resource must be dropped";

  // Without a race, the same sequence succeeds.
  kernel().MkFileAt("/tmp/calm", "v1", 0666, 0, 0, "tmp_t");
  Pid happy = sched().Spawn({.name = "happy", .exe = sim::kBinTrue}, [](Proc& p) {
    sim::StatBuf st;
    {
      UserFrame f(p, sim::kBinTrue, 0x111);
      ASSERT_EQ(p.Lstat("/tmp/calm", &st), 0);
    }
    UserFrame f(p, sim::kBinTrue, 0x222);
    p.Exit(p.Open("/tmp/calm", sim::kORdOnly) >= 0 ? 0 : 1);
  });
  EXPECT_EQ(sched().RunUntilExit(happy), 0);
}

TEST_F(EngineTest, MaliciousStackForfeitsOnlyOwnProtection) {
  ASSERT_TRUE(
      pft_.Exec("pftables -p /bin/true -i 0xcafe -o FILE_OPEN -d shadow_t -j DROP").ok());
  RunTrue([](Proc& p) {
    UserFrame f(p, sim::kBinTrue, 0xcafe);
    p.task().mm.set_fp(0xdead);  // corrupt own stack
    EXPECT_GE(p.Open("/etc/shadow", sim::kORdOnly), 0)
        << "rule cannot match an unusable stack; only this process loses protection";
  });
  // A well-behaved process is still protected.
  RunTrue([](Proc& p) {
    UserFrame f(p, sim::kBinTrue, 0xcafe);
    EXPECT_EQ(p.Open("/etc/shadow", sim::kORdOnly), sim::SysError(sim::Err::kAcces));
  });
}

TEST_F(EngineTest, DisabledEngineAllowsEverything) {
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -d shadow_t -j DROP").ok());
  engine_->config().enabled = false;
  RunTrue([](Proc& p) { EXPECT_GE(p.Open("/etc/shadow", sim::kORdOnly), 0); });
  engine_->config().enabled = true;
  RunTrue([](Proc& p) {
    EXPECT_EQ(p.Open("/etc/shadow", sim::kORdOnly), sim::SysError(sim::Err::kAcces));
  });
}

TEST_F(EngineTest, ContextCacheReusesUnwindsWithinSyscall) {
  ASSERT_TRUE(pft_.Exec("pftables -p /bin/true -i 0x1 -o DIR_SEARCH -j CONTINUE").ok());
  engine_->ResetStats();
  RunTrue([](Proc& p) {
    UserFrame f(p, sim::kBinTrue, 0x1);
    // Deep path: one open triggers several DIR_SEARCH hook invocations.
    p.Open("/usr/lib/python2.7/os.py", sim::kORdOnly);
  });
  EXPECT_GT(engine_->stats().unwind_cache_hits, 0u)
      << "multiple resource requests in one syscall must reuse the unwind";
  EXPECT_LT(engine_->stats().unwinds, engine_->stats().unwind_cache_hits + 2)
      << "at most one real unwind for the single relevant syscall expected";
}

TEST_F(EngineTest, AllOptimizationConfigsAgreeOnVerdicts) {
  // The ablation configs of Table 6 must be semantically equivalent.
  const EngineConfig configs[] = {
      {.enabled = true, .lazy_context = false, .cache_context = false,
       .ept_chains = false, .verdict_cache = false},
      {.enabled = true, .lazy_context = false, .cache_context = true,
       .ept_chains = false, .verdict_cache = false},
      {.enabled = true, .lazy_context = true, .cache_context = true,
       .ept_chains = false, .verdict_cache = false},
      {.enabled = true, .lazy_context = true, .cache_context = true,
       .ept_chains = true, .verdict_cache = false},
      {.enabled = true, .lazy_context = true, .cache_context = true,
       .ept_chains = true, .verdict_cache = true},
  };
  ASSERT_TRUE(pft_.Exec("pftables -p /bin/true -i 0xcafe -o FILE_OPEN -d shadow_t "
                        "-j DROP")
                  .ok());
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -d tmp_t -j DROP").ok());
  kernel().MkFileAt("/tmp/t", "x", 0666, 0, 0, "tmp_t");
  for (const EngineConfig& cfg : configs) {
    engine_->config() = cfg;
    RunTrue([&](Proc& p) {
      {
        UserFrame f(p, sim::kBinTrue, 0xcafe);
        EXPECT_EQ(p.Open("/etc/shadow", sim::kORdOnly), sim::SysError(sim::Err::kAcces));
      }
      EXPECT_GE(p.Open("/etc/shadow", sim::kORdOnly), 0);
      EXPECT_EQ(p.Open("/tmp/t", sim::kORdOnly), sim::SysError(sim::Err::kAcces));
      EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0);
    });
  }
}

TEST_F(EngineTest, EptChainsReduceRuleEvaluations) {
  // 200 entrypoint rules for other binaries; one matching access.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pft_.Exec("pftables -p /bin/false -i 0x" + std::to_string(1000 + i) +
                          " -o FILE_OPEN -j DROP")
                    .ok());
  }
  auto measure = [&](bool ept) {
    engine_->config().ept_chains = ept;
    // The verdict cache would satisfy the second run without evaluating any
    // rules at all; keep it off so this measures the chain index itself.
    engine_->config().verdict_cache = false;
    engine_->ResetStats();
    RunTrue([](Proc& p) {
      UserFrame f(p, sim::kBinTrue, 0x9999);
      p.Open("/etc/passwd", sim::kORdOnly);
    });
    return engine_->stats().rules_evaluated;
  };
  uint64_t linear = measure(false);
  uint64_t indexed = measure(true);
  // The per-op dispatch table already keeps non-FILE_OPEN hooks away from
  // these rules, so linear traversal evaluates exactly the 200-rule bucket
  // per matching hook (it was strictly more before op bucketing).
  EXPECT_GE(linear, 200u);
  EXPECT_LT(indexed, 10u) << "hash lookup must avoid scanning unrelated entrypoints";
}

TEST_F(EngineTest, StateDictSurvivesForkAndDiesWithTask) {
  ASSERT_TRUE(pft_.Exec("pftables -o SOCKET_BIND -j STATE --set --key k --value 7").ok());
  Pid pid = sched().Spawn({.exe = sim::kBinTrue}, [&](Proc& p) {
    int64_t fd = p.Socket();
    p.Bind(static_cast<int>(fd), "/tmp/s");
    // Child inherits the dictionary.
    int64_t child = p.Fork([&](Proc& c) {
      auto& state = engine_->TaskState(c.task());
      c.Exit(state.dict.count("k") == 1 && state.dict["k"] == 7 ? 0 : 1);
    });
    int status = -1;
    p.Waitpid(static_cast<Pid>(child), &status);
    p.Exit(status);
  });
  EXPECT_EQ(sched().RunUntilExit(pid), 0);
}

TEST_F(EngineTest, SignalRaceRulesBlockReentrantDelivery) {
  // Rules R9-R12 from Table 5, verbatim.
  ASSERT_TRUE(pft_.ExecAll({
                      "pftables -N signal_chain",
                      "pftables -I input -o PROCESS_SIGNAL_DELIVERY -j SIGNAL_CHAIN",
                      "pftables -I signal_chain -m SIGNAL_MATCH -m STATE --key 'sig' "
                      "--cmp 1 -j DROP",
                      "pftables -I signal_chain 2 -m SIGNAL_MATCH -j STATE --set "
                      "--key 'sig' --value 1",
                      "pftables -I syscallbegin -m SYSCALL_ARGS --arg 0 --equal "
                      "NR_sigreturn -j STATE --set --key 'sig' --value 0",
                  })
                  .ok());
  int depth = 0;
  int max_depth = 0;
  int handled = 0;
  Pid victim = sched().Spawn({.name = "victim", .exe = sim::kBinTrue}, [&](Proc& p) {
    p.Sigaction(sim::kSigUsr1, [&](sim::SigNum) {
      ++depth;
      ++handled;
      max_depth = std::max(max_depth, depth);
      p.Checkpoint("in-handler");
      p.Null();
      --depth;
    });
    p.Checkpoint("armed");
    p.Null();
    p.Checkpoint("first-done");
    p.Null();  // delivery point for a later (legal) signal
    p.Checkpoint("done");
  });
  ASSERT_TRUE(sched().RunUntilLabel(victim, "armed"));
  Pid a1 = sched().Spawn({}, [&](Proc& p) { p.Kill(victim, sim::kSigUsr1); });
  sched().RunUntilExit(a1);
  ASSERT_TRUE(sched().RunUntilLabel(victim, "in-handler"));
  Pid a2 = sched().Spawn({}, [&](Proc& p) { p.Kill(victim, sim::kSigUsr1); });
  sched().RunUntilExit(a2);
  ASSERT_TRUE(sched().RunUntilLabel(victim, "first-done"));
  EXPECT_EQ(max_depth, 1) << "re-entrant delivery must be dropped by R10";
  EXPECT_EQ(handled, 1);

  // After sigreturn resets the state, a fresh signal is delivered again.
  Pid a3 = sched().Spawn({}, [&](Proc& p) { p.Kill(victim, sim::kSigUsr1); });
  sched().RunUntilExit(a3);
  ASSERT_TRUE(sched().RunUntilLabel(victim, "done"));
  EXPECT_EQ(handled, 2) << "non-racing signals must still be delivered";
  sched().RunUntilExit(victim);
}

TEST_F(EngineTest, LogTargetRecordsAccesses) {
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -j LOG --prefix audit").ok());
  RunTrue([](Proc& p) {
    UserFrame f(p, sim::kBinTrue, 0x777);
    p.Open("/etc/passwd", sim::kORdOnly);
  });
  ASSERT_GE(engine_->log().size(), 1u);
  const LogRecord& rec = engine_->log().records().back();
  EXPECT_EQ(rec.object_label, "etc_t");
  EXPECT_EQ(rec.prefix, "audit");
  EXPECT_TRUE(rec.entry_valid);
  EXPECT_EQ(rec.program, sim::kBinTrue);
  EXPECT_EQ(rec.entrypoint, 0x777u);
  EXPECT_NE(rec.ToJson().find("\"object\":\"etc_t\""), std::string::npos);
}

TEST_F(EngineTest, InoDefaultMatch) {
  auto shadow = kernel().LookupNoHooks("/etc/shadow");
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN --ino " + std::to_string(shadow->ino) +
                        " -j DROP")
                  .ok());
  RunTrue([](Proc& p) {
    EXPECT_EQ(p.Open("/etc/shadow", sim::kORdOnly), sim::SysError(sim::Err::kAcces));
    EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0);
  });
}

}  // namespace
}  // namespace pf::core
