// Unit tests for match/target modules in isolation: operand parsing and
// evaluation, STATE match/target semantics, SIGNAL_MATCH, SYSCALL_ARGS,
// COMPARE, LOG rendering — against hand-built packets, no scheduler.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/modules.h"
#include "src/sim/sysimage.h"

namespace pf::core {
namespace {

class ModulesTest : public ::testing::Test {
 protected:
  ModulesTest() : kernel_(11) {
    sim::BuildSysImage(kernel_);
    engine_ = InstallProcessFirewall(kernel_);
    task_.pid = 55;
    task_.comm = "unit";
    task_.cwd = kernel_.vfs().root()->id();
    inode_ = kernel_.LookupNoHooks("/etc/passwd");
    req_.task = &task_;
    req_.op = sim::Op::kFileOpen;
    req_.inode = inode_.get();
    req_.id = inode_->id();
    req_.syscall_nr = sim::SyscallNr::kOpen;
    pkt_.req = &req_;
  }

  // Collects object context into the packet.
  void FillObject() { engine_->EnsureContext(pkt_, CtxBit(Ctx::kObject)); }

  sim::Kernel kernel_;
  Engine* engine_ = nullptr;
  sim::Task task_;
  std::shared_ptr<sim::Inode> inode_;
  sim::AccessRequest req_;
  Packet pkt_;
};

TEST_F(ModulesTest, OperandParsing) {
  auto lit = Operand::Parse("42");
  ASSERT_TRUE(lit);
  EXPECT_FALSE(lit->is_var);
  EXPECT_EQ(lit->literal, 42);

  auto hex = Operand::Parse("0xbeef");
  ASSERT_TRUE(hex);
  EXPECT_EQ(hex->literal, 0xbeef);

  auto neg = Operand::Parse("-7");
  ASSERT_TRUE(neg);
  EXPECT_EQ(neg->literal, -7);

  auto var = Operand::Parse("C_INO");
  ASSERT_TRUE(var);
  EXPECT_TRUE(var->is_var);
  EXPECT_EQ(var->var, CtxVar::kIno);

  auto nr = Operand::Parse("NR_sigreturn");
  ASSERT_TRUE(nr);
  EXPECT_FALSE(nr->is_var);
  EXPECT_EQ(nr->literal, static_cast<int64_t>(sim::SyscallNr::kSigreturn));

  EXPECT_FALSE(Operand::Parse("bogus"));
  EXPECT_FALSE(Operand::Parse(""));
  EXPECT_FALSE(Operand::Parse("C_NOPE"));
}

TEST_F(ModulesTest, OperandContextNeeds) {
  EXPECT_EQ(Operand::Parse("7")->Needs(), 0u);
  EXPECT_EQ(Operand::Parse("C_INO")->Needs(), CtxBit(Ctx::kObject));
  EXPECT_EQ(Operand::Parse("C_TGT_DAC_OWNER")->Needs(),
            CtxBit(Ctx::kObject) | CtxBit(Ctx::kLinkTarget));
  EXPECT_EQ(Operand::Parse("C_PID")->Needs(), 0u);
}

TEST_F(ModulesTest, OperandEvalAgainstPacket) {
  FillObject();
  EXPECT_EQ(Operand::Parse("C_INO")->Eval(pkt_), static_cast<int64_t>(inode_->ino));
  EXPECT_EQ(Operand::Parse("C_DEV")->Eval(pkt_), static_cast<int64_t>(inode_->dev));
  EXPECT_EQ(Operand::Parse("C_DAC_OWNER")->Eval(pkt_), 0);
  EXPECT_EQ(Operand::Parse("C_PID")->Eval(pkt_), 55);
  EXPECT_EQ(Operand::Parse("C_SYSCALL")->Eval(pkt_),
            static_cast<int64_t>(sim::SyscallNr::kOpen));
  EXPECT_FALSE(Operand::Parse("C_TGT_DAC_OWNER")->Eval(pkt_))
      << "no link target on a plain open";
  EXPECT_FALSE(Operand::Parse("C_SIG")->Eval(pkt_)) << "not a signal delivery";
}

TEST_F(ModulesTest, StateMatchSemantics) {
  std::unique_ptr<MatchModule> m;
  ASSERT_TRUE(StateMatch::Create({"--key", "'k'", "--cmp", "7"}, &m).ok());
  PfTaskState& state = engine_->TaskState(task_);
  EXPECT_FALSE(m->Matches(pkt_, *engine_)) << "absent key never matches";
  state.dict["k"] = 7;
  EXPECT_TRUE(m->Matches(pkt_, *engine_));
  state.dict["k"] = 8;
  EXPECT_FALSE(m->Matches(pkt_, *engine_));

  std::unique_ptr<MatchModule> neq;
  ASSERT_TRUE(StateMatch::Create({"--key", "k", "--cmp", "7", "--nequal"}, &neq).ok());
  EXPECT_TRUE(neq->Matches(pkt_, *engine_));
  state.dict["k"] = 7;
  EXPECT_FALSE(neq->Matches(pkt_, *engine_));

  std::unique_ptr<MatchModule> present;
  ASSERT_TRUE(StateMatch::Create({"--key", "k"}, &present).ok());
  EXPECT_TRUE(present->Matches(pkt_, *engine_)) << "bare --key means presence";
}

TEST_F(ModulesTest, StateMatchAgainstContextVariable) {
  FillObject();
  std::unique_ptr<MatchModule> m;
  ASSERT_TRUE(StateMatch::Create({"--key", "ino", "--cmp", "C_INO", "--nequal"}, &m).ok());
  PfTaskState& state = engine_->TaskState(task_);
  state.dict["ino"] = static_cast<int64_t>(inode_->ino);
  EXPECT_FALSE(m->Matches(pkt_, *engine_)) << "same inode: --nequal fails";
  state.dict["ino"] = static_cast<int64_t>(inode_->ino) + 1;
  EXPECT_TRUE(m->Matches(pkt_, *engine_)) << "different inode: the TOCTTOU trigger";
}

TEST_F(ModulesTest, StateTargetSetAndUnset) {
  std::unique_ptr<TargetModule> set;
  ASSERT_TRUE(StateTarget::Create({"--set", "--key", "x", "--value", "3"}, &set).ok());
  EXPECT_EQ(set->Fire(pkt_, *engine_), TargetKind::kContinue);
  EXPECT_EQ(engine_->TaskState(task_).dict["x"], 3);

  std::unique_ptr<TargetModule> unset;
  ASSERT_TRUE(StateTarget::Create({"--unset", "--key", "x"}, &unset).ok());
  unset->Fire(pkt_, *engine_);
  EXPECT_EQ(engine_->TaskState(task_).dict.count("x"), 0u);
}

TEST_F(ModulesTest, SignalMatchRequiresHandledBlockableSignal) {
  std::unique_ptr<MatchModule> m;
  ASSERT_TRUE(SignalMatch::Create({}, &m).ok());
  EXPECT_FALSE(m->Matches(pkt_, *engine_)) << "not a signal delivery";

  sim::AccessRequest sig_req;
  sig_req.task = &task_;
  sig_req.op = sim::Op::kSignalDeliver;
  sig_req.sig = sim::kSigUsr1;
  Packet sig_pkt;
  sig_pkt.req = &sig_req;
  EXPECT_FALSE(m->Matches(sig_pkt, *engine_)) << "no handler registered";
  task_.signals.actions[sim::kSigUsr1] = sim::SigAction{[](sim::SigNum) {}};
  EXPECT_TRUE(m->Matches(sig_pkt, *engine_));
  sig_req.sig = sim::kSigKill;
  EXPECT_FALSE(m->Matches(sig_pkt, *engine_)) << "unblockable signals never match";
}

TEST_F(ModulesTest, SyscallArgsMatchesNumberAndArgs) {
  std::unique_ptr<MatchModule> by_nr;
  ASSERT_TRUE(
      SyscallArgsMatch::Create({"--arg", "0", "--equal", "NR_open"}, &by_nr).ok());
  EXPECT_TRUE(by_nr->Matches(pkt_, *engine_));
  req_.syscall_nr = sim::SyscallNr::kClose;
  EXPECT_FALSE(by_nr->Matches(pkt_, *engine_));
  req_.syscall_nr = sim::SyscallNr::kOpen;

  req_.args = {42, 0, 0, 0};
  std::unique_ptr<MatchModule> by_arg;
  ASSERT_TRUE(SyscallArgsMatch::Create({"--arg", "1", "--equal", "42"}, &by_arg).ok());
  EXPECT_TRUE(by_arg->Matches(pkt_, *engine_));
  req_.args = {41, 0, 0, 0};
  EXPECT_FALSE(by_arg->Matches(pkt_, *engine_));

  std::unique_ptr<MatchModule> neq;
  ASSERT_TRUE(SyscallArgsMatch::Create({"--arg", "1", "--nequal", "42"}, &neq).ok());
  EXPECT_TRUE(neq->Matches(pkt_, *engine_));
}

TEST_F(ModulesTest, CompareMatchMissingContextNeverMatches) {
  std::unique_ptr<MatchModule> m;
  ASSERT_TRUE(CompareMatch::Create(
                  {"--v1", "C_DAC_OWNER", "--v2", "C_TGT_DAC_OWNER", "--nequal"}, &m)
                  .ok());
  FillObject();
  EXPECT_FALSE(m->Matches(pkt_, *engine_))
      << "C_TGT_DAC_OWNER is absent on a non-link access: rule must not fire";
}

TEST_F(ModulesTest, CompareMatchOnLinkTraversal) {
  kernel_.MkSymlinkAt("/tmp/owned", "/etc/passwd", sim::kMalloryUid, sim::kMalloryUid,
                      "tmp_t");
  auto link = kernel_.LookupNoHooks("/tmp");  // parent; fetch the raw link inode
  auto raw_link_ino = link->entries.at("owned");
  auto raw_link = kernel_.vfs().Sb(link->dev).Get(raw_link_ino);
  auto target = kernel_.LookupNoHooks("/etc/passwd");

  sim::AccessRequest lnk_req;
  lnk_req.task = &task_;
  lnk_req.op = sim::Op::kLnkFileRead;
  lnk_req.inode = raw_link.get();
  lnk_req.id = raw_link->id();
  lnk_req.link_target = target.get();
  Packet lnk_pkt;
  lnk_pkt.req = &lnk_req;
  engine_->EnsureContext(lnk_pkt,
                         CtxBit(Ctx::kObject) | CtxBit(Ctx::kLinkTarget));

  std::unique_ptr<MatchModule> m;
  ASSERT_TRUE(CompareMatch::Create(
                  {"--v1", "C_DAC_OWNER", "--v2", "C_TGT_DAC_OWNER", "--nequal"}, &m)
                  .ok());
  EXPECT_TRUE(m->Matches(lnk_pkt, *engine_))
      << "mallory's link to root's file: owners differ (rule R8 fires)";
}

TEST_F(ModulesTest, RenderRoundTrips) {
  std::unique_ptr<MatchModule> m;
  ASSERT_TRUE(StateMatch::Create({"--key", "0xbeef", "--cmp", "C_INO", "--nequal"}, &m)
                  .ok());
  EXPECT_EQ(m->Render(), "STATE --key 0xbeef --cmp C_INO --nequal");
  std::unique_ptr<TargetModule> t;
  ASSERT_TRUE(LogTarget::Create({"--prefix", "audit"}, &t).ok());
  EXPECT_EQ(t->Render(), "LOG --prefix audit");
}

}  // namespace
}  // namespace pf::core
