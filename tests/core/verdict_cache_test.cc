// Verdict cache semantics: hits must be invisible, misses must be honest.
//
// The AVC-style verdict cache (src/core/engine.h) keys on everything a pure
// rule may read — ruleset generation, MAC-policy epoch, op, subject sid,
// object identity (FileId + inode generation) and, when entrypoint-indexed
// rules apply, the caller's entrypoint. These tests pin down the contract:
//
//  * repeated identical accesses are served from the cache (one miss, then
//    hits) with verdicts identical to a cold evaluation;
//  * every event that could change a verdict — ruleset commit, MAC policy
//    mutation, inode recycling (generation bump), execve — invalidates the
//    relevant entries by construction, never by explicit flush bookkeeping;
//  * STATE-protocol rules lowered to per-task automata (DESIGN.md §5i) are
//    served from the stateful tier: the automaton state joins the key and a
//    hit replays the recorded effects (rule hit counters, dictionary deltas)
//    bit-identically. Rules the lowering pass cannot handle (LOG, INTERP,
//    variable operands) still bypass the cache, so their side effects fire on
//    every access;
//  * a seeded 10k-op workload with live commits, MAC mutation, an execve and
//    inode recycling produces bit-identical verdicts with the cache on/off.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "src/apps/programs.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"

namespace pf::core {
namespace {

EngineConfig CacheConfig(bool vcache) {
  EngineConfig cfg;
  cfg.lazy_context = true;
  cfg.cache_context = true;
  cfg.ept_chains = true;
  cfg.verdict_cache = vcache;
  return cfg;
}

// A kernel + engine + one raw task mapped to /bin/true with a single stack
// frame at image offset 0x100 (so "-p /bin/true -i 0x100" rules match).
struct Rig {
  sim::Kernel kernel{0x5eed};
  Engine* engine = nullptr;
  sim::Task task;
  std::vector<std::shared_ptr<sim::Inode>> pins;  // keep request inodes alive

  explicit Rig(const EngineConfig& cfg = CacheConfig(true)) {
    sim::BuildSysImage(kernel);
    apps::InstallPrograms(kernel);
    engine = InstallProcessFirewall(kernel, cfg);
    task.pid = 100;
    task.comm = "vcache";
    task.exe = sim::kBinTrue;
    task.cred.sid = kernel.labels().Intern("staff_t");
    task.cwd = kernel.vfs().root()->id();
    task.mm.Reset(kernel.AslrStackBase());
    kernel.MapImage(task, kernel.LookupNoHooks(sim::kBinTrue), sim::kBinTrue);
    const sim::Mapping* map = task.mm.FindMappingByPath(sim::kBinTrue);
    task.mm.PushFrame(map->base + 0x100, 16, false);
  }

  Status Install(const std::vector<std::string>& rules) {
    Pftables pft(engine);
    return pft.ExecAll(rules);
  }

  sim::AccessRequest Request(sim::Op op, const char* path, sim::SyscallNr nr) {
    auto inode = kernel.LookupNoHooks(path);
    sim::AccessRequest req;
    req.task = &task;
    req.op = op;
    req.inode = inode.get();
    req.id = inode->id();
    req.syscall_nr = nr;
    pins.push_back(std::move(inode));
    return req;
  }

  // Authorizes `path` for FILE_OPEN as a fresh syscall.
  int64_t Open(const char* path) {
    ++task.syscall_count;
    sim::AccessRequest req = Request(sim::Op::kFileOpen, path, sim::SyscallNr::kOpen);
    return engine->Authorize(req);
  }

  int64_t Bind() {
    ++task.syscall_count;
    sim::AccessRequest req;
    req.task = &task;
    req.op = sim::Op::kSocketBind;
    req.name = "/tmp/sock";
    req.syscall_nr = sim::SyscallNr::kBind;
    return engine->Authorize(req);
  }

  int64_t Signal() {
    ++task.syscall_count;
    sim::AccessRequest req;
    req.task = &task;
    req.op = sim::Op::kSignalDeliver;
    req.sig = sim::kSigUsr1;
    req.sig_sender = 1;
    req.syscall_nr = sim::SyscallNr::kKill;
    return engine->Authorize(req);
  }

  // Per-rule hit counters in chain order, for asserting that cache-hit
  // effect replay is bit-identical to a real traversal.
  std::vector<uint64_t> RuleHits() {
    std::vector<uint64_t> out;
    for (const auto& [name, chain] : engine->ruleset().filter().chains()) {
      for (const auto& r : chain.rules()) {
        out.push_back(r->hits.load(std::memory_order_relaxed));
      }
    }
    return out;
  }
};

TEST(VerdictCacheTest, RepeatedAccessIsServedFromCache) {
  Rig rig;
  ASSERT_TRUE(rig.Install({"pftables -o FILE_OPEN -d shadow_t -j DROP"}).ok());
  rig.engine->ResetStats();

  for (int i = 0; i < 64; ++i) {
    EXPECT_LT(rig.Open("/etc/shadow"), 0) << "iteration " << i;
  }
  EngineStats s = rig.engine->stats();
  EXPECT_EQ(s.vcache_misses, 1u);
  EXPECT_EQ(s.vcache_hits, 63u);
  EXPECT_EQ(s.vcache_bypasses, 0u);

  // A different object is a different key: one more miss, then hits again.
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(rig.Open("/etc/passwd"), 0) << "iteration " << i;
  }
  s = rig.engine->stats();
  EXPECT_EQ(s.vcache_misses, 2u);
  EXPECT_EQ(s.vcache_hits, 126u);
}

TEST(VerdictCacheTest, RulesetCommitInvalidates) {
  Rig rig;
  ASSERT_TRUE(rig.Install({"pftables -o FILE_OPEN -d shadow_t -j DROP"}).ok());
  EXPECT_EQ(rig.Open("/etc/passwd"), 0);
  EXPECT_EQ(rig.Open("/etc/passwd"), 0);
  EngineStats s = rig.engine->stats();
  EXPECT_EQ(s.vcache_misses, 1u);
  EXPECT_EQ(s.vcache_hits, 1u);

  // Committing a new ruleset bumps the generation (part of the key) and
  // clears the cache: the cached allow must not survive.
  ASSERT_TRUE(rig.Install({"pftables -o FILE_OPEN -d etc_t -j DROP"}).ok());
  EXPECT_LT(rig.Open("/etc/passwd"), 0) << "stale allow served after commit";
  s = rig.engine->stats();
  EXPECT_EQ(s.vcache_misses, 2u);
}

TEST(VerdictCacheTest, MacPolicyMutationInvalidatesByEpoch) {
  Rig rig;
  ASSERT_TRUE(rig.Install({"pftables -o FILE_OPEN -d shadow_t -j DROP"}).ok());
  EXPECT_LT(rig.Open("/etc/shadow"), 0);
  EXPECT_LT(rig.Open("/etc/shadow"), 0);
  EngineStats s = rig.engine->stats();
  EXPECT_EQ(s.vcache_misses, 1u);
  EXPECT_EQ(s.vcache_hits, 1u);

  // Any policy mutation moves the epoch, so cached verdicts stop matching
  // even when the mutation is unrelated to the rules (conservative by
  // design: SYSHIGH / adversary-accessibility can depend on any edge).
  rig.kernel.policy().MarkUntrusted(rig.kernel.labels().Intern("rogue_t"));
  EXPECT_LT(rig.Open("/etc/shadow"), 0);
  s = rig.engine->stats();
  EXPECT_EQ(s.vcache_misses, 2u);
  EXPECT_EQ(s.vcache_hits, 1u);
}

TEST(VerdictCacheTest, SyshighFlipsWithPolicyWithoutStaleHits) {
  Rig rig;
  // etc_t has no untrusted writer in the base image, so it is a SYSHIGH
  // object and writes are dropped — until the policy grants user_t (already
  // untrusted) write access, at which point etc_t leaves SYSHIGH.
  ASSERT_TRUE(rig.Install({"pftables -o FILE_WRITE -d SYSHIGH -j DROP"}).ok());
  auto write = [&] {
    ++rig.task.syscall_count;
    sim::AccessRequest req =
        rig.Request(sim::Op::kFileWrite, "/etc/passwd", sim::SyscallNr::kWrite);
    return rig.engine->Authorize(req);
  };
  EXPECT_LT(write(), 0);
  EXPECT_LT(write(), 0);
  rig.kernel.policy().Allow("user_t", "etc_t", sim::kMacWrite);
  EXPECT_EQ(write(), 0) << "SYSHIGH membership changed; cached drop is stale";
}

TEST(VerdictCacheTest, InodeGenerationChangeMisses) {
  Rig rig;
  auto tmp = rig.kernel.MkFileAt("/tmp/t", "x", 0666, 0, 0, "tmp_t");
  ASSERT_NE(tmp, nullptr);
  uint64_t gen0 = tmp->generation;
  char rule[128];
  std::snprintf(rule, sizeof(rule),
                "pftables -o FILE_OPEN -d tmp_t -m COMPARE --v1 C_GEN --v2 %llu "
                "-j DROP",
                static_cast<unsigned long long>(gen0));
  ASSERT_TRUE(rig.Install({rule}).ok());

  EXPECT_LT(rig.Open("/tmp/t"), 0);
  EXPECT_LT(rig.Open("/tmp/t"), 0);
  EngineStats s = rig.engine->stats();
  EXPECT_EQ(s.vcache_misses, 1u);
  EXPECT_EQ(s.vcache_hits, 1u);

  // Simulated recycling: same FileId, new generation. The generation is part
  // of the key, so the cached drop cannot be (wrongly) served.
  ++tmp->generation;
  EXPECT_EQ(rig.Open("/tmp/t"), 0) << "generation moved; COMPARE must re-run";
  s = rig.engine->stats();
  EXPECT_EQ(s.vcache_misses, 2u);
}

TEST(VerdictCacheTest, ExecCannotReuseEntrypointVerdicts) {
  Rig rig;
  ASSERT_TRUE(
      rig.Install({"pftables -p /bin/true -i 0x100 -o FILE_OPEN -d etc_t -j DROP"})
          .ok());
  EXPECT_LT(rig.Open("/etc/passwd"), 0);
  EXPECT_LT(rig.Open("/etc/passwd"), 0);
  EngineStats s = rig.engine->stats();
  EXPECT_EQ(s.vcache_misses, 1u);
  EXPECT_EQ(s.vcache_hits, 1u);

  // Exec into a different image with the same image-relative entrypoint
  // offset. The key carries (image, offset), not just the offset, so the
  // cached drop for /bin/true's entrypoint does not leak to /bin/sh's.
  rig.engine->OnTaskExec(rig.task);
  rig.task.exe = sim::kBinSh;
  rig.task.mm.Reset(rig.kernel.AslrStackBase());
  rig.kernel.MapImage(rig.task, rig.kernel.LookupNoHooks(sim::kBinSh), sim::kBinSh);
  const sim::Mapping* map = rig.task.mm.FindMappingByPath(sim::kBinSh);
  ASSERT_NE(map, nullptr);
  rig.task.mm.PushFrame(map->base + 0x100, 16, false);

  EXPECT_EQ(rig.Open("/etc/passwd"), 0)
      << "the rule names /bin/true; /bin/sh at the same offset must not hit it";
}

// LOG rules are not lowerable (their side effect — an append to the audit
// ring — cannot be replayed from a cached verdict), and they poison their
// whole decision: the STATE rule sharing the bucket rides the bypass too.
TEST(VerdictCacheTest, UnlowerableChainsBypassTheCache) {
  Rig rig;
  auto tmp = rig.kernel.MkFileAt("/tmp/t", "x", 0666, 0, 0, "tmp_t");
  ASSERT_NE(tmp, nullptr);
  ASSERT_TRUE(rig.Install({
                     "pftables -o FILE_OPEN -d tmp_t -j STATE --set --key seen "
                     "--value 1",
                     "pftables -o FILE_OPEN -d tmp_t -j LOG --prefix vc",
                 })
                  .ok());
  rig.engine->ResetStats();

  constexpr int kReps = 16;
  for (int i = 0; i < kReps; ++i) {
    EXPECT_EQ(rig.Open("/tmp/t"), 0);
  }
  EngineStats s = rig.engine->stats();
  EXPECT_EQ(s.vcache_hits, 0u) << "LOG verdicts must never come from cache";
  EXPECT_EQ(s.vcache_misses, 0u) << "LOG verdicts must not be inserted";
  EXPECT_EQ(s.vcache_bypasses, static_cast<uint64_t>(kReps));
  EXPECT_EQ(s.vcache_bypass_causes[2], static_cast<uint64_t>(kReps))
      << "the bypass must be attributed to LOG (kBypassLog = bit 2)";
  // Side effects fired on every repetition, not just the first.
  EXPECT_EQ(rig.engine->log().size(), static_cast<size_t>(kReps));
  EXPECT_EQ(rig.engine->TaskState(rig.task).dict.at("seen"), 1);
}

// ---------------------------------------------------------------------------
// Stateful tier: lowered STATE protocols are served from the cache with the
// task's automaton state folded into the key, and hits replay their recorded
// effects bit-identically.

constexpr const char* kBindSetsB =
    "pftables -o SOCKET_BIND -j STATE --set --key b --value 1";
constexpr const char* kSignalChecksB =
    "pftables -o PROCESS_SIGNAL_DELIVERY -m STATE --key b --cmp 1 -j DROP";

TEST(VerdictCacheTest, StatefulHitAdvancesTheAutomatonAndReplaysEffects) {
  Rig rig;
  ASSERT_TRUE(rig.Install({kBindSetsB, kSignalChecksB}).ok());
  rig.engine->ResetStats();

  // b is absent: signals pass. One stateful miss, then a stateful hit.
  EXPECT_EQ(rig.Signal(), 0);
  EXPECT_EQ(rig.Signal(), 0);
  EngineStats s = rig.engine->stats();
  EXPECT_EQ(s.vcache_bypasses, 0u) << "lowered STATE rules must not bypass";
  EXPECT_EQ(s.vcache_state_misses, 1u);
  EXPECT_EQ(s.vcache_state_hits, 1u);

  // The bind stores b=1 (a miss: this automaton state is new; the dict delta
  // is captured alongside the verdict).
  EXPECT_EQ(rig.Bind(), 0);
  EXPECT_EQ(rig.engine->TaskState(rig.task).dict.at("b"), 1);

  // The automaton advanced, so the same signal now keys differently: the
  // cached allow from above must NOT be served. Fresh miss, then a hit.
  EXPECT_LT(rig.Signal(), 0) << "stale allow served after the automaton advanced";
  EXPECT_LT(rig.Signal(), 0);

  // Second bind in state b=1 is still a miss (its key differs from the first
  // bind's, which ran with b absent); the third is a cache hit whose replay
  // must bump exactly the bind rule's hit counter and re-apply b=1.
  EXPECT_EQ(rig.Bind(), 0);
  std::vector<uint64_t> before = rig.RuleHits();
  EXPECT_EQ(rig.Bind(), 0);
  std::vector<uint64_t> after = rig.RuleHits();
  ASSERT_EQ(before.size(), after.size());
  uint64_t bumped = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    bumped += after[i] - before[i];
  }
  EXPECT_EQ(bumped, 1u) << "cache-hit replay must bump exactly one rule counter";
  EXPECT_EQ(rig.engine->TaskState(rig.task).dict.at("b"), 1);

  s = rig.engine->stats();
  EXPECT_EQ(s.vcache_state_misses, 4u);  // signal@absent, bind@absent, signal@b=1, bind@b=1
  EXPECT_EQ(s.vcache_state_hits, 3u);
  EXPECT_EQ(s.vcache_bypasses, 0u);
}

TEST(VerdictCacheTest, StatefulEntriesInvalidateOnCommit) {
  Rig rig;
  ASSERT_TRUE(rig.Install({kBindSetsB, kSignalChecksB}).ok());
  EXPECT_EQ(rig.Bind(), 0);
  EXPECT_LT(rig.Signal(), 0);
  EXPECT_LT(rig.Signal(), 0);  // served from the stateful tier

  // An unrelated commit bumps the ruleset generation: the cached stateful
  // drop must not survive, even though the dictionary (and so the verdict)
  // is unchanged.
  ASSERT_TRUE(rig.Install({"pftables -o FILE_OPEN -d shadow_t -j DROP"}).ok());
  EngineStats before = rig.engine->stats();
  EXPECT_LT(rig.Signal(), 0) << "STATE dictionaries survive commits";
  EngineStats after = rig.engine->stats();
  EXPECT_EQ(after.vcache_state_hits, before.vcache_state_hits)
      << "stateful verdict served across a ruleset generation";
  EXPECT_EQ(after.vcache_state_misses, before.vcache_state_misses + 1);
}

TEST(VerdictCacheTest, StatefulEntriesInvalidateOnExec) {
  Rig rig;
  ASSERT_TRUE(rig.Install({
                     kBindSetsB,
                     "pftables -p /bin/true -i 0x100 -o FILE_OPEN -d etc_t "
                     "-m STATE --key b --cmp 1 -j DROP",
                 })
                  .ok());
  EXPECT_EQ(rig.Bind(), 0);
  EXPECT_LT(rig.Open("/etc/passwd"), 0);  // entrypoint + b=1: drop (miss)
  EXPECT_LT(rig.Open("/etc/passwd"), 0);  // stateful hit
  EngineStats before = rig.engine->stats();
  EXPECT_GT(before.vcache_state_hits, 0u);

  // Exec into /bin/sh at the same image-relative offset. The entrypoint rule
  // no longer applies; the cached stateful drop keys on /bin/true's
  // entrypoint and must not leak across the exec.
  rig.engine->OnTaskExec(rig.task);
  rig.task.exe = sim::kBinSh;
  rig.task.mm.Reset(rig.kernel.AslrStackBase());
  rig.kernel.MapImage(rig.task, rig.kernel.LookupNoHooks(sim::kBinSh), sim::kBinSh);
  const sim::Mapping* map = rig.task.mm.FindMappingByPath(sim::kBinSh);
  ASSERT_NE(map, nullptr);
  rig.task.mm.PushFrame(map->base + 0x100, 16, false);

  EXPECT_EQ(rig.Open("/etc/passwd"), 0)
      << "stateful drop cached for /bin/true's entrypoint served after exec";
  EngineStats after = rig.engine->stats();
  EXPECT_EQ(after.vcache_state_hits, before.vcache_state_hits);
}

TEST(VerdictCacheTest, StatefulEntriesInvalidateOnExternalStateFlush) {
  Rig rig;
  ASSERT_TRUE(rig.Install({kBindSetsB, kSignalChecksB}).ok());
  EXPECT_EQ(rig.Bind(), 0);
  EXPECT_LT(rig.Signal(), 0);
  EXPECT_LT(rig.Signal(), 0);  // served from the stateful tier

  // Flush the task's dictionary out from under the engine (as pftables
  // --state-flush or a state save/restore would). The folded automaton state
  // reverts to "b absent", so the cached drop stops matching by key.
  {
    PfTaskState& st = rig.engine->TaskState(rig.task);
    std::lock_guard<std::mutex> lock(st.mu);
    st.dict.erase("b");
    ++st.dict_seq;
  }
  EngineStats before = rig.engine->stats();
  EXPECT_EQ(rig.Signal(), 0) << "cached drop served after the state flush";
  EngineStats after = rig.engine->stats();
  EXPECT_EQ(after.vcache_state_misses, before.vcache_state_misses + 1);
  // And the flushed state caches anew in its own right.
  EXPECT_EQ(rig.Signal(), 0);
  EXPECT_EQ(rig.engine->stats().vcache_state_hits, after.vcache_state_hits + 1);
}

// ---------------------------------------------------------------------------
// Live-event equivalence: a seeded workload interleaved with a ruleset
// commit, a MAC policy mutation, an execve and an inode recycling must be
// bit-identical with the cache on and off.

constexpr int kLiveOps = 10000;
constexpr int kLiveTasks = 3;

struct LiveWorkload {
  sim::Kernel kernel{0x5eed};
  Engine* engine = nullptr;
  std::vector<std::unique_ptr<sim::Task>> tasks;
  std::vector<std::shared_ptr<sim::Inode>> pins;
  std::shared_ptr<sim::Inode> tmp;

  explicit LiveWorkload(const EngineConfig& cfg) {
    sim::BuildSysImage(kernel);
    apps::InstallPrograms(kernel);
    engine = InstallProcessFirewall(kernel, cfg);
    tmp = kernel.MkFileAt("/tmp/t", "x", 0666, 0, 0, "tmp_t");
    char gen_rule[128];
    std::snprintf(gen_rule, sizeof(gen_rule),
                  "pftables -o FILE_OPEN -d tmp_t -m COMPARE --v1 C_GEN --v2 %llu "
                  "-j DROP",
                  static_cast<unsigned long long>(tmp->generation));
    Pftables pft(engine);
    Status s = pft.ExecAll({
        "pftables -o FILE_OPEN -d shadow_t -j DROP",
        "pftables -o FILE_WRITE -d SYSHIGH -j DROP",
        "pftables -o SOCKET_BIND -j STATE --set --key b --value 1",
        "pftables -o PROCESS_SIGNAL_DELIVERY -m STATE --key b --cmp 1 -j DROP",
        gen_rule,
        "pftables -p /bin/true -i 0x100 -o FILE_OPEN -d etc_t -j DROP",
    });
    if (!s.ok()) {
      ADD_FAILURE() << "rule install failed: " << s.message();
    }
    for (int i = 0; i < kLiveTasks; ++i) {
      auto task = std::make_unique<sim::Task>();
      task->pid = static_cast<sim::Pid>(100 + i);
      task->comm = "live";
      task->exe = sim::kBinTrue;
      task->cred.sid = kernel.labels().Intern("staff_t");
      task->cwd = kernel.vfs().root()->id();
      task->mm.Reset(kernel.AslrStackBase());
      kernel.MapImage(*task, kernel.LookupNoHooks(sim::kBinTrue), sim::kBinTrue);
      const sim::Mapping* map = task->mm.FindMappingByPath(sim::kBinTrue);
      task->mm.PushFrame(map->base + 0x100, 16, false);
      tasks.push_back(std::move(task));
    }
  }

  // Every live event starts a fresh syscall on all tasks so the per-syscall
  // context cache cannot straddle the event (identically in both configs).
  void SyscallBarrier() {
    for (auto& t : tasks) {
      ++t->syscall_count;
    }
  }

  void ApplyEvent(int index) {
    switch (index) {
      case 2500: {  // live commit: binds become drops
        Pftables pft(engine);
        Status s = pft.ExecAll({"pftables -o SOCKET_BIND -j DROP"});
        if (!s.ok()) {
          ADD_FAILURE() << "live commit failed: " << s.message();
        }
        break;
      }
      case 5000:  // MAC mutation: etc_t leaves SYSHIGH, writes flip to allow
        kernel.policy().Allow("user_t", "etc_t", sim::kMacWrite);
        break;
      case 6000: {  // execve: task 0 moves to /bin/sh, entrypoint rule unhooks
        sim::Task& t = *tasks[0];
        engine->OnTaskExec(t);
        t.exe = sim::kBinSh;
        t.mm.Reset(kernel.AslrStackBase());
        kernel.MapImage(t, kernel.LookupNoHooks(sim::kBinSh), sim::kBinSh);
        const sim::Mapping* map = t.mm.FindMappingByPath(sim::kBinSh);
        ASSERT_NE(map, nullptr);
        t.mm.PushFrame(map->base + 0x100, 16, false);
        break;
      }
      case 7000:  // inode recycling: the C_GEN rule stops matching /tmp/t
        ++tmp->generation;
        break;
      default:
        return;
    }
    SyscallBarrier();
  }

  sim::AccessRequest OpenRequest(sim::Task& task, const char* path) {
    auto inode = kernel.LookupNoHooks(path);
    sim::AccessRequest req;
    req.task = &task;
    req.op = sim::Op::kFileOpen;
    req.inode = inode.get();
    req.id = inode->id();
    req.syscall_nr = sim::SyscallNr::kOpen;
    pins.push_back(std::move(inode));
    return req;
  }
};

std::vector<int64_t> ReplayLive(bool vcache, EngineStats* stats_out,
                                std::vector<std::map<std::string, int64_t>>* dicts) {
  LiveWorkload w(CacheConfig(vcache));
  std::vector<int64_t> verdicts;
  verdicts.reserve(kLiveOps);
  std::mt19937_64 rng(0xcac4e5eedull);
  const char* paths[] = {"/etc/passwd", "/etc/shadow", "/tmp/t"};
  for (int i = 0; i < kLiveOps; ++i) {
    w.ApplyEvent(i);
    sim::Task& task = *w.tasks[rng() % kLiveTasks];
    if (rng() % 4 != 0) {
      ++task.syscall_count;
    }
    sim::AccessRequest req;
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2:
      case 3:
        req = w.OpenRequest(task, paths[rng() % 3]);
        break;
      case 4: {
        req = w.OpenRequest(task, "/etc/passwd");
        req.op = sim::Op::kFileWrite;
        req.syscall_nr = sim::SyscallNr::kWrite;
        break;
      }
      case 5: {
        req.task = &task;
        req.op = sim::Op::kSocketBind;
        req.name = "/tmp/sock";
        req.syscall_nr = sim::SyscallNr::kBind;
        break;
      }
      case 6: {
        req.task = &task;
        req.op = sim::Op::kSignalDeliver;
        req.sig = sim::kSigUsr1;
        req.sig_sender = 1;
        req.syscall_nr = sim::SyscallNr::kKill;
        break;
      }
      default: {
        req.task = &task;
        req.op = sim::Op::kSyscallBegin;
        req.syscall_nr = sim::SyscallNr::kNull;
        break;
      }
    }
    verdicts.push_back(w.engine->Authorize(req));
  }
  if (stats_out != nullptr) {
    *stats_out = w.engine->stats();
  }
  if (dicts != nullptr) {
    dicts->clear();
    for (auto& task : w.tasks) {
      dicts->push_back(w.engine->TaskState(*task).dict);
    }
  }
  return verdicts;
}

TEST(VerdictCacheTest, LiveWorkloadIsBitIdenticalWithCacheOnAndOff) {
  std::vector<std::map<std::string, int64_t>> base_dicts;
  std::vector<int64_t> base = ReplayLive(false, nullptr, &base_dicts);
  ASSERT_EQ(base.size(), static_cast<size_t>(kLiveOps));
  size_t denies = 0;
  for (int64_t v : base) {
    denies += v < 0;
  }
  EXPECT_GT(denies, 100u) << "workload produced too few denials to be meaningful";
  EXPECT_LT(denies, static_cast<size_t>(kLiveOps)) << "workload must also allow";

  EngineStats cached_stats;
  std::vector<std::map<std::string, int64_t>> cached_dicts;
  std::vector<int64_t> cached = ReplayLive(true, &cached_stats, &cached_dicts);
  ASSERT_EQ(cached.size(), base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    ASSERT_EQ(cached[i], base[i]) << "cache-on diverged from cache-off at op " << i;
  }
  EXPECT_EQ(cached_dicts, base_dicts) << "final STATE dicts differ";

  // The cache must actually be load-bearing on this workload: a handful of
  // (task, op, object) combinations repeat thousands of times.
  EXPECT_GT(cached_stats.vcache_hits, 3000u);
  // The automaton tier serves the binds/signals that used to bypass: their
  // verdicts are keyed on the task's automaton state, so they count as
  // (stateful) hits and misses rather than bypasses.
  EXPECT_GT(cached_stats.vcache_state_hits, 0u)
      << "binds/signals run stateful rules and must hit the automaton tier";
}

}  // namespace
}  // namespace pf::core
