// Incremental-commit churn test (DESIGN.md §5g): random edit scripts applied
// command-by-command to three identically-seeded systems —
//
//   E  incremental_commits on,  tuple_dispatch on   (the delta path under test)
//   F  incremental_commits off, tuple_dispatch on   (from-scratch relower)
//   G  incremental_commits off, tuple_dispatch off  (scan-path verdict oracle)
//
// After every single edit the published program E actually executes (built by
// LowerProgramDelta splicing into a copy of the previous generation) must
// disassemble byte-identically to F's from-scratch relower of the same rule
// base. After the full script a seeded operation stream must produce
// bit-identical verdicts, STATE dictionaries, LOG records, List() renderings
// (per-rule eval/hit counters), and engine statistics between E and F; G
// additionally pins the verdict/side-effect surface of the tuple classifier
// to the scan path (eval counters legitimately drop under the classifier, so
// only hits are compared against G).
//
// Seeds cycle through every fuzz generator flavor (fuzz_rules.h), so the
// delta path is exercised over state protocols, native escapes, deep JUMP
// nests, and degenerate sparse chains, not just plain label rules.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/apps/programs.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/core/program.h"
#include "src/sim/sysimage.h"
#include "tests/core/fuzz_rules.h"

namespace pf::core {
namespace {

constexpr int kOps = 1500;
constexpr int kTasks = 3;
constexpr int kEdits = 24;
constexpr uint64_t kSeedBase = 0xdc17;  // consecutive seeds cycle the flavors
constexpr int kSeedCount = 16;

EngineConfig MakeCfg(bool incremental, bool tuple) {
  EngineConfig cfg;
  cfg.compiled_eval = true;
  cfg.verdict_cache = false;  // the cache would hide traversal differences
  cfg.tuple_dispatch = tuple;
  cfg.incremental_commits = incremental;
  return cfg;
}

// One booted system under churn. All three systems use the same sim seed, so
// inode numbers and label sids line up and command scripts are portable
// between them.
struct System {
  std::unique_ptr<sim::Kernel> kernel;
  Engine* engine = nullptr;
  std::unique_ptr<Pftables> pft;
  std::unique_ptr<uint64_t> count_fires = std::make_unique<uint64_t>(0);
  std::vector<std::unique_ptr<sim::Task>> tasks;
  std::vector<std::shared_ptr<sim::Inode>> pins;

  explicit System(const EngineConfig& cfg) {
    kernel = std::make_unique<sim::Kernel>(0x5eed);
    sim::BuildSysImage(*kernel);
    apps::InstallPrograms(*kernel);
    engine = InstallProcessFirewall(*kernel, cfg);
    pft = std::make_unique<Pftables>(engine);
    fuzzgen::RegisterFuzzModules(*pft, count_fires.get());
    kernel->MkFileAt("/tmp/t", "x", 0666, 0, 0, "tmp_t");
    for (int i = 0; i < kTasks; ++i) {
      auto task = std::make_unique<sim::Task>();
      task->pid = static_cast<sim::Pid>(300 + i);
      task->comm = "churn";
      task->exe = sim::kBinTrue;
      task->cred.sid = kernel->labels().Intern(i == 0 ? "staff_t" : "user_t");
      task->cwd = kernel->vfs().root()->id();
      task->mm.Reset(kernel->AslrStackBase());
      kernel->MapImage(*task, kernel->LookupNoHooks(sim::kBinTrue), sim::kBinTrue);
      const sim::Mapping* map = task->mm.FindMappingByPath(sim::kBinTrue);
      for (int f = 0; f <= i; ++f) {
        task->mm.PushFrame(map->base + 0x100 * static_cast<uint64_t>(f + 1), 16, false);
      }
      tasks.push_back(std::move(task));
    }
  }

  // The program hook evaluation actually runs (for E: the delta-built
  // splice, not a fresh staging compile like ListCompiled()).
  std::string PublishedDisassembly() const {
    return DisassemblePfProgram(engine->PublishedRuleset()->program,
                                kernel->labels());
  }
};

// Everything observable from one replay of the seeded operation stream.
struct RunResult {
  std::vector<int64_t> verdicts;
  std::vector<std::map<std::string, int64_t>> dicts;
  std::string log_lines;
  std::string listing;
  uint64_t count_fires = 0;
  std::vector<uint64_t> hits;  // per-rule hit counters, chain-sorted order
  EngineStats stats;
};

RunResult Replay(System& sys, uint64_t seed) {
  RunResult out;
  const char* kPaths[] = {"/etc/passwd", "/etc/shadow", "/tmp/t", "/bin/true"};
  std::mt19937_64 rng(seed ^ 0x0bdeadbeefULL);
  out.verdicts.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    sim::Task& task = *sys.tasks[rng() % kTasks];
    if (rng() % 4 != 0) {
      ++task.syscall_count;
    }
    sim::AccessRequest req;
    req.task = &task;
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2: {
        auto inode = sys.kernel->LookupNoHooks(kPaths[rng() % std::size(kPaths)]);
        req.op = sim::Op::kFileOpen;
        req.inode = inode.get();
        req.id = inode->id();
        req.syscall_nr = sim::SyscallNr::kOpen;
        sys.pins.push_back(std::move(inode));
        break;
      }
      case 3: {
        auto inode = sys.kernel->LookupNoHooks(kPaths[rng() % std::size(kPaths)]);
        req.op = sim::Op::kFileGetattr;
        req.inode = inode.get();
        req.id = inode->id();
        req.syscall_nr = sim::SyscallNr::kStat;
        sys.pins.push_back(std::move(inode));
        break;
      }
      case 4:
        req.op = sim::Op::kSocketBind;
        req.name = "/tmp/sock";
        req.syscall_nr = sim::SyscallNr::kBind;
        break;
      case 5:
        req.op = sim::Op::kSignalDeliver;
        req.sig = sim::kSigUsr1;
        req.sig_sender = 1;
        req.syscall_nr = sim::SyscallNr::kKill;
        break;
      default:
        req.op = sim::Op::kSyscallBegin;
        req.syscall_nr = static_cast<sim::SyscallNr>(rng() % 8);
        break;
    }
    out.verdicts.push_back(sys.engine->Authorize(req));
  }
  for (auto& task : sys.tasks) {
    out.dicts.push_back(sys.engine->TaskState(*task).dict);
  }
  out.log_lines = sys.engine->log().ToJsonLines();
  out.listing = sys.pft->List();
  out.count_fires = *sys.count_fires;
  for (const auto& [name, chain] : sys.engine->ruleset().filter().chains()) {
    for (const auto& r : chain.rules()) {
      out.hits.push_back(r->hits.load(std::memory_order_relaxed));
    }
  }
  out.stats = sys.engine->stats();
  return out;
}

// Builds the next edit command as a pure function of the rng and the current
// (shared) rule-base shape, read from `shape_engine`. `pool` supplies
// flavor-appropriate append commands harvested from the fuzz generators.
std::string NextEdit(std::mt19937_64& rng, Engine& shape_engine,
                     const std::vector<std::string>& pool, int step) {
  const Table& filter = shape_engine.ruleset().filter();
  // Chains that currently hold rules (delete/flush candidates).
  std::vector<std::pair<std::string, size_t>> nonempty;
  for (const auto& [name, chain] : filter.chains()) {
    if (chain.size() > 0) {
      nonempty.emplace_back(name, chain.size());
    }
  }
  const uint64_t kind = rng() % 12;
  if (kind < 5 || nonempty.empty()) {  // append (the common edit)
    return pool[rng() % pool.size()];
  }
  if (kind < 7) {  // insert at a random position
    const std::string& line = pool[rng() % pool.size()];
    const size_t at = line.find(" -A ");
    const size_t chain_from = at + 4;
    const size_t chain_to = line.find(' ', chain_from);
    const std::string chain = line.substr(chain_from, chain_to - chain_from);
    const Chain* c = filter.Find(chain);
    const size_t pos = 1 + rng() % (c->size() + 1);
    return line.substr(0, at) + " -I " + chain + " " + std::to_string(pos) +
           line.substr(chain_to);
  }
  if (kind < 10) {  // delete a random rule
    const auto& [chain, size] = nonempty[rng() % nonempty.size()];
    return "pftables -D " + chain + " " + std::to_string(1 + rng() % size);
  }
  if (kind == 10) {  // flip a builtin policy (exercises set_policy edit_seq)
    return std::string("pftables -P output ") + (step % 2 == 0 ? "DROP" : "ACCEPT");
  }
  // Flush one chain: the dirty relower of an emptied chain plus, later,
  // appends into it again.
  const auto& [chain, size] = nonempty[rng() % nonempty.size()];
  (void)size;
  return "pftables -F " + chain;
}

void RunChurn(uint64_t seed) {
  const std::string tag = "seed=0x" + [&] {
    char b[32];
    std::snprintf(b, sizeof(b), "%llx", static_cast<unsigned long long>(seed));
    return std::string(b);
  }() + " flavor=" + fuzzgen::FlavorName(fuzzgen::FlavorForSeed(seed));

  System e(MakeCfg(/*incremental=*/true, /*tuple=*/true));
  System f(MakeCfg(/*incremental=*/false, /*tuple=*/true));
  System g(MakeCfg(/*incremental=*/false, /*tuple=*/false));

  // Identical initial bases (batch-installed: one commit each). rule_rng is
  // advanced past the base batch so the pool batches below differ from it.
  std::mt19937_64 rule_rng(seed);
  (void)fuzzgen::RandomRules(rule_rng, fuzzgen::FlavorForSeed(seed));
  for (System* sys : {&e, &f, &g}) {
    std::mt19937_64 r(seed);
    ASSERT_TRUE(sys->pft->ExecAll(fuzzgen::RandomRules(r, fuzzgen::FlavorForSeed(seed))).ok())
        << tag;
  }

  // Harvest an append-command pool from fresh generator batches (same flavor,
  // so every referenced chain already exists).
  std::vector<std::string> pool;
  for (int batch = 0; batch < 3; ++batch) {
    for (std::string& line :
         fuzzgen::RandomRules(rule_rng, fuzzgen::FlavorForSeed(seed))) {
      if (line.find(" -A ") != std::string::npos) {
        pool.push_back(std::move(line));
      }
    }
  }
  ASSERT_FALSE(pool.empty()) << tag;

  // The churn script: after every command, the program E publishes (built by
  // the delta path) must equal F's from-scratch relower bit for bit. One
  // mid-script -N changes the chain-name set, forcing (and covering) the
  // full-commit fallback inside an otherwise delta-committed history.
  std::mt19937_64 edit_rng(seed ^ 0xed17ULL);
  for (int step = 0; step < kEdits; ++step) {
    const std::string cmd = step == kEdits / 2
                                ? "pftables -N churn_nc"
                                : NextEdit(edit_rng, *e.engine, pool, step);
    const Status se = e.pft->Exec(cmd);
    const Status sf = f.pft->Exec(cmd);
    const Status sg = g.pft->Exec(cmd);
    ASSERT_EQ(se.ok(), sf.ok()) << tag << " step " << step << ": " << cmd;
    ASSERT_EQ(se.ok(), sg.ok()) << tag << " step " << step << ": " << cmd;
    ASSERT_TRUE(se.ok()) << tag << " step " << step << " rejected: " << cmd
                         << " -> " << se.message();
    ASSERT_EQ(e.PublishedDisassembly(), f.PublishedDisassembly())
        << tag << ": delta-built program diverged from scratch relower after step "
        << step << ": " << cmd;
    ASSERT_EQ(e.pft->Save(), f.pft->Save()) << tag << " step " << step;
  }

  // The edit history must actually have taken the path under test.
  EXPECT_GT(e.engine->delta_commits(), static_cast<uint64_t>(kEdits) / 2) << tag;
  EXPECT_GT(e.engine->full_commits(), 0u) << tag;  // install + -N fallback
  EXPECT_EQ(f.engine->delta_commits(), 0u) << tag;

  // Replay: E vs F is full bit-equivalence (same dispatch, different commit
  // path); E vs G pins the classifier to the scan oracle's verdict/effect
  // surface (eval counters legitimately differ — that is the optimization).
  RunResult re = Replay(e, seed);
  RunResult rf = Replay(f, seed);
  RunResult rg = Replay(g, seed);

  ASSERT_EQ(re.verdicts, rf.verdicts) << tag << ": E vs F verdicts";
  EXPECT_EQ(re.dicts, rf.dicts) << tag << ": E vs F STATE dicts";
  EXPECT_EQ(re.log_lines, rf.log_lines) << tag << ": E vs F LOG records";
  EXPECT_EQ(re.listing, rf.listing) << tag << ": E vs F List() (eval/hit counters)";
  EXPECT_EQ(re.count_fires, rf.count_fires) << tag;
  EXPECT_EQ(re.hits, rf.hits) << tag;
  EXPECT_EQ(re.stats.invocations, rf.stats.invocations) << tag;
  EXPECT_EQ(re.stats.drops, rf.stats.drops) << tag;
  EXPECT_EQ(re.stats.rules_evaluated, rf.stats.rules_evaluated) << tag;
  EXPECT_EQ(re.stats.ctx_fetches, rf.stats.ctx_fetches) << tag;

  ASSERT_EQ(re.verdicts, rg.verdicts) << tag << ": E vs G (scan oracle) verdicts";
  EXPECT_EQ(re.dicts, rg.dicts) << tag << ": E vs G STATE dicts";
  EXPECT_EQ(re.log_lines, rg.log_lines) << tag << ": E vs G LOG records";
  EXPECT_EQ(re.count_fires, rg.count_fires) << tag;
  EXPECT_EQ(re.hits, rg.hits) << tag << ": classifier changed a per-rule hit count";
  EXPECT_EQ(re.stats.drops, rg.stats.drops) << tag;
}

TEST(IncrementalCommitChurnTest, DeltaCommitsAreBitEquivalentAcrossSeeds) {
  for (int i = 0; i < kSeedCount; ++i) {
    RunChurn(kSeedBase + static_cast<uint64_t>(i));
    if (::testing::Test::HasFailure()) {
      return;  // first divergence wins; later seeds would bury the report
    }
  }
}

// A long alternating append/delete run on one chain: generations churn with
// tiny diffs, dead records accumulate, and eventually the compaction
// threshold (half the arena dead) must force a full relower — after which
// deltas resume on the compacted base. The published program must stay
// bit-equivalent to a scratch compile throughout.
TEST(IncrementalCommitChurnTest, CompactionThresholdTriggersAndRecovers) {
  System e(MakeCfg(/*incremental=*/true, /*tuple=*/true));
  System f(MakeCfg(/*incremental=*/false, /*tuple=*/true));
  for (System* sys : {&e, &f}) {
    ASSERT_TRUE(sys->pft->Exec("pftables -N t").ok());
    ASSERT_TRUE(sys->pft->Exec("pftables -A input -s staff_t -j t").ok());
  }
  uint64_t fulls_before = e.engine->full_commits();
  bool add = true;
  for (int i = 0; i < 160; ++i) {
    const std::string cmd = add ? "pftables -A t -o FILE_OPEN -d shadow_t -j DROP"
                                : "pftables -D t 1";
    ASSERT_TRUE(e.pft->Exec(cmd).ok()) << "step " << i;
    ASSERT_TRUE(f.pft->Exec(cmd).ok()) << "step " << i;
    add = !add;
    if (i % 16 == 0) {
      ASSERT_EQ(e.PublishedDisassembly(), f.PublishedDisassembly())
          << "diverged at step " << i;
    }
  }
  ASSERT_EQ(e.PublishedDisassembly(), f.PublishedDisassembly());
  EXPECT_GT(e.engine->delta_commits(), 60u);
  EXPECT_GT(e.engine->full_commits(), fulls_before)
      << "compaction threshold never forced a from-scratch relower";
}

}  // namespace
}  // namespace pf::core
