// pftables-save / -restore round trips, counter zeroing, and audit mode.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/apps/rule_library.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sched.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::core {
namespace {

using sim::Pid;
using sim::Proc;

class SaveRestoreTest : public pf::testing::SimTest {
 protected:
  SaveRestoreTest() : engine_(InstallProcessFirewall(kernel())), pft_(engine_) {}

  Engine* engine_;
  Pftables pft_;
};

TEST_F(SaveRestoreTest, RoundTripPreservesRuleBase) {
  ASSERT_TRUE(pft_.ExecAll(apps::RuleLibrary::DefaultRuleBase()).ok());
  size_t rules_before = engine_->ruleset().total_rules();
  std::string dump = pft_.Save();
  ASSERT_FALSE(dump.empty());

  // Wipe and restore.
  ASSERT_TRUE(pft_.Exec("pftables -F").ok());
  ASSERT_EQ(engine_->ruleset().filter().total_rules(), 0u);
  Status s = pft_.Restore(dump);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(engine_->ruleset().total_rules(), rules_before);

  // The restored base must behave identically: idempotent double-save.
  EXPECT_EQ(pft_.Save(), dump);
}

TEST_F(SaveRestoreTest, RestoredRulesStillEnforce) {
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -d shadow_t -j DROP").ok());
  std::string dump = pft_.Save();
  ASSERT_TRUE(pft_.Exec("pftables -F").ok());
  ASSERT_TRUE(pft_.Restore(dump).ok());
  Pid pid = sched().Spawn({.exe = sim::kBinTrue}, [](Proc& p) {
    EXPECT_EQ(p.Open("/etc/shadow", sim::kORdOnly), sim::SysError(sim::Err::kAcces));
  });
  sched().RunUntilExit(pid);
}

TEST_F(SaveRestoreTest, SaveMarksUserChains) {
  ASSERT_TRUE(pft_.ExecAll(apps::RuleLibrary::SignalRaceRules()).ok());
  std::string dump = pft_.Save();
  EXPECT_NE(dump.find("-N signal_chain"), std::string::npos);
  EXPECT_NE(dump.find("-A signal_chain"), std::string::npos);
}

TEST_F(SaveRestoreTest, ZeroCountersResets) {
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -d etc_t -j CONTINUE").ok());
  Pid pid = sched().Spawn({.exe = sim::kBinTrue},
                          [](Proc& p) { p.Open("/etc/passwd", sim::kORdOnly); });
  sched().RunUntilExit(pid);
  const Rule& rule = *engine_->ruleset().filter().Find("input")->rules()[0];
  EXPECT_GT(rule.evals, 0u);
  EXPECT_GT(rule.hits, 0u);
  pft_.ZeroCounters();
  EXPECT_EQ(rule.evals, 0u);
  EXPECT_EQ(rule.hits, 0u);
}

TEST_F(SaveRestoreTest, AuditModeLogsInsteadOfDenying) {
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -d shadow_t -j DROP").ok());
  engine_->config().audit_only = true;
  Pid pid = sched().Spawn({.exe = sim::kBinTrue}, [](Proc& p) {
    EXPECT_GE(p.Open("/etc/shadow", sim::kORdOnly), 0) << "audit mode must not deny";
  });
  sched().RunUntilExit(pid);
  EXPECT_EQ(engine_->stats().drops, 0u);
  EXPECT_EQ(engine_->stats().audited_drops, 1u);
  ASSERT_GE(engine_->log().size(), 1u);
  EXPECT_EQ(engine_->log().records().back().prefix, "audit-drop");
  EXPECT_EQ(engine_->log().records().back().object_label, "shadow_t");

  // Flip to enforcing: the same access is now denied.
  engine_->config().audit_only = false;
  Pid pid2 = sched().Spawn({.exe = sim::kBinTrue}, [](Proc& p) {
    EXPECT_EQ(p.Open("/etc/shadow", sim::kORdOnly), sim::SysError(sim::Err::kAcces));
  });
  sched().RunUntilExit(pid2);
  EXPECT_EQ(engine_->stats().drops, 1u);
}

// A registered custom match survives Save()/Restore() because the factory
// re-parses its rendered options; the analyzer must see the same rule base
// on both sides of the trip.
class TripOwnerMatch : public MatchModule {
 public:
  std::string_view Name() const override { return "TRIP_OWNER"; }
  CtxMask Needs() const override { return CtxBit(Ctx::kObject); }
  bool Matches(Packet& pkt, Engine&) const override {
    return pkt.has_object && pkt.object_owner == uid;
  }
  std::string Render() const override {
    return "TRIP_OWNER --uid " + std::to_string(uid);
  }

  sim::Uid uid = 0;
};

TEST_F(SaveRestoreTest, JumpChainsRoundTripWithIdenticalDiagnostics) {
  // A JUMP topology with deliberate findings: an island chain (warning) and
  // a shadowed allow inside a user chain (warning). Round-tripping must
  // preserve both the rules and the analyzer's view of them, locus for
  // locus.
  ASSERT_TRUE(pft_.Exec("pftables -N checks").ok());
  ASSERT_TRUE(pft_.Exec("pftables -N island").ok());
  ASSERT_TRUE(pft_.Exec("pftables -A checks -d shadow_t -j DROP").ok());
  ASSERT_TRUE(pft_.Exec("pftables -A checks -j RETURN").ok());
  ASSERT_TRUE(pft_.Exec("pftables -A island -d etc_t -j DROP").ok());
  ASSERT_TRUE(pft_.Exec("pftables -A input -o FILE_OPEN -j checks").ok());

  analysis::AnalysisReport before = analysis::AnalyzeEngine(*engine_);
  ASSERT_FALSE(before.empty());  // the island chain at least

  std::string dump = pft_.Save();
  ASSERT_TRUE(pft_.Exec("pftables -F").ok());
  Status s = pft_.Restore(dump);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(pft_.Save(), dump);

  analysis::AnalysisReport after = analysis::AnalyzeEngine(*engine_);
  ASSERT_EQ(before.size(), after.size()) << before.RenderText() << "----\n"
                                         << after.RenderText();
  EXPECT_EQ(before.diagnostics(), after.diagnostics());
}

TEST_F(SaveRestoreTest, CustomModulesRoundTripWithIdenticalDiagnostics) {
  pft_.RegisterMatch("TRIP_OWNER", [](const std::vector<std::string>& opts,
                                      std::unique_ptr<MatchModule>* out) {
    auto m = std::make_unique<TripOwnerMatch>();
    if (opts.size() != 2 || opts[0] != "--uid") {
      return Status::Error("TRIP_OWNER requires --uid N");
    }
    m->uid = static_cast<sim::Uid>(std::stoul(opts[1]));
    *out = std::move(m);
    return Status::Ok();
  });
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -m TRIP_OWNER --uid 1001 -j DROP").ok());
  // And a STATE protocol finding that must survive the trip.
  ASSERT_TRUE(
      pft_.Exec("pftables -o FILE_READ -m STATE --key k --cmp C_INO -j DROP").ok());

  analysis::AnalysisReport before = analysis::AnalyzeEngine(*engine_);

  std::string dump = pft_.Save();
  EXPECT_NE(dump.find("TRIP_OWNER --uid 1001"), std::string::npos) << dump;
  ASSERT_TRUE(pft_.Exec("pftables -F").ok());
  Status s = pft_.Restore(dump);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(pft_.Save(), dump);

  analysis::AnalysisReport after = analysis::AnalyzeEngine(*engine_);
  EXPECT_EQ(before.diagnostics(), after.diagnostics());
}

}  // namespace
}  // namespace pf::core
