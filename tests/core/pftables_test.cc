// Rule language tests: tokenizing, label sets, default matches, module
// options, chain commands, compilation (labels -> sids, paths -> inodes),
// and listing. Includes every rule from paper Table 5 as a parse corpus.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::core {
namespace {

class PftablesTest : public pf::testing::SimTest {
 protected:
  PftablesTest() : engine_(InstallProcessFirewall(kernel())), pft_(engine_) {}

  Engine* engine_;
  Pftables pft_;
};

TEST_F(PftablesTest, TokenizerHandlesQuotes) {
  std::vector<std::string> t;
  ASSERT_TRUE(Pftables::Tokenize("a 'b c' \"d e\"  f", &t).ok());
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[1], "b c");
  EXPECT_EQ(t[2], "d e");
}

TEST_F(PftablesTest, TokenizerRejectsUnterminatedQuote) {
  std::vector<std::string> t;
  Status s = Pftables::Tokenize("-j LOG --msg 'half open", &t);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unterminated single quote"), std::string::npos);

  s = Pftables::Tokenize("-j LOG --msg \"half open", &t);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unterminated double quote"), std::string::npos);

  // And an Exec of such a line fails instead of silently dropping the tail.
  EXPECT_FALSE(pft_.Exec("pftables -o FILE_READ -j LOG --msg 'oops").ok());
}

TEST_F(PftablesTest, AppendsToInputByDefault) {
  ASSERT_TRUE(pft_.Exec("pftables -t filter -o LNK_FILE_READ -d tmp_t -j DROP").ok());
  const Chain* input = engine_->ruleset().filter().Find("input");
  ASSERT_EQ(input->size(), 1u);
  const Rule& r = *input->rules()[0];
  EXPECT_EQ(r.op, sim::Op::kLnkFileRead);
  EXPECT_FALSE(r.object.wildcard);
  EXPECT_FALSE(r.object.negate);
  ASSERT_EQ(r.object.sids.size(), 1u);
  EXPECT_EQ(kernel().labels().Name(r.object.sids[0]), "tmp_t");
  EXPECT_EQ(r.target->Name(), "DROP");
}

TEST_F(PftablesTest, ParsesNegatedLabelSets) {
  ASSERT_TRUE(pft_.Exec("pftables -d ~{lib_t|textrel_shlib_t|httpd_modules_t} -j DROP").ok());
  const Rule& r = *engine_->ruleset().filter().Find("input")->rules()[0];
  EXPECT_TRUE(r.object.negate);
  EXPECT_EQ(r.object.sids.size(), 3u);
  EXPECT_FALSE(r.object.syshigh);
}

TEST_F(PftablesTest, ParsesSyshigh) {
  ASSERT_TRUE(pft_.Exec("pftables -s SYSHIGH -d ~{SYSHIGH} -j DROP").ok());
  const Rule& r = *engine_->ruleset().filter().Find("input")->rules()[0];
  EXPECT_TRUE(r.subject.syshigh);
  EXPECT_FALSE(r.subject.negate);
  EXPECT_TRUE(r.object.syshigh);
  EXPECT_TRUE(r.object.negate);
}

TEST_F(PftablesTest, CompilesProgramToInode) {
  ASSERT_TRUE(
      pft_.Exec("pftables -p /lib/ld-2.15.so -i 0x596b -o FILE_OPEN -j DROP").ok());
  const Rule& r = *engine_->ruleset().filter().Find("input")->rules()[0];
  EXPECT_TRUE(r.has_program());
  EXPECT_EQ(r.program_file, kernel().LookupNoHooks(sim::kLdso)->id());
  EXPECT_EQ(r.entrypoint, 0x596bu);
  EXPECT_TRUE(r.IndexableByEntrypoint());
}

TEST_F(PftablesTest, MissingProgramIsInstallError) {
  Status s = pft_.Exec("pftables -p /no/such/binary -j DROP");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("not found"), std::string::npos);
}

TEST_F(PftablesTest, UnknownOperationRejected) {
  EXPECT_FALSE(pft_.Exec("pftables -o BOGUS_OP -j DROP").ok());
}

TEST_F(PftablesTest, UnknownFlagRejected) {
  EXPECT_FALSE(pft_.Exec("pftables --frobnicate -j DROP").ok());
}

TEST_F(PftablesTest, InsertDeleteFlushChainCommands) {
  ASSERT_TRUE(pft_.Exec("pftables -A input -o FILE_OPEN -j DROP").ok());
  ASSERT_TRUE(pft_.Exec("pftables -I input -o FILE_READ -j DROP").ok());
  const Chain* input = engine_->ruleset().filter().Find("input");
  ASSERT_EQ(input->size(), 2u);
  EXPECT_EQ(input->rules()[0]->op, sim::Op::kFileRead) << "-I inserts at the front";
  ASSERT_TRUE(pft_.Exec("pftables -D input 1").ok());
  ASSERT_EQ(input->size(), 1u);
  EXPECT_EQ(input->rules()[0]->op, sim::Op::kFileOpen);
  ASSERT_TRUE(pft_.Exec("pftables -F input").ok());
  EXPECT_EQ(input->size(), 0u);
  EXPECT_FALSE(pft_.Exec("pftables -D input 1").ok());
}

TEST_F(PftablesTest, NewChainAndJump) {
  ASSERT_TRUE(pft_.Exec("pftables -N signal_chain").ok());
  EXPECT_FALSE(pft_.Exec("pftables -N signal_chain").ok()) << "duplicate chain";
  ASSERT_TRUE(
      pft_.Exec("pftables -I input -o PROCESS_SIGNAL_DELIVERY -j SIGNAL_CHAIN").ok());
  const Rule& r = *engine_->ruleset().filter().Find("input")->rules()[0];
  EXPECT_EQ(r.target->jump_chain(), "signal_chain") << "chain names are case-insensitive";
}

TEST_F(PftablesTest, StateMatchAndTargetOptions) {
  ASSERT_TRUE(pft_.Exec("pftables -i 0x3c750 -p /bin/dbus-daemon -o SOCKET_BIND "
                        "-j STATE --set --key 0xbeef --value C_INO")
                  .ok());
  ASSERT_TRUE(pft_.Exec("pftables -i 0x3c786 -p /bin/dbus-daemon -o SOCKET_SETATTR "
                        "-m STATE --key 0xbeef --cmp C_INO --nequal -j DROP")
                  .ok());
  const Chain* input = engine_->ruleset().filter().Find("input");
  ASSERT_EQ(input->size(), 2u);
  EXPECT_EQ(input->rules()[0]->target->Name(), "STATE");
  ASSERT_EQ(input->rules()[1]->matches.size(), 1u);
  EXPECT_EQ(input->rules()[1]->matches[0]->Name(), "STATE");
}

TEST_F(PftablesTest, BadModuleOptionsRejected) {
  EXPECT_FALSE(pft_.Exec("pftables -m STATE -j DROP").ok()) << "STATE needs --key";
  EXPECT_FALSE(pft_.Exec("pftables -m SYSCALL_ARGS --arg 9 --equal 1 -j DROP").ok());
  EXPECT_FALSE(pft_.Exec("pftables -m COMPARE --v1 C_INO -j DROP").ok());
  EXPECT_FALSE(pft_.Exec("pftables -m NOSUCH -j DROP").ok());
  EXPECT_FALSE(pft_.Exec("pftables -j STATE --key x").ok()) << "target STATE needs --set";
}

TEST_F(PftablesTest, SyscallArgsParsesNrNames) {
  ASSERT_TRUE(pft_.Exec("pftables -I syscallbegin -m SYSCALL_ARGS --arg 0 --equal "
                        "NR_sigreturn -j STATE --set --key 'sig' --value 0")
                  .ok());
  const Chain* begin = engine_->ruleset().filter().Find("syscallbegin");
  ASSERT_EQ(begin->size(), 1u);
}

TEST_F(PftablesTest, CommentsAndAnnotationsIgnored) {
  EXPECT_TRUE(pft_.Exec("# only allow trusted libraries").ok());
  EXPECT_TRUE(pft_.Exec("* Disallow following links in temp filesystems.").ok());
  EXPECT_TRUE(pft_.Exec("").ok());
  EXPECT_EQ(engine_->ruleset().total_rules(), 0u);
}

TEST_F(PftablesTest, ParsesEveryTable5Rule) {
  // The full rule corpus from paper Table 5 (R1-R12), verbatim except that
  // binaries resolve against the simulated image.
  std::vector<std::string> rules = {
      "pftables -p /lib/ld-2.15.so -i 0x596b -s SYSHIGH "
      "-d ~{lib_t|textrel_shlib_t|httpd_modules_t} -o FILE_OPEN -j DROP",
      "pftables -p /usr/bin/python2.7 -i 0x34f05 -s SYSHIGH -d ~{lib_t|usr_t} "
      "-o FILE_OPEN -j DROP",
      "pftables -p /lib/libdbus-1.so.3 -i 0x39231 -s SYSHIGH "
      "-d ~{system_dbusd_var_run_t} -o UNIX_STREAM_SOCKET_CONNECT -j DROP",
      "pftables -p /usr/bin/php5 -i 0x27ad2c -s SYSHIGH "
      "-d ~{httpd_user_script_exec_t} -o FILE_OPEN -j DROP",
      "pftables -i 0x3c750 -p /bin/dbus-daemon -o SOCKET_BIND -j STATE --set "
      "--key 0xbeef --value C_INO",
      "pftables -i 0x3c786 -p /bin/dbus-daemon -o SOCKET_SETATTR -m STATE "
      "--key 0xbeef --cmp C_INO --nequal -j DROP",
      "pftables -i 0x5d7e -p /usr/bin/java -d ~{SYSHIGH} -o FILE_OPEN -j DROP",
      "pftables -i 0x2d637 -p /usr/bin/apache2 -o LINK_READ -m COMPARE "
      "--v1 C_DAC_OWNER --v2 C_TGT_DAC_OWNER --nequal -j DROP",
      "pftables -I input -o PROCESS_SIGNAL_DELIVERY -j SIGNAL_CHAIN",
      "pftables -I signal_chain -m SIGNAL_MATCH -m STATE --key 'sig' --cmp 1 -j DROP",
      "pftables -I signal_chain -m SIGNAL_MATCH -j STATE --set --key 'sig' --value 1",
      "pftables -I syscallbegin -m SYSCALL_ARGS --arg 0 --equal NR_sigreturn "
      "-j STATE --set --key 'sig' --value 0",
  };
  Status s = pft_.ExecAll(rules);
  EXPECT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(engine_->ruleset().total_rules(), 12u);
}

TEST_F(PftablesTest, ListRendersRules) {
  ASSERT_TRUE(pft_.Exec("pftables -o FILE_OPEN -d tmp_t -j DROP").ok());
  std::string listing = pft_.List();
  EXPECT_NE(listing.find("Chain input"), std::string::npos);
  EXPECT_NE(listing.find("FILE_OPEN"), std::string::npos);
  EXPECT_NE(listing.find("tmp_t"), std::string::npos);
  EXPECT_NE(listing.find("DROP"), std::string::npos);
}

TEST_F(PftablesTest, EntrypointIndexBuilt) {
  ASSERT_TRUE(pft_.Exec("pftables -p /usr/bin/php5 -i 0x27ad2c -o FILE_OPEN -j DROP").ok());
  ASSERT_TRUE(pft_.Exec("pftables -o LNK_FILE_READ -d tmp_t -j DROP").ok());
  const Chain* input = engine_->ruleset().filter().Find("input");
  ASSERT_TRUE(input->index_built());
  EXPECT_EQ(input->indexed_entrypoints(), 1u);
  EXPECT_EQ(input->plain_rules().size(), 1u);
}

TEST_F(PftablesTest, MangleTableIsSeparate) {
  ASSERT_TRUE(pft_.Exec("pftables -t mangle -o FILE_OPEN -j DROP").ok());
  EXPECT_EQ(engine_->ruleset().filter().total_rules(), 0u);
  EXPECT_EQ(engine_->ruleset().mangle().total_rules(), 1u);
  EXPECT_FALSE(pft_.Exec("pftables -t bogus -o FILE_OPEN -j DROP").ok());
}

}  // namespace
}  // namespace pf::core
