// The cryogenic-sleep arms race (Kirch's attack, paper §2.1) and the C_GEN
// extension.
//
// Userspace check/use comparisons are limited to what stat exposes:
// (dev, ino). If the victim holds no descriptor, the inode number recycles
// and a swapped-in file is indistinguishable. A STATE rule keyed on C_INO
// inherits that limit; C_GEN — the kernel's generation counter, which
// userspace cannot query — closes it. This is the paper's broader point in
// miniature: system-only knowledge, unavailable through the syscall API,
// is exactly what the Process Firewall can bring to per-call invariants.

#include <gtest/gtest.h>

#include "src/apps/entrypoints.h"
#include "src/apps/programs.h"
#include "src/apps/rule_library.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::core {
namespace {

using sim::Pid;
using sim::Proc;

class GenerationTest : public pf::testing::SimTest {
 protected:
  GenerationTest() : engine_(InstallProcessFirewall(kernel())), pft_(engine_) {
    apps::InstallPrograms(kernel());
    kernel().MkFileAt("/tmp/drop", "benign", 0666, sim::kMalloryUid, sim::kMalloryUid,
                      "tmp_t");
  }

  // Victim: lstat-check then open-use, pausing in between. The adversary
  // performs the cryogenic-sleep swap: unlink, then recreate so that the
  // recycled file has the SAME inode number but malicious content.
  // Returns what the victim read ("" if the open was denied).
  std::string RunCryogenicSleep() {
    std::string read_back;
    Pid victim = sched().Spawn({.name = "victim", .exe = sim::kBinTrue}, [&](Proc& p) {
      sim::StatBuf st;
      {
        sim::UserFrame check(p, sim::kBinTrue, apps::kSafeOpenCheck);
        ASSERT_EQ(p.Lstat("/tmp/drop", &st), 0);
      }
      p.Checkpoint("sleeping");  // the "cryogenic sleep"
      sim::UserFrame use(p, sim::kBinTrue, apps::kSafeOpenUse);
      int64_t fd = p.Open("/tmp/drop", sim::kORdOnly);
      if (fd >= 0) {
        p.Read(static_cast<int>(fd), &read_back, 4096);
      }
    });
    EXPECT_TRUE(sched().RunUntilLabel(victim, "sleeping"));
    Pid mallory = sched().Spawn(
        {.name = "mallory", .cred = UserCred(sim::kMalloryUid)}, [](Proc& p) {
          p.Unlink("/tmp/drop");
          // Recreate immediately: the freed inode number is recycled.
          int64_t fd = p.Open("/tmp/drop", sim::kOWrOnly | sim::kOCreat, 0666);
          p.Write(static_cast<int>(fd), "MALICIOUS");
          p.Close(static_cast<int>(fd));
        });
    sched().RunUntilExit(mallory);
    sched().RunUntilExit(victim);
    return read_back;
  }

  Engine* engine_;
  Pftables pft_;
};

TEST_F(GenerationTest, InodeNumberInvariantIsDefeatedByRecycling) {
  // The paper's T2 rule compares C_INO — and the recycled inode number
  // matches, so the swap goes unnoticed. (Figure 1(a)'s program checks have
  // the same blind spot unless the file is held open.)
  ASSERT_TRUE(pft_.ExecAll(apps::RuleLibrary::TemplateT2(
                               sim::kBinTrue, apps::kSafeOpenCheck, apps::kSafeOpenUse,
                               "FILE_GETATTR", "FILE_OPEN", "drop"))
                  .ok());
  EXPECT_EQ(RunCryogenicSleep(), "MALICIOUS")
      << "inode numbers alone cannot distinguish the recycled file";
}

TEST_F(GenerationTest, GenerationInvariantSurvivesRecycling) {
  // Same template shape, but keyed on the kernel's generation counter.
  ASSERT_TRUE(pft_.ExecAll({
                      "pftables -I input -i 0x9100 -p /bin/true -o FILE_GETATTR "
                      "-j STATE --set --key drop --value C_GEN",
                      "pftables -I input -i 0x9200 -p /bin/true -o FILE_OPEN "
                      "-m STATE --key drop --cmp C_GEN --nequal -j DROP",
                  })
                  .ok());
  EXPECT_EQ(RunCryogenicSleep(), "")
      << "the generation changes on recycling: the use is denied";
}

TEST_F(GenerationTest, GenerationInvariantHasNoFalsePositives) {
  ASSERT_TRUE(pft_.ExecAll({
                      "pftables -I input -i 0x9100 -p /bin/true -o FILE_GETATTR "
                      "-j STATE --set --key drop --value C_GEN",
                      "pftables -I input -i 0x9200 -p /bin/true -o FILE_OPEN "
                      "-m STATE --key drop --cmp C_GEN --nequal -j DROP",
                  })
                  .ok());
  std::string read_back;
  Pid calm = sched().Spawn({.name = "calm", .exe = sim::kBinTrue}, [&](Proc& p) {
    sim::StatBuf st;
    {
      sim::UserFrame check(p, sim::kBinTrue, apps::kSafeOpenCheck);
      ASSERT_EQ(p.Lstat("/tmp/drop", &st), 0);
    }
    sim::UserFrame use(p, sim::kBinTrue, apps::kSafeOpenUse);
    int64_t fd = p.Open("/tmp/drop", sim::kORdOnly);
    ASSERT_GE(fd, 0);
    p.Read(static_cast<int>(fd), &read_back, 4096);
  });
  sched().RunUntilExit(calm);
  EXPECT_EQ(read_back, "benign");
}

TEST_F(GenerationTest, GenerationIsNotExposedToUserspace) {
  // stat must not leak the generation: the defense genuinely requires the
  // kernel vantage point.
  Pid pid = sched().Spawn({.exe = sim::kBinTrue}, [](Proc& p) {
    sim::StatBuf st;
    ASSERT_EQ(p.Stat("/tmp/drop", &st), 0);
    // StatBuf carries dev/ino/mode/uid/... but no generation field; this
    // compiles only while that stays true (the assertion is the API shape).
    EXPECT_GT(st.ino, 0u);
  });
  sched().RunUntilExit(pid);
}

}  // namespace
}  // namespace pf::core
