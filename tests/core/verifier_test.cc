// Load-time verifier (src/core/verify.h) tests: a corpus of hand-corrupted
// arena programs — each corruption targeting one invariant the verifier must
// prove — asserting the exact diagnostic code and rule locus, plus the
// property that every program the lowering pipeline produces (across all
// fuzz generator flavors) verifies clean, so the engine's mandatory commit
// gate can never reject a legitimately compiled rule base.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/programs.h"
#include "src/apps/rule_library.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/core/program.h"
#include "src/core/verify.h"
#include "src/sim/sysimage.h"
#include "tests/core/fuzz_rules.h"

namespace pf::core {
namespace {

using analysis::Diagnostic;
using analysis::Severity;

// A booted system with a compiled snapshot of `rules`. The kernel owns the
// engine; the snapshot shares Rule/module objects with it, so everything
// must stay alive together.
struct Compiled {
  std::unique_ptr<sim::Kernel> kernel;
  Engine* engine = nullptr;
  std::unique_ptr<Pftables> pft;
  std::unique_ptr<uint64_t> count_fires = std::make_unique<uint64_t>(0);
  std::shared_ptr<CompiledRuleset> snap;
};

Compiled Build(const std::vector<std::string>& rules) {
  Compiled c;
  c.kernel = std::make_unique<sim::Kernel>(0x5eed);
  sim::BuildSysImage(*c.kernel);
  apps::InstallPrograms(*c.kernel);
  c.engine = InstallProcessFirewall(*c.kernel);
  c.pft = std::make_unique<Pftables>(c.engine);
  fuzzgen::RegisterFuzzModules(*c.pft, c.count_fires.get());
  Status s = c.pft->ExecAll(rules);
  if (!s.ok()) {
    ADD_FAILURE() << "rule install failed: " << s.message();
    return c;
  }
  c.snap = c.engine->CompileRuleset();
  return c;
}

// A small deterministic base containing at least one instance of every
// instruction the corruption corpus pokes at: MATCH_SUBJECT (labelset),
// JUMP, STATE match/set, the native escapes, and LOG.
std::vector<std::string> CorpusRules() {
  return {
      "pftables -N aux",
      "pftables -A input -s staff_t -j aux",
      "pftables -A aux -m STATE --key k --cmp 1 -j DROP",
      "pftables -A aux -j STATE --set --key k --value 2",
      "pftables -A input -m ODD_INO -j COUNT",
      "pftables -A output -d etc_t -j LOG --prefix v",
  };
}

// Re-encodes one instruction into the arena copy under corruption.
void Patch(PfProgram& prog, uint32_t pc, const PfInsn& insn) {
  std::memcpy(prog.arena.data() + pc, &insn, sizeof(insn));
}

// First (record index, arena pc) whose fetched opcode is `op`.
std::optional<std::pair<uint32_t, uint32_t>> FindOp(const PfProgram& prog, PfOp op) {
  for (uint32_t i = 0; i < prog.rules.size(); ++i) {
    const RuleRecord& rec = prog.rules[i];
    for (uint32_t pc = rec.entry; pc < rec.end; pc += kPfInsnWords) {
      if (static_cast<PfOp>(prog.Fetch(pc).op) == op) {
        return std::make_pair(i, pc);
      }
    }
  }
  return std::nullopt;
}

// The locus the verifier must report for record `rec_idx`.
std::string LocusOf(const PfProgram& prog, uint32_t rec_idx) {
  const RuleRecord& rec = prog.rules[rec_idx];
  return "filter/" + prog.chains[static_cast<size_t>(rec.chain_id)].name + ":" +
         std::to_string(rec.chain_index + 1);
}

const Diagnostic* FindDiag(const analysis::AnalysisReport& report,
                           const std::string& code) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.code == code) {
      return &d;
    }
  }
  return nullptr;
}

// Corrupts the instruction found by `op`, expecting exactly one way to fail:
// the given code at the record's own locus.
void ExpectRejects(PfProgram prog, PfOp op, const char* code,
                   void (*mutate)(PfInsn&, const PfProgram&)) {
  auto found = FindOp(prog, op);
  ASSERT_TRUE(found.has_value()) << "corpus lacks opcode " << static_cast<int>(op);
  PfInsn insn = prog.Fetch(found->second);
  mutate(insn, prog);
  Patch(prog, found->second, insn);

  VerifyResult vr = VerifyProgram(prog);
  EXPECT_FALSE(vr.ok()) << "corruption of op " << static_cast<int>(op)
                        << " was not rejected";
  const Diagnostic* d = FindDiag(vr.report, code);
  ASSERT_NE(d, nullptr) << "missing " << code << " diagnostic:\n"
                        << vr.report.RenderText();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->locus.Render(), LocusOf(prog, found->first))
      << "diagnostic not pinned to the corrupted record:\n"
      << vr.report.RenderText();
}

// --- the clean cases ---------------------------------------------------------

TEST(VerifierTest, ShippedLibraryVerifiesClean) {
  Compiled c = Build(apps::RuleLibrary::DefaultRuleBase());
  ASSERT_NE(c.snap, nullptr);
  EXPECT_TRUE(c.snap->verified);
  EXPECT_TRUE(c.snap->verify_report.empty())
      << c.snap->verify_report.RenderText();
  EXPECT_GT(c.snap->verify_ns, 0u);

  VerifyResult vr = VerifyProgram(c.snap->program);
  EXPECT_TRUE(vr.ok());
  EXPECT_TRUE(vr.report.empty()) << vr.report.RenderText();
}

TEST(VerifierTest, CorpusBaseVerifiesCleanBeforeCorruption) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  EXPECT_TRUE(c.snap->verified);
  VerifyResult vr = VerifyProgram(c.snap->program);
  EXPECT_TRUE(vr.report.empty()) << vr.report.RenderText();
}

// Property: every program the fuzz generators can produce — all five
// flavors — compiles to a program the verifier accepts, and the only
// findings it may raise are the deep-jumps flavor's intentional
// depth-exceeded warnings (its last chain sits past the runtime cutoff).
TEST(VerifierTest, EveryFuzzGeneratedProgramVerifies) {
  for (uint64_t seed = 0xf002; seed < 0xf002 + 10; ++seed) {
    std::mt19937_64 rng(seed);
    Compiled c = Build(fuzzgen::RandomRules(rng, fuzzgen::FlavorForSeed(seed)));
    ASSERT_NE(c.snap, nullptr) << "seed " << seed;
    EXPECT_TRUE(c.snap->verified) << "seed " << seed << ":\n"
                                  << c.snap->verify_report.RenderText();
    for (const Diagnostic& d : c.snap->verify_report.diagnostics()) {
      EXPECT_EQ(d.code, "depth-exceeded") << "seed " << seed;
      EXPECT_EQ(d.severity, Severity::kWarning) << "seed " << seed;
    }
  }
}

// --- the corruption corpus ---------------------------------------------------

TEST(VerifierTest, RejectsOutOfBoundsLabelSetRef) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  ExpectRejects(c.snap->program, PfOp::kMatchSubject, "pool-oob",
                [](PfInsn& insn, const PfProgram& prog) {
                  insn.a = static_cast<uint32_t>(prog.labelsets.size()) + 7;
                });
}

TEST(VerifierTest, RejectsOutOfBoundsStateOperand) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  // The STATE --cmp rule lowers to the specialized kMatchStateEq form.
  ExpectRejects(c.snap->program, PfOp::kMatchStateEq, "pool-oob",
                [](PfInsn& insn, const PfProgram& prog) {
                  insn.b = prog.operands.size() + 3;
                });
}

TEST(VerifierTest, RejectsUnresolvedJumpTarget) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  ExpectRejects(c.snap->program, PfOp::kJump, "jump-target-oob",
                [](PfInsn& insn, const PfProgram& prog) {
                  insn.a = static_cast<uint32_t>(prog.chains.size()) + 3;
                });
}

TEST(VerifierTest, RejectsStoreOutsideStateSlots) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  ExpectRejects(c.snap->program, PfOp::kStateSet, "state-slot-oob",
                [](PfInsn& insn, const PfProgram& prog) {
                  insn.a = static_cast<uint32_t>(prog.strings.size()) + 1;
                });
}

TEST(VerifierTest, RejectsBadNativeMatchIndex) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  ExpectRejects(c.snap->program, PfOp::kMatchNative, "native-oob",
                [](PfInsn& insn, const PfProgram& prog) {
                  insn.a = static_cast<uint32_t>(prog.native_matches.size());
                });
}

TEST(VerifierTest, RejectsBadNativeTargetIndex) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  ExpectRejects(c.snap->program, PfOp::kTargetNative, "native-oob",
                [](PfInsn& insn, const PfProgram& prog) {
                  insn.a = static_cast<uint32_t>(prog.native_targets.size());
                });
}

TEST(VerifierTest, RejectsBadOpcode) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  ExpectRejects(c.snap->program, PfOp::kLog, "bad-opcode",
                [](PfInsn& insn, const PfProgram&) { insn.op = 0xee; });
}

TEST(VerifierTest, RejectsTruncatedArena) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  PfProgram prog = c.snap->program;
  ASSERT_FALSE(prog.arena.empty());
  prog.arena.pop_back();  // last record now runs past the arena end

  VerifyResult vr = VerifyProgram(prog);
  EXPECT_FALSE(vr.ok());
  const Diagnostic* d = FindDiag(vr.report, "arena-truncated");
  ASSERT_NE(d, nullptr) << vr.report.RenderText();
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(VerifierTest, RejectsChainTableOutOfBounds) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  PfProgram prog = c.snap->program;
  ASSERT_FALSE(prog.entries.empty());
  prog.entries[0] = static_cast<uint32_t>(prog.rules.size()) + 11;

  VerifyResult vr = VerifyProgram(prog);
  EXPECT_FALSE(vr.ok());
  const Diagnostic* d = FindDiag(vr.report, "chain-table-oob");
  ASSERT_NE(d, nullptr) << vr.report.RenderText();
  EXPECT_EQ(d->severity, Severity::kError);
  // Chain-table findings are chain-level, not record-level: the locus names
  // the owning chain with no rule position.
  EXPECT_EQ(d->locus.pos, 0) << d->locus.Render();
  EXPECT_FALSE(d->locus.chain.empty());
}

// --- classifier proofs -------------------------------------------------------

// First bucket with a live classifier matching `pred`.
template <typename Pred>
ProgramBucket* FindBucket(PfProgram& prog, Pred pred) {
  for (ProgramChain& chain : prog.chains) {
    for (ProgramBucket& b : chain.ops) {
      if (b.has_classifier && pred(b)) {
        return &b;
      }
    }
  }
  return nullptr;
}

void ExpectClassifierDiag(const PfProgram& prog, const char* code) {
  VerifyResult vr = VerifyProgram(prog);
  EXPECT_FALSE(vr.ok()) << "corrupted classifier was accepted";
  const Diagnostic* d = FindDiag(vr.report, code);
  ASSERT_NE(d, nullptr) << "missing " << code << " diagnostic:\n"
                        << vr.report.RenderText();
  EXPECT_EQ(d->severity, Severity::kError);
  // Classifier findings are chain-level (the bucket has no single rule).
  EXPECT_EQ(d->locus.pos, 0) << d->locus.Render();
  EXPECT_FALSE(d->locus.chain.empty());
}

TEST(VerifierTest, RejectsClassifierResidualSliceOutOfBounds) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  PfProgram prog = c.snap->program;
  ProgramBucket* b =
      FindBucket(prog, [](const ProgramBucket& pb) { return pb.residual_len > 0; });
  ASSERT_NE(b, nullptr) << "corpus produced no classifier residual";
  b->residual_off = static_cast<uint32_t>(prog.entries.size());
  ExpectClassifierDiag(prog, "classifier-oob");
}

TEST(VerifierTest, RejectsClassifierTupleCountBeyondMaskLimit) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  PfProgram prog = c.snap->program;
  // The evaluator merges into a fixed array of kTupleMaskLimit + 1 active
  // slices; a count past that (or past the table pool) must be rejected
  // before dispatch, not discovered by an overrun.
  ProgramBucket* b =
      FindBucket(prog, [](const ProgramBucket& pb) { return pb.tuple_cnt > 0; });
  ASSERT_NE(b, nullptr) << "corpus produced no tuple tables (exact-dim rules missing?)";
  b->tuple_cnt = kTupleMaskLimit + 1;
  ExpectClassifierDiag(prog, "classifier-oob");
}

TEST(VerifierTest, RejectsClassifierSlotCountNotPowerOfTwo) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  PfProgram prog = c.snap->program;
  const ProgramBucket* b =
      FindBucket(prog, [](const ProgramBucket& pb) { return pb.tuple_cnt > 0; });
  ASSERT_NE(b, nullptr);
  // The probe's wrap-around masks with slot_count - 1; anything that is not
  // a power of two would silently alias slots.
  prog.tuple_tables[b->tuple_off].slot_count += 1;
  ExpectClassifierDiag(prog, "classifier-oob");
}

TEST(VerifierTest, RejectsClassifierDroppingARuleFromCoverage) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  PfProgram prog = c.snap->program;
  // Shrinking the residual by one rule keeps every slice in bounds but
  // leaves a rule the scan would evaluate unreachable by any probe — the
  // exactly-once coverage proof must catch it.
  ProgramBucket* b =
      FindBucket(prog, [](const ProgramBucket& pb) { return pb.residual_len > 0; });
  ASSERT_NE(b, nullptr);
  b->residual_len -= 1;
  ExpectClassifierDiag(prog, "classifier-coverage");
}

TEST(VerifierTest, RejectsClassifierDoubleCoveringARule) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  PfProgram prog = c.snap->program;
  // Pointing an occupied tuple slot at the bucket's full `all` slice keeps
  // everything in bounds but double-covers whatever the residual already
  // holds — a probe hitting that key would evaluate rules twice, so the
  // multiset comparison must reject it.
  const ProgramBucket* b = FindBucket(prog, [](const ProgramBucket& pb) {
    return pb.tuple_cnt > 0 && pb.all_len > 0;
  });
  ASSERT_NE(b, nullptr);
  const TupleTable& t = prog.tuple_tables[b->tuple_off];
  TupleSlot* slot = nullptr;
  for (uint32_t s = 0; s < t.slot_count; ++s) {
    if (prog.tuple_slots[t.slot_off + s].len > 0) {
      slot = &prog.tuple_slots[t.slot_off + s];
      break;
    }
  }
  ASSERT_NE(slot, nullptr) << "occupied tuple table has no occupied slot";
  slot->off = b->all_off;
  slot->len = b->all_len;
  ExpectClassifierDiag(prog, "classifier-coverage");
}

// --- automaton-table proofs --------------------------------------------------
//
// The corpus STATE rules (match k==1, set k=2 on the input/aux buckets) lower
// to one single-key protocol, so every corruption below has a live table to
// poke at. Automaton findings are table-level: locus "(automata)" (or the
// chain for bucket-classification findings), no rule position.

void ExpectAutomatonDiag(const PfProgram& prog, const char* code) {
  VerifyResult vr = VerifyProgram(prog);
  EXPECT_FALSE(vr.ok()) << "corrupted automaton table was accepted";
  const Diagnostic* d = FindDiag(vr.report, code);
  ASSERT_NE(d, nullptr) << "missing " << code << " diagnostic:\n"
                        << vr.report.RenderText();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->locus.pos, 0) << d->locus.Render();
}

// First key of the first protocol — the corpus guarantees one exists.
AutomatonKey* FirstKey(PfProgram& prog) {
  if (prog.automaton_protocols.empty()) {
    return nullptr;
  }
  return &prog.automaton_keys[prog.automaton_protocols[0].key_off];
}

TEST(VerifierTest, CorpusLowersAStateProtocolAndVerifiesClean) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  const PfProgram& prog = c.snap->program;
  ASSERT_TRUE(prog.automata_built);
  ASSERT_FALSE(prog.automaton_protocols.empty())
      << "corpus STATE rules on key k did not lower";
  const AutomatonKey& ak = prog.automaton_keys[prog.automaton_protocols[0].key_off];
  EXPECT_GE(ak.value_cnt, 2u) << "literals 1 and 2 must both be in the domain";
  EXPECT_EQ(ak.radix, ak.value_cnt + 2) << "absent + literals + other";
  VerifyResult vr = VerifyProgram(prog);
  EXPECT_TRUE(vr.ok()) << vr.report.RenderText();
}

TEST(VerifierTest, RejectsAutomatonValueSliceOutOfPool) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  PfProgram prog = c.snap->program;
  AutomatonKey* ak = FirstKey(prog);
  ASSERT_NE(ak, nullptr);
  // A value slice past the pool would make the fold read foreign memory to
  // map a dictionary value onto a digit (transition-table out of bounds).
  ak->value_off = static_cast<uint32_t>(prog.automaton_values.size()) + 7;
  ExpectAutomatonDiag(prog, "automaton-oob");
}

TEST(VerifierTest, RejectsAutomatonKeyNameOutOfStringPool) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  PfProgram prog = c.snap->program;
  AutomatonKey* ak = FirstKey(prog);
  ASSERT_NE(ak, nullptr);
  ak->name = static_cast<uint32_t>(prog.strings.size()) + 1;
  ExpectAutomatonDiag(prog, "automaton-oob");
}

TEST(VerifierTest, RejectsNonTotalTransitionFunction) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  PfProgram prog = c.snap->program;
  AutomatonKey* ak = FirstKey(prog);
  ASSERT_NE(ak, nullptr);
  // radix < value_cnt + 2 leaves some dictionary value (or "absent") with no
  // digit of its own: the transition function is not total and two distinct
  // dictionaries would fold onto one state.
  ak->radix -= 1;
  ExpectAutomatonDiag(prog, "automaton-malformed");
}

TEST(VerifierTest, WarnsOnDeadAutomatonStates) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  PfProgram prog = c.snap->program;
  ASSERT_FALSE(prog.automaton_protocols.empty());
  AutomatonProtocol& proto = prog.automaton_protocols[0];
  ASSERT_EQ(proto.key_cnt, 1u) << "dead-state rig assumes a single-key protocol";
  AutomatonKey& ak = prog.automaton_keys[proto.key_off];
  // A surplus digit names states no dictionary can reach: wasted key space,
  // not a soundness hole — the commit gate must keep accepting the program.
  ak.radix += 1;
  proto.state_count = ak.radix;
  VerifyResult vr = VerifyProgram(prog);
  EXPECT_TRUE(vr.ok()) << vr.report.RenderText();
  const Diagnostic* d = FindDiag(vr.report, "automaton-dead");
  ASSERT_NE(d, nullptr) << vr.report.RenderText();
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(VerifierTest, RejectsUnsortedLiteralDomain) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  PfProgram prog = c.snap->program;
  AutomatonKey* ak = FirstKey(prog);
  ASSERT_NE(ak, nullptr);
  ASSERT_GE(ak->value_cnt, 2u);
  // The fold binary-searches the literal domain; an out-of-order (or
  // duplicate) literal aliases two digits and makes the encoding ambiguous.
  std::swap(prog.automaton_values[ak->value_off],
            prog.automaton_values[ak->value_off + 1]);
  ExpectAutomatonDiag(prog, "automaton-unsound");
}

TEST(VerifierTest, RejectsAutomatonStrideMismatch) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  PfProgram prog = c.snap->program;
  AutomatonKey* ak = FirstKey(prog);
  ASSERT_NE(ak, nullptr);
  // Strides must be the running radix product (mixed-radix place values);
  // anything else folds two dictionaries onto one state number.
  ak->stride += 1;
  ExpectAutomatonDiag(prog, "automaton-malformed");
}

TEST(VerifierTest, RejectsAutomatonStateCountMismatch) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  PfProgram prog = c.snap->program;
  ASSERT_FALSE(prog.automaton_protocols.empty());
  prog.automaton_protocols[0].state_count += 1;
  ExpectAutomatonDiag(prog, "automaton-malformed");
}

TEST(VerifierTest, RejectsBucketCitingPhantomProtocol) {
  Compiled c = Build(CorpusRules());
  ASSERT_NE(c.snap, nullptr);
  PfProgram prog = c.snap->program;
  ProgramBucket* b = nullptr;
  for (ProgramChain& chain : prog.chains) {
    for (ProgramBucket& pb : chain.ops) {
      if (pb.astate.causes == 0 && !pb.astate.protocols.empty()) {
        b = &pb;
        break;
      }
    }
    if (b != nullptr) {
      break;
    }
  }
  ASSERT_NE(b, nullptr) << "corpus produced no state-cacheable bucket";
  // A state-cacheable bucket citing a protocol outside the table would fold
  // garbage into the verdict key.
  b->astate.protocols[0] =
      static_cast<uint32_t>(prog.automaton_protocols.size()) + 2;
  ExpectAutomatonDiag(prog, "automaton-unsound");
}

// --- depth semantics ---------------------------------------------------------

// The deep-jumps generator builds a nest of exactly kMaxChainDepth chains;
// the last one is entered at the runtime cutoff and never executes. That is
// a reachability wart, not a safety hole: warning by default (the commit
// gate must keep accepting such bases), error only under strict_depth.
TEST(VerifierTest, OverDepthChainWarnsByDefaultErrorsUnderStrict) {
  std::mt19937_64 rng(0xd0);
  Compiled c = Build(fuzzgen::RandomRules(rng, fuzzgen::Flavor::kDeepJumps));
  ASSERT_NE(c.snap, nullptr);
  const std::string last_chain = "d" + std::to_string(kMaxChainDepth);

  VerifyResult lax = VerifyProgram(c.snap->program);
  EXPECT_TRUE(lax.ok()) << lax.report.RenderText();
  const Diagnostic* warn = FindDiag(lax.report, "depth-exceeded");
  ASSERT_NE(warn, nullptr) << lax.report.RenderText();
  EXPECT_EQ(warn->severity, Severity::kWarning);
  EXPECT_EQ(warn->locus.Render(), "filter/" + last_chain);

  VerifyOptions strict;
  strict.strict_depth = true;
  VerifyResult hard = VerifyProgram(c.snap->program, strict);
  EXPECT_FALSE(hard.ok());
  const Diagnostic* err = FindDiag(hard.report, "depth-exceeded");
  ASSERT_NE(err, nullptr) << hard.report.RenderText();
  EXPECT_EQ(err->severity, Severity::kError);
  EXPECT_EQ(err->locus.Render(), "filter/" + last_chain);
}

}  // namespace
}  // namespace pf::core
