// Verdict-equivalence sweep: for every optimization configuration and a
// range of rule-base sizes, the engine must produce identical allow/deny
// decisions on a fixed probe workload. This is the correctness counterpart
// of the ablation performance benchmarks.

#include <gtest/gtest.h>

#include "src/apps/rule_library.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sched.h"
#include "src/sim/sysimage.h"

namespace pf::core {
namespace {

using sim::Pid;
using sim::Proc;

struct SweepParam {
  int rule_count;
  bool lazy;
  bool cache;
  bool ept;
};

class VerdictSweep : public ::testing::TestWithParam<SweepParam> {};

// Generates `count` synthetic entrypoint rules plus a handful of probe
// rules whose outcomes we assert.
std::vector<std::string> BuildRules(int count) {
  std::vector<std::string> rules;
  for (int i = 0; i < count; ++i) {
    rules.push_back("pftables -p /bin/false -i 0x" + std::to_string(0x9000 + i * 8) +
                    " -o FILE_OPEN -j DROP");
  }
  rules.push_back("pftables -p /bin/true -i 0xaaaa -o FILE_OPEN -d shadow_t -j DROP");
  rules.push_back("pftables -o LNK_FILE_READ -d tmp_t -j DROP");
  rules.push_back("pftables -o FILE_OPEN -d var_log_t -j DROP");
  return rules;
}

TEST_P(VerdictSweep, DecisionsIndependentOfConfigAndScale) {
  const SweepParam& param = GetParam();
  sim::Kernel kernel(0x5107 + static_cast<uint64_t>(param.rule_count));
  sim::BuildSysImage(kernel);
  Engine* engine = InstallProcessFirewall(kernel);
  engine->config().lazy_context = param.lazy;
  engine->config().cache_context = param.cache;
  engine->config().ept_chains = param.ept;
  Pftables pft(engine);
  ASSERT_TRUE(pft.ExecAll(BuildRules(param.rule_count)).ok());
  kernel.MkSymlinkAt("/tmp/ln", "/etc/passwd", sim::kMalloryUid, sim::kMalloryUid,
                     "tmp_t");
  kernel.MkFileAt("/var/log/x.log", "", 0644, 0, 0, "var_log_t");
  sim::Scheduler sched(kernel);

  Pid pid = sched.Spawn({.name = "probe", .exe = sim::kBinTrue}, [](Proc& p) {
    // 1. Entrypoint + label rule fires only at the right call site/label.
    {
      sim::UserFrame f(p, sim::kBinTrue, 0xaaaa);
      if (p.Open("/etc/shadow", sim::kORdOnly) != sim::SysError(sim::Err::kAcces)) {
        p.Exit(1);
      }
      if (p.Open("/etc/passwd", sim::kORdOnly) < 0) {
        p.Exit(2);
      }
    }
    if (p.Open("/etc/shadow", sim::kORdOnly) < 0) {
      p.Exit(3);  // no frame: rule must not fire
    }
    // 2. Plain op/label rules.
    if (p.Open("/tmp/ln", sim::kORdOnly) != sim::SysError(sim::Err::kAcces)) {
      p.Exit(4);
    }
    if (p.Open("/var/log/x.log", sim::kORdOnly) != sim::SysError(sim::Err::kAcces)) {
      p.Exit(5);
    }
    // 3. Unrelated access unaffected at any scale.
    if (p.Open("/var/www/index.html", sim::kORdOnly) < 0) {
      p.Exit(6);
    }
    p.Exit(0);
  });
  EXPECT_EQ(sched.RunUntilExit(pid), 0);
}

std::vector<SweepParam> AllParams() {
  std::vector<SweepParam> out;
  for (int count : {0, 1, 16, 128, 1024}) {
    out.push_back({count, true, true, true});    // EPTSPC
    out.push_back({count, true, true, false});   // LAZYCON
    out.push_back({count, false, true, false});  // CONCACHE
    out.push_back({count, false, false, false}); // FULL
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Scale, VerdictSweep, ::testing::ValuesIn(AllParams()),
                         [](const auto& info) {
                           const SweepParam& p = info.param;
                           return "rules" + std::to_string(p.rule_count) +
                                  (p.ept ? "_eptspc"
                                   : p.lazy ? "_lazycon"
                                   : p.cache ? "_concache"
                                             : "_full");
                         });

}  // namespace
}  // namespace pf::core
