// Chain default policies (-P): whitelist deployments where unmatched
// accesses are denied, and Save() round trips of policies.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"
#include "tests/testutil.h"

namespace pf::core {
namespace {

using sim::Pid;
using sim::Proc;

class PolicyTest : public pf::testing::SimTest {
 protected:
  PolicyTest() : engine_(InstallProcessFirewall(kernel())), pft_(engine_) {}

  int Run(std::function<void(Proc&)> body) {
    Pid pid = sched().Spawn({.name = "probe", .exe = sim::kBinTrue}, std::move(body));
    return sched().RunUntilExit(pid);
  }

  Engine* engine_;
  Pftables pft_;
};

TEST_F(PolicyTest, DefaultPolicyIsAccept) {
  const Chain* input = engine_->ruleset().filter().Find("input");
  EXPECT_EQ(input->policy(), Chain::Policy::kAccept);
  Run([](Proc& p) { EXPECT_GE(p.Open("/etc/passwd", sim::kORdOnly), 0); });
}

TEST_F(PolicyTest, OutputDropPolicyMakesWritesWhitelisted) {
  // Whitelist: only tmp_t writes are allowed, everything else write-like
  // is denied by the output chain's policy. Reads stay unrestricted.
  ASSERT_TRUE(pft_.Exec("pftables -A output -o FILE_WRITE -d tmp_t -j ACCEPT").ok());
  ASSERT_TRUE(pft_.Exec("pftables -A output -o DIR_ADD_NAME -d tmp_t -j ACCEPT").ok());
  ASSERT_TRUE(pft_.Exec("pftables -A output -o FILE_CREATE -d tmp_t -j ACCEPT").ok());
  ASSERT_TRUE(pft_.Exec("pftables -P output DROP").ok());
  kernel().MkFileAt("/var/log/app.log", "", 0666, 0, 0, "var_log_t");
  Run([](Proc& p) {
    EXPECT_GE(p.Open("/tmp/scratch", sim::kOWrOnly | sim::kOCreat), 0)
        << "whitelisted write path";
    int fd = static_cast<int>(p.Open("/var/log/app.log", sim::kORdWr));
    ASSERT_GE(fd, 0) << "open itself is a read-side operation";
    EXPECT_EQ(p.Write(fd, "denied"), sim::SysError(sim::Err::kAcces))
        << "non-whitelisted write dropped by policy";
    std::string buf;
    EXPECT_GE(p.Read(fd, &buf, 4), 0) << "reads unaffected";
  });
}

TEST_F(PolicyTest, PolicyRequiresBuiltinChain) {
  ASSERT_TRUE(pft_.Exec("pftables -N custom").ok());
  EXPECT_FALSE(pft_.Exec("pftables -P custom DROP").ok());
  EXPECT_FALSE(pft_.Exec("pftables -P input SOMETIMES").ok());
  EXPECT_FALSE(pft_.Exec("pftables -P nosuch DROP").ok());
}

TEST_F(PolicyTest, PolicySurvivesSaveRestore) {
  ASSERT_TRUE(pft_.Exec("pftables -A output -o FILE_WRITE -d tmp_t -j ACCEPT").ok());
  ASSERT_TRUE(pft_.Exec("pftables -P output DROP").ok());
  std::string dump = pft_.Save();
  EXPECT_NE(dump.find("-P output DROP"), std::string::npos);
  ASSERT_TRUE(pft_.Exec("pftables -F").ok());
  ASSERT_TRUE(pft_.Exec("pftables -P output ACCEPT").ok());
  ASSERT_TRUE(pft_.Restore(dump).ok());
  EXPECT_EQ(engine_->ruleset().filter().Find("output")->policy(),
            Chain::Policy::kDrop);
}

TEST_F(PolicyTest, AuditModeAlsoSoftensPolicies) {
  ASSERT_TRUE(pft_.Exec("pftables -P output DROP").ok());
  engine_->config().audit_only = true;
  kernel().MkFileAt("/var/log/a.log", "", 0666, 0, 0, "var_log_t");
  Run([](Proc& p) {
    int fd = static_cast<int>(p.Open("/var/log/a.log", sim::kOWrOnly));
    EXPECT_GE(p.Write(fd, "x"), 0) << "audit mode logs instead of denying";
  });
  EXPECT_GT(engine_->stats().audited_drops, 0u);
}

}  // namespace
}  // namespace pf::core
