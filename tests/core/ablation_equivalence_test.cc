// Ablation equivalence: the engine optimizations (context caching, lazy
// context, entrypoint chains, and the verdict cache) are performance knobs,
// not semantics. All Table-6 configurations must produce byte-identical
// verdict sequences — and identical per-task STATE dictionaries — on a
// randomized workload of opens, binds, signal deliveries, and syscall
// entries.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "src/apps/programs.h"
#include "src/audit/hub.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"

namespace pf::core {
namespace {

constexpr int kOps = 10000;
constexpr int kTasks = 3;
constexpr uint64_t kWorkloadSeed = 0xab1a7e5eedull;

EngineConfig MakeConfig(bool lazy, bool cache, bool ept, bool compiled = false,
                        bool vcache = false, bool threaded = true,
                        bool verify = true, bool tuple = false,
                        bool automata = true) {
  EngineConfig cfg;
  cfg.lazy_context = lazy;
  cfg.cache_context = cache;
  cfg.ept_chains = ept;
  cfg.compiled_eval = compiled;
  cfg.verdict_cache = vcache;
  cfg.threaded_eval = threaded;
  cfg.verify_programs = verify;
  cfg.tuple_dispatch = tuple;
  cfg.automata = automata;
  return cfg;
}

// The Table-6 ablation ladder (the lower rungs pin compiled_eval and
// verdict_cache off so each rung isolates exactly one optimization). The
// SWITCHED rung runs the compiled evaluator through the portable switch
// loop and COMPILED through the threaded dispatcher, so the dispatch
// strategy itself is proven to be semantics-free. The VERIFY rung turns the
// load-time verifier off on the top configuration: for accepted programs
// the verifier must be a pure gate, changing nothing the evaluator does.
// The TRACE rung re-runs the top configuration with every tracepoint stream
// enabled: observability must be a pure observer — verdicts, STATE dicts,
// and the decision counters all stay byte-identical. The TUPLE rung turns
// the tuple-space classifier on above COMPILED (verdict cache off so every
// op actually traverses): probing per-mask hash tables and k-way-merging
// candidate slices must pick exactly the rules a linear scan would. The
// AUTOMATA rung re-runs the verdict-cache configuration with STATE-protocol
// lowering ablated: with lowering off every stateful decision bypasses and
// traverses, with it on (the VCACHE rung's default) those decisions are
// cached under automaton-extended keys and their effects replayed — the two
// must be indistinguishable in verdicts and dictionaries. The AUDIT rung
// re-runs the top configuration with the security-event audit pipeline
// armed (suppression off, every kind enabled): like TRACE, audit must be a
// pure observer of verdicts, STATE dicts, and decision counters.
const struct {
  const char* name;
  EngineConfig cfg;
  bool traced = false;
  bool audited = false;
} kConfigs[] = {
    {"FULL", MakeConfig(false, false, false)},
    {"CONCACHE", MakeConfig(false, true, false)},
    {"LAZYCON", MakeConfig(true, true, false)},
    {"EPTSPC", MakeConfig(true, true, true)},
    {"SWITCHED", MakeConfig(true, true, true, true, false, /*threaded=*/false)},
    {"COMPILED", MakeConfig(true, true, true, true)},
    {"TUPLE", MakeConfig(true, true, true, true, false, true, true, /*tuple=*/true)},
    {"VCACHE", MakeConfig(true, true, true, true, true)},
    {"AUTOMATA", MakeConfig(true, true, true, true, true, true, true, false,
                            /*automata=*/false)},
    {"VERIFY", MakeConfig(true, true, true, true, true, true, /*verify=*/false)},
    {"TRACE", MakeConfig(true, true, true, true, true), true},
    {"AUDIT", MakeConfig(true, true, true, true, true), false, true},
};

// A rule base mixing every decision source: entrypoint-indexed drops (some
// matching the tasks' actual frames, many not), label drops, and a small
// STATE machine driven by binds and tmp-opens and read by signal delivery.
//
// Plain rules come before entrypoint rules. Indexed traversal evaluates
// non-entrypoint rules first and then the hash-selected entrypoint bucket
// (paper §4.3), so a rule base that interleaves side-effecting plain rules
// *after* entrypoint rules is order-sensitive between the modes; distributor
// bases keep entrypoint rules last (or in dedicated chains) for this reason.
std::vector<std::string> WorkloadRules() {
  std::vector<std::string> rules = {
      "pftables -o FILE_OPEN -d shadow_t -j DROP",
      "pftables -o SOCKET_BIND -j STATE --set --key b --value 1",
      "pftables -o FILE_OPEN -d tmp_t -j STATE --set --key b --value 0",
      "pftables -o PROCESS_SIGNAL_DELIVERY -m STATE --key b --cmp 1 -j DROP",
      "pftables -p /bin/true -i 0x100 -o FILE_OPEN -d etc_t -j DROP",
      "pftables -p /bin/true -i 0x300 -o FILE_OPEN -d tmp_t -j DROP",
  };
  // Entrypoint chaff for other binaries: populates the by-entrypoint index
  // without ever matching the /bin/true tasks.
  const char* bins[] = {sim::kApache, sim::kPhp, sim::kPython, sim::kBinSh};
  for (int i = 0; i < 48; ++i) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "pftables -p %s -i 0x%x -o FILE_OPEN -j DROP",
                  bins[i % 4], 0x10000 + i * 0x40);
    rules.emplace_back(buf);
  }
  return rules;
}

struct Workload {
  sim::Kernel kernel{0x5eed};
  Engine* engine = nullptr;
  std::vector<std::unique_ptr<sim::Task>> tasks;
  std::vector<std::shared_ptr<sim::Inode>> pins;  // keep request inodes alive

  explicit Workload(const EngineConfig& cfg) {
    sim::BuildSysImage(kernel);
    apps::InstallPrograms(kernel);
    engine = InstallProcessFirewall(kernel, cfg);
    Pftables pft(engine);
    Status s = pft.ExecAll(WorkloadRules());
    if (!s.ok()) {
      ADD_FAILURE() << "rule install failed: " << s.message();
    }
    kernel.MkFileAt("/tmp/t", "x", 0666, 0, 0, "tmp_t");
    for (int i = 0; i < kTasks; ++i) {
      auto task = std::make_unique<sim::Task>();
      task->pid = static_cast<sim::Pid>(100 + i);
      task->comm = "equiv";
      task->exe = sim::kBinTrue;
      task->cred.sid = kernel.labels().Intern("staff_t");
      task->cwd = kernel.vfs().root()->id();
      task->mm.Reset(kernel.AslrStackBase());
      kernel.MapImage(*task, kernel.LookupNoHooks(sim::kBinTrue), sim::kBinTrue);
      const sim::Mapping* map = task->mm.FindMappingByPath(sim::kBinTrue);
      for (int f = 0; f <= i; ++f) {
        task->mm.PushFrame(map->base + 0x100 * static_cast<uint64_t>(f + 1), 16, false);
      }
      tasks.push_back(std::move(task));
    }
  }

  sim::AccessRequest OpenRequest(sim::Task& task, const char* path) {
    auto inode = kernel.LookupNoHooks(path);
    sim::AccessRequest req;
    req.task = &task;
    req.op = sim::Op::kFileOpen;
    req.inode = inode.get();
    req.id = inode->id();
    req.syscall_nr = sim::SyscallNr::kOpen;
    pins.push_back(std::move(inode));
    return req;
  }
};

// The decision counters that must not notice tracing (trace_records,
// trace_drops and stats_generation legitimately differ).
std::vector<uint64_t> DecisionCounters(const EngineStats& s) {
  std::vector<uint64_t> out = {s.invocations, s.drops,        s.audited_drops,
                               s.rules_evaluated, s.ept_chain_hits, s.unwinds,
                               s.unwind_cache_hits, s.vcache_hits, s.vcache_misses,
                               s.vcache_bypasses};
  out.insert(out.end(), s.ctx_fetches.begin(), s.ctx_fetches.end());
  return out;
}

// Replays the seeded workload against one engine configuration and returns
// the full verdict sequence plus each task's final STATE dictionary.
std::vector<int64_t> Replay(const EngineConfig& cfg,
                            std::vector<std::map<std::string, int64_t>>* dicts,
                            bool traced = false,
                            std::vector<uint64_t>* counters = nullptr,
                            bool audited = false) {
  Workload w(cfg);
  if (traced) {
    w.engine->trace().Enable();
  }
  if (audited) {
    audit::AuditHub::Config acfg;
    acfg.bucket_capacity = 0;  // admit every record: maximum observer load
    w.engine->audit().Enable(acfg);
  }
  std::vector<int64_t> verdicts;
  verdicts.reserve(kOps);
  std::mt19937_64 rng(kWorkloadSeed);
  const char* paths[] = {"/etc/passwd", "/etc/shadow", "/tmp/t"};
  for (int i = 0; i < kOps; ++i) {
    sim::Task& task = *w.tasks[rng() % kTasks];
    // Most operations start a new "syscall"; one in four reuses the current
    // one so the per-syscall context cache actually gets exercised.
    if (rng() % 4 != 0) {
      ++task.syscall_count;
    }
    sim::AccessRequest req;
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2:
      case 3:
        req = w.OpenRequest(task, paths[rng() % 3]);
        break;
      case 4:
        req = w.OpenRequest(task, "/etc/shadow");
        break;
      case 5: {
        req.task = &task;
        req.op = sim::Op::kSocketBind;
        req.name = "/tmp/sock";
        req.syscall_nr = sim::SyscallNr::kBind;
        break;
      }
      case 6: {
        req.task = &task;
        req.op = sim::Op::kSignalDeliver;
        req.sig = sim::kSigUsr1;
        req.sig_sender = 1;
        req.syscall_nr = sim::SyscallNr::kKill;
        break;
      }
      default: {
        req.task = &task;
        req.op = sim::Op::kSyscallBegin;
        req.syscall_nr = sim::SyscallNr::kNull;
        break;
      }
    }
    verdicts.push_back(w.engine->Authorize(req));
  }
  if (dicts != nullptr) {
    dicts->clear();
    for (auto& task : w.tasks) {
      dicts->push_back(w.engine->TaskState(*task).dict);
    }
  }
  if (counters != nullptr) {
    *counters = DecisionCounters(w.engine->stats());
  }
  return verdicts;
}

TEST(AblationEquivalenceTest, AllConfigsProduceIdenticalVerdictSequences) {
  std::vector<std::map<std::string, int64_t>> base_dicts;
  std::vector<int64_t> base = Replay(kConfigs[0].cfg, &base_dicts);
  ASSERT_EQ(base.size(), static_cast<size_t>(kOps));
  // The workload must actually exercise both outcomes.
  size_t denies = 0;
  for (int64_t v : base) {
    denies += v < 0;
  }
  EXPECT_GT(denies, 100u) << "workload produced too few denials to be meaningful";
  EXPECT_LT(denies, static_cast<size_t>(kOps)) << "workload must also allow";

  for (size_t c = 1; c < std::size(kConfigs); ++c) {
    std::vector<std::map<std::string, int64_t>> dicts;
    std::vector<int64_t> got = Replay(kConfigs[c].cfg, &dicts, kConfigs[c].traced,
                                      nullptr, kConfigs[c].audited);
    ASSERT_EQ(got.size(), base.size()) << kConfigs[c].name;
    for (size_t i = 0; i < base.size(); ++i) {
      ASSERT_EQ(got[i], base[i])
          << kConfigs[c].name << " diverged from FULL at op " << i;
    }
    EXPECT_EQ(dicts, base_dicts) << kConfigs[c].name << " final STATE dicts differ";
  }
}

TEST(AblationEquivalenceTest, TracingIsAPureObserver) {
  // The TRACE rung of the ladder, isolated: the same configuration run with
  // all tracepoints live must reproduce not just the verdict sequence but
  // the decision counters bit for bit — tracing may add trace_records, but
  // it may not perturb what the engine counted about its own decisions.
  const EngineConfig cfg = MakeConfig(true, true, true, true, true);
  std::vector<std::map<std::string, int64_t>> dicts_off, dicts_on;
  std::vector<uint64_t> counters_off, counters_on;
  std::vector<int64_t> off = Replay(cfg, &dicts_off, false, &counters_off);
  std::vector<int64_t> on = Replay(cfg, &dicts_on, true, &counters_on);
  EXPECT_EQ(off, on) << "tracing changed a verdict";
  EXPECT_EQ(dicts_off, dicts_on) << "tracing changed STATE side effects";
  EXPECT_EQ(counters_off, counters_on) << "tracing changed decision counters";
}

TEST(AblationEquivalenceTest, AuditIsAPureObserver) {
  // The AUDIT rung, isolated: the same configuration run with the audit
  // pipeline armed (every kind, suppression off) must reproduce verdicts,
  // STATE dictionaries, and the decision counters bit for bit. Audit may
  // add audit_* accounting; it may not perturb the decisions it describes.
  if (!audit::kAuditCompiledIn) {
    GTEST_SKIP() << "audit compiled out (PF_AUDIT=OFF)";
  }
  const EngineConfig cfg = MakeConfig(true, true, true, true, true);
  std::vector<std::map<std::string, int64_t>> dicts_off, dicts_on;
  std::vector<uint64_t> counters_off, counters_on;
  std::vector<int64_t> off = Replay(cfg, &dicts_off, false, &counters_off);
  std::vector<int64_t> on =
      Replay(cfg, &dicts_on, false, &counters_on, /*audited=*/true);
  EXPECT_EQ(off, on) << "audit changed a verdict";
  EXPECT_EQ(dicts_off, dicts_on) << "audit changed STATE side effects";
  EXPECT_EQ(counters_off, counters_on) << "audit changed decision counters";
}

TEST(AblationEquivalenceTest, TupleClassifierPreservesHitCountersAndOnlySkipsWork) {
  // The classifier may only *skip* rules a scan would have rejected on an
  // exact-match dimension: every rule a scan fires must still fire (hits
  // bit-identical, bumped by the same evaluator path), every rule the
  // classifier does evaluate must be one the scan evaluated too (per-rule
  // evals <= scan), and at this workload's shape the candidate slices must
  // be strictly narrower than the full chain (total rules_evaluated drops).
  const auto replay = [](bool tuple, std::vector<uint64_t>* evals,
                         std::vector<uint64_t>* hits, EngineStats* stats) {
    const EngineConfig cfg =
        MakeConfig(true, true, true, true, false, true, true, tuple);
    Workload w(cfg);
    std::vector<int64_t> verdicts;
    std::mt19937_64 rng(kWorkloadSeed);
    const char* paths[] = {"/etc/passwd", "/etc/shadow", "/tmp/t"};
    for (int i = 0; i < kOps; ++i) {
      sim::Task& task = *w.tasks[rng() % kTasks];
      if (rng() % 4 != 0) {
        ++task.syscall_count;
      }
      sim::AccessRequest req = w.OpenRequest(task, paths[rng() % 3]);
      verdicts.push_back(w.engine->Authorize(req));
    }
    for (const auto& [name, chain] : w.engine->ruleset().filter().chains()) {
      for (const auto& r : chain.rules()) {
        evals->push_back(r->evals.load(std::memory_order_relaxed));
        hits->push_back(r->hits.load(std::memory_order_relaxed));
      }
    }
    *stats = w.engine->stats();
    return verdicts;
  };

  std::vector<uint64_t> scan_evals, scan_hits, tup_evals, tup_hits;
  EngineStats scan_stats, tup_stats;
  std::vector<int64_t> scan = replay(false, &scan_evals, &scan_hits, &scan_stats);
  std::vector<int64_t> tup = replay(true, &tup_evals, &tup_hits, &tup_stats);

  ASSERT_EQ(scan, tup) << "classifier changed a verdict";
  ASSERT_EQ(scan_hits, tup_hits) << "classifier changed a per-rule hit count";
  ASSERT_EQ(scan_evals.size(), tup_evals.size());
  for (size_t i = 0; i < scan_evals.size(); ++i) {
    EXPECT_LE(tup_evals[i], scan_evals[i])
        << "classifier evaluated rule " << i << " more often than a scan — it "
        << "may only skip rules, never add candidates";
  }
  EXPECT_LT(tup_stats.rules_evaluated, scan_stats.rules_evaluated)
      << "classifier never narrowed a candidate slice on a workload built "
      << "around exact-match dimensions";
  EXPECT_EQ(tup_stats.drops, scan_stats.drops);
}

TEST(AblationEquivalenceTest, AutomataLoweringPreservesHitCountersAndRemovesBypasses) {
  // The AUTOMATA rung, isolated and strengthened: with lowering on, the
  // workload's stateful decisions (binds, tmp-opens, signals over key b) are
  // served from the stateful cache tier with their effects replayed; with it
  // off they bypass and traverse. Verdicts, dictionaries AND per-rule hit
  // counters must be bit-identical — a hit counter is bumped by the replay on
  // one side and by the traversal on the other.
  const auto replay = [](bool automata, std::vector<uint64_t>* hits,
                         std::vector<std::map<std::string, int64_t>>* dicts,
                         EngineStats* stats) {
    const EngineConfig cfg =
        MakeConfig(true, true, true, true, true, true, true, false, automata);
    std::vector<int64_t> verdicts = Replay(cfg, dicts);
    // Replay tears the workload down, so run it again inline to read hit
    // counters off the live ruleset.
    Workload w(cfg);
    std::mt19937_64 rng(kWorkloadSeed);
    const char* paths[] = {"/etc/passwd", "/etc/shadow", "/tmp/t"};
    for (int i = 0; i < kOps; ++i) {
      sim::Task& task = *w.tasks[rng() % kTasks];
      if (rng() % 4 != 0) {
        ++task.syscall_count;
      }
      sim::AccessRequest req;
      switch (rng() % 8) {
        case 0:
        case 1:
        case 2:
        case 3:
          req = w.OpenRequest(task, paths[rng() % 3]);
          break;
        case 4:
          req = w.OpenRequest(task, "/etc/shadow");
          break;
        case 5: {
          req.task = &task;
          req.op = sim::Op::kSocketBind;
          req.name = "/tmp/sock";
          req.syscall_nr = sim::SyscallNr::kBind;
          break;
        }
        case 6: {
          req.task = &task;
          req.op = sim::Op::kSignalDeliver;
          req.sig = sim::kSigUsr1;
          req.sig_sender = 1;
          req.syscall_nr = sim::SyscallNr::kKill;
          break;
        }
        default: {
          req.task = &task;
          req.op = sim::Op::kSyscallBegin;
          req.syscall_nr = sim::SyscallNr::kNull;
          break;
        }
      }
      w.engine->Authorize(req);
    }
    for (const auto& [name, chain] : w.engine->ruleset().filter().chains()) {
      for (const auto& r : chain.rules()) {
        hits->push_back(r->hits.load(std::memory_order_relaxed));
      }
    }
    *stats = w.engine->stats();
    return verdicts;
  };

  std::vector<uint64_t> on_hits, off_hits;
  std::vector<std::map<std::string, int64_t>> on_dicts, off_dicts;
  EngineStats on_stats, off_stats;
  std::vector<int64_t> on = replay(true, &on_hits, &on_dicts, &on_stats);
  std::vector<int64_t> off = replay(false, &off_hits, &off_dicts, &off_stats);

  ASSERT_EQ(on, off) << "automaton lowering changed a verdict";
  EXPECT_EQ(on_dicts, off_dicts) << "automaton lowering changed STATE side effects";
  EXPECT_EQ(on_hits, off_hits)
      << "stateful hit replay diverged from the bypass traversal's counters";

  // And the rung is not vacuous: this rule base is fully lowerable, so the
  // automata build serves its stateful decisions as (state-keyed) cache
  // traffic while the ablated build bypasses every one of them.
  EXPECT_GT(on_stats.vcache_state_hits, 0u);
  EXPECT_EQ(on_stats.vcache_bypasses, 0u)
      << "a fully lowerable rule base must not bypass with automata on";
  EXPECT_GT(off_stats.vcache_bypasses, 0u);
  EXPECT_EQ(off_stats.vcache_state_hits, 0u);
}

TEST(AblationEquivalenceTest, ReplayIsDeterministic) {
  // The harness itself must be reproducible, otherwise the equivalence
  // assertion above proves nothing.
  std::vector<int64_t> a = Replay(kConfigs[3].cfg, nullptr);
  std::vector<int64_t> b = Replay(kConfigs[3].cfg, nullptr);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pf::core
