// LOG record serialization: JSON escaping, round trips, file-based rulegen
// ingestion, malformed-input tolerance.

#include <gtest/gtest.h>

#include "src/core/log.h"
#include "src/rulegen/classify.h"

namespace pf::core {
namespace {

LogRecord SampleRecord() {
  LogRecord rec;
  rec.tick = 1234;
  rec.pid = 42;
  rec.comm = "apache2";
  rec.exe = "/usr/bin/apache2";
  rec.op = sim::Op::kFileOpen;
  rec.syscall = "open";
  rec.subject_label = "httpd_t";
  rec.object_label = "httpd_sys_content_t";
  rec.object = {1, 777};
  rec.name = "/var/www/index.html";
  rec.entry_valid = true;
  rec.program = "/usr/bin/apache2";
  rec.entrypoint = 0x2d637;
  rec.adversary_writable = true;
  rec.prefix = "audit";
  return rec;
}

TEST(LogTest, JsonRoundTrip) {
  LogRecord rec = SampleRecord();
  auto parsed = LogRecord::FromJson(rec.ToJson());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->tick, rec.tick);
  EXPECT_EQ(parsed->pid, rec.pid);
  EXPECT_EQ(parsed->comm, rec.comm);
  EXPECT_EQ(parsed->op, rec.op);
  EXPECT_EQ(parsed->object, rec.object);
  EXPECT_EQ(parsed->name, rec.name);
  EXPECT_EQ(parsed->entry_valid, rec.entry_valid);
  EXPECT_EQ(parsed->entrypoint, rec.entrypoint);
  EXPECT_EQ(parsed->adversary_writable, rec.adversary_writable);
  EXPECT_EQ(parsed->adversary_readable, rec.adversary_readable);
  EXPECT_EQ(parsed->prefix, rec.prefix);
}

TEST(LogTest, EscapesQuotesAndBackslashes) {
  LogRecord rec = SampleRecord();
  rec.name = "/tmp/evil\"quote\\back";
  std::string json = rec.ToJson();
  auto parsed = LogRecord::FromJson(json);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->name, rec.name);
}

TEST(LogTest, MalformedInputRejected) {
  EXPECT_FALSE(LogRecord::FromJson(""));
  EXPECT_FALSE(LogRecord::FromJson("not json"));
  EXPECT_FALSE(LogRecord::FromJson("{\"tick\":"));
  EXPECT_FALSE(LogRecord::FromJson("{\"op\":\"NOT_AN_OP\"}"));
  EXPECT_FALSE(LogRecord::FromJson("{\"unterminated\":\"str"));
}

TEST(LogTest, SinkDumpAndReload) {
  LogSink sink;
  for (int i = 0; i < 5; ++i) {
    LogRecord rec = SampleRecord();
    rec.tick = static_cast<uint64_t>(i);
    sink.Append(rec);
  }
  std::string dump = sink.ToJsonLines();
  LogSink reloaded;
  EXPECT_EQ(reloaded.FromJsonLines(dump), 5u);
  ASSERT_EQ(reloaded.size(), 5u);
  EXPECT_EQ(reloaded.records()[3].tick, 3u);
  // Garbage lines are skipped, valid ones still land.
  LogSink partial;
  EXPECT_EQ(partial.FromJsonLines("garbage\n" + SampleRecord().ToJson() + "\n???\n"), 1u);
}

TEST(LogTest, ReloadedRecordsFeedTheClassifier) {
  LogSink sink;
  LogRecord high = SampleRecord();
  high.adversary_writable = false;
  sink.Append(high);
  sink.Append(high);
  LogSink reloaded;
  reloaded.FromJsonLines(sink.ToJsonLines());
  rulegen::EntrypointClassifier classifier;
  classifier.AddAll(reloaded.records());
  ASSERT_EQ(classifier.entrypoints().size(), 1u);
  EXPECT_EQ(classifier.CountClass(rulegen::EptClass::kHigh), 1u);
  EXPECT_EQ(classifier.SuggestRules(2).size(), 1u);
}

}  // namespace
}  // namespace pf::core
