// Concurrent hook evaluation: worker threads hammer Engine::Authorize() on
// disjoint and shared tasks while a writer thread commits rule reloads.
// Verdicts must be exactly what a serial replay produces, no drop may be
// lost, and the aggregated per-worker statistics must account for every
// invocation (no torn counters).
//
// These tests drive the engine module interface directly (the simulated
// syscall layer above it is single-threaded by design); this mirrors how
// the in-kernel PF hooks run concurrently on real CPUs beneath a serial
// system-call ABI.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/programs.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"

namespace pf::core {
namespace {

constexpr int kThreads = 8;
constexpr int kItersPerThread = 2000;
constexpr int kReloads = 150;

// A booted kernel with the PF installed and a deny-shadow rule base large
// enough that the entrypoint index is actually in play.
struct Rig {
  sim::Kernel kernel{0x5eed};
  Engine* engine = nullptr;
  std::unique_ptr<Pftables> pft;

  Rig() {
    sim::BuildSysImage(kernel);
    apps::InstallPrograms(kernel);
    engine = InstallProcessFirewall(kernel);
    pft = std::make_unique<Pftables>(engine);
    std::vector<std::string> rules = {
        "pftables -o FILE_OPEN -d shadow_t -j DROP",
        "pftables -N scratch",
    };
    for (int i = 0; i < 64; ++i) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "pftables -p /bin/false -i 0x%x -o FILE_OPEN -j DROP",
                    0x20000 + i * 0x40);
      rules.emplace_back(buf);
    }
    Status s = pft->ExecAll(rules);
    if (!s.ok()) {
      ADD_FAILURE() << "rule install failed: " << s.message();
    }
  }

  std::unique_ptr<sim::Task> MakeTask(int idx) {
    auto task = std::make_unique<sim::Task>();
    task->pid = static_cast<sim::Pid>(1000 + idx);
    task->comm = "hammer";
    task->exe = sim::kBinTrue;
    task->cred.sid = kernel.labels().Intern("staff_t");
    task->cwd = kernel.vfs().root()->id();
    task->mm.Reset(kernel.AslrStackBase());
    kernel.MapImage(*task, kernel.LookupNoHooks(sim::kBinTrue), sim::kBinTrue);
    const sim::Mapping* map = task->mm.FindMappingByPath(sim::kBinTrue);
    for (int f = 0; f <= idx % 3; ++f) {
      task->mm.PushFrame(map->base + 0x100 * static_cast<uint64_t>(f + 1), 16, false);
    }
    return task;
  }

  sim::AccessRequest OpenRequest(sim::Task& task, sim::Inode* inode) {
    sim::AccessRequest req;
    req.task = &task;
    req.op = sim::Op::kFileOpen;
    req.inode = inode;
    req.id = inode->id();
    req.syscall_nr = sim::SyscallNr::kOpen;
    return req;
  }
};

// The per-thread workload: alternate a denied open (/etc/shadow) with an
// allowed one (/etc/passwd), one syscall per iteration. Returns the verdict
// sequence so callers can diff it against a serial replay.
std::vector<int64_t> Hammer(Rig& rig, sim::Task& task, sim::Inode* shadow,
                            sim::Inode* passwd, int iters, bool bump_syscall) {
  std::vector<int64_t> verdicts;
  verdicts.reserve(static_cast<size_t>(iters));
  sim::AccessRequest deny = rig.OpenRequest(task, shadow);
  sim::AccessRequest allow = rig.OpenRequest(task, passwd);
  for (int i = 0; i < iters; ++i) {
    if (bump_syscall) {
      ++task.syscall_count;
    }
    verdicts.push_back(rig.engine->Authorize(i % 2 == 0 ? deny : allow));
  }
  return verdicts;
}

TEST(ConcurrentEngineTest, DisjointTasksUnderRuleReloadLoseNoDrops) {
  Rig rig;
  auto shadow = rig.kernel.LookupNoHooks("/etc/shadow");
  auto passwd = rig.kernel.LookupNoHooks("/etc/passwd");
  std::vector<std::unique_ptr<sim::Task>> tasks;
  for (int i = 0; i < kThreads; ++i) {
    tasks.push_back(rig.MakeTask(i));
  }
  rig.engine->ResetStats();
  uint64_t gen_before = rig.engine->ruleset_generation();

  std::vector<std::vector<int64_t>> verdicts(kThreads);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // Mutate an unreferenced chain so every commit publishes a new ruleset
    // generation without changing any verdict.
    for (int i = 0; i < kReloads && !stop.load(); ++i) {
      ASSERT_TRUE(
          rig.pft->Exec("pftables -A scratch -o FILE_OPEN -j ACCEPT").ok());
      ASSERT_TRUE(rig.pft->Exec("pftables -F scratch").ok());
    }
  });
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        verdicts[t] = Hammer(rig, *tasks[t], shadow.get(), passwd.get(),
                             kItersPerThread, /*bump_syscall=*/true);
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  stop.store(true);
  writer.join();

  // Every verdict is what the rule base dictates: no lost drops, no spurious
  // ones, regardless of how reloads interleaved.
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(verdicts[t].size(), static_cast<size_t>(kItersPerThread));
    for (int i = 0; i < kItersPerThread; ++i) {
      int64_t want = i % 2 == 0 ? sim::SysError(sim::Err::kAcces) : 0;
      ASSERT_EQ(verdicts[t][i], want) << "thread " << t << " op " << i;
    }
  }

  // Aggregated per-worker stats account for every invocation exactly.
  EngineStats stats = rig.engine->stats();
  uint64_t total = static_cast<uint64_t>(kThreads) * kItersPerThread;
  EXPECT_EQ(stats.invocations, total);
  EXPECT_EQ(stats.drops, total / 2);
  EXPECT_GT(rig.engine->ruleset_generation(), gen_before)
      << "the writer must have published reloads while workers ran";
}

TEST(ConcurrentEngineTest, SharedTaskVerdictsStayConsistent) {
  Rig rig;
  auto shadow = rig.kernel.LookupNoHooks("/etc/shadow");
  auto passwd = rig.kernel.LookupNoHooks("/etc/passwd");
  auto task = rig.MakeTask(0);
  ++task->syscall_count;  // one fixed syscall window shared by all threads
  rig.engine->ResetStats();

  std::vector<std::vector<int64_t>> verdicts(kThreads);
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        verdicts[t] = Hammer(rig, *task, shadow.get(), passwd.get(),
                             kItersPerThread, /*bump_syscall=*/false);
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }

  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kItersPerThread; ++i) {
      int64_t want = i % 2 == 0 ? sim::SysError(sim::Err::kAcces) : 0;
      ASSERT_EQ(verdicts[t][i], want) << "thread " << t << " op " << i;
    }
  }
  EngineStats stats = rig.engine->stats();
  uint64_t total = static_cast<uint64_t>(kThreads) * kItersPerThread;
  EXPECT_EQ(stats.invocations, total);
  EXPECT_EQ(stats.drops, total / 2);
  // The shared task holds exactly one state entry; nothing leaked.
  EXPECT_EQ(rig.engine->task_state_count(), 1u);
}

TEST(ConcurrentEngineTest, ConcurrentRunMatchesSerialReplay) {
  std::vector<std::vector<int64_t>> concurrent(kThreads);
  {
    Rig rig;
    auto shadow = rig.kernel.LookupNoHooks("/etc/shadow");
    auto passwd = rig.kernel.LookupNoHooks("/etc/passwd");
    std::vector<std::unique_ptr<sim::Task>> tasks;
    for (int i = 0; i < kThreads; ++i) {
      tasks.push_back(rig.MakeTask(i));
    }
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        concurrent[t] = Hammer(rig, *tasks[t], shadow.get(), passwd.get(),
                               kItersPerThread, /*bump_syscall=*/true);
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  // Serial replay on a fresh rig: per-task sequences are independent, so the
  // concurrent verdict stream of each task must match its serial twin.
  Rig rig;
  auto shadow = rig.kernel.LookupNoHooks("/etc/shadow");
  auto passwd = rig.kernel.LookupNoHooks("/etc/passwd");
  for (int t = 0; t < kThreads; ++t) {
    auto task = rig.MakeTask(t);
    std::vector<int64_t> serial = Hammer(rig, *task, shadow.get(), passwd.get(),
                                         kItersPerThread, /*bump_syscall=*/true);
    EXPECT_EQ(concurrent[t], serial) << "thread " << t;
  }
}

TEST(ConcurrentEngineTest, VerdictCacheConsistentUnderCommitAndPolicyChurn) {
  // The verdict cache (on by default) under the worst invalidation churn we
  // can produce: one thread commits rule reloads (generation bumps + cache
  // clears), another mutates the MAC policy (epoch bumps). Both kinds of
  // churn only touch an unreferenced chain / unreferenced labels, so every
  // verdict stays exactly what the rule base dictates — any stale or torn
  // cache entry shows up as a wrong verdict.
  Rig rig;
  ASSERT_TRUE(rig.engine->config().verdict_cache);
  auto shadow = rig.kernel.LookupNoHooks("/etc/shadow");
  auto passwd = rig.kernel.LookupNoHooks("/etc/passwd");
  std::vector<std::unique_ptr<sim::Task>> tasks;
  for (int i = 0; i < kThreads; ++i) {
    tasks.push_back(rig.MakeTask(i));
  }
  rig.engine->ResetStats();

  std::vector<std::vector<int64_t>> verdicts(kThreads);
  std::atomic<bool> stop{false};
  std::thread committer([&] {
    for (int i = 0; i < kReloads && !stop.load(); ++i) {
      ASSERT_TRUE(
          rig.pft->Exec("pftables -A scratch -o FILE_OPEN -j ACCEPT").ok());
      ASSERT_TRUE(rig.pft->Exec("pftables -F scratch").ok());
    }
  });
  std::thread policy_churn([&] {
    // rogue_t/rogue_obj_t appear in no rule and label no inode: the epoch
    // moves on every mutation, verdicts never do.
    sim::Sid rogue = rig.kernel.labels().Intern("rogue_t");
    sim::Sid rogue_obj = rig.kernel.labels().Intern("rogue_obj_t");
    while (!stop.load()) {
      rig.kernel.policy().Allow(rogue, rogue_obj, sim::kMacRead);
      rig.kernel.policy().MarkUntrusted(rogue);
    }
  });
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        verdicts[t] = Hammer(rig, *tasks[t], shadow.get(), passwd.get(),
                             kItersPerThread, /*bump_syscall=*/true);
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  stop.store(true);
  committer.join();
  policy_churn.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(verdicts[t].size(), static_cast<size_t>(kItersPerThread));
    for (int i = 0; i < kItersPerThread; ++i) {
      int64_t want = i % 2 == 0 ? sim::SysError(sim::Err::kAcces) : 0;
      ASSERT_EQ(verdicts[t][i], want) << "thread " << t << " op " << i;
    }
  }

  // Every FILE_OPEN here runs a fully cacheable bucket, so each invocation
  // is accounted a hit or a miss — no torn counters, no bypasses.
  EngineStats stats = rig.engine->stats();
  uint64_t total = static_cast<uint64_t>(kThreads) * kItersPerThread;
  EXPECT_EQ(stats.invocations, total);
  EXPECT_EQ(stats.vcache_hits + stats.vcache_misses, total);
  EXPECT_EQ(stats.vcache_bypasses, 0u);
  EXPECT_EQ(stats.drops, total / 2);

  // Once the churn quiesces the cache must converge, not stay poisoned.
  sim::AccessRequest deny = rig.OpenRequest(*tasks[0], shadow.get());
  sim::AccessRequest allow = rig.OpenRequest(*tasks[0], passwd.get());
  for (int i = 0; i < 8; ++i) {
    ++tasks[0]->syscall_count;
    EXPECT_EQ(rig.engine->Authorize(deny), sim::SysError(sim::Err::kAcces));
    EXPECT_EQ(rig.engine->Authorize(allow), 0);
  }
}

TEST(ConcurrentEngineTest, StateDictSafeUnderSharedTaskWrites) {
  // STATE-setting rules from many threads against one task: the dictionary
  // must end in a consistent state (the mutex serializes writers) and the
  // engine must never crash or tear.
  Rig rig;
  ASSERT_TRUE(
      rig.pft->Exec("pftables -o SOCKET_BIND -j STATE --set --key b --value 1")
          .ok());
  auto task = rig.MakeTask(0);
  ++task->syscall_count;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      sim::AccessRequest req;
      req.task = task.get();
      req.op = sim::Op::kSocketBind;
      req.name = "/tmp/sock";
      req.syscall_nr = sim::SyscallNr::kBind;
      for (int i = 0; i < kItersPerThread; ++i) {
        rig.engine->Authorize(req);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  PfTaskState& state = rig.engine->TaskState(*task);
  EXPECT_EQ(state.dict.at("b"), 1);
  EXPECT_EQ(state.dict.size(), 1u);
}

}  // namespace
}  // namespace pf::core
