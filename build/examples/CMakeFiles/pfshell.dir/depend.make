# Empty dependencies file for pfshell.
# This may be replaced when dependencies are built.
