file(REMOVE_RECURSE
  "CMakeFiles/pfshell.dir/pfshell.cpp.o"
  "CMakeFiles/pfshell.dir/pfshell.cpp.o.d"
  "pfshell"
  "pfshell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfshell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
