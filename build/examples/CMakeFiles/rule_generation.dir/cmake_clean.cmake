file(REMOVE_RECURSE
  "CMakeFiles/rule_generation.dir/rule_generation.cpp.o"
  "CMakeFiles/rule_generation.dir/rule_generation.cpp.o.d"
  "rule_generation"
  "rule_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
