# Empty compiler generated dependencies file for rule_generation.
# This may be replaced when dependencies are built.
