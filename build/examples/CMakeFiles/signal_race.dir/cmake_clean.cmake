file(REMOVE_RECURSE
  "CMakeFiles/signal_race.dir/signal_race.cpp.o"
  "CMakeFiles/signal_race.dir/signal_race.cpp.o.d"
  "signal_race"
  "signal_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signal_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
