# Empty dependencies file for signal_race.
# This may be replaced when dependencies are built.
