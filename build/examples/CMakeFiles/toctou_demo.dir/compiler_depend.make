# Empty compiler generated dependencies file for toctou_demo.
# This may be replaced when dependencies are built.
