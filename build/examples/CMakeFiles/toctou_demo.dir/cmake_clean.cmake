file(REMOVE_RECURSE
  "CMakeFiles/toctou_demo.dir/toctou_demo.cpp.o"
  "CMakeFiles/toctou_demo.dir/toctou_demo.cpp.o.d"
  "toctou_demo"
  "toctou_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toctou_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
