# Empty dependencies file for webserver_hardening.
# This may be replaced when dependencies are built.
