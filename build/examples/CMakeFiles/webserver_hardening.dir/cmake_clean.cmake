file(REMOVE_RECURSE
  "CMakeFiles/webserver_hardening.dir/webserver_hardening.cpp.o"
  "CMakeFiles/webserver_hardening.dir/webserver_hardening.cpp.o.d"
  "webserver_hardening"
  "webserver_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
