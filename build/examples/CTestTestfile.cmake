# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_webserver_hardening "/root/repo/build/examples/webserver_hardening")
set_tests_properties(example_webserver_hardening PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_toctou_demo "/root/repo/build/examples/toctou_demo")
set_tests_properties(example_toctou_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rule_generation "/root/repo/build/examples/rule_generation")
set_tests_properties(example_rule_generation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_signal_race "/root/repo/build/examples/signal_race")
set_tests_properties(example_signal_race PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
