# Empty compiler generated dependencies file for verdict_sweep_test.
# This may be replaced when dependencies are built.
