file(REMOVE_RECURSE
  "CMakeFiles/verdict_sweep_test.dir/core/verdict_sweep_test.cc.o"
  "CMakeFiles/verdict_sweep_test.dir/core/verdict_sweep_test.cc.o.d"
  "verdict_sweep_test"
  "verdict_sweep_test.pdb"
  "verdict_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verdict_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
