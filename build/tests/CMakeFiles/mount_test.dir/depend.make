# Empty dependencies file for mount_test.
# This may be replaced when dependencies are built.
