# Empty compiler generated dependencies file for unwind_test.
# This may be replaced when dependencies are built.
