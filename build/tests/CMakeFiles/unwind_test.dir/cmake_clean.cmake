file(REMOVE_RECURSE
  "CMakeFiles/unwind_test.dir/core/unwind_test.cc.o"
  "CMakeFiles/unwind_test.dir/core/unwind_test.cc.o.d"
  "unwind_test"
  "unwind_test.pdb"
  "unwind_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unwind_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
