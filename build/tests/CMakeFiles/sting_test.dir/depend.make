# Empty dependencies file for sting_test.
# This may be replaced when dependencies are built.
