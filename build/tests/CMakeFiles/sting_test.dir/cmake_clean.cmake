file(REMOVE_RECURSE
  "CMakeFiles/sting_test.dir/rulegen/sting_test.cc.o"
  "CMakeFiles/sting_test.dir/rulegen/sting_test.cc.o.d"
  "sting_test"
  "sting_test.pdb"
  "sting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
