file(REMOVE_RECURSE
  "CMakeFiles/interp_dbus_test.dir/apps/interp_dbus_test.cc.o"
  "CMakeFiles/interp_dbus_test.dir/apps/interp_dbus_test.cc.o.d"
  "interp_dbus_test"
  "interp_dbus_test.pdb"
  "interp_dbus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_dbus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
