# Empty dependencies file for interp_dbus_test.
# This may be replaced when dependencies are built.
