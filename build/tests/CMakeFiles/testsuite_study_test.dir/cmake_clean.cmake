file(REMOVE_RECURSE
  "CMakeFiles/testsuite_study_test.dir/rulegen/testsuite_study_test.cc.o"
  "CMakeFiles/testsuite_study_test.dir/rulegen/testsuite_study_test.cc.o.d"
  "testsuite_study_test"
  "testsuite_study_test.pdb"
  "testsuite_study_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testsuite_study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
