# Empty dependencies file for testsuite_study_test.
# This may be replaced when dependencies are built.
