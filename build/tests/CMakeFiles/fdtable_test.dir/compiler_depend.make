# Empty compiler generated dependencies file for fdtable_test.
# This may be replaced when dependencies are built.
