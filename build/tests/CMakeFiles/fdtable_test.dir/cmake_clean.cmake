file(REMOVE_RECURSE
  "CMakeFiles/fdtable_test.dir/sim/fdtable_test.cc.o"
  "CMakeFiles/fdtable_test.dir/sim/fdtable_test.cc.o.d"
  "fdtable_test"
  "fdtable_test.pdb"
  "fdtable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdtable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
