file(REMOVE_RECURSE
  "CMakeFiles/namei_property_test.dir/props/namei_property_test.cc.o"
  "CMakeFiles/namei_property_test.dir/props/namei_property_test.cc.o.d"
  "namei_property_test"
  "namei_property_test.pdb"
  "namei_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namei_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
