# Empty compiler generated dependencies file for namei_property_test.
# This may be replaced when dependencies are built.
