file(REMOVE_RECURSE
  "CMakeFiles/rule_library_test.dir/apps/rule_library_test.cc.o"
  "CMakeFiles/rule_library_test.dir/apps/rule_library_test.cc.o.d"
  "rule_library_test"
  "rule_library_test.pdb"
  "rule_library_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_library_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
