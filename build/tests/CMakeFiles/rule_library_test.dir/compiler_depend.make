# Empty compiler generated dependencies file for rule_library_test.
# This may be replaced when dependencies are built.
