file(REMOVE_RECURSE
  "CMakeFiles/unwind_fuzz_test.dir/props/unwind_fuzz_test.cc.o"
  "CMakeFiles/unwind_fuzz_test.dir/props/unwind_fuzz_test.cc.o.d"
  "unwind_fuzz_test"
  "unwind_fuzz_test.pdb"
  "unwind_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unwind_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
