# Empty compiler generated dependencies file for unwind_fuzz_test.
# This may be replaced when dependencies are built.
