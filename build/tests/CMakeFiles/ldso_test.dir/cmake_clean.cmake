file(REMOVE_RECURSE
  "CMakeFiles/ldso_test.dir/apps/ldso_test.cc.o"
  "CMakeFiles/ldso_test.dir/apps/ldso_test.cc.o.d"
  "ldso_test"
  "ldso_test.pdb"
  "ldso_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
