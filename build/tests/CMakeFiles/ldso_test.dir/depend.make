# Empty dependencies file for ldso_test.
# This may be replaced when dependencies are built.
