file(REMOVE_RECURSE
  "CMakeFiles/save_restore_test.dir/core/save_restore_test.cc.o"
  "CMakeFiles/save_restore_test.dir/core/save_restore_test.cc.o.d"
  "save_restore_test"
  "save_restore_test.pdb"
  "save_restore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/save_restore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
