# Empty compiler generated dependencies file for save_restore_test.
# This may be replaced when dependencies are built.
