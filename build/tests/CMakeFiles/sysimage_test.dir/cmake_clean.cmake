file(REMOVE_RECURSE
  "CMakeFiles/sysimage_test.dir/sim/sysimage_test.cc.o"
  "CMakeFiles/sysimage_test.dir/sim/sysimage_test.cc.o.d"
  "sysimage_test"
  "sysimage_test.pdb"
  "sysimage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysimage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
