# Empty dependencies file for sysimage_test.
# This may be replaced when dependencies are built.
