file(REMOVE_RECURSE
  "CMakeFiles/sched_stress_test.dir/sim/sched_stress_test.cc.o"
  "CMakeFiles/sched_stress_test.dir/sim/sched_stress_test.cc.o.d"
  "sched_stress_test"
  "sched_stress_test.pdb"
  "sched_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
