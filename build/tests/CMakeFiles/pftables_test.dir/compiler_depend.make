# Empty compiler generated dependencies file for pftables_test.
# This may be replaced when dependencies are built.
