file(REMOVE_RECURSE
  "CMakeFiles/pftables_test.dir/core/pftables_test.cc.o"
  "CMakeFiles/pftables_test.dir/core/pftables_test.cc.o.d"
  "pftables_test"
  "pftables_test.pdb"
  "pftables_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pftables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
