file(REMOVE_RECURSE
  "CMakeFiles/namei_test.dir/sim/namei_test.cc.o"
  "CMakeFiles/namei_test.dir/sim/namei_test.cc.o.d"
  "namei_test"
  "namei_test.pdb"
  "namei_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namei_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
