# Empty compiler generated dependencies file for namei_test.
# This may be replaced when dependencies are built.
