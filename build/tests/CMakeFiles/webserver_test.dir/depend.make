# Empty dependencies file for webserver_test.
# This may be replaced when dependencies are built.
