file(REMOVE_RECURSE
  "CMakeFiles/safe_open_test.dir/apps/safe_open_test.cc.o"
  "CMakeFiles/safe_open_test.dir/apps/safe_open_test.cc.o.d"
  "safe_open_test"
  "safe_open_test.pdb"
  "safe_open_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_open_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
