# Empty compiler generated dependencies file for safe_open_test.
# This may be replaced when dependencies are built.
