# Empty compiler generated dependencies file for generation_test.
# This may be replaced when dependencies are built.
