# Empty compiler generated dependencies file for syscalls_test.
# This may be replaced when dependencies are built.
