file(REMOVE_RECURSE
  "CMakeFiles/syscalls_test.dir/sim/syscalls_test.cc.o"
  "CMakeFiles/syscalls_test.dir/sim/syscalls_test.cc.o.d"
  "syscalls_test"
  "syscalls_test.pdb"
  "syscalls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syscalls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
