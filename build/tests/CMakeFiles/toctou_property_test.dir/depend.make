# Empty dependencies file for toctou_property_test.
# This may be replaced when dependencies are built.
