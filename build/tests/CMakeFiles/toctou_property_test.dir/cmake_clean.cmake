file(REMOVE_RECURSE
  "CMakeFiles/toctou_property_test.dir/props/toctou_property_test.cc.o"
  "CMakeFiles/toctou_property_test.dir/props/toctou_property_test.cc.o.d"
  "toctou_property_test"
  "toctou_property_test.pdb"
  "toctou_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toctou_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
