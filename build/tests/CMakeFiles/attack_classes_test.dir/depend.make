# Empty dependencies file for attack_classes_test.
# This may be replaced when dependencies are built.
