file(REMOVE_RECURSE
  "CMakeFiles/attack_classes_test.dir/apps/attack_classes_test.cc.o"
  "CMakeFiles/attack_classes_test.dir/apps/attack_classes_test.cc.o.d"
  "attack_classes_test"
  "attack_classes_test.pdb"
  "attack_classes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_classes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
