
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/dbus.cc" "src/apps/CMakeFiles/pf_apps.dir/dbus.cc.o" "gcc" "src/apps/CMakeFiles/pf_apps.dir/dbus.cc.o.d"
  "/root/repo/src/apps/exploits.cc" "src/apps/CMakeFiles/pf_apps.dir/exploits.cc.o" "gcc" "src/apps/CMakeFiles/pf_apps.dir/exploits.cc.o.d"
  "/root/repo/src/apps/interp.cc" "src/apps/CMakeFiles/pf_apps.dir/interp.cc.o" "gcc" "src/apps/CMakeFiles/pf_apps.dir/interp.cc.o.d"
  "/root/repo/src/apps/ldso.cc" "src/apps/CMakeFiles/pf_apps.dir/ldso.cc.o" "gcc" "src/apps/CMakeFiles/pf_apps.dir/ldso.cc.o.d"
  "/root/repo/src/apps/misc.cc" "src/apps/CMakeFiles/pf_apps.dir/misc.cc.o" "gcc" "src/apps/CMakeFiles/pf_apps.dir/misc.cc.o.d"
  "/root/repo/src/apps/programs.cc" "src/apps/CMakeFiles/pf_apps.dir/programs.cc.o" "gcc" "src/apps/CMakeFiles/pf_apps.dir/programs.cc.o.d"
  "/root/repo/src/apps/rule_library.cc" "src/apps/CMakeFiles/pf_apps.dir/rule_library.cc.o" "gcc" "src/apps/CMakeFiles/pf_apps.dir/rule_library.cc.o.d"
  "/root/repo/src/apps/safe_open.cc" "src/apps/CMakeFiles/pf_apps.dir/safe_open.cc.o" "gcc" "src/apps/CMakeFiles/pf_apps.dir/safe_open.cc.o.d"
  "/root/repo/src/apps/sshd.cc" "src/apps/CMakeFiles/pf_apps.dir/sshd.cc.o" "gcc" "src/apps/CMakeFiles/pf_apps.dir/sshd.cc.o.d"
  "/root/repo/src/apps/webserver.cc" "src/apps/CMakeFiles/pf_apps.dir/webserver.cc.o" "gcc" "src/apps/CMakeFiles/pf_apps.dir/webserver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
