file(REMOVE_RECURSE
  "libpf_apps.a"
)
