file(REMOVE_RECURSE
  "CMakeFiles/pf_apps.dir/dbus.cc.o"
  "CMakeFiles/pf_apps.dir/dbus.cc.o.d"
  "CMakeFiles/pf_apps.dir/exploits.cc.o"
  "CMakeFiles/pf_apps.dir/exploits.cc.o.d"
  "CMakeFiles/pf_apps.dir/interp.cc.o"
  "CMakeFiles/pf_apps.dir/interp.cc.o.d"
  "CMakeFiles/pf_apps.dir/ldso.cc.o"
  "CMakeFiles/pf_apps.dir/ldso.cc.o.d"
  "CMakeFiles/pf_apps.dir/misc.cc.o"
  "CMakeFiles/pf_apps.dir/misc.cc.o.d"
  "CMakeFiles/pf_apps.dir/programs.cc.o"
  "CMakeFiles/pf_apps.dir/programs.cc.o.d"
  "CMakeFiles/pf_apps.dir/rule_library.cc.o"
  "CMakeFiles/pf_apps.dir/rule_library.cc.o.d"
  "CMakeFiles/pf_apps.dir/safe_open.cc.o"
  "CMakeFiles/pf_apps.dir/safe_open.cc.o.d"
  "CMakeFiles/pf_apps.dir/sshd.cc.o"
  "CMakeFiles/pf_apps.dir/sshd.cc.o.d"
  "CMakeFiles/pf_apps.dir/webserver.cc.o"
  "CMakeFiles/pf_apps.dir/webserver.cc.o.d"
  "libpf_apps.a"
  "libpf_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
