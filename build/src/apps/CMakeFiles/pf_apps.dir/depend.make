# Empty dependencies file for pf_apps.
# This may be replaced when dependencies are built.
