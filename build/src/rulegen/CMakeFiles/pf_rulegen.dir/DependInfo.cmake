
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rulegen/classify.cc" "src/rulegen/CMakeFiles/pf_rulegen.dir/classify.cc.o" "gcc" "src/rulegen/CMakeFiles/pf_rulegen.dir/classify.cc.o.d"
  "/root/repo/src/rulegen/sting.cc" "src/rulegen/CMakeFiles/pf_rulegen.dir/sting.cc.o" "gcc" "src/rulegen/CMakeFiles/pf_rulegen.dir/sting.cc.o.d"
  "/root/repo/src/rulegen/synthetic.cc" "src/rulegen/CMakeFiles/pf_rulegen.dir/synthetic.cc.o" "gcc" "src/rulegen/CMakeFiles/pf_rulegen.dir/synthetic.cc.o.d"
  "/root/repo/src/rulegen/vuln.cc" "src/rulegen/CMakeFiles/pf_rulegen.dir/vuln.cc.o" "gcc" "src/rulegen/CMakeFiles/pf_rulegen.dir/vuln.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/pf_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
