file(REMOVE_RECURSE
  "CMakeFiles/pf_rulegen.dir/classify.cc.o"
  "CMakeFiles/pf_rulegen.dir/classify.cc.o.d"
  "CMakeFiles/pf_rulegen.dir/sting.cc.o"
  "CMakeFiles/pf_rulegen.dir/sting.cc.o.d"
  "CMakeFiles/pf_rulegen.dir/synthetic.cc.o"
  "CMakeFiles/pf_rulegen.dir/synthetic.cc.o.d"
  "CMakeFiles/pf_rulegen.dir/vuln.cc.o"
  "CMakeFiles/pf_rulegen.dir/vuln.cc.o.d"
  "libpf_rulegen.a"
  "libpf_rulegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_rulegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
