# Empty dependencies file for pf_rulegen.
# This may be replaced when dependencies are built.
