file(REMOVE_RECURSE
  "libpf_rulegen.a"
)
