
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/error.cc" "src/sim/CMakeFiles/pf_sim.dir/error.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/error.cc.o.d"
  "/root/repo/src/sim/fdtable.cc" "src/sim/CMakeFiles/pf_sim.dir/fdtable.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/fdtable.cc.o.d"
  "/root/repo/src/sim/kernel.cc" "src/sim/CMakeFiles/pf_sim.dir/kernel.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/kernel.cc.o.d"
  "/root/repo/src/sim/label.cc" "src/sim/CMakeFiles/pf_sim.dir/label.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/label.cc.o.d"
  "/root/repo/src/sim/lsm.cc" "src/sim/CMakeFiles/pf_sim.dir/lsm.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/lsm.cc.o.d"
  "/root/repo/src/sim/mac_module.cc" "src/sim/CMakeFiles/pf_sim.dir/mac_module.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/mac_module.cc.o.d"
  "/root/repo/src/sim/mac_policy.cc" "src/sim/CMakeFiles/pf_sim.dir/mac_policy.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/mac_policy.cc.o.d"
  "/root/repo/src/sim/mm.cc" "src/sim/CMakeFiles/pf_sim.dir/mm.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/mm.cc.o.d"
  "/root/repo/src/sim/namei.cc" "src/sim/CMakeFiles/pf_sim.dir/namei.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/namei.cc.o.d"
  "/root/repo/src/sim/sched.cc" "src/sim/CMakeFiles/pf_sim.dir/sched.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/sched.cc.o.d"
  "/root/repo/src/sim/syscall_nr.cc" "src/sim/CMakeFiles/pf_sim.dir/syscall_nr.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/syscall_nr.cc.o.d"
  "/root/repo/src/sim/syscalls_file.cc" "src/sim/CMakeFiles/pf_sim.dir/syscalls_file.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/syscalls_file.cc.o.d"
  "/root/repo/src/sim/syscalls_proc.cc" "src/sim/CMakeFiles/pf_sim.dir/syscalls_proc.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/syscalls_proc.cc.o.d"
  "/root/repo/src/sim/syscalls_signal.cc" "src/sim/CMakeFiles/pf_sim.dir/syscalls_signal.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/syscalls_signal.cc.o.d"
  "/root/repo/src/sim/syscalls_socket.cc" "src/sim/CMakeFiles/pf_sim.dir/syscalls_socket.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/syscalls_socket.cc.o.d"
  "/root/repo/src/sim/sysimage.cc" "src/sim/CMakeFiles/pf_sim.dir/sysimage.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/sysimage.cc.o.d"
  "/root/repo/src/sim/vfs.cc" "src/sim/CMakeFiles/pf_sim.dir/vfs.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
