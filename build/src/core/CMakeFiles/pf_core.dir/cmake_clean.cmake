file(REMOVE_RECURSE
  "CMakeFiles/pf_core.dir/engine.cc.o"
  "CMakeFiles/pf_core.dir/engine.cc.o.d"
  "CMakeFiles/pf_core.dir/log.cc.o"
  "CMakeFiles/pf_core.dir/log.cc.o.d"
  "CMakeFiles/pf_core.dir/modules.cc.o"
  "CMakeFiles/pf_core.dir/modules.cc.o.d"
  "CMakeFiles/pf_core.dir/packet.cc.o"
  "CMakeFiles/pf_core.dir/packet.cc.o.d"
  "CMakeFiles/pf_core.dir/pftables.cc.o"
  "CMakeFiles/pf_core.dir/pftables.cc.o.d"
  "CMakeFiles/pf_core.dir/rule.cc.o"
  "CMakeFiles/pf_core.dir/rule.cc.o.d"
  "CMakeFiles/pf_core.dir/ruleset.cc.o"
  "CMakeFiles/pf_core.dir/ruleset.cc.o.d"
  "CMakeFiles/pf_core.dir/unwind.cc.o"
  "CMakeFiles/pf_core.dir/unwind.cc.o.d"
  "libpf_core.a"
  "libpf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
