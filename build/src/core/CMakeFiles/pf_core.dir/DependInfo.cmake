
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/pf_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/pf_core.dir/engine.cc.o.d"
  "/root/repo/src/core/log.cc" "src/core/CMakeFiles/pf_core.dir/log.cc.o" "gcc" "src/core/CMakeFiles/pf_core.dir/log.cc.o.d"
  "/root/repo/src/core/modules.cc" "src/core/CMakeFiles/pf_core.dir/modules.cc.o" "gcc" "src/core/CMakeFiles/pf_core.dir/modules.cc.o.d"
  "/root/repo/src/core/packet.cc" "src/core/CMakeFiles/pf_core.dir/packet.cc.o" "gcc" "src/core/CMakeFiles/pf_core.dir/packet.cc.o.d"
  "/root/repo/src/core/pftables.cc" "src/core/CMakeFiles/pf_core.dir/pftables.cc.o" "gcc" "src/core/CMakeFiles/pf_core.dir/pftables.cc.o.d"
  "/root/repo/src/core/rule.cc" "src/core/CMakeFiles/pf_core.dir/rule.cc.o" "gcc" "src/core/CMakeFiles/pf_core.dir/rule.cc.o.d"
  "/root/repo/src/core/ruleset.cc" "src/core/CMakeFiles/pf_core.dir/ruleset.cc.o" "gcc" "src/core/CMakeFiles/pf_core.dir/ruleset.cc.o.d"
  "/root/repo/src/core/unwind.cc" "src/core/CMakeFiles/pf_core.dir/unwind.cc.o" "gcc" "src/core/CMakeFiles/pf_core.dir/unwind.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
