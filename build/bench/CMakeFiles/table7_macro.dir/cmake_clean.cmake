file(REMOVE_RECURSE
  "CMakeFiles/table7_macro.dir/table7_macro.cc.o"
  "CMakeFiles/table7_macro.dir/table7_macro.cc.o.d"
  "table7_macro"
  "table7_macro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_macro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
