# Empty compiler generated dependencies file for table7_macro.
# This may be replaced when dependencies are built.
