# Empty dependencies file for table8_rulegen.
# This may be replaced when dependencies are built.
