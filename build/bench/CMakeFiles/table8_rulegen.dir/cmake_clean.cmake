file(REMOVE_RECURSE
  "CMakeFiles/table8_rulegen.dir/table8_rulegen.cc.o"
  "CMakeFiles/table8_rulegen.dir/table8_rulegen.cc.o.d"
  "table8_rulegen"
  "table8_rulegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_rulegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
