file(REMOVE_RECURSE
  "CMakeFiles/table6_lmbench.dir/table6_lmbench.cc.o"
  "CMakeFiles/table6_lmbench.dir/table6_lmbench.cc.o.d"
  "table6_lmbench"
  "table6_lmbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_lmbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
