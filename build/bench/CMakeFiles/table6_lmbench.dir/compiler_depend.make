# Empty compiler generated dependencies file for table6_lmbench.
# This may be replaced when dependencies are built.
