# Empty compiler generated dependencies file for fig5_apache_symlink.
# This may be replaced when dependencies are built.
