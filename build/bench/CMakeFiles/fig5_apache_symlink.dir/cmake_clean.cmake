file(REMOVE_RECURSE
  "CMakeFiles/fig5_apache_symlink.dir/fig5_apache_symlink.cc.o"
  "CMakeFiles/fig5_apache_symlink.dir/fig5_apache_symlink.cc.o.d"
  "fig5_apache_symlink"
  "fig5_apache_symlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_apache_symlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
