# Empty dependencies file for fig4_open_variants.
# This may be replaced when dependencies are built.
