file(REMOVE_RECURSE
  "CMakeFiles/fig4_open_variants.dir/fig4_open_variants.cc.o"
  "CMakeFiles/fig4_open_variants.dir/fig4_open_variants.cc.o.d"
  "fig4_open_variants"
  "fig4_open_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_open_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
