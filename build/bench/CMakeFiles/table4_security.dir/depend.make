# Empty dependencies file for table4_security.
# This may be replaced when dependencies are built.
