file(REMOVE_RECURSE
  "CMakeFiles/table4_security.dir/table4_security.cc.o"
  "CMakeFiles/table4_security.dir/table4_security.cc.o.d"
  "table4_security"
  "table4_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
