// Figure 4: latency of link-following defenses as a function of path length.
//
// Compares open / open_nofollow / open_nolink / open_race / safe_open
// (program defenses, increasingly many extra system calls per component)
// against safe_open_PF (one plain open; the equivalent per-component link
// policy enforced by Process Firewall rules during pathname resolution).
// The paper reports safe_open overheads up to ~103% over plain open at
// n = 7 while the PF equivalent stays within a few percent.

#include "bench/bench_util.h"
#include "src/apps/safe_open.h"

namespace pf::bench {
namespace {

using sim::Pid;
using sim::Proc;

constexpr int kIters = 4000;
constexpr int kRepeats = 5;
constexpr int kDepths[] = {1, 4, 7};

// Builds /b0/b1/.../file with `depth` directories; returns the path.
std::string BuildDeepPath(sim::Kernel& k, int depth) {
  std::string dir;
  for (int i = 0; i < depth; ++i) {
    dir += "/b" + std::to_string(i);
    k.MkDirAt(dir, 0755, 0, 0, "var_t");
  }
  std::string path = dir + "/file.txt";
  k.MkFileAt(path, "content", 0644, 0, 0, "var_t");
  return path;
}

using Variant = int64_t (*)(Proc&, const std::string&);

double MeasureUs(System& sys, Variant fn, const std::string& path) {
  std::vector<double> runs;
  for (int r = 0; r < kRepeats; ++r) {
    double us = 0;
    Pid pid = sys.sched->Spawn({.name = "bench", .exe = sim::kBinTrue}, [&](Proc& p) {
      Stopwatch sw;
      sw.Start();
      for (int i = 0; i < kIters; ++i) {
        int64_t fd = fn(p, path);
        if (fd >= 0) {
          p.Close(static_cast<int>(fd));
        }
      }
      us = sw.ElapsedUs() / kIters;
    });
    sys.sched->RunUntilExit(pid);
    runs.push_back(us);
  }
  return Summarize(runs).mean;
}

}  // namespace

void Run() {
  struct Row {
    const char* name;
    Variant fn;
    bool needs_pf;
  };
  const Row rows[] = {
      {"open", &apps::OpenPlain, false},
      {"open_nfflag", &apps::OpenNofollow, false},
      {"open_nolink", &apps::OpenNolink, false},
      {"open_race", &apps::OpenRace, false},
      {"safe_open", &apps::SafeOpen, false},
      {"safe_open_PF", &apps::SafeOpenPF, true},
  };

  double us[6][3] = {};
  for (size_t r = 0; r < 6; ++r) {
    for (int d = 0; d < 3; ++d) {
      System sys;
      if (rows[r].needs_pf) {
        sys.InstallRules(apps::RuleLibrary::SafeOpenRules());
      } else {
        sys.engine->config().enabled = false;
      }
      std::string path = BuildDeepPath(*sys.kernel, kDepths[d]);
      us[r][d] = MeasureUs(sys, rows[r].fn, path);
    }
  }

  Caption("Figure 4: open variants vs. path length (microseconds per call)");
  std::printf("%-16s %10s %10s %10s\n", "variant", "n=1", "n=4", "n=7");
  for (size_t r = 0; r < 6; ++r) {
    std::printf("%-16s %10.3f %10.3f %10.3f\n", rows[r].name, us[r][0], us[r][1],
                us[r][2]);
  }

  std::printf("\n%-16s %10s %10s %10s   (overhead vs. open)\n", "variant", "n=1", "n=4",
              "n=7");
  for (size_t r = 1; r < 6; ++r) {
    std::printf("%-16s  %+8.1f%%  %+8.1f%%  %+8.1f%%\n", rows[r].name,
                OverheadPct(us[0][0], us[r][0]), OverheadPct(us[0][1], us[r][1]),
                OverheadPct(us[0][2], us[r][2]));
  }
  std::printf("\nExpected shape (paper): safe_open grows steeply with n (up to ~103%%);\n"
              "safe_open_PF stays within a few percent of plain open at every n.\n");
}

}  // namespace pf::bench

int main() {
  pf::bench::Run();
  return 0;
}
