#!/usr/bin/env sh
# Runs the engine-focused benchmarks and folds their machine-readable
# outputs into one BENCH_engine.json:
#
#   table6_lmbench   us/op for every (syscall, config) cell, incl. VCACHE
#   table7_macro     macro means + PF Full verdict-cache hit/miss/bypass
#   ablation_engine  BM_AuthorizeVerdictCache* (ns/op + rate counters),
#                    legacy walker vs switch loop vs threaded evaluator,
#                    BM_CompileProgram + BM_VerifyProgram (commit-time costs)
#   pfcheck          static-analyzer wall time over the shipped rule base
#
# Usage: bench/run_bench.sh [build-dir] [output.json]
# (run from the repository root; build the default preset first:
#  cmake --preset default && cmake --build build -j)
set -eu

BUILD="${1:-build}"
OUT="${2:-BENCH_engine.json}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/bench/table6_lmbench" --json "$TMP/table6.json"
"$BUILD/bench/table7_macro" --json "$TMP/table7.json"
# Medians of 3 repetitions: the dispatch-ladder and verifier-share summary
# numbers gate CI, and single-shot runs swing +-20% on shared machines.
"$BUILD/bench/ablation_engine" \
  --benchmark_filter='BM_AuthorizeVerdictCache|BM_AuthorizeCompiled|BM_AuthorizeIndexedChains|BM_AuthorizeLinearScan|BM_AuthorizeSwitchScan|BM_AuthorizeTuple|BM_CompileProgram|BM_VerifyProgram|BM_IncrementalCommit|BM_BuildSymbolicModel' \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
  --benchmark_out="$TMP/ablation.json" --benchmark_out_format=json
"$BUILD/src/apps/pfcheck" --library --json > "$TMP/pfcheck.json"

python3 - "$TMP" "$OUT" <<'EOF'
import json, sys, os

tmp, out_path = sys.argv[1], sys.argv[2]
out = {}
for name in ("table6", "table7"):
    with open(os.path.join(tmp, name + ".json")) as f:
        out.update(json.load(f))

with open(os.path.join(tmp, "ablation.json")) as f:
    ab = json.load(f)
out["ablation_engine"] = {
    b["name"].removesuffix("_median"): {
        "ns_per_op": b["real_time"],
        **{k: b[k] for k in ("hit_rate", "miss_rate", "bypass_rate", "state_hits",
                             "arena_words", "classifier_ns", "automata_ns",
                             "tuples", "max_slice", "residual",
                             "delta_commits", "full_commits", "regions")
           if k in b},
    }
    for b in ab.get("benchmarks", [])
    if b.get("aggregate_name") == "median"
}

with open(os.path.join(tmp, "pfcheck.json")) as f:
    out["pfcheck"] = json.load(f)["pfcheck"]

# Headline acceptance numbers, precomputed for easy inspection.
t6 = out["table6"]
ae = out["ablation_engine"]
# Dispatch cost on the linear-scan pair: the indexed pair at 1218 is
# fixed-overhead dominated (hashing + unwinding), so the evaluator speedup
# is measured legacy-walker scan vs threaded compiled scan, verifier on.
legacy_1218 = ae.get("BM_AuthorizeLinearScan/1218", {}).get("ns_per_op")
switch_1218 = ae.get("BM_AuthorizeSwitchScan/1218", {}).get("ns_per_op")
compiled_1218 = ae.get("BM_AuthorizeCompiledScan/1218", {}).get("ns_per_op")
out["summary"] = {
    "analyzer_us": out["pfcheck"]["analysis_us"],
    "stat_full_us": t6["stat"]["FULL"],
    "stat_eptspc_us": t6["stat"]["EPTSPC"],
    "stat_compiled_us": t6["stat"]["COMPILED"],
    "stat_vcache_us": t6["stat"]["VCACHE"],
    "open_close_full_us": t6["open+close"]["FULL"],
    "open_close_eptspc_us": t6["open+close"]["EPTSPC"],
    "open_close_compiled_us": t6["open+close"]["COMPILED"],
    "open_close_vcache_us": t6["open+close"]["VCACHE"],
    "macro_vcache_hit_rate": out["table7"]["vcache"]["hit_rate"],
    "macro_hit_rate": out["table7"]["vcache"]["hit_rate"],
    "macro_state_hits": out["table7"]["vcache"].get("state_hits"),
    "macro_bypasses": out["table7"]["vcache"].get("bypasses"),
    # Compiled-program evaluator: cache-miss Authorize, 1218-rule base,
    # legacy walker vs switch loop vs threaded arena program (ns/op), the
    # one-time lowering cost, and the load-time verifier's share of it.
    "authorize_legacy_1218_ns": legacy_1218,
    "authorize_switch_1218_ns": switch_1218,
    "authorize_compiled_1218_ns": compiled_1218,
    "authorize_indexed_1218_ns":
        ae.get("BM_AuthorizeIndexedChains/1218", {}).get("ns_per_op"),
    "authorize_compiled_indexed_1218_ns":
        ae.get("BM_AuthorizeCompiledIndexed/1218", {}).get("ns_per_op"),
    "compiled_speedup_1218": (legacy_1218 / compiled_1218
                              if legacy_1218 and compiled_1218 else None),
    "threaded_speedup_vs_switch_1218": (switch_1218 / compiled_1218
                                        if switch_1218 and compiled_1218 else None),
    "compile_program_1218_ns": ae.get("BM_CompileProgram/1218", {}).get("ns_per_op"),
    "verify_program_1218_ns": ae.get("BM_VerifyProgram/1218", {}).get("ns_per_op"),
    "verify_us": out["pfcheck"].get("verify_us"),
}

# Symbolic decision-space model (DESIGN.md "Symbolic decision-space
# analysis"): full-partition build time over the paper's 1218-rule PF Full
# base (CI budget: < 250 ms) and its scaling point at 100k rules, plus the
# shipped library's numbers from pfcheck's exact tier.
sym_1218_ns = ae.get("BM_BuildSymbolicModel/1218", {}).get("ns_per_op")
sym_100k_ns = ae.get("BM_BuildSymbolicModel/100000", {}).get("ns_per_op")
out["summary"].update({
    "symbolic_analysis_us": sym_1218_ns / 1e3 if sym_1218_ns else None,
    "symbolic_analysis_100k_us": sym_100k_ns / 1e3 if sym_100k_ns else None,
    "symbolic_regions_1218": ae.get("BM_BuildSymbolicModel/1218", {}).get("regions"),
    "symbolic_regions_100k": ae.get("BM_BuildSymbolicModel/100000", {}).get("regions"),
    "symbolic_library_us": out["pfcheck"].get("symbolic", {}).get("analysis_us"),
    "symbolic_library_regions": out["pfcheck"].get("symbolic", {}).get("regions"),
})

# Tuple-space classifier + incremental commits (DESIGN.md §5g): the scaling
# headline is flat authorize latency at 100k rules (within 3x of the
# 1218-rule base) and a one-edit delta commit well under the from-scratch
# relower (>= 20x acceptance; CI gates at <= 5% of full).
tuple_1218 = ae.get("BM_AuthorizeTupleScan/1218", {}).get("ns_per_op")
tuple_100k = ae.get("BM_AuthorizeTupleScan/100000", {}).get("ns_per_op")
compile_100k = ae.get("BM_CompileProgram/100000", {}).get("ns_per_op")
delta_100k = ae.get("BM_IncrementalCommit/100000", {}).get("ns_per_op")
out["summary"].update({
    "authorize_tuple_1218_ns": tuple_1218,
    "authorize_tuple_100k_ns": tuple_100k,
    "authorize_tuple_200k_ns":
        ae.get("BM_AuthorizeTupleScan/200000", {}).get("ns_per_op"),
    "authorize_compiled_scan_100k_ns":
        ae.get("BM_AuthorizeCompiledScan/100000", {}).get("ns_per_op"),
    "tuple_scaling_100k_vs_1218": (tuple_100k / tuple_1218
                                   if tuple_100k and tuple_1218 else None),
    "classifier_build_ns":
        ae.get("BM_CompileProgram/100000", {}).get("classifier_ns"),
    "compile_program_100k_ns": compile_100k,
    "incremental_commit_1edit_ns": delta_100k,
    "delta_commit_speedup_100k": (compile_100k / delta_100k
                                  if compile_100k and delta_100k else None),
})

# Tracing tax (DESIGN.md §5e): full tracepoint streams on vs. off, measured
# by the table6 trace rider. The acceptance bound is stat/FULL < +15%.
tt = out.get("table6_trace", {})
out["summary"]["trace_overhead_pct"] = (
    tt.get("stat", {}).get("FULL", {}).get("overhead_pct"))
out["summary"]["trace_overhead_vcache_pct"] = (
    tt.get("stat", {}).get("VCACHE", {}).get("overhead_pct"))
traced_1218 = ae.get("BM_AuthorizeCompiledTraced/1218", {}).get("ns_per_op")
out["summary"]["authorize_traced_1218_ns"] = traced_1218

# STATE-protocol automata (DESIGN.md §5i): the commit-time price of the
# lowering pass and its coverage from pfcheck's automata block. The pass
# self-times into the automata_ns counter; its share of the rest of the
# compile is what CI gates at < +10% (the ablated-build delta is kept as a
# reference number — it is noisier than the bound on shared machines).
compile_1218 = ae.get("BM_CompileProgram/1218", {}).get("ns_per_op")
compile_noauto_1218 = ae.get("BM_CompileProgramNoAutomata/1218", {}).get("ns_per_op")
automata_ns_1218 = ae.get("BM_CompileProgram/1218", {}).get("automata_ns")
out["summary"].update({
    "compile_noautomata_1218_ns": compile_noauto_1218,
    "automata_pass_share_pct": (
        100.0 * automata_ns_1218 / (compile_1218 - automata_ns_1218)
        if compile_1218 and automata_ns_1218 else None),
    "automata_compile_overhead_pct": (
        100.0 * (compile_1218 - compile_noauto_1218) / compile_noauto_1218
        if compile_1218 and compile_noauto_1218 else None),
    "automata_lowered_rules": out["pfcheck"].get("automata", {}).get("lowered_rules"),
    "automata_bypass_rules": out["pfcheck"].get("automata", {}).get("bypass_rules"),
    "automata_protocols": out["pfcheck"].get("automata", {}).get("protocols"),
})

with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
print(json.dumps(out["summary"], indent=2))
EOF
