// Table 6: lmbench-style system-call microbenchmarks across the Process
// Firewall's optimization ablation:
//
//   DISABLED  PF compiled in but switched off
//   BASE      PF on, only the default-allow rule (no rule base)
//   FULL      1218-rule base, no optimizations (eager context, no caching,
//             linear chain scan)
//   CONCACHE  + context caching (reuse unwinds across hooks in a syscall)
//   LAZYCON   + lazy context retrieval (fetch only what rules need)
//   EPTSPC    + entrypoint-specific chains (hash lookup instead of scan)
//   VCACHE    + AVC-style verdict cache (repeat accesses skip traversal)
//
// The paper's shape: resource-access syscalls (stat/open) suffer most
// unoptimized (~110%) and drop to ~10% with all optimizations; non-resource
// syscalls stay under a few percent. The verdict cache goes beyond the
// paper's ladder: steady-state repeat accesses skip rule traversal entirely.
//
// With --json PATH, machine-readable results (us per op for every cell) are
// also written to PATH for bench/run_bench.sh to fold into BENCH_engine.json.

#include "bench/bench_util.h"

namespace pf::bench {
namespace {

using sim::Pid;
using sim::Proc;

constexpr int kLightIters = 6000;
constexpr int kForkIters = 150;
constexpr int kRepeats = 5;

struct Config {
  const char* name;
  bool enabled;
  bool rules;
  core::EngineConfig engine;
};

// Every rung below VCACHE pins verdict_cache off, and every rung below
// COMPILED pins compiled_eval off (both default on), so each column still
// isolates exactly one optimization.
const Config kConfigs[] = {
    {"DISABLED", false, false, {}},
    {"BASE", true, false,
     {.lazy_context = true, .cache_context = true, .ept_chains = true,
      .verdict_cache = false}},
    {"FULL", true, true,
     {.lazy_context = false, .cache_context = false, .ept_chains = false,
      .verdict_cache = false, .compiled_eval = false}},
    {"CONCACHE", true, true,
     {.lazy_context = false, .cache_context = true, .ept_chains = false,
      .verdict_cache = false, .compiled_eval = false}},
    {"LAZYCON", true, true,
     {.lazy_context = true, .cache_context = true, .ept_chains = false,
      .verdict_cache = false, .compiled_eval = false}},
    {"EPTSPC", true, true,
     {.lazy_context = true, .cache_context = true, .ept_chains = true,
      .verdict_cache = false, .compiled_eval = false}},
    {"COMPILED", true, true,
     {.lazy_context = true, .cache_context = true, .ept_chains = true,
      .verdict_cache = false, .compiled_eval = true}},
    {"VCACHE", true, true,
     {.lazy_context = true, .cache_context = true, .ept_chains = true,
      .verdict_cache = true, .compiled_eval = true}},
};

struct Workload {
  const char* name;
  int iters;
  // Runs `iters` operations inside the proc; file descriptors set up first.
  std::function<void(Proc&, int)> body;
};

const std::vector<Workload>& Workloads() {
  static const std::vector<Workload> kWorkloads = {
      {"null", kLightIters,
       [](Proc& p, int n) {
         for (int i = 0; i < n; ++i) {
           p.Null();
         }
       }},
      {"stat", kLightIters,
       [](Proc& p, int n) {
         sim::StatBuf st;
         for (int i = 0; i < n; ++i) {
           p.Stat("/etc/passwd", &st);
         }
       }},
      {"read", kLightIters,
       [](Proc& p, int n) {
         int fd = static_cast<int>(p.Open("/etc/passwd", sim::kORdOnly));
         std::string buf;
         for (int i = 0; i < n; ++i) {
           p.Read(fd, &buf, 16);
         }
         p.Close(fd);
       }},
      {"write", kLightIters,
       [](Proc& p, int n) {
         int fd = static_cast<int>(
             p.Open("/tmp/sink", sim::kOWrOnly | sim::kOCreat | sim::kOTrunc));
         for (int i = 0; i < n; ++i) {
           p.Write(fd, "x");
           // Keep the file small: rewind by reopening occasionally.
           if ((i & 0x3ff) == 0x3ff) {
             p.Close(fd);
             fd = static_cast<int>(
                 p.Open("/tmp/sink", sim::kOWrOnly | sim::kOCreat | sim::kOTrunc));
           }
         }
         p.Close(fd);
       }},
      {"fstat", kLightIters,
       [](Proc& p, int n) {
         int fd = static_cast<int>(p.Open("/etc/passwd", sim::kORdOnly));
         sim::StatBuf st;
         for (int i = 0; i < n; ++i) {
           p.Fstat(fd, &st);
         }
         p.Close(fd);
       }},
      {"open+close", kLightIters / 2,
       [](Proc& p, int n) {
         for (int i = 0; i < n; ++i) {
           p.Close(static_cast<int>(p.Open("/etc/passwd", sim::kORdOnly)));
         }
       }},
      {"fork+exit", kForkIters,
       [](Proc& p, int n) {
         for (int i = 0; i < n; ++i) {
           int64_t child = p.Fork([](Proc& c) { c.Exit(0); });
           p.Waitpid(static_cast<sim::Pid>(child));
         }
       }},
      {"fork+execve", kForkIters,
       [](Proc& p, int n) {
         auto env = p.task().env;
         for (int i = 0; i < n; ++i) {
           int64_t child = p.Fork([env](Proc& c) {
             c.Execve(sim::kBinTrue, {sim::kBinTrue}, env);
             c.Exit(127);
           });
           p.Waitpid(static_cast<sim::Pid>(child));
         }
       }},
      {"fork+sh -c", kForkIters / 2,
       [](Proc& p, int n) {
         auto env = p.task().env;
         for (int i = 0; i < n; ++i) {
           int64_t child = p.Fork([env](Proc& c) {
             c.Execve(sim::kBinSh, {sim::kBinSh, "-c", sim::kBinTrue}, env);
             c.Exit(127);
           });
           p.Waitpid(static_cast<sim::Pid>(child));
         }
       }},
  };
  return kWorkloads;
}

double MeasureUs(const Config& config, const Workload& work, bool traced = false) {
  std::vector<double> runs;
  for (int r = 0; r < kRepeats; ++r) {
    System sys;
    // Calibrate the baseline kernel-entry cost to the paper's testbed
    // (lmbench null syscall = 11.675 us in Table 6) so overhead percentages
    // are comparable.
    sys.kernel->set_syscall_cost_ns(11500);
    sys.engine->config() = config.engine;
    sys.engine->config().enabled = config.enabled;
    if (config.rules) {
      sys.InstallRules(apps::RuleLibrary::DefaultRuleBase());
      sys.InstallRules(SyntheticRuleBase(1200));
    }
    if (traced) {
      sys.engine->trace().Enable();
    }
    double us = 0;
    Pid pid = sys.sched->Spawn({.name = "lmbench", .exe = sim::kBinTrue}, [&](Proc& p) {
      sim::UserFrame frame(p, sim::kBinTrue, 0x4000);  // a realistic call depth
      Stopwatch sw;
      sw.Start();
      work.body(p, work.iters);
      us = sw.ElapsedUs() / work.iters;
    });
    sys.sched->RunUntilExit(pid);
    runs.push_back(us);
  }
  return SummarizeTrimmed(runs).mean;
}

}  // namespace

void Run(const char* json_path) {
  Caption("Table 6: lmbench microbenchmarks (us per operation; % overhead vs DISABLED)");
  std::printf("%-12s", "syscall");
  for (const Config& c : kConfigs) {
    std::printf(" %16s", c.name);
  }
  std::printf("\n");

  JsonWriter json;
  json.BeginObject("table6");
  for (const Workload& work : Workloads()) {
    double base = 0;
    std::printf("%-12s", work.name);
    json.BeginObject(work.name);
    for (const Config& config : kConfigs) {
      double us = MeasureUs(config, work);
      json.Number(config.name, us);
      if (&config == &kConfigs[0]) {
        base = us;
        std::printf(" %12.3f    ", us);
      } else {
        std::printf(" %9.3f (%4.0f%%)", us, OverheadPct(base, us));
      }
      std::fflush(stdout);
    }
    json.EndObject();
    std::printf("\n");
  }
  json.EndObject();

  // Trace-overhead rider (DESIGN.md §5e): the two resource syscalls the
  // paper's table stresses, re-measured with every tracepoint stream live
  // (decision + rule + ctx + vcache records into the rings, plus latency
  // histograms). The ISSUE's acceptance bound: tracing-enabled stat on the
  // FULL rung stays under +15% vs. the same rung untraced.
  Caption("Trace overhead: full tracepoint streams enabled vs. disabled");
  std::printf("%-12s %12s %12s %10s\n", "syscall/rung", "untraced_us", "traced_us",
              "overhead");
  json.BeginObject("table6_trace");
  const char* kTraceRungs[] = {"FULL", "VCACHE"};
  const char* kTraceWorkloads[] = {"stat", "open+close"};
  for (const char* wname : kTraceWorkloads) {
    const Workload* work = nullptr;
    for (const Workload& w : Workloads()) {
      if (std::string(w.name) == wname) {
        work = &w;
      }
    }
    json.BeginObject(wname);
    for (const char* rname : kTraceRungs) {
      const Config* config = nullptr;
      for (const Config& c : kConfigs) {
        if (std::string(c.name) == rname) {
          config = &c;
        }
      }
      const double off = MeasureUs(*config, *work, /*traced=*/false);
      const double on = MeasureUs(*config, *work, /*traced=*/true);
      json.BeginObject(rname);
      json.Number("untraced_us", off);
      json.Number("traced_us", on);
      json.Number("overhead_pct", OverheadPct(off, on));
      json.EndObject();
      std::printf("%-6s %-5s %12.3f %12.3f %8.1f%%\n", wname, rname, off, on,
                  OverheadPct(off, on));
      std::fflush(stdout);
    }
    json.EndObject();
  }
  json.EndObject();
  json.WriteTo(json_path);
  std::printf("\nExpected shape (paper): FULL hits resource syscalls hardest (stat ~110%%),\n"
              "each optimization reduces it, and EPTSPC lands near BASE (<11%% on any\n"
              "one syscall; <3%% for syscalls not performing resource access). COMPILED\n"
              "replaces the tree walker with the arena program evaluator and should\n"
              "shave EPTSPC further on resource syscalls; VCACHE should pull\n"
              "repeat-access syscalls (stat, open+close) below both.\n");
}

}  // namespace pf::bench

int main(int argc, char** argv) {
  pf::bench::Run(pf::bench::JsonPathFromArgs(argc, argv));
  return 0;
}
