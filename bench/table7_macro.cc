// Table 7: macrobenchmarks — Without PF / PF Base (default allow only) /
// PF Full (1218-rule base) — reporting means with 95% confidence intervals
// and percentage overhead, as in the paper:
//
//   Apache Build : a simulated software build (open/read source files, stat
//                  header searches, fork+exec compiler jobs, write objects)
//   Boot         : a simulated boot (daemons bind sockets and chmod them,
//                  init scripts run, configuration reads, library loading)
//   Web1 / Web1000 : LAMP-ish request loop (Apache serve + PHP include +
//                  "database" file read) with 1 / 1000 simulated clients,
//                  reporting latency (ms) and throughput (Kb/s).
//
// Paper shape: every macrobenchmark stays within ~4% overhead for PF Full
// and within ~1% for PF Base.
//
// PF Full runs with the verdict cache on (the default shipping config); the
// report includes its aggregate hit/miss/bypass rates across all macro
// workloads. With --json PATH, results also go to PATH for
// bench/run_bench.sh to fold into BENCH_engine.json.

#include "bench/bench_util.h"
#include "src/apps/dbus.h"
#include "src/apps/interp.h"
#include "src/apps/ldso.h"
#include "src/apps/misc.h"
#include "src/apps/webserver.h"

namespace pf::bench {
namespace {

using sim::Pid;
using sim::Proc;

constexpr int kRepeats = 9;
constexpr uint64_t kSyscallCostNs = 6000;  // calibrated kernel-entry cost

enum class Mode { kWithoutPf, kPfBase, kPfLegacy, kPfFull };
const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kWithoutPf: return "Without PF";
    case Mode::kPfBase: return "PF Base";
    case Mode::kPfLegacy: return "PF Legacy";
    default: return "PF Full";
  }
}

std::unique_ptr<System> MakeSystem(Mode mode) {
  auto sys = std::make_unique<System>();
  sys->kernel->set_syscall_cost_ns(kSyscallCostNs);
  switch (mode) {
    case Mode::kWithoutPf:
      sys->engine->config().enabled = false;
      break;
    case Mode::kPfBase:
      break;  // enabled, empty rule base
    case Mode::kPfLegacy:
      // Full rule base on the legacy tree walker: the compiled-program
      // column's baseline.
      sys->engine->config().compiled_eval = false;
      sys->InstallRules(apps::RuleLibrary::DefaultRuleBase());
      sys->InstallRules(SyntheticRuleBase(1200));
      break;
    case Mode::kPfFull:
      sys->InstallRules(apps::RuleLibrary::DefaultRuleBase());
      sys->InstallRules(SyntheticRuleBase(1200));
      break;
  }
  return sys;
}

// --- Apache Build -------------------------------------------------------------

void SetupBuildTree(sim::Kernel& k, int files) {
  k.MkDirAt("/home/alice/httpd", 0755, sim::kAliceUid, sim::kAliceUid, "user_home_t");
  k.MkDirAt("/home/alice/httpd/src", 0755, sim::kAliceUid, sim::kAliceUid, "user_home_t");
  k.MkDirAt("/home/alice/httpd/include", 0755, sim::kAliceUid, sim::kAliceUid,
            "user_home_t");
  for (int i = 0; i < files; ++i) {
    k.MkFileAt("/home/alice/httpd/src/mod" + std::to_string(i) + ".c",
               std::string(512, 'c'), 0644, sim::kAliceUid, sim::kAliceUid,
               "user_home_t");
    k.MkFileAt("/home/alice/httpd/include/hdr" + std::to_string(i) + ".h",
               std::string(128, 'h'), 0644, sim::kAliceUid, sim::kAliceUid,
               "user_home_t");
  }
}

double RunBuild(System& sys) {
  constexpr int kSources = 150;
  SetupBuildTree(*sys.kernel, kSources);
  double us = 0;
  sim::SpawnOpts opts;
  opts.name = "make";
  opts.cred.uid = opts.cred.euid = sim::kAliceUid;
  opts.cred.gid = opts.cred.egid = sim::kAliceUid;
  opts.cred.sid = sys.kernel->labels().Intern("staff_t");
  opts.exe = sim::kBinSh;
  opts.cwd = "/home/alice/httpd";
  Pid pid = sys.sched->Spawn(opts, [&](Proc& p) {
    Stopwatch sw;
    sw.Start();
    auto env = p.task().env;
    for (int i = 0; i < kSources; ++i) {
      std::string src = "src/mod" + std::to_string(i) + ".c";
      // Preprocessor-style header probing (the stat-heavy part of builds).
      sim::StatBuf st;
      for (int h = 0; h < 6; ++h) {
        p.Stat("include/hdr" + std::to_string((i + h) % kSources) + ".h", &st);
      }
      std::string text;
      int fd = static_cast<int>(p.Open(src, sim::kORdOnly));
      p.Read(fd, &text, 1 << 16);
      p.Close(fd);
      // "Compile": spawn a compiler job.
      int64_t cc = p.Fork([env](Proc& c) {
        c.Execve(sim::kBinTrue, {"cc"}, env);
        c.Exit(127);
      });
      p.Waitpid(static_cast<sim::Pid>(cc));
      // Emit the object file.
      volatile uint64_t digest = 0;
      for (char ch : text) {
        digest = digest * 31 + static_cast<uint8_t>(ch);
      }
      fd = static_cast<int>(p.Open("src/mod" + std::to_string(i) + ".o",
                                   sim::kOWrOnly | sim::kOCreat | sim::kOTrunc));
      p.Write(fd, text.substr(0, 256));
      p.Close(fd);
    }
    us = sw.ElapsedUs();
  });
  sys.sched->RunUntilExit(pid);
  return us / 1e6;  // seconds
}

// --- Boot ----------------------------------------------------------------------

double RunBoot(System& sys) {
  double us = 0;
  sim::SpawnOpts opts;
  opts.name = "init";
  opts.cred.sid = sys.kernel->labels().Intern("init_t");
  opts.exe = sim::kBinSh;
  Pid pid = sys.sched->Spawn(opts, [&](Proc& p) {
    Stopwatch sw;
    sw.Start();
    auto env = p.task().env;
    // Read rc configuration.
    std::string text;
    for (const char* conf : {"/etc/ld.so.conf", "/etc/apache2.conf", "/etc/java.conf"}) {
      int fd = static_cast<int>(p.Open(conf, sim::kORdOnly));
      if (fd >= 0) {
        p.Read(fd, &text, 4096);
        p.Close(fd);
      }
    }
    apps::InitScriptWritePidfile(p, "/var/run/init.pid");
    // Start daemons: each is a fork+execve plus its own work.
    for (const char* daemon : {sim::kDbusDaemon, sim::kSshd, sim::kApache, sim::kPython,
                               sim::kJava, sim::kDstat}) {
      int64_t child = p.Fork([daemon, env](Proc& c) {
        c.Execve(daemon, {daemon}, env);
        c.Exit(127);
      });
      p.Waitpid(static_cast<sim::Pid>(child));
    }
    // The bus socket published by a real dbus startup (the child maps the
    // daemon image so its call sites resolve).
    int64_t dbus = p.Fork([](Proc& c) {
      int fd = static_cast<int>(c.Open(sim::kDbusDaemon, sim::kORdOnly));
      c.MmapFd(fd);
      c.Close(fd);
      apps::DbusDaemon::PublishSocket(c, "/var/run/dbus/boot_bus_socket");
      c.Exit(0);
    });
    p.Waitpid(static_cast<sim::Pid>(dbus));
    // Run init scripts (shell interpreter frames + config reads + pidfiles).
    sim::StatBuf st;
    for (int i = 0; i < 150; ++i) {
      sim::InterpFrame script(p, sim::InterpLang::kBash,
                              "/etc/init.d/rc" + std::to_string(i), 1);
      int fd = static_cast<int>(p.Open("/etc/ld.so.conf", sim::kORdOnly));
      if (fd >= 0) {
        p.Read(fd, &text, 4096);
        p.Close(fd);
      }
      p.Stat("/etc/passwd", &st);
      p.Stat("/var/run", &st);
      p.Access("/usr/bin", sim::AccessBit(sim::Access::kExec));
      apps::InitScriptWritePidfile(p, "/var/run/rc" + std::to_string(i) + ".pid");
    }
    us = sw.ElapsedUs();
  });
  sys.sched->RunUntilExit(pid);
  return us / 1e6;
}

// --- Web -----------------------------------------------------------------------

struct WebResult {
  double latency_ms = 0;
  double throughput_kbs = 0;
};

WebResult RunWeb(System& sys, int clients) {
  // "Database": random entries served through a PHP page.
  sys.kernel->MkFileAt("/var/www/app/db.dat", std::string(4096, 'd'), 0644, sim::kWebUid,
                       sim::kWebUid, "httpd_sys_content_t");
  sys.kernel->MkFileAt("/var/www/app/lib.php", "<?php /* helpers */ ?>", 0644,
                       sim::kWebUid, sim::kWebUid, "httpd_user_script_exec_t");
  constexpr int kTotalRequests = 1200;
  int per_client = std::max(40, kTotalRequests / clients);
  int workers = std::min(clients, 8);  // worker pool, as Apache would
  uint64_t bytes = 0;
  Stopwatch sw;
  sw.Start();
  std::vector<Pid> pids;
  for (int w = 0; w < workers; ++w) {
    sim::SpawnOpts opts;
    opts.name = "apache-worker";
    opts.exe = sim::kApache;
    opts.cred.sid = sys.kernel->labels().Intern("httpd_t");
    pids.push_back(sys.sched->Spawn(opts, [&, per_client](Proc& p) {
      // mod_php: the PHP runtime is mapped into the Apache worker.
      int php_fd = static_cast<int>(p.Open(sim::kPhp, sim::kORdOnly));
      p.MmapFd(php_fd);
      p.Close(php_fd);
      apps::WebConfig cfg;
      cfg.request_work = 60;
      cfg.access_log = true;
      apps::Webserver server(cfg);
      apps::PhpInterp php(p, "/var/www/app/index.php");
      std::string body;
      for (int i = 0; i < per_client; ++i) {
        if (server.HandleRequest(p, "/index.html", &body) == 200) {
          bytes += body.size();
        }
        // The PHP page pulls in its helper script...
        if (auto lib = php.Include("lib.php", 11)) {
          bytes += lib->size();
        }
        // ...and reads the "database" through a file descriptor (as a real
        // DB client would read its socket), not through include().
        int db_fd = static_cast<int>(p.Open("/var/www/app/db.dat", sim::kORdOnly));
        if (db_fd >= 0) {
          std::string row;
          p.Read(db_fd, &row, 4096);
          bytes += row.size();
          p.Close(db_fd);
        }
      }
    }));
  }
  for (Pid pid : pids) {
    sys.sched->RunUntilExit(pid);
  }
  double total_us = sw.ElapsedUs();
  int requests = per_client * workers;
  WebResult out;
  out.latency_ms = total_us / 1e3 / requests;
  out.throughput_kbs = static_cast<double>(bytes) / 1024.0 / (total_us / 1e6);
  return out;
}

struct Cell {
  Sample sample;
};

// Aggregate verdict-cache effectiveness across every PF Full system used by
// the macrobenchmarks.
struct VcacheTotals {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t bypasses = 0;
  uint64_t state_hits = 0;
  uint64_t state_misses = 0;
  uint64_t bypass_causes[core::kBypassCauseCount] = {};

  void Add(const core::EngineStats& s) {
    hits += s.vcache_hits;
    misses += s.vcache_misses;
    bypasses += s.vcache_bypasses;
    state_hits += s.vcache_state_hits;
    state_misses += s.vcache_state_misses;
    for (size_t i = 0; i < core::kBypassCauseCount; ++i) {
      bypass_causes[i] += s.vcache_bypass_causes[i];
    }
  }
  uint64_t total() const { return hits + misses + bypasses; }
  double hit_rate() const {
    return total() == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total());
  }
};

void PrintRow(const char* name, const char* unit, const Sample (&cells)[4]) {
  std::printf("%-18s", name);
  for (int m = 0; m < 4; ++m) {
    double pct = OverheadPct(cells[0].mean, cells[m].mean);
    // For throughput, positive overhead means fewer Kb/s.
    if (m == 0) {
      std::printf("  %10.3f±%-7.3f", cells[m].mean, cells[m].ci95);
    } else {
      std::printf("  %10.3f±%-5.3f(%+.1f%%)", cells[m].mean, cells[m].ci95, pct);
    }
  }
  std::printf(" %s\n", unit);
}

void EmitRow(JsonWriter& json, const std::string& name, const Sample (&cells)[4]) {
  json.BeginObject(name);
  json.Number("without_pf", cells[0].mean);
  json.Number("pf_base", cells[1].mean);
  json.Number("pf_legacy", cells[2].mean);
  json.Number("pf_full", cells[3].mean);
  json.EndObject();
}

}  // namespace

void Run(const char* json_path) {
  Caption("Table 7: macrobenchmarks (mean ± 95% CI; % overhead vs Without PF)");
  std::printf("%-18s  %16s        %16s        %16s        %16s\n", "benchmark",
              "Without PF", "PF Base", "PF Legacy", "PF Full");

  const Mode modes[] = {Mode::kWithoutPf, Mode::kPfBase, Mode::kPfLegacy, Mode::kPfFull};
  (void)ModeName;
  VcacheTotals vcache;
  JsonWriter json;
  json.BeginObject("table7");

  // Apache Build.
  {
    Sample cells[4];
    for (int m = 0; m < 4; ++m) {
      std::vector<double> runs;
      for (int r = 0; r < kRepeats; ++r) {
        auto sys = MakeSystem(modes[m]);
        runs.push_back(RunBuild(*sys));
        if (modes[m] == Mode::kPfFull) {
          vcache.Add(sys->engine->stats());
        }
      }
      cells[m] = SummarizeTrimmed(runs);
    }
    PrintRow("Apache Build", "(s)", cells);
    EmitRow(json, "apache_build_s", cells);
  }
  // Boot.
  {
    Sample cells[4];
    for (int m = 0; m < 4; ++m) {
      std::vector<double> runs;
      for (int r = 0; r < kRepeats; ++r) {
        auto sys = MakeSystem(modes[m]);
        runs.push_back(RunBoot(*sys));
        if (modes[m] == Mode::kPfFull) {
          vcache.Add(sys->engine->stats());
        }
      }
      cells[m] = SummarizeTrimmed(runs);
    }
    PrintRow("Boot", "(s)", cells);
    EmitRow(json, "boot_s", cells);
  }
  // Web.
  for (int clients : {1, 1000}) {
    Sample lat[4], thr[4];
    for (int m = 0; m < 4; ++m) {
      std::vector<double> lat_runs, thr_runs;
      for (int r = 0; r < kRepeats; ++r) {
        auto sys = MakeSystem(modes[m]);
        WebResult res = RunWeb(*sys, clients);
        lat_runs.push_back(res.latency_ms);
        thr_runs.push_back(res.throughput_kbs);
        if (modes[m] == Mode::kPfFull) {
          vcache.Add(sys->engine->stats());
        }
      }
      lat[m] = SummarizeTrimmed(lat_runs);
      thr[m] = SummarizeTrimmed(thr_runs);
    }
    std::string lname = "Web" + std::to_string(clients) + "-L";
    std::string tname = "Web" + std::to_string(clients) + "-T";
    PrintRow(lname.c_str(), "(ms)", lat);
    PrintRow(tname.c_str(), "(Kb/s)", thr);
    EmitRow(json, "web" + std::to_string(clients) + "_latency_ms", lat);
    EmitRow(json, "web" + std::to_string(clients) + "_throughput_kbs", thr);
  }

  std::printf("\nPF Full verdict cache across all macro workloads: "
              "%.1f%% hit / %.1f%% miss / %.1f%% bypass (%llu decisions)\n",
              vcache.hit_rate() * 100.0,
              vcache.total() == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(vcache.misses) /
                        static_cast<double>(vcache.total()),
              vcache.total() == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(vcache.bypasses) /
                        static_cast<double>(vcache.total()),
              static_cast<unsigned long long>(vcache.total()));
  std::printf("  of which automaton-keyed (stateful tier): %llu hits / %llu misses\n",
              static_cast<unsigned long long>(vcache.state_hits),
              static_cast<unsigned long long>(vcache.state_misses));
  if (vcache.bypasses > 0) {
    std::printf("  bypass causes:");
    for (size_t i = 0; i < core::kBypassCauseCount; ++i) {
      if (vcache.bypass_causes[i] > 0) {
        std::printf(" %s=%llu", core::BypassCauseName(static_cast<uint8_t>(1u << i)),
                    static_cast<unsigned long long>(vcache.bypass_causes[i]));
      }
    }
    std::printf("\n");
  }
  json.BeginObject("vcache");
  json.Number("hit_rate", vcache.hit_rate());
  json.Number("hits", static_cast<double>(vcache.hits));
  json.Number("misses", static_cast<double>(vcache.misses));
  json.Number("bypasses", static_cast<double>(vcache.bypasses));
  json.Number("state_hits", static_cast<double>(vcache.state_hits));
  json.Number("state_misses", static_cast<double>(vcache.state_misses));
  json.BeginObject("bypass_causes");
  for (size_t i = 0; i < core::kBypassCauseCount; ++i) {
    json.Number(core::BypassCauseName(static_cast<uint8_t>(1u << i)),
                static_cast<double>(vcache.bypass_causes[i]));
  }
  json.EndObject();
  json.EndObject();
  json.EndObject();
  json.WriteTo(json_path);
  std::printf("\nExpected shape (paper): PF Base within ~1%%, PF Full within ~4%% on\n"
              "every macrobenchmark (PF Legacy = full rules on the legacy tree walker;\n"
              "PF Full adds the compiled evaluator + verdict cache). The verdict cache\n"
              "should serve the majority of PF Full decisions (hit rate >= 50%%).\n");
}

}  // namespace pf::bench

int main(int argc, char** argv) {
  pf::bench::Run(pf::bench::JsonPathFromArgs(argc, argv));
  return 0;
}
