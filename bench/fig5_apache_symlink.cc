// Figure 5: Apache's SymLinksIfOwnerMatch program checks vs. the equivalent
// Process Firewall rule (R8), in requests per second, as a function of path
// length (n) and number of concurrent clients (c).
//
// The program check performs an extra lstat (and stat for links) per path
// component on every request; the rule performs the same owner comparison
// inside pathname resolution with no extra system calls. The paper measures
// a 3-8% request-rate improvement that grows with path depth.

#include "bench/bench_util.h"
#include "src/apps/webserver.h"

namespace pf::bench {
namespace {

using sim::Pid;
using sim::Proc;

constexpr int kRequests = 3000;  // total requests per measurement
constexpr int kRepeats = 3;

// Builds docroot content at depth n and returns the URL.
std::string BuildContent(sim::Kernel& k, int depth) {
  std::string dir = "/var/www";
  std::string url;
  for (int i = 1; i < depth; ++i) {
    dir += "/d" + std::to_string(i);
    url += "/d" + std::to_string(i);
    k.MkDirAt(dir, 0755, sim::kWebUid, sim::kWebUid, "httpd_sys_content_t");
  }
  url += "/index.html";
  k.MkFileAt(dir + "/index.html", "<html>deep</html>", 0644, sim::kWebUid, sim::kWebUid,
             "httpd_sys_content_t");
  return url;
}

// Measures requests/second with `clients` worker processes splitting the
// request load.
double MeasureRps(System& sys, const apps::WebConfig& config, const std::string& url,
                  int clients) {
  std::vector<double> runs;
  for (int r = 0; r < kRepeats; ++r) {
    // Enough work per client that worker startup does not dominate at
    // high concurrency.
    int per_client = std::max(60, kRequests / clients);
    Stopwatch sw;
    sw.Start();
    std::vector<Pid> pids;
    for (int c = 0; c < clients; ++c) {
      sim::SpawnOpts opts;
      opts.name = "apache-worker";
      opts.exe = sim::kApache;
      opts.cred.sid = sys.kernel->labels().Intern("httpd_t");
      pids.push_back(sys.sched->Spawn(opts, [&, per_client](Proc& p) {
        apps::Webserver server(config);
        std::string body;
        for (int i = 0; i < per_client; ++i) {
          int status = server.HandleRequest(p, url, &body);
          if (status != 200) {
            p.Exit(status);
          }
        }
      }));
    }
    for (Pid pid : pids) {
      int code = sys.sched->RunUntilExit(pid);
      if (code != 0) {
        std::fprintf(stderr, "request failed with status %d\n", code);
        std::abort();
      }
    }
    double seconds = sw.ElapsedUs() / 1e6;
    runs.push_back(static_cast<double>(per_client * clients) / seconds);
  }
  return Summarize(runs).mean;
}

}  // namespace

void Run() {
  Caption("Figure 5: SymLinksIfOwnerMatch — program checks vs. PF rule R8 (requests/s)");
  std::printf("%-18s %12s %12s %10s\n", "c clients, n path", "Program", "PF Rules",
              "PF gain");

  const int client_counts[] = {1, 10, 200};
  const int depths[] = {1, 3, 5, 9};

  for (int clients : client_counts) {
    for (int depth : depths) {
      // Program-check configuration: checks in Apache, PF idle.
      // Both configurations carry realistic per-request server work
      // (response composition + access logging) so the defense cost is a
      // fraction of the request, as on a real Apache.
      apps::WebConfig base_cfg;
      base_cfg.request_work = 250;
      base_cfg.access_log = true;

      double prog_rps;
      {
        System sys;
        sys.engine->config().enabled = false;
        std::string url = BuildContent(*sys.kernel, depth);
        apps::WebConfig cfg = base_cfg;
        cfg.symlinks_if_owner_match = true;
        prog_rps = MeasureRps(sys, cfg, url, clients);
      }
      // Rule configuration: checks in the Process Firewall (R8), program
      // checks off (the paper's recommended deployment).
      double pf_rps;
      {
        System sys;
        sys.InstallRules({apps::RuleLibrary::ApacheSymlinkOwnerRule()});
        std::string url = BuildContent(*sys.kernel, depth);
        apps::WebConfig cfg = base_cfg;
        cfg.symlinks_if_owner_match = false;
        pf_rps = MeasureRps(sys, cfg, url, clients);
      }
      std::printf("c=%-4d n=%-9d %12.0f %12.0f %+9.2f%%\n", clients, depth, prog_rps,
                  pf_rps, OverheadPct(prog_rps, pf_rps));
    }
  }
  std::printf("\nExpected shape (paper): the PF rule serves more requests than the\n"
              "program checks, with the gain growing with path length (3%% at n=1\n"
              "to ~8%% at n=9 for 200 clients).\n");

  // Observability showcase (outside the timed measurements): one R8-guarded
  // request run with every tracepoint live, dumped as a Chrome trace so the
  // per-component link checks inside pathname resolution are visible on a
  // timeline (build/traces/fig5_symlink.json).
  {
    System sys;
    sys.InstallRules({apps::RuleLibrary::ApacheSymlinkOwnerRule()});
    std::string url = BuildContent(*sys.kernel, 3);
    apps::WebConfig cfg;
    cfg.request_work = 250;
    cfg.access_log = true;
    cfg.symlinks_if_owner_match = false;
    sys.engine->trace().Enable();
    MeasureRps(sys, cfg, url, 1);
    sys.engine->trace().Disable();
    DumpChromeTrace(sys, "fig5_symlink.json");
  }
}

}  // namespace pf::bench

int main() {
  pf::bench::Run();
  return 0;
}
