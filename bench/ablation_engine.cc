// Engine ablations (google-benchmark): the design choices DESIGN.md calls
// out, measured in isolation against a hand-built authorization request —
// no scheduler in the loop.
//
//   * linear rule scan vs. entrypoint-indexed chains, over rule-base size
//   * user-stack unwinding vs. call depth, and the per-syscall context cache
//   * lazy vs. eager context retrieval
//   * the verdict cache: steady-state hit path vs. full traversal, with
//     hit/miss/bypass rates reported as counters
//   * pftables rule compilation throughput

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/analysis/symbolic/model.h"
#include "src/audit/hub.h"
#include "src/core/verify.h"

namespace pf::bench {
namespace {

// A System plus a hand-crafted task with /bin/true mapped and a call stack
// of the requested depth.
struct EngineFixture {
  System sys;
  sim::Task task;

  explicit EngineFixture(int frames = 2, int rules = 0, bool indexed = true) {
    if (rules > 0) {
      sys.InstallRules(SyntheticRuleBase(rules));
    }
    sys.engine->config().ept_chains = indexed;
    // Off by default so each ablation measures its own mechanism; the
    // BM_AuthorizeVerdictCache benchmarks opt back in, and the
    // BM_AuthorizeCompiled* benchmarks re-enable the program evaluator.
    sys.engine->config().verdict_cache = false;
    sys.engine->config().compiled_eval = false;
    task.pid = 77;
    task.comm = "bench";
    task.exe = sim::kBinTrue;
    task.cred.sid = sys.kernel->labels().Intern("staff_t");
    task.cwd = sys.kernel->vfs().root()->id();
    task.mm.Reset(sys.kernel->AslrStackBase());
    sys.kernel->MapImage(task, sys.kernel->LookupNoHooks(sim::kBinTrue), sim::kBinTrue);
    const sim::Mapping* map = task.mm.FindMappingByPath(sim::kBinTrue);
    for (int i = 0; i < frames; ++i) {
      task.mm.PushFrame(map->base + 0x100 * static_cast<uint64_t>(i + 1), 16, false);
    }
  }

  sim::AccessRequest OpenRequest() {
    sim::AccessRequest req;
    req.task = &task;
    req.op = sim::Op::kFileOpen;
    auto inode = sys.kernel->LookupNoHooks("/etc/passwd");
    req.inode = inode.get();
    req.id = inode->id();
    req.syscall_nr = sim::SyscallNr::kOpen;
    keep_alive_ = inode;
    return req;
  }

  std::shared_ptr<sim::Inode> keep_alive_;
};

void BM_AuthorizeLinearScan(benchmark::State& state) {
  EngineFixture fx(/*frames=*/2, /*rules=*/static_cast<int>(state.range(0)),
                   /*indexed=*/false);
  sim::AccessRequest req = fx.OpenRequest();
  for (auto _ : state) {
    ++fx.task.syscall_count;  // new syscall: invalidates the context cache
    benchmark::DoNotOptimize(fx.sys.engine->Authorize(req));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AuthorizeLinearScan)->Arg(16)->Arg(128)->Arg(512)->Arg(1218)->Arg(2048);

void BM_AuthorizeIndexedChains(benchmark::State& state) {
  EngineFixture fx(/*frames=*/2, /*rules=*/static_cast<int>(state.range(0)),
                   /*indexed=*/true);
  sim::AccessRequest req = fx.OpenRequest();
  for (auto _ : state) {
    ++fx.task.syscall_count;
    benchmark::DoNotOptimize(fx.sys.engine->Authorize(req));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AuthorizeIndexedChains)->Arg(16)->Arg(128)->Arg(512)->Arg(1218)->Arg(2048);

// The arena-program evaluator against the legacy tree walker, on the same
// cache-miss Authorize path (verdict cache off, fresh syscall every
// iteration). Compare against BM_AuthorizeLinearScan / BM_AuthorizeIndexedChains
// at equal rule counts: the delta is pure dispatch cost.
void BM_AuthorizeCompiledScan(benchmark::State& state) {
  EngineFixture fx(/*frames=*/2, /*rules=*/static_cast<int>(state.range(0)),
                   /*indexed=*/false);
  fx.sys.engine->config().compiled_eval = true;
  sim::AccessRequest req = fx.OpenRequest();
  for (auto _ : state) {
    ++fx.task.syscall_count;
    benchmark::DoNotOptimize(fx.sys.engine->Authorize(req));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AuthorizeCompiledScan)
    ->Arg(16)
    ->Arg(128)
    ->Arg(512)
    ->Arg(1218)
    ->Arg(2048)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(100000)
    ->Arg(200000);

// Tuple-space pre-classification (DESIGN.md §5g) against the bucket scan
// above, at matched rule counts: instead of walking every candidate record,
// Authorize hashes the request's exact-match dimensions (subject, resolved
// entrypoint, object, --ino) into the per-bucket tuple tables and evaluates
// only the surviving slices plus the residual. The synthetic distributor
// base is all entrypoint rules, so the probe resolves one tuple (or none)
// and latency stays flat while the scan path grows linearly — the scaling
// headline the bench-smoke CI job asserts (100k within 3x of 1218).
void BM_AuthorizeTupleScan(benchmark::State& state) {
  EngineFixture fx(/*frames=*/2, /*rules=*/static_cast<int>(state.range(0)),
                   /*indexed=*/false);
  fx.sys.engine->config().compiled_eval = true;
  fx.sys.engine->config().tuple_dispatch = true;
  sim::AccessRequest req = fx.OpenRequest();
  for (auto _ : state) {
    ++fx.task.syscall_count;
    benchmark::DoNotOptimize(fx.sys.engine->Authorize(req));
  }
  state.SetItemsProcessed(state.iterations());
  const core::ClassifierStats cs =
      core::ComputeClassifierStats(fx.sys.engine->PublishedRuleset()->program);
  state.counters["tuples"] = static_cast<double>(cs.tuples);
  state.counters["max_slice"] = static_cast<double>(cs.max_slice);
  state.counters["residual"] = static_cast<double>(cs.residual_rules);
}
BENCHMARK(BM_AuthorizeTupleScan)
    ->Arg(1218)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(100000)
    ->Arg(200000);

// Tuple dispatch layered over the entrypoint-indexed chains: the classifier
// takes precedence in ExecChain, so this measures the combined configuration
// a production commit would run (both features on).
void BM_AuthorizeTupleIndexed(benchmark::State& state) {
  EngineFixture fx(/*frames=*/2, /*rules=*/static_cast<int>(state.range(0)),
                   /*indexed=*/true);
  fx.sys.engine->config().compiled_eval = true;
  fx.sys.engine->config().tuple_dispatch = true;
  sim::AccessRequest req = fx.OpenRequest();
  for (auto _ : state) {
    ++fx.task.syscall_count;
    benchmark::DoNotOptimize(fx.sys.engine->Authorize(req));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AuthorizeTupleIndexed)
    ->Arg(1218)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(100000)
    ->Arg(200000);

// The compiled evaluator with the computed-goto threaded dispatcher turned
// off: the same arena program run through the portable switch loop. The
// delta against BM_AuthorizeCompiledScan is the pure dispatch-strategy win;
// the bench-smoke CI job asserts threaded <= switch <= legacy medians.
void BM_AuthorizeSwitchScan(benchmark::State& state) {
  EngineFixture fx(/*frames=*/2, /*rules=*/static_cast<int>(state.range(0)),
                   /*indexed=*/false);
  fx.sys.engine->config().compiled_eval = true;
  fx.sys.engine->config().threaded_eval = false;
  sim::AccessRequest req = fx.OpenRequest();
  for (auto _ : state) {
    ++fx.task.syscall_count;
    benchmark::DoNotOptimize(fx.sys.engine->Authorize(req));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AuthorizeSwitchScan)->Arg(16)->Arg(128)->Arg(512)->Arg(1218)->Arg(2048);

void BM_AuthorizeCompiledIndexed(benchmark::State& state) {
  EngineFixture fx(/*frames=*/2, /*rules=*/static_cast<int>(state.range(0)),
                   /*indexed=*/true);
  fx.sys.engine->config().compiled_eval = true;
  sim::AccessRequest req = fx.OpenRequest();
  for (auto _ : state) {
    ++fx.task.syscall_count;
    benchmark::DoNotOptimize(fx.sys.engine->Authorize(req));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AuthorizeCompiledIndexed)->Arg(16)->Arg(128)->Arg(512)->Arg(1218)->Arg(2048);

// The tracing tax with every tracepoint stream live (decision + rule +
// ctx + vcache records, latency histograms): compare against
// BM_AuthorizeCompiledIndexed at equal rule counts. The ISSUE's acceptance
// bound for the *disabled* case (<2% vs. a PF_NO_TRACE build) is asserted
// by the bench-smoke CI job over BM_AuthorizeCompiledIndexed itself.
void BM_AuthorizeCompiledTraced(benchmark::State& state) {
  EngineFixture fx(/*frames=*/2, /*rules=*/static_cast<int>(state.range(0)),
                   /*indexed=*/true);
  fx.sys.engine->config().compiled_eval = true;
  fx.sys.engine->trace().Enable();
  sim::AccessRequest req = fx.OpenRequest();
  for (auto _ : state) {
    ++fx.task.syscall_count;
    benchmark::DoNotOptimize(fx.sys.engine->Authorize(req));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["trace_records"] =
      static_cast<double>(fx.sys.engine->trace().records());
  state.counters["trace_drops"] =
      static_cast<double>(fx.sys.engine->trace().drops());
}
BENCHMARK(BM_AuthorizeCompiledTraced)->Arg(16)->Arg(128)->Arg(512)->Arg(1218)->Arg(2048);

// The audit tax with the security-event pipeline armed (suppression off,
// every kind enabled). The workload is an allowed open, so no records are
// emitted: this measures the pure observer prologue/epilogue the audit
// pipeline adds to every decision — the ISSUE's <5% acceptance bound for
// the *enabled* case, asserted by the bench-smoke CI job as the geometric
// mean across rule counts vs. BM_AuthorizeCompiledIndexed in this binary
// (a PF_AUDIT=OFF build runs alongside as the compile gate and reference).
void BM_AuthorizeCompiledAudited(benchmark::State& state) {
  EngineFixture fx(/*frames=*/2, /*rules=*/static_cast<int>(state.range(0)),
                   /*indexed=*/true);
  fx.sys.engine->config().compiled_eval = true;
  audit::AuditHub::Config acfg;
  acfg.bucket_capacity = 0;
  fx.sys.engine->audit().Enable(acfg);
  sim::AccessRequest req = fx.OpenRequest();
  for (auto _ : state) {
    ++fx.task.syscall_count;
    benchmark::DoNotOptimize(fx.sys.engine->Authorize(req));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["audit_emitted"] =
      static_cast<double>(fx.sys.engine->audit().emitted());
}
BENCHMARK(BM_AuthorizeCompiledAudited)->Arg(16)->Arg(128)->Arg(512)->Arg(1218)->Arg(2048);

// Commit-time cost of the whole compilation pipeline (bucket build + arena
// lowering) over the staging rule base — the price paid once per pftables
// mutation, amortized over every subsequent hook.
void BM_CompileProgram(benchmark::State& state) {
  System sys;
  sys.InstallRules(SyntheticRuleBase(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto snap = sys.engine->CompileRuleset();
    benchmark::DoNotOptimize(snap->program.arena.data());
  }
  state.SetItemsProcessed(state.iterations());
  auto snap = sys.engine->CompileRuleset();
  state.counters["arena_words"] = static_cast<double>(snap->program.arena.size());
  state.counters["classifier_ns"] =
      static_cast<double>(snap->program.classifier_build_ns);
  state.counters["automata_ns"] = static_cast<double>(snap->program.automata_build_ns);
}
BENCHMARK(BM_CompileProgram)->Arg(128)->Arg(1218)->Arg(2048)->Arg(100000);

// The same pipeline with the STATE-protocol automaton lowering pass (§5i)
// ablated out. The delta against BM_CompileProgram at equal rule counts is
// the commit-time price of making stateful decisions cacheable — a
// reference number; the bench-smoke CI job gates the pass's self-timed
// automata_ns share of BM_CompileProgram/1218 at <10%, which the
// machine-noise between two separately-run benchmarks cannot corrupt.
void BM_CompileProgramNoAutomata(benchmark::State& state) {
  System sys;
  sys.engine->config().automata = false;
  sys.InstallRules(SyntheticRuleBase(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto snap = sys.engine->CompileRuleset();
    benchmark::DoNotOptimize(snap->program.arena.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompileProgramNoAutomata)->Arg(128)->Arg(1218)->Arg(2048)->Arg(100000);

// Incremental delta-commits: one-rule churn in a tiny `edits` chain against
// a 100k-rule committed base. CommitRuleset detects the single dirty chain
// (Chain::edit_seq), relowers only it into a copy of the published arena,
// and delta-verifies just the appended records — the bench-smoke CI job
// asserts this stays under 5% of the from-scratch BM_CompileProgram/100000
// time. The alternating append/delete keeps the staged base size-stable so
// every iteration measures the same one-edit delta.
void BM_IncrementalCommit(benchmark::State& state) {
  System sys;
  sys.InstallRules(SyntheticRuleBase(static_cast<int>(state.range(0))));
  core::Pftables& pft = *sys.pftables;
  // Creating `edits` changes the chain-name set, so this first commit is a
  // full compile; every commit in the timed loop then deltas against it.
  pft.Exec("pftables -N edits");
  if (core::Status s = pft.Exec("pftables -A edits -o FILE_OPEN -d shadow_t -j DROP");
      !s.ok()) {
    state.SkipWithError(s.message().c_str());
    return;
  }
  bool add = true;
  for (auto _ : state) {
    core::Status s = add ? pft.Exec("pftables -A edits -o FILE_OPEN -d shadow_t -j DROP")
                         : pft.Exec("pftables -D edits 2");
    if (!s.ok()) {
      state.SkipWithError(s.message().c_str());
      return;
    }
    add = !add;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["delta_commits"] = static_cast<double>(sys.engine->delta_commits());
  state.counters["full_commits"] = static_cast<double>(sys.engine->full_commits());
}
BENCHMARK(BM_IncrementalCommit)->Arg(1218)->Arg(100000);

// The load-time verifier pass alone, over an already-lowered program: the
// marginal cost verification adds to every commit. The bench-smoke CI job
// asserts it stays under 5% of BM_CompileProgram at 1218 rules.
void BM_VerifyProgram(benchmark::State& state) {
  System sys;
  sys.InstallRules(SyntheticRuleBase(static_cast<int>(state.range(0))));
  auto snap = sys.engine->CompileRuleset();
  for (auto _ : state) {
    core::VerifyResult vr = core::VerifyProgram(snap->program);
    benchmark::DoNotOptimize(vr.report.empty());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VerifyProgram)->Arg(128)->Arg(1218)->Arg(2048);

// The symbolic decision-space model (src/analysis/symbolic/) over the same
// synthetic bases: the full-partition build pfcheck's exact tier and pfdiff
// run per invocation. The bench-smoke CI job budgets the 1218-rule build at
// < 250 ms (summary.symbolic_analysis_us).
void BM_BuildSymbolicModel(benchmark::State& state) {
  System sys;
  sys.InstallRules(SyntheticRuleBase(static_cast<int>(state.range(0))));
  auto snap = sys.engine->CompileRuleset();
  size_t regions = 0;
  for (auto _ : state) {
    const analysis::symbolic::SymbolicModel model =
        analysis::symbolic::BuildModel(*snap, sys.engine->policy());
    regions = model.region_count;
    benchmark::DoNotOptimize(regions);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["regions"] = static_cast<double>(regions);
}
BENCHMARK(BM_BuildSymbolicModel)->Arg(128)->Arg(1218)->Arg(10000)->Arg(100000);

void BM_UnwindDepth(benchmark::State& state) {
  EngineFixture fx(/*frames=*/static_cast<int>(state.range(0)));
  for (auto _ : state) {
    core::UnwindResult res = core::UnwindUserStack(fx.task);
    benchmark::DoNotOptimize(res.frames.size());
  }
}
BENCHMARK(BM_UnwindDepth)->Arg(2)->Arg(8)->Arg(16)->Arg(32)->Arg(63);

void BM_ContextCache(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  EngineFixture fx(/*frames=*/8, /*rules=*/64, /*indexed=*/true);
  fx.sys.engine->config().cache_context = cached;
  sim::AccessRequest req = fx.OpenRequest();
  // Multiple hook invocations per "syscall" (as pathname resolution does).
  for (auto _ : state) {
    if (state.iterations() % 8 == 0) {
      ++fx.task.syscall_count;
    }
    benchmark::DoNotOptimize(fx.sys.engine->Authorize(req));
  }
}
BENCHMARK(BM_ContextCache)->Arg(0)->Arg(1);

void BM_LazyVsEagerContext(benchmark::State& state) {
  const bool lazy = state.range(0) != 0;
  // Rules that never need entrypoints: lazy mode should skip every unwind.
  EngineFixture fx(/*frames=*/16, /*rules=*/0, /*indexed=*/true);
  core::Pftables pft(fx.sys.engine);
  for (int i = 0; i < 32; ++i) {
    pft.Exec("pftables -o FILE_WRITE -d shadow_t -j DROP");
  }
  fx.sys.engine->config().lazy_context = lazy;
  fx.sys.engine->config().cache_context = false;
  sim::AccessRequest req = fx.OpenRequest();
  for (auto _ : state) {
    ++fx.task.syscall_count;
    benchmark::DoNotOptimize(fx.sys.engine->Authorize(req));
  }
}
BENCHMARK(BM_LazyVsEagerContext)->Arg(0)->Arg(1);

void ReportVcacheRates(benchmark::State& state, const core::EngineStats& s) {
  double total =
      static_cast<double>(s.vcache_hits + s.vcache_misses + s.vcache_bypasses);
  if (total <= 0) {
    total = 1;
  }
  state.counters["hit_rate"] = static_cast<double>(s.vcache_hits) / total;
  state.counters["miss_rate"] = static_cast<double>(s.vcache_misses) / total;
  state.counters["bypass_rate"] = static_cast<double>(s.vcache_bypasses) / total;
  state.counters["state_hits"] = static_cast<double>(s.vcache_state_hits);
}

// The hot-path payoff: identical repeated access against the paper-sized
// rule base, cache off (full traversal each time) vs. on (key hash + one
// shard probe). Arg(1) should report hit_rate ~= 1.
void BM_AuthorizeVerdictCache(benchmark::State& state) {
  const bool vcache = state.range(0) != 0;
  EngineFixture fx(/*frames=*/2, /*rules=*/1218, /*indexed=*/true);
  fx.sys.engine->config().verdict_cache = vcache;
  sim::AccessRequest req = fx.OpenRequest();
  fx.sys.engine->ResetStats();
  for (auto _ : state) {
    ++fx.task.syscall_count;
    benchmark::DoNotOptimize(fx.sys.engine->Authorize(req));
  }
  ReportVcacheRates(state, fx.sys.engine->stats());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AuthorizeVerdictCache)->Arg(0)->Arg(1);

// Stateful rules, with and without the automaton tier (the AUTOMATA ablation
// rung). Arg(0): the lowering pass is off, the cacheability analysis pins
// the whole bucket, bypass_rate reports 1 and the cache adds only the
// per-request check. Arg(1): the STATE-set rule lowers, the verdict is keyed
// on the task's automaton state, and hit_rate reports ~1 with the hits
// served from the stateful tier (state_hits).
void BM_AuthorizeVerdictCacheStateful(benchmark::State& state) {
  const bool automata = state.range(0) != 0;
  EngineFixture fx(/*frames=*/2, /*rules=*/64, /*indexed=*/true);
  fx.sys.engine->config().automata = automata;
  core::Pftables pft(fx.sys.engine);
  pft.Exec("pftables -o FILE_OPEN -d etc_t -j STATE --set --key seen --value 1");
  fx.sys.engine->config().verdict_cache = true;
  sim::AccessRequest req = fx.OpenRequest();
  fx.sys.engine->ResetStats();
  for (auto _ : state) {
    ++fx.task.syscall_count;
    benchmark::DoNotOptimize(fx.sys.engine->Authorize(req));
  }
  ReportVcacheRates(state, fx.sys.engine->stats());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AuthorizeVerdictCacheStateful)->Arg(0)->Arg(1);

void BM_PftablesCompile(benchmark::State& state) {
  System sys;
  core::Pftables pft(sys.engine);
  size_t i = 0;
  for (auto _ : state) {
    pft.Exec("pftables -p /usr/bin/php5 -i 0x" + std::to_string(1000 + (i % 4096)) +
             " -o FILE_OPEN -d ~{SYSHIGH} -j DROP");
    if (++i % 4096 == 0) {
      pft.Exec("pftables -F input");
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PftablesCompile);

// Unwinding method comparison (paper §4.4): precise frame-pointer chains
// vs. unwind-table recovery vs. the prologue-scan heuristic, at equal depth.
void BM_UnwindMethod(benchmark::State& state) {
  const int method = static_cast<int>(state.range(0));  // 0=fp, 1=eh, 2=prologue
  System sys;
  std::string path = "/usr/bin/method" + std::to_string(method);
  auto inode = sys.kernel->MkFileAt(path, "\x7f" "ELF", 0755, 0, 0, "bin_t");
  auto img = std::make_unique<sim::BinaryImage>();
  img->entry_key = path;
  img->has_frame_pointers = method == 0;
  img->has_eh_info = method == 1;
  inode->binary = std::move(img);

  sim::Task task;
  task.pid = 78;
  task.exe = path;
  task.mm.Reset(sys.kernel->AslrStackBase());
  sys.kernel->MapImage(task, inode, path);
  const sim::Mapping* map = task.mm.FindMappingByPath(path);
  for (int i = 0; i < 12; ++i) {
    task.mm.PushFrame(map->base + 0x100 * static_cast<uint64_t>(i + 1), 16,
                      !map->has_frame_pointers);
  }
  for (auto _ : state) {
    core::UnwindResult res = core::UnwindUserStack(task);
    benchmark::DoNotOptimize(res.frames.size());
  }
  state.SetLabel(method == 0 ? "fp-chain" : method == 1 ? "unwind-tables" : "prologue");
}
BENCHMARK(BM_UnwindMethod)->Arg(0)->Arg(1)->Arg(2);

void BM_InterpUnwind(benchmark::State& state) {
  EngineFixture fx;
  // Build an interpreter frame list of the requested depth directly in the
  // task's arena.
  int depth = static_cast<int>(state.range(0));
  sim::Addr head = sim::kNullAddr;
  for (int i = 0; i < depth; ++i) {
    sim::Addr node = fx.task.mm.ArenaAlloc(24);
    uint32_t script_id = fx.task.RegisterScript("/var/www/s" + std::to_string(i));
    uint32_t line = static_cast<uint32_t>(i);
    uint32_t lang = 1;
    fx.task.mm.WriteU64(node, head);
    fx.task.mm.CopyToUser(node + 8, &script_id, 4);
    fx.task.mm.CopyToUser(node + 12, &line, 4);
    fx.task.mm.CopyToUser(node + 16, &lang, 4);
    head = node;
  }
  fx.task.mm.set_interp_head(head);
  for (auto _ : state) {
    core::InterpUnwindResult res = core::UnwindInterpStack(fx.task);
    benchmark::DoNotOptimize(res.frames.size());
  }
}
BENCHMARK(BM_InterpUnwind)->Arg(1)->Arg(8)->Arg(32);

}  // namespace
}  // namespace pf::bench

BENCHMARK_MAIN();
