// Table 8: entrypoint classification vs. invocation threshold, over the
// synthetic two-week deployment trace (5,234 entrypoints, ~410k accesses),
// plus the §6.3.2 launch-environment consistency study (318 programs).
//
// Ground truth is known by construction, so "False Positives" counts rules
// that would actually misfire. Paper shape: false positives decay with the
// threshold and reach zero at the trace's latest class switch (1149).

#include <cinttypes>

#include "bench/bench_util.h"
#include "src/analysis/symbolic/model.h"
#include "src/rulegen/synthetic.h"

namespace pf::bench {
namespace {

void Run() {
  using rulegen::AnalyzeThresholds;
  using rulegen::GenerateDeploymentTrace;
  using rulegen::Table8Row;

  rulegen::SyntheticTrace trace = GenerateDeploymentTrace();
  Caption("Table 8: entrypoint classification vs. invocation threshold");
  std::printf("synthetic deployment trace: %zu entrypoints, %" PRIu64 " access records\n\n",
              trace.entrypoints.size(), trace.total_accesses);
  std::printf("%10s %10s %10s %10s %14s %16s\n", "Threshold", "High Only", "Low Only",
              "Both", "Rules Produced", "False Positives");
  for (const Table8Row& row :
       AnalyzeThresholds(trace, {0, 5, 10, 50, 100, 500, 1000, 1149, 5000})) {
    std::printf("%10" PRIu64 " %10" PRIu64 " %10" PRIu64 " %10" PRIu64 " %14" PRIu64
                " %16" PRIu64 "\n",
                row.threshold, row.high_only, row.low_only, row.both, row.rules_produced,
                row.false_positives);
  }
  std::printf("\nPaper reference rows: t=0 -> 4570/664/0, 5234 rules, 525 FP;\n"
              "t=1149 -> 4229/480/525, 30 rules, 0 FP.\n");

  // Cause analysis of late-switching entrypoints (paper: of 28 entrypoints
  // switching after 50 invocations, 18 were library entrypoints).
  uint64_t late = 0;
  uint64_t late_library = 0;
  for (const auto& e : trace.entrypoints) {
    if (e.truth == rulegen::SyntheticEpt::Truth::kBoth && e.switch_at > 50) {
      ++late;
      if (e.in_library) {
        ++late_library;
      }
    }
  }
  std::printf("\nLate (>50 invocations) class switches: %" PRIu64 ", of which %" PRIu64
              " in library entrypoints (paper: 18 of 28)\n",
              late, late_library);

  Caption("Section 6.3.2: launch-environment consistency");
  rulegen::ConsistencyReport report = rulegen::AnalyzeLaunchConsistency();
  std::printf("programs launched: %d, consistent environment every launch: %d "
              "(paper: 232 of 318)\n",
              report.programs, report.consistent);
}

// Beyond the paper: the rule-generation pipeline at production rule counts
// (ROADMAP / DESIGN.md §5g). A distributor deployment that keeps every
// suggested entrypoint rule lands in the tens-of-thousands; this section
// materializes synthetic distributor bases at 1218 (the paper's PF Full) up
// to 200k rules and reports what commit-time costs: parse+install, the full
// lowering (with the classifier-build share), the verifier, and the shape
// of the tuple-space classifier the compile produced.
void RunScale() {
  Caption("Rule generation at scale: commit-time costs, 1218 -> 200k rules");
  std::printf("%8s %12s %12s %14s %12s %10s %10s %12s %10s\n", "Rules",
              "install ms", "compile ms", "classifier ms", "verify ms", "tuples",
              "max slice", "symbolic ms", "regions");
  for (int count : {1218, 10000, 50000, 100000, 200000}) {
    System sys;
    Stopwatch sw;
    sw.Start();
    sys.InstallRules(SyntheticRuleBase(count));
    const double install_us = sw.ElapsedUs();
    sw.Start();
    auto snap = sys.engine->CompileRuleset();
    const double compile_us = sw.ElapsedUs();
    const core::ClassifierStats cstats = core::ComputeClassifierStats(snap->program);
    // The symbolic decision-space model over the same compiled base: the
    // full-partition build whose 1218-rule wall time the CI budget bounds.
    const analysis::symbolic::SymbolicModel model =
        analysis::symbolic::BuildModel(*snap, sys.engine->policy());
    std::printf("%8d %12.1f %12.1f %14.1f %12.1f %10u %10u %12.1f %10zu\n",
                count, install_us / 1e3, compile_us / 1e3,
                static_cast<double>(snap->program.classifier_build_ns) / 1e6,
                static_cast<double>(snap->verify_ns) / 1e6, cstats.tuples,
                cstats.max_slice, static_cast<double>(model.build_us) / 1e3,
                model.region_count);
  }
}

}  // namespace
}  // namespace pf::bench

int main() {
  pf::bench::Run();
  pf::bench::RunScale();
  return 0;
}
