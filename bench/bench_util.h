// Shared benchmark scaffolding: a booted system, timing helpers, and
// fixed-width table printing in the paper's format.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/apps/programs.h"
#include "src/apps/rule_library.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sched.h"
#include "src/sim/sysimage.h"
#include "src/trace/export.h"
#include "src/trace/hub.h"

namespace pf::bench {

// A fully booted simulated system with the Process Firewall installed.
struct System {
  std::unique_ptr<sim::Kernel> kernel;
  core::Engine* engine = nullptr;  // owned by the kernel
  std::unique_ptr<core::Pftables> pftables;
  std::unique_ptr<sim::Scheduler> sched;

  explicit System(uint64_t seed = 0xbe7c) {
    kernel = std::make_unique<sim::Kernel>(seed);
    sim::BuildSysImage(*kernel);
    apps::InstallPrograms(*kernel);
    engine = core::InstallProcessFirewall(*kernel);
    pftables = std::make_unique<core::Pftables>(engine);
    sched = std::make_unique<sim::Scheduler>(*kernel);
  }

  void InstallRules(const std::vector<std::string>& rules) {
    core::Status s = pftables->ExecAll(rules);
    if (!s.ok()) {
      std::fprintf(stderr, "rule install failed: %s\n", s.message().c_str());
      std::abort();
    }
  }
};

// Drains an engine's trace rings and writes a Chrome trace_event file to
// traces/<name> under the current directory (build/traces/ when the benches
// run from the build tree, as run_bench.sh does). Load the file in
// chrome://tracing or ui.perfetto.dev. No-op when tracing is compiled out.
inline void DumpChromeTrace(System& sys, const char* name) {
  if (!trace::kTraceCompiledIn) {
    return;
  }
  std::vector<trace::TraceRecord> records = sys.engine->trace().Drain();
  std::error_code ec;
  std::filesystem::create_directories("traces", ec);
  const std::string path = std::string("traces/") + name;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  trace::NameTable names{&sys.kernel->labels()};
  out << trace::RenderChromeTrace(records, names);
  std::fprintf(stderr, "wrote %zu trace record(s) to %s\n", records.size(),
               path.c_str());
}

// Generates a synthetic distributor rule base of `count` entrypoint rules
// spread over the standard binaries (the paper's PF Full configuration uses
// 1218 rules produced with a low suggestion threshold).
inline std::vector<std::string> SyntheticRuleBase(int count) {
  const char* bins[] = {sim::kApache, sim::kPhp, sim::kPython, sim::kJava,
                        sim::kDbusDaemon, sim::kSshd, sim::kBinSh, sim::kDstat};
  const char* ops[] = {"FILE_OPEN", "FILE_READ", "FILE_WRITE", "DIR_SEARCH",
                       "LNK_FILE_READ"};
  std::vector<std::string> rules;
  rules.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "pftables -p %s -i 0x%x -o %s -d ~{SYSHIGH} -j DROP",
                  bins[i % (sizeof(bins) / sizeof(bins[0]))], 0x10000 + i * 0x40,
                  ops[i % (sizeof(ops) / sizeof(ops[0]))]);
    rules.emplace_back(buf);
  }
  return rules;
}

// Wall-clock timing of `iters` repetitions inside an already-running proc.
class Stopwatch {
 public:
  void Start() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct Sample {
  double mean = 0;
  double ci95 = 0;  // half-width of the 95% confidence interval
};

inline Sample Summarize(const std::vector<double>& xs) {
  Sample s;
  if (xs.empty()) {
    return s;
  }
  s.mean = std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double var = 0;
    for (double x : xs) {
      var += (x - s.mean) * (x - s.mean);
    }
    var /= static_cast<double>(xs.size() - 1);
    s.ci95 = 1.96 * std::sqrt(var / static_cast<double>(xs.size()));
  }
  return s;
}

// Robust variant: drops the min and max before summarizing (guards macro
// measurements against scheduler outliers).
inline Sample SummarizeTrimmed(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  size_t trim = xs.size() > 6 ? 2 : (xs.size() > 4 ? 1 : 0);
  for (size_t i = 0; i < trim; ++i) {
    xs.erase(xs.begin());
    xs.pop_back();
  }
  return Summarize(xs);
}

inline double OverheadPct(double base, double value) {
  return base <= 0 ? 0.0 : (value - base) / base * 100.0;
}

// Simple horizontal rule + caption helpers for the report output.
inline void Caption(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Returns the value after "--json" in argv, or nullptr. Benches pass the
// result to JsonWriter::WriteTo so bench/run_bench.sh can collect
// machine-readable results (BENCH_engine.json) without scraping tables.
inline const char* JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      return argv[i + 1];
    }
  }
  return nullptr;
}

// Minimal nested-object JSON emitter (string keys, double values). Keys are
// plain identifiers/benchmarks names here, so no escaping is needed.
class JsonWriter {
 public:
  void BeginObject(const std::string& key) {
    Indent();
    out_ += '"' + key + "\": {\n";
    ++depth_;
    first_in_scope_ = true;
  }
  void EndObject() {
    --depth_;
    out_ += '\n';
    out_.append(static_cast<size_t>(depth_ + 1) * 2, ' ');
    out_ += '}';
    first_in_scope_ = false;
  }
  void Number(const std::string& key, double value) {
    Indent();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"%s\": %.6f", key.c_str(), value);
    out_ += buf;
    first_in_scope_ = false;
  }
  void WriteTo(const char* path) {
    if (path == nullptr) {
      return;
    }
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return;
    }
    std::fprintf(f, "{\n%s\n}\n", out_.c_str());
    std::fclose(f);
  }

 private:
  void Indent() {
    if (!first_in_scope_ && !out_.empty()) {
      out_ += ",\n";
    }
    out_.append(static_cast<size_t>(depth_ + 1) * 2, ' ');
  }

  std::string out_;
  int depth_ = 0;
  bool first_in_scope_ = true;
};

}  // namespace pf::bench

#endif  // BENCH_BENCH_UTIL_H_
