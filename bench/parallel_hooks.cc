// Parallel syscall-replay load generator: M worker threads replay a recorded
// open/bind/signal workload against one shared engine, reporting hooks/sec
// at 1, 2, 4 and 8 threads. Each worker drives its own task (disjoint pids,
// as distinct processes would on real CPUs); the rule base, statistics and
// per-task state table are shared.
//
// Output is one JSON object per line (machine-diffable across runs):
//   {"bench":"parallel_hooks","config":"EPTSPC","threads":4,...}
//
// Usage: parallel_hooks [--ops N] [--all-configs] [--json FILE]

#include <atomic>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace pf::bench {
namespace {

// One recorded operation of the replay trace.
struct TraceOp {
  enum Kind { kOpen, kBind, kSignal } kind = kOpen;
  int path = 0;       // index into the opened-paths set
  bool new_syscall = true;
};

constexpr int kTraceLen = 4096;

std::vector<TraceOp> RecordTrace(uint64_t seed) {
  std::vector<TraceOp> trace;
  trace.reserve(kTraceLen);
  std::mt19937_64 rng(seed);
  for (int i = 0; i < kTraceLen; ++i) {
    TraceOp op;
    uint64_t r = rng() % 10;
    if (r < 7) {
      op.kind = TraceOp::kOpen;
      op.path = static_cast<int>(rng() % 4);
    } else if (r < 9) {
      op.kind = TraceOp::kBind;
    } else {
      op.kind = TraceOp::kSignal;
    }
    op.new_syscall = rng() % 4 != 0;
    trace.push_back(op);
  }
  return trace;
}

struct WorkerTask {
  std::unique_ptr<sim::Task> task;
  std::vector<std::shared_ptr<sim::Inode>> pins;
  std::vector<sim::AccessRequest> opens;  // prebuilt per path
  sim::AccessRequest bind;
  sim::AccessRequest signal;
};

WorkerTask MakeWorkerTask(System& sys, int idx) {
  WorkerTask w;
  w.task = std::make_unique<sim::Task>();
  sim::Task& task = *w.task;
  task.pid = static_cast<sim::Pid>(500 + idx);
  task.comm = "load";
  task.exe = sim::kBinTrue;
  task.cred.sid = sys.kernel->labels().Intern("staff_t");
  task.cwd = sys.kernel->vfs().root()->id();
  task.mm.Reset(sys.kernel->AslrStackBase());
  sys.kernel->MapImage(task, sys.kernel->LookupNoHooks(sim::kBinTrue), sim::kBinTrue);
  const sim::Mapping* map = task.mm.FindMappingByPath(sim::kBinTrue);
  for (int f = 0; f < 2 + idx % 3; ++f) {
    task.mm.PushFrame(map->base + 0x100 * static_cast<uint64_t>(f + 1), 16, false);
  }
  const char* paths[] = {"/etc/passwd", "/etc/shadow", "/var/www/index.html",
                         "/var/log/app.log"};
  for (const char* p : paths) {
    auto inode = sys.kernel->LookupNoHooks(p);
    if (!inode) {
      inode = sys.kernel->MkFileAt(p, "x", 0644, 0, 0, "var_t");
    }
    sim::AccessRequest req;
    req.task = &task;
    req.op = sim::Op::kFileOpen;
    req.inode = inode.get();
    req.id = inode->id();
    req.syscall_nr = sim::SyscallNr::kOpen;
    w.pins.push_back(std::move(inode));
    w.opens.push_back(req);
  }
  w.bind.task = &task;
  w.bind.op = sim::Op::kSocketBind;
  w.bind.name = "/tmp/sock";
  w.bind.syscall_nr = sim::SyscallNr::kBind;
  w.signal.task = &task;
  w.signal.op = sim::Op::kSignalDeliver;
  w.signal.sig = sim::kSigUsr1;
  w.signal.sig_sender = 1;
  w.signal.syscall_nr = sim::SyscallNr::kKill;
  return w;
}

uint64_t ReplayTrace(core::Engine* engine, WorkerTask& w,
                     const std::vector<TraceOp>& trace, uint64_t ops) {
  uint64_t done = 0;
  uint64_t acc = 0;
  while (done < ops) {
    const TraceOp& op = trace[done % trace.size()];
    if (op.new_syscall) {
      ++w.task->syscall_count;
    }
    switch (op.kind) {
      case TraceOp::kOpen:
        acc += static_cast<uint64_t>(engine->Authorize(w.opens[static_cast<size_t>(
            op.path)]) != 0);
        break;
      case TraceOp::kBind:
        acc += static_cast<uint64_t>(engine->Authorize(w.bind) != 0);
        break;
      case TraceOp::kSignal:
        acc += static_cast<uint64_t>(engine->Authorize(w.signal) != 0);
        break;
    }
    ++done;
  }
  return acc;  // denial count; returned so the work cannot be optimized out
}

struct RunResult {
  int threads = 0;
  uint64_t ops = 0;
  double wall_s = 0;
  double hooks_per_sec = 0;
  uint64_t drops = 0;
};

RunResult RunOnce(const core::EngineConfig& cfg, int threads, uint64_t ops_per_thread,
                  const std::vector<TraceOp>& trace) {
  System sys;
  sys.engine->config() = cfg;
  sys.InstallRules(SyntheticRuleBase(256));
  sys.InstallRules({"pftables -o FILE_OPEN -d shadow_t -j DROP"});
  std::vector<WorkerTask> tasks;
  tasks.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    tasks.push_back(MakeWorkerTask(sys, i));
  }
  std::atomic<uint64_t> denials{0};
  Stopwatch sw;
  sw.Start();
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        denials.fetch_add(ReplayTrace(sys.engine, tasks[static_cast<size_t>(t)], trace,
                                      ops_per_thread));
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  RunResult res;
  res.threads = threads;
  res.ops = ops_per_thread * static_cast<uint64_t>(threads);
  res.wall_s = sw.ElapsedUs() / 1e6;
  res.hooks_per_sec = res.wall_s > 0 ? static_cast<double>(res.ops) / res.wall_s : 0;
  res.drops = sys.engine->stats().drops;
  if (res.drops != denials.load()) {
    std::fprintf(stderr, "stat mismatch: engine drops=%llu, observed=%llu\n",
                 static_cast<unsigned long long>(res.drops),
                 static_cast<unsigned long long>(denials.load()));
    std::abort();
  }
  return res;
}

std::string ToJson(const char* config, const RunResult& r, double speedup) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\":\"parallel_hooks\",\"config\":\"%s\",\"threads\":%d,"
                "\"ops\":%llu,\"wall_s\":%.4f,\"hooks_per_sec\":%.0f,"
                "\"speedup_vs_1t\":%.2f,\"drops\":%llu,\"hw_threads\":%u}",
                config, r.threads, static_cast<unsigned long long>(r.ops), r.wall_s,
                r.hooks_per_sec, speedup, static_cast<unsigned long long>(r.drops),
                std::thread::hardware_concurrency());
  return buf;
}

int Main(int argc, char** argv) {
  uint64_t ops_per_thread = 200000;
  bool all_configs = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
      ops_per_thread = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--all-configs") == 0) {
      all_configs = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  struct NamedConfig {
    const char* name;
    core::EngineConfig cfg;
  };
  std::vector<NamedConfig> configs;
  core::EngineConfig vcache;  // defaults: lazy+cache+ept+compiled+verdict cache on
  configs.push_back({"VCACHE", vcache});
  core::EngineConfig compiled = vcache;
  compiled.verdict_cache = false;
  configs.push_back({"COMPILED", compiled});
  core::EngineConfig eptspc = compiled;
  eptspc.compiled_eval = false;  // legacy tree walker from here down
  configs.push_back({"EPTSPC", eptspc});
  if (all_configs) {
    core::EngineConfig full = eptspc;
    full.lazy_context = false;
    full.cache_context = false;
    full.ept_chains = false;
    core::EngineConfig concache = full;
    concache.cache_context = true;
    core::EngineConfig lazycon = concache;
    lazycon.lazy_context = true;
    configs.push_back({"LAZYCON", lazycon});
    configs.push_back({"CONCACHE", concache});
    configs.push_back({"FULL", full});
  }

  const std::vector<TraceOp> trace = RecordTrace(0x7eca11);
  std::vector<std::string> lines;
  for (const NamedConfig& nc : configs) {
    double base_rate = 0;
    for (int threads : {1, 2, 4, 8}) {
      RunResult r = RunOnce(nc.cfg, threads, ops_per_thread, trace);
      if (threads == 1) {
        base_rate = r.hooks_per_sec;
      }
      double speedup = base_rate > 0 ? r.hooks_per_sec / base_rate : 0;
      lines.push_back(ToJson(nc.name, r, speedup));
      std::printf("%s\n", lines.back().c_str());
      std::fflush(stdout);
    }
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    for (const std::string& l : lines) {
      out << l << "\n";
    }
  }
  return 0;
}

}  // namespace
}  // namespace pf::bench

int main(int argc, char** argv) { return pf::bench::Main(argc, argv); }
