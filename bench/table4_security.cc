// Table 4: the security evaluation. Runs every exploit (E1-E9) twice —
// Process Firewall disabled and enabled with the shipped rule base — and
// prints the outcome matrix. All nine attacks must succeed when disabled
// and be blocked (with the victim still functional) when enabled.

#include <map>
#include <utility>

#include "bench/bench_util.h"
#include "src/apps/exploits.h"
#include "src/audit/export.h"
#include "src/audit/hub.h"

namespace pf::bench {

// Cross-checks the audit trail of one blocked exploit against ground truth
// and appends it to the JSONL forensic sink (traces/table4_audit.jsonl).
// Every denial must have produced exactly one AuditRecord, and the records'
// (rule, tier) attribution must match the per-rule hit counters: a rule's
// hits move only when a traversal fired it, so traversal-tier records per
// rule == that rule's hit count and the remainder were cache-served.
bool VerifyAuditTrail(System& sys, const char* exploit_id, std::ofstream& sink) {
  if (!audit::kAuditCompiledIn) {
    return true;
  }
  const core::EngineStats stats = sys.engine->stats();
  std::vector<audit::AuditRecord> recs = sys.engine->audit().Drain();
  std::vector<const audit::AuditRecord*> denies;
  for (const audit::AuditRecord& r : recs) {
    if (r.kind == static_cast<uint8_t>(audit::Kind::kDeny) ||
        r.kind == static_cast<uint8_t>(audit::Kind::kAuditedDeny)) {
      denies.push_back(&r);
    }
  }
  bool good = true;
  if (denies.empty()) {
    std::printf("     %s audit: NO deny record for a blocked exploit\n", exploit_id);
    good = false;
  }
  if (denies.size() != stats.drops + stats.audited_drops) {
    std::printf("     %s audit: %zu deny record(s) vs %llu denial(s)\n", exploit_id,
                denies.size(),
                static_cast<unsigned long long>(stats.drops + stats.audited_drops));
    good = false;
  }

  // Per-rule attribution vs the hit counters (traversal tiers only: cache
  // hits legitimately leave the counters untouched).
  std::map<std::pair<int32_t, int32_t>, uint64_t> traversed;
  for (const audit::AuditRecord* r : denies) {
    const audit::Tier tier = static_cast<audit::Tier>(r->tier);
    if (r->chain_id >= 0 &&
        (tier == audit::Tier::kCompiled || tier == audit::Tier::kLegacy ||
         tier == audit::Tier::kBypass)) {
      ++traversed[{r->chain_id, r->rule_index}];
    }
  }
  std::shared_ptr<const core::CompiledRuleset> rs = sys.engine->PublishedRuleset();
  for (const auto& [key, count] : traversed) {
    uint64_t hits = 0;
    bool found = false;
    if (rs != nullptr) {
      for (const core::RuleRecord& rr : rs->program.rules) {
        if (rr.rule != nullptr && rr.chain_id == key.first &&
            static_cast<int32_t>(rr.chain_index) == key.second) {
          hits = rr.rule->hits.load(std::memory_order_relaxed);
          found = true;
        }
      }
    }
    if (!found || hits != count) {
      std::printf("     %s audit: rule %d:%d has %llu hit(s) but %llu deny record(s)\n",
                  exploit_id, key.first, key.second,
                  static_cast<unsigned long long>(hits),
                  static_cast<unsigned long long>(count));
      good = false;
    }
  }

  if (sink) {
    trace::NameTable names{&sys.kernel->labels()};
    sink << audit::RenderJsonLines(recs, names);
  }
  return good;
}

void Run() {
  Caption("Table 4: exploits tested against the Process Firewall");
  std::printf("%-4s %-18s %-15s %-22s %-12s %-12s %s\n", "#", "Program", "Reference",
              "Class", "PF off", "PF on", "victim ok");

  bool all_good = true;
  size_t index = 0;
  // Every enforcement run is audited; the combined forensic trail lands in
  // traces/table4_audit.jsonl (one JSON object per security event).
  std::error_code ec;
  std::filesystem::create_directories("traces", ec);
  std::ofstream audit_sink("traces/table4_audit.jsonl", std::ios::trunc);
  bool audit_good = true;
  for (const apps::ExploitInfo& exploit : apps::AllExploits()) {
    apps::ExploitOutcome off, on;
    {
      System sys(0x1000 + index);
      sys.engine->config().enabled = false;
      off = exploit.run(*sys.kernel, *sys.sched);
    }
    {
      System sys(0x2000 + index);
      sys.InstallRules(apps::RuleLibrary::DefaultRuleBase());
      audit::AuditHub::Config acfg;
      acfg.bucket_capacity = 0;  // a forensic trail collapses nothing
      sys.engine->audit().Enable(acfg);
      // The first blocked attack doubles as the observability showcase: its
      // enforcement run is traced end to end and dumped as a Chrome trace
      // (build/traces/) so the denial is visible decision by decision.
      const bool traced = index == 0;
      if (traced) {
        sys.engine->trace().Enable();
      }
      on = exploit.run(*sys.kernel, *sys.sched);
      if (traced) {
        sys.engine->trace().Disable();
        DumpChromeTrace(sys, "table4_attack.json");
      }
      if (!on.attack_succeeded) {
        audit_good &= VerifyAuditTrail(sys, exploit.id, audit_sink);
      }
    }
    bool good = off.attack_succeeded && !on.attack_succeeded && on.victim_functional;
    all_good = all_good && good;
    std::printf("%-4s %-18s %-15s %-22s %-12s %-12s %-3s   %s\n", exploit.id,
                exploit.program, exploit.reference, exploit.attack_class,
                off.attack_succeeded ? "EXPLOITED" : "no effect?",
                on.attack_succeeded ? "EXPLOITED!" : "BLOCKED",
                on.victim_functional ? "yes" : "NO", good ? "" : "  <-- UNEXPECTED");
    ++index;
  }
  std::printf("\n%s\n", all_good
                            ? "All 9 exploits succeed without the Process Firewall and "
                              "are blocked with it (no loss of victim function)."
                            : "MISMATCH with the paper's Table 4 — investigate.");
  if (audit::kAuditCompiledIn) {
    std::printf("%s\n", audit_good
                            ? "Every blocked exploit left an exactly-attributed audit "
                              "trail (traces/table4_audit.jsonl)."
                            : "AUDIT TRAIL MISMATCH — attribution disagrees with the "
                              "hit counters.");
  }
}

}  // namespace pf::bench

int main() {
  pf::bench::Run();
  return 0;
}
