// Table 4: the security evaluation. Runs every exploit (E1-E9) twice —
// Process Firewall disabled and enabled with the shipped rule base — and
// prints the outcome matrix. All nine attacks must succeed when disabled
// and be blocked (with the victim still functional) when enabled.

#include "bench/bench_util.h"
#include "src/apps/exploits.h"

namespace pf::bench {

void Run() {
  Caption("Table 4: exploits tested against the Process Firewall");
  std::printf("%-4s %-18s %-15s %-22s %-12s %-12s %s\n", "#", "Program", "Reference",
              "Class", "PF off", "PF on", "victim ok");

  bool all_good = true;
  size_t index = 0;
  for (const apps::ExploitInfo& exploit : apps::AllExploits()) {
    apps::ExploitOutcome off, on;
    {
      System sys(0x1000 + index);
      sys.engine->config().enabled = false;
      off = exploit.run(*sys.kernel, *sys.sched);
    }
    {
      System sys(0x2000 + index);
      sys.InstallRules(apps::RuleLibrary::DefaultRuleBase());
      // The first blocked attack doubles as the observability showcase: its
      // enforcement run is traced end to end and dumped as a Chrome trace
      // (build/traces/) so the denial is visible decision by decision.
      const bool traced = index == 0;
      if (traced) {
        sys.engine->trace().Enable();
      }
      on = exploit.run(*sys.kernel, *sys.sched);
      if (traced) {
        sys.engine->trace().Disable();
        DumpChromeTrace(sys, "table4_attack.json");
      }
    }
    bool good = off.attack_succeeded && !on.attack_succeeded && on.victim_functional;
    all_good = all_good && good;
    std::printf("%-4s %-18s %-15s %-22s %-12s %-12s %-3s   %s\n", exploit.id,
                exploit.program, exploit.reference, exploit.attack_class,
                off.attack_succeeded ? "EXPLOITED" : "no effect?",
                on.attack_succeeded ? "EXPLOITED!" : "BLOCKED",
                on.victim_functional ? "yes" : "NO", good ? "" : "  <-- UNEXPECTED");
    ++index;
  }
  std::printf("\n%s\n", all_good
                            ? "All 9 exploits succeed without the Process Firewall and "
                              "are blocked with it (no loss of victim function)."
                            : "MISMATCH with the paper's Table 4 — investigate.");
}

}  // namespace pf::bench

int main() {
  pf::bench::Run();
  return 0;
}
