// Rule generation end to end (paper §6.3): run a workload under LOG rules,
// classify entrypoints from the JSON trace, suggest invariant rules, install
// them, and verify they block a later attack without breaking the learned
// behaviour — the OS-distributor workflow.

#include <cstdio>

#include "src/apps/entrypoints.h"
#include "src/apps/interp.h"
#include "src/apps/programs.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/rulegen/classify.h"
#include "src/rulegen/vuln.h"
#include "src/sim/sysimage.h"

using namespace pf;  // NOLINT: example brevity

int main() {
  sim::Kernel kernel(0x9e);
  sim::BuildSysImage(kernel);
  apps::InstallPrograms(kernel);
  core::Engine* engine = core::InstallProcessFirewall(kernel);
  core::Pftables pftables(engine);
  sim::Scheduler sched(kernel);

  // Phase 1: audit mode — log every python module import.
  pftables.Exec("pftables -o FILE_OPEN -p /usr/bin/python2.7 -i 0x34f05 -j LOG "
                "--prefix train");
  std::printf("phase 1: training run (imports from the standard library)\n");
  sim::SpawnOpts opts;
  opts.name = "python";
  opts.exe = sim::kPython;
  opts.cred.sid = kernel.labels().Intern("sysadm_t");
  sim::Pid train = sched.Spawn(opts, [](sim::Proc& p) {
    apps::PythonInterp py(p, "/usr/bin/dstat");
    for (int i = 0; i < 8; ++i) {
      py.ImportModule("os", 5);
      py.ImportModule("sys", 6);
    }
  });
  sched.RunUntilExit(train);
  std::printf("  collected %zu log records, e.g.:\n  %s\n", engine->log().size(),
              engine->log().records().front().ToJson().c_str());

  // Phase 2: classify and suggest.
  rulegen::EntrypointClassifier classifier;
  classifier.AddAll(engine->log().records());
  auto suggested = classifier.SuggestRules(/*threshold=*/8);
  std::printf("\nphase 2: %zu suggested rule(s):\n", suggested.size());
  for (const auto& rule : suggested) {
    std::printf("  %s\n", rule.c_str());
  }
  core::Status s = pftables.ExecAll(suggested);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }

  // Phase 3: deployment — the adversary plants a Trojan module in the
  // working directory (exploit E2's shape).
  std::printf("\nphase 3: deployment under attack\n");
  kernel.MkDirAt("/tmp/cwd", 0777, sim::kMalloryUid, sim::kMalloryUid, "tmp_t");
  kernel.MkFileAt("/tmp/cwd/os.py", "import trojan", 0644, sim::kMalloryUid,
                  sim::kMalloryUid, "tmp_t");
  opts.cwd = "/tmp/cwd";
  int failures = 0;
  sim::Pid deploy = sched.Spawn(opts, [&](sim::Proc& p) {
    apps::PythonInterp py(p, "/usr/bin/dstat");
    py.sys_path().front() = ".";  // the vulnerable search path
    std::string loaded = py.ImportModule("os", 5);
    std::printf("  import os -> %s (expect the stdlib, not ./os.py)\n",
                loaded.empty() ? "<blocked entirely?>" : loaded.c_str());
    failures += loaded != "/usr/lib/python2.7/os.py";
    p.Exit(failures);
  });
  failures += sched.RunUntilExit(deploy) != 0 ? 0 : 0;

  // Bonus: rule generation from a known-vulnerability record (STING-style).
  rulegen::VulnRecord rec;
  rec.type = rulegen::VulnType::kUntrustedSearchPath;
  rec.program = sim::kJava;
  rec.entrypoint = apps::kJavaConfigOpen;
  auto vuln_rules = rulegen::GenerateRules(rec);
  std::printf("\nknown-vulnerability rule for java (E7):\n  %s\n",
              vuln_rules[0].c_str());
  failures += !pftables.ExecAll(vuln_rules).ok();

  std::printf("\n%s\n", failures == 0 ? "rule generation OK" : "rule generation FAILED");
  return failures;
}
