// TOCTTOU demo: Figure 1(a) end to end.
//
// A victim performs the classic lstat-then-open sequence on a file in /tmp.
// The adversary is scheduled exactly between the check and the use and swaps
// the file for a symlink to /etc/shadow. Three runs:
//
//   1. no defense            -> the victim reads the shadow file
//   2. program double-checks -> detected after the fact (open_race), but
//                               only by re-checking; the file was opened
//   3. Process Firewall T2   -> the mismatched "use" is denied in-kernel
//
// Also demonstrates the inode-recycling ("cryogenic sleep") variant that
// defeats naive fstat comparison.

#include <cstdio>

#include "src/apps/entrypoints.h"
#include "src/apps/programs.h"
#include "src/apps/rule_library.h"
#include "src/apps/safe_open.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"

using namespace pf;  // NOLINT: example brevity

namespace {

struct World {
  sim::Kernel kernel{0x70c};
  core::Engine* engine = nullptr;
  std::unique_ptr<core::Pftables> pftables;
  std::unique_ptr<sim::Scheduler> sched;

  World() {
    sim::BuildSysImage(kernel);
    apps::InstallPrograms(kernel);
    engine = core::InstallProcessFirewall(kernel);
    pftables = std::make_unique<core::Pftables>(engine);
    sched = std::make_unique<sim::Scheduler>(kernel);
    kernel.MkFileAt("/tmp/upload", "benign upload", 0666, sim::kMalloryUid,
                    sim::kMalloryUid, "tmp_t");
  }

  // Runs the victim's check/use with the adversary in the window. Returns
  // what the victim managed to read (empty if the open was denied).
  std::string RaceOnce() {
    std::string read_back;
    sim::Pid victim = sched->Spawn({.name = "victim", .exe = sim::kBinTrue},
                                   [&](sim::Proc& p) {
      sim::StatBuf st;
      {
        sim::UserFrame check(p, sim::kBinTrue, apps::kSafeOpenCheck);
        if (p.Lstat("/tmp/upload", &st) != 0 || st.IsSymlink()) {
          p.Exit(3);
        }
      }
      p.Checkpoint("between-check-and-use");
      sim::UserFrame use(p, sim::kBinTrue, apps::kSafeOpenUse);
      int64_t fd = p.Open("/tmp/upload", sim::kORdOnly);
      if (fd < 0) {
        p.Exit(2);  // denied: the PF saw the swap
      }
      p.Read(static_cast<int>(fd), &read_back, 4096);
      p.Exit(0);
    });
    sched->RunUntilLabel(victim, "between-check-and-use");
    sim::SpawnOpts mopts;
    mopts.name = "mallory";
    mopts.cred.uid = mopts.cred.euid = sim::kMalloryUid;
    mopts.cred.sid = kernel.labels().Intern("user_t");
    sim::Pid mallory = sched->Spawn(mopts, [](sim::Proc& p) {
      p.Unlink("/tmp/upload");
      p.Symlink("/etc/shadow", "/tmp/upload");
    });
    sched->RunUntilExit(mallory);
    sched->RunUntilExit(victim);
    return read_back;
  }
};

}  // namespace

int main() {
  int failures = 0;

  std::printf("run 1: no defense\n");
  {
    World w;
    w.engine->config().enabled = false;
    std::string leaked = w.RaceOnce();
    std::printf("  victim read: \"%.20s...\" -> %s\n", leaked.c_str(),
                !leaked.empty() ? "EXPLOITED (as expected)" : "??");
    failures += leaked.empty();
  }

  std::printf("run 2: Process Firewall with template T2 rules\n");
  {
    World w;
    core::Status s = w.pftables->ExecAll(apps::RuleLibrary::TemplateT2(
        sim::kBinTrue, apps::kSafeOpenCheck, apps::kSafeOpenUse, "FILE_GETATTR",
        "FILE_OPEN", "upload"));
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
      return 1;
    }
    std::string leaked = w.RaceOnce();
    std::printf("  victim read: \"%s\" -> %s\n", leaked.c_str(),
                leaked.empty() ? "BLOCKED (use of a different inode denied)"
                               : "EXPLOITED?!");
    failures += !leaked.empty();
  }

  std::printf("run 3: cryogenic sleep — recycled inode defeats fstat checks\n");
  {
    World w;
    w.engine->config().enabled = false;
    // The victim holds no fd, so after unlink+recreate the inode number
    // recycles and even an fstat/lstat pair would match. Show the recycling.
    sim::Pid demo = w.sched->Spawn({.name = "demo", .exe = sim::kBinTrue},
                                   [&](sim::Proc& p) {
      sim::StatBuf before, after;
      p.Lstat("/tmp/upload", &before);
      p.Unlink("/tmp/upload");
      int64_t fd = p.Open("/tmp/upload", sim::kOWrOnly | sim::kOCreat, 0666);
      p.Fstat(static_cast<int>(fd), &after);
      std::printf("  inode before=%llu after unlink+recreate=%llu -> %s\n",
                  static_cast<unsigned long long>(before.ino),
                  static_cast<unsigned long long>(after.ino),
                  before.ino == after.ino ? "RECYCLED (checks would pass)"
                                          : "not recycled");
      p.Exit(before.ino == after.ino ? 0 : 1);
    });
    failures += w.sched->RunUntilExit(demo);
  }

  std::printf("run 4: safe_open vs. safe_open_PF on a clean file\n");
  {
    World w;
    w.pftables->ExecAll(apps::RuleLibrary::SafeOpenRules());
    sim::Pid demo = w.sched->Spawn({.name = "demo", .exe = sim::kBinTrue},
                                   [&](sim::Proc& p) {
      int64_t a = apps::SafeOpen(p, "/etc/passwd");
      int64_t b = apps::SafeOpenPF(p, "/etc/passwd");
      std::printf("  safe_open fd=%lld (%llu syscalls so far), safe_open_PF fd=%lld\n",
                  static_cast<long long>(a),
                  static_cast<unsigned long long>(p.task().syscall_count),
                  static_cast<long long>(b));
      p.Exit(a >= 0 && b >= 0 ? 0 : 1);
    });
    failures += w.sched->RunUntilExit(demo);
  }

  std::printf("\n%s\n", failures == 0 ? "toctou demo OK" : "toctou demo FAILED");
  return failures;
}
