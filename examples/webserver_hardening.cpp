// Webserver hardening: the paper's motivating scenario. One Apache-like
// server, two distinct program instructions — serving user content and
// reading the password database — and Process Firewall rules that give each
// call site exactly the resources it should touch. Demonstrates:
//
//   * a Directory Traversal attack (../../etc/passwd) blocked by an
//     entrypoint rule even when the server forgets to filter input,
//   * SymLinksIfOwnerMatch as rule R8 instead of racy program checks,
//   * PHP local file inclusion blocked by rule R4,
//   * the authentication call site still reading /etc/passwd freely.

#include <cstdio>

#include "src/apps/entrypoints.h"
#include "src/apps/interp.h"
#include "src/apps/programs.h"
#include "src/apps/rule_library.h"
#include "src/apps/webserver.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"

using namespace pf;  // NOLINT: example brevity

int main() {
  sim::Kernel kernel(7);
  sim::BuildSysImage(kernel);
  apps::InstallPrograms(kernel);
  core::Engine* engine = core::InstallProcessFirewall(kernel);
  core::Pftables pftables(engine);

  // Harden the server: the serving call site may only touch web content;
  // symlinks must satisfy the owner-match policy (R8); PHP may only include
  // real scripts (R4).
  std::vector<std::string> rules = {
      apps::RuleLibrary::TemplateT1(
          sim::kApache, apps::kApacheLinkRead,
          "{httpd_sys_content_t|httpd_user_content_t|httpd_user_script_exec_t}",
          "FILE_OPEN"),
      apps::RuleLibrary::ApacheSymlinkOwnerRule(),
      "pftables -p /usr/bin/php5 -i 0x27ad2c -s SYSHIGH "
      "-d ~{httpd_user_script_exec_t} -o FILE_OPEN -j DROP",
  };
  core::Status s = pftables.ExecAll(rules);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }

  sim::Scheduler sched(kernel);

  // Adversary: plants a symlink inside the docroot pointing at the shadow
  // file (allowed by DAC if the content dir is group-writable somewhere).
  kernel.MkSymlinkAt("/var/www/users/leak.html", "/etc/shadow", sim::kMalloryUid,
                     sim::kMalloryUid, "httpd_user_content_t");

  sim::SpawnOpts opts;
  opts.name = "apache2";
  opts.exe = sim::kApache;
  opts.cred.sid = kernel.labels().Intern("httpd_t");
  int failures = 0;
  sim::Pid worker = sched.Spawn(opts, [&](sim::Proc& p) {
    int php_fd = static_cast<int>(p.Open(sim::kPhp, sim::kORdOnly));
    p.MmapFd(php_fd);
    p.Close(php_fd);

    apps::WebConfig cfg;
    cfg.filter_traversal = false;  // the "forgotten" input filter
    apps::Webserver server(cfg);
    std::string body;

    int status = server.HandleRequest(p, "/index.html", &body);
    std::printf("GET /index.html                  -> %d (expect 200)\n", status);
    failures += status != 200;

    status = server.HandleRequest(p, "/../../etc/passwd", &body);
    std::printf("GET /../../etc/passwd            -> %d (expect 403: traversal blocked)\n",
                status);
    failures += status != 403;

    status = server.HandleRequest(p, "/users/leak.html", &body);
    std::printf("GET /users/leak.html (symlink)   -> %d (expect 403: owner mismatch)\n",
                status);
    failures += status != 403;

    bool auth = server.Authenticate(p, "alice");
    std::printf("authenticate(alice)              -> %s (expect ok: distinct call site)\n",
                auth ? "ok" : "DENIED");
    failures += auth ? 0 : 1;

    apps::PhpInterp php(p, "/var/www/app/index.php");
    bool lfi = php.Include("../../../etc/passwd", 3).has_value();
    std::printf("php include(../../../etc/passwd) -> %s (expect blocked)\n",
                lfi ? "LEAKED" : "blocked");
    failures += lfi ? 1 : 0;

    bool legit = php.Include("gcalendar.php", 9).has_value();
    std::printf("php include(gcalendar.php)       -> %s (expect ok)\n",
                legit ? "ok" : "DENIED");
    failures += legit ? 0 : 1;

    p.Exit(failures);
  });
  int code = sched.RunUntilExit(worker);
  std::printf("\n%s (%d drops)\n", code == 0 ? "webserver hardening OK" : "FAILED",
              static_cast<int>(engine->stats().drops));
  return code;
}
