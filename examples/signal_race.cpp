// Signal race demo: the OpenSSH grace-alarm scenario (E5) with the paper's
// system-wide rules R9-R12. Two runs: the second SIGALRM re-enters the
// non-reentrant handler without the Process Firewall, and is dropped with it.

#include <cstdio>

#include "src/apps/programs.h"
#include "src/apps/rule_library.h"
#include "src/apps/sshd.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"

using namespace pf;  // NOLINT: example brevity

namespace {

apps::SshdState RunScenario(bool protect) {
  sim::Kernel kernel(0x55);
  sim::BuildSysImage(kernel);
  apps::InstallPrograms(kernel);
  core::Engine* engine = core::InstallProcessFirewall(kernel);
  core::Pftables pftables(engine);
  if (protect) {
    core::Status s = pftables.ExecAll(apps::RuleLibrary::SignalRaceRules());
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
      std::abort();
    }
  } else {
    engine->config().enabled = false;
  }
  sim::Scheduler sched(kernel);

  auto state = std::make_shared<apps::SshdState>();
  sim::SpawnOpts opts;
  opts.name = "sshd";
  opts.exe = sim::kSshd;
  opts.cred.sid = kernel.labels().Intern("sshd_t");
  sim::Pid victim = sched.Spawn(opts, [state](sim::Proc& p) {
    apps::Sshd::InstallGraceAlarmHandler(p, state.get());
    p.Checkpoint("armed");
    p.Null();
    p.Checkpoint("after-first");
    p.Null();
  });
  sched.RunUntilLabel(victim, "armed");
  sim::Pid a1 = sched.Spawn({.name = "attacker"},
                            [&](sim::Proc& p) { p.Kill(victim, sim::kSigAlrm); });
  sched.RunUntilExit(a1);
  if (sched.RunUntilLabel(victim, "sshd-cleanup")) {
    // Victim is inside the handler's critical section: fire again.
    sim::Pid a2 = sched.Spawn({.name = "attacker2"},
                              [&](sim::Proc& p) { p.Kill(victim, sim::kSigAlrm); });
    sched.RunUntilExit(a2);
  }
  sched.RunUntilExit(victim);
  return *state;
}

}  // namespace

int main() {
  std::printf("run 1: without the Process Firewall\n");
  apps::SshdState vulnerable = RunScenario(/*protect=*/false);
  std::printf("  handler invocations: %d, re-entered critical section: %s\n",
              vulnerable.handled, vulnerable.corrupted ? "YES (exploitable)" : "no");

  std::printf("run 2: with rules R9-R12\n");
  apps::SshdState protected_run = RunScenario(/*protect=*/true);
  std::printf("  handler invocations: %d, re-entered critical section: %s\n",
              protected_run.handled, protected_run.corrupted ? "YES?!" : "no (dropped)");

  bool ok = vulnerable.corrupted && !protected_run.corrupted &&
            protected_run.handled >= 1;
  std::printf("\n%s\n", ok ? "signal race demo OK" : "signal race demo FAILED");
  return ok ? 0 : 1;
}
