// Quickstart: boot a simulated system, install one Process Firewall rule,
// and watch it block a classic /tmp symlink attack that DAC permits.
//
//   $ ./quickstart
//
// Walkthrough of the public API:
//   1. sim::Kernel + BuildSysImage      — the OS substrate
//   2. core::InstallProcessFirewall     — hook the PF into authorization
//   3. core::Pftables::Exec             — install rules (Table 3 syntax)
//   4. sim::Scheduler::Spawn / RunUntil — run victim and adversary processes

#include <cstdio>

#include "src/apps/programs.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sched.h"
#include "src/sim/sysimage.h"

using namespace pf;  // NOLINT: example brevity

int main() {
  // 1. Boot the simulated OS: filesystem tree, labels, MAC policy, users.
  sim::Kernel kernel(/*seed=*/42);
  sim::BuildSysImage(kernel);
  apps::InstallPrograms(kernel);

  // 2. Install the Process Firewall behind the kernel's authorization hooks.
  core::Engine* engine = core::InstallProcessFirewall(kernel);
  core::Pftables pftables(engine);

  // 3. One rule — the example from paper Table 3: processes must not follow
  //    symbolic links that live in the world-writable temp directory.
  core::Status s = pftables.Exec("pftables -t filter -o LNK_FILE_READ -d tmp_t -j DROP");
  if (!s.ok()) {
    std::fprintf(stderr, "rule install failed: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("installed rule:\n%s\n", pftables.List().c_str());

  sim::Scheduler sched(kernel);

  // 4a. The adversary plants a symlink in /tmp pointing at the shadow file.
  sim::SpawnOpts mallory_opts;
  mallory_opts.name = "mallory";
  mallory_opts.cred.uid = mallory_opts.cred.euid = sim::kMalloryUid;
  mallory_opts.cred.sid = kernel.labels().Intern("user_t");
  sim::Pid mallory = sched.Spawn(mallory_opts, [](sim::Proc& p) {
    p.Symlink("/etc/shadow", "/tmp/report.txt");
    std::printf("[mallory] planted /tmp/report.txt -> /etc/shadow\n");
  });
  sched.RunUntilExit(mallory);

  // 4b. A root daemon that believes /tmp/report.txt is its own scratch file.
  sim::SpawnOpts victim_opts;
  victim_opts.name = "reportd";
  victim_opts.exe = sim::kBinTrue;
  sim::Pid victim = sched.Spawn(victim_opts, [](sim::Proc& p) {
    int64_t fd = p.Open("/tmp/report.txt", sim::kORdOnly);
    if (fd >= 0) {
      std::string secret;
      p.Read(static_cast<int>(fd), &secret, 4096);
      std::printf("[reportd] EXPLOITED: read %zu bytes of /etc/shadow!\n", secret.size());
      p.Exit(1);
    }
    std::printf("[reportd] open(/tmp/report.txt) denied: %s — attack blocked\n",
                std::string(sim::ErrName(sim::ErrOf(fd))).c_str());
    // The same process can still do its legitimate work.
    int64_t ok = p.Open("/etc/passwd", sim::kORdOnly);
    std::printf("[reportd] legitimate open(/etc/passwd): %s\n",
                ok >= 0 ? "allowed" : "DENIED?!");
    p.Exit(ok >= 0 ? 0 : 2);
  });
  int code = sched.RunUntilExit(victim);

  std::printf("\nfirewall statistics: %lu invocations, %lu drops\n",
              static_cast<unsigned long>(engine->stats().invocations),
              static_cast<unsigned long>(engine->stats().drops));
  std::printf("%s\n", code == 0 ? "quickstart OK" : "quickstart FAILED");
  return code;
}
