// pfshell: an interactive console for exploring the Process Firewall on a
// booted simulated system. Reads commands from stdin (EOF exits), so it
// also works non-interactively:
//
//   $ printf 'rule -o FILE_OPEN -d shadow_t -j DROP\nopen /etc/shadow\n' | ./pfshell
//
// Commands:
//   rule <pftables spec...>    install a rule (the word "pftables" optional)
//   list                       show tables/chains/rules with counters
//   list -v                    verbose: per-rule time + per-chain totals
//   list --compiled            disassemble the committed arena program
//   save                       dump the rule base in restore format
//   open <path> [uid]          try an open as root or the given uid
//   log [n]                    show the last n LOG records (default 5)
//   stats                      engine statistics
//   stats --prom               Prometheus text exposition (Engine::MetricsText)
//   zero [chain]               zero rule counters (pftables -Z)
//   trace on|off               toggle decision tracing on the engine
//   audit on|off               toggle audit (permissive) mode
//   help                       this text

#include <cstdio>
#include <iostream>
#include <sstream>

#include "src/apps/programs.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sched.h"
#include "src/sim/sysimage.h"

using namespace pf;  // NOLINT: example brevity

namespace {

void PrintHelp() {
  std::printf(
      "commands: rule <spec> | list [-v|--compiled] | save | open <path> [uid] |\n"
      "          log [n] | stats [--prom] | zero [chain] | trace on|off |\n"
      "          audit on|off | help | quit\n");
}

}  // namespace

int main() {
  sim::Kernel kernel(0x5e11);
  sim::BuildSysImage(kernel);
  apps::InstallPrograms(kernel);
  core::Engine* engine = core::InstallProcessFirewall(kernel);
  core::Pftables pftables(engine);
  sim::Scheduler sched(kernel);

  std::printf("pfshell — Process Firewall console (type 'help')\n");
  std::string line;
  while (std::printf("pf> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream iss(line);
    std::string cmd;
    iss >> cmd;
    if (cmd.empty()) {
      continue;
    }
    if (cmd == "quit" || cmd == "exit") {
      break;
    }
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "rule") {
      std::string rest;
      std::getline(iss, rest);
      core::Status s = pftables.Exec("pftables " + rest);
      std::printf("%s\n", s.ok() ? "ok" : s.message().c_str());
    } else if (cmd == "list") {
      std::string arg;
      iss >> arg;
      std::printf("%s", arg == "--compiled"
                            ? pftables.ListCompiled().c_str()
                            : pftables.List("filter", arg == "-v").c_str());
    } else if (cmd == "save") {
      std::printf("%s", pftables.Save().c_str());
    } else if (cmd == "open") {
      std::string path;
      unsigned long uid = 0;
      iss >> path >> uid;
      if (path.empty()) {
        std::printf("usage: open <path> [uid]\n");
        continue;
      }
      sim::SpawnOpts opts;
      opts.name = "pfshell-probe";
      opts.exe = sim::kBinTrue;
      opts.cred.uid = opts.cred.euid = static_cast<sim::Uid>(uid);
      if (uid != 0) {
        opts.cred.sid = kernel.labels().Intern("user_t");
      }
      sim::Pid pid = sched.Spawn(opts, [&](sim::Proc& p) {
        int64_t fd = p.Open(path, sim::kORdOnly);
        if (fd >= 0) {
          std::string data;
          int64_t n = p.Read(static_cast<int>(fd), &data, 80);
          std::printf("allowed (read %lld bytes: \"%.40s%s\")\n",
                      static_cast<long long>(n), data.c_str(),
                      data.size() > 40 ? "..." : "");
        } else {
          std::printf("denied: %s\n",
                      std::string(sim::ErrName(sim::ErrOf(fd))).c_str());
        }
      });
      sched.RunUntilExit(pid);
    } else if (cmd == "log") {
      size_t n = 5;
      iss >> n;
      const auto& records = engine->log().records();
      size_t start = records.size() > n ? records.size() - n : 0;
      for (size_t i = start; i < records.size(); ++i) {
        std::printf("%s\n", records[i].ToJson().c_str());
      }
      if (records.empty()) {
        std::printf("(no LOG records; install a '-j LOG' rule first)\n");
      }
    } else if (cmd == "stats") {
      std::string arg;
      iss >> arg;
      if (arg == "--prom") {
        std::printf("%s", engine->MetricsText().c_str());
        continue;
      }
      const core::EngineStats& s = engine->stats();
      std::printf("invocations=%llu drops=%llu audited=%llu rules_evaluated=%llu "
                  "unwinds=%llu cache_hits=%llu\n",
                  static_cast<unsigned long long>(s.invocations),
                  static_cast<unsigned long long>(s.drops),
                  static_cast<unsigned long long>(s.audited_drops),
                  static_cast<unsigned long long>(s.rules_evaluated),
                  static_cast<unsigned long long>(s.unwinds),
                  static_cast<unsigned long long>(s.unwind_cache_hits));
    } else if (cmd == "zero") {
      std::string chain;
      iss >> chain;
      core::Status s = pftables.ZeroCounters(chain);
      std::printf("%s\n", s.ok() ? "ok" : s.message().c_str());
    } else if (cmd == "trace") {
      std::string mode;
      iss >> mode;
      if (mode == "on") {
        engine->trace().Enable();
      } else {
        engine->trace().Disable();
      }
      std::printf("tracing %s%s\n", engine->trace().enabled() ? "on" : "off",
                  pf::trace::kTraceCompiledIn ? "" : " (compiled out: PF_NO_TRACE)");
    } else if (cmd == "audit") {
      std::string mode;
      iss >> mode;
      engine->config().audit_only = mode == "on";
      std::printf("audit mode %s\n", engine->config().audit_only ? "on" : "off");
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
  }
  std::printf("\nbye\n");
  return 0;
}
