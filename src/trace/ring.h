// Lock-free per-worker flight-recorder ring (DESIGN.md §5e, §5j).
//
// An ftrace-style flight recorder: one producer (the worker thread emitting
// records) and at most one consumer (a pftrace follower or a post-run dump).
// The producer NEVER blocks and never fails: when the ring is full it evicts
// the oldest unread record (advancing the read cursor with a CAS against the
// consumer) and counts the loss in `drops`. A dump therefore always holds
// the most recent `capacity` records — the useful end of the stream — and
// the drop counter says exactly how much history was lost, which is the
// tracing contract the ISSUE specifies (a counter instead of blocking).
//
// Memory safety under concurrent eviction uses a per-slot sequence number
// (seqlock-style, in the Vyukov bounded-queue tradition): slot i holding
// record position `pos` carries seq = 2*pos + 2; the producer marks the slot
// 2*pos + 1 (odd) while rewriting it. A consumer copies the payload, then
// revalidates the sequence — if the producer lapped it mid-copy, the copy is
// discarded and the cursor reloaded. Payload words are relaxed atomics, so
// the validated-discard pattern is race-free by the letter of the memory
// model (TSan-clean), not just in practice; on x86 the stores compile to
// plain moves.
//
// The ring is a template over the record type: TraceRecord (64 bytes) for
// the tracing flight recorder, audit::AuditRecord (128 bytes) for the
// security-event pipeline. Any trivially-copyable record whose size is a
// multiple of 8 works.
#ifndef SRC_TRACE_RING_H_
#define SRC_TRACE_RING_H_

#include <array>
#include <atomic>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/trace/record.h"

namespace pf::trace {

inline constexpr size_t kDefaultRingCapacity = 4096;  // records per worker

template <typename Record>
class RecordRing {
  static_assert(std::is_trivially_copyable_v<Record>,
                "ring records are copied word-by-word through atomics");
  static_assert(sizeof(Record) % sizeof(uint64_t) == 0,
                "ring records must be a whole number of 64-bit words");
  static constexpr size_t kWords = sizeof(Record) / sizeof(uint64_t);

 public:
  // Capacity is rounded up to a power of two (index masking).
  explicit RecordRing(size_t capacity = kDefaultRingCapacity) {
    size_t cap = 16;
    while (cap < capacity) {
      cap <<= 1;
    }
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
  }

  // Producer side. Single producer; returns false when the record displaced
  // an unread one (which is also counted in drops()).
  bool Push(const Record& rec) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_.load(std::memory_order_acquire);
    bool evicted = false;
    if (head - tail >= capacity_) {
      // Full: retire the oldest unread record. The CAS races only with the
      // consumer's own cursor advance — whichever side wins, there is room.
      if (tail_.compare_exchange_strong(tail, tail + 1, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        drops_.fetch_add(1, std::memory_order_relaxed);
        evicted = true;
      }
    }
    Slot& slot = slots_[head & mask_];
    slot.seq.store(2 * head + 1, std::memory_order_release);  // writing marker
    uint64_t words[kWords];
    std::memcpy(words, &rec, sizeof(rec));
    for (size_t i = 0; i < kWords; ++i) {
      slot.words[i].store(words[i], std::memory_order_relaxed);
    }
    slot.seq.store(2 * head + 2, std::memory_order_release);  // complete
    head_.store(head + 1, std::memory_order_release);
    pushed_.fetch_add(1, std::memory_order_relaxed);
    return !evicted;
  }

  // Consumer side. Single consumer; returns false when the ring is empty.
  bool Pop(Record* out) {
    for (;;) {
      uint64_t tail = tail_.load(std::memory_order_acquire);
      const uint64_t head = head_.load(std::memory_order_acquire);
      if (tail == head) {
        return false;
      }
      Slot& slot = slots_[tail & mask_];
      const uint64_t seq = slot.seq.load(std::memory_order_acquire);
      if (seq != 2 * tail + 2) {
        // The producer lapped this slot (and already advanced the cursor
        // past it); reload the cursor and try the new oldest record.
        continue;
      }
      uint64_t words[kWords];
      for (size_t i = 0; i < kWords; ++i) {
        words[i] = slot.words[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != seq) {
        continue;  // overwritten mid-copy: the copy is garbage, discard it
      }
      if (tail_.compare_exchange_strong(tail, tail + 1, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        std::memcpy(out, words, sizeof(*out));
        return true;
      }
      // The producer evicted the record we just copied; it counts as a drop
      // (the producer bumped the counter), so fall through and retry.
    }
  }

  // Records lost to eviction (never consumed).
  uint64_t drops() const { return drops_.load(std::memory_order_relaxed); }
  // Records ever pushed (consumed + pending + dropped).
  uint64_t pushed() const { return pushed_.load(std::memory_order_relaxed); }
  size_t capacity() const { return capacity_; }
  // Unread records (approximate under concurrency).
  size_t size() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? static_cast<size_t>(head - tail) : 0;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::array<std::atomic<uint64_t>, kWords> words{};
  };

  std::unique_ptr<Slot[]> slots_;
  size_t capacity_ = 0;
  size_t mask_ = 0;

  // Producer-written cursor on its own line; the shared read cursor and the
  // loss counters on another, so a follower never bounces the producer line.
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};
  std::atomic<uint64_t> drops_{0};
  std::atomic<uint64_t> pushed_{0};
};

using TraceRing = RecordRing<TraceRecord>;

}  // namespace pf::trace

#endif  // SRC_TRACE_RING_H_
