#include "src/trace/hub.h"

#include <algorithm>

namespace pf::trace {

std::string_view EventName(Event e) {
  switch (e) {
    case Event::kDecision:
      return "decision";
    case Event::kRule:
      return "rule";
    case Event::kCtxFetch:
      return "ctx_fetch";
    case Event::kVcache:
      return "vcache";
    case Event::kCount:
      break;
  }
  return "?";
}

std::string_view PathName(Path p) {
  switch (p) {
    case Path::kFull:
      return "FULL";
    case Path::kCompiled:
      return "COMPILED";
    case Path::kVcache:
      return "VCACHE";
    case Path::kCount:
      break;
  }
  return "?";
}

TraceHub::~TraceHub() {
  for (auto& slot : rings_) {
    delete slot.load(std::memory_order_acquire);
  }
}

TraceRing* TraceHub::AllocateRing(size_t w) {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  TraceRing* ring = rings_[w].load(std::memory_order_acquire);
  if (ring == nullptr) {
    ring = new TraceRing(ring_capacity_);
    rings_[w].store(ring, std::memory_order_release);
  }
  return ring;
}

uint64_t TraceHub::drops() const {
  uint64_t total = 0;
  for (const auto& slot : rings_) {
    if (const TraceRing* ring = slot.load(std::memory_order_acquire)) {
      total += ring->drops();
    }
  }
  return total;
}

uint64_t TraceHub::records() const {
  uint64_t total = 0;
  for (const auto& slot : rings_) {
    if (const TraceRing* ring = slot.load(std::memory_order_acquire)) {
      total += ring->pushed();
    }
  }
  return total;
}

std::vector<TraceRecord> TraceHub::Drain() {
  std::vector<TraceRecord> out;
  for (auto& slot : rings_) {
    TraceRing* ring = slot.load(std::memory_order_acquire);
    if (ring == nullptr) {
      continue;
    }
    TraceRecord rec;
    while (ring->Pop(&rec)) {
      out.push_back(rec);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) { return a.ts_ns < b.ts_ns; });
  return out;
}

void TraceHub::ResetHistograms() {
  for (auto& per_op : histograms_) {
    for (auto& h : per_op) {
      h.Reset();
    }
  }
}

}  // namespace pf::trace
