// Trace exporters: render a drained record stream as human text, JSON-lines,
// or Chrome trace_event JSON (chrome://tracing / Perfetto). Name resolution
// happens here — records hold only integers, so exporters take an optional
// LabelRegistry to turn sids back into MAC type names and use sim::OpName
// for operations.
#ifndef SRC_TRACE_EXPORT_H_
#define SRC_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "src/trace/hub.h"
#include "src/trace/metrics.h"
#include "src/trace/record.h"

namespace pf::sim {
class LabelRegistry;
}

namespace pf::trace {

// Resolves record integers to names for rendering. All methods degrade to
// numeric forms when no registry is attached.
struct NameTable {
  const sim::LabelRegistry* labels = nullptr;

  std::string SidName(uint32_t sid) const;
  static std::string OpName(uint32_t op);
};

// One record per line:
//   [123.456789] w03 decision op=stat subj=httpd_t obj=passwd_t verdict=drop
//   path=COMPILED cache=miss chain=2 rule=0 ctx=120ns eval=340ns total=980ns
std::string RenderText(const std::vector<TraceRecord>& records, const NameTable& names);

// One JSON object per line (jq-friendly), every field present.
std::string RenderJsonLines(const std::vector<TraceRecord>& records, const NameTable& names);

// Chrome trace_event format: {"traceEvents":[...]} of complete ("ph":"X")
// events, pid 1, tid = worker index, microsecond timestamps rebased to the
// first record. Loads directly in chrome://tracing and ui.perfetto.dev.
std::string RenderChromeTrace(const std::vector<TraceRecord>& records, const NameTable& names);

// Appends the pf_trace_* ring-health families for `hub` to an exposition in
// progress: stream totals plus a pf_trace_ring_utilization{ring="worker-N"}
// occupancy gauge and per-ring eviction counter for every ring that exists
// (rings allocate lazily on a worker's first emission). The one source of
// truth for these family/help strings — Engine::MetricsText() is the only
// caller, so every surface that serves an exposition agrees.
void WriteRingFamilies(PromWriter& w, const TraceHub& hub);

// "drop" / "drop(audited)" / "accept" from record flags.
std::string VerdictString(const TraceRecord& rec);
// "hit" / "miss" / "bypass" / "none" from a kCache* value.
std::string_view CacheString(uint8_t cache);

}  // namespace pf::trace

#endif  // SRC_TRACE_EXPORT_H_
