// pftrace record format (DESIGN.md §5e "Observability").
//
// One TraceRecord describes one engine event: a full authorization decision,
// a rule evaluation, a context fetch, or a verdict-cache probe. Records are
// fixed-size (64 bytes), trivially copyable, and hold only plain integers —
// no pointers, no strings — so a producer can publish one into a lock-free
// ring with eight relaxed word stores and a consumer in another thread (or a
// post-mortem dump) can interpret it without touching engine state. Name
// resolution (op names, MAC labels) happens at export time (export.h).
//
// This header is dependency-free on purpose: the engine, the ring, the
// exporters, and external tools all agree on exactly this struct.
#ifndef SRC_TRACE_RECORD_H_
#define SRC_TRACE_RECORD_H_

#include <chrono>
#include <cstdint>
#include <string_view>
#include <type_traits>

namespace pf::trace {

// Whether tracing support is compiled into this build. With -DPF_NO_TRACE
// every tracepoint gate folds to constant false and the emission code is
// dead-code-eliminated — the hot path carries not even the relaxed load.
#ifdef PF_NO_TRACE
inline constexpr bool kTraceCompiledIn = false;
#else
inline constexpr bool kTraceCompiledIn = true;
#endif

// Event kinds, one bit each in the hub's enable mask. kDecision is the
// always-cheap default (one record per Authorize that reached a rule base);
// the others are verbose attribution streams for deep dives.
enum class Event : uint8_t {
  kDecision = 0,  // one Authorize: verdict + per-stage ns + cache outcome
  kRule,          // one rule evaluation that produced a verdict
  kCtxFetch,      // one EnsureContext round-trip that fetched something
  kVcache,        // one verdict-cache probe (hit / miss / bypass)
  kCount,
};

inline constexpr uint32_t EventBit(Event e) {
  return 1u << static_cast<uint32_t>(e);
}
inline constexpr uint32_t kAllEvents = (1u << static_cast<uint32_t>(Event::kCount)) - 1;

// How the decision was served. The histogram axis of the ISSUE's
// (op × {FULL, COMPILED, VCACHE}) latency matrix.
enum class Path : uint8_t {
  kFull = 0,   // legacy tree-walker traversal
  kCompiled,   // arena-program evaluator traversal
  kVcache,     // served from the verdict cache, no traversal
  kCount,
};

inline constexpr size_t kPathCount = static_cast<size_t>(Path::kCount);

std::string_view EventName(Event e);
std::string_view PathName(Path p);

// Verdict-cache outcome of one decision.
inline constexpr uint8_t kCacheNone = 0;    // cache disabled / not consulted
inline constexpr uint8_t kCacheHit = 1;
inline constexpr uint8_t kCacheMiss = 2;
inline constexpr uint8_t kCacheBypass = 3;  // stateful bucket: never cached

// Record flags.
inline constexpr uint8_t kFlagDrop = 1u << 0;      // verdict was a denial
inline constexpr uint8_t kFlagAudited = 1u << 1;   // denial suppressed (audit)
inline constexpr uint8_t kFlagEptValid = 1u << 2;  // entrypoint fields are set
// The decision was keyed on the task's automaton state (stateful verdict-
// cache tier). On kVcache records the otherwise-unused total_ns field then
// carries the folded automaton state of the probe.
inline constexpr uint8_t kFlagStateKey = 1u << 3;

// One fixed-size trace record. Field use by event kind:
//
//   kDecision  everything below; ctx_ns/eval_ns/total_ns are the per-stage
//              nanoseconds (eval_ns = total - context fetches), chain_id /
//              rule_index name the verdict-producing rule in the compiled
//              program (-1 when the default policy decided or the legacy
//              walker ran).
//   kRule      chain_id/rule_index = the rule, eval_ns = its evaluation ns,
//              flags kFlagDrop when it dropped.
//   kCtxFetch  chain_id = the CtxMask fetched (reused field), eval_ns = ns.
//   kVcache    cache = probe outcome; no timing fields (total_ns instead
//              carries the folded automaton state under kFlagStateKey).
struct TraceRecord {
  uint64_t ts_ns = 0;       // steady-clock ns when the record was emitted
  uint64_t ept_ino = 0;     // entrypoint image inode (kFlagEptValid)
  uint64_t ept_offset = 0;  // entrypoint binary-relative PC
  uint32_t ept_dev = 0;     // entrypoint image device
  uint32_t subject_sid = 0;
  uint32_t object_sid = 0;
  int32_t chain_id = -1;    // compiled-program chain id (see field use above)
  int32_t rule_index = -1;  // rule index within the chain
  uint32_t ctx_ns = 0;      // context-fetch ns (saturating)
  uint32_t eval_ns = 0;     // rule-evaluation ns (saturating)
  uint32_t total_ns = 0;    // whole-decision ns (saturating)
  uint16_t worker = 0;      // producing worker index
  uint8_t op = 0;           // sim::Op of the request
  uint8_t event = 0;        // Event
  uint8_t path = 0;         // Path (kDecision only)
  uint8_t cache = 0;        // kCache* (kDecision / kVcache)
  uint8_t flags = 0;        // kFlag*
  uint8_t reserved = 0;     // pad to 64 bytes
};

static_assert(sizeof(TraceRecord) == 64, "one cache line, eight ring words");
static_assert(std::is_trivially_copyable_v<TraceRecord>,
              "ring publication word-copies records");

inline constexpr size_t kRecordWords = sizeof(TraceRecord) / sizeof(uint64_t);

// Monotonic nanosecond clock for record timestamps and stage timing.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Saturating ns -> uint32 (4.29 s caps a stage; far beyond any real decision).
inline uint32_t ClampNs(uint64_t ns) {
  return ns > 0xffffffffull ? 0xffffffffu : static_cast<uint32_t>(ns);
}

}  // namespace pf::trace

#endif  // SRC_TRACE_RECORD_H_
