#include "src/trace/metrics.h"

namespace pf::trace {

namespace {

// Label values need \" , \\ and \n escaped per the exposition format.
std::string LabelEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void PromWriter::Family(std::string_view name, std::string_view help, std::string_view type) {
  out_ << "# HELP " << name << " " << help << "\n";
  out_ << "# TYPE " << name << " " << type << "\n";
}

void PromWriter::Sample(std::string_view name, const PromLabels& labels,
                        std::string_view value, const char* extra_label,
                        const std::string* extra_value) {
  out_ << name;
  if (!labels.empty() || extra_label != nullptr) {
    out_ << "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) {
        out_ << ",";
      }
      first = false;
      out_ << k << "=\"" << LabelEscape(v) << "\"";
    }
    if (extra_label != nullptr) {
      if (!first) {
        out_ << ",";
      }
      out_ << extra_label << "=\"" << LabelEscape(*extra_value) << "\"";
    }
    out_ << "}";
  }
  out_ << " " << value << "\n";
}

void PromWriter::Counter(std::string_view name, const PromLabels& labels, uint64_t value) {
  Sample(name, labels, std::to_string(value));
}

void PromWriter::Gauge(std::string_view name, const PromLabels& labels, double value) {
  std::ostringstream v;
  v << value;
  Sample(name, labels, v.str());
}

void PromWriter::Histogram(std::string_view name, const PromLabels& labels,
                           const LatencyHistogram& h) {
  const std::string bucket_name = std::string(name) + "_bucket";
  uint64_t cumulative = 0;
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    cumulative += h.bucket(i);
    const std::string le = i + 1 >= LatencyHistogram::kBuckets
                               ? std::string("+Inf")
                               : std::to_string(LatencyHistogram::BucketBound(i));
    Sample(bucket_name, labels, std::to_string(cumulative), "le", &le);
  }
  Sample(std::string(name) + "_sum", labels, std::to_string(h.sum()));
  Sample(std::string(name) + "_count", labels, std::to_string(h.count()));
}

}  // namespace pf::trace
