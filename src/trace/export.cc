#include "src/trace/export.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "src/sim/label.h"
#include "src/sim/lsm.h"

namespace pf::trace {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Event EventOf(const TraceRecord& rec) {
  return rec.event < static_cast<uint8_t>(Event::kCount) ? static_cast<Event>(rec.event)
                                                         : Event::kCount;
}

Path PathOf(const TraceRecord& rec) {
  return rec.path < static_cast<uint8_t>(Path::kCount) ? static_cast<Path>(rec.path)
                                                       : Path::kCount;
}

}  // namespace

std::string NameTable::SidName(uint32_t sid) const {
  if (labels != nullptr) {
    return labels->Name(static_cast<sim::Sid>(sid));
  }
  return "sid:" + std::to_string(sid);
}

std::string NameTable::OpName(uint32_t op) {
  if (op < sim::kOpCount) {
    return std::string(sim::OpName(static_cast<sim::Op>(op)));
  }
  return "op:" + std::to_string(op);
}

std::string VerdictString(const TraceRecord& rec) {
  if ((rec.flags & kFlagDrop) == 0) {
    return "accept";
  }
  return (rec.flags & kFlagAudited) != 0 ? "drop(audited)" : "drop";
}

std::string_view CacheString(uint8_t cache) {
  switch (cache) {
    case kCacheHit:
      return "hit";
    case kCacheMiss:
      return "miss";
    case kCacheBypass:
      return "bypass";
    default:
      return "none";
  }
}

std::string RenderText(const std::vector<TraceRecord>& records, const NameTable& names) {
  std::ostringstream out;
  char buf[64];
  for (const TraceRecord& rec : records) {
    std::snprintf(buf, sizeof(buf), "[%" PRIu64 ".%09" PRIu64 "] w%02u %-9s",
                  rec.ts_ns / uint64_t{1000000000}, rec.ts_ns % uint64_t{1000000000},
                  static_cast<unsigned>(rec.worker),
                  std::string(EventName(EventOf(rec))).c_str());
    out << buf << " op=" << NameTable::OpName(rec.op);
    switch (EventOf(rec)) {
      case Event::kDecision:
        out << " subj=" << names.SidName(rec.subject_sid)
            << " obj=" << names.SidName(rec.object_sid) << " verdict=" << VerdictString(rec)
            << " path=" << PathName(PathOf(rec)) << " cache=" << CacheString(rec.cache);
        if (rec.chain_id >= 0) {
          out << " chain=" << rec.chain_id << " rule=" << rec.rule_index;
        }
        out << " ctx=" << rec.ctx_ns << "ns eval=" << rec.eval_ns
            << "ns total=" << rec.total_ns << "ns";
        if ((rec.flags & kFlagEptValid) != 0) {
          std::snprintf(buf, sizeof(buf), " ept=%u:%" PRIu64 "+0x%" PRIx64, rec.ept_dev,
                        rec.ept_ino, rec.ept_offset);
          out << buf;
        }
        break;
      case Event::kRule:
        out << " chain=" << rec.chain_id << " rule=" << rec.rule_index
            << " verdict=" << VerdictString(rec) << " eval=" << rec.eval_ns << "ns";
        break;
      case Event::kCtxFetch:
        std::snprintf(buf, sizeof(buf), " mask=0x%x", static_cast<uint32_t>(rec.chain_id));
        out << buf << " fetch=" << rec.eval_ns << "ns";
        break;
      case Event::kVcache:
        out << " probe=" << CacheString(rec.cache);
        break;
      case Event::kCount:
        break;
    }
    out << "\n";
  }
  return out.str();
}

std::string RenderJsonLines(const std::vector<TraceRecord>& records, const NameTable& names) {
  std::ostringstream out;
  for (const TraceRecord& rec : records) {
    out << "{\"ts_ns\":" << rec.ts_ns << ",\"worker\":" << rec.worker << ",\"event\":\""
        << EventName(EventOf(rec)) << "\",\"op\":\"" << JsonEscape(NameTable::OpName(rec.op))
        << "\",\"subject\":\"" << JsonEscape(names.SidName(rec.subject_sid))
        << "\",\"object\":\"" << JsonEscape(names.SidName(rec.object_sid)) << "\",\"verdict\":\""
        << VerdictString(rec) << "\",\"path\":\"" << PathName(PathOf(rec)) << "\",\"cache\":\""
        << CacheString(rec.cache) << "\",\"chain\":" << rec.chain_id
        << ",\"rule\":" << rec.rule_index << ",\"ctx_ns\":" << rec.ctx_ns
        << ",\"eval_ns\":" << rec.eval_ns << ",\"total_ns\":" << rec.total_ns
        << ",\"ept_valid\":" << (((rec.flags & kFlagEptValid) != 0) ? "true" : "false")
        << ",\"ept_dev\":" << rec.ept_dev << ",\"ept_ino\":" << rec.ept_ino
        << ",\"ept_offset\":" << rec.ept_offset << "}\n";
  }
  return out.str();
}

std::string RenderChromeTrace(const std::vector<TraceRecord>& records, const NameTable& names) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  const uint64_t base = records.empty() ? 0 : records.front().ts_ns;
  bool first = true;
  char buf[64];
  for (const TraceRecord& rec : records) {
    if (!first) {
      out << ",";
    }
    first = false;
    // Complete events; sub-microsecond durations keep three decimals.
    const uint64_t dur_ns =
        EventOf(rec) == Event::kDecision ? rec.total_ns : rec.eval_ns;
    const uint64_t start_ns = rec.ts_ns - base >= dur_ns ? rec.ts_ns - base - dur_ns : 0;
    std::string name = NameTable::OpName(rec.op);
    if (EventOf(rec) == Event::kDecision) {
      name += " [" + VerdictString(rec) + "]";
    } else if (EventOf(rec) == Event::kRule) {
      name += " rule " + std::to_string(rec.chain_id) + ":" + std::to_string(rec.rule_index);
    }
    out << "{\"name\":\"" << JsonEscape(name) << "\",\"cat\":\"" << EventName(EventOf(rec))
        << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << rec.worker;
    std::snprintf(buf, sizeof(buf), ",\"ts\":%" PRIu64 ".%03" PRIu64 ",\"dur\":%" PRIu64
                                    ".%03" PRIu64,
                  start_ns / 1000, start_ns % 1000, dur_ns / 1000, dur_ns % 1000);
    out << buf;
    out << ",\"args\":{\"subject\":\"" << JsonEscape(names.SidName(rec.subject_sid))
        << "\",\"object\":\"" << JsonEscape(names.SidName(rec.object_sid)) << "\",\"path\":\""
        << PathName(PathOf(rec)) << "\",\"cache\":\"" << CacheString(rec.cache)
        << "\",\"ctx_ns\":" << rec.ctx_ns << ",\"eval_ns\":" << rec.eval_ns << "}}";
  }
  out << "],\"displayTimeUnit\":\"ns\"}";
  return out.str();
}

void WriteRingFamilies(PromWriter& w, const TraceHub& hub) {
  w.Family("pf_trace_records_total", "Trace records emitted into the per-worker rings",
           "counter");
  w.Counter("pf_trace_records_total", {}, hub.records());
  w.Family("pf_trace_drops_total", "Trace records evicted unread from full rings",
           "counter");
  w.Counter("pf_trace_drops_total", {}, hub.drops());
  // Per-ring health, one series per ring that exists. A utilization pinned
  // near 1.0 between scrapes means the eviction counter next to it is about
  // to move: drain more often or grow ring_capacity.
  bool any = false;
  for (size_t wk = 0; wk < TraceHub::kMaxWorkers && !any; ++wk) {
    any = hub.ring(wk) != nullptr;
  }
  if (!any) {
    return;
  }
  w.Family("pf_trace_ring_utilization",
           "Occupied fraction of each worker's trace ring", "gauge");
  for (size_t wk = 0; wk < TraceHub::kMaxWorkers; ++wk) {
    const TraceRing* r = hub.ring(wk);
    if (r == nullptr) {
      continue;
    }
    const size_t cap = r->capacity();
    w.Gauge("pf_trace_ring_utilization", {{"ring", "worker-" + std::to_string(wk)}},
            cap == 0 ? 0.0 : static_cast<double>(r->size()) / static_cast<double>(cap));
  }
  w.Family("pf_trace_ring_drops_total",
           "Trace records evicted unread, by worker ring", "counter");
  for (size_t wk = 0; wk < TraceHub::kMaxWorkers; ++wk) {
    const TraceRing* r = hub.ring(wk);
    if (r == nullptr) {
      continue;
    }
    w.Counter("pf_trace_ring_drops_total", {{"ring", "worker-" + std::to_string(wk)}},
              r->drops());
  }
}

}  // namespace pf::trace
