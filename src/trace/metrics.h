// Minimal Prometheus text-exposition writer (format version 0.0.4): the
// backing for Engine::MetricsText() and `pfshell stats --prom`. Only the
// pieces the engine needs — counters, gauges, and cumulative histograms fed
// from LatencyHistogram — but emitted strictly to spec (one # HELP / # TYPE
// header per family, le labels cumulative and ending at +Inf) so any
// Prometheus scraper or promtool check parses it.
#ifndef SRC_TRACE_METRICS_H_
#define SRC_TRACE_METRICS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/trace/hub.h"

namespace pf::trace {

using PromLabels = std::vector<std::pair<std::string, std::string>>;

class PromWriter {
 public:
  // Starts a metric family. Call once per family, before its samples.
  void Family(std::string_view name, std::string_view help, std::string_view type);

  void Counter(std::string_view name, const PromLabels& labels, uint64_t value);
  void Gauge(std::string_view name, const PromLabels& labels, double value);

  // Emits a full Prometheus histogram (name_bucket le=... cumulative,
  // name_sum, name_count) from a power-of-two LatencyHistogram. The le
  // bounds are the histogram's bucket bounds in nanoseconds. Empty
  // histograms are skipped by the caller, not here.
  void Histogram(std::string_view name, const PromLabels& labels, const LatencyHistogram& h);

  std::string str() const { return out_.str(); }

 private:
  void Sample(std::string_view name, const PromLabels& labels, std::string_view value,
              const char* extra_label = nullptr, const std::string* extra_value = nullptr);

  std::ostringstream out_;
};

}  // namespace pf::trace

#endif  // SRC_TRACE_METRICS_H_
