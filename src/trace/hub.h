// TraceHub: the per-engine tracing control plane (DESIGN.md §5e).
//
// One hub owns everything observability-related that hangs off an Engine:
// the atomic enable state (an event bitmask plus a per-op filter), the
// lazily-allocated per-worker rings, and the always-on latency histograms.
// The hot-path contract is:
//
//   * tracing compiled out (PF_NO_TRACE)  -> ShouldTrace() is constexpr
//     false and every emission site is dead-code-eliminated;
//   * compiled in, disabled (the default) -> one relaxed load of the event
//     mask per tracepoint, nothing else;
//   * enabled                             -> gate, fill a 64-byte record on
//     the stack, eight relaxed stores into the worker's private ring.
//
// Rings are heap-allocated on first emission from a worker (engines are
// created by the dozen in tests; reserving 64 x 256 KiB up front would
// dwarf the engine itself). Allocation takes a mutex once per worker per
// hub; after that the pointer is a relaxed load from an atomic slot.
#ifndef SRC_TRACE_HUB_H_
#define SRC_TRACE_HUB_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/trace/record.h"
#include "src/trace/ring.h"

namespace pf::trace {

// Power-of-two latency histogram: bucket i counts samples whose ns value
// has bit width i (bucket 0: 0 ns, bucket 1: 1 ns, bucket 2: 2-3 ns, ...,
// bucket 31: >= 2^30 ns), plus an exact sum/count for mean computation.
// All relaxed atomics — a histogram is a statistic, not a synchronization
// structure.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 32;

  void Record(uint64_t ns) {
    const size_t b = BucketOf(ns);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  static size_t BucketOf(uint64_t ns) {
    const size_t w = static_cast<size_t>(std::bit_width(ns));
    return w >= kBuckets ? kBuckets - 1 : w;
  }
  // Inclusive upper bound of bucket i in ns (2^i - 1); the last bucket is
  // unbounded and reports ~0.
  static uint64_t BucketBound(size_t i) {
    return i + 1 >= kBuckets ? ~0ull : (1ull << i) - 1;
  }

  uint64_t bucket(size_t i) const { return buckets_[i].load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  void Reset() {
    for (auto& b : buckets_) {
      b.store(0, std::memory_order_relaxed);
    }
    sum_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

class TraceHub {
 public:
  static constexpr size_t kMaxWorkers = 64;  // mirrors Engine::kMaxWorkers
  static constexpr size_t kMaxOps = 64;      // op filter is one uint64

  TraceHub() = default;
  explicit TraceHub(size_t ring_capacity) : ring_capacity_(ring_capacity) {}
  ~TraceHub();
  TraceHub(const TraceHub&) = delete;
  TraceHub& operator=(const TraceHub&) = delete;

  // --- control plane ---

  // Enables record emission for the events in `mask` (EventBit ORs;
  // kAllEvents for everything). Does not touch the op filter.
  void Enable(uint32_t event_mask = kAllEvents) {
    events_.store(event_mask & kAllEvents, std::memory_order_relaxed);
  }
  void Disable() { events_.store(0, std::memory_order_relaxed); }
  uint32_t events() const { return events_.load(std::memory_order_relaxed); }
  bool enabled() const { return events() != 0; }

  // Per-op filter: bit i admits op i. Defaults to all ops.
  void SetOpFilter(uint64_t mask) { op_filter_.store(mask, std::memory_order_relaxed); }
  uint64_t op_filter() const { return op_filter_.load(std::memory_order_relaxed); }

  // --- hot path ---

  // The tracepoint gate. Folds to constant false when compiled out; one or
  // two relaxed loads otherwise.
  bool ShouldTrace(Event e, uint32_t op) const {
    if constexpr (!kTraceCompiledIn) {
      return false;
    }
    const uint32_t ev = events_.load(std::memory_order_relaxed);
    if ((ev & EventBit(e)) == 0) {
      return false;
    }
    return ((op_filter_.load(std::memory_order_relaxed) >> (op & (kMaxOps - 1))) & 1) != 0;
  }

  // Publishes a record into the producing worker's ring (rec.worker picks
  // the ring; the caller must be that worker — rings are SPSC). Never
  // blocks; a full ring evicts its oldest record and counts a drop.
  void Emit(const TraceRecord& rec) {
    if constexpr (!kTraceCompiledIn) {
      return;
    }
    const size_t w = rec.worker & (kMaxWorkers - 1);
    TraceRing* ring = rings_[w].load(std::memory_order_acquire);
    if (ring == nullptr) {
      ring = AllocateRing(w);
    }
    ring->Push(rec);
  }

  // Always-on latency attribution (cheap enough to run whenever tracing is
  // enabled at all): one histogram per (op, decision path).
  void RecordLatency(uint32_t op, Path path, uint64_t ns) {
    if constexpr (!kTraceCompiledIn) {
      return;
    }
    histograms_[op & (kMaxOps - 1)][static_cast<size_t>(path)].Record(ns);
  }

  // --- consumer / exposition side ---

  // The ring of worker `w`, or null if that worker never emitted.
  TraceRing* ring(size_t w) const {
    return rings_[w & (kMaxWorkers - 1)].load(std::memory_order_acquire);
  }

  const LatencyHistogram& histogram(uint32_t op, Path path) const {
    return histograms_[op & (kMaxOps - 1)][static_cast<size_t>(path)];
  }

  // Records lost across all rings (the ISSUE's `trace_drops`).
  uint64_t drops() const;
  // Records ever emitted across all rings.
  uint64_t records() const;

  // Pops every pending record from every ring, merged in timestamp order.
  // The caller is the (single) consumer of each ring.
  std::vector<TraceRecord> Drain();

  void ResetHistograms();

 private:
  TraceRing* AllocateRing(size_t w);

  std::atomic<uint32_t> events_{0};
  std::atomic<uint64_t> op_filter_{~0ull};
  size_t ring_capacity_ = kDefaultRingCapacity;

  std::array<std::atomic<TraceRing*>, kMaxWorkers> rings_{};
  std::mutex alloc_mu_;  // serializes first-emission ring allocation

  std::array<std::array<LatencyHistogram, kPathCount>, kMaxOps> histograms_{};
};

}  // namespace pf::trace

#endif  // SRC_TRACE_HUB_H_
