#include "src/analysis/analyzer.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/automata.h"
#include "src/core/modules.h"

namespace pf::analysis {

namespace {

using core::CompiledRuleset;
using core::Ctx;
using core::CtxBit;
using core::CtxMask;
using core::CtxVar;
using core::PfOp;
using core::PfProgram;
using core::ProgramChain;
using core::Rule;
using core::RuleRecord;
using core::TargetKind;

std::string CtxName(Ctx c) {
  switch (c) {
    case Ctx::kObject:
      return "object";
    case Ctx::kLinkTarget:
      return "link-target";
    case Ctx::kAdversaryAccess:
      return "adversary-access";
    case Ctx::kEntrypoint:
      return "entrypoint";
    case Ctx::kUserStack:
      return "user-stack";
    case Ctx::kInterpStack:
      return "interp-stack";
    case Ctx::kCount:
      break;
  }
  return "?";
}

std::string CtxNames(CtxMask mask) {
  std::string out;
  for (uint32_t i = 0; i < static_cast<uint32_t>(Ctx::kCount); ++i) {
    if ((mask & (1u << i)) != 0) {
      if (!out.empty()) {
        out += "+";
      }
      out += CtxName(static_cast<Ctx>(i));
    }
  }
  return out.empty() ? "nothing" : out;
}

// Context the verdict-cache key does NOT cover (see engine.h VerdictKey):
// symlink targets are re-resolved per access, and only the innermost user
// frame — not the full stack or the interpreter backtrace — participates in
// the key. A module that reads these and still claims CacheableByKey() lets
// the cache serve stale verdicts.
constexpr CtxMask kNonKeyedCtx =
    CtxBit(Ctx::kLinkTarget) | CtxBit(Ctx::kUserStack) | CtxBit(Ctx::kInterpStack);

RuleLocus Locus(const std::string& chain, size_t pos0) {
  return RuleLocus{"filter", chain, pos0 + 1};
}

RuleLocus ChainLocus(const std::string& chain) { return RuleLocus{"filter", chain, 0}; }

// --- per-op available context -------------------------------------------------

// Whether the kernel supplies an object inode with this operation (signal
// delivery, syscall entry, and fork mediate subject-side events only).
bool OpHasObject(sim::Op op) {
  switch (op) {
    case sim::Op::kSignalDeliver:
    case sim::Op::kSyscallBegin:
    case sim::Op::kFork:
      return false;
    default:
      return true;
  }
}

// Context fields a rule evaluated at `op` could ever observe as present.
// Process-side context (entrypoint, stacks) is always fetchable; object-side
// context needs an object; link-target context exists only while following a
// symlink.
CtxMask AvailableCtx(sim::Op op) {
  CtxMask m = CtxBit(Ctx::kEntrypoint) | CtxBit(Ctx::kUserStack) |
              CtxBit(Ctx::kInterpStack);
  if (OpHasObject(op)) {
    m |= CtxBit(Ctx::kObject) | CtxBit(Ctx::kAdversaryAccess);
  }
  if (op == sim::Op::kLnkFileRead) {
    m |= CtxBit(Ctx::kLinkTarget);
  }
  return m;
}

// Whether Packet::Resolve can ever produce a value for this operand at `op`
// (mirrors the per-op guards in packet.cc).
bool OperandAvailable(const core::Operand& v, sim::Op op) {
  if (!v.is_var) {
    return true;
  }
  switch (v.var) {
    case CtxVar::kIno:
    case CtxVar::kGen:
    case CtxVar::kDev:
    case CtxVar::kSid:
    case CtxVar::kDacOwner:
      return OpHasObject(op);
    case CtxVar::kTgtDacOwner:
    case CtxVar::kTgtSid:
      return op == sim::Op::kLnkFileRead;
    case CtxVar::kSig:
      return op == sim::Op::kSignalDeliver;
    case CtxVar::kPid:
    case CtxVar::kUid:
    case CtxVar::kEuid:
    case CtxVar::kSyscall:
      return true;
  }
  return true;
}

// --- rule summaries -----------------------------------------------------------

// Dense bitvector over the interned-label universe: the concrete expansion
// of one LabelSet (negation and SYSHIGH resolved against the MAC policy).
struct SidSet {
  std::vector<bool> bits;

  bool Any() const {
    return std::find(bits.begin(), bits.end(), true) != bits.end();
  }
  bool SupersetOf(const SidSet& o) const {
    for (size_t i = 0; i < bits.size(); ++i) {
      if (o.bits[i] && !bits[i]) {
        return false;
      }
    }
    return true;
  }
};

struct RuleInfo {
  const Rule* rule = nullptr;
  size_t pos0 = 0;
  SidSet subject;          // expansion of -s over all interned sids
  SidSet object;           // expansion of -d (all-true when wildcard)
  bool requires_object = false;
  std::optional<TargetKind> static_kind;
};

SidSet ExpandSubject(const core::LabelSet& ls, const sim::MacPolicy& policy,
                     size_t universe) {
  SidSet s;
  s.bits.resize(universe);
  for (size_t sid = 0; sid < universe; ++sid) {
    s.bits[sid] = ls.MatchesSubject(static_cast<sim::Sid>(sid), policy);
  }
  return s;
}

SidSet ExpandObject(const core::LabelSet& ls, const sim::MacPolicy& policy,
                    size_t universe) {
  SidSet s;
  s.bits.resize(universe);
  for (size_t sid = 0; sid < universe; ++sid) {
    s.bits[sid] = ls.MatchesObject(static_cast<sim::Sid>(sid), policy);
  }
  return s;
}

// Summaries are built from the program's rule records: the static verdict
// kind is the one the lowering pass computed (so analyzer and evaluator
// agree by construction), while the label-set expansion goes through the
// record's side pointer — the arena stores interned sid slices, not the MAC
// policy they expand against.
RuleInfo Summarize(const RuleRecord& rec, size_t pos0, const sim::MacPolicy& policy,
                   size_t universe) {
  const Rule& rule = *rec.rule;
  RuleInfo info;
  info.rule = &rule;
  info.pos0 = pos0;
  info.subject = ExpandSubject(rule.subject, policy, universe);
  info.object = ExpandObject(rule.object, policy, universe);
  info.requires_object = !rule.object.wildcard || rule.ino.has_value();
  info.static_kind = rec.static_kind;
  return info;
}

bool IsTerminal(std::optional<TargetKind> k) {
  return k == TargetKind::kAccept || k == TargetKind::kDrop || k == TargetKind::kReturn;
}

// True when every packet rule `b` matches is also matched by rule `a`
// (match-space containment). Sound under the engine's traversal: the
// default-match comparisons mirror DefaultMatches field by field, and -m
// modules compare through MatchModule::Subsumes. Note the entrypoint index
// cannot reorder a subsuming pair past each other: `a` carrying a program or
// entrypoint constraint forces `b` to carry the same one, so the pair always
// lands in the same (plain or per-entrypoint) partition.
bool Subsumes(const RuleInfo& a, const RuleInfo& b) {
  const Rule& ra = *a.rule;
  const Rule& rb = *b.rule;
  if (ra.op && (!rb.op || *rb.op != *ra.op)) {
    return false;
  }
  if (!a.subject.SupersetOf(b.subject)) {
    return false;
  }
  if (a.requires_object) {
    if (!b.requires_object) {
      return false;  // b also matches object-less requests
    }
    if (ra.ino && (!rb.ino || *rb.ino != *ra.ino)) {
      return false;
    }
    if (!a.object.SupersetOf(b.object)) {
      return false;
    }
  }
  if (ra.has_program() &&
      (!rb.has_program() || !(rb.program_file == ra.program_file))) {
    return false;
  }
  if (ra.entrypoint && (!rb.entrypoint || *rb.entrypoint != *ra.entrypoint)) {
    return false;
  }
  for (const auto& ma : ra.matches) {
    bool covered = false;
    for (const auto& mb : rb.matches) {
      if (ma->Subsumes(*mb)) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return false;
    }
  }
  return true;
}

Severity DropAware(std::optional<TargetKind> kind) {
  return kind == TargetKind::kDrop ? Severity::kError : Severity::kWarning;
}

// Why `info.rule` can never match at `op`, or "" when it can. Mirrors the
// runtime behavior: DefaultMatches fails when a required object is absent,
// SIGNAL_MATCH pins the op, and STATE/COMPARE operands resolve per op.
std::string BlockReason(const RuleInfo& info, sim::Op op) {
  const Rule& rule = *info.rule;
  const std::string opname = std::string(sim::OpName(op));
  if (info.requires_object && !OpHasObject(op)) {
    return "-d/--ino require an object and -o " + opname + " carries none";
  }
  for (const auto& m : rule.matches) {
    CtxMask missing = m->Needs() & ~AvailableCtx(op);
    if (missing != 0) {
      return "-m " + std::string(m->Name()) + " needs " + CtxNames(missing) +
             " context, which -o " + opname + " never supplies";
    }
    if (dynamic_cast<const core::SignalMatch*>(m.get()) != nullptr &&
        op != sim::Op::kSignalDeliver) {
      return "-m SIGNAL_MATCH matches only -o PROCESS_SIGNAL_DELIVERY";
    }
    if (const auto* sm = dynamic_cast<const core::StateMatch*>(m.get());
        sm != nullptr && sm->cmp && !OperandAvailable(*sm->cmp, op)) {
      return "-m STATE --cmp " + sm->cmp->Render() + " never resolves at -o " + opname;
    }
    if (const auto* cm = dynamic_cast<const core::CompareMatch*>(m.get())) {
      for (const core::Operand* v : {&cm->v1, &cm->v2}) {
        if (!OperandAvailable(*v, op)) {
          return "-m COMPARE operand " + v->Render() + " never resolves at -o " +
                 opname;
        }
      }
    }
  }
  return "";
}

// --- analysis passes ----------------------------------------------------------

// Every pass runs over the program form (rs.program): chain ids index the
// per-chain tables, JUMP edges and static verdict kinds come from the
// lowered RuleRecords, and the per-op reachability closure walks the same
// entry-table slices the compiled evaluator dispatches over — what is
// analyzed is literally what executes. The RuleRecord side pointers into the
// shared Rule objects supply the parts the arena intentionally does not
// encode: label-set expansion against the MAC policy, module subsumption,
// and context-needs classification.
struct Analysis {
  const CompiledRuleset& rs;
  const sim::MacPolicy& policy;
  const AnalyzerOptions& opts;
  AnalysisReport* report;
  const PfProgram& prog;

  // Per-chain rule summaries, indexed by program chain id.
  std::vector<std::vector<RuleInfo>> infos;
  // Chains reachable per op via the engine's root selection + JUMP edges.
  std::array<std::vector<char>, sim::kOpCount> reach;
  // Chains reachable from any root, op-agnostic (for unreachable-chain).
  std::vector<char> reach_any;
  // Minimum JUMP depth a chain is entered at (roots = 0; -1 = unreachable).
  std::vector<int> min_depth;
  bool has_cycle = false;

  void Run();

 private:
  void BuildSummaries();
  void BuildReachability();
  void CheckShadowing();
  void CheckJumpGraph();
  void CheckRuleLiveness();
  void CheckStateProtocol();
  void CheckCacheability();
};

void Analysis::BuildSummaries() {
  const size_t universe = policy.labels().size();
  infos.resize(prog.chains.size());
  for (size_t id = 0; id < prog.chains.size(); ++id) {
    const ProgramChain& pc = prog.chains[id];
    infos[id].reserve(pc.rules.size());
    for (size_t i = 0; i < pc.rules.size(); ++i) {
      infos[id].push_back(Summarize(prog.rules[pc.rules[i]], i, policy, universe));
    }
  }
}

void Analysis::BuildReachability() {
  // Mirror Engine::Authorize's root-chain selection per op, then close over
  // JUMP edges using the program's per-op bucket slices (a rule whose -o
  // precheck cannot pass is not in the bucket, so its jump does not extend
  // reach).
  for (auto& r : reach) {
    r.assign(prog.chains.size(), 0);
  }
  reach_any.assign(prog.chains.size(), 0);
  min_depth.assign(prog.chains.size(), -1);

  for (size_t opi = 0; opi < sim::kOpCount; ++opi) {
    const sim::Op op = static_cast<sim::Op>(opi);
    std::vector<int32_t> roots;
    if (op == sim::Op::kSyscallBegin) {
      roots.push_back(prog.root_syscallbegin);
    } else {
      if (core::IsCreateOp(op)) {
        roots.push_back(prog.root_create);
      }
      if (core::IsOutputOp(op)) {
        roots.push_back(prog.root_output);
      }
      roots.push_back(prog.root_input);
    }
    std::deque<int32_t> queue;
    for (int32_t root : roots) {
      if (root >= 0 && reach[opi][static_cast<size_t>(root)] == 0) {
        reach[opi][static_cast<size_t>(root)] = 1;
        queue.push_back(root);
      }
    }
    while (!queue.empty()) {
      const int32_t id = queue.front();
      queue.pop_front();
      const core::ProgramBucket& bucket = prog.chains[static_cast<size_t>(id)].ops[opi];
      for (uint32_t i = 0; i < bucket.all_len; ++i) {
        const RuleRecord& rec = prog.rules[prog.entries[bucket.all_off + i]];
        if (rec.jump_chain >= 0 && reach[opi][static_cast<size_t>(rec.jump_chain)] == 0) {
          reach[opi][static_cast<size_t>(rec.jump_chain)] = 1;
          queue.push_back(rec.jump_chain);
        }
      }
    }
  }

  // Op-agnostic reachability with entry depths (BFS = minimum JUMP depth).
  std::deque<int32_t> queue;
  for (int32_t root :
       {prog.root_input, prog.root_output, prog.root_create, prog.root_syscallbegin}) {
    if (root >= 0 && reach_any[static_cast<size_t>(root)] == 0) {
      reach_any[static_cast<size_t>(root)] = 1;
      min_depth[static_cast<size_t>(root)] = 0;
      queue.push_back(root);
    }
  }
  while (!queue.empty()) {
    const int32_t id = queue.front();
    queue.pop_front();
    for (uint32_t rec_idx : prog.chains[static_cast<size_t>(id)].rules) {
      const RuleRecord& rec = prog.rules[rec_idx];
      if (rec.jump_chain >= 0 && reach_any[static_cast<size_t>(rec.jump_chain)] == 0) {
        reach_any[static_cast<size_t>(rec.jump_chain)] = 1;
        min_depth[static_cast<size_t>(rec.jump_chain)] =
            min_depth[static_cast<size_t>(id)] + 1;
        queue.push_back(rec.jump_chain);
      }
    }
  }
}

void Analysis::CheckShadowing() {
  for (size_t id = 0; id < prog.chains.size(); ++id) {
    const std::string& name = prog.chains[id].name;
    const std::vector<RuleInfo>& v = infos[id];
    for (size_t j = 1; j < v.size(); ++j) {
      // Empty-expansion rules are reported by CheckRuleLiveness; a shadow
      // diagnostic on top of "matches nothing" would be noise.
      if (!v[j].subject.Any() || (v[j].requires_object && !v[j].object.Any())) {
        continue;
      }
      for (size_t i = 0; i < j; ++i) {
        if (!IsTerminal(v[i].static_kind)) {
          continue;  // non-terminal (or unknown) rules let traversal continue
        }
        if (!Subsumes(v[i], v[j])) {
          continue;
        }
        std::string kind =
            v[i].static_kind == TargetKind::kDrop     ? "DROP"
            : v[i].static_kind == TargetKind::kAccept ? "ACCEPT"
                                                      : "RETURN";
        report->Add(DropAware(v[j].static_kind), "shadowed-rule", Locus(name, j),
                    "rule can never fire: every packet it matches is consumed by the "
                    "earlier terminal " +
                        kind + " rule at position " + std::to_string(i + 1),
                    Locus(name, i));
        break;  // one shadow finding per rule
      }
    }
  }
}

void Analysis::CheckJumpGraph() {
  // Undefined targets + RETURN in a root chain, straight off the rule
  // records: an undefined JUMP is a record with a declared target name but
  // no resolved chain id.
  for (size_t id = 0; id < prog.chains.size(); ++id) {
    const ProgramChain& pc = prog.chains[id];
    for (size_t i = 0; i < pc.rules.size(); ++i) {
      const RuleRecord& rec = prog.rules[pc.rules[i]];
      if (rec.jump_name != core::kPfNoIndex && rec.jump_chain < 0) {
        report->Add(Severity::kError, "undefined-chain", Locus(pc.name, i),
                    "JUMP to undefined chain '" + prog.strings[rec.jump_name] + "'");
      }
      if (pc.builtin && rec.static_kind == TargetKind::kReturn) {
        report->Add(Severity::kWarning, "return-from-root", Locus(pc.name, i),
                    "RETURN in builtin chain '" + pc.name +
                        "' skips the remaining rules of the chain and falls through "
                        "to the default policy");
      }
    }
  }

  // Cycle detection: iterative DFS over jump edges, every chain a start
  // node (cycles among unreachable chains still hang a future reload).
  enum class Color { kWhite, kGrey, kBlack };
  std::vector<Color> color(prog.chains.size(), Color::kWhite);
  // Each stack frame: (chain id, next rule index to expand).
  for (size_t start = 0; start < prog.chains.size(); ++start) {
    if (color[start] != Color::kWhite) {
      continue;
    }
    std::vector<std::pair<int32_t, size_t>> stack;
    stack.emplace_back(static_cast<int32_t>(start), 0);
    color[start] = Color::kGrey;
    while (!stack.empty()) {
      auto& [cur, idx] = stack.back();
      const ProgramChain& pc = prog.chains[static_cast<size_t>(cur)];
      if (idx >= pc.rules.size()) {
        color[static_cast<size_t>(cur)] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const size_t rule_idx = idx++;
      const int32_t next = prog.rules[pc.rules[rule_idx]].jump_chain;
      if (next < 0) {
        continue;
      }
      if (color[static_cast<size_t>(next)] == Color::kGrey) {
        has_cycle = true;
        // Render the cycle: the segment of the DFS stack from `next` down
        // to the jumping rule.
        std::string path = prog.chains[static_cast<size_t>(next)].name;
        bool in_cycle = false;
        for (const auto& frame : stack) {
          if (frame.first == next) {
            in_cycle = true;
            continue;
          }
          if (in_cycle) {
            path += " -> " + prog.chains[static_cast<size_t>(frame.first)].name;
          }
        }
        path += " -> " + prog.chains[static_cast<size_t>(next)].name;
        report->Add(Severity::kError, "jump-cycle", Locus(pc.name, rule_idx),
                    "JUMP cycle: " + path);
      } else if (color[static_cast<size_t>(next)] == Color::kWhite) {
        color[static_cast<size_t>(next)] = Color::kGrey;
        stack.emplace_back(next, 0);
      }
    }
  }

  // Unreachable chains + the depth bound.
  for (size_t id = 0; id < prog.chains.size(); ++id) {
    const ProgramChain& pc = prog.chains[id];
    if (reach_any[id] == 0) {
      report->Add(Severity::kWarning, "unreachable-chain", ChainLocus(pc.name),
                  "no JUMP from a builtin chain reaches this chain; its " +
                      std::to_string(pc.rules.size()) + " rule(s) are never evaluated");
      continue;
    }
    if (min_depth[id] >= opts.max_depth) {
      report->Add(Severity::kError, "depth-exceeded", ChainLocus(pc.name),
                  "chain is first entered at JUMP depth " + std::to_string(min_depth[id]) +
                      " >= the traversal bound " + std::to_string(opts.max_depth) +
                      "; its rules never run");
    }
  }

  // On an acyclic jump graph, also flag chains whose *deepest* entry path
  // crosses the bound: some JUMP silently evaluates nothing.
  if (!has_cycle) {
    // Longest entry depth per chain: relax jump edges to a fixpoint (the
    // graph is acyclic here and tiny — chains count in the tens).
    std::vector<int> max_depth_in(prog.chains.size(), -1);
    for (int32_t root :
         {prog.root_input, prog.root_output, prog.root_create, prog.root_syscallbegin}) {
      if (root >= 0) {
        max_depth_in[static_cast<size_t>(root)] = 0;
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t id = 0; id < prog.chains.size(); ++id) {
        if (max_depth_in[id] < 0) {
          continue;
        }
        for (uint32_t rec_idx : prog.chains[id].rules) {
          const int32_t next = prog.rules[rec_idx].jump_chain;
          if (next < 0) {
            continue;
          }
          const int d = max_depth_in[id] + 1;
          if (max_depth_in[static_cast<size_t>(next)] < d) {
            max_depth_in[static_cast<size_t>(next)] = d;
            changed = true;
          }
        }
      }
    }
    for (size_t id = 0; id < prog.chains.size(); ++id) {
      if (reach_any[id] != 0 && min_depth[id] < opts.max_depth &&
          max_depth_in[id] >= opts.max_depth) {
        report->Add(Severity::kWarning, "deep-jump", ChainLocus(prog.chains[id].name),
                    "some JUMP path enters this chain at depth " +
                        std::to_string(max_depth_in[id]) + " >= the traversal bound " +
                        std::to_string(opts.max_depth) +
                        "; the chain is silently skipped on that path");
      }
    }
  }
}

void Analysis::CheckRuleLiveness() {
  for (size_t id = 0; id < prog.chains.size(); ++id) {
    const std::string& name = prog.chains[id].name;
    const bool chain_reachable = reach_any[id] != 0;
    const std::vector<RuleInfo>& v = infos[id];
    for (const RuleInfo& info : v) {
      const Rule& rule = *info.rule;

      // Empty label-set expansions are dead regardless of reachability.
      if (!info.subject.Any()) {
        report->Add(DropAware(info.static_kind), "empty-match", Locus(name, info.pos0),
                    "-s " + rule.subject.Render(policy.labels()) +
                        " expands to the empty label set under the current MAC "
                        "policy; the rule matches nothing");
        continue;
      }
      if (info.requires_object && !rule.object.wildcard && !info.object.Any()) {
        report->Add(DropAware(info.static_kind), "empty-match", Locus(name, info.pos0),
                    "-d " + rule.object.Render(policy.labels()) +
                        " expands to the empty label set under the current MAC "
                        "policy; the rule matches nothing");
        continue;
      }

      if (!chain_reachable) {
        continue;  // covered by the chain-level unreachable-chain finding
      }

      // Ops that both reach this chain and pass the rule's -o precheck.
      std::vector<sim::Op> rops;
      for (size_t opi = 0; opi < sim::kOpCount; ++opi) {
        const sim::Op op = static_cast<sim::Op>(opi);
        if (rule.op && *rule.op != op) {
          continue;
        }
        if (reach[opi][id] != 0) {
          rops.push_back(op);
        }
      }
      if (rops.empty()) {
        std::string why =
            rule.op ? "chain '" + name + "' is never traversed for -o " +
                          std::string(sim::OpName(*rule.op))
                    : "no mediated operation traverses chain '" + name + "'";
        report->Add(DropAware(info.static_kind), "unreachable-rule",
                    Locus(name, info.pos0), "rule is never evaluated: " + why);
        continue;
      }

      // Context satisfiability: some reaching op must be able to supply
      // everything the rule's matches read.
      std::vector<sim::Op> live;
      std::string first_reason;
      for (sim::Op op : rops) {
        std::string reason = BlockReason(info, op);
        if (reason.empty()) {
          live.push_back(op);
        } else if (first_reason.empty()) {
          first_reason = std::move(reason);
        }
      }
      if (live.empty()) {
        report->Add(DropAware(info.static_kind), "context-unavailable",
                    Locus(name, info.pos0),
                    "rule can never match: on every operation that reaches it, " +
                        first_reason);
        continue;
      }

      // Target-side context: a STATE --set whose value never resolves fires
      // but stores nothing.
      const auto* st = dynamic_cast<const core::StateTarget*>(rule.target.get());
      if (st != nullptr && !st->unset && st->value.is_var) {
        bool resolvable = false;
        for (sim::Op op : live) {
          if (OperandAvailable(st->value, op)) {
            resolvable = true;
            break;
          }
        }
        if (!resolvable) {
          report->Add(Severity::kWarning, "target-context-unavailable",
                      Locus(name, info.pos0),
                      "STATE --set value " + st->value.Render() +
                          " never resolves on any operation that reaches this rule; "
                          "the target fires but stores nothing");
        }
      }
    }
  }
}

void Analysis::CheckStateProtocol() {
  struct KeyUse {
    std::vector<std::pair<RuleLocus, const RuleInfo*>> checks;
    std::vector<RuleLocus> sets;
    std::vector<RuleLocus> unsets;
  };
  std::map<std::string, KeyUse> keys;

  // Scan the instruction stream rather than dynamic_cast the module tree:
  // every STATE match and STATE target lowers to a dedicated arena op with
  // its key interned in the string pool, so the protocol pass sees exactly
  // what the compiled evaluator will execute. StateRefOfInsn is the same
  // extraction the automaton lowering pass classifies from, so the lints and
  // the lowering agree on what touches which key.
  for (size_t id = 0; id < prog.chains.size(); ++id) {
    const ProgramChain& pc = prog.chains[id];
    for (size_t i = 0; i < pc.rules.size(); ++i) {
      const RuleRecord& rec = prog.rules[pc.rules[i]];
      for (uint32_t p = rec.entry; p < rec.end; p += core::kPfInsnWords) {
        const std::optional<core::InsnStateRef> ref =
            core::StateRefOfInsn(prog, prog.Fetch(p));
        if (!ref.has_value()) {
          continue;
        }
        KeyUse& use = keys[std::string(ref->key)];
        if (ref->is_check) {
          use.checks.emplace_back(Locus(pc.name, i), &infos[id][i]);
        } else if (ref->is_set) {
          use.sets.push_back(Locus(pc.name, i));
        } else if (ref->is_unset) {
          use.unsets.push_back(Locus(pc.name, i));
        }
      }
    }
  }

  for (const auto& [key, use] : keys) {
    if (key == core::kPhaseKeyName) {
      // The phase key reads as the distinguished init phase while absent, so
      // a PHASE guard with no -j PHASE writer is a legitimate init-only rule,
      // not a dead check.
      continue;
    }
    if (use.sets.empty()) {
      // An absent key never matches a STATE check (even --nequal), so every
      // check of a never-set key deadens its rule.
      for (const auto& [locus, info] : use.checks) {
        report->Add(DropAware(info->static_kind), "state-never-set", locus,
                    "STATE --key " + key +
                        " is checked here but no rule ever sets it; the match can "
                        "never succeed");
      }
      for (const RuleLocus& locus : use.unsets) {
        report->Add(Severity::kInfo, "state-unset-never-set", locus,
                    "STATE --unset of key " + key + " which no rule ever sets");
      }
    }
    if (use.checks.empty() && !use.sets.empty()) {
      for (const RuleLocus& locus : use.sets) {
        report->Add(Severity::kWarning, "state-never-checked", locus,
                    "STATE --set of key " + key +
                        " is never checked by any STATE match; the stored state "
                        "protects nothing");
      }
    }
  }
}

void Analysis::CheckCacheability() {
  for (size_t id = 0; id < prog.chains.size(); ++id) {
    const ProgramChain& pc = prog.chains[id];
    const std::string& name = pc.name;
    for (size_t i = 0; i < pc.rules.size(); ++i) {
      const Rule& rule = *prog.rules[pc.rules[i]].rule;
      for (const auto& m : rule.matches) {
        CtxMask bad = m->CacheableByKey() ? (m->Needs() & kNonKeyedCtx) : 0;
        if (bad != 0) {
          report->Add(Severity::kError, "false-cacheable", Locus(name, i),
                      "-m " + std::string(m->Name()) +
                          " claims CacheableByKey() but reads " + CtxNames(bad) +
                          ", which the verdict-cache key does not cover; cached "
                          "verdicts would go stale");
        }
      }
      if (rule.target != nullptr) {
        CtxMask bad =
            rule.target->CacheableByKey() ? (rule.target->Needs() & kNonKeyedCtx) : 0;
        if (bad != 0) {
          report->Add(Severity::kError, "false-cacheable", Locus(name, i),
                      "-j " + std::string(rule.target->Name()) +
                          " claims CacheableByKey() but reads " + CtxNames(bad) +
                          ", which the verdict-cache key does not cover; cached "
                          "verdicts would go stale");
        }
      }
    }
  }
}

void Analysis::Run() {
  BuildSummaries();
  BuildReachability();
  if (opts.jump_graph) {
    CheckJumpGraph();
  }
  if (opts.shadowing) {
    CheckShadowing();
    CheckRuleLiveness();
  }
  if (opts.state_protocol) {
    CheckStateProtocol();
  }
  if (opts.cacheability) {
    CheckCacheability();
  }
}

}  // namespace

AnalysisReport AnalyzeRuleset(const core::CompiledRuleset& rs,
                              const sim::MacPolicy& policy,
                              const AnalyzerOptions& opts) {
  AnalysisReport report;
  Analysis analysis{rs, policy, opts, &report, rs.program};
  analysis.Run();
  report.Sort();
  return report;
}

AnalysisReport AnalyzeEngine(core::Engine& engine, const AnalyzerOptions& opts) {
  return AnalyzeRuleset(*engine.CompileRuleset(), engine.policy(), opts);
}

}  // namespace pf::analysis
