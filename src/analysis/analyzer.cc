#include "src/analysis/analyzer.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/modules.h"

namespace pf::analysis {

namespace {

using core::Chain;
using core::CompiledRuleset;
using core::Ctx;
using core::CtxBit;
using core::CtxMask;
using core::CtxVar;
using core::Rule;
using core::Table;
using core::TargetKind;

std::string CtxName(Ctx c) {
  switch (c) {
    case Ctx::kObject:
      return "object";
    case Ctx::kLinkTarget:
      return "link-target";
    case Ctx::kAdversaryAccess:
      return "adversary-access";
    case Ctx::kEntrypoint:
      return "entrypoint";
    case Ctx::kUserStack:
      return "user-stack";
    case Ctx::kInterpStack:
      return "interp-stack";
    case Ctx::kCount:
      break;
  }
  return "?";
}

std::string CtxNames(CtxMask mask) {
  std::string out;
  for (uint32_t i = 0; i < static_cast<uint32_t>(Ctx::kCount); ++i) {
    if ((mask & (1u << i)) != 0) {
      if (!out.empty()) {
        out += "+";
      }
      out += CtxName(static_cast<Ctx>(i));
    }
  }
  return out.empty() ? "nothing" : out;
}

// Context the verdict-cache key does NOT cover (see engine.h VerdictKey):
// symlink targets are re-resolved per access, and only the innermost user
// frame — not the full stack or the interpreter backtrace — participates in
// the key. A module that reads these and still claims CacheableByKey() lets
// the cache serve stale verdicts.
constexpr CtxMask kNonKeyedCtx =
    CtxBit(Ctx::kLinkTarget) | CtxBit(Ctx::kUserStack) | CtxBit(Ctx::kInterpStack);

RuleLocus Locus(const std::string& chain, size_t pos0) {
  return RuleLocus{"filter", chain, pos0 + 1};
}

RuleLocus ChainLocus(const std::string& chain) { return RuleLocus{"filter", chain, 0}; }

// --- per-op available context -------------------------------------------------

// Whether the kernel supplies an object inode with this operation (signal
// delivery, syscall entry, and fork mediate subject-side events only).
bool OpHasObject(sim::Op op) {
  switch (op) {
    case sim::Op::kSignalDeliver:
    case sim::Op::kSyscallBegin:
    case sim::Op::kFork:
      return false;
    default:
      return true;
  }
}

// Context fields a rule evaluated at `op` could ever observe as present.
// Process-side context (entrypoint, stacks) is always fetchable; object-side
// context needs an object; link-target context exists only while following a
// symlink.
CtxMask AvailableCtx(sim::Op op) {
  CtxMask m = CtxBit(Ctx::kEntrypoint) | CtxBit(Ctx::kUserStack) |
              CtxBit(Ctx::kInterpStack);
  if (OpHasObject(op)) {
    m |= CtxBit(Ctx::kObject) | CtxBit(Ctx::kAdversaryAccess);
  }
  if (op == sim::Op::kLnkFileRead) {
    m |= CtxBit(Ctx::kLinkTarget);
  }
  return m;
}

// Whether Packet::Resolve can ever produce a value for this operand at `op`
// (mirrors the per-op guards in packet.cc).
bool OperandAvailable(const core::Operand& v, sim::Op op) {
  if (!v.is_var) {
    return true;
  }
  switch (v.var) {
    case CtxVar::kIno:
    case CtxVar::kGen:
    case CtxVar::kDev:
    case CtxVar::kSid:
    case CtxVar::kDacOwner:
      return OpHasObject(op);
    case CtxVar::kTgtDacOwner:
    case CtxVar::kTgtSid:
      return op == sim::Op::kLnkFileRead;
    case CtxVar::kSig:
      return op == sim::Op::kSignalDeliver;
    case CtxVar::kPid:
    case CtxVar::kUid:
    case CtxVar::kEuid:
    case CtxVar::kSyscall:
      return true;
  }
  return true;
}

// --- rule summaries -----------------------------------------------------------

// Dense bitvector over the interned-label universe: the concrete expansion
// of one LabelSet (negation and SYSHIGH resolved against the MAC policy).
struct SidSet {
  std::vector<bool> bits;

  bool Any() const {
    return std::find(bits.begin(), bits.end(), true) != bits.end();
  }
  bool SupersetOf(const SidSet& o) const {
    for (size_t i = 0; i < bits.size(); ++i) {
      if (o.bits[i] && !bits[i]) {
        return false;
      }
    }
    return true;
  }
};

struct RuleInfo {
  const Rule* rule = nullptr;
  size_t pos0 = 0;
  SidSet subject;          // expansion of -s over all interned sids
  SidSet object;           // expansion of -d (all-true when wildcard)
  bool requires_object = false;
  std::optional<TargetKind> static_kind;
};

SidSet ExpandSubject(const core::LabelSet& ls, const sim::MacPolicy& policy,
                     size_t universe) {
  SidSet s;
  s.bits.resize(universe);
  for (size_t sid = 0; sid < universe; ++sid) {
    s.bits[sid] = ls.MatchesSubject(static_cast<sim::Sid>(sid), policy);
  }
  return s;
}

SidSet ExpandObject(const core::LabelSet& ls, const sim::MacPolicy& policy,
                    size_t universe) {
  SidSet s;
  s.bits.resize(universe);
  for (size_t sid = 0; sid < universe; ++sid) {
    s.bits[sid] = ls.MatchesObject(static_cast<sim::Sid>(sid), policy);
  }
  return s;
}

RuleInfo Summarize(const Rule& rule, size_t pos0, const sim::MacPolicy& policy,
                   size_t universe) {
  RuleInfo info;
  info.rule = &rule;
  info.pos0 = pos0;
  info.subject = ExpandSubject(rule.subject, policy, universe);
  info.object = ExpandObject(rule.object, policy, universe);
  info.requires_object = !rule.object.wildcard || rule.ino.has_value();
  if (rule.target != nullptr) {
    info.static_kind = rule.target->StaticKind();
  }
  return info;
}

bool IsTerminal(std::optional<TargetKind> k) {
  return k == TargetKind::kAccept || k == TargetKind::kDrop || k == TargetKind::kReturn;
}

// True when every packet rule `b` matches is also matched by rule `a`
// (match-space containment). Sound under the engine's traversal: the
// default-match comparisons mirror DefaultMatches field by field, and -m
// modules compare through MatchModule::Subsumes. Note the entrypoint index
// cannot reorder a subsuming pair past each other: `a` carrying a program or
// entrypoint constraint forces `b` to carry the same one, so the pair always
// lands in the same (plain or per-entrypoint) partition.
bool Subsumes(const RuleInfo& a, const RuleInfo& b) {
  const Rule& ra = *a.rule;
  const Rule& rb = *b.rule;
  if (ra.op && (!rb.op || *rb.op != *ra.op)) {
    return false;
  }
  if (!a.subject.SupersetOf(b.subject)) {
    return false;
  }
  if (a.requires_object) {
    if (!b.requires_object) {
      return false;  // b also matches object-less requests
    }
    if (ra.ino && (!rb.ino || *rb.ino != *ra.ino)) {
      return false;
    }
    if (!a.object.SupersetOf(b.object)) {
      return false;
    }
  }
  if (ra.has_program() &&
      (!rb.has_program() || !(rb.program_file == ra.program_file))) {
    return false;
  }
  if (ra.entrypoint && (!rb.entrypoint || *rb.entrypoint != *ra.entrypoint)) {
    return false;
  }
  for (const auto& ma : ra.matches) {
    bool covered = false;
    for (const auto& mb : rb.matches) {
      if (ma->Subsumes(*mb)) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return false;
    }
  }
  return true;
}

Severity DropAware(std::optional<TargetKind> kind) {
  return kind == TargetKind::kDrop ? Severity::kError : Severity::kWarning;
}

// Why `info.rule` can never match at `op`, or "" when it can. Mirrors the
// runtime behavior: DefaultMatches fails when a required object is absent,
// SIGNAL_MATCH pins the op, and STATE/COMPARE operands resolve per op.
std::string BlockReason(const RuleInfo& info, sim::Op op) {
  const Rule& rule = *info.rule;
  const std::string opname = std::string(sim::OpName(op));
  if (info.requires_object && !OpHasObject(op)) {
    return "-d/--ino require an object and -o " + opname + " carries none";
  }
  for (const auto& m : rule.matches) {
    CtxMask missing = m->Needs() & ~AvailableCtx(op);
    if (missing != 0) {
      return "-m " + std::string(m->Name()) + " needs " + CtxNames(missing) +
             " context, which -o " + opname + " never supplies";
    }
    if (dynamic_cast<const core::SignalMatch*>(m.get()) != nullptr &&
        op != sim::Op::kSignalDeliver) {
      return "-m SIGNAL_MATCH matches only -o PROCESS_SIGNAL_DELIVERY";
    }
    if (const auto* sm = dynamic_cast<const core::StateMatch*>(m.get());
        sm != nullptr && sm->cmp && !OperandAvailable(*sm->cmp, op)) {
      return "-m STATE --cmp " + sm->cmp->Render() + " never resolves at -o " + opname;
    }
    if (const auto* cm = dynamic_cast<const core::CompareMatch*>(m.get())) {
      for (const core::Operand* v : {&cm->v1, &cm->v2}) {
        if (!OperandAvailable(*v, op)) {
          return "-m COMPARE operand " + v->Render() + " never resolves at -o " +
                 opname;
        }
      }
    }
  }
  return "";
}

// --- analysis passes ----------------------------------------------------------

struct Analysis {
  const CompiledRuleset& rs;
  const sim::MacPolicy& policy;
  const AnalyzerOptions& opts;
  AnalysisReport* report;

  // Per-chain rule summaries, keyed like rs.compiled.
  std::map<const Chain*, std::vector<RuleInfo>> infos;
  // Chains reachable per op via the engine's root selection + JUMP edges.
  std::array<std::set<const Chain*>, sim::kOpCount> reach;
  // Chains reachable from any root, op-agnostic (for unreachable-chain).
  std::set<const Chain*> reach_any;
  // Minimum JUMP depth a chain is entered at (roots = 0).
  std::map<const Chain*, int> min_depth;
  bool has_cycle = false;

  void Run();

 private:
  const Chain* JumpTargetChain(const Rule& rule) const {
    const std::string& jump = rule.target != nullptr ? rule.target->jump_chain() : "";
    return jump.empty() ? nullptr : rs.rules.filter().Find(jump);
  }

  void BuildSummaries();
  void BuildReachability();
  void CheckShadowing();
  void CheckJumpGraph();
  void CheckRuleLiveness();
  void CheckStateProtocol();
  void CheckCacheability();
};

void Analysis::BuildSummaries() {
  const size_t universe = policy.labels().size();
  for (const auto& [name, chain] : rs.rules.filter().chains()) {
    std::vector<RuleInfo>& v = infos[&chain];
    v.reserve(chain.size());
    for (size_t i = 0; i < chain.size(); ++i) {
      v.push_back(Summarize(chain.rule_at(i), i, policy, universe));
    }
  }
}

void Analysis::BuildReachability() {
  // Mirror Engine::Authorize's root-chain selection per op, then close over
  // JUMP edges using the per-op dispatch buckets (a rule whose -o precheck
  // cannot pass is not in the bucket, so its jump does not extend reach).
  for (size_t opi = 0; opi < sim::kOpCount; ++opi) {
    const sim::Op op = static_cast<sim::Op>(opi);
    std::vector<const Chain*> roots;
    if (op == sim::Op::kSyscallBegin) {
      roots.push_back(rs.syscallbegin);
    } else {
      if (core::IsCreateOp(op)) {
        roots.push_back(rs.create);
      }
      if (core::IsOutputOp(op)) {
        roots.push_back(rs.output);
      }
      roots.push_back(rs.input);
    }
    std::deque<const Chain*> queue;
    for (const Chain* root : roots) {
      if (root != nullptr && reach[opi].insert(root).second) {
        queue.push_back(root);
      }
    }
    while (!queue.empty()) {
      const Chain* chain = queue.front();
      queue.pop_front();
      auto cc = rs.compiled.find(chain);
      if (cc == rs.compiled.end()) {
        continue;
      }
      for (const Rule* rule : cc->second.ops[opi].all) {
        const Chain* next = JumpTargetChain(*rule);
        if (next != nullptr && reach[opi].insert(next).second) {
          queue.push_back(next);
        }
      }
    }
  }

  // Op-agnostic reachability with entry depths (BFS = minimum JUMP depth).
  std::deque<const Chain*> queue;
  for (const Chain* root : {rs.input, rs.output, rs.create, rs.syscallbegin}) {
    if (root != nullptr && reach_any.insert(root).second) {
      min_depth[root] = 0;
      queue.push_back(root);
    }
  }
  while (!queue.empty()) {
    const Chain* chain = queue.front();
    queue.pop_front();
    for (const auto& rule : chain->rules()) {
      const Chain* next = JumpTargetChain(*rule);
      if (next != nullptr && reach_any.insert(next).second) {
        min_depth[next] = min_depth[chain] + 1;
        queue.push_back(next);
      }
    }
  }
}

void Analysis::CheckShadowing() {
  for (const auto& [name, chain] : rs.rules.filter().chains()) {
    const std::vector<RuleInfo>& v = infos[&chain];
    for (size_t j = 1; j < v.size(); ++j) {
      // Empty-expansion rules are reported by CheckRuleLiveness; a shadow
      // diagnostic on top of "matches nothing" would be noise.
      if (!v[j].subject.Any() || (v[j].requires_object && !v[j].object.Any())) {
        continue;
      }
      for (size_t i = 0; i < j; ++i) {
        if (!IsTerminal(v[i].static_kind)) {
          continue;  // non-terminal (or unknown) rules let traversal continue
        }
        if (!Subsumes(v[i], v[j])) {
          continue;
        }
        std::string kind =
            v[i].static_kind == TargetKind::kDrop     ? "DROP"
            : v[i].static_kind == TargetKind::kAccept ? "ACCEPT"
                                                      : "RETURN";
        report->Add(DropAware(v[j].static_kind), "shadowed-rule", Locus(name, j),
                    "rule can never fire: every packet it matches is consumed by the "
                    "earlier terminal " +
                        kind + " rule at position " + std::to_string(i + 1),
                    Locus(name, i));
        break;  // one shadow finding per rule
      }
    }
  }
}

void Analysis::CheckJumpGraph() {
  const Table& filter = rs.rules.filter();

  // Undefined targets + RETURN in a root chain.
  for (const auto& [name, chain] : filter.chains()) {
    for (size_t i = 0; i < chain.size(); ++i) {
      const Rule& rule = chain.rule_at(i);
      const std::string& jump =
          rule.target != nullptr ? rule.target->jump_chain() : std::string();
      if (!jump.empty() && filter.Find(jump) == nullptr) {
        report->Add(Severity::kError, "undefined-chain", Locus(name, i),
                    "JUMP to undefined chain '" + jump + "'");
      }
      if (chain.builtin() && rule.target != nullptr &&
          rule.target->StaticKind() == TargetKind::kReturn) {
        report->Add(Severity::kWarning, "return-from-root", Locus(name, i),
                    "RETURN in builtin chain '" + name +
                        "' skips the remaining rules of the chain and falls through "
                        "to the default policy");
      }
    }
  }

  // Cycle detection: iterative DFS over jump edges, every chain a start
  // node (cycles among unreachable chains still hang a future reload).
  enum class Color { kWhite, kGrey, kBlack };
  std::map<const Chain*, Color> color;
  for (const auto& [name, chain] : filter.chains()) {
    color[&chain] = Color::kWhite;
  }
  // Each stack frame: (chain, next rule index to expand).
  for (const auto& [name, chain] : filter.chains()) {
    if (color[&chain] != Color::kWhite) {
      continue;
    }
    std::vector<std::pair<const Chain*, size_t>> stack;
    stack.emplace_back(&chain, 0);
    color[&chain] = Color::kGrey;
    while (!stack.empty()) {
      auto& [cur, idx] = stack.back();
      if (idx >= cur->size()) {
        color[cur] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const size_t rule_idx = idx++;
      const Chain* next = JumpTargetChain(cur->rule_at(rule_idx));
      if (next == nullptr) {
        continue;
      }
      if (color[next] == Color::kGrey) {
        has_cycle = true;
        // Render the cycle: the segment of the DFS stack from `next` down
        // to the jumping rule.
        std::string path = next->name();
        bool in_cycle = false;
        for (const auto& frame : stack) {
          if (frame.first == next) {
            in_cycle = true;
            continue;
          }
          if (in_cycle) {
            path += " -> " + frame.first->name();
          }
        }
        path += " -> " + next->name();
        report->Add(Severity::kError, "jump-cycle", Locus(cur->name(), rule_idx),
                    "JUMP cycle: " + path);
      } else if (color[next] == Color::kWhite) {
        color[next] = Color::kGrey;
        stack.emplace_back(next, 0);
      }
    }
  }

  // Unreachable chains + the depth bound.
  for (const auto& [name, chain] : filter.chains()) {
    if (reach_any.count(&chain) == 0) {
      report->Add(Severity::kWarning, "unreachable-chain", ChainLocus(name),
                  "no JUMP from a builtin chain reaches this chain; its " +
                      std::to_string(chain.size()) + " rule(s) are never evaluated");
      continue;
    }
    auto depth = min_depth.find(&chain);
    if (depth != min_depth.end() && depth->second >= opts.max_depth) {
      report->Add(Severity::kError, "depth-exceeded", ChainLocus(name),
                  "chain is first entered at JUMP depth " +
                      std::to_string(depth->second) + " >= the traversal bound " +
                      std::to_string(opts.max_depth) + "; its rules never run");
    }
  }

  // On an acyclic jump graph, also flag chains whose *deepest* entry path
  // crosses the bound: some JUMP silently evaluates nothing.
  if (!has_cycle) {
    // Longest entry depth per chain: relax jump edges to a fixpoint (the
    // graph is acyclic here and tiny — chains count in the tens).
    std::map<const Chain*, int> max_depth_in;
    for (const Chain* root : {rs.input, rs.output, rs.create, rs.syscallbegin}) {
      if (root != nullptr) {
        max_depth_in[root] = 0;
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [name, chain] : filter.chains()) {
        auto from = max_depth_in.find(&chain);
        if (from == max_depth_in.end()) {
          continue;
        }
        for (const auto& rule : chain.rules()) {
          const Chain* next = JumpTargetChain(*rule);
          if (next == nullptr) {
            continue;
          }
          int d = from->second + 1;
          auto [it, inserted] = max_depth_in.try_emplace(next, d);
          if (!inserted && it->second < d) {
            it->second = d;
            changed = true;
          } else if (inserted) {
            changed = true;
          }
        }
      }
    }
    for (const auto& [name, chain] : filter.chains()) {
      auto deep = max_depth_in.find(&chain);
      auto shallow = min_depth.find(&chain);
      if (deep != max_depth_in.end() && shallow != min_depth.end() &&
          shallow->second < opts.max_depth && deep->second >= opts.max_depth) {
        report->Add(Severity::kWarning, "deep-jump", ChainLocus(name),
                    "some JUMP path enters this chain at depth " +
                        std::to_string(deep->second) + " >= the traversal bound " +
                        std::to_string(opts.max_depth) +
                        "; the chain is silently skipped on that path");
      }
    }
  }
}

void Analysis::CheckRuleLiveness() {
  for (const auto& [name, chain] : rs.rules.filter().chains()) {
    const bool chain_reachable = reach_any.count(&chain) != 0;
    const std::vector<RuleInfo>& v = infos[&chain];
    for (const RuleInfo& info : v) {
      const Rule& rule = *info.rule;

      // Empty label-set expansions are dead regardless of reachability.
      if (!info.subject.Any()) {
        report->Add(DropAware(info.static_kind), "empty-match", Locus(name, info.pos0),
                    "-s " + rule.subject.Render(policy.labels()) +
                        " expands to the empty label set under the current MAC "
                        "policy; the rule matches nothing");
        continue;
      }
      if (info.requires_object && !rule.object.wildcard && !info.object.Any()) {
        report->Add(DropAware(info.static_kind), "empty-match", Locus(name, info.pos0),
                    "-d " + rule.object.Render(policy.labels()) +
                        " expands to the empty label set under the current MAC "
                        "policy; the rule matches nothing");
        continue;
      }

      if (!chain_reachable) {
        continue;  // covered by the chain-level unreachable-chain finding
      }

      // Ops that both reach this chain and pass the rule's -o precheck.
      std::vector<sim::Op> rops;
      for (size_t opi = 0; opi < sim::kOpCount; ++opi) {
        const sim::Op op = static_cast<sim::Op>(opi);
        if (rule.op && *rule.op != op) {
          continue;
        }
        if (reach[opi].count(&chain) != 0) {
          rops.push_back(op);
        }
      }
      if (rops.empty()) {
        std::string why =
            rule.op ? "chain '" + name + "' is never traversed for -o " +
                          std::string(sim::OpName(*rule.op))
                    : "no mediated operation traverses chain '" + name + "'";
        report->Add(DropAware(info.static_kind), "unreachable-rule",
                    Locus(name, info.pos0), "rule is never evaluated: " + why);
        continue;
      }

      // Context satisfiability: some reaching op must be able to supply
      // everything the rule's matches read.
      std::vector<sim::Op> live;
      std::string first_reason;
      for (sim::Op op : rops) {
        std::string reason = BlockReason(info, op);
        if (reason.empty()) {
          live.push_back(op);
        } else if (first_reason.empty()) {
          first_reason = std::move(reason);
        }
      }
      if (live.empty()) {
        report->Add(DropAware(info.static_kind), "context-unavailable",
                    Locus(name, info.pos0),
                    "rule can never match: on every operation that reaches it, " +
                        first_reason);
        continue;
      }

      // Target-side context: a STATE --set whose value never resolves fires
      // but stores nothing.
      const auto* st = dynamic_cast<const core::StateTarget*>(rule.target.get());
      if (st != nullptr && !st->unset && st->value.is_var) {
        bool resolvable = false;
        for (sim::Op op : live) {
          if (OperandAvailable(st->value, op)) {
            resolvable = true;
            break;
          }
        }
        if (!resolvable) {
          report->Add(Severity::kWarning, "target-context-unavailable",
                      Locus(name, info.pos0),
                      "STATE --set value " + st->value.Render() +
                          " never resolves on any operation that reaches this rule; "
                          "the target fires but stores nothing");
        }
      }
    }
  }
}

void Analysis::CheckStateProtocol() {
  struct KeyUse {
    std::vector<std::pair<RuleLocus, const RuleInfo*>> checks;
    std::vector<RuleLocus> sets;
    std::vector<RuleLocus> unsets;
  };
  std::map<std::string, KeyUse> keys;

  for (const auto& [name, chain] : rs.rules.filter().chains()) {
    const std::vector<RuleInfo>& v = infos[&chain];
    for (const RuleInfo& info : v) {
      const Rule& rule = *info.rule;
      for (const auto& m : rule.matches) {
        if (const auto* sm = dynamic_cast<const core::StateMatch*>(m.get())) {
          keys[sm->key].checks.emplace_back(Locus(name, info.pos0), &info);
        }
      }
      if (const auto* st = dynamic_cast<const core::StateTarget*>(rule.target.get())) {
        if (st->unset) {
          keys[st->key].unsets.push_back(Locus(name, info.pos0));
        } else {
          keys[st->key].sets.push_back(Locus(name, info.pos0));
        }
      }
    }
  }

  for (const auto& [key, use] : keys) {
    if (use.sets.empty()) {
      // An absent key never matches a STATE check (even --nequal), so every
      // check of a never-set key deadens its rule.
      for (const auto& [locus, info] : use.checks) {
        report->Add(DropAware(info->static_kind), "state-never-set", locus,
                    "STATE --key " + key +
                        " is checked here but no rule ever sets it; the match can "
                        "never succeed");
      }
      for (const RuleLocus& locus : use.unsets) {
        report->Add(Severity::kInfo, "state-unset-never-set", locus,
                    "STATE --unset of key " + key + " which no rule ever sets");
      }
    }
    if (use.checks.empty() && !use.sets.empty()) {
      for (const RuleLocus& locus : use.sets) {
        report->Add(Severity::kWarning, "state-never-checked", locus,
                    "STATE --set of key " + key +
                        " is never checked by any STATE match; the stored state "
                        "protects nothing");
      }
    }
  }
}

void Analysis::CheckCacheability() {
  for (const auto& [name, chain] : rs.rules.filter().chains()) {
    for (size_t i = 0; i < chain.size(); ++i) {
      const Rule& rule = chain.rule_at(i);
      for (const auto& m : rule.matches) {
        CtxMask bad = m->CacheableByKey() ? (m->Needs() & kNonKeyedCtx) : 0;
        if (bad != 0) {
          report->Add(Severity::kError, "false-cacheable", Locus(name, i),
                      "-m " + std::string(m->Name()) +
                          " claims CacheableByKey() but reads " + CtxNames(bad) +
                          ", which the verdict-cache key does not cover; cached "
                          "verdicts would go stale");
        }
      }
      if (rule.target != nullptr) {
        CtxMask bad =
            rule.target->CacheableByKey() ? (rule.target->Needs() & kNonKeyedCtx) : 0;
        if (bad != 0) {
          report->Add(Severity::kError, "false-cacheable", Locus(name, i),
                      "-j " + std::string(rule.target->Name()) +
                          " claims CacheableByKey() but reads " + CtxNames(bad) +
                          ", which the verdict-cache key does not cover; cached "
                          "verdicts would go stale");
        }
      }
    }
  }
}

void Analysis::Run() {
  BuildSummaries();
  BuildReachability();
  if (opts.jump_graph) {
    CheckJumpGraph();
  }
  if (opts.shadowing) {
    CheckShadowing();
    CheckRuleLiveness();
  }
  if (opts.state_protocol) {
    CheckStateProtocol();
  }
  if (opts.cacheability) {
    CheckCacheability();
  }
}

}  // namespace

AnalysisReport AnalyzeRuleset(const core::CompiledRuleset& rs,
                              const sim::MacPolicy& policy,
                              const AnalyzerOptions& opts) {
  AnalysisReport report;
  Analysis analysis{rs, policy, opts, &report};
  analysis.Run();
  report.Sort();
  return report;
}

AnalysisReport AnalyzeEngine(core::Engine& engine, const AnalyzerOptions& opts) {
  return AnalyzeRuleset(*engine.CompileRuleset(), engine.policy(), opts);
}

}  // namespace pf::analysis
