// Diagnostics framework for the rule-base static analyzer.
//
// A Diagnostic pins one finding to a rule locus (`table/chain:pos`, 1-based
// like pftables -L / -D numbering) or to a whole chain (`table/chain`), with
// a severity, a stable machine-readable code, and a human message. An
// AnalysisReport collects the findings of one analyzer run and renders them
// as text (for pfcheck and pftables -L) or JSON (for pfcheck --json and the
// bench harness).
//
// This header is standalone on purpose: pftables.h embeds an AnalysisReport
// (the result of the last --check run) without pulling in the analyzer.
#ifndef SRC_ANALYSIS_DIAGNOSTICS_H_
#define SRC_ANALYSIS_DIAGNOSTICS_H_

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace pf::analysis {

enum class Severity {
  kInfo,     // stylistic / informational
  kWarning,  // likely-unintended but cannot void an invariant by itself
  kError,    // the rule base does not do what it says (dead deny, bad JUMP,
             // unsound cache claim); --check=error refuses to commit these
};

inline const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

// Where a finding lives: a rule (`filter/input:3`) or, when pos == 0, a
// whole chain (`filter/weird_chain`). Positions are 1-based to match the
// numbering pftables -L prints and -I/-D consume.
struct RuleLocus {
  std::string table = "filter";
  std::string chain;
  size_t pos = 0;  // 1-based rule position; 0 = the chain itself

  std::string Render() const {
    std::string out = table + "/" + chain;
    if (pos != 0) {
      out += ":" + std::to_string(pos);
    }
    return out;
  }

  bool operator==(const RuleLocus&) const = default;
};

struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string code;  // stable kebab-case id, e.g. "shadowed-rule"
  RuleLocus locus;
  std::string message;
  // Optional second locus (the shadowing rule, the jump source, ...);
  // empty chain = none.
  RuleLocus related;

  bool operator==(const Diagnostic&) const = default;
};

class AnalysisReport {
 public:
  void Add(Diagnostic d) { diags_.push_back(std::move(d)); }
  void Add(Severity sev, std::string code, RuleLocus locus, std::string message,
           RuleLocus related = {}) {
    diags_.push_back(Diagnostic{sev, std::move(code), std::move(locus),
                                std::move(message), std::move(related)});
  }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  size_t size() const { return diags_.size(); }

  size_t Count(Severity sev) const {
    return static_cast<size_t>(
        std::count_if(diags_.begin(), diags_.end(),
                      [sev](const Diagnostic& d) { return d.severity == sev; }));
  }
  size_t errors() const { return Count(Severity::kError); }
  size_t warnings() const { return Count(Severity::kWarning); }
  bool HasErrors() const { return errors() != 0; }

  // Orders findings by locus for stable output, severest first within a
  // locus. Rendering does not sort implicitly; callers that want determinism
  // across analyzer-pass ordering call this once.
  void Sort() {
    std::stable_sort(diags_.begin(), diags_.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       if (a.locus.chain != b.locus.chain) {
                         return a.locus.chain < b.locus.chain;
                       }
                       if (a.locus.pos != b.locus.pos) {
                         return a.locus.pos < b.locus.pos;
                       }
                       return static_cast<int>(a.severity) > static_cast<int>(b.severity);
                     });
  }

  // One finding per line:
  //   error[shadowed-rule] filter/input:3: ... (see filter/input:1)
  std::string RenderText() const {
    std::ostringstream oss;
    for (const Diagnostic& d : diags_) {
      oss << SeverityName(d.severity) << "[" << d.code << "] " << d.locus.Render()
          << ": " << d.message;
      if (!d.related.chain.empty()) {
        oss << " (see " << d.related.Render() << ")";
      }
      oss << "\n";
    }
    return oss.str();
  }

  // JSON array of diagnostic objects (stable field order, no trailing
  // whitespace) — the machine half of the pfcheck output.
  std::string RenderJson() const {
    std::ostringstream oss;
    oss << "[";
    for (size_t i = 0; i < diags_.size(); ++i) {
      const Diagnostic& d = diags_[i];
      if (i != 0) {
        oss << ",";
      }
      oss << "{\"severity\":\"" << SeverityName(d.severity) << "\",\"code\":\""
          << JsonEscape(d.code) << "\",\"locus\":\"" << JsonEscape(d.locus.Render())
          << "\"";
      if (!d.related.chain.empty()) {
        oss << ",\"related\":\"" << JsonEscape(d.related.Render()) << "\"";
      }
      oss << ",\"message\":\"" << JsonEscape(d.message) << "\"}";
    }
    oss << "]";
    return oss.str();
  }

 private:
  static std::string JsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  std::vector<Diagnostic> diags_;
};

}  // namespace pf::analysis

#endif  // SRC_ANALYSIS_DIAGNOSTICS_H_
