// Symbolic decision-space model of a compiled Process Firewall rule base.
//
// BuildModel runs the engine's own traversal — root-chain selection, per-op
// dispatch buckets, the plain-then-entrypoint-indexed order, JUMP edges, the
// depth bound, chain policies — over *regions* of the finite atom universe
// (universe.h) instead of single packets. The result is, per operation, a
// partition of the full decision space into disjoint regions, each mapped to
// the verdict the engine would return for every concrete request in it plus
// the ordered side effects (STATE writes, LOG records) it would perform.
//
// Exactness: with only builtin match modules, literal STATE operands, and
// statically-kinded targets, region membership predicts the engine verdict
// exactly (the differential fuzz test enforces this tuple by tuple).
// Extension modules without Symbolize() become uninterpreted boolean
// dimensions — the partition stays sound (every concrete request still lands
// in exactly one region with the right verdict once the predicate's truth is
// known) and rule firing stays over-approximated, so dead-rule findings
// ("this rule can never fire") are never false positives.
#ifndef SRC_ANALYSIS_SYMBOLIC_MODEL_H_
#define SRC_ANALYSIS_SYMBOLIC_MODEL_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/symbolic/region.h"
#include "src/analysis/symbolic/universe.h"
#include "src/core/engine.h"

namespace pf::analysis::symbolic {

enum class OutcomeKind {
  kAllow,
  kDrop,
  // A custom target without StaticKind() decides here: the engine's verdict
  // is not statically known. Regions stop at the first such target.
  kIndeterminate,
};

std::string_view OutcomeName(OutcomeKind k);

// One cell of the per-op partition.
struct DecisionRegion {
  Region region;
  OutcomeKind outcome = OutcomeKind::kAllow;
  // Side effects fired on the way (rendered targets, traversal order).
  std::vector<std::string> effects;
  // What decided: "chain:pos" of the terminal rule, "policy:chain" for a
  // builtin DROP policy, "default" for the engine's default allow, or
  // "no-applicable-chain" for ops no chain covers.
  std::string decided_by;
};

// Which inputs can ever enter a chain (pfquery's reachability queries).
struct ChainReach {
  bool entered = false;
  uint64_t ops = 0;      // bit i: entered while deciding op i
  DimSet ept{{}, false};      // union of entrypoint atoms across entries
  DimSet subjects{{}, false}; // union of subject atoms across entries
};

struct RuleLocusInfo {
  std::string chain;
  size_t pos = 0;  // 1-based, like pftables -L and the pairwise analyzer
  const core::Rule* rule = nullptr;
};

struct ModelOptions {
  // Mirror of EngineConfig::ept_chains: traverse indexed chains in
  // plain-then-indexed order. Verdict-neutral in the engine only when rule
  // bases follow the deny-then-default-allow discipline, so the model
  // replicates the configured order instead of assuming neutrality.
  bool ept_chains = true;
};

struct SymbolicModel {
  std::shared_ptr<const Universe> universe;
  std::array<std::vector<DecisionRegion>, sim::kOpCount> by_op;

  // Every filter-table rule, and the subset the model proves can fire.
  std::vector<RuleLocusInfo> loci;
  std::set<const core::Rule*> fired;
  // Rules no region of any op fires: exact dead rules (empty unless the
  // model stayed determinate — see indeterminate below).
  std::vector<RuleLocusInfo> dead;

  std::map<std::string, ChainReach> reach;

  // True when some reachable target had no StaticKind(): outcomes past it
  // are unknown and dead-rule reporting is suppressed (a dynamic target
  // could continue into later rules).
  bool indeterminate = false;
  // False when STATE --set used variable operands (slot predicates became
  // uninterpreted): verdicts stay sound but witnesses lose slot precision.
  bool exact_state = true;

  size_t region_count = 0;
  size_t max_op_regions = 0;
  uint64_t build_us = 0;

  // The partition cell containing a full atom assignment (exactly one by
  // construction; nullptr only if the assignment is out of range).
  const DecisionRegion* Find(sim::Op op,
                             const std::vector<uint32_t>& assignment) const;
};

// Builds the model of `rs` against `policy`. Pass a shared `universe` (built
// jointly over several rule bases) to make models comparable region-by-region;
// by default the rule base gets its own universe.
SymbolicModel BuildModel(const core::CompiledRuleset& rs,
                         const sim::MacPolicy& policy,
                         std::shared_ptr<const Universe> universe = nullptr,
                         const ModelOptions& opts = {});

}  // namespace pf::analysis::symbolic

#endif  // SRC_ANALYSIS_SYMBOLIC_MODEL_H_
