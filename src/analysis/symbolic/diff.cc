#include "src/analysis/symbolic/diff.h"

#include <chrono>
#include <sstream>
#include <unordered_map>

namespace pf::analysis::symbolic {
namespace {

bool IntersectRegions(const Region& a, const Region& b,
                      const std::vector<uint32_t>& alphabets, Region* out) {
  out->dims.resize(a.dims.size());
  for (size_t d = 0; d < a.dims.size(); ++d) {
    out->dims[d] = DimSet::Intersect(a.dims[d], b.dims[d]);
    if (out->dims[d].Empty(alphabets[d])) {
      return false;
    }
  }
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendEffects(std::ostringstream& oss, const std::vector<std::string>& v) {
  oss << "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) {
      oss << ",";
    }
    oss << "\"" << JsonEscape(v[i]) << "\"";
  }
  oss << "]";
}

}  // namespace

DiffResult DiffRulesets(const core::CompiledRuleset& oldrs,
                        const core::CompiledRuleset& newrs,
                        const sim::MacPolicy& policy, const ModelOptions& opts) {
  const auto start = std::chrono::steady_clock::now();
  DiffResult result;
  result.universe = BuildUniverse({&oldrs, &newrs}, policy);
  const SymbolicModel a = BuildModel(oldrs, policy, result.universe, opts);
  const SymbolicModel b = BuildModel(newrs, policy, result.universe, opts);
  result.exact = !a.indeterminate && !b.indeterminate && a.exact_state &&
                 b.exact_state;
  const std::vector<uint32_t>& alphabets = result.universe->alphabets();

  for (size_t op = 0; op < sim::kOpCount; ++op) {
    const std::vector<DecisionRegion>& regions_a = a.by_op[op];
    const std::vector<DecisionRegion>& regions_b = b.by_op[op];
    // Regions pinned to entrypoint atoms dominate at scale; bucket B's
    // positive-ept regions by atom so each A region only meets the B regions
    // its own entrypoint set can overlap.
    std::unordered_map<uint32_t, std::vector<size_t>> by_ept;
    std::vector<size_t> wide;
    for (size_t i = 0; i < regions_b.size(); ++i) {
      const DimSet& ept = regions_b[i].region.dims[kDimEpt];
      if (ept.complement || ept.atoms.size() > 8) {
        wide.push_back(i);
      } else {
        for (const uint32_t atom : ept.atoms) {
          by_ept[atom].push_back(i);
        }
      }
    }
    std::vector<uint32_t> seen(regions_b.size(), 0);
    uint32_t pass = 0;
    std::vector<size_t> candidates;
    for (const DecisionRegion& ra : regions_a) {
      ++pass;
      candidates.clear();
      const DimSet& ept_a = ra.region.dims[kDimEpt];
      if (ept_a.complement) {
        candidates.resize(regions_b.size());
        for (size_t i = 0; i < regions_b.size(); ++i) {
          candidates[i] = i;
        }
      } else {
        for (const size_t i : wide) {
          if (seen[i] != pass) {
            seen[i] = pass;
            candidates.push_back(i);
          }
        }
        for (const uint32_t atom : ept_a.atoms) {
          const auto it = by_ept.find(atom);
          if (it == by_ept.end()) {
            continue;
          }
          for (const size_t i : it->second) {
            if (seen[i] != pass) {
              seen[i] = pass;
              candidates.push_back(i);
            }
          }
        }
      }
      for (const size_t i : candidates) {
        const DecisionRegion& rb = regions_b[i];
        if (ra.outcome == rb.outcome && ra.effects == rb.effects) {
          continue;
        }
        Region inter(0);
        if (!IntersectRegions(ra.region, rb.region, alphabets, &inter)) {
          continue;
        }
        DiffRegion d;
        d.op = static_cast<sim::Op>(op);
        d.from = ra.outcome;
        d.to = rb.outcome;
        d.effects_changed = ra.effects != rb.effects;
        d.from_effects = ra.effects;
        d.to_effects = rb.effects;
        d.from_decided_by = ra.decided_by;
        d.to_decided_by = rb.decided_by;
        d.witness = result.universe->Witness(inter);
        d.widening = ra.outcome != rb.outcome &&
                     (ra.outcome == OutcomeKind::kDrop ||
                      ra.outcome == OutcomeKind::kIndeterminate) &&
                     (rb.outcome == OutcomeKind::kAllow ||
                      rb.outcome == OutcomeKind::kIndeterminate);
        result.any_widening = result.any_widening || d.widening;
        d.region = std::move(inter);
        result.regions.push_back(std::move(d));
      }
    }
  }
  result.analysis_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return result;
}

std::string RenderDiffText(const DiffResult& diff, size_t max_regions) {
  std::ostringstream oss;
  size_t verdict_changes = 0;
  for (const DiffRegion& d : diff.regions) {
    if (d.from != d.to) {
      ++verdict_changes;
    }
  }
  oss << "pfdiff: " << diff.regions.size() << " changed region"
      << (diff.regions.size() == 1 ? "" : "s") << " (" << verdict_changes
      << " verdict-changing" << (diff.any_widening ? ", WIDENING" : "") << ")";
  if (!diff.exact) {
    oss << " [approximate: indeterminate targets or variable STATE values]";
  }
  oss << "\n";
  // Verdict flips first; effect-only changes after.
  size_t shown = 0;
  for (const bool verdict_pass : {true, false}) {
    for (const DiffRegion& d : diff.regions) {
      if ((d.from != d.to) != verdict_pass) {
        continue;
      }
      if (max_regions != 0 && shown >= max_regions) {
        oss << "  ... " << (diff.regions.size() - shown) << " more\n";
        return oss.str();
      }
      ++shown;
      oss << "  " << sim::OpName(d.op) << ": " << OutcomeName(d.from) << " -> "
          << OutcomeName(d.to);
      if (d.widening) {
        oss << " [widening]";
      }
      if (d.effects_changed && d.from == d.to) {
        oss << " (effects changed)";
      }
      oss << "\n    was: " << d.from_decided_by
          << "  now: " << d.to_decided_by << "\n    e.g. " << d.witness << "\n";
    }
  }
  return oss.str();
}

std::string RenderDiffJson(const DiffResult& diff) {
  std::ostringstream oss;
  size_t verdict_changes = 0;
  for (const DiffRegion& d : diff.regions) {
    if (d.from != d.to) {
      ++verdict_changes;
    }
  }
  // `schema` versions the machine-readable surface: consumers gate on it
  // before parsing, and any field rename/removal bumps it (additions do not).
  oss << "{\"pfdiff\": {\"schema\": 1, \"changed_regions\": " << diff.regions.size()
      << ", \"verdict_changing\": " << verdict_changes
      << ", \"widening\": " << (diff.any_widening ? "true" : "false")
      << ", \"exact\": " << (diff.exact ? "true" : "false")
      << ", \"analysis_us\": " << diff.analysis_us << ", \"regions\": [";
  for (size_t i = 0; i < diff.regions.size(); ++i) {
    const DiffRegion& d = diff.regions[i];
    if (i > 0) {
      oss << ",";
    }
    oss << "\n  {\"op\": \"" << sim::OpName(d.op) << "\", \"from\": \""
        << OutcomeName(d.from) << "\", \"to\": \"" << OutcomeName(d.to)
        << "\", \"widening\": " << (d.widening ? "true" : "false")
        << ", \"from_decided_by\": \"" << JsonEscape(d.from_decided_by)
        << "\", \"to_decided_by\": \"" << JsonEscape(d.to_decided_by)
        << "\", \"witness\": \"" << JsonEscape(d.witness)
        << "\", \"region\": \""
        << JsonEscape(diff.universe->Describe(d.region))
        << "\", \"from_effects\": ";
    AppendEffects(oss, d.from_effects);
    oss << ", \"to_effects\": ";
    AppendEffects(oss, d.to_effects);
    oss << "}";
  }
  oss << "\n]}}\n";
  return oss.str();
}

}  // namespace pf::analysis::symbolic
