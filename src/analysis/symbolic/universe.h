// The finite atom universe of the symbolic decision-space model.
//
// Every input Engine::Authorize can read is mapped onto a finite alphabet of
// atoms per dimension, derived from the constants the rule base(s) mention:
// two concrete decision tuples that fall into the same atom on every
// dimension are indistinguishable to every rule, so a partition over atoms
// is a partition over the full concrete space. Dimensions:
//
//   subject   one atom per interned MAC label (exact: task sids are interned)
//   object    one atom per interned MAC label
//   ept       entrypoint classes: one atom per mentioned (program, offset)
//             pair, one "other offset" atom per mentioned program, the
//             mentioned program-less offsets under an "other program" class,
//             one "any other program" atom, and one "invalid stack" atom
//   ino       mentioned --ino values plus "any other inode number"
//   interp    innermost interpreter frame: "no frame" plus, per language,
//             one atom per maximal mentioned script-suffix class plus "no
//             mentioned suffix matches"
//   arg0..4   mentioned SYSCALL_ARGS values per arg index plus "other" (the
//             canonical interval form: each atom is a point or the residual
//             interval between mentioned points)
//   STATE[k]  initial dictionary value per mentioned key: "absent",
//             mentioned literals, "any other value"
//   opaque    one boolean dimension per uninterpreted predicate (COMPARE on
//             variables, SIGNAL_MATCH's handler test, native extension
//             matches), keyed by Name()+Render()
//
// A universe built jointly over two rule bases (BuildUniverse with both)
// makes their models directly comparable region-by-region — pfdiff's
// alignment step.
#ifndef SRC_ANALYSIS_SYMBOLIC_UNIVERSE_H_
#define SRC_ANALYSIS_SYMBOLIC_UNIVERSE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/symbolic/region.h"
#include "src/core/engine.h"
#include "src/sim/mac_policy.h"

namespace pf::analysis::symbolic {

// Fixed dimension indices; state and opaque dimensions follow.
inline constexpr uint32_t kDimSubject = 0;
inline constexpr uint32_t kDimObject = 1;
inline constexpr uint32_t kDimEpt = 2;
inline constexpr uint32_t kDimIno = 3;
inline constexpr uint32_t kDimInterp = 4;
inline constexpr uint32_t kDimArgBase = 5;  // args 0..4 -> dims 5..9
inline constexpr uint32_t kDimFixedCount = 10;
inline constexpr int kNumArgDims = 5;
inline constexpr int kNumInterpLangs = 3;  // php, python, bash

class Universe {
 public:
  struct EptProg {
    sim::FileId file;
    std::string path;                // as written in the first mentioning rule
    std::vector<uint64_t> offsets;   // sorted: mentioned with this program,
                                     // plus all program-less offsets
    uint32_t atom_base = 0;          // atoms [base, base+offsets.size()]:
                                     // per-offset atoms then "other offset"
  };

  struct StateDim {
    std::string key;
    std::vector<int64_t> values;  // sorted mentioned literals
    // atoms: 0 = absent, 1+i = values[i], last = any other value
  };

  const sim::MacPolicy* policy = nullptr;
  uint32_t n_sids = 0;
  std::vector<std::string> sid_names;

  std::vector<EptProg> progs;
  std::vector<uint64_t> global_offsets;  // sorted; from program-less -i rules
  uint32_t ept_other_base = 0;  // pseudo-program "any other program"
  uint32_t ept_invalid = 0;     // unusable/absent stack
  uint32_t ept_atom_count = 0;

  std::vector<uint64_t> inos;                        // sorted
  std::array<std::vector<int64_t>, kNumArgDims> args;  // sorted per index
  std::vector<std::string> interp_suffixes;          // sorted, unique
  std::vector<StateDim> state_dims;
  std::vector<std::string> opaque_ids;

  // True when every STATE --set value in the source rule bases is a literal;
  // variable-valued sets make checked slots uninterpreted dimensions (the
  // partition stays sound but loses slot-value precision).
  bool exact_state = true;

  uint32_t dim_count() const {
    return kDimFixedCount + static_cast<uint32_t>(state_dims.size()) +
           static_cast<uint32_t>(opaque_ids.size());
  }
  uint32_t StateDimIndex(size_t i) const {
    return kDimFixedCount + static_cast<uint32_t>(i);
  }
  uint32_t OpaqueDimIndex(size_t i) const {
    return kDimFixedCount + static_cast<uint32_t>(state_dims.size()) +
           static_cast<uint32_t>(i);
  }
  // Alphabet size per dimension, indexable by any dim id.
  const std::vector<uint32_t>& alphabets() const { return alphabets_; }
  uint32_t interp_atom_count() const {
    return 1 + kNumInterpLangs *
                   (static_cast<uint32_t>(interp_suffixes.size()) + 1);
  }

  // --- atom lookup (concrete value -> atom) ---
  uint32_t AtomForSid(sim::Sid sid) const { return sid; }
  uint32_t AtomForEpt(bool valid, sim::FileId image, uint64_t offset) const;
  uint32_t AtomForIno(uint64_t ino) const;
  uint32_t AtomForArg(int arg, int64_t value) const;
  // lang == kNone means no interpreter frame.
  uint32_t AtomForInterp(sim::InterpLang lang, const std::string& script) const;
  // nullopt = key absent from the dictionary.
  uint32_t AtomForState(size_t state_dim, std::optional<int64_t> value) const;

  std::optional<uint32_t> FindStateDim(const std::string& key) const;
  std::optional<uint32_t> FindOpaqueDim(const std::string& id) const;
  // Opaque dimension standing in for a STATE check on a slot whose value was
  // set from a variable operand (keyed per check-module instance). Empty
  // unless the source base writes that key from a variable.
  std::optional<uint32_t> UnknownSlotDim(const void* match_module) const;

  // --- membership (constraint -> atom set) ---
  // Entrypoint atoms matched by a rule's -p/-i operands (invalid excluded).
  DimSet EptMembers(bool has_program, sim::FileId file,
                    std::optional<uint64_t> offset) const;
  // Atoms of the interp dimension matched by INTERP --script/--lang.
  DimSet InterpMembers(const std::string& suffix,
                       std::optional<sim::InterpLang> lang) const;
  // Label-set expansion (exactly LabelSet::MatchesSubject/MatchesObject over
  // every interned sid).
  DimSet ExpandSubject(const core::LabelSet& set) const;
  DimSet ExpandObject(const core::LabelSet& set) const;

  // --- rendering (atom -> human-readable witness value) ---
  std::string RenderAtom(uint32_t dim, uint32_t atom) const;
  std::string DimName(uint32_t dim) const;
  // One concrete representative tuple of the region, e.g.
  // "subject=httpd_t entrypoint=/usr/sbin/httpd+0x832 object=shadow_t".
  std::string Witness(const Region& r) const;
  // The region itself: every constrained dimension's atom set.
  std::string Describe(const Region& r) const;

 private:
  friend std::shared_ptr<const Universe> BuildUniverse(
      const std::vector<const core::CompiledRuleset*>& rulesets,
      const sim::MacPolicy& policy);

  void Seal();  // sorts pools, assigns atom bases, fills alphabets_

  std::vector<uint32_t> alphabets_;
  std::unordered_map<uint64_t, uint32_t> prog_index_;  // FileId -> progs idx
  std::unordered_map<std::string, uint32_t> state_index_;
  std::unordered_map<std::string, uint32_t> opaque_index_;
  std::unordered_map<const void*, uint32_t> unknown_slot_dims_;

  static uint64_t FileKey(sim::FileId id) {
    return (static_cast<uint64_t>(id.dev) << 48) ^ id.ino;
  }
};

// Builds the joint universe of one or more compiled rule bases (filter
// table: the chains Engine::Authorize traverses) against the MAC policy.
std::shared_ptr<const Universe> BuildUniverse(
    const std::vector<const core::CompiledRuleset*>& rulesets,
    const sim::MacPolicy& policy);

}  // namespace pf::analysis::symbolic

#endif  // SRC_ANALYSIS_SYMBOLIC_UNIVERSE_H_
