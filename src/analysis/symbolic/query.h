// Policy queries over the symbolic decision space (pfquery).
//
// A query is a partial concretization — "subject=httpd_t op=FILE_OPEN
// object=shadow_t" — answered by intersecting the constraint with the
// model's partition: every overlapping region is a class of requests the
// query describes, with its verdict and a concrete witness. Reachability
// queries ("which entrypoints can reach chain C?") read the model's
// chain-entry tracking instead.
#ifndef SRC_ANALYSIS_SYMBOLIC_QUERY_H_
#define SRC_ANALYSIS_SYMBOLIC_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/analysis/symbolic/model.h"

namespace pf::analysis::symbolic {

struct QuerySpec {
  std::optional<sim::Op> op;            // default: every op
  std::optional<std::string> subject;   // label name
  std::optional<std::string> object;    // label name
  std::optional<std::string> program;   // path as written in the rules
  std::optional<uint64_t> entrypoint;   // binary-relative offset
  std::optional<uint64_t> ino;
  std::optional<OutcomeKind> want;      // only regions with this verdict
};

struct QueryMatch {
  sim::Op op = sim::Op::kFileOpen;
  OutcomeKind outcome = OutcomeKind::kAllow;
  std::string decided_by;
  std::vector<std::string> effects;
  std::string witness;
};

struct QueryResult {
  bool ok = false;
  std::string error;  // unknown label / program when !ok
  std::vector<QueryMatch> matches;
};

// Regions of `model` overlapping the spec (verdict-filtered by `want`).
QueryResult RunQuery(const SymbolicModel& model, const QuerySpec& spec);

// Reachability of one chain: the ops and entrypoint/subject classes that can
// enter it. `found` is false when the model never saw the chain.
struct ReachResult {
  bool found = false;
  bool entered = false;
  std::vector<std::string> ops;
  std::vector<std::string> entrypoints;  // rendered atom classes (capped)
  std::vector<std::string> subjects;
};
ReachResult ChainReachability(const SymbolicModel& model,
                              const std::string& chain, size_t max_atoms = 16);

}  // namespace pf::analysis::symbolic

#endif  // SRC_ANALYSIS_SYMBOLIC_QUERY_H_
