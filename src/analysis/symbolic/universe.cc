#include "src/analysis/symbolic/universe.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/core/modules.h"
#include "src/core/symbolize.h"

namespace pf::analysis::symbolic {
namespace {

using core::Chain;
using core::CompiledRuleset;
using core::MatchModule;
using core::Rule;
using core::StateTarget;

void SortUnique(std::vector<uint64_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

void SortUnique(std::vector<int64_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string LangName(int lang) {
  switch (lang) {
    case 1:
      return "php";
    case 2:
      return "python";
    case 3:
      return "bash";
    default:
      return "?";
  }
}

// Accumulates the constants one rule base mentions. Raw pools; Seal() turns
// them into the canonical sorted/deduplicated universe.
struct Pools {
  std::set<std::string> opaque;
  std::vector<std::string> opaque_order;
  std::map<std::string, std::set<int64_t>> state_values;
  std::vector<std::string> state_order;
  std::set<std::string> var_set_keys;  // STATE --set from a variable operand
  // Every STATE check module with its key, for the unknown-slot second pass.
  std::vector<std::pair<const void*, std::string>> state_checks;
};

class Collector : public core::SymbolicSink {
 public:
  Collector(Universe& u, Pools& pools) : u_(u), pools_(pools) {}

  void Visit(const MatchModule& m) {
    current_ = &m;
    if (!m.Symbolize(*this)) {
      AddOpaque(std::string(m.Name()) + "|" + m.Render());
    }
    current_ = nullptr;
  }

  void StateCheck(const std::string& key, std::optional<int64_t> cmp,
                  bool /*negate*/) override {
    if (!pools_.state_values.count(key)) {
      pools_.state_order.push_back(key);
    }
    auto& values = pools_.state_values[key];
    if (cmp) {
      values.insert(*cmp);
    }
    pools_.state_checks.emplace_back(current_, key);
  }

  void SyscallArg(int arg, int64_t value, bool /*negate*/) override {
    if (arg < 0 || arg >= kNumArgDims) {
      AddOpaque(current_ != nullptr
                    ? std::string(current_->Name()) + "|" + current_->Render()
                    : "SYSCALL_ARGS|?");
      return;
    }
    u_.args[arg].push_back(value);
  }

  void Interp(const std::string& suffix,
              std::optional<sim::InterpLang> /*lang*/) override {
    u_.interp_suffixes.push_back(suffix);
  }

  void OpPin(sim::Op /*op*/) override {}  // per-rule; handled by the model
  void Const(bool /*result*/) override {}

  void Opaque(std::string_view name, const std::string& render) override {
    AddOpaque(std::string(name) + "|" + render);
  }

 private:
  void AddOpaque(std::string id) {
    if (pools_.opaque.insert(id).second) {
      pools_.opaque_order.push_back(std::move(id));
    }
  }

  Universe& u_;
  Pools& pools_;
  const MatchModule* current_ = nullptr;
};

}  // namespace

uint32_t Universe::AtomForEpt(bool valid, sim::FileId image,
                              uint64_t offset) const {
  if (!valid) {
    return ept_invalid;
  }
  const auto it = prog_index_.find(FileKey(image));
  if (it != prog_index_.end()) {
    const EptProg& prog = progs[it->second];
    const auto off =
        std::lower_bound(prog.offsets.begin(), prog.offsets.end(), offset);
    if (off != prog.offsets.end() && *off == offset) {
      return prog.atom_base +
             static_cast<uint32_t>(off - prog.offsets.begin());
    }
    return prog.atom_base + static_cast<uint32_t>(prog.offsets.size());
  }
  const auto off =
      std::lower_bound(global_offsets.begin(), global_offsets.end(), offset);
  if (off != global_offsets.end() && *off == offset) {
    return ept_other_base + static_cast<uint32_t>(off - global_offsets.begin());
  }
  return ept_other_base + static_cast<uint32_t>(global_offsets.size());
}

uint32_t Universe::AtomForIno(uint64_t ino) const {
  const auto it = std::lower_bound(inos.begin(), inos.end(), ino);
  if (it != inos.end() && *it == ino) {
    return static_cast<uint32_t>(it - inos.begin());
  }
  return static_cast<uint32_t>(inos.size());
}

uint32_t Universe::AtomForArg(int arg, int64_t value) const {
  const auto& pool = args[arg];
  const auto it = std::lower_bound(pool.begin(), pool.end(), value);
  if (it != pool.end() && *it == value) {
    return static_cast<uint32_t>(it - pool.begin());
  }
  return static_cast<uint32_t>(pool.size());
}

uint32_t Universe::AtomForInterp(sim::InterpLang lang,
                                 const std::string& script) const {
  if (lang == sim::InterpLang::kNone) {
    return 0;
  }
  // Class = longest mentioned suffix the script ends with (the matched
  // suffixes of one path are totally ordered by length, so the longest
  // determines them all); the last class = no mentioned suffix matches.
  const uint32_t kNoClass = static_cast<uint32_t>(interp_suffixes.size());
  uint32_t cls = kNoClass;
  size_t best = 0;
  for (size_t i = 0; i < interp_suffixes.size(); ++i) {
    const std::string& s = interp_suffixes[i];
    if (EndsWith(script, s) && (cls == kNoClass || s.size() > best)) {
      cls = static_cast<uint32_t>(i);
      best = s.size();
    }
  }
  const uint32_t lang_index = static_cast<uint32_t>(lang) - 1;
  return 1 + lang_index * (kNoClass + 1) + cls;
}

uint32_t Universe::AtomForState(size_t state_dim,
                                std::optional<int64_t> value) const {
  if (!value) {
    return 0;
  }
  const auto& pool = state_dims[state_dim].values;
  const auto it = std::lower_bound(pool.begin(), pool.end(), *value);
  if (it != pool.end() && *it == *value) {
    return 1 + static_cast<uint32_t>(it - pool.begin());
  }
  return 1 + static_cast<uint32_t>(pool.size());
}

std::optional<uint32_t> Universe::FindStateDim(const std::string& key) const {
  const auto it = state_index_.find(key);
  if (it == state_index_.end()) {
    return std::nullopt;
  }
  return StateDimIndex(it->second);
}

std::optional<uint32_t> Universe::FindOpaqueDim(const std::string& id) const {
  const auto it = opaque_index_.find(id);
  if (it == opaque_index_.end()) {
    return std::nullopt;
  }
  return OpaqueDimIndex(it->second);
}

std::optional<uint32_t> Universe::UnknownSlotDim(const void* match_module) const {
  const auto it = unknown_slot_dims_.find(match_module);
  if (it == unknown_slot_dims_.end()) {
    return std::nullopt;
  }
  return OpaqueDimIndex(it->second);
}

DimSet Universe::EptMembers(bool has_program, sim::FileId file,
                            std::optional<uint64_t> offset) const {
  std::vector<uint32_t> atoms;
  if (has_program) {
    const auto it = prog_index_.find(FileKey(file));
    if (it == prog_index_.end()) {
      // A program never seen while building the universe (possible only when
      // querying with a file outside both rule bases): no atom class pins
      // that exact binary, so nothing can be proven to match.
      return DimSet::Of({});
    }
    const EptProg& prog = progs[it->second];
    if (offset) {
      const auto off =
          std::lower_bound(prog.offsets.begin(), prog.offsets.end(), *offset);
      if (off != prog.offsets.end() && *off == *offset) {
        atoms.push_back(prog.atom_base +
                        static_cast<uint32_t>(off - prog.offsets.begin()));
      }
      return DimSet::Of(std::move(atoms));
    }
    for (uint32_t i = 0; i <= prog.offsets.size(); ++i) {
      atoms.push_back(prog.atom_base + i);
    }
    return DimSet::Of(std::move(atoms));
  }
  // Program-less -i rule: the offset must match under any program. Mentioned
  // program-less offsets are folded into every program's offset list, so the
  // per-program lookup below finds them.
  if (!offset) {
    return DimSet::AllBut({ept_invalid});
  }
  for (const EptProg& prog : progs) {
    const auto off =
        std::lower_bound(prog.offsets.begin(), prog.offsets.end(), *offset);
    if (off != prog.offsets.end() && *off == *offset) {
      atoms.push_back(prog.atom_base +
                      static_cast<uint32_t>(off - prog.offsets.begin()));
    }
  }
  const auto off =
      std::lower_bound(global_offsets.begin(), global_offsets.end(), *offset);
  if (off != global_offsets.end() && *off == *offset) {
    atoms.push_back(ept_other_base +
                    static_cast<uint32_t>(off - global_offsets.begin()));
  }
  return DimSet::Of(std::move(atoms));
}

DimSet Universe::InterpMembers(const std::string& suffix,
                               std::optional<sim::InterpLang> lang) const {
  std::vector<uint32_t> atoms;
  const uint32_t classes = static_cast<uint32_t>(interp_suffixes.size()) + 1;
  for (int l = 1; l <= kNumInterpLangs; ++l) {
    if (lang && static_cast<int>(*lang) != l) {
      continue;
    }
    for (uint32_t c = 0; c < classes; ++c) {
      const bool matches = c < interp_suffixes.size()
                               ? EndsWith(interp_suffixes[c], suffix)
                               : suffix.empty();
      if (matches) {
        atoms.push_back(1 + static_cast<uint32_t>(l - 1) * classes + c);
      }
    }
  }
  return DimSet::Of(std::move(atoms));
}

DimSet Universe::ExpandSubject(const core::LabelSet& set) const {
  if (set.wildcard) {
    return DimSet::All();
  }
  std::vector<uint32_t> atoms;
  for (uint32_t sid = 0; sid < n_sids; ++sid) {
    if (set.MatchesSubject(sid, *policy)) {
      atoms.push_back(sid);
    }
  }
  return DimSet::Of(std::move(atoms));
}

DimSet Universe::ExpandObject(const core::LabelSet& set) const {
  if (set.wildcard) {
    return DimSet::All();
  }
  std::vector<uint32_t> atoms;
  for (uint32_t sid = 0; sid < n_sids; ++sid) {
    if (set.MatchesObject(sid, *policy)) {
      atoms.push_back(sid);
    }
  }
  return DimSet::Of(std::move(atoms));
}

std::string Universe::DimName(uint32_t dim) const {
  switch (dim) {
    case kDimSubject:
      return "subject";
    case kDimObject:
      return "object";
    case kDimEpt:
      return "entrypoint";
    case kDimIno:
      return "ino";
    case kDimInterp:
      return "interp";
    default:
      break;
  }
  if (dim >= kDimArgBase && dim < kDimFixedCount) {
    return "arg" + std::to_string(dim - kDimArgBase);
  }
  const uint32_t rel = dim - kDimFixedCount;
  if (rel < state_dims.size()) {
    return "state[" + state_dims[rel].key + "]";
  }
  return "pred[" + opaque_ids[rel - state_dims.size()] + "]";
}

std::string Universe::RenderAtom(uint32_t dim, uint32_t atom) const {
  std::ostringstream oss;
  switch (dim) {
    case kDimSubject:
    case kDimObject:
      return atom < sid_names.size() ? sid_names[atom] : "<sid?>";
    case kDimEpt: {
      if (atom == ept_invalid) {
        return "<invalid-stack>";
      }
      if (atom >= ept_other_base) {
        const uint32_t i = atom - ept_other_base;
        if (i < global_offsets.size()) {
          oss << "<other-program>+0x" << std::hex << global_offsets[i];
        } else {
          oss << "<other-program>+<other-offset>";
        }
        return oss.str();
      }
      for (const EptProg& prog : progs) {
        if (atom >= prog.atom_base &&
            atom <= prog.atom_base + prog.offsets.size()) {
          const uint32_t i = atom - prog.atom_base;
          if (i < prog.offsets.size()) {
            oss << prog.path << "+0x" << std::hex << prog.offsets[i];
          } else {
            oss << prog.path << "+<other-offset>";
          }
          return oss.str();
        }
      }
      return "<ept?>";
    }
    case kDimIno:
      if (atom < inos.size()) {
        return std::to_string(inos[atom]);
      }
      return "<other-ino>";
    case kDimInterp: {
      if (atom == 0) {
        return "<no-interpreter>";
      }
      const uint32_t classes = static_cast<uint32_t>(interp_suffixes.size()) + 1;
      const uint32_t lang = (atom - 1) / classes;
      const uint32_t cls = (atom - 1) % classes;
      oss << LangName(static_cast<int>(lang) + 1) << ":";
      if (cls < interp_suffixes.size()) {
        oss << "*" << interp_suffixes[cls];
      } else {
        oss << "<other-script>";
      }
      return oss.str();
    }
    default:
      break;
  }
  if (dim >= kDimArgBase && dim < kDimFixedCount) {
    const auto& pool = args[dim - kDimArgBase];
    if (atom < pool.size()) {
      return std::to_string(pool[atom]);
    }
    return "<other>";
  }
  const uint32_t rel = dim - kDimFixedCount;
  if (rel < state_dims.size()) {
    const auto& pool = state_dims[rel].values;
    if (atom == 0) {
      return "<absent>";
    }
    if (atom - 1 < pool.size()) {
      return std::to_string(pool[atom - 1]);
    }
    return "<other-value>";
  }
  return atom != 0 ? "true" : "false";
}

std::string Universe::Witness(const Region& r) const {
  std::ostringstream oss;
  bool first = true;
  for (uint32_t d = 0; d < r.dims.size(); ++d) {
    // An unconstrained dimension adds nothing to the witness: any value of
    // it lands in the region.
    if (r.dims[d].IsAll()) {
      continue;
    }
    if (!first) {
      oss << " ";
    }
    first = false;
    oss << DimName(d) << "=" << RenderAtom(d, r.dims[d].First(alphabets_[d]));
  }
  if (first) {
    return "<any>";
  }
  return oss.str();
}

std::string Universe::Describe(const Region& r) const {
  std::ostringstream oss;
  bool first = true;
  for (uint32_t d = 0; d < r.dims.size(); ++d) {
    const DimSet& set = r.dims[d];
    if (set.IsAll()) {
      continue;
    }
    if (!first) {
      oss << " ";
    }
    first = false;
    oss << DimName(d) << (set.complement ? " !in {" : " in {");
    for (size_t i = 0; i < set.atoms.size(); ++i) {
      if (i > 0) {
        oss << ",";
      }
      if (i == 4 && set.atoms.size() > 5) {
        oss << "...+" << (set.atoms.size() - i);
        break;
      }
      oss << RenderAtom(d, set.atoms[i]);
    }
    oss << "}";
  }
  if (first) {
    return "<any>";
  }
  return oss.str();
}

void Universe::Seal() {
  SortUnique(global_offsets);
  uint32_t next = 0;
  for (EptProg& prog : progs) {
    prog.offsets.insert(prog.offsets.end(), global_offsets.begin(),
                        global_offsets.end());
    SortUnique(prog.offsets);
    prog.atom_base = next;
    next += static_cast<uint32_t>(prog.offsets.size()) + 1;
  }
  ept_other_base = next;
  next += static_cast<uint32_t>(global_offsets.size()) + 1;
  ept_invalid = next;
  ept_atom_count = next + 1;

  SortUnique(inos);
  for (auto& pool : args) {
    SortUnique(pool);
  }
  std::sort(interp_suffixes.begin(), interp_suffixes.end());
  interp_suffixes.erase(
      std::unique(interp_suffixes.begin(), interp_suffixes.end()),
      interp_suffixes.end());
  for (StateDim& dim : state_dims) {
    SortUnique(dim.values);
  }

  alphabets_.assign(dim_count(), 0);
  alphabets_[kDimSubject] = n_sids;
  alphabets_[kDimObject] = n_sids;
  alphabets_[kDimEpt] = ept_atom_count;
  alphabets_[kDimIno] = static_cast<uint32_t>(inos.size()) + 1;
  alphabets_[kDimInterp] = interp_atom_count();
  for (int i = 0; i < kNumArgDims; ++i) {
    alphabets_[kDimArgBase + i] = static_cast<uint32_t>(args[i].size()) + 1;
  }
  for (size_t i = 0; i < state_dims.size(); ++i) {
    alphabets_[StateDimIndex(i)] =
        static_cast<uint32_t>(state_dims[i].values.size()) + 2;
  }
  for (size_t i = 0; i < opaque_ids.size(); ++i) {
    alphabets_[OpaqueDimIndex(i)] = 2;
  }
}

std::shared_ptr<const Universe> BuildUniverse(
    const std::vector<const CompiledRuleset*>& rulesets,
    const sim::MacPolicy& policy) {
  auto u = std::make_shared<Universe>();
  u->policy = &policy;
  u->n_sids = static_cast<uint32_t>(policy.labels().size());
  u->sid_names.reserve(u->n_sids);
  for (uint32_t sid = 0; sid < u->n_sids; ++sid) {
    u->sid_names.push_back(policy.labels().Name(sid));
  }

  Pools pools;
  Collector collector(*u, pools);
  for (const CompiledRuleset* rs : rulesets) {
    for (const auto& [name, chain] : rs->rules.filter().chains()) {
      for (const auto& rule : chain.rules()) {
        if (rule->has_program()) {
          const uint64_t key = Universe::FileKey(rule->program_file);
          auto [it, inserted] =
              u->prog_index_.emplace(key, static_cast<uint32_t>(u->progs.size()));
          if (inserted) {
            u->progs.push_back(
                {rule->program_file, rule->program, {}, 0});
          }
          if (rule->entrypoint) {
            u->progs[it->second].offsets.push_back(*rule->entrypoint);
          }
        } else if (rule->entrypoint) {
          u->global_offsets.push_back(*rule->entrypoint);
        }
        if (rule->ino) {
          u->inos.push_back(*rule->ino);
        }
        for (const auto& match : rule->matches) {
          collector.Visit(*match);
        }
        if (const auto* st =
                dynamic_cast<const StateTarget*>(rule->target.get())) {
          if (!pools.state_values.count(st->key)) {
            pools.state_order.push_back(st->key);
          }
          auto& values = pools.state_values[st->key];
          if (!st->unset) {
            if (st->value.is_var) {
              u->exact_state = false;
              pools.var_set_keys.insert(st->key);
            } else {
              values.insert(st->value.literal);
            }
          }
        }
      }
    }
  }

  for (const std::string& key : pools.state_order) {
    u->state_index_.emplace(key, static_cast<uint32_t>(u->state_dims.size()));
    const auto& values = pools.state_values[key];
    u->state_dims.push_back(
        {key, std::vector<int64_t>(values.begin(), values.end())});
  }
  for (std::string& id : pools.opaque_order) {
    u->opaque_index_.emplace(id, static_cast<uint32_t>(u->opaque_ids.size()));
    u->opaque_ids.push_back(std::move(id));
  }
  // STATE checks on keys written from variables: slot contents after such a
  // write are unknown, so each check becomes its own uninterpreted predicate
  // (sound: regions split on both outcomes; witnesses lose slot precision).
  for (const auto& [module, key] : pools.state_checks) {
    if (!pools.var_set_keys.count(key) ||
        u->unknown_slot_dims_.count(module) != 0) {
      continue;
    }
    const uint32_t index = static_cast<uint32_t>(u->opaque_ids.size());
    u->unknown_slot_dims_.emplace(module, index);
    u->opaque_ids.push_back("STATE?" + key + "#" + std::to_string(index));
  }

  u->Seal();
  return u;
}

}  // namespace pf::analysis::symbolic
