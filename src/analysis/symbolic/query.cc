#include "src/analysis/symbolic/query.h"

#include <algorithm>

namespace pf::analysis::symbolic {

QueryResult RunQuery(const SymbolicModel& model, const QuerySpec& spec) {
  const Universe& u = *model.universe;
  QueryResult result;
  Conjunction conj;
  if (spec.subject) {
    const auto it =
        std::find(u.sid_names.begin(), u.sid_names.end(), *spec.subject);
    if (it == u.sid_names.end()) {
      result.error = "unknown subject label: " + *spec.subject;
      return result;
    }
    conj.emplace_back(kDimSubject, DimSet::Of({static_cast<uint32_t>(
                                       it - u.sid_names.begin())}));
  }
  if (spec.object) {
    const auto it =
        std::find(u.sid_names.begin(), u.sid_names.end(), *spec.object);
    if (it == u.sid_names.end()) {
      result.error = "unknown object label: " + *spec.object;
      return result;
    }
    conj.emplace_back(kDimObject, DimSet::Of({static_cast<uint32_t>(
                                      it - u.sid_names.begin())}));
  }
  if (spec.program) {
    const Universe::EptProg* prog = nullptr;
    for (const Universe::EptProg& p : u.progs) {
      if (p.path == *spec.program) {
        prog = &p;
        break;
      }
    }
    if (prog == nullptr) {
      result.error = "program not mentioned by any rule: " + *spec.program;
      return result;
    }
    conj.emplace_back(
        kDimEpt, u.EptMembers(true, prog->file, spec.entrypoint));
  } else if (spec.entrypoint) {
    conj.emplace_back(kDimEpt, u.EptMembers(false, {}, spec.entrypoint));
  }
  if (spec.ino) {
    conj.emplace_back(kDimIno, DimSet::Of({u.AtomForIno(*spec.ino)}));
  }

  result.ok = true;
  for (size_t op = 0; op < sim::kOpCount; ++op) {
    if (spec.op && static_cast<size_t>(*spec.op) != op) {
      continue;
    }
    for (const DecisionRegion& region : model.by_op[op]) {
      if (spec.want && region.outcome != *spec.want) {
        continue;
      }
      Region inter(0);
      if (!IntersectRegion(region.region, conj, u.alphabets(), &inter)) {
        continue;
      }
      result.matches.push_back({static_cast<sim::Op>(op), region.outcome,
                                region.decided_by, region.effects,
                                u.Witness(inter)});
    }
  }
  return result;
}

ReachResult ChainReachability(const SymbolicModel& model,
                              const std::string& chain, size_t max_atoms) {
  ReachResult result;
  const auto it = model.reach.find(chain);
  if (it == model.reach.end()) {
    return result;
  }
  result.found = true;
  result.entered = it->second.entered;
  const Universe& u = *model.universe;
  for (size_t op = 0; op < sim::kOpCount; ++op) {
    if ((it->second.ops >> op) & 1) {
      result.ops.emplace_back(sim::OpName(static_cast<sim::Op>(op)));
    }
  }
  auto render = [&](const DimSet& set, uint32_t dim,
                    std::vector<std::string>* out) {
    const uint32_t alphabet = u.alphabets()[dim];
    if (set.IsAll()) {
      out->push_back("<any>");
      return;
    }
    if (set.complement) {
      out->push_back("<all but " + std::to_string(set.atoms.size()) +
                     " classes>");
      return;
    }
    for (const uint32_t atom : set.atoms) {
      if (out->size() >= max_atoms) {
        out->push_back("... +" + std::to_string(set.Count(alphabet) -
                                                max_atoms));
        return;
      }
      out->push_back(u.RenderAtom(dim, atom));
    }
  };
  render(it->second.ept, kDimEpt, &result.entrypoints);
  render(it->second.subjects, kDimSubject, &result.subjects);
  return result;
}

}  // namespace pf::analysis::symbolic
