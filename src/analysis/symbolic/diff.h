// Semantic ruleset diff: regions of the decision space where two rule bases
// decide differently (pfdiff, and the pftables --widening-gate).
//
// Both rule bases are modeled over one joint universe (universe.h), so their
// partitions are directly comparable: intersecting every region pair yields
// the exact set of verdict- or effect-changing regions, each with one
// concrete witness tuple. Deleting a deny rule shows up as one DROP→ALLOW
// region; a textual no-op reordering shows up as an empty diff.
#ifndef SRC_ANALYSIS_SYMBOLIC_DIFF_H_
#define SRC_ANALYSIS_SYMBOLIC_DIFF_H_

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/symbolic/model.h"

namespace pf::analysis::symbolic {

struct DiffRegion {
  sim::Op op = sim::Op::kFileOpen;
  Region region;
  OutcomeKind from = OutcomeKind::kAllow;
  OutcomeKind to = OutcomeKind::kAllow;
  bool effects_changed = false;
  std::vector<std::string> from_effects;
  std::vector<std::string> to_effects;
  std::string from_decided_by;
  std::string to_decided_by;
  std::string witness;  // one concrete tuple inside the region
  // A request the old base denied and the new base allows (or either side is
  // indeterminate and the other side moved): the "unintended widening" class
  // the pftables gate rejects.
  bool widening = false;
};

struct DiffResult {
  std::shared_ptr<const Universe> universe;
  std::vector<DiffRegion> regions;
  bool any_widening = false;
  bool exact = true;  // both models determinate with exact STATE slots
  uint64_t analysis_us = 0;
};

// Diffs two compiled rule bases over their joint universe.
DiffResult DiffRulesets(const core::CompiledRuleset& oldrs,
                        const core::CompiledRuleset& newrs,
                        const sim::MacPolicy& policy,
                        const ModelOptions& opts = {});

// Human-readable report, one block per region ("verdict-changing regions"
// first). `max_regions` truncates with an explicit "... N more" line; pass 0
// for unlimited.
std::string RenderDiffText(const DiffResult& diff, size_t max_regions = 64);

// Machine-readable report: {"pfdiff": {"regions": [...], ...}}.
std::string RenderDiffJson(const DiffResult& diff);

}  // namespace pf::analysis::symbolic

#endif  // SRC_ANALYSIS_SYMBOLIC_DIFF_H_
