#include "src/analysis/symbolic/model.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "src/core/modules.h"
#include "src/core/symbolize.h"

namespace pf::analysis::symbolic {
namespace {

using core::Chain;
using core::CompiledChain;
using core::CompiledRuleset;
using core::kMaxChainDepth;
using core::MatchModule;
using core::Rule;
using core::TargetKind;

// Mirror of the per-op object availability the analyzer uses: signal
// delivery, syscall entry, and fork mediate subject-side events only, so a
// rule with object constraints can never match them.
bool OpHasObject(sim::Op op) {
  switch (op) {
    case sim::Op::kSignalDeliver:
    case sim::Op::kSyscallBegin:
    case sim::Op::kFork:
      return false;
    default:
      return true;
  }
}

uint64_t Hash64(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashString(uint64_t h, const std::string& s) {
  for (const char c : s) {
    h = Hash64(h, static_cast<uint8_t>(c));
  }
  return Hash64(h, 0x5f);
}

// Abstract value of one STATE slot along one traversal path. kInitial means
// "whatever the task dictionary held at Authorize entry" (tracked by the
// slot's universe dimension); a STATE --set/--unset on the path overrides it.
struct SlotVal {
  enum Kind : uint8_t { kInitial, kLiteral, kAbsent, kUnknown };
  Kind kind = kInitial;
  int64_t literal = 0;
  bool operator==(const SlotVal&) const = default;
};

struct Item {
  Region region;
  std::vector<SlotVal> env;           // one per universe state dimension
  std::vector<std::string> effects;
};

enum class CV : uint8_t { kFallthrough, kAccept, kDrop, kReturn, kIndeterminate };

struct Outcome {
  CV verdict = CV::kFallthrough;
  Item item;
  std::string decided_by;
};

// One rule's match predicate, lowered once: the sparse conjunction over
// universe dimensions plus the STATE checks (resolved per-path against the
// slot environment at evaluation time).
struct RulePred {
  bool never = false;                // provably cannot match any request
  std::optional<sim::Op> op;         // -o pin merged with module OpPins
  bool requires_object = false;
  Conjunction conj;
  struct StateCheck {
    uint32_t slot = 0;               // index into Universe::state_dims
    std::optional<int64_t> cmp;
    bool negate = false;
    const MatchModule* module = nullptr;
  };
  std::vector<StateCheck> state_checks;
};

class PredSink : public core::SymbolicSink {
 public:
  PredSink(const Universe& u, RulePred& pred) : u_(u), pred_(pred) {}

  void Constrain(uint32_t dim, DimSet set) {
    pred_.conj.emplace_back(dim, std::move(set));
  }

  void Visit(const MatchModule& m) {
    current_ = &m;
    if (!m.Symbolize(*this)) {
      Opaque(m.Name(), m.Render());
    }
    current_ = nullptr;
  }

  void StateCheck(const std::string& key, std::optional<int64_t> cmp,
                  bool negate) override {
    const auto dim = u_.FindStateDim(key);
    if (!dim) {  // collector and pred builder walk the same rules
      pred_.never = true;
      return;
    }
    pred_.state_checks.push_back(
        {*dim - kDimFixedCount, cmp, negate, current_});
  }

  void SyscallArg(int arg, int64_t value, bool negate) override {
    if (arg < 0 || arg >= kNumArgDims) {
      Opaque(current_ != nullptr ? current_->Name() : "SYSCALL_ARGS",
             current_ != nullptr ? current_->Render() : "?");
      return;
    }
    const uint32_t atom = u_.AtomForArg(arg, value);
    Constrain(kDimArgBase + static_cast<uint32_t>(arg),
              negate ? DimSet::AllBut({atom}) : DimSet::Of({atom}));
  }

  void Interp(const std::string& suffix,
              std::optional<sim::InterpLang> lang) override {
    Constrain(kDimInterp, u_.InterpMembers(suffix, lang));
  }

  void OpPin(sim::Op op) override {
    if (pred_.op && *pred_.op != op) {
      pred_.never = true;
      return;
    }
    pred_.op = op;
  }

  void Const(bool result) override {
    if (!result) {
      pred_.never = true;
    }
  }

  void Opaque(std::string_view name, const std::string& render) override {
    const auto dim = u_.FindOpaqueDim(std::string(name) + "|" + render);
    if (!dim) {
      pred_.never = true;
      return;
    }
    Constrain(*dim, DimSet::Of({1}));
  }

 private:
  const Universe& u_;
  RulePred& pred_;
  const MatchModule* current_ = nullptr;
};

// Per-chain entrypoint-index view: one (atom, op-mask, rule-list) entry per
// index key whose rules could match some op, for the indexed traversal phase.
struct IndexEntry {
  uint32_t atom = 0;
  uint64_t op_mask = 0;
  const std::vector<const Rule*>* rules = nullptr;
};

class Builder {
 public:
  Builder(const CompiledRuleset& rs, std::shared_ptr<const Universe> universe,
          const ModelOptions& opts, SymbolicModel& m)
      : rs_(rs), u_(*universe), opts_(opts), m_(m) {
    m_.universe = std::move(universe);
  }

  void Run() {
    CollectLoci();
    for (size_t op = 0; op < sim::kOpCount; ++op) {
      RunOp(static_cast<sim::Op>(op));
      m_.max_op_regions = std::max(m_.max_op_regions, m_.by_op[op].size());
      m_.region_count += m_.by_op[op].size();
    }
    if (!m_.indeterminate) {
      for (const RuleLocusInfo& locus : m_.loci) {
        if (m_.fired.count(locus.rule) == 0) {
          m_.dead.push_back(locus);
        }
      }
    }
    m_.exact_state = u_.exact_state;
  }

 private:
  void CollectLoci() {
    for (const auto& [name, chain] : rs_.rules.filter().chains()) {
      for (size_t i = 0; i < chain.size(); ++i) {
        m_.loci.push_back({name, i + 1, &chain.rule_at(i)});
        locus_of_[&chain.rule_at(i)] = name + ":" + std::to_string(i + 1);
      }
    }
  }

  const RulePred& PredFor(const Rule& rule) {
    const auto it = preds_.find(&rule);
    if (it != preds_.end()) {
      return it->second;
    }
    RulePred pred;
    PredSink sink(u_, pred);
    pred.op = rule.op;
    if (!rule.subject.wildcard) {
      sink.Constrain(kDimSubject, u_.ExpandSubject(rule.subject));
    }
    if (rule.has_program() || rule.entrypoint) {
      sink.Constrain(kDimEpt, u_.EptMembers(rule.has_program(),
                                            rule.program_file, rule.entrypoint));
    }
    if (!rule.object.wildcard || rule.ino) {
      pred.requires_object = true;
      if (rule.ino) {
        sink.Constrain(kDimIno, DimSet::Of({u_.AtomForIno(*rule.ino)}));
      }
      if (!rule.object.wildcard) {
        sink.Constrain(kDimObject, u_.ExpandObject(rule.object));
      }
    }
    for (const auto& match : rule.matches) {
      sink.Visit(*match);
    }
    return preds_.emplace(&rule, std::move(pred)).first->second;
  }

  const std::vector<IndexEntry>& IndexFor(const Chain& chain) {
    const auto it = index_info_.find(&chain);
    if (it != index_info_.end()) {
      return it->second;
    }
    std::vector<IndexEntry> entries;
    for (const auto& [key, rules] : chain.ept_index()) {
      uint64_t mask = 0;
      for (const Rule* rule : rules) {
        const RulePred& pred = PredFor(*rule);
        if (pred.never) {
          continue;
        }
        mask |= pred.op ? (1ull << static_cast<size_t>(*pred.op)) : ~0ull;
      }
      if (mask != 0) {
        entries.push_back(
            {u_.AtomForEpt(true, key.file, key.offset), mask, &rules});
      }
    }
    std::sort(entries.begin(), entries.end(),
              [](const IndexEntry& a, const IndexEntry& b) {
                return a.atom < b.atom;
              });
    return index_info_.emplace(&chain, std::move(entries)).first->second;
  }

  void NoteReach(const Chain& chain, sim::Op op, const Item& item) {
    ChainReach& reach = m_.reach[chain.name()];
    reach.entered = true;
    reach.ops |= 1ull << static_cast<size_t>(op);
    reach.ept = DimSet::Union(reach.ept, item.region.dims[kDimEpt]);
    reach.subjects = DimSet::Union(reach.subjects, item.region.dims[kDimSubject]);
  }

  // --- symbolic twins of EvalRule / EvalRules / TraverseChain ---

  // Evaluates one rule over one item: terminal paths append to `out`,
  // keep-going paths (no match, or side-effect-only target) to `next`.
  void EvalRuleSym(const Rule& rule, Item item, sim::Op op, int depth,
                   std::vector<Outcome>* out, std::vector<Item>* next) {
    const RulePred& pred = PredFor(rule);
    if (pred.never || (pred.op && *pred.op != op) ||
        (pred.requires_object && !OpHasObject(op))) {
      next->push_back(std::move(item));
      return;
    }
    // Resolve STATE checks against this path's slot environment.
    Conjunction conj = pred.conj;
    for (const RulePred::StateCheck& sc : pred.state_checks) {
      const SlotVal& slot = item.env[sc.slot];
      if (slot.kind == SlotVal::kAbsent) {
        next->push_back(std::move(item));  // absent key never matches
        return;
      }
      if (slot.kind == SlotVal::kLiteral) {
        if (!sc.cmp) {
          continue;  // present: matches
        }
        const bool equal = slot.literal == *sc.cmp;
        if ((sc.negate ? !equal : equal)) {
          continue;
        }
        next->push_back(std::move(item));
        return;
      }
      if (slot.kind == SlotVal::kUnknown) {
        const auto dim = u_.UnknownSlotDim(sc.module);
        if (!dim) {  // no predicate dimension: cannot model this check
          m_.indeterminate = true;
          out->push_back({CV::kIndeterminate, std::move(item),
                          locus_of_[&rule]});
          return;
        }
        conj.emplace_back(*dim, DimSet::Of({1}));
        continue;
      }
      // kInitial: constrain the slot's universe dimension. Atom 0 is
      // "absent"; a mentioned literal has its own atom.
      const uint32_t dim = kDimFixedCount + sc.slot;
      if (!sc.cmp) {
        conj.emplace_back(dim, DimSet::AllBut({0}));
      } else {
        const uint32_t va =
            u_.AtomForState(sc.slot, std::optional<int64_t>(*sc.cmp));
        conj.emplace_back(dim, sc.negate ? DimSet::AllBut({0, va})
                                         : DimSet::Of({va}));
      }
    }

    Region matched(0);
    if (!IntersectRegion(item.region, conj, u_.alphabets(), &matched)) {
      next->push_back(std::move(item));
      return;
    }
    // The no-match residue keeps going; the matched slice fires the target.
    std::vector<Region> residue;
    SubtractRegion(item.region, conj, u_.alphabets(), &residue);
    for (Region& r : residue) {
      next->push_back({std::move(r), item.env, item.effects});
    }
    m_.fired.insert(&rule);
    Item hit{std::move(matched), std::move(item.env), std::move(item.effects)};

    const auto kind = rule.target->StaticKind();
    if (!kind) {
      m_.indeterminate = true;
      out->push_back({CV::kIndeterminate, std::move(hit), locus_of_[&rule]});
      return;
    }
    switch (*kind) {
      case TargetKind::kAccept:
        out->push_back({CV::kAccept, std::move(hit), locus_of_[&rule]});
        return;
      case TargetKind::kDrop:
        out->push_back({CV::kDrop, std::move(hit), locus_of_[&rule]});
        return;
      case TargetKind::kReturn:
        out->push_back({CV::kReturn, std::move(hit), locus_of_[&rule]});
        return;
      case TargetKind::kContinue: {
        hit.effects.push_back(rule.target->Render());
        if (const auto* st =
                dynamic_cast<const core::StateTarget*>(rule.target.get())) {
          if (const auto slot = u_.FindStateDim(st->key)) {
            SlotVal& env = hit.env[*slot - kDimFixedCount];
            if (st->unset) {
              env = {SlotVal::kAbsent, 0};
            } else if (st->value.is_var) {
              env = {SlotVal::kUnknown, 0};
            } else {
              env = {SlotVal::kLiteral, st->value.literal};
            }
          }
        }
        next->push_back(std::move(hit));
        return;
      }
      case TargetKind::kJump: {
        const CompiledChain* target = rs_.FindCompiled(rule.target->jump_chain());
        if (target == nullptr || depth >= kMaxChainDepth) {
          next->push_back(std::move(hit));
          return;
        }
        std::vector<Outcome> sub =
            RunChain(*target, std::move(hit), op, depth + 1);
        for (Outcome& o : sub) {
          if (o.verdict == CV::kAccept || o.verdict == CV::kDrop ||
              o.verdict == CV::kIndeterminate) {
            out->push_back(std::move(o));
          } else {  // RETURN and fallthrough resume after the jump site
            next->push_back(std::move(o.item));
          }
        }
        return;
      }
    }
  }

  void EvalList(const std::vector<const Rule*>& rules, std::vector<Item> items,
                sim::Op op, int depth, std::vector<Outcome>* out) {
    for (const Rule* rule : rules) {
      if (items.empty()) {
        return;
      }
      std::vector<Item> next;
      for (Item& item : items) {
        EvalRuleSym(*rule, std::move(item), op, depth, out, &next);
      }
      items = std::move(next);
    }
    for (Item& item : items) {
      out->push_back({CV::kFallthrough, std::move(item), ""});
    }
  }

  std::vector<Outcome> RunChain(const CompiledChain& cc, Item item, sim::Op op,
                                int depth) {
    std::vector<Outcome> out;
    if (depth >= kMaxChainDepth) {
      out.push_back({CV::kFallthrough, std::move(item), ""});
      return out;
    }
    const Chain& chain = *cc.chain;
    NoteReach(chain, op, item);
    const core::OpBucket& bucket = cc.ops[static_cast<size_t>(op)];
    std::vector<Item> seed;
    seed.push_back(std::move(item));
    if (!(opts_.ept_chains && chain.index_built())) {
      EvalList(bucket.all, std::move(seed), op, depth, &out);
      MergeOutcomes(&out);
      return out;
    }
    // Indexed traversal: plain rules first, then the hash-selected
    // entrypoint list — requests with no indexed entrypoint (including an
    // unusable stack) fall through past the index.
    std::vector<Outcome> plain;
    EvalList(bucket.plain, std::move(seed), op, depth, &plain);
    for (Outcome& o : plain) {
      if (o.verdict != CV::kFallthrough) {
        out.push_back(std::move(o));
        continue;
      }
      if (!bucket.has_indexed) {
        out.push_back(std::move(o));
        continue;
      }
      Item rest = std::move(o.item);
      const DimSet& ept = rest.region.dims[kDimEpt];
      std::vector<uint32_t> taken;
      for (const IndexEntry& entry : IndexFor(chain)) {
        if (((entry.op_mask >> static_cast<size_t>(op)) & 1) == 0 ||
            !ept.Contains(entry.atom)) {
          continue;
        }
        taken.push_back(entry.atom);
        Item sub{rest.region, rest.env, rest.effects};
        sub.region.dims[kDimEpt] = DimSet::Of({entry.atom});
        std::vector<Item> one;
        one.push_back(std::move(sub));
        EvalList(*entry.rules, std::move(one), op, depth, &out);
      }
      // Entrypoints outside every (op-relevant) index key fall through.
      rest.region.dims[kDimEpt] = DimSet::Subtract(ept, DimSet::Of(taken));
      if (!rest.region.dims[kDimEpt].Empty(u_.alphabets()[kDimEpt])) {
        out.push_back({CV::kFallthrough, std::move(rest), ""});
      }
    }
    MergeOutcomes(&out);
    return out;
  }

  // Re-merges outcomes that differ only in one dimension's atom set (the
  // entrypoint split above shatters items per index key; identical outcomes
  // union back into one region, keeping the partition size proportional to
  // the distinct behaviors instead of the distinct entrypoints).
  void MergeOn(std::vector<Outcome>* outs, uint32_t dim) {
    std::unordered_map<uint64_t, std::vector<size_t>> buckets;
    buckets.reserve(outs->size());
    std::vector<Outcome> merged;
    merged.reserve(outs->size());
    for (Outcome& o : *outs) {
      uint64_t h = Hash64(0x243f6a88, static_cast<uint8_t>(o.verdict));
      h = HashString(h, o.decided_by);
      for (const std::string& e : o.item.effects) {
        h = HashString(h, e);
      }
      for (const SlotVal& s : o.item.env) {
        h = Hash64(h, (static_cast<uint64_t>(s.kind) << 56) ^
                          static_cast<uint64_t>(s.literal));
      }
      for (uint32_t d = 0; d < o.item.region.dims.size(); ++d) {
        if (d == dim) {
          continue;
        }
        const DimSet& set = o.item.region.dims[d];
        h = Hash64(h, set.complement ? 0x77 : 0x11);
        for (const uint32_t a : set.atoms) {
          h = Hash64(h, a);
        }
      }
      bool joined = false;
      for (const size_t idx : buckets[h]) {
        Outcome& prev = merged[idx];
        if (prev.verdict != o.verdict || prev.decided_by != o.decided_by ||
            prev.item.effects != o.item.effects || prev.item.env != o.item.env) {
          continue;
        }
        bool same = true;
        for (uint32_t d = 0; d < o.item.region.dims.size() && same; ++d) {
          if (d != dim && !(prev.item.region.dims[d] == o.item.region.dims[d])) {
            same = false;
          }
        }
        if (!same) {
          continue;
        }
        prev.item.region.dims[dim] =
            DimSet::Union(prev.item.region.dims[dim], o.item.region.dims[dim]);
        joined = true;
        break;
      }
      if (!joined) {
        buckets[h].push_back(merged.size());
        merged.push_back(std::move(o));
      }
    }
    *outs = std::move(merged);
  }

  void MergeOutcomes(std::vector<Outcome>* outs) {
    if (outs->size() < 2) {
      return;
    }
    MergeOn(outs, kDimEpt);
    MergeOn(outs, kDimSubject);
    MergeOn(outs, kDimObject);
  }

  // --- symbolic twin of Authorize's root loop ---

  void RunOp(sim::Op op) {
    const CompiledChain* roots[3];
    size_t num_roots = 0;
    auto consider = [&](const CompiledChain* cc) {
      if (cc != nullptr &&
          (((cc->op_mask >> static_cast<size_t>(op)) & 1) != 0 ||
           cc->chain->policy() == Chain::Policy::kDrop)) {
        roots[num_roots++] = cc;
      }
    };
    if (op == sim::Op::kSyscallBegin) {
      consider(rs_.cc_syscallbegin);
    } else {
      if (core::IsCreateOp(op)) {
        consider(rs_.cc_create);
      }
      if (core::IsOutputOp(op)) {
        consider(rs_.cc_output);
      }
      consider(rs_.cc_input);
    }

    std::vector<DecisionRegion>& final = m_.by_op[static_cast<size_t>(op)];
    Item whole{Region(u_.dim_count()),
               std::vector<SlotVal>(u_.state_dims.size()), {}};
    if (num_roots == 0) {
      final.push_back({std::move(whole.region), OutcomeKind::kAllow, {},
                       "no-applicable-chain"});
      return;
    }

    std::vector<Item> pending;
    pending.push_back(std::move(whole));
    for (size_t i = 0; i < num_roots; ++i) {
      const CompiledChain& cc = *roots[i];
      std::vector<Item> next;
      for (Item& item : pending) {
        for (Outcome& o : RunChain(cc, std::move(item), op, 0)) {
          // RunBuiltin: RETURN in a root chain falls through, and a
          // fallthrough under a DROP-policy builtin denies.
          if (o.verdict == CV::kFallthrough || o.verdict == CV::kReturn) {
            if (cc.chain->policy() == Chain::Policy::kDrop) {
              final.push_back({std::move(o.item.region), OutcomeKind::kDrop,
                               std::move(o.item.effects),
                               "policy:" + cc.chain->name()});
            } else {
              next.push_back(std::move(o.item));
            }
            continue;
          }
          const OutcomeKind outcome =
              o.verdict == CV::kAccept
                  ? OutcomeKind::kAllow
                  : (o.verdict == CV::kDrop ? OutcomeKind::kDrop
                                            : OutcomeKind::kIndeterminate);
          final.push_back({std::move(o.item.region), outcome,
                           std::move(o.item.effects), std::move(o.decided_by)});
        }
      }
      pending = std::move(next);
    }
    for (Item& item : pending) {
      final.push_back({std::move(item.region), OutcomeKind::kAllow,
                       std::move(item.effects), "default"});
    }
  }

  const CompiledRuleset& rs_;
  const Universe& u_;
  ModelOptions opts_;
  SymbolicModel& m_;
  std::unordered_map<const Rule*, RulePred> preds_;
  std::unordered_map<const Chain*, std::vector<IndexEntry>> index_info_;
  std::unordered_map<const Rule*, std::string> locus_of_;
};

}  // namespace

std::string_view OutcomeName(OutcomeKind k) {
  switch (k) {
    case OutcomeKind::kAllow:
      return "ALLOW";
    case OutcomeKind::kDrop:
      return "DROP";
    case OutcomeKind::kIndeterminate:
      return "INDETERMINATE";
  }
  return "?";
}

const DecisionRegion* SymbolicModel::Find(
    sim::Op op, const std::vector<uint32_t>& assignment) const {
  for (const DecisionRegion& region : by_op[static_cast<size_t>(op)]) {
    if (region.region.Contains(assignment)) {
      return &region;
    }
  }
  return nullptr;
}

SymbolicModel BuildModel(const CompiledRuleset& rs, const sim::MacPolicy& policy,
                         std::shared_ptr<const Universe> universe,
                         const ModelOptions& opts) {
  const auto start = std::chrono::steady_clock::now();
  if (universe == nullptr) {
    universe = BuildUniverse({&rs}, policy);
  }
  SymbolicModel model;
  Builder builder(rs, std::move(universe), opts, model);
  builder.Run();
  model.build_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return model;
}

}  // namespace pf::analysis::symbolic
