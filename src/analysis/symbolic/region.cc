#include "src/analysis/symbolic/region.h"

#include <algorithm>
#include <iterator>

namespace pf::analysis::symbolic {
namespace {

std::vector<uint32_t> VecIntersect(const std::vector<uint32_t>& a,
                                   const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<uint32_t> VecDiff(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

std::vector<uint32_t> VecUnion(const std::vector<uint32_t>& a,
                               const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace

bool DimSet::Contains(uint32_t atom) const {
  const bool in = std::binary_search(atoms.begin(), atoms.end(), atom);
  return complement ? !in : in;
}

uint32_t DimSet::First(uint32_t alphabet) const {
  if (!complement) {
    return atoms.front();
  }
  uint32_t candidate = 0;
  for (const uint32_t excluded : atoms) {
    if (excluded != candidate) {
      break;
    }
    ++candidate;
  }
  return candidate < alphabet ? candidate : alphabet - 1;
}

DimSet DimSet::Of(std::vector<uint32_t> atoms) {
  std::sort(atoms.begin(), atoms.end());
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
  return DimSet{std::move(atoms), false};
}

DimSet DimSet::AllBut(std::vector<uint32_t> atoms) {
  std::sort(atoms.begin(), atoms.end());
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
  return DimSet{std::move(atoms), true};
}

DimSet DimSet::Intersect(const DimSet& a, const DimSet& b) {
  if (a.IsAll()) {
    return b;
  }
  if (b.IsAll()) {
    return a;
  }
  if (!a.complement && !b.complement) {
    return DimSet{VecIntersect(a.atoms, b.atoms), false};
  }
  if (!a.complement && b.complement) {
    return DimSet{VecDiff(a.atoms, b.atoms), false};
  }
  if (a.complement && !b.complement) {
    return DimSet{VecDiff(b.atoms, a.atoms), false};
  }
  return DimSet{VecUnion(a.atoms, b.atoms), true};
}

DimSet DimSet::Subtract(const DimSet& a, const DimSet& b) {
  return Intersect(a, b.Complemented());
}

DimSet DimSet::Union(const DimSet& a, const DimSet& b) {
  if (a.IsAll() || b.IsAll()) {
    return All();
  }
  if (!a.complement && !b.complement) {
    return DimSet{VecUnion(a.atoms, b.atoms), false};
  }
  if (!a.complement && b.complement) {
    return DimSet{VecDiff(b.atoms, a.atoms), true};
  }
  if (a.complement && !b.complement) {
    return DimSet{VecDiff(a.atoms, b.atoms), true};
  }
  return DimSet{VecIntersect(a.atoms, b.atoms), true};
}

bool Region::Contains(const std::vector<uint32_t>& assignment) const {
  for (size_t d = 0; d < dims.size(); ++d) {
    if (!dims[d].Contains(assignment[d])) {
      return false;
    }
  }
  return true;
}

bool IntersectRegion(const Region& r, const Conjunction& conj,
                     const std::vector<uint32_t>& alphabets, Region* out) {
  *out = r;
  for (const auto& [dim, set] : conj) {
    out->dims[dim] = DimSet::Intersect(out->dims[dim], set);
    if (out->dims[dim].Empty(alphabets[dim])) {
      return false;
    }
  }
  return true;
}

void SubtractRegion(const Region& r, const Conjunction& conj,
                    const std::vector<uint32_t>& alphabets,
                    std::vector<Region>* out) {
  // Standard product-slicing: the piece that fails the i-th constraint while
  // satisfying constraints 0..i-1. Pieces are pairwise disjoint and their
  // union is exactly r ∖ conj.
  Region prefix = r;
  for (const auto& [dim, set] : conj) {
    DimSet fail = DimSet::Subtract(prefix.dims[dim], set);
    if (!fail.Empty(alphabets[dim])) {
      Region piece = prefix;
      piece.dims[dim] = std::move(fail);
      out->push_back(std::move(piece));
    }
    prefix.dims[dim] = DimSet::Intersect(prefix.dims[dim], set);
    if (prefix.dims[dim].Empty(alphabets[dim])) {
      return;  // remaining pieces would all be empty
    }
  }
}

}  // namespace pf::analysis::symbolic
