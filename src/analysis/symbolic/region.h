// Region algebra for the symbolic decision-space model (DESIGN.md
// "Symbolic decision-space analysis").
//
// The decision space is a finite product of per-dimension atom alphabets
// (see universe.h). A DimSet is a set of atoms in one dimension, stored as a
// sorted vector in either positive ("these atoms") or complement ("all but
// these atoms") form — rule bases at 100k-rule scale pin single entrypoint
// atoms and accumulate "everything except the pinned atoms" residues, so
// both forms stay small while a dense bitset per region would not. A Region
// is a product of DimSets (absent constraint = the whole alphabet); a rule's
// match predicate is a sparse Conjunction. Subtracting a conjunction from a
// region yields at most one region per constrained dimension, which is what
// keeps the partition size proportional to the rule base.
#ifndef SRC_ANALYSIS_SYMBOLIC_REGION_H_
#define SRC_ANALYSIS_SYMBOLIC_REGION_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pf::analysis::symbolic {

struct DimSet {
  std::vector<uint32_t> atoms;  // sorted, unique
  bool complement = true;       // default-constructed = the whole alphabet

  bool operator==(const DimSet&) const = default;

  bool IsAll() const { return complement && atoms.empty(); }
  bool Contains(uint32_t atom) const;
  uint64_t Count(uint32_t alphabet) const {
    return complement ? alphabet - atoms.size() : atoms.size();
  }
  bool Empty(uint32_t alphabet) const { return Count(alphabet) == 0; }
  // Lowest atom in the set (alphabet bound for complement sets); the
  // alphabet must be non-empty in this set.
  uint32_t First(uint32_t alphabet) const;

  static DimSet All() { return DimSet{}; }
  static DimSet Of(std::vector<uint32_t> atoms);
  static DimSet AllBut(std::vector<uint32_t> atoms);
  static DimSet Intersect(const DimSet& a, const DimSet& b);
  static DimSet Subtract(const DimSet& a, const DimSet& b);
  static DimSet Union(const DimSet& a, const DimSet& b);
  DimSet Complemented() const { return DimSet{atoms, !complement}; }
};

// Product of per-dimension sets; dims.size() == Universe::dim_count().
struct Region {
  std::vector<DimSet> dims;

  explicit Region(size_t dim_count = 0) : dims(dim_count) {}
  bool Contains(const std::vector<uint32_t>& assignment) const;
  bool operator==(const Region&) const = default;
};

// Sparse conjunction: (dimension, allowed atoms) pairs, dimensions unique.
using Conjunction = std::vector<std::pair<uint32_t, DimSet>>;

// r ∩ conj; false (and `out` unspecified) when the intersection is empty.
// `alphabet(dim)` sizes come from the caller's universe.
bool IntersectRegion(const Region& r, const Conjunction& conj,
                     const std::vector<uint32_t>& alphabets, Region* out);

// r ∖ conj as disjoint regions appended to `out` (at most one per
// constrained dimension of `conj`).
void SubtractRegion(const Region& r, const Conjunction& conj,
                    const std::vector<uint32_t>& alphabets,
                    std::vector<Region>* out);

}  // namespace pf::analysis::symbolic

#endif  // SRC_ANALYSIS_SYMBOLIC_REGION_H_
