// Static analysis of compiled Process Firewall rule bases.
//
// The analyzer runs over the same CompiledRuleset the engine traverses (not
// over rule text), so what it proves is a property of what hook evaluation
// will actually do: dispatch buckets, the entrypoint-chain index, the JUMP
// depth bound, and the per-op root-chain selection are all the engine's own.
// Four analysis families (DESIGN.md "Static analysis of rule bases"):
//
//  * Shadowing / dead rules — pairwise match-space subsumption: a rule whose
//    match space is covered by an earlier terminal (ACCEPT/DROP/RETURN) rule
//    in the same chain can never fire. Label sets (including negation and
//    SYSHIGH) are expanded against the MAC policy; -m modules compare via
//    MatchModule::Subsumes. Also: rules whose label sets expand to the empty
//    set, and rules unreachable for every op that could enter their chain.
//  * JUMP-graph validation — undefined jump targets, jump cycles, chains no
//    jump reaches, RETURN in a root chain, and the kMaxChainDepth bound.
//  * State-protocol lints — STATE checks of keys no rule sets, STATE --set
//    of keys no rule checks, and matches/targets whose context (signal
//    numbers, syscall args, symlink targets, ...) is never supplied by any
//    op that reaches them.
//  * Cacheability lints — modules claiming CacheableByKey() while their
//    Needs() mask includes context outside the verdict-cache key (link
//    targets, the full user stack, interpreter frames): the verdict cache
//    would serve stale decisions after the un-keyed input changes.
#ifndef SRC_ANALYSIS_ANALYZER_H_
#define SRC_ANALYSIS_ANALYZER_H_

#include "src/analysis/diagnostics.h"
#include "src/core/engine.h"
#include "src/sim/mac_policy.h"

namespace pf::analysis {

struct AnalyzerOptions {
  bool shadowing = true;
  bool jump_graph = true;
  bool state_protocol = true;
  bool cacheability = true;
  int max_depth = core::kMaxChainDepth;
};

// Analyzes one compiled snapshot against the MAC policy the engine would
// expand SYSHIGH / negated label sets with. The report is sorted by locus.
AnalysisReport AnalyzeRuleset(const core::CompiledRuleset& rs,
                              const sim::MacPolicy& policy,
                              const AnalyzerOptions& opts = {});

// Compiles the engine's *staging* rule base (uncommitted edits included —
// exactly what pftables -L shows and --check gates on) and analyzes it.
AnalysisReport AnalyzeEngine(core::Engine& engine, const AnalyzerOptions& opts = {});

}  // namespace pf::analysis

#endif  // SRC_ANALYSIS_ANALYZER_H_
