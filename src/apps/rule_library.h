// The shipped rule base: the paper's Table 5 rules R1-R12 (verbatim), the
// attack-specific rule templates T1/T2, the system-wide safe_open-equivalent
// link rules, and helpers to compose a default rule base — the role the
// paper assigns to OS distributors (§6.3.2).
#ifndef SRC_APPS_RULE_LIBRARY_H_
#define SRC_APPS_RULE_LIBRARY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pf::apps {

class RuleLibrary {
 public:
  // R1-R4: rules suggested by runtime analysis (untrusted library load,
  // python module load, libdbus connect, PHP file inclusion).
  static std::vector<std::string> RuntimeAnalysisRules();

  // R5-R7: rules generated from known vulnerabilities (D-Bus TOCTTOU,
  // java untrusted config), including the FILE_SETATTR generalization of
  // R6 (a swapped-in target may not be a socket).
  static std::vector<std::string> KnownVulnerabilityRules();

  // R8: Apache SymLinksIfOwnerMatch as a Process Firewall rule.
  static std::string ApacheSymlinkOwnerRule();

  // R9-R12: non-reentrant signal handler protection (system-wide).
  static std::vector<std::string> SignalRaceRules();

  // System-wide safe_open equivalent: during pathname resolution, drop
  // traversal of adversary-writable symlinks whose target belongs to a
  // different owner (Chari-style link policy, per component, race-free).
  static std::vector<std::string> SafeOpenRules();

  // Template T1: restrict an entrypoint to a set of resource labels.
  static std::string TemplateT1(const std::string& program, uint64_t entrypoint,
                                const std::string& resource_set, const std::string& op);

  // Template T2: TOCTTOU check/use pairing via the STATE module. Returns
  // the record rule and the compare rule.
  static std::vector<std::string> TemplateT2(const std::string& program,
                                             uint64_t check_entrypoint,
                                             uint64_t use_entrypoint,
                                             const std::string& check_op,
                                             const std::string& use_op,
                                             const std::string& key);

  // Everything above: the deployed rule base used in the security
  // evaluation (Table 4).
  static std::vector<std::string> DefaultRuleBase();
};

}  // namespace pf::apps

#endif  // SRC_APPS_RULE_LIBRARY_H_
