// Entry functions for the registered binaries (what execve runs), plus the
// installer wiring them into the kernel's binary registry.
#ifndef SRC_APPS_PROGRAMS_H_
#define SRC_APPS_PROGRAMS_H_

#include "src/sim/kernel.h"

namespace pf::apps {

// Registers entry functions for every binary in the base system image:
// /bin/true, /bin/false, /bin/sh (supports "sh -c <prog> [args...]"), the
// interpreters, and simple default mains for the daemons. Every dynamic
// program begins by running the simulated ld.so (Ldso::LinkAll), so
// fork+execve benchmarks include realistic dynamic-linking work.
void InstallPrograms(sim::Kernel& kernel);

}  // namespace pf::apps

#endif  // SRC_APPS_PROGRAMS_H_
