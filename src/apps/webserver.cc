#include "src/apps/webserver.h"

#include "src/apps/entrypoints.h"
#include "src/sim/sysimage.h"

namespace pf::apps {

using sim::Proc;
using sim::StatBuf;
using sim::UserFrame;

bool Webserver::OwnerMatchWalk(Proc& proc, const std::string& path) {
  // Walk every prefix; if a component is a symlink, the link and its target
  // must share an owner (Apache's SymLinksIfOwnerMatch). The documentation
  // itself notes this is racy — the checks and the final open are separate
  // system calls.
  std::string prefix;
  size_t i = 1;
  while (i <= path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) {
      j = path.size();
    }
    if (j > i) {
      prefix = path.substr(0, j);
      UserFrame check(proc, sim::kApache, kApacheCheckStat);
      StatBuf lbuf;
      if (proc.Lstat(prefix, &lbuf) != 0) {
        return false;
      }
      if (lbuf.IsSymlink()) {
        StatBuf target;
        if (proc.Stat(prefix, &target) != 0) {
          return false;
        }
        if (target.uid != lbuf.uid) {
          return false;
        }
      }
    }
    i = j + 1;
  }
  return true;
}

int Webserver::HandleRequest(Proc& proc, const std::string& url, std::string* content) {
  if (config_.filter_traversal && url.find("..") != std::string::npos) {
    return 403;
  }
  std::string path = config_.docroot + url;
  if (config_.symlinks_if_owner_match && !OwnerMatchWalk(proc, path)) {
    return 403;
  }
  int64_t fd;
  {
    // The URL-to-file mapping call site (rule R8's entrypoint): symlink
    // traversal during this open fires LNK_FILE_READ here.
    UserFrame serve(proc, sim::kApache, kApacheLinkRead);
    fd = proc.Open(path, sim::kORdOnly);
  }
  if (fd < 0) {
    return fd == sim::SysError(sim::Err::kAcces) ? 403 : 404;
  }
  std::string data;
  int64_t n = proc.Read(static_cast<int>(fd), &data, 1u << 20);
  proc.Close(static_cast<int>(fd));
  if (n < 0) {
    return 500;
  }
  // Emulated request processing (see WebConfig::request_work).
  if (config_.request_work > 0) {
    volatile uint64_t digest = 0x811c9dc5;
    for (int w = 0; w < config_.request_work; ++w) {
      uint64_t d = digest;
      for (char ch : url) {
        d = (d ^ static_cast<uint8_t>(ch)) * 0x01000193;
      }
      for (char ch : data) {
        d = (d ^ static_cast<uint8_t>(ch)) * 0x01000193;
      }
      digest = d;
    }
  }
  if (config_.access_log) {
    int64_t log_fd =
        proc.Open("/var/log/apache-access.log", sim::kOWrOnly | sim::kOCreat | sim::kOAppend);
    if (log_fd >= 0) {
      proc.Write(static_cast<int>(log_fd), "GET " + url + " 200\n");
      proc.Close(static_cast<int>(log_fd));
    }
  }
  if (content != nullptr) {
    *content = std::move(data);
  }
  return 200;
}

bool Webserver::Authenticate(Proc& proc, const std::string& user) {
  int64_t fd;
  {
    UserFrame auth(proc, sim::kApache, kApacheAuthOpen);
    fd = proc.Open("/etc/passwd", sim::kORdOnly);
  }
  if (fd < 0) {
    return false;
  }
  std::string data;
  proc.Read(static_cast<int>(fd), &data, 1u << 20);
  proc.Close(static_cast<int>(fd));
  return data.find(user + ":") != std::string::npos;
}

}  // namespace pf::apps
