// The open() variants compared in paper Figure 4.
//
//   OpenPlain     open(path)                                 (no defense)
//   OpenNofollow  open(path, O_NOFOLLOW)                     (non-portable)
//   OpenNolink    lstat+open (Figure 1(a) lines 3-6)         (racy)
//   OpenRace      lstat+open+fstat+lstat (Figure 1(a) full)  (final component only)
//   SafeOpen      Chari-style per-component checking: ~4 extra system calls
//                 per pathname component [Chari et al., NDSS'10]
//   SafeOpenPF    plain open; the equivalent defense enforced by Process
//                 Firewall rules on each LNK_FILE_READ during resolution
//
// All run from the calling process's executable image: call sites
// kSafeOpenCheck (stat-family) and kSafeOpenUse (open).
#ifndef SRC_APPS_SAFE_OPEN_H_
#define SRC_APPS_SAFE_OPEN_H_

#include <string>

#include "src/sim/sched.h"

namespace pf::apps {

int64_t OpenPlain(sim::Proc& proc, const std::string& path);
int64_t OpenNofollow(sim::Proc& proc, const std::string& path);
int64_t OpenNolink(sim::Proc& proc, const std::string& path);
int64_t OpenRace(sim::Proc& proc, const std::string& path);
int64_t SafeOpen(sim::Proc& proc, const std::string& path);
int64_t SafeOpenPF(sim::Proc& proc, const std::string& path);

}  // namespace pf::apps

#endif  // SRC_APPS_SAFE_OPEN_H_
