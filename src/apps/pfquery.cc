// pfquery: policy queries over a rule base's symbolic decision space.
//
// Answers "what would the firewall decide for requests shaped like X?" by
// intersecting a partial request description with the symbolic model's
// partition (src/analysis/symbolic/): every overlapping region prints its
// verdict, the rule that decides it, and one concrete witness request.
// Reachability mode answers "which inputs can ever enter chain C?".
//
//   pfquery --library -o FILE_OPEN -d shadow_t     who can open shadow files?
//   pfquery rules.dump -p /usr/bin/php5 --want drop
//   pfquery --library --reach signal_chain          chain reachability
//
// Exit status: 0 query answered, 1 bad query (unknown label/program/op),
// 2 the rule base failed to load.

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/symbolic/query.h"
#include "src/apps/programs.h"
#include "src/apps/rule_library.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"

namespace {

void PrintUsage(std::FILE* to) {
  std::fputs(
      "usage: pfquery [--library | rule-file] [query...]\n"
      "\n"
      "query: [-o OP] [-s subject_label] [-d object_label] [-p program]\n"
      "       [-i entrypoint] [--ino N] [--want allow|drop|indeterminate]\n"
      "       [--reach chain] [--max N]\n"
      "\n"
      "Prints every decision-space region overlapping the query with its\n"
      "verdict, deciding rule, and one concrete witness request. With\n"
      "--reach, prints which ops/entrypoints/subjects can enter the chain.\n",
      to);
}

std::optional<uint64_t> ParseNum(const std::string& token) {
  try {
    return std::stoull(token, nullptr, 0);
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

int main(int argc, char** argv) {
  namespace sym = pf::analysis::symbolic;
  bool library = false;
  std::string file;
  std::string reach_chain;
  std::size_t max_matches = 32;
  sym::QuerySpec spec;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pfquery: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--library") {
      library = true;
    } else if (arg == "-h" || arg == "--help") {
      PrintUsage(stdout);
      return 0;
    } else if (arg == "-o") {
      const char* v = next("-o");
      if (v == nullptr) return 1;
      std::optional<pf::sim::Op> op = pf::sim::OpFromName(v);
      if (!op) {
        std::fprintf(stderr, "pfquery: unknown op %s\n", v);
        return 1;
      }
      spec.op = *op;
    } else if (arg == "-s") {
      const char* v = next("-s");
      if (v == nullptr) return 1;
      spec.subject = v;
    } else if (arg == "-d") {
      const char* v = next("-d");
      if (v == nullptr) return 1;
      spec.object = v;
    } else if (arg == "-p") {
      const char* v = next("-p");
      if (v == nullptr) return 1;
      spec.program = v;
    } else if (arg == "-i") {
      const char* v = next("-i");
      if (v == nullptr) return 1;
      std::optional<uint64_t> n = ParseNum(v);
      if (!n) {
        std::fprintf(stderr, "pfquery: bad entrypoint %s\n", v);
        return 1;
      }
      spec.entrypoint = *n;
    } else if (arg == "--ino") {
      const char* v = next("--ino");
      if (v == nullptr) return 1;
      std::optional<uint64_t> n = ParseNum(v);
      if (!n) {
        std::fprintf(stderr, "pfquery: bad inode %s\n", v);
        return 1;
      }
      spec.ino = *n;
    } else if (arg == "--want") {
      const char* v = next("--want");
      if (v == nullptr) return 1;
      const std::string want = v;
      if (want == "allow" || want == "ALLOW") {
        spec.want = sym::OutcomeKind::kAllow;
      } else if (want == "drop" || want == "DROP") {
        spec.want = sym::OutcomeKind::kDrop;
      } else if (want == "indeterminate" || want == "INDETERMINATE") {
        spec.want = sym::OutcomeKind::kIndeterminate;
      } else {
        std::fprintf(stderr, "pfquery: --want allow|drop|indeterminate\n");
        return 1;
      }
    } else if (arg == "--reach") {
      const char* v = next("--reach");
      if (v == nullptr) return 1;
      reach_chain = v;
    } else if (arg == "--max") {
      const char* v = next("--max");
      if (v == nullptr) return 1;
      std::optional<uint64_t> n = ParseNum(v);
      if (!n) return 1;
      max_matches = static_cast<std::size_t>(*n);
    } else if (!arg.empty() && arg[0] != '-') {
      file = arg;
    } else {
      std::fprintf(stderr, "pfquery: unknown flag %s\n", arg.c_str());
      PrintUsage(stderr);
      return 1;
    }
  }
  if (!library && file.empty()) {
    library = true;
  }

  pf::sim::Kernel kernel(0x5eed);
  pf::sim::BuildSysImage(kernel);
  pf::apps::InstallPrograms(kernel);
  pf::core::Engine engine(kernel, {});
  pf::core::Pftables front(&engine);

  std::vector<std::string> lines;
  if (library) {
    lines = pf::apps::RuleLibrary::DefaultRuleBase();
  } else {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "pfquery: cannot open %s\n", file.c_str());
      return 2;
    }
    for (std::string line; std::getline(in, line);) {
      lines.push_back(line);
    }
  }
  if (pf::core::Status s = front.ExecAll(lines); !s.ok()) {
    std::fprintf(stderr, "pfquery: load failed: %s\n", s.message().c_str());
    return 2;
  }

  const sym::SymbolicModel model =
      sym::BuildModel(*engine.CompileRuleset(), engine.policy());

  if (!reach_chain.empty()) {
    const sym::ReachResult reach = sym::ChainReachability(model, reach_chain);
    if (!reach.found) {
      std::fprintf(stderr, "pfquery: no such chain: %s\n", reach_chain.c_str());
      return 1;
    }
    if (!reach.entered) {
      std::printf("chain %s: unreachable (no request can enter it)\n",
                  reach_chain.c_str());
      return 0;
    }
    std::printf("chain %s: reachable\n  ops:", reach_chain.c_str());
    for (const std::string& op : reach.ops) {
      std::printf(" %s", op.c_str());
    }
    std::printf("\n  entrypoints:");
    for (const std::string& e : reach.entrypoints) {
      std::printf(" %s", e.c_str());
    }
    std::printf("\n  subjects:");
    for (const std::string& s : reach.subjects) {
      std::printf(" %s", s.c_str());
    }
    std::printf("\n");
    return 0;
  }

  const sym::QueryResult result = sym::RunQuery(model, spec);
  if (!result.ok) {
    std::fprintf(stderr, "pfquery: %s\n", result.error.c_str());
    return 1;
  }
  std::size_t shown = 0;
  for (const sym::QueryMatch& m : result.matches) {
    if (shown++ >= max_matches) {
      std::printf("... %zu more region(s)\n", result.matches.size() - max_matches);
      break;
    }
    std::printf("%s %s (decided by %s)\n  witness: %s\n",
                std::string(pf::sim::OpName(m.op)).c_str(),
                std::string(sym::OutcomeName(m.outcome)).c_str(),
                m.decided_by.c_str(), m.witness.c_str());
    for (const std::string& effect : m.effects) {
      std::printf("  effect: %s\n", effect.c_str());
    }
  }
  std::printf("pfquery: %zu matching region(s) over %zu total [model %llu us]\n",
              result.matches.size(), model.region_count,
              static_cast<unsigned long long>(model.build_us));
  return 0;
}
