// Dynamic linker model (Figure 1(b) of the paper).
//
// Reproduces ld.so's library search behaviour: for setuid processes the
// dangerous environment variables are unset; the search path is built from
// LD_LIBRARY_PATH, the binary's DT_RUNPATH, and the system default
// directories; each needed library is opened from the first directory where
// it exists and mapped into the process. The open happens at entrypoint
// kLdsoOpenLibrary inside the mapped ld.so image — the call site rule R1
// guards.
#ifndef SRC_APPS_LDSO_H_
#define SRC_APPS_LDSO_H_

#include <string>
#include <vector>

#include "src/sim/sched.h"

namespace pf::apps {

struct LinkResult {
  bool ok = false;
  // Library name -> path it was loaded from.
  std::vector<std::pair<std::string, std::string>> loaded;
  std::string failed_library;  // first library that could not be loaded
};

class Ldso {
 public:
  // Builds the search path for `proc` exactly as ld.so would (Figure 1(b)):
  // unset LD_* for setid processes, then LD_LIBRARY_PATH entries, then the
  // executable's RUNPATH, then /lib and /usr/lib.
  static std::vector<std::string> BuildSearchPath(sim::Proc& proc);

  // Resolves and maps every DT_NEEDED library of the process's executable.
  static LinkResult LinkAll(sim::Proc& proc);

  // Loads one library by name through the search path; returns the path it
  // was loaded from (empty on failure).
  static std::string LoadLibrary(sim::Proc& proc, const std::string& name);
};

}  // namespace pf::apps

#endif  // SRC_APPS_LDSO_H_
