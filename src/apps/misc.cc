#include "src/apps/misc.h"

#include "src/apps/entrypoints.h"
#include "src/apps/ldso.h"
#include "src/sim/sysimage.h"

namespace pf::apps {

using sim::Proc;
using sim::UserFrame;

std::string JavaLoadConfig(Proc& proc) {
  for (const std::string& candidate : {std::string("java.conf"), std::string("/etc/java.conf")}) {
    UserFrame config_site(proc, sim::kJava, kJavaConfigOpen);
    int64_t fd = proc.Open(candidate, sim::kORdOnly);
    if (fd < 0) {
      continue;
    }
    std::string data;
    proc.Read(static_cast<int>(fd), &data, 4096);
    proc.Close(static_cast<int>(fd));
    return candidate;
  }
  return "";
}

std::string IcecatStart(Proc& proc) {
  // The packaging bug: the launcher prepends the working directory to the
  // library search path.
  std::string cur = proc.Getenv("LD_LIBRARY_PATH");
  proc.Setenv("LD_LIBRARY_PATH", cur.empty() ? "." : "." + (":" + cur));
  return Ldso::LoadLibrary(proc, "libc-2.15.so");
}

std::string ShellResolveInPath(Proc& proc, const std::string& cmd) {
  if (!cmd.empty() && cmd[0] == '/') {
    return cmd;
  }
  std::string path_env = proc.Getenv("PATH");
  if (path_env.empty()) {
    path_env = "/bin:/usr/bin";
  }
  size_t i = 0;
  while (i <= path_env.size()) {
    size_t j = path_env.find(':', i);
    if (j == std::string::npos) {
      j = path_env.size();
    }
    std::string dir = path_env.substr(i, j - i);
    if (dir.empty()) {
      dir = ".";  // an empty PATH entry means the working directory
    }
    std::string candidate = dir + "/" + cmd;
    UserFrame probe_site(proc, sim::kBinSh, kShellExec);
    sim::StatBuf st;
    if (proc.Stat(candidate, &st) == 0 && (st.mode & 0111) != 0) {
      return candidate;
    }
    i = j + 1;
  }
  return "";
}

int64_t ShellExecCommand(Proc& proc, const std::string& cmd,
                         std::vector<std::string> argv) {
  std::string resolved = ShellResolveInPath(proc, cmd);
  if (resolved.empty()) {
    return sim::SysError(sim::Err::kNoEnt);
  }
  UserFrame exec_site(proc, sim::kBinSh, kShellExec);
  return proc.Execve(resolved, std::move(argv), proc.task().env);
}

int64_t InitScriptWritePidfile(Proc& proc, const std::string& path) {
  sim::InterpFrame script(proc, sim::InterpLang::kBash, "/etc/init.d/rcS", 12);
  UserFrame open_site(proc, sim::kBinSh, kShellOpen);
  int64_t fd = proc.Open(path, sim::kOWrOnly | sim::kOCreat | sim::kOTrunc, 0644);
  if (fd >= 0) {
    proc.Write(static_cast<int>(fd), "4242\n");
  }
  return fd;
}

}  // namespace pf::apps
