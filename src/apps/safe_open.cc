#include "src/apps/safe_open.h"

#include "src/apps/entrypoints.h"
#include "src/sim/error.h"

namespace pf::apps {

using sim::Proc;
using sim::StatBuf;
using sim::UserFrame;

namespace {

// Splits "/a/b/c" into cumulative prefixes "/a", "/a/b", "/a/b/c".
std::vector<std::string> Prefixes(const std::string& path) {
  std::vector<std::string> out;
  std::string cur;
  size_t i = 0;
  if (!path.empty() && path[0] == '/') {
    i = 1;
  }
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) {
      j = path.size();
    }
    if (j > i) {
      cur += "/" + path.substr(i, j - i);
      out.push_back(cur);
    }
    i = j + 1;
  }
  return out;
}

}  // namespace

int64_t OpenPlain(Proc& proc, const std::string& path) {
  UserFrame use(proc, proc.task().exe, kSafeOpenUse);
  return proc.Open(path, sim::kORdOnly);
}

int64_t OpenNofollow(Proc& proc, const std::string& path) {
  UserFrame use(proc, proc.task().exe, kSafeOpenUse);
  return proc.Open(path, sim::kORdOnly | sim::kONofollow);
}

int64_t OpenNolink(Proc& proc, const std::string& path) {
  StatBuf lbuf;
  {
    UserFrame check(proc, proc.task().exe, kSafeOpenCheck);
    if (int64_t rv = proc.Lstat(path, &lbuf); rv != 0) {
      return rv;
    }
  }
  if (lbuf.IsSymlink()) {
    return sim::SysError(sim::Err::kLoop);
  }
  UserFrame use(proc, proc.task().exe, kSafeOpenUse);
  return proc.Open(path, sim::kORdOnly);  // the check-use race lives here
}

int64_t OpenRace(Proc& proc, const std::string& path) {
  // Figure 1(a) in full: lstat, open, fstat-compare, lstat-compare.
  StatBuf lbuf;
  {
    UserFrame check(proc, proc.task().exe, kSafeOpenCheck);
    if (int64_t rv = proc.Lstat(path, &lbuf); rv != 0) {
      return rv;
    }
  }
  if (lbuf.IsSymlink()) {
    return sim::SysError(sim::Err::kLoop);
  }
  int64_t fd;
  {
    UserFrame use(proc, proc.task().exe, kSafeOpenUse);
    fd = proc.Open(path, sim::kORdOnly);
  }
  if (fd < 0) {
    return fd;
  }
  UserFrame check(proc, proc.task().exe, kSafeOpenCheck);
  StatBuf fbuf;
  if (proc.Fstat(static_cast<int>(fd), &fbuf) != 0 || fbuf.id() != lbuf.id()) {
    proc.Close(static_cast<int>(fd));
    return sim::SysError(sim::Err::kAgain);  // race detected
  }
  // The "cryogenic sleep" re-check: while the file stays open its inode
  // number cannot recycle, so a second lstat pins the identity.
  StatBuf lbuf2;
  if (proc.Lstat(path, &lbuf2) != 0 || lbuf2.id() != fbuf.id()) {
    proc.Close(static_cast<int>(fd));
    return sim::SysError(sim::Err::kAgain);
  }
  return fd;
}

int64_t SafeOpen(Proc& proc, const std::string& path) {
  // Chari-style safe_open: validate each pathname component. For every
  // prefix: lstat it; if it is a symlink, stat the target and require the
  // link's owner to match the target's owner (or be root). This costs ~4
  // extra system calls per component — the cost Figure 4 measures.
  for (const std::string& prefix : Prefixes(path)) {
    UserFrame check(proc, proc.task().exe, kSafeOpenCheck);
    StatBuf lbuf;
    if (int64_t rv = proc.Lstat(prefix, &lbuf); rv != 0) {
      return rv;
    }
    StatBuf sbuf;
    if (int64_t rv = proc.Stat(prefix, &sbuf); rv != 0) {
      return rv;
    }
    if (lbuf.IsSymlink()) {
      if (lbuf.uid != sbuf.uid && lbuf.uid != sim::kRootUid) {
        return sim::SysError(sim::Err::kLoop);  // untrusted link
      }
    }
    // Re-check after resolving (the double-check against races).
    StatBuf lbuf2;
    if (int64_t rv = proc.Lstat(prefix, &lbuf2); rv != 0) {
      return rv;
    }
    if (lbuf2.id() != lbuf.id()) {
      return sim::SysError(sim::Err::kAgain);
    }
    StatBuf sbuf2;
    if (int64_t rv = proc.Stat(prefix, &sbuf2); rv != 0) {
      return rv;
    }
    if (sbuf2.id() != sbuf.id()) {
      return sim::SysError(sim::Err::kAgain);
    }
  }
  int64_t fd;
  {
    UserFrame use(proc, proc.task().exe, kSafeOpenUse);
    fd = proc.Open(path, sim::kORdOnly);
  }
  if (fd < 0) {
    return fd;
  }
  // Final identity check on the opened descriptor.
  UserFrame check(proc, proc.task().exe, kSafeOpenCheck);
  StatBuf fbuf, lfinal;
  if (proc.Fstat(static_cast<int>(fd), &fbuf) != 0 ||
      proc.Stat(path, &lfinal) != 0 || fbuf.id() != lfinal.id()) {
    proc.Close(static_cast<int>(fd));
    return sim::SysError(sim::Err::kAgain);
  }
  return fd;
}

int64_t SafeOpenPF(Proc& proc, const std::string& path) {
  // One plain open. The per-component link checks run inside the kernel's
  // pathname resolution, enforced by Process Firewall rules on each
  // LNK_FILE_READ (see RuleLibrary::SafeOpenRules) — no extra system calls
  // and no check-use window.
  UserFrame use(proc, proc.task().exe, kSafeOpenUse);
  return proc.Open(path, sim::kORdOnly);
}

}  // namespace pf::apps
