// pftrace: attach to a live Process Firewall engine and stream its
// per-decision trace records (ftrace for the PF).
//
// Boots the simulated system, loads a rule base (the shipped paper library
// by default, or pftables-save dumps), enables the engine's tracepoints,
// drives a workload through the authorization hooks, and exports what the
// per-worker flight-recorder rings captured:
//
//   pftrace                                text records for a mixed workload
//   pftrace --format=jsonl --count=1000    one JSON object per record
//   pftrace --format=chrome --out=t.json   chrome://tracing / Perfetto file
//   pftrace --events=decision,vcache       select tracepoint streams
//   pftrace --ops=FILE_OPEN,DIR_SEARCH     per-op filter (pftables -o names)
//   pftrace --follow                       drain concurrently from a second
//                                          thread while the workload runs
//   pftrace --prom                         append Prometheus exposition text
//
// Exit status: 0 success, 2 bad usage / rule base failed to load.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/programs.h"
#include "src/apps/rule_library.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sched.h"
#include "src/sim/sysimage.h"
#include "src/trace/export.h"
#include "src/trace/hub.h"

namespace {

void PrintUsage(std::FILE* to) {
  std::fputs(
      "usage: pftrace [options] [rule-file...]\n"
      "\n"
      "Trace Process Firewall decisions on a booted simulated system and\n"
      "export the records as text, JSON-lines, or Chrome trace_event JSON.\n"
      "\n"
      "  --format=text|jsonl|chrome  export format (default text)\n"
      "  --events=LIST               comma list of decision,rule,ctx,vcache\n"
      "                              (default all)\n"
      "  --ops=LIST                  comma list of op names (FILE_OPEN, ...);\n"
      "                              default all ops\n"
      "  --workload=stat|open|mixed  syscalls to drive (default mixed)\n"
      "  --count=N                   workload iterations (default 200)\n"
      "  --follow                    drain from a consumer thread while the\n"
      "                              workload runs (exercises the SPSC rings)\n"
      "  --prom                      also print Engine::MetricsText()\n"
      "  --out=FILE                  write the export to FILE, not stdout\n"
      "  --library                   load the shipped paper rule base (the\n"
      "                              default when no rule-file is given)\n"
      "  rule-file                   a pftables-save format dump\n",
      to);
}

// Splits "a,b,c" on commas, dropping empties.
std::vector<std::string> SplitList(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  std::istringstream in(s);
  while (std::getline(in, cur, ',')) {
    if (!cur.empty()) {
      out.push_back(cur);
    }
  }
  return out;
}

bool ParseEvents(const std::string& list, uint32_t* mask) {
  *mask = 0;
  for (const std::string& name : SplitList(list)) {
    if (name == "decision") {
      *mask |= pf::trace::EventBit(pf::trace::Event::kDecision);
    } else if (name == "rule") {
      *mask |= pf::trace::EventBit(pf::trace::Event::kRule);
    } else if (name == "ctx" || name == "ctx_fetch") {
      *mask |= pf::trace::EventBit(pf::trace::Event::kCtxFetch);
    } else if (name == "vcache") {
      *mask |= pf::trace::EventBit(pf::trace::Event::kVcache);
    } else {
      std::fprintf(stderr, "pftrace: unknown event '%s'\n", name.c_str());
      return false;
    }
  }
  return true;
}

bool ParseOps(const std::string& list, uint64_t* mask) {
  *mask = 0;
  for (const std::string& name : SplitList(list)) {
    auto op = pf::sim::OpFromName(name);
    if (!op) {
      std::fprintf(stderr, "pftrace: unknown op '%s'\n", name.c_str());
      return false;
    }
    *mask |= 1ull << static_cast<uint32_t>(*op);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string workload = "mixed";
  std::string out_path;
  uint32_t event_mask = pf::trace::kAllEvents;
  uint64_t op_mask = ~0ull;
  int count = 200;
  bool follow = false;
  bool prom = false;
  bool library = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) {
      return arg.substr(std::strlen(flag));
    };
    if (arg.rfind("--format=", 0) == 0) {
      format = value("--format=");
    } else if (arg.rfind("--events=", 0) == 0) {
      if (!ParseEvents(value("--events="), &event_mask)) {
        return 2;
      }
    } else if (arg.rfind("--ops=", 0) == 0) {
      if (!ParseOps(value("--ops="), &op_mask)) {
        return 2;
      }
    } else if (arg.rfind("--workload=", 0) == 0) {
      workload = value("--workload=");
    } else if (arg.rfind("--count=", 0) == 0) {
      count = std::atoi(value("--count=").c_str());
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = value("--out=");
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg == "--prom") {
      prom = true;
    } else if (arg == "--library") {
      library = true;
    } else if (arg == "-h" || arg == "--help") {
      PrintUsage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "pftrace: unknown flag %s\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (format != "text" && format != "jsonl" && format != "chrome") {
    std::fprintf(stderr, "pftrace: unknown format '%s'\n", format.c_str());
    return 2;
  }
  if (workload != "stat" && workload != "open" && workload != "mixed") {
    std::fprintf(stderr, "pftrace: unknown workload '%s'\n", workload.c_str());
    return 2;
  }
  if (count < 1) {
    count = 1;
  }
  if (!library && files.empty()) {
    library = true;
  }
  if (!pf::trace::kTraceCompiledIn) {
    std::fprintf(stderr,
                 "pftrace: tracing is compiled out of this build (PF_NO_TRACE); "
                 "no records will be captured\n");
  }

  using pf::core::Status;

  // Boot exactly like pfcheck so labels and program paths resolve the same
  // way the security evaluation resolves them.
  pf::sim::Kernel kernel(0x5eed);
  pf::sim::BuildSysImage(kernel);
  pf::apps::InstallPrograms(kernel);
  pf::core::Engine* engine = pf::core::InstallProcessFirewall(kernel);
  pf::core::Pftables pftables(engine);

  if (library) {
    Status s = pftables.ExecAll(pf::apps::RuleLibrary::DefaultRuleBase());
    if (!s.ok()) {
      std::fprintf(stderr, "pftrace: loading shipped library failed: %s\n",
                   s.message().c_str());
      return 2;
    }
  }
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "pftrace: cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream dump;
    dump << in.rdbuf();
    Status s = pftables.Restore(dump.str());
    if (!s.ok()) {
      std::fprintf(stderr, "pftrace: %s: %s\n", path.c_str(), s.message().c_str());
      return 2;
    }
  }

  engine->trace().SetOpFilter(op_mask);
  engine->trace().Enable(event_mask);

  // With --follow a second thread drains the rings while the workload emits
  // into them — the live `pftrace -f` mode, and incidentally a end-to-end
  // exercise of the producer/consumer protocol. Followed records are
  // rendered immediately; the final export covers only what the follower
  // had not yet claimed.
  std::vector<pf::trace::TraceRecord> followed;
  std::atomic<bool> stop{false};
  std::thread follower;
  if (follow) {
    follower = std::thread([&] {
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<pf::trace::TraceRecord> batch = engine->trace().Drain();
        followed.insert(followed.end(), batch.begin(), batch.end());
        std::this_thread::yield();
      }
    });
  }

  // Drive the workload as a spawned process with a user-space frame so
  // entrypoint rules participate, mirroring the lmbench harness.
  pf::sim::Scheduler sched(kernel);
  pf::sim::SpawnOpts sopts;
  sopts.name = "pftrace-workload";
  sopts.exe = pf::sim::kBinTrue;
  pf::sim::Pid pid = sched.Spawn(sopts, [&](pf::sim::Proc& p) {
    pf::sim::UserFrame frame(p, pf::sim::kBinTrue, 0x4000);
    pf::sim::StatBuf st;
    for (int i = 0; i < count; ++i) {
      if (workload == "stat" || workload == "mixed") {
        p.Stat("/etc/passwd", &st);
      }
      if (workload == "open" || workload == "mixed") {
        int64_t fd = p.Open("/etc/passwd", pf::sim::kORdOnly);
        if (fd >= 0) {
          p.Close(static_cast<int>(fd));
        }
      }
    }
  });
  sched.RunUntilExit(pid);

  if (follow) {
    stop.store(true, std::memory_order_release);
    follower.join();
  }

  std::vector<pf::trace::TraceRecord> records = std::move(followed);
  std::vector<pf::trace::TraceRecord> tail = engine->trace().Drain();
  records.insert(records.end(), tail.begin(), tail.end());

  pf::trace::NameTable names{&kernel.labels()};
  std::string rendered;
  if (format == "text") {
    rendered = pf::trace::RenderText(records, names);
  } else if (format == "jsonl") {
    rendered = pf::trace::RenderJsonLines(records, names);
  } else {
    rendered = pf::trace::RenderChromeTrace(records, names);
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "pftrace: cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << rendered;
  } else {
    std::fputs(rendered.c_str(), stdout);
  }

  if (prom) {
    std::fputs(engine->MetricsText().c_str(), stdout);
  }

  std::fprintf(stderr, "pftrace: %zu record(s), %llu dropped\n", records.size(),
               static_cast<unsigned long long>(engine->trace().drops()));
  return 0;
}
