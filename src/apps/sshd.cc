#include "src/apps/sshd.h"

#include "src/apps/entrypoints.h"
#include "src/sim/sysimage.h"

namespace pf::apps {

using sim::Proc;
using sim::UserFrame;

void Sshd::InstallGraceAlarmHandler(Proc& proc, SshdState* state) {
  proc.Sigaction(sim::kSigAlrm, [&proc, state](sim::SigNum) {
    if (state->in_cleanup) {
      // Re-entered the non-reentrant cleanup: heap corruption in the real
      // sshd; here we just record that the exploit window was hit.
      state->corrupted = true;
    }
    state->in_cleanup = true;
    ++state->handled;
    // Scheduling point inside the critical section (the adversary times the
    // second signal here), followed by the cleanup's logging system calls —
    // each a delivery point for the racing signal.
    proc.Checkpoint("sshd-cleanup");
    {
      UserFrame log_site(proc, sim::kSshd, kSshdLogWrite);
      int64_t fd = proc.Open("/var/log/auth.log", sim::kOWrOnly | sim::kOCreat |
                                                      sim::kOAppend);
      if (fd >= 0) {
        proc.Write(static_cast<int>(fd), "grace alarm: closing connection\n");
        proc.Close(static_cast<int>(fd));
      }
    }
    state->in_cleanup = false;
  });
}

}  // namespace pf::apps
