#include "src/apps/dbus.h"

#include "src/apps/entrypoints.h"
#include "src/sim/sysimage.h"

namespace pf::apps {

using sim::Proc;
using sim::UserFrame;

int64_t DbusDaemon::PublishSocket(Proc& proc, const std::string& path,
                                  sim::FileMode final_mode) {
  int64_t fd = proc.Socket();
  if (fd < 0) {
    return fd;
  }
  {
    UserFrame bind_site(proc, sim::kDbusDaemon, kDbusBind);
    if (int64_t rv = proc.Bind(static_cast<int>(fd), path, 0755); rv != 0) {
      proc.Close(static_cast<int>(fd));
      return rv;
    }
  }
  proc.Listen(static_cast<int>(fd));
  // The race window between creating the socket and opening up its mode.
  proc.Checkpoint("dbus-bound");
  {
    UserFrame chmod_site(proc, sim::kDbusDaemon, kDbusSetattr);
    if (int64_t rv = proc.Chmod(path, final_mode); rv != 0) {
      return rv;
    }
  }
  return 0;
}

int64_t Libdbus::ConnectSystemBus(Proc& proc) {
  // The E3 flaw: libdbus did not expect setuid callers, so the address
  // variable is honored unconditionally.
  std::string path = proc.Getenv("DBUS_SYSTEM_BUS_ADDRESS");
  if (path.empty()) {
    path = kSystemBusPath;
  }
  int64_t fd = proc.Socket();
  if (fd < 0) {
    return fd;
  }
  int64_t rv;
  {
    UserFrame connect_site(proc, sim::kLibDbus, kLibdbusConnect);
    rv = proc.Connect(static_cast<int>(fd), path);
  }
  if (rv != 0) {
    proc.Close(static_cast<int>(fd));
    return rv;
  }
  return fd;
}

}  // namespace pf::apps
