#include "src/apps/interp.h"

#include "src/apps/entrypoints.h"
#include "src/sim/sysimage.h"

namespace pf::apps {

using sim::InterpFrame;
using sim::InterpLang;
using sim::Proc;
using sim::UserFrame;

namespace {
std::string DirOf(const std::string& path) {
  auto slash = path.rfind('/');
  return slash == std::string::npos || slash == 0 ? "/" : path.substr(0, slash);
}
}  // namespace

PhpInterp::PhpInterp(Proc& proc, const std::string& script)
    : proc_(proc), script_(script), script_dir_(DirOf(script)) {
  top_frame_ = std::make_unique<InterpFrame>(proc_, InterpLang::kPhp, script_, 1);
  // The interpreter opens the top-level script itself.
  UserFrame open_site(proc_, sim::kPhp, kPhpScriptOpen);
  int64_t fd = proc_.Open(script_, sim::kORdOnly);
  if (fd >= 0) {
    proc_.Close(static_cast<int>(fd));
  }
}

PhpInterp::~PhpInterp() = default;

std::optional<std::string> PhpInterp::Include(const std::string& name, uint32_t line) {
  // PHP resolves relative includes against the including script's directory.
  std::string path = (!name.empty() && name[0] == '/') ? name : script_dir_ + "/" + name;
  InterpFrame frame(proc_, InterpLang::kPhp, script_, line);
  int64_t fd;
  {
    // The include() implementation inside the interpreter binary: the call
    // site rule R4 pins to httpd_user_script_exec_t objects.
    UserFrame include_site(proc_, sim::kPhp, kPhpInclude);
    fd = proc_.Open(path, sim::kORdOnly);
  }
  if (fd < 0) {
    return std::nullopt;
  }
  std::string data;
  proc_.Read(static_cast<int>(fd), &data, 1u << 20);
  proc_.Close(static_cast<int>(fd));
  return data;
}

PythonInterp::PythonInterp(Proc& proc, const std::string& script)
    : proc_(proc), script_(script) {
  // CPython 2 sys.path: script directory (or cwd) first — exactly the
  // untrusted search path of E2 — then the standard library.
  sys_path_.push_back(script.empty() ? "." : DirOf(script));
  sys_path_.push_back("/usr/lib/python2.7");
  sys_path_.push_back("/usr/share/python-modules");
  top_frame_ = std::make_unique<InterpFrame>(proc_, InterpLang::kPython,
                                             script_.empty() ? "<stdin>" : script_, 1);
  if (!script_.empty()) {
    UserFrame open_site(proc_, sim::kPython, kPythonScriptOpen);
    int64_t fd = proc_.Open(script_, sim::kORdOnly);
    if (fd >= 0) {
      proc_.Close(static_cast<int>(fd));
    }
  }
}

PythonInterp::~PythonInterp() = default;

std::string PythonInterp::ImportModule(const std::string& name, uint32_t line) {
  InterpFrame frame(proc_, InterpLang::kPython, script_.empty() ? "<stdin>" : script_,
                    line);
  for (const std::string& dir : sys_path_) {
    std::string path = dir + "/" + name + ".py";
    int64_t fd;
    {
      UserFrame import_site(proc_, sim::kPython, kPythonImport);
      fd = proc_.Open(path, sim::kORdOnly);
    }
    if (fd < 0) {
      continue;
    }
    std::string data;
    proc_.Read(static_cast<int>(fd), &data, 1u << 20);
    proc_.Close(static_cast<int>(fd));
    return path;
  }
  return "";
}

}  // namespace pf::apps
