#include "src/apps/rule_library.h"

#include <sstream>

namespace pf::apps {

std::vector<std::string> RuleLibrary::RuntimeAnalysisRules() {
  return {
      // R1: only allow loading trusted library files by the dynamic linker.
      "pftables -p /lib/ld-2.15.so -i 0x596b -s SYSHIGH "
      "-d ~{lib_t|textrel_shlib_t|httpd_modules_t|ld_so_t} -o FILE_OPEN -j DROP",
      // R2: load only trusted python modules.
      "pftables -p /usr/bin/python2.7 -i 0x34f05 -s SYSHIGH -d ~{lib_t|usr_t} "
      "-o FILE_OPEN -j DROP",
      // R3: the D-Bus library connects only to the trusted server socket.
      "pftables -p /lib/libdbus-1.so.3 -i 0x39231 -s SYSHIGH "
      "-d ~{system_dbusd_var_run_t} -o UNIX_STREAM_SOCKET_CONNECT -j DROP",
      // R4: only include properly labeled PHP files (blocks LFI).
      "pftables -p /usr/bin/php5 -i 0x27ad2c -s SYSHIGH "
      "-d ~{httpd_user_script_exec_t} -o FILE_OPEN -j DROP",
  };
}

std::vector<std::string> RuleLibrary::KnownVulnerabilityRules() {
  return {
      // R5: on bind, record the created inode number.
      "pftables -i 0x3c750 -p /bin/dbus-daemon -o SOCKET_BIND "
      "-j STATE --set --key 0xbeef --value C_INO",
      // R6: on chmod of the socket, drop if a different inode is used.
      "pftables -i 0x3c786 -p /bin/dbus-daemon -o SOCKET_SETATTR "
      "-m STATE --key 0xbeef --cmp C_INO --nequal -j DROP",
      // R6 (generalization): the swapped-in chmod target may be a regular
      // file rather than a socket — mediate FILE_SETATTR at the same call
      // site too.
      "pftables -i 0x3c786 -p /bin/dbus-daemon -o FILE_SETATTR "
      "-m STATE --key 0xbeef --cmp C_INO --nequal -j DROP",
      // R7: disallow java from loading untrusted configuration files.
      "pftables -i 0x5d7e -p /usr/bin/java -d ~{SYSHIGH} -o FILE_OPEN -j DROP",
  };
}

std::string RuleLibrary::ApacheSymlinkOwnerRule() {
  // R8: SymLinksIfOwnerMatch as a rule: when traversing a symlink while
  // mapping a URL, the link's owner must equal the target's owner.
  return "pftables -i 0x2d637 -p /usr/bin/apache2 -o LINK_READ -m COMPARE "
         "--v1 C_DAC_OWNER --v2 C_TGT_DAC_OWNER --nequal -j DROP";
}

std::vector<std::string> RuleLibrary::SignalRaceRules() {
  return {
      // R9: route signal deliveries to the signal chain.
      "pftables -N signal_chain",
      "pftables -I input -o PROCESS_SIGNAL_DELIVERY -j SIGNAL_CHAIN",
      // R10: drop a handled, blockable signal while already in a handler.
      "pftables -I signal_chain -m SIGNAL_MATCH -m STATE --key 'sig' --cmp 1 -j DROP",
      // R11: otherwise record that we are entering a handler.
      "pftables -I signal_chain 2 -m SIGNAL_MATCH -j STATE --set --key 'sig' --value 1",
      // R12: sigreturn leaves the handler.
      "pftables -I syscallbegin -m SYSCALL_ARGS --arg 0 --equal NR_sigreturn "
      "-j STATE --set --key 'sig' --value 0",
  };
}

std::vector<std::string> RuleLibrary::SafeOpenRules() {
  return {
      // Traversing an adversary-writable symlink is allowed only when the
      // link's owner matches its target's owner (so adversaries can link to
      // their own files, not the victim's — Chari et al.'s policy), and the
      // link may not point at a high-integrity victim file from a shared
      // location at all for TCB subjects.
      "pftables -o LNK_FILE_READ -s SYSHIGH -d ~{SYSHIGH} -m COMPARE "
      "--v1 C_DAC_OWNER --v2 C_TGT_DAC_OWNER --nequal -j DROP",
  };
}

std::string RuleLibrary::TemplateT1(const std::string& program, uint64_t entrypoint,
                                    const std::string& resource_set,
                                    const std::string& op) {
  std::ostringstream oss;
  oss << "pftables -I input -i 0x" << std::hex << entrypoint << std::dec << " -p "
      << program << " -d ~" << resource_set << " -o " << op << " -j DROP";
  return oss.str();
}

std::vector<std::string> RuleLibrary::TemplateT2(const std::string& program,
                                                 uint64_t check_entrypoint,
                                                 uint64_t use_entrypoint,
                                                 const std::string& check_op,
                                                 const std::string& use_op,
                                                 const std::string& key) {
  std::ostringstream record;
  record << "pftables -I input -i 0x" << std::hex << check_entrypoint << std::dec
         << " -p " << program << " -o " << check_op << " -j STATE --set --key " << key
         << " --value C_INO";
  std::ostringstream compare;
  compare << "pftables -I input -i 0x" << std::hex << use_entrypoint << std::dec
          << " -p " << program << " -o " << use_op << " -m STATE --key " << key
          << " --cmp C_INO --nequal -j DROP";
  return {record.str(), compare.str()};
}

std::vector<std::string> RuleLibrary::DefaultRuleBase() {
  std::vector<std::string> rules;
  for (const auto& group : {RuntimeAnalysisRules(), KnownVulnerabilityRules(),
                            std::vector<std::string>{ApacheSymlinkOwnerRule()},
                            SignalRaceRules(), SafeOpenRules()}) {
    rules.insert(rules.end(), group.begin(), group.end());
  }
  return rules;
}

}  // namespace pf::apps
