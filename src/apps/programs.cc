#include "src/apps/programs.h"

#include "src/apps/entrypoints.h"
#include "src/apps/ldso.h"
#include "src/sim/sched.h"
#include "src/sim/sysimage.h"

namespace pf::apps {

using sim::Proc;

namespace {

// Common prologue: run the dynamic linker. A failed (blocked) library load
// terminates the program with 127, like a real ld.so abort.
bool Prologue(Proc& proc) { return Ldso::LinkAll(proc).ok; }

int TrueMain(Proc& proc) { return Prologue(proc) ? 0 : 127; }

int FalseMain(Proc& proc) { return Prologue(proc) ? 1 : 127; }

int ShMain(Proc& proc) {
  if (!Prologue(proc)) {
    return 127;
  }
  // sh -c "<prog> [args...]": fork and exec the command, wait for it.
  const auto& argv = proc.task().argv;
  if (argv.size() < 3 || argv[1] != "-c") {
    return 0;  // interactive shell: nothing to do in the simulation
  }
  // Split the command string on spaces.
  std::vector<std::string> cmd_argv;
  const std::string& cmd = argv[2];
  size_t i = 0;
  while (i < cmd.size()) {
    size_t j = cmd.find(' ', i);
    if (j == std::string::npos) {
      j = cmd.size();
    }
    if (j > i) {
      cmd_argv.push_back(cmd.substr(i, j - i));
    }
    i = j + 1;
  }
  if (cmd_argv.empty()) {
    return 0;
  }
  sim::UserFrame exec_site(proc, sim::kBinSh, kShellExec);
  std::string prog = cmd_argv[0];
  auto env = proc.task().env;
  int64_t child = proc.Fork([prog, cmd_argv, env](Proc& c) {
    c.Execve(prog, cmd_argv, env);
    c.Exit(127);  // exec failed
  });
  if (child < 0) {
    return 126;
  }
  int status = 0;
  proc.Waitpid(static_cast<sim::Pid>(child), &status);
  return status;
}

int DefaultMain(Proc& proc) { return Prologue(proc) ? 0 : 127; }

}  // namespace

void InstallPrograms(sim::Kernel& kernel) {
  kernel.RegisterProgram(sim::kBinTrue, &TrueMain);
  kernel.RegisterProgram(sim::kBinFalse, &FalseMain);
  kernel.RegisterProgram(sim::kBinSh, &ShMain);
  for (const char* prog : {sim::kPython, sim::kPhp, sim::kJava, sim::kApache,
                           sim::kDbusDaemon, sim::kSshd, sim::kIcecat, sim::kDstat,
                           sim::kSuidHelper, sim::kLdso}) {
    kernel.RegisterProgram(prog, &DefaultMain);
  }
}

}  // namespace pf::apps
