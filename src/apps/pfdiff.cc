// pfdiff: semantic diff of two Process Firewall rule bases.
//
// Both bases load onto the same booted simulated system (labels and program
// paths resolve identically), compile through the engine's commit path, and
// are modeled over one joint symbolic universe (src/analysis/symbolic/).
// The output is the exact set of decision-space regions where the two bases
// decide differently — each with a verdict transition and one concrete
// witness request. A textual no-op (reordering, split rules) diffs empty;
// deleting a deny rule shows up as a DROP -> ALLOW region.
//
//   pfdiff old.rules new.rules         diff two save-format dumps
//   pfdiff --library new.rules         old side = the shipped rule base
//   pfdiff --json ...                  machine-readable report
//   pfdiff --fail-on-diff ...          exit 10 when any region changed
//   pfdiff --fail-on-widening ...      exit 11 when any region widened
//   pfdiff --save-library              print the shipped base as a dump
//
// Exit status: 0 diff computed (and empty, under --fail-on-*), 1 usage or
// load failure, 10/11 per the --fail-on-* gates.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/symbolic/diff.h"
#include "src/apps/programs.h"
#include "src/apps/rule_library.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"

namespace {

void PrintUsage(std::FILE* to) {
  std::fputs(
      "usage: pfdiff [--json] [--fail-on-diff] [--fail-on-widening]\n"
      "              [--max-regions N] OLD NEW\n"
      "       pfdiff --save-library\n"
      "\n"
      "OLD and NEW are rule files (pftables-save dumps or pftables command\n"
      "lines) or the literal --library for the shipped paper rule base.\n",
      to);
}

// Loads one side into a scratch engine (bound to the shared kernel but never
// registered with it: nothing loaded here can serve a request).
bool LoadSide(const std::string& spec, pf::core::Engine* engine) {
  pf::core::Pftables front(engine);
  std::vector<std::string> lines;
  if (spec == "--library") {
    lines = pf::apps::RuleLibrary::DefaultRuleBase();
  } else {
    std::ifstream in(spec);
    if (!in) {
      std::fprintf(stderr, "pfdiff: cannot open %s\n", spec.c_str());
      return false;
    }
    for (std::string line; std::getline(in, line);) {
      lines.push_back(line);
    }
  }
  if (pf::core::Status s = front.ExecAll(lines); !s.ok()) {
    std::fprintf(stderr, "pfdiff: %s: %s\n", spec.c_str(), s.message().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool fail_on_diff = false;
  bool fail_on_widening = false;
  bool save_library = false;
  std::size_t max_regions = 64;
  std::vector<std::string> sides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--fail-on-diff") {
      fail_on_diff = true;
    } else if (arg == "--fail-on-widening") {
      fail_on_widening = true;
    } else if (arg == "--save-library") {
      save_library = true;
    } else if (arg == "--max-regions" && i + 1 < argc) {
      max_regions = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--library" || arg.empty() || arg[0] != '-') {
      sides.push_back(arg);
    } else if (arg == "-h" || arg == "--help") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "pfdiff: unknown flag %s\n", arg.c_str());
      PrintUsage(stderr);
      return 1;
    }
  }

  pf::sim::Kernel kernel(0x5eed);
  pf::sim::BuildSysImage(kernel);
  pf::apps::InstallPrograms(kernel);

  if (save_library) {
    pf::core::Engine engine(kernel, {});
    if (!LoadSide("--library", &engine)) {
      return 1;
    }
    pf::core::Pftables front(&engine);
    std::fputs(front.Save().c_str(), stdout);
    return 0;
  }
  if (sides.size() != 2) {
    PrintUsage(stderr);
    return 1;
  }

  pf::core::Engine old_engine(kernel, {});
  pf::core::Engine new_engine(kernel, {});
  if (!LoadSide(sides[0], &old_engine) || !LoadSide(sides[1], &new_engine)) {
    return 1;
  }

  const auto diff = pf::analysis::symbolic::DiffRulesets(
      *old_engine.CompileRuleset(), *new_engine.CompileRuleset(),
      old_engine.policy());
  if (json) {
    std::fputs(pf::analysis::symbolic::RenderDiffJson(diff).c_str(), stdout);
  } else {
    std::fputs(pf::analysis::symbolic::RenderDiffText(diff, max_regions).c_str(),
               stdout);
  }
  if (fail_on_widening && diff.any_widening) {
    return 11;
  }
  if (fail_on_diff && !diff.regions.empty()) {
    return 10;
  }
  return 0;
}
