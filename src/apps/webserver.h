// Apache-like web server model.
//
// Serves static files from a document root, with the program-level defenses
// the paper discusses as configuration options:
//   * traversal filtering (reject ".." in URLs — when off, Directory
//     Traversal attacks reach outside the docroot),
//   * SymLinksIfOwnerMatch (per-component lstat checks — the costly program
//     defense Figure 5 compares against rule R8),
// plus an authentication path that reads /etc/passwd from a *different*
// call site than content serving — the paper's motivating example of two
// program instructions with different resource expectations.
#ifndef SRC_APPS_WEBSERVER_H_
#define SRC_APPS_WEBSERVER_H_

#include <string>

#include "src/sim/sched.h"

namespace pf::apps {

struct WebConfig {
  std::string docroot = "/var/www";
  bool filter_traversal = true;
  bool symlinks_if_owner_match = false;
  // Emulates the non-filesystem request work of a real server (header
  // parsing, response composition): iterations of a checksum loop per
  // request. 0 disables.
  int request_work = 0;
  // Append a line to /var/log/apache-access.log per request.
  bool access_log = false;
};

class Webserver {
 public:
  explicit Webserver(WebConfig config) : config_(config) {}

  // Serves `url` (e.g. "/index.html"). Returns an HTTP status code; on 200
  // the body is stored in *content.
  int HandleRequest(sim::Proc& proc, const std::string& url, std::string* content);

  // Authenticates a user by reading /etc/passwd (distinct call site).
  bool Authenticate(sim::Proc& proc, const std::string& user);

  const WebConfig& config() const { return config_; }
  WebConfig& config() { return config_; }

 private:
  // The SymLinksIfOwnerMatch program check: per-component lstat walk.
  bool OwnerMatchWalk(sim::Proc& proc, const std::string& path);

  WebConfig config_;
};

}  // namespace pf::apps

#endif  // SRC_APPS_WEBSERVER_H_
