// OpenSSH signal-race model (E5, CVE-2006-5051).
//
// sshd's grace-period SIGALRM handler called non-reentrant cleanup code; a
// second signal delivered while the handler ran re-entered that code
// (double free -> exploitable). The model's handler enters a "critical
// section", performs a logging system call (a delivery point for the racing
// second signal), and records corruption when re-entered.
#ifndef SRC_APPS_SSHD_H_
#define SRC_APPS_SSHD_H_

#include "src/sim/sched.h"

namespace pf::apps {

struct SshdState {
  bool in_cleanup = false;   // inside the non-reentrant region
  bool corrupted = false;    // re-entered: the exploitable condition
  int handled = 0;           // deliveries that ran the handler
};

class Sshd {
 public:
  // Registers the vulnerable grace_alarm SIGALRM handler on `proc`,
  // recording outcomes in *state (which must outlive the process).
  static void InstallGraceAlarmHandler(sim::Proc& proc, SshdState* state);
};

}  // namespace pf::apps

#endif  // SRC_APPS_SSHD_H_
