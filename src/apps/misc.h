// Smaller application behaviours used by the exploit matrix (Table 4):
// java's untrusted config search (E7), icecat's insecure library path (E8),
// and the init script's unsafe file creation in /tmp (E9).
#ifndef SRC_APPS_MISC_H_
#define SRC_APPS_MISC_H_

#include <string>

#include "src/sim/sched.h"

namespace pf::apps {

// E7: the java launcher reads an auxiliary configuration file from the
// current working directory before falling back to /etc (the unpatched
// untrusted-search-path bug). Returns the path it loaded, or "".
std::string JavaLoadConfig(sim::Proc& proc);

// E8: icecat's wrapper sets LD_LIBRARY_PATH to include the working
// directory, then dynamically links. Returns the path libc was loaded from
// ("" when linking failed/was blocked).
std::string IcecatStart(sim::Proc& proc);

// E9: an init script creates its pid file in /tmp with O_CREAT through
// whatever name is there — following a planted symlink. Returns the open
// result (fd or -errno).
int64_t InitScriptWritePidfile(sim::Proc& proc, const std::string& path = "/tmp/init.pid");

// Shell PATH search: resolves `cmd` against the PATH environment variable
// (":"-separated; "." and adversary-writable entries are the classic
// untrusted-search-path hazard). Returns the first path whose executable
// exists, probing with stat from the shell's exec call site.
std::string ShellResolveInPath(sim::Proc& proc, const std::string& cmd);

// Resolve-then-exec: what `sh` does for a bare command name. Returns the
// exec result (-errno) — on success it does not return.
int64_t ShellExecCommand(sim::Proc& proc, const std::string& cmd,
                         std::vector<std::string> argv);

}  // namespace pf::apps

#endif  // SRC_APPS_MISC_H_
