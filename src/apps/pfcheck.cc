// pfcheck: static analyzer for Process Firewall rule bases.
//
// Loads a rule base onto a booted simulated system (so label names and
// program paths resolve exactly as they would at install time), compiles
// it the way the engine's commit path does, and runs the full analysis
// suite: shadowing/dead rules, JUMP-graph sanity, STATE protocol lints,
// and cacheability lints.
//
//   pfcheck --library              analyze the shipped paper rule base
//   pfcheck file.rules ...         analyze pftables-save format dumps
//   pfcheck --json ...             machine-readable report (with timing)
//   pfcheck --diff old.rules ...   also diff old.rules -> the analyzed base
//
// The pairwise shadow pass (analyzer.cc) is the fast heuristic tier; the
// symbolic decision-space model (src/analysis/symbolic/) is the exact tier.
// pfcheck runs both, reports the symbolic model's dead rules, and
// cross-checks that every pairwise shadow finding is confirmed by the
// symbolic pass — a violation is itself reported as an analyzer bug
// ("analysis-mismatch").
//
// Exit status: 0 clean (or warnings only), 1 error-severity diagnostics,
// 2 the rule base failed to load at all.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/symbolic/diff.h"
#include "src/analysis/symbolic/model.h"
#include "src/apps/programs.h"
#include "src/apps/rule_library.h"
#include "src/core/automata.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/sysimage.h"

namespace {

void PrintUsage(std::FILE* to) {
  std::fputs(
      "usage: pfcheck [--json] [--library] [rule-file...]\n"
      "\n"
      "Static analysis of Process Firewall rule bases: shadowed and dead\n"
      "rules, JUMP-graph defects (undefined chains, cycles, depth), STATE\n"
      "protocol mismatches, and cacheability violations.\n"
      "\n"
      "  --library   analyze the shipped paper rule base (R1-R12 + link rules)\n"
      "  --json      emit a JSON report with analysis timing\n"
      "  --diff F    semantically diff rule base F against the analyzed base\n"
      "  rule-file   a pftables-save format dump (as produced by Save())\n",
      to);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool library = false;
  std::string diff_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--library") {
      library = true;
    } else if (arg == "--diff" && i + 1 < argc) {
      diff_path = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      PrintUsage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "pfcheck: unknown flag %s\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (!library && files.empty()) {
    library = true;  // nothing else to analyze; default to the shipped base
  }

  using pf::core::Status;

  // Boot the simulated system so rule installation resolves label names and
  // program paths against the same image the engine authorizes against.
  pf::sim::Kernel kernel(0x5eed);
  pf::sim::BuildSysImage(kernel);
  pf::apps::InstallPrograms(kernel);
  pf::core::Engine* engine = pf::core::InstallProcessFirewall(kernel);
  pf::core::Pftables pftables(engine);

  if (library) {
    Status s = pftables.ExecAll(pf::apps::RuleLibrary::DefaultRuleBase());
    if (!s.ok()) {
      std::fprintf(stderr, "pfcheck: loading shipped library failed: %s\n",
                   s.message().c_str());
      return 2;
    }
  }
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "pfcheck: cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream dump;
    dump << in.rdbuf();
    Status s = pftables.Restore(dump.str());
    if (!s.ok()) {
      std::fprintf(stderr, "pfcheck: %s: %s\n", path.c_str(), s.message().c_str());
      return 2;
    }
  }

  // Compile once (the commit path's staging compile) and analyze. Timing is
  // averaged over a few runs so the JSON number is stable enough for the
  // benchmark harness to track.
  auto compiled = engine->CompileRuleset();
  pf::analysis::AnalysisReport report;
  constexpr int kTimingIters = 10;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kTimingIters; ++i) {
    report = pf::analysis::AnalyzeRuleset(*compiled, engine->policy());
  }
  auto t1 = std::chrono::steady_clock::now();
  const double analysis_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / kTimingIters;

  // Symbolic decision-space model (the exact tier; DESIGN.md "Symbolic
  // decision-space analysis"). Its dead-rule findings subsume the pairwise
  // pass's shadow findings, which is asserted below as a cross-check.
  namespace sym = pf::analysis::symbolic;
  const sym::SymbolicModel model = sym::BuildModel(*compiled, engine->policy());
  for (const sym::RuleLocusInfo& dead : model.dead) {
    report.Add(pf::analysis::Severity::kWarning, "dead-rule",
               {"filter", dead.chain, dead.pos},
               "no request in the decision space can fire this rule "
               "(symbolic analysis)");
  }
  // Cross-check: every pairwise shadow/unreachable finding claims its rule
  // can never fire, so the exact pass must agree. A disagreement means one
  // of the analyzers is wrong — surface it as an error on the spot.
  if (!model.indeterminate) {
    std::set<std::pair<std::string, std::size_t>> dead_set;
    for (const sym::RuleLocusInfo& dead : model.dead) {
      dead_set.emplace(dead.chain, dead.pos);
    }
    for (const pf::analysis::Diagnostic& d : report.diagnostics()) {
      if ((d.code == "shadowed-rule" || d.code == "unreachable-rule") &&
          d.locus.pos != 0 &&
          dead_set.find({d.locus.chain, d.locus.pos}) == dead_set.end()) {
        report.Add(pf::analysis::Severity::kError, "analysis-mismatch", d.locus,
                   "pairwise pass reports '" + d.code +
                       "' but the symbolic model proves the rule can fire");
      }
    }
  }
  report.Sort();

  // Optional semantic diff: old base from --diff file, new base = analyzed.
  sym::DiffResult diff;
  bool have_diff = false;
  if (!diff_path.empty()) {
    std::ifstream in(diff_path);
    if (!in) {
      std::fprintf(stderr, "pfcheck: cannot open %s\n", diff_path.c_str());
      return 2;
    }
    std::ostringstream dump;
    dump << in.rdbuf();
    pf::core::Engine old_engine(kernel, engine->config());
    pf::core::Pftables old_front(&old_engine);
    std::vector<std::string> lines;
    std::istringstream stream(dump.str());
    for (std::string line; std::getline(stream, line);) {
      lines.push_back(line);
    }
    if (Status s = old_front.ExecAll(lines); !s.ok()) {
      std::fprintf(stderr, "pfcheck: %s: %s\n", diff_path.c_str(), s.message().c_str());
      return 2;
    }
    diff = sym::DiffRulesets(*old_engine.CompileRuleset(), *compiled, engine->policy());
    have_diff = true;
  }

  const pf::core::Table& filter = engine->ruleset().filter();
  const std::size_t rules = filter.total_rules();
  const std::size_t nchains = filter.chains().size();

  // The load-time verifier's verdict for the same compile (engine commit
  // gate, DESIGN.md §5f) — reported separately from the analyzer lints: a
  // verification error means the program artifact itself is unsafe to run.
  const bool verified = compiled->verified;
  const double verify_us = static_cast<double>(compiled->verify_ns) / 1000.0;

  // Tuple-space classifier shape of the same compile (DESIGN.md §5g): how
  // the rule base partitions into hash-probed tuples vs the always-scanned
  // residual, and the longest candidate slice a single Authorize can see.
  const pf::core::ClassifierStats cstats =
      pf::core::ComputeClassifierStats(compiled->program);

  // STATE-protocol automaton shape of the same compile (DESIGN.md §5i):
  // which stateful rules the commit-time lowering pass made cacheable, and
  // which stay on the verdict-cache bypass path with their causes.
  const pf::core::AutomataStats astats =
      pf::core::ComputeAutomataStats(compiled->program);
  // Per-rule bypass attribution, in chain order (mirrors `pftables -L -v`).
  struct BypassEntry {
    std::string chain;
    uint32_t pos;
    std::string causes;
  };
  std::vector<BypassEntry> bypassing;
  if (compiled->program.automata_built) {
    for (const pf::core::ProgramChain& pc : compiled->program.chains) {
      for (std::size_t i = 0; i < pc.rules.size(); ++i) {
        const pf::core::RuleRecord& rec = compiled->program.rules[pc.rules[i]];
        if (rec.rule != nullptr && rec.astate_causes != 0) {
          bypassing.push_back({pc.name, static_cast<uint32_t>(i + 1),
                               pf::core::RenderBypassCauses(rec.astate_causes)});
        }
      }
    }
  }

  if (json) {
    std::ostringstream out;
    // `schema` versions the machine-readable surface (same contract as the
    // pfdiff object): consumers gate on it before parsing.
    out << "{\"pfcheck\": {\"schema\": 1, \"rules\": " << rules
        << ", \"chains\": " << nchains
        << ", \"analysis_us\": " << analysis_us
        << ", \"verified\": " << (verified ? "true" : "false")
        << ", \"verify_us\": " << verify_us
        << ", \"verifier\": " << compiled->verify_report.RenderJson()
        << ", \"classifier\": {\"tables\": " << cstats.tables
        << ", \"tuples\": " << cstats.tuples
        << ", \"max_slice\": " << cstats.max_slice
        << ", \"residual_rules\": " << cstats.residual_rules << "}"
        << ", \"automata\": {\"built\": "
        << (compiled->program.automata_built ? "true" : "false")
        << ", \"protocols\": " << astats.protocols
        << ", \"keys\": " << astats.keys
        << ", \"states\": " << astats.states
        << ", \"lowered_rules\": " << astats.lowered_rules
        << ", \"bypass_rules\": " << astats.bypass_rules
        << ", \"state_buckets\": " << astats.state_buckets
        << ", \"phase_protocols\": " << astats.phase_protocols
        << ", \"bypassing\": [";
    for (std::size_t i = 0; i < bypassing.size(); ++i) {
      out << (i == 0 ? "" : ", ") << "{\"chain\": \"" << bypassing[i].chain
          << "\", \"pos\": " << bypassing[i].pos << ", \"causes\": \""
          << bypassing[i].causes << "\"}";
    }
    out << "]}"
        << ", \"symbolic\": {\"regions\": " << model.region_count
        << ", \"max_op_regions\": " << model.max_op_regions
        << ", \"dead_rules\": " << model.dead.size()
        << ", \"analysis_us\": " << model.build_us
        << ", \"indeterminate\": " << (model.indeterminate ? "true" : "false")
        << ", \"exact_state\": " << (model.exact_state ? "true" : "false");
    if (have_diff) {
      // Embed the pfdiff object ({"pfdiff": {...}}) under "diff".
      const std::string diff_json = sym::RenderDiffJson(diff);
      const std::size_t open = diff_json.find('{', diff_json.find("\"pfdiff\""));
      const std::size_t close = diff_json.rfind('}');
      out << ", \"diff\": "
          << diff_json.substr(open, diff_json.rfind('}', close - 1) + 1 - open);
    }
    out << "}"
        << ", \"errors\": " << report.errors()
        << ", \"warnings\": " << report.warnings()
        << ", \"diagnostics\": " << report.RenderJson() << "}}\n";
    std::fputs(out.str().c_str(), stdout);
  } else {
    if (!compiled->verify_report.empty()) {
      std::fputs(compiled->verify_report.RenderText().c_str(), stdout);
    }
    if (!report.empty()) {
      std::fputs(report.RenderText().c_str(), stdout);
    }
    std::printf(
        "pfcheck: %zu rule(s) in %zu chain(s): %zu error(s), %zu warning(s) [%.1f us], "
        "program %s [%.1f us], classifier tables=%u tuples=%u max_slice=%u residual=%u\n",
        rules, nchains, report.errors(), report.warnings(), analysis_us,
        verified ? "verified" : "REJECTED by verifier", verify_us, cstats.tables,
        cstats.tuples, cstats.max_slice, cstats.residual_rules);
    if (compiled->program.automata_built) {
      std::printf(
          "pfcheck: automata: %u protocol(s), %u key(s), %llu state(s), "
          "%u rule(s) lowered, %u on bypass, %u state bucket(s)\n",
          astats.protocols, astats.keys,
          static_cast<unsigned long long>(astats.states), astats.lowered_rules,
          astats.bypass_rules, astats.state_buckets);
      for (const BypassEntry& e : bypassing) {
        std::printf("pfcheck:   bypass %s:%u (%s)\n", e.chain.c_str(), e.pos,
                    e.causes.c_str());
      }
    }
    std::printf(
        "pfcheck: symbolic model: %zu region(s) (max %zu per op), %zu dead rule(s)%s%s "
        "[%llu us]\n",
        model.region_count, model.max_op_regions, model.dead.size(),
        model.indeterminate ? ", INDETERMINATE" : "",
        model.exact_state ? "" : ", inexact STATE",
        static_cast<unsigned long long>(model.build_us));
    if (have_diff) {
      std::fputs(sym::RenderDiffText(diff).c_str(), stdout);
    }
  }
  return report.HasErrors() || !verified ? 1 : 0;
}
