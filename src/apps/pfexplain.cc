// pfexplain: replay one concrete request against a live engine and print the
// decision's full provenance — verdict, serving tier, matched rule, rules
// traversed, and the security events the decision emitted — cross-checked
// against the symbolic decision-space model (DESIGN.md §5j).
//
//   pfexplain --library -s staff_t -d /etc/shadow -o FILE_OPEN
//   pfexplain rules.dump -s user_t -p /bin/sh -i 0x8040 -d /tmp/t
//
// The symbolic cross-check maps the same request onto its atom assignment
// in the model's universe; the region containing it must predict the
// engine's verdict. Exit status: 0 explained (and model agreed, when
// checked), 1 bad request, 2 rule base failed to load, 3 the model
// disagreed with the live engine.

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/symbolic/model.h"
#include "src/apps/explain.h"
#include "src/apps/programs.h"
#include "src/apps/rule_library.h"
#include "src/core/engine.h"
#include "src/core/pftables.h"
#include "src/sim/error.h"
#include "src/sim/sysimage.h"

namespace {

void PrintUsage(std::FILE* to) {
  std::fputs(
      "usage: pfexplain [--library | rule-file] [request...]\n"
      "\n"
      "request: [-o OP] [-s subject_label] [-d object_path] [-p program]\n"
      "         [-i entrypoint] [--syscall N] [--no-model]\n"
      "\n"
      "Replays the request against a live engine with the audit pipeline\n"
      "armed and prints the decision's provenance tree; unless --no-model,\n"
      "also checks the verdict against the symbolic decision-space model.\n",
      to);
}

std::optional<uint64_t> ParseNum(const std::string& token) {
  try {
    return std::stoull(token, nullptr, 0);
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

int main(int argc, char** argv) {
  namespace sym = pf::analysis::symbolic;
  bool library = false;
  bool check_model = true;
  std::string file;
  std::string subject = "staff_t";
  std::string object_path;
  std::string program;
  uint64_t entrypoint = 0;
  bool has_entrypoint = false;
  pf::sim::Op op = pf::sim::Op::kFileOpen;
  std::optional<uint64_t> syscall_nr;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pfexplain: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--library") {
      library = true;
    } else if (arg == "-h" || arg == "--help") {
      PrintUsage(stdout);
      return 0;
    } else if (arg == "--no-model") {
      check_model = false;
    } else if (arg == "-o") {
      const char* v = next("-o");
      if (v == nullptr) return 1;
      std::optional<pf::sim::Op> parsed = pf::sim::OpFromName(v);
      if (!parsed) {
        std::fprintf(stderr, "pfexplain: unknown op %s\n", v);
        return 1;
      }
      op = *parsed;
    } else if (arg == "-s") {
      const char* v = next("-s");
      if (v == nullptr) return 1;
      subject = v;
    } else if (arg == "-d") {
      const char* v = next("-d");
      if (v == nullptr) return 1;
      object_path = v;
    } else if (arg == "-p") {
      const char* v = next("-p");
      if (v == nullptr) return 1;
      program = v;
    } else if (arg == "-i") {
      const char* v = next("-i");
      if (v == nullptr) return 1;
      std::optional<uint64_t> n = ParseNum(v);
      if (!n) {
        std::fprintf(stderr, "pfexplain: bad entrypoint %s\n", v);
        return 1;
      }
      entrypoint = *n;
      has_entrypoint = true;
    } else if (arg == "--syscall") {
      const char* v = next("--syscall");
      if (v == nullptr) return 1;
      syscall_nr = ParseNum(v);
      if (!syscall_nr) {
        std::fprintf(stderr, "pfexplain: bad syscall number %s\n", v);
        return 1;
      }
    } else if (!arg.empty() && arg[0] != '-') {
      file = arg;
    } else {
      std::fprintf(stderr, "pfexplain: unknown flag %s\n", arg.c_str());
      PrintUsage(stderr);
      return 1;
    }
  }
  if (!library && file.empty()) {
    library = true;
  }

  pf::sim::Kernel kernel(0x5eed);
  pf::sim::BuildSysImage(kernel);
  pf::apps::InstallPrograms(kernel);
  pf::core::Engine engine(kernel, {});
  pf::core::Pftables front(&engine);

  std::vector<std::string> lines;
  if (library) {
    lines = pf::apps::RuleLibrary::DefaultRuleBase();
  } else {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "pfexplain: cannot open %s\n", file.c_str());
      return 2;
    }
    for (std::string line; std::getline(in, line);) {
      lines.push_back(line);
    }
  }
  if (pf::core::Status s = front.ExecAll(lines); !s.ok()) {
    std::fprintf(stderr, "pfexplain: load failed: %s\n", s.message().c_str());
    return 2;
  }

  // The acting task: labeled `subject`, optionally stopped at -p/-i (the
  // entrypoint binding the paper keys decisions on).
  pf::sim::Task task;
  task.pid = 4242;
  task.comm = "pfexplain";
  task.exe = program.empty() ? std::string(pf::sim::kBinTrue) : program;
  task.cred.uid = 0;
  task.cred.euid = 0;
  task.cred.sid = kernel.labels().Intern(subject);
  task.cwd = kernel.vfs().root()->id();
  task.mm.Reset(kernel.AslrStackBase());
  if (!program.empty()) {
    auto image = kernel.LookupNoHooks(program);
    if (image == nullptr) {
      std::fprintf(stderr, "pfexplain: no such program: %s\n", program.c_str());
      return 1;
    }
    kernel.MapImage(task, image, program);
    const pf::sim::Mapping* map = task.mm.FindMappingByPath(program);
    task.mm.PushFrame(map->base + entrypoint, 16, false);
  } else if (has_entrypoint) {
    std::fprintf(stderr, "pfexplain: -i needs -p\n");
    return 1;
  }

  pf::sim::AccessRequest req;
  req.task = &task;
  req.op = op;
  std::shared_ptr<pf::sim::Inode> object;
  if (!object_path.empty()) {
    object = kernel.LookupNoHooks(object_path);
    if (object == nullptr) {
      std::fprintf(stderr, "pfexplain: no such object: %s\n", object_path.c_str());
      return 1;
    }
    req.inode = object.get();
    req.id = object->id();
  }
  if (syscall_nr) {
    req.syscall_nr = static_cast<pf::sim::SyscallNr>(*syscall_nr);
  } else {
    switch (op) {
      case pf::sim::Op::kFileOpen:
        req.syscall_nr = pf::sim::SyscallNr::kOpen;
        break;
      case pf::sim::Op::kFileGetattr:
        req.syscall_nr = pf::sim::SyscallNr::kStat;
        break;
      case pf::sim::Op::kSocketBind:
        req.syscall_nr = pf::sim::SyscallNr::kBind;
        break;
      case pf::sim::Op::kSignalDeliver:
        req.syscall_nr = pf::sim::SyscallNr::kKill;
        break;
      default:
        break;
    }
  }
  if (op == pf::sim::Op::kSignalDeliver) {
    req.sig = pf::sim::kSigUsr1;
    req.sig_sender = 1;
  }

  // The STATE dictionary as it stands when the decision begins (empty for a
  // fresh task) — region membership is a function of the pre-decision state.
  const std::map<std::string, int64_t> dict;

  pf::apps::ExplainResult result = pf::apps::ExplainRequest(engine, req);
  pf::trace::NameTable names{&kernel.labels()};
  std::printf("pfexplain: op=%s subj=%s%s%s\n",
              std::string(pf::sim::OpName(op)).c_str(), subject.c_str(),
              object_path.empty() ? "" : " obj=", object_path.c_str());
  std::fputs(result.Render(names).c_str(), stdout);

  if (!check_model) {
    return 0;
  }
  const sym::SymbolicModel model =
      sym::BuildModel(*engine.CompileRuleset(), engine.policy());
  if (model.indeterminate) {
    std::printf("symbolic: skipped (model indeterminate: dynamic module)\n");
    return 0;
  }
  const sym::Universe& u = *model.universe;
  if (!u.opaque_ids.empty()) {
    std::printf("symbolic: skipped (%zu opaque predicate dimension(s))\n",
                u.opaque_ids.size());
    return 0;
  }
  std::vector<uint32_t> a(u.dim_count(), 0);
  a[sym::kDimSubject] = u.AtomForSid(task.cred.sid);
  if (req.inode != nullptr) {
    a[sym::kDimObject] = u.AtomForSid(req.inode->sid);
    a[sym::kDimIno] = u.AtomForIno(req.id.ino);
  }
  if (!program.empty()) {
    a[sym::kDimEpt] =
        u.AtomForEpt(true, kernel.LookupNoHooks(program)->id(), entrypoint);
  } else {
    a[sym::kDimEpt] = u.AtomForEpt(false, {}, 0);
  }
  a[sym::kDimInterp] = u.AtomForInterp(pf::sim::InterpLang::kNone, "");
  a[sym::kDimArgBase] = u.AtomForArg(0, static_cast<int64_t>(req.syscall_nr));
  for (int i = 1; i < sym::kNumArgDims; ++i) {
    a[sym::kDimArgBase + i] = u.AtomForArg(i, req.args[static_cast<size_t>(i - 1)]);
  }
  for (size_t i = 0; i < u.state_dims.size(); ++i) {
    const auto it = dict.find(u.state_dims[i].key);
    a[u.StateDimIndex(i)] = u.AtomForState(
        i, it == dict.end() ? std::nullopt : std::optional<int64_t>(it->second));
  }
  const sym::DecisionRegion* region = model.Find(req.op, a);
  if (region == nullptr) {
    std::printf("symbolic: DISAGREES (assignment in no region)\n");
    return 3;
  }
  const int64_t predicted = region->outcome == sym::OutcomeKind::kAllow
                                ? 0
                                : pf::sim::SysError(pf::sim::Err::kAcces);
  const int64_t effective =
      result.audited ? pf::sim::SysError(pf::sim::Err::kAcces) : result.verdict;
  if (predicted == effective) {
    std::printf("symbolic: agrees (%s, decided by %s)\n",
                std::string(sym::OutcomeName(region->outcome)).c_str(),
                region->decided_by.c_str());
    return 0;
  }
  std::printf("symbolic: DISAGREES (model %s via %s, engine returned %lld)\n",
              std::string(sym::OutcomeName(region->outcome)).c_str(),
              region->decided_by.c_str(), static_cast<long long>(result.verdict));
  return 3;
}
