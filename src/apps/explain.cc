#include "src/apps/explain.h"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>

#include "src/audit/export.h"
#include "src/core/program.h"

namespace pf::apps {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

struct RuleCounter {
  const core::Rule* rule = nullptr;
  int32_t chain_id = -1;
  uint32_t chain_index = 0;
  uint64_t evals = 0;
  uint64_t hits = 0;
};

bool IsDenyKind(const audit::AuditRecord& rec) {
  return rec.kind == static_cast<uint8_t>(audit::Kind::kDeny) ||
         rec.kind == static_cast<uint8_t>(audit::Kind::kAuditedDeny);
}

}  // namespace

ExplainResult ExplainRequest(core::Engine& engine, sim::AccessRequest& req) {
  ExplainResult out;
  audit::AuditHub& hub = engine.audit();
  const bool was_enabled = hub.enabled();
  if (!was_enabled) {
    audit::AuditHub::Config cfg;
    cfg.bucket_capacity = 0;  // an explanation must never be suppressed
    hub.Enable(cfg);
  }
  (void)hub.Drain();  // discard any backlog: drained events must be ours alone

  // Per-rule counter snapshot over the published program's live records. The
  // Rule atomics are shared with the staging base, so both evaluators (the
  // compiled program and the legacy walker) move the same counters.
  const std::shared_ptr<const core::CompiledRuleset> rs = engine.PublishedRuleset();
  std::vector<RuleCounter> counters;
  if (rs != nullptr) {
    counters.reserve(rs->program.rules.size());
    for (const core::RuleRecord& rr : rs->program.rules) {
      if (rr.rule == nullptr) {
        continue;  // dead delta-commit record, unreachable
      }
      counters.push_back({rr.rule, rr.chain_id, rr.chain_index,
                          rr.rule->evals.load(kRelaxed), rr.rule->hits.load(kRelaxed)});
    }
  }

  const core::EngineStats before = engine.stats();
  out.verdict = engine.Authorize(req);
  const core::EngineStats after = engine.stats();
  out.events = hub.Drain();
  if (!was_enabled) {
    hub.Disable();
  }

  out.audited = after.audited_drops > before.audited_drops;
  out.drop = out.verdict != 0 || out.audited;

  // Verdict attribution and serving tier, from the denial's audit record
  // when one exists (exact), from the cache-counter movement otherwise.
  const audit::AuditRecord* deny = nullptr;
  for (const audit::AuditRecord& rec : out.events) {
    if (IsDenyKind(rec)) {
      deny = &rec;
    }
  }
  const bool traversed_rules = [&] {
    for (const RuleCounter& rc : counters) {
      if (rc.rule->evals.load(kRelaxed) != rc.evals) {
        return true;
      }
    }
    return false;
  }();
  if (deny != nullptr) {
    out.tier = std::string(
        audit::TierName(static_cast<audit::Tier>(deny->tier)));
    out.cause = deny->cause;
    out.chain_id = deny->chain_id;
    out.rule_index = deny->rule_index;
  } else if (after.vcache_state_hits > before.vcache_state_hits) {
    out.tier = std::string(audit::TierName(audit::Tier::kVcacheState));
  } else if (after.vcache_hits > before.vcache_hits) {
    out.tier = std::string(audit::TierName(audit::Tier::kVcache));
  } else if (after.vcache_bypasses > before.vcache_bypasses) {
    out.tier = std::string(audit::TierName(audit::Tier::kBypass));
    for (size_t i = 0; i < after.vcache_bypass_causes.size(); ++i) {
      if (after.vcache_bypass_causes[i] > before.vcache_bypass_causes[i]) {
        out.cause |= static_cast<uint8_t>(1u << i);
      }
    }
  } else if (after.vcache_misses > before.vcache_misses || traversed_rules) {
    // A miss traverses even when every reachable rule list for the op is
    // empty (entrypoint-indexed chains with no matching binding).
    out.tier = std::string(audit::TierName(engine.config().compiled_eval
                                               ? audit::Tier::kCompiled
                                               : audit::Tier::kLegacy));
  } else {
    out.tier = "fast-path";  // no applicable chain: Authorize never built a packet
  }

  // Traversal steps: every rule whose eval counter moved, with this
  // request's movement, in (chain, position) order.
  std::map<int32_t, std::string> chain_names;
  if (rs != nullptr) {
    for (const auto& [name, id] : rs->program.chain_ids) {
      chain_names[id] = name;
    }
  }
  std::sort(counters.begin(), counters.end(), [](const RuleCounter& a,
                                                 const RuleCounter& b) {
    return a.chain_id != b.chain_id ? a.chain_id < b.chain_id
                                    : a.chain_index < b.chain_index;
  });
  std::map<int32_t, std::pair<size_t, size_t>> per_chain;  // evaluated, total
  for (const RuleCounter& rc : counters) {
    const uint64_t evals = rc.rule->evals.load(kRelaxed) - rc.evals;
    const uint64_t hits = rc.rule->hits.load(kRelaxed) - rc.hits;
    auto& [evaluated, total] = per_chain[rc.chain_id];
    ++total;
    if (evals == 0) {
      continue;
    }
    ++evaluated;
    ExplainStep step;
    step.chain_id = rc.chain_id;
    step.rule_index = rc.chain_index;
    auto it = chain_names.find(rc.chain_id);
    step.chain = it != chain_names.end() ? it->second : std::to_string(rc.chain_id);
    step.rule = rc.rule->source;
    step.evals = evals;
    step.hits = hits;
    step.produced_verdict =
        out.chain_id == rc.chain_id &&
        out.rule_index == static_cast<int32_t>(rc.chain_index);
    out.steps.push_back(std::move(step));
  }
  for (const auto& [chain_id, ev] : per_chain) {
    const auto& [evaluated, total] = ev;
    if (evaluated == 0 || evaluated == total) {
      continue;  // chain not consulted at all, or fully walked
    }
    auto it = chain_names.find(chain_id);
    out.not_reached.push_back(
        "chain '" + (it != chain_names.end() ? it->second : std::to_string(chain_id)) +
        "': " + std::to_string(total - evaluated) + " of " + std::to_string(total) +
        " rules not evaluated (op filter, entrypoint index, or earlier verdict)");
  }
  return out;
}

std::string ExplainResult::Render(const trace::NameTable& names) const {
  std::ostringstream os;
  os << "verdict: ";
  if (audited) {
    os << "DROP (audited: access allowed, denial recorded)";
  } else if (drop) {
    os << "DROP (" << verdict << ")";
  } else {
    os << "ALLOW (0)";
  }
  os << "\n  served by: tier=" << tier;
  if (cause != 0) {
    os << " cause=0x" << std::hex << static_cast<unsigned>(cause) << std::dec;
  }
  os << "\n";
  if (drop) {
    os << "  matched rule: ";
    if (chain_id < 0) {
      os << "(chain policy or legacy walker — no compiled attribution)";
    } else {
      os << chain_id << ":" << rule_index;
      for (const ExplainStep& s : steps) {
        if (s.produced_verdict) {
          os << "  `" << s.rule << "`";
          break;
        }
      }
    }
    os << "\n";
  }
  if (!steps.empty()) {
    os << "traversal:\n";
    for (const ExplainStep& s : steps) {
      os << "  " << s.chain << ":" << s.rule_index << " evaluated";
      if (s.hits > 0) {
        os << " HIT";
      }
      if (s.produced_verdict) {
        os << "  <== verdict";
      }
      os << "\n";
    }
    for (const std::string& nr : not_reached) {
      os << "  " << nr << "\n";
    }
  } else {
    os << "traversal: none (served without evaluating any rule)\n";
  }
  if (!events.empty()) {
    os << "events:\n";
    std::istringstream lines(audit::RenderText(events, names));
    for (std::string line; std::getline(lines, line);) {
      os << "  " << line << "\n";
    }
  }
  return os.str();
}

}  // namespace pf::apps
