#include "src/apps/ldso.h"

#include <sstream>

#include "src/apps/entrypoints.h"
#include "src/sim/sysimage.h"

namespace pf::apps {

using sim::Proc;

namespace {

std::vector<std::string> SplitPathList(const std::string& list) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : list) {
    if (c == ':') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    out.push_back(cur);
  }
  return out;
}

}  // namespace

std::vector<std::string> Ldso::BuildSearchPath(Proc& proc) {
  std::vector<std::string> dirs;
  // Figure 1(b) lines 1-5: setid processes must not honor LD_* variables.
  if (proc.task().cred.IsSetid()) {
    proc.Unsetenv("LD_LIBRARY_PATH");
    proc.Unsetenv("LD_PRELOAD");
  }
  for (const std::string& d : SplitPathList(proc.Getenv("LD_LIBRARY_PATH"))) {
    dirs.push_back(d);
  }
  // DT_RUNPATH of the main executable (E1: an insecure RUNPATH planted by a
  // buggy installer ends up here).
  auto exe = proc.kernel().LookupNoHooks(proc.task().exe);
  if (exe && exe->binary) {
    for (const std::string& d : exe->binary->runpath) {
      dirs.push_back(d);
    }
  }
  dirs.push_back("/lib");
  dirs.push_back("/usr/lib");
  return dirs;
}

std::string Ldso::LoadLibrary(Proc& proc, const std::string& name) {
  // The library may be given as an absolute path or a bare soname.
  std::vector<std::string> candidates;
  if (!name.empty() && name[0] == '/') {
    candidates.push_back(name);
  } else {
    for (const std::string& dir : BuildSearchPath(proc)) {
      candidates.push_back(dir + "/" + name);
    }
  }
  for (const std::string& path : candidates) {
    // Figure 1(b) lines 7-11: open from the ld.so call site, then mmap.
    sim::UserFrame frame(proc, sim::kLdso, kLdsoOpenLibrary);
    int64_t fd = proc.Open(path, sim::kORdOnly);
    if (fd < 0) {
      continue;
    }
    int64_t base = proc.MmapFd(static_cast<int>(fd));
    proc.Close(static_cast<int>(fd));
    if (base < 0) {
      continue;
    }
    return path;
  }
  return "";
}

LinkResult Ldso::LinkAll(Proc& proc) {
  LinkResult result;
  auto exe = proc.kernel().LookupNoHooks(proc.task().exe);
  if (!exe || !exe->binary) {
    return result;
  }
  for (const std::string& lib : exe->binary->needed) {
    // Use the basename for search (DT_NEEDED entries are sonames).
    std::string soname = lib;
    if (auto slash = soname.rfind('/'); slash != std::string::npos) {
      soname = soname.substr(slash + 1);
    }
    std::string from = LoadLibrary(proc, soname);
    if (from.empty()) {
      result.failed_library = soname;
      return result;
    }
    result.loaded.emplace_back(soname, from);
  }
  result.ok = true;
  return result;
}

}  // namespace pf::apps
