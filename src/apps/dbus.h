// D-Bus models: the daemon's bind-then-chmod TOCTTOU window (E6, closed by
// rules R5/R6) and libdbus's environment-controlled socket path (E3,
// CVE-2012-3524, closed by rule R3).
#ifndef SRC_APPS_DBUS_H_
#define SRC_APPS_DBUS_H_

#include <string>

#include "src/sim/sched.h"

namespace pf::apps {

inline constexpr const char* kSystemBusPath = "/var/run/dbus/system_bus_socket";

class DbusDaemon {
 public:
  // Creates and publishes a bus socket at `path`: socket, bind (entrypoint
  // kDbusBind), then chmod *by path* to open it up (entrypoint
  // kDbusSetattr). The path-based chmod is the TOCTTOU window: the process
  // checkpoints at "dbus-bound" between the two calls. Returns 0 or -errno
  // of the failing step.
  static int64_t PublishSocket(sim::Proc& proc, const std::string& path,
                               sim::FileMode final_mode = 0777);
};

class Libdbus {
 public:
  // Client connect as libdbus does it: honor DBUS_SYSTEM_BUS_ADDRESS if set
  // (the unfiltered environment variable of E3), else the well-known path.
  // The connect() runs at entrypoint kLibdbusConnect inside libdbus.
  // Returns the connected fd, or -errno.
  static int64_t ConnectSystemBus(sim::Proc& proc);
};

}  // namespace pf::apps

#endif  // SRC_APPS_DBUS_H_
