// Call-site (entrypoint) offsets of the simulated programs.
//
// An entrypoint is "the program counter of a function call instruction on
// the process's call stack" (paper §4.1). The offsets below are binary-
// relative and deliberately match the values in the paper's rule listings
// (Table 5), so the shipped rules R1-R8 read exactly as published.
#ifndef SRC_APPS_ENTRYPOINTS_H_
#define SRC_APPS_ENTRYPOINTS_H_

#include <cstdint>

namespace pf::apps {

// ld.so: the open() that loads a shared library (rule R1).
inline constexpr uint64_t kLdsoOpenLibrary = 0x596b;
// python: the module-import open() (rule R2).
inline constexpr uint64_t kPythonImport = 0x34f05;
// libdbus: connect() to the system bus socket (rule R3).
inline constexpr uint64_t kLibdbusConnect = 0x39231;
// php: the include()/require() open (rule R4).
inline constexpr uint64_t kPhpInclude = 0x27ad2c;
// dbus-daemon: bind() of the bus socket (rule R5) and the following
// chmod()/setattr (rule R6).
inline constexpr uint64_t kDbusBind = 0x3c750;
inline constexpr uint64_t kDbusSetattr = 0x3c786;
// java: configuration-file open (rule R7).
inline constexpr uint64_t kJavaConfigOpen = 0x5d7e;
// apache: symlink traversal while mapping a URL to a file (rule R8).
inline constexpr uint64_t kApacheLinkRead = 0x2d637;

// Additional call sites not present in the paper's listings (distinct
// program instructions that request different resource classes).
inline constexpr uint64_t kApacheServeOpen = 0x2e100;   // static content open
inline constexpr uint64_t kApacheAuthOpen = 0x2f200;    // password file open
inline constexpr uint64_t kApacheCheckStat = 0x2f300;   // lstat/fstat checks
inline constexpr uint64_t kPhpScriptOpen = 0x27b000;    // top-level script open
inline constexpr uint64_t kPythonScriptOpen = 0x35000;  // top-level script open
inline constexpr uint64_t kShellOpen = 0x8100;          // shell redirection open
inline constexpr uint64_t kShellExec = 0x8200;          // shell fork+exec
inline constexpr uint64_t kSshdLogWrite = 0x6100;       // sshd logging call site
inline constexpr uint64_t kIcecatPluginOpen = 0x7100;   // icecat plugin search
inline constexpr uint64_t kSafeOpenCheck = 0x9100;      // safe_open lstat site
inline constexpr uint64_t kSafeOpenUse = 0x9200;        // safe_open open site

}  // namespace pf::apps

#endif  // SRC_APPS_ENTRYPOINTS_H_
