// pfexplain: replay one request against a live engine and reconstruct the
// decision's full provenance (DESIGN.md §5j).
//
// The engine's observability surfaces each tell part of the story — the
// audit pipeline names the matched rule, serving tier, and automaton state;
// the per-rule eval/hit counters say which rules the traversal touched; the
// verdict-cache counters say which tier served. ExplainRequest runs the
// request once with the audit hub armed, diffs those surfaces across the
// call, and merges them into one provenance tree: the verdict, the tier
// that produced it, every rule evaluated (and why the rest were not), and
// the security events the decision emitted.
//
// This is a diagnostic replay, not a dry run: the request perturbs the
// engine exactly as any request would (counters, caches, STATE effects).
// Single-threaded use only — a concurrent workload would bleed into the
// counter diffs.
#ifndef SRC_APPS_EXPLAIN_H_
#define SRC_APPS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/audit/record.h"
#include "src/core/engine.h"
#include "src/trace/export.h"

namespace pf::apps {

// One rule the traversal evaluated, with this request's counter movement.
struct ExplainStep {
  int32_t chain_id = -1;    // compiled-program chain id
  uint32_t rule_index = 0;  // position within the chain
  std::string chain;        // chain name
  std::string rule;         // source text as installed
  uint64_t evals = 0;       // evaluations this request performed
  uint64_t hits = 0;        // target fires this request performed
  bool produced_verdict = false;
};

struct ExplainResult {
  int64_t verdict = 0;  // Authorize's return value
  bool drop = false;
  bool audited = false;  // audit-only mode: denial recorded, access allowed
  // Serving tier. From the deny AuditRecord when the request denied;
  // reconstructed from the verdict-cache counter movement otherwise
  // ("fast-path" when no chain applied and the engine never built a packet).
  std::string tier;
  uint8_t cause = 0;      // bypass-cause bits when tier == "bypass"
  int32_t chain_id = -1;  // verdict-producing rule (denials; -1 = policy)
  int32_t rule_index = -1;
  std::vector<audit::AuditRecord> events;  // audit records this request emitted
  std::vector<ExplainStep> steps;          // rules evaluated, traversal order
  // Chains consulted for this op whose rules were (partly) not reached, with
  // the static reason.
  std::vector<std::string> not_reached;

  // Human-readable provenance tree.
  std::string Render(const trace::NameTable& names) const;
};

// Replays `req` once and explains the decision. Temporarily enables the
// audit hub (with suppression off) when it is not already enabled; an
// enabled hub is drained first so the result's events belong to this
// request alone.
ExplainResult ExplainRequest(core::Engine& engine, sim::AccessRequest& req);

}  // namespace pf::apps

#endif  // SRC_APPS_EXPLAIN_H_
