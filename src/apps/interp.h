// Interpreter runtime models: a PHP-like interpreter whose include() is the
// Local File Inclusion attack surface (E4), and a Python-like interpreter
// whose module import searches the working directory (E2). Both maintain
// interpreter frame lists in user memory that the kernel-side interpreter
// unwinder walks (paper §4.4), and both issue their security-relevant opens
// from the interpreter binary's fixed call sites (rules R4, R2).
#ifndef SRC_APPS_INTERP_H_
#define SRC_APPS_INTERP_H_

#include <optional>
#include <string>
#include <vector>

#include "src/sim/sched.h"

namespace pf::apps {

class PhpInterp {
 public:
  // Starts executing `script` (pushes the top-level interpreter frame).
  PhpInterp(sim::Proc& proc, const std::string& script);
  ~PhpInterp();

  // include()/require(): resolves `name` (absolute, or relative to the
  // including script's directory), opens and "executes" it. Returns the
  // included file's contents, or nullopt when the open was denied/failed.
  std::optional<std::string> Include(const std::string& name, uint32_t line);

  const std::string& script() const { return script_; }

 private:
  sim::Proc& proc_;
  std::string script_;
  std::string script_dir_;
  std::unique_ptr<sim::InterpFrame> top_frame_;
};

class PythonInterp {
 public:
  explicit PythonInterp(sim::Proc& proc, const std::string& script);
  ~PythonInterp();

  // Module import: searches sys.path — which, as in CPython 2, starts with
  // the script's directory / the working directory (the E2 vulnerability) —
  // then the standard library directories. Returns the path the module was
  // loaded from, or empty when not found / denied.
  std::string ImportModule(const std::string& name, uint32_t line);

  std::vector<std::string>& sys_path() { return sys_path_; }

 private:
  sim::Proc& proc_;
  std::string script_;
  std::vector<std::string> sys_path_;
  std::unique_ptr<sim::InterpFrame> top_frame_;
};

}  // namespace pf::apps

#endif  // SRC_APPS_INTERP_H_
