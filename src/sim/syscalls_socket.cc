// UNIX-domain socket system calls (bind / listen / connect over filesystem
// paths). These carry the D-Bus squat/TOCTTOU scenarios (E3, E6).

#include "src/sim/kernel.h"

namespace pf::sim {

int64_t Kernel::SysSocket(Task& task) {
  SyscallScope scope(*this, task, SyscallNr::kSocket);
  if (scope.denied()) {
    return scope.error();
  }
  auto file = std::make_shared<File>();
  file->flags = kORdWr;
  // An unbound socket has an anonymous inode outside any filesystem.
  file->inode = std::make_shared<Inode>();
  file->inode->type = InodeType::kSocket;
  file->inode->uid = task.cred.euid;
  file->inode->gid = task.cred.egid;
  file->inode->sid = task.cred.sid;
  file->inode->open_count = 1;
  return task.fds.Install(std::move(file));
}

int64_t Kernel::SysBind(Task& task, int fd, const std::string& path, FileMode mode) {
  SyscallScope scope(*this, task, SyscallNr::kBind, {fd});
  if (scope.denied()) {
    return scope.error();
  }
  auto file = task.fds.Get(fd);
  if (!file || !file->inode || !file->inode->IsSocket()) {
    return file ? SysError(Err::kNotSock) : SysError(Err::kBadF);
  }
  if (!file->path.empty()) {
    return SysError(Err::kInval);  // already bound
  }
  Nameidata nd;
  if (int64_t rv = PathWalk(task, path, kWantParent, &nd); rv != 0) {
    return rv;
  }
  if (nd.inode) {
    return SysError(Err::kAddrInUse);
  }
  if (!DacPermitted(task.cred, *nd.parent,
                    AccessBit(Access::kWrite) | AccessBit(Access::kExec))) {
    return SysError(Err::kAcces);
  }
  if (int64_t rv = HookInode(task, Op::kDirAddName, *nd.parent, nd.last); rv != 0) {
    return rv;
  }
  auto inode = CreateAt(task, nd, InodeType::kSocket, mode);
  inode->socket_owner = task.pid;
  if (int64_t rv = HookInode(task, Op::kSocketBind, *inode, path); rv != 0) {
    DropLink(nd.parent, nd.last, inode);
    return rv;
  }
  // Swap the anonymous inode for the bound one.
  file->inode = inode;
  file->path = path;
  ++inode->open_count;
  return 0;
}

int64_t Kernel::SysListen(Task& task, int fd) {
  SyscallScope scope(*this, task, SyscallNr::kListen, {fd});
  if (scope.denied()) {
    return scope.error();
  }
  auto file = task.fds.Get(fd);
  if (!file || !file->inode || !file->inode->IsSocket()) {
    return file ? SysError(Err::kNotSock) : SysError(Err::kBadF);
  }
  file->inode->socket_listening = true;
  return 0;
}

int64_t Kernel::SysConnect(Task& task, int fd, const std::string& path) {
  SyscallScope scope(*this, task, SyscallNr::kConnect, {fd});
  if (scope.denied()) {
    return scope.error();
  }
  auto file = task.fds.Get(fd);
  if (!file || !file->inode || !file->inode->IsSocket()) {
    return file ? SysError(Err::kNotSock) : SysError(Err::kBadF);
  }
  Nameidata nd;
  if (int64_t rv = PathWalk(task, path, kFollowFinal, &nd); rv != 0) {
    return rv;
  }
  if (!nd.inode->IsSocket()) {
    return SysError(Err::kConnRefused);
  }
  if (!DacPermitted(task.cred, *nd.inode,
                    AccessBit(Access::kRead) | AccessBit(Access::kWrite))) {
    return SysError(Err::kAcces);
  }
  if (int64_t rv = HookInode(task, Op::kSocketConnect, *nd.inode, path); rv != 0) {
    return rv;
  }
  if (!nd.inode->socket_listening) {
    return SysError(Err::kConnRefused);
  }
  file->connected_socket = true;
  file->peer = nd.inode->id();
  return 0;
}

}  // namespace pf::sim
