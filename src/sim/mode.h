// File mode bits and helpers (UNIX permission semantics).
#ifndef SRC_SIM_MODE_H_
#define SRC_SIM_MODE_H_

#include <cstdint>

namespace pf::sim {

using FileMode = uint32_t;

// Permission bits, matching the POSIX octal layout.
inline constexpr FileMode kModeSetuid = 04000;
inline constexpr FileMode kModeSetgid = 02000;
inline constexpr FileMode kModeSticky = 01000;
inline constexpr FileMode kModeRUsr = 0400;
inline constexpr FileMode kModeWUsr = 0200;
inline constexpr FileMode kModeXUsr = 0100;
inline constexpr FileMode kModeRGrp = 0040;
inline constexpr FileMode kModeWGrp = 0020;
inline constexpr FileMode kModeXGrp = 0010;
inline constexpr FileMode kModeROth = 0004;
inline constexpr FileMode kModeWOth = 0002;
inline constexpr FileMode kModeXOth = 0001;
inline constexpr FileMode kModePermMask = 07777;

// Access request bits used by the DAC permission check.
enum class Access : uint32_t {
  kRead = 4,
  kWrite = 2,
  kExec = 1,
};

constexpr uint32_t AccessBit(Access a) { return static_cast<uint32_t>(a); }

}  // namespace pf::sim

#endif  // SRC_SIM_MODE_H_
