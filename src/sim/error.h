// Error codes for the simulated system-call layer.
//
// System calls return int64_t: values >= 0 are success results, negative
// values are -Err codes (the Linux kernel idiom). Helpers below convert
// between the enum, the raw return value, and human-readable names.
#ifndef SRC_SIM_ERROR_H_
#define SRC_SIM_ERROR_H_

#include <cstdint>
#include <string_view>

namespace pf::sim {

enum class Err : int {
  kNone = 0,
  kPerm = 1,         // EPERM: operation not permitted
  kNoEnt = 2,        // ENOENT: no such file or directory
  kSrch = 3,         // ESRCH: no such process
  kIntr = 4,         // EINTR: interrupted system call
  kIo = 5,           // EIO
  kNoExec = 8,       // ENOEXEC: exec format error
  kBadF = 9,         // EBADF: bad file descriptor
  kChild = 10,       // ECHILD: no child processes
  kAgain = 11,       // EAGAIN
  kAcces = 13,       // EACCES: permission denied
  kFault = 14,       // EFAULT: bad address
  kBusy = 16,        // EBUSY
  kExist = 17,       // EEXIST: file exists
  kXDev = 18,        // EXDEV: cross-device link
  kNotDir = 20,      // ENOTDIR
  kIsDir = 21,       // EISDIR
  kInval = 22,       // EINVAL
  kNFile = 23,       // ENFILE: file table overflow
  kMFile = 24,       // EMFILE: too many open files
  kTxtBsy = 26,      // ETXTBSY
  kNoSpc = 28,       // ENOSPC
  kRoFs = 30,        // EROFS: read-only filesystem
  kMLink = 31,       // EMLINK
  kNameTooLong = 36, // ENAMETOOLONG
  kNotEmpty = 39,    // ENOTEMPTY
  kLoop = 40,        // ELOOP: too many symbolic links
  kNoSys = 38,       // ENOSYS
  kNotSock = 88,     // ENOTSOCK
  kAddrInUse = 98,   // EADDRINUSE
  kConnRefused = 111,// ECONNREFUSED
  kNotConn = 107,    // ENOTCONN
};

// Builds a negative system-call return value from an error code.
constexpr int64_t SysError(Err e) { return -static_cast<int64_t>(static_cast<int>(e)); }

// True if a system-call return value denotes failure.
constexpr bool IsSysError(int64_t rv) { return rv < 0; }

// Recovers the error code from a failing system-call return value.
constexpr Err ErrOf(int64_t rv) { return rv < 0 ? static_cast<Err>(-rv) : Err::kNone; }

// Human-readable short name ("EACCES") for diagnostics and logs.
std::string_view ErrName(Err e);

}  // namespace pf::sim

#endif  // SRC_SIM_ERROR_H_
