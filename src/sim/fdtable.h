// Open file descriptions and per-task file descriptor tables.
#ifndef SRC_SIM_FDTABLE_H_
#define SRC_SIM_FDTABLE_H_

#include <memory>
#include <vector>

#include "src/sim/inode.h"
#include "src/sim/types.h"

namespace pf::sim {

// open(2) flags (subset, values mirror Linux where it helps readability).
enum OpenFlag : uint32_t {
  kORdOnly = 0x0,
  kOWrOnly = 0x1,
  kORdWr = 0x2,
  kOCreat = 0x40,
  kOExcl = 0x80,
  kOTrunc = 0x200,
  kOAppend = 0x400,
  kONofollow = 0x20000,
  kODirectory = 0x10000,
};

constexpr uint32_t kOAccMode = 0x3;

// An open file description (the object shared by dup'd descriptors). Holding
// one keeps the inode's open_count elevated, which pins its inode number
// against recycling.
struct File {
  std::shared_ptr<Inode> inode;
  std::string path;  // pathname used at open time (diagnostics, mmap)
  uint32_t flags = 0;
  uint64_t offset = 0;
  bool connected_socket = false;   // client socket connected to a server
  FileId peer;                     // bound socket inode it connected to

  bool readable() const { return (flags & kOAccMode) != kOWrOnly; }
  bool writable() const { return (flags & kOAccMode) != kORdOnly; }
};

class FdTable {
 public:
  // Installs a file into the lowest free slot; returns the descriptor.
  int Install(std::shared_ptr<File> file);

  // Returns the file for a descriptor, or nullptr.
  std::shared_ptr<File> Get(int fd) const;

  // Removes the descriptor; returns the file that was installed there.
  std::shared_ptr<File> Remove(int fd);

  // Duplicate of this table (dup semantics: shares open file descriptions).
  FdTable Clone() const { return *this; }

  // All live open file descriptions (used by exit() to release inodes).
  std::vector<std::shared_ptr<File>> Drain();

  size_t open_count() const;

 private:
  std::vector<std::shared_ptr<File>> slots_;
};

}  // namespace pf::sim

#endif  // SRC_SIM_FDTABLE_H_
