// Deterministic, seedable random number generators.
//
// All randomness in the simulation (ASLR bases, inode recycling order,
// synthetic traces, workload mixes) flows through these so that every test
// and benchmark run is reproducible from a seed.
#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cstdint>

namespace pf::sim {

// SplitMix64: tiny, high-quality 64-bit generator; also used to seed others.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace pf::sim

#endif  // SRC_SIM_RNG_H_
