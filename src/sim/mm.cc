#include "src/sim/mm.h"

#include <cassert>
#include <cstring>

namespace pf::sim {

void Mm::Reset(Addr region_base) {
  maps_.clear();
  region_.assign(kUserRegionSize, 0);
  region_base_ = region_base;
  sp_ = stack_top();
  fp_ = 0;
  arena_next_ = region_base_;
  interp_head_ = kNullAddr;
  frames_.clear();
}

const Mapping* Mm::FindMapping(Addr pc) const {
  for (const Mapping& m : maps_) {
    if (m.Contains(pc)) {
      return &m;
    }
  }
  return nullptr;
}

const Mapping* Mm::FindMappingByPath(const std::string& path_or_name) const {
  for (const Mapping& m : maps_) {
    if (m.path == path_or_name) {
      return &m;
    }
    auto slash = m.path.rfind('/');
    if (slash != std::string::npos && m.path.compare(slash + 1, std::string::npos,
                                                     path_or_name) == 0) {
      return &m;
    }
  }
  return nullptr;
}

bool Mm::CopyFromUser(Addr src, void* dst, uint64_t len) const {
  if (!ContainsUser(src, len)) {
    return false;
  }
  std::memcpy(dst, region_.data() + (src - region_base_), len);
  return true;
}

bool Mm::CopyToUser(Addr dst, const void* src, uint64_t len) {
  if (!ContainsUser(dst, len)) {
    return false;
  }
  std::memcpy(region_.data() + (dst - region_base_), src, len);
  return true;
}

bool Mm::ReadU64(Addr src, uint64_t* out) const { return CopyFromUser(src, out, sizeof(*out)); }

bool Mm::WriteU64(Addr dst, uint64_t value) { return CopyToUser(dst, &value, sizeof(value)); }

void Mm::PushFrame(Addr pc, uint64_t locals, bool scramble_fp) {
  FrameInfo info;
  info.pc = pc;
  info.prev_sp = sp_;
  info.prev_fp = fp_;
  sp_ -= locals;
  sp_ -= kFrameRecordSize;
  assert(sp_ >= region_base_ + kArenaSize && "user stack overflow");
  info.record = sp_;
  // A scrambled saved-FP slot models a binary built with
  // -fomit-frame-pointer: the chain value is garbage outside the region.
  // The outermost frame always stores 0 (the runtime zeroes the frame
  // pointer at process entry), terminating every unwind.
  uint64_t saved_fp = (scramble_fp && fp_ != 0) ? (0x5a5a000000000000ULL ^ pc) : fp_;
  WriteU64(sp_, saved_fp);
  WriteU64(sp_ + 8, pc);
  fp_ = sp_;
  frames_.push_back(info);
}

void Mm::PopFrame() {
  assert(!frames_.empty());
  const FrameInfo& info = frames_.back();
  sp_ = info.prev_sp;
  fp_ = info.prev_fp;
  frames_.pop_back();
}

Addr Mm::ArenaAlloc(uint64_t len) {
  len = (len + 7) & ~7ULL;  // 8-byte alignment
  if (arena_next_ + len > region_base_ + kArenaSize) {
    return kNullAddr;
  }
  Addr out = arena_next_;
  arena_next_ += len;
  return out;
}

void Mm::ArenaRollback(Addr addr, uint64_t len) {
  len = (len + 7) & ~7ULL;
  if (arena_next_ == addr + len) {
    arena_next_ = addr;
  }
}

void Mm::ArenaReset() {
  arena_next_ = region_base_;
  interp_head_ = kNullAddr;
}

}  // namespace pf::sim
