// Authorization hook layer (the LSM analogue).
//
// Every security-sensitive operation produced by a system call — including
// each directory search and symlink traversal during pathname resolution —
// passes through Kernel::Authorize(), which consults the registered
// SecurityModules in order. The Process Firewall registers here (the paper
// builds on LSM because, unlike syscall interposition, it is race-free and
// provides complete mediation of resource accesses).
#ifndef SRC_SIM_LSM_H_
#define SRC_SIM_LSM_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "src/sim/inode.h"
#include "src/sim/syscall_nr.h"
#include "src/sim/types.h"

namespace pf::sim {

struct Task;

// Security-sensitive operations. Names (OpName) are the `-o` operands of the
// pftables rule language (e.g. FILE_OPEN, LNK_FILE_READ).
enum class Op : uint32_t {
  kFileOpen,
  kFileCreate,
  kFileRead,
  kFileWrite,
  kFileExec,
  kFileGetattr,
  kFileSetattr,
  kFileMmap,
  kFileUnlink,
  kDirSearch,
  kDirAddName,
  kDirRemoveName,
  kLnkFileRead,    // reading (following) a symbolic link during resolution
  kSocketBind,
  kSocketConnect,
  kSocketSetattr,
  kSignalDeliver,
  kSyscallBegin,   // fired at system-call entry (the `syscallbegin` chain)
  kFork,
  kCount,  // sentinel
};

inline constexpr size_t kOpCount = static_cast<size_t>(Op::kCount);

std::string_view OpName(Op op);
std::optional<Op> OpFromName(std::string_view name);

// One authorization request ("packet" in Process Firewall terms). Fields are
// populated per operation kind; unset pointer fields are null.
struct AccessRequest {
  Task* task = nullptr;
  Op op = Op::kSyscallBegin;

  // Resource (file/dir/link/socket operations).
  Inode* inode = nullptr;
  FileId id;
  std::string_view name;  // pathname component / path, when available

  // Symlink traversal: the link's target (if it resolves) for
  // owner-comparison rules like R8.
  Inode* link_target = nullptr;

  // Signal delivery.
  SigNum sig = 0;
  Pid sig_sender = kInvalidPid;

  // System call context (always populated: the syscall being executed).
  SyscallNr syscall_nr = SyscallNr::kNull;
  std::array<int64_t, 4> args = {0, 0, 0, 0};
};

// A registered security module. Authorize returns 0 to allow or a negative
// errno to deny. Modules see requests only after DAC has allowed them.
class SecurityModule {
 public:
  virtual ~SecurityModule() = default;

  virtual std::string_view ModuleName() const = 0;
  virtual int64_t Authorize(AccessRequest& req) = 0;

  // Lifecycle notifications used for per-syscall context invalidation and
  // per-task state teardown.
  virtual void OnSyscallEnter(Task& task) { (void)task; }
  virtual void OnSyscallExit(Task& task) { (void)task; }
  virtual void OnTaskExit(Task& task) { (void)task; }
  virtual void OnTaskFork(Task& parent, Task& child) {
    (void)parent;
    (void)child;
  }
  // Fired after execve replaces the task image (the old address space and
  // interpreter state are gone; cached unwind context must be dropped).
  virtual void OnTaskExec(Task& task) { (void)task; }
};

}  // namespace pf::sim

#endif  // SRC_SIM_LSM_H_
