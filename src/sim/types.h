// Basic identifier types shared across the simulated kernel.
#ifndef SRC_SIM_TYPES_H_
#define SRC_SIM_TYPES_H_

#include <cstdint>
#include <string>

namespace pf::sim {

using Uid = uint32_t;
using Gid = uint32_t;
using Pid = int32_t;
using Ino = uint64_t;    // inode number, unique within a superblock
using Dev = uint32_t;    // superblock / device identifier
using Sid = uint32_t;    // security identifier (interned MAC label)
using Addr = uint64_t;   // simulated user-space virtual address
using SigNum = int32_t;  // signal number

inline constexpr Uid kRootUid = 0;
inline constexpr Gid kRootGid = 0;
inline constexpr Sid kInvalidSid = 0;
inline constexpr Ino kInvalidIno = 0;
inline constexpr Pid kInvalidPid = -1;
inline constexpr Addr kNullAddr = 0;

// A (device, inode) pair uniquely identifies a filesystem object system-wide
// for as long as the inode is live. This is the identity that TOCTTOU
// "check"/"use" comparisons (fstat vs. lstat) rely on.
struct FileId {
  Dev dev = 0;
  Ino ino = kInvalidIno;

  bool operator==(const FileId&) const = default;
};

struct FileIdHash {
  size_t operator()(const FileId& id) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(id.dev) << 48) ^ id.ino);
  }
};

}  // namespace pf::sim

#endif  // SRC_SIM_TYPES_H_
