// Signal system calls and delivery.
//
// Delivery is where the Process Firewall mediates: before a handled signal
// is delivered, the PROCESS_SIGNAL_DELIVERY hook fires (paper rules R9-R12
// drop a handled signal that would re-enter a non-reentrant handler). The
// kernel itself happily nests handler invocations — that *is* the
// vulnerability (E5, CVE-2006-5051).

#include "src/sim/sched.h"

namespace pf::sim {

// Offset within the main binary's image representing the handler's code
// (frames pushed during handler execution return here).
inline constexpr uint64_t kSignalHandlerOffset = 0x2000;

int64_t Kernel::SysSigaction(Task& task, SigNum sig, std::function<void(SigNum)> handler) {
  SyscallScope scope(*this, task, SyscallNr::kSigaction, {sig});
  if (scope.denied()) {
    return scope.error();
  }
  if (sig <= 0 || sig > kMaxSig || IsUnblockable(sig)) {
    return SysError(Err::kInval);
  }
  if (handler) {
    task.signals.actions[sig] = SigAction{std::move(handler)};
  } else {
    task.signals.actions.erase(sig);
  }
  return 0;
}

int64_t Kernel::SysSigprocmask(Task& task, bool block, SigNum sig) {
  SyscallScope scope(*this, task, SyscallNr::kSigprocmask, {block ? 1 : 0, sig});
  if (scope.denied()) {
    return scope.error();
  }
  if (sig <= 0 || sig > kMaxSig) {
    return SysError(Err::kInval);
  }
  if (block) {
    task.signals.blocked.insert(sig);
  } else {
    task.signals.blocked.erase(sig);
  }
  return 0;
}

int64_t Kernel::SysKill(Task& task, Pid pid, SigNum sig) {
  SyscallScope scope(*this, task, SyscallNr::kKill, {pid, sig});
  if (scope.denied()) {
    return scope.error();
  }
  if (sig <= 0 || sig > kMaxSig) {
    return SysError(Err::kInval);
  }
  Task* target = sched_ ? sched_->FindTask(pid) : nullptr;
  if (target == nullptr) {
    return SysError(Err::kSrch);
  }
  // kill(2) permission: root, or matching real/effective uid.
  if (!task.cred.IsRoot() && task.cred.euid != target->cred.uid &&
      task.cred.uid != target->cred.uid) {
    return SysError(Err::kPerm);
  }
  PostSignal(*target, sig, task.pid);
  return 0;
}

void Kernel::PostSignal(Task& target, SigNum sig, Pid sender) {
  target.signals.pending.push_back(PendingSignal{sig, sender});
  if (sched_ != nullptr) {
    sched_->NotifySignal(target.pid);
  }
}

int64_t Kernel::SysSigreturn(Task& task) {
  SyscallScope scope(*this, task, SyscallNr::kSigreturn);
  // Fires the syscallbegin chain (rule R12 matches NR_sigreturn); the
  // denial result is ignored — returning from a handler cannot fail.
  return 0;
}

int Kernel::DeliverPendingSignals(Proc& proc) {
  Task& task = proc.task();
  int delivered = 0;
  for (;;) {
    // Find the first deliverable (unblocked) pending signal.
    auto it = task.signals.pending.begin();
    while (it != task.signals.pending.end() && task.signals.IsBlocked(it->sig)) {
      ++it;
    }
    if (it == task.signals.pending.end()) {
      return delivered;
    }
    PendingSignal ps = *it;
    task.signals.pending.erase(it);

    if (ps.sig == kSigKill) {
      SysExit(proc, 128 + kSigKill);  // throws
    }
    auto action = task.signals.actions.find(ps.sig);
    if (action == task.signals.actions.end()) {
      // Default disposition: terminating signals end the process, the rest
      // are ignored.
      if (ps.sig == kSigTerm || ps.sig == kSigInt || ps.sig == kSigHup ||
          ps.sig == kSigAlrm) {
        SysExit(proc, 128 + ps.sig);
      }
      continue;
    }

    // The Process Firewall sees the delivery as a resource access.
    AccessRequest req;
    req.task = &task;
    req.op = Op::kSignalDeliver;
    req.sig = ps.sig;
    req.sig_sender = ps.sender;
    req.syscall_nr = task.syscall_nr;
    req.args = task.syscall_args;
    if (Authorize(req) != 0) {
      continue;  // dropped
    }

    ++task.signals.in_handler_depth;
    const Mapping* exe_map =
        task.exe.empty() ? nullptr : task.mm.FindMappingByPath(task.exe);
    bool pushed = false;
    if (exe_map != nullptr) {
      task.mm.PushFrame(exe_map->base + kSignalHandlerOffset, 0,
                        !exe_map->has_frame_pointers);
      pushed = true;
    }
    // Copy the handler: it may re-register itself via sigaction.
    auto handler = action->second.handler;
    handler(ps.sig);
    SysSigreturn(task);
    if (pushed) {
      task.mm.PopFrame();
    }
    --task.signals.in_handler_depth;
    ++delivered;
  }
}

}  // namespace pf::sim
