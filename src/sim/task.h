// The task (process) structure.
#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/cred.h"
#include "src/sim/fdtable.h"
#include "src/sim/mm.h"
#include "src/sim/signal.h"
#include "src/sim/syscall_nr.h"
#include "src/sim/types.h"

namespace pf::sim {

// Interpreter runtimes the entrypoint context module understands (paper
// Section 4.4 supports Bash, PHP, and Python).
enum class InterpLang : uint32_t {
  kNone = 0,
  kPhp = 1,
  kPython = 2,
  kBash = 3,
};

// Slots for security modules to hang per-task state off the task structure
// (the paper extends struct task_struct with the PF rule-traversal state and
// the STATE dictionary).
inline constexpr size_t kMaxSecuritySlots = 4;

struct Task {
  Pid pid = kInvalidPid;
  Pid ppid = kInvalidPid;
  std::string comm;  // short process name
  std::string exe;   // path of the executed binary

  Cred cred;
  FdTable fds;
  FileId cwd;
  FileMode umask = 022;
  Mm mm;

  std::vector<std::string> argv;
  std::map<std::string, std::string> env;

  SignalState signals;

  // Interpreter script table: script_id -> path. Node records in user memory
  // refer to scripts by id; the kernel reads this table the way it reads
  // comm. Repopulated by the interpreter runtime after execve.
  std::vector<std::string> scripts;
  InterpLang interp_lang = InterpLang::kNone;

  // Current system call (valid while syscall_depth > 0).
  SyscallNr syscall_nr = SyscallNr::kNull;
  std::array<int64_t, 4> syscall_args = {0, 0, 0, 0};
  int syscall_depth = 0;     // >1 inside a signal handler's nested syscalls
  uint64_t syscall_count = 0;

  int exit_code = 0;

  // Opaque per-task state owned by security modules.
  std::array<std::shared_ptr<void>, kMaxSecuritySlots> security;

  // Registers a script path, returning its id.
  uint32_t RegisterScript(const std::string& path) {
    for (uint32_t i = 0; i < scripts.size(); ++i) {
      if (scripts[i] == path) {
        return i;
      }
    }
    scripts.push_back(path);
    return static_cast<uint32_t>(scripts.size() - 1);
  }

  const std::string* ScriptPath(uint32_t id) const {
    return id < scripts.size() ? &scripts[id] : nullptr;
  }

  std::string EnvOr(const std::string& key, const std::string& fallback = "") const {
    auto it = env.find(key);
    return it == env.end() ? fallback : it->second;
  }
};

}  // namespace pf::sim

#endif  // SRC_SIM_TASK_H_
