// Process lifecycle system calls: fork, execve, exit, waitpid, pause.

#include "src/sim/sched.h"

namespace pf::sim {

namespace {
std::string Basename(const std::string& path) {
  auto slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}
}  // namespace

int64_t Kernel::MapImage(Task& task, const std::shared_ptr<Inode>& inode,
                         const std::string& path) {
  if (!inode || !inode->IsRegular() || !inode->binary) {
    return SysError(Err::kInval);
  }
  Mapping m;
  m.path = path;
  m.file = inode->id();
  m.base = AslrMapBase();
  m.size = inode->binary->text_size;
  m.has_eh_info = inode->binary->has_eh_info;
  m.has_frame_pointers = inode->binary->has_frame_pointers;
  task.mm.AddMapping(std::move(m));

  // Map the program interpreter (dynamic linker) alongside, as execve does.
  if (!inode->binary->interp.empty()) {
    auto interp = LookupNoHooks(inode->binary->interp);
    if (interp && interp->binary) {
      Mapping im;
      im.path = inode->binary->interp;
      im.file = interp->id();
      im.base = AslrMapBase();
      im.size = interp->binary->text_size;
      im.has_eh_info = interp->binary->has_eh_info;
      im.has_frame_pointers = interp->binary->has_frame_pointers;
      task.mm.AddMapping(std::move(im));
    }
  }
  return 0;
}

int64_t Kernel::SysFork(Proc& proc, std::function<void(Proc&)> body) {
  Task& parent = proc.task();
  {
    SyscallScope scope(*this, parent, SyscallNr::kFork);
    if (scope.denied()) {
      return scope.error();
    }
    AccessRequest req;
    req.task = &parent;
    req.op = Op::kFork;
    req.syscall_nr = parent.syscall_nr;
    req.args = parent.syscall_args;
    if (int64_t rv = Authorize(req); rv != 0) {
      return rv;
    }
  }

  auto child = std::make_unique<Task>();
  child->pid = AllocPid();
  child->ppid = parent.pid;
  child->comm = parent.comm;
  child->exe = parent.exe;
  child->cred = parent.cred;
  child->fds = parent.fds.Clone();
  child->cwd = parent.cwd;
  child->umask = parent.umask;
  child->mm = parent.mm.Clone();
  child->argv = parent.argv;
  child->env = parent.env;
  // Signal dispositions: the blocked mask is inherited. Handler closures are
  // bound to the parent's Proc, so they are reset in the child (a child that
  // needs handlers re-registers them, as after execve).
  child->signals.blocked = parent.signals.blocked;
  child->scripts = parent.scripts;
  child->interp_lang = parent.interp_lang;

  for (auto& m : modules_) {
    m->OnTaskFork(parent, *child);
  }
  return sched_->SpawnForked(std::move(child), std::move(body));
}

int64_t Kernel::SysWaitpid(Proc& proc, Pid pid, int* status) {
  SyscallScope scope(*this, proc.task(), SyscallNr::kWaitpid, {pid});
  if (scope.denied()) {
    return scope.error();
  }
  for (;;) {
    Pid reaped = kInvalidPid;
    switch (sched_->TryReap(proc.task().pid, pid, status, &reaped)) {
      case Scheduler::ReapResult::kReaped:
        return reaped;
      case Scheduler::ReapResult::kNoChild:
        return SysError(Err::kChild);
      case Scheduler::ReapResult::kStillRunning:
        break;
    }
    sched_->BlockOnChild(proc, pid);
    // Woken either because a child exited (loop re-checks) or because a
    // signal arrived. Only signals that would actually be acted upon
    // interrupt the wait (a default-ignored SIGCHLD from a *different*
    // child must not abort waitpid).
    if (proc.task().signals.WouldInterrupt()) {
      Pid again = kInvalidPid;
      if (sched_->TryReap(proc.task().pid, pid, status, &again) ==
          Scheduler::ReapResult::kReaped) {
        return again;
      }
      return SysError(Err::kIntr);
    }
  }
}

int64_t Kernel::SysExecve(Proc& proc, const std::string& path, std::vector<std::string> argv,
                          std::map<std::string, std::string> env) {
  Task& task = proc.task();
  const ProgMain* entry = nullptr;
  {
    SyscallScope scope(*this, task, SyscallNr::kExecve);
    if (scope.denied()) {
      return scope.error();
    }
    Nameidata nd;
    if (int64_t rv = PathWalk(task, path, kFollowFinal, &nd); rv != 0) {
      return rv;
    }
    auto inode = nd.inode;
    if (!inode->IsRegular() || !inode->binary || inode->binary->entry_key.empty()) {
      return SysError(Err::kNoExec);
    }
    if (!DacPermitted(task.cred, *inode, AccessBit(Access::kExec))) {
      return SysError(Err::kAcces);
    }
    if (!policy_.Check(task.cred.sid, inode->sid, kMacExec)) {
      return SysError(Err::kAcces);
    }
    if (int64_t rv = HookInode(task, Op::kFileExec, *inode, path); rv != 0) {
      return rv;
    }
    entry = FindProgram(inode->binary->entry_key);
    if (entry == nullptr) {
      return SysError(Err::kNoExec);
    }

    // Point of no return: replace the process image.
    if (inode->IsSetuid()) {
      task.cred.euid = inode->uid;
    }
    if (inode->IsSetgid()) {
      task.cred.egid = inode->gid;
    }
    task.exe = path;
    task.comm = argv.empty() ? Basename(path) : Basename(argv[0]);
    task.argv = argv.empty() ? std::vector<std::string>{path} : std::move(argv);
    task.env = std::move(env);
    task.signals.actions.clear();
    task.scripts.clear();
    task.interp_lang = InterpLang::kNone;
    task.mm.Reset(AslrStackBase());
    MapImage(task, inode, path);
    const Mapping* map = task.mm.FindMappingByPath(path);
    if (map != nullptr) {
      task.mm.PushFrame(map->base + kEntryOffset, 0, !map->has_frame_pointers);
    }
    for (auto& m : modules_) {
      m->OnTaskExec(task);
    }
  }
  // Run the new program outside the execve scope (it makes its own calls).
  int code = (*entry)(proc);
  SysExit(proc, code);  // never returns
}

void Kernel::ReleaseTaskResources(Task& task) {
  for (auto& file : task.fds.Drain()) {
    if (file.use_count() == 1 && file->inode) {
      if (file->inode->open_count > 0) {
        --file->inode->open_count;
      }
      if (file->inode->dev != 0) {
        vfs_.Sb(file->inode->dev).MaybeFree(file->inode);
      }
    }
  }
}

void Kernel::SysExit(Proc& proc, int code) {
  Task& task = proc.task();
  {
    SyscallScope scope(*this, task, SyscallNr::kExit, {code});
    // exit cannot be denied.
    task.exit_code = code;
    ReleaseTaskResources(task);
    for (auto& m : modules_) {
      m->OnTaskExit(task);
    }
    if (task.ppid != 1) {
      if (Task* parent = sched_->FindTask(task.ppid); parent != nullptr) {
        PostSignal(*parent, kSigChld, task.pid);
      }
    }
    sched_->OnTaskExited(proc, code);
  }
  throw ProcExitException{code};
}

int64_t Kernel::SysPause(Proc& proc) {
  SyscallScope scope(*this, proc.task(), SyscallNr::kPause);
  if (scope.denied()) {
    return scope.error();
  }
  // A deliverable signal that arrived while we were not looking means pause
  // returns immediately (delivery happens on the syscall return path).
  if (!proc.task().signals.HasDeliverable()) {
    sched_->BlockOnSignal(proc);
  }
  return SysError(Err::kIntr);
}

}  // namespace pf::sim
