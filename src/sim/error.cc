#include "src/sim/error.h"

namespace pf::sim {

std::string_view ErrName(Err e) {
  switch (e) {
    case Err::kNone: return "OK";
    case Err::kPerm: return "EPERM";
    case Err::kNoEnt: return "ENOENT";
    case Err::kSrch: return "ESRCH";
    case Err::kIntr: return "EINTR";
    case Err::kIo: return "EIO";
    case Err::kNoExec: return "ENOEXEC";
    case Err::kBadF: return "EBADF";
    case Err::kChild: return "ECHILD";
    case Err::kAgain: return "EAGAIN";
    case Err::kAcces: return "EACCES";
    case Err::kFault: return "EFAULT";
    case Err::kBusy: return "EBUSY";
    case Err::kExist: return "EEXIST";
    case Err::kXDev: return "EXDEV";
    case Err::kNotDir: return "ENOTDIR";
    case Err::kIsDir: return "EISDIR";
    case Err::kInval: return "EINVAL";
    case Err::kNFile: return "ENFILE";
    case Err::kMFile: return "EMFILE";
    case Err::kTxtBsy: return "ETXTBSY";
    case Err::kNoSpc: return "ENOSPC";
    case Err::kRoFs: return "EROFS";
    case Err::kMLink: return "EMLINK";
    case Err::kNameTooLong: return "ENAMETOOLONG";
    case Err::kNotEmpty: return "ENOTEMPTY";
    case Err::kLoop: return "ELOOP";
    case Err::kNoSys: return "ENOSYS";
    case Err::kNotSock: return "ENOTSOCK";
    case Err::kAddrInUse: return "EADDRINUSE";
    case Err::kConnRefused: return "ECONNREFUSED";
    case Err::kNotConn: return "ENOTCONN";
  }
  return "E???";
}

}  // namespace pf::sim
