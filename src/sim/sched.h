// Cooperative, deterministic process scheduling.
//
// Each simulated process runs its body (a C++ function) on a dedicated OS
// thread, but exactly one thread executes at any time: a baton is handed
// between the *director* (the test / benchmark / example driving the system)
// and the processes. Processes return the baton when they
//
//  * exit,
//  * block (waitpid, pause),
//  * reach a named Checkpoint() that the director armed, or
//  * finish the Nth system call of an armed StepSyscalls().
//
// This gives tests byte-precise control over interleavings — the adversary
// can be scheduled exactly between a victim's "check" and "use" system calls
// to reproduce TOCTTOU and signal races — while unarmed processes run at
// full speed for the benchmarks.
#ifndef SRC_SIM_SCHED_H_
#define SRC_SIM_SCHED_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/kernel.h"
#include "src/sim/task.h"

namespace pf::sim {

// Thrown to unwind a process thread on exit()/execve(); never caught by
// application code.
struct ProcExitException {
  int code = 0;
};

struct SpawnOpts {
  std::string name = "proc";
  Cred cred;
  // Optional binary to map into the new process (as execve would), making
  // its image available for UserFrame call sites. The body still runs
  // instead of the registered entry function.
  std::string exe;
  std::vector<std::string> argv;
  std::map<std::string, std::string> env;
  std::string cwd = "/";
};

class Scheduler;

// Handle through which process bodies issue system calls. Wrappers mirror
// the Kernel's Sys* methods and add the post-syscall processing a real
// kernel performs on the syscall return path: pending-signal delivery and
// preemption (baton hand-off when a stop condition is armed).
class Proc {
 public:
  Proc(Scheduler& sched, Kernel& kernel, std::unique_ptr<Task> task);

  Task& task() { return *task_; }
  Kernel& kernel() { return kernel_; }
  Scheduler& sched() { return sched_; }
  Pid pid() const { return task_->pid; }

  // --- system calls ---
  int64_t Null();
  int64_t Getpid();
  int64_t Umask(FileMode mask);
  int64_t Open(const std::string& path, uint32_t flags, FileMode mode = 0644);
  int64_t Close(int fd);
  int64_t Read(int fd, std::string* out, uint64_t count);
  int64_t Write(int fd, std::string_view data);
  int64_t Stat(const std::string& path, StatBuf* st);
  int64_t Lstat(const std::string& path, StatBuf* st);
  int64_t Fstat(int fd, StatBuf* st);
  int64_t Access(const std::string& path, uint32_t bits);
  int64_t Unlink(const std::string& path);
  int64_t Mkdir(const std::string& path, FileMode mode);
  int64_t Rmdir(const std::string& path);
  int64_t Symlink(const std::string& target, const std::string& linkpath);
  int64_t Link(const std::string& oldpath, const std::string& newpath);
  int64_t Rename(const std::string& oldpath, const std::string& newpath);
  int64_t Chmod(const std::string& path, FileMode mode);
  int64_t Fchmod(int fd, FileMode mode);
  int64_t Chown(const std::string& path, Uid uid, Gid gid);
  int64_t Chdir(const std::string& path);
  int64_t Readdir(const std::string& path, std::vector<std::string>* names);
  int64_t MmapFd(int fd);
  int64_t Socket();
  int64_t Bind(int fd, const std::string& path, FileMode mode = 0755);
  int64_t Listen(int fd);
  int64_t Connect(int fd, const std::string& path);
  int64_t Sigaction(SigNum sig, std::function<void(SigNum)> handler);
  int64_t Sigprocmask(bool block, SigNum sig);
  int64_t Kill(Pid pid, SigNum sig);
  int64_t Fork(std::function<void(Proc&)> body);
  int64_t Waitpid(Pid pid, int* status = nullptr);
  int64_t Execve(const std::string& path, std::vector<std::string> argv,
                 std::map<std::string, std::string> env);
  [[noreturn]] void Exit(int code);
  int64_t Pause();

  // --- user-level helpers (not system calls) ---
  // Named scheduling point; the director can arm a stop on it.
  void Checkpoint(std::string_view label);
  void Setenv(const std::string& key, const std::string& value) { task_->env[key] = value; }
  void Unsetenv(const std::string& key) { task_->env.erase(key); }
  std::string Getenv(const std::string& key) const { return task_->EnvOr(key); }
  bool HasEnv(const std::string& key) const { return task_->env.count(key) != 0; }

 private:
  friend class Scheduler;
  friend class Kernel;

  void AfterSyscall();

  Scheduler& sched_;
  Kernel& kernel_;
  std::unique_ptr<Task> task_;
  void* rec_ = nullptr;  // owning Scheduler::Rec (opaque here)
};

// RAII user-stack frame for a call site at `offset` within a mapped image.
// The image must already be mapped (by Spawn/execve for the main binary and
// its interpreter, by mmap for libraries).
class UserFrame {
 public:
  UserFrame(Proc& proc, const std::string& image, uint64_t offset, uint64_t locals = 32);
  ~UserFrame();

  UserFrame(const UserFrame&) = delete;
  UserFrame& operator=(const UserFrame&) = delete;

  bool valid() const { return mm_ != nullptr; }
  Addr pc() const { return pc_; }

 private:
  Mm* mm_ = nullptr;
  Addr pc_ = 0;
};

// RAII interpreter frame: a node in the interpreter's frame list, written
// into the task's user-memory arena for the kernel-side interpreter
// unwinder to walk (paper Section 4.4).
class InterpFrame {
 public:
  // Node layout in user memory (24 bytes):
  //   [0..8)   next node address (0 terminates)
  //   [8..12)  script id (index into the task's script table)
  //   [12..16) line number
  //   [16..20) language tag (InterpLang)
  //   [20..24) padding
  static constexpr uint64_t kNodeSize = 24;

  InterpFrame(Proc& proc, InterpLang lang, const std::string& script, uint32_t line);
  ~InterpFrame();

  InterpFrame(const InterpFrame&) = delete;
  InterpFrame& operator=(const InterpFrame&) = delete;

  bool valid() const { return node_ != kNullAddr; }
  Addr node() const { return node_; }

 private:
  Proc& proc_;
  Addr node_ = kNullAddr;
  Addr prev_head_ = kNullAddr;
};

class Scheduler {
 public:
  explicit Scheduler(Kernel& kernel);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // --- director API ---
  Pid Spawn(SpawnOpts opts, std::function<void(Proc&)> body);

  // Runs the target (and, while it is blocked, other runnable processes)
  // until it exits. Returns its exit code.
  int RunUntilExit(Pid pid);
  // Runs until the target reaches Checkpoint(label). Returns false if it
  // exited without reaching the label.
  bool RunUntilLabel(Pid pid, std::string_view label);
  // Runs until the target completes n more system calls. Returns false if
  // it exited first.
  bool StepSyscalls(Pid pid, uint64_t n);
  // Runs every process to completion (round-robin at yield points).
  void RunAll();
  // Unblocks a process blocked in Pause().
  void Wake(Pid pid);

  Task* FindTask(Pid pid);
  Proc* FindProc(Pid pid);
  bool Exited(Pid pid) const;
  int ExitCode(Pid pid) const;
  size_t live_procs() const;

  // --- kernel-facing API ---
  Pid SpawnForked(std::unique_ptr<Task> task, std::function<void(Proc&)> body);
  void BlockOnChild(Proc& proc, Pid child);
  void BlockOnSignal(Proc& proc);
  void OnTaskExited(Proc& proc, int code);
  // Wakes the target if it is blocked (a signal arrived).
  void NotifySignal(Pid pid);

  enum class ReapResult { kReaped, kNoChild, kStillRunning };
  ReapResult TryReap(Pid parent, Pid child, int* status, Pid* reaped_pid);

  // --- process-side API ---
  void SyscallExitPoint(Proc& proc);
  void CheckpointPoint(Proc& proc, std::string_view label);

 private:
  struct Rec {
    Pid pid = kInvalidPid;
    Pid ppid = kInvalidPid;
    std::string name;
    std::unique_ptr<Proc> proc;
    std::thread thread;

    enum class State { kReady, kBlocked, kExited } state = State::kReady;
    enum class Block { kNone, kChild, kSignal } block = Block::kNone;
    Pid wait_child = kInvalidPid;  // kInvalidPid = any child

    // Armed stop conditions (director-set while the process is parked).
    bool stop_at_label = false;
    std::string stop_label;
    uint64_t stop_syscalls = 0;  // counts down; 0 = unarmed
    bool hit_stop = false;       // parked because a stop condition fired
    bool kill_requested = false;
    bool wake_pending = false;   // Wake() arrived before the next Pause()

    // Baton.
    bool grant = false;
    bool yielded = true;

    int exit_code = 0;
    bool reaped = false;
  };

  Rec* Find(Pid pid);
  const Rec* Find(Pid pid) const;
  Pid SpawnInternal(std::unique_ptr<Task> task, std::function<void(Proc&)> body);
  void ThreadMain(Rec* rec, std::function<void(Proc&)> body);

  // Grants the baton to `rec` and waits until it yields again.
  void RunProcOnce(Rec* rec);
  // Picks the next process to run while `target` cannot run (round-robin
  // over ready processes); null if none.
  Rec* PickOther(Pid target);
  // Process-side: return the baton and wait for the next grant.
  void YieldToDirector(Rec* rec);
  void AwaitGrant(Rec* rec);
  [[noreturn]] void Deadlock(const std::string& why);

  Kernel& kernel_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Pid, std::unique_ptr<Rec>> recs_;
  std::vector<Pid> order_;  // spawn order, for deterministic round-robin
  size_t rr_cursor_ = 0;
  std::map<Pid, int> exited_codes_;
};

}  // namespace pf::sim

#endif  // SRC_SIM_SCHED_H_
