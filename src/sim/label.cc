#include "src/sim/label.h"

namespace pf::sim {

namespace {
const std::string kInvalidName = "<invalid>";
}  // namespace

LabelRegistry::LabelRegistry() {
  names_.push_back(kInvalidName);  // Sid 0 == kInvalidSid
  unlabeled_ = Intern("unlabeled_t");
}

Sid LabelRegistry::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) {
    return it->second;
  }
  Sid sid = static_cast<Sid>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string(name), sid);
  return sid;
}

std::optional<Sid> LabelRegistry::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const std::string& LabelRegistry::Name(Sid sid) const {
  if (sid >= names_.size()) {
    return kInvalidName;
  }
  return names_[sid];
}

}  // namespace pf::sim
