// Signals: numbers, handler registrations, and per-task signal state.
//
// Signal delivery is a resource access in the paper's taxonomy (Table 2, row
// 4): an adversary "delivers" a resource asynchronously. The kernel invokes
// the authorization hooks (and thus the Process Firewall) before delivering a
// handled signal, which is how rules R9-R12 block non-reentrant signal
// handler races.
#ifndef SRC_SIM_SIGNAL_H_
#define SRC_SIM_SIGNAL_H_

#include <deque>
#include <functional>
#include <map>
#include <set>

#include "src/sim/types.h"

namespace pf::sim {

inline constexpr SigNum kSigHup = 1;
inline constexpr SigNum kSigInt = 2;
inline constexpr SigNum kSigKill = 9;
inline constexpr SigNum kSigUsr1 = 10;
inline constexpr SigNum kSigUsr2 = 12;
inline constexpr SigNum kSigAlrm = 14;
inline constexpr SigNum kSigTerm = 15;
inline constexpr SigNum kSigChld = 17;
inline constexpr SigNum kSigStop = 19;
inline constexpr SigNum kMaxSig = 64;

// SIGKILL/SIGSTOP cannot be caught or blocked.
constexpr bool IsUnblockable(SigNum sig) { return sig == kSigKill || sig == kSigStop; }

// A registered handler. Handlers are user code: they run on the task's
// simulated thread and may issue system calls (which is exactly what makes
// non-reentrant handlers exploitable).
struct SigAction {
  std::function<void(SigNum)> handler;
};

struct PendingSignal {
  SigNum sig = 0;
  Pid sender = kInvalidPid;
};

struct SignalState {
  std::map<SigNum, SigAction> actions;
  std::deque<PendingSignal> pending;
  std::set<SigNum> blocked;
  int in_handler_depth = 0;  // kernel-side nesting view (PF keeps its own via STATE rules)

  bool HasHandler(SigNum sig) const { return actions.count(sig) != 0; }
  bool IsBlocked(SigNum sig) const { return blocked.count(sig) != 0 && !IsUnblockable(sig); }

  // True if some pending signal could be delivered right now.
  bool HasDeliverable() const {
    for (const PendingSignal& ps : pending) {
      if (!IsBlocked(ps.sig)) {
        return true;
      }
    }
    return false;
  }

  // True if a deliverable pending signal would actually interrupt a blocking
  // system call: it has a handler, or its default disposition terminates the
  // process. Default-ignored signals (e.g. SIGCHLD without a handler) do not
  // interrupt waits.
  bool WouldInterrupt() const {
    for (const PendingSignal& ps : pending) {
      if (IsBlocked(ps.sig)) {
        continue;
      }
      if (HasHandler(ps.sig) || ps.sig == kSigKill || ps.sig == kSigTerm ||
          ps.sig == kSigInt || ps.sig == kSigHup || ps.sig == kSigAlrm) {
        return true;
      }
    }
    return false;
  }
};

}  // namespace pf::sim

#endif  // SRC_SIM_SIGNAL_H_
