// Superblocks and the virtual filesystem layer (mount table).
#ifndef SRC_SIM_VFS_H_
#define SRC_SIM_VFS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/inode.h"
#include "src/sim/types.h"

namespace pf::sim {

// One mounted filesystem instance. Owns its inodes and allocates inode
// numbers. Freed inode numbers go on a LIFO free list and are handed out
// again on the next allocation when recycling is enabled — this reproduces
// the inode-number reuse that the "cryogenic sleep" TOCTTOU attack exploits.
// An inode is freed once its link count and open count both reach zero, so a
// held-open file pins its inode number (the defense in Figure 1(a), line 11).
class Superblock {
 public:
  Superblock(Dev dev, std::string fstype);

  Dev dev() const { return dev_; }
  const std::string& fstype() const { return fstype_; }

  // Allocates a fresh inode (recycling a freed number if possible).
  std::shared_ptr<Inode> Alloc(InodeType type, FileMode mode, Uid uid, Gid gid, Sid sid);

  // Looks up a live inode by number; nullptr if not present.
  std::shared_ptr<Inode> Get(Ino ino) const;

  // Drops the inode if it is no longer linked or open, returning its number
  // to the free list. Call after nlink/open_count decrements.
  void MaybeFree(const std::shared_ptr<Inode>& inode);

  void set_recycle_inodes(bool on) { recycle_inodes_ = on; }

  const std::shared_ptr<Inode>& root() const { return root_; }
  size_t live_inodes() const { return inodes_.size(); }
  size_t free_list_size() const { return free_list_.size(); }

 private:
  friend class Vfs;

  Dev dev_;
  std::string fstype_;
  std::unordered_map<Ino, std::shared_ptr<Inode>> inodes_;
  std::vector<Ino> free_list_;
  Ino next_ino_ = 2;  // ino 1 is the root directory
  uint64_t next_generation_ = 1;
  bool recycle_inodes_ = true;
  std::shared_ptr<Inode> root_;
};

// Mount table plus convenience inode accessors. Path *resolution* lives in
// the Kernel (namei.cc) because every component lookup passes through the
// authorization hooks.
class Vfs {
 public:
  Vfs();

  // Creates a new filesystem instance of the given type.
  Superblock& CreateFs(const std::string& fstype, Sid root_sid, FileMode root_mode = 0755);

  // Mounts `sb` over the directory identified by `mountpoint`.
  void Mount(FileId mountpoint, Dev sb);

  // If `dir` is a mountpoint, returns the mounted filesystem's root;
  // otherwise returns `dir`'s inode unchanged.
  std::shared_ptr<Inode> CrossMount(const std::shared_ptr<Inode>& dir) const;

  Superblock& Sb(Dev dev) const { return *supers_.at(dev - 1); }
  std::shared_ptr<Inode> Get(FileId id) const;

  Superblock& root_sb() const { return *supers_.front(); }
  const std::shared_ptr<Inode>& root() const { return root_sb().root(); }

  // Reverse lookup: walks the namespace from / to find one path for an
  // inode. Linear in filesystem size; used only for diagnostics and logs.
  std::string PathOf(FileId id) const;

 private:
  std::vector<std::unique_ptr<Superblock>> supers_;
  std::unordered_map<FileId, Dev, FileIdHash> mounts_;
};

}  // namespace pf::sim

#endif  // SRC_SIM_VFS_H_
