#include "src/sim/lsm.h"

#include <array>

namespace pf::sim {

namespace {
constexpr std::array<std::string_view, kOpCount> kOpNames = {
    "FILE_OPEN",      "FILE_CREATE",  "FILE_READ",     "FILE_WRITE",     "FILE_EXEC",
    "FILE_GETATTR",   "FILE_SETATTR", "FILE_MMAP",     "FILE_UNLINK",    "DIR_SEARCH",
    "DIR_ADD_NAME",   "DIR_REMOVE_NAME", "LNK_FILE_READ", "SOCKET_BIND", "SOCKET_CONNECT",
    "SOCKET_SETATTR", "PROCESS_SIGNAL_DELIVERY", "SYSCALL_BEGIN", "FORK",
};
}  // namespace

std::string_view OpName(Op op) {
  auto i = static_cast<size_t>(op);
  if (i >= kOpNames.size()) {
    return "?";
  }
  return kOpNames[i];
}

std::optional<Op> OpFromName(std::string_view name) {
  // Aliases used in the paper's rule listings.
  if (name == "LINK_READ") {
    return Op::kLnkFileRead;
  }
  if (name == "UNIX_STREAM_SOCKET_CONNECT") {
    return Op::kSocketConnect;
  }
  for (size_t i = 0; i < kOpNames.size(); ++i) {
    if (kOpNames[i] == name) {
      return static_cast<Op>(i);
    }
  }
  return std::nullopt;
}

}  // namespace pf::sim
