// In-memory inode.
#ifndef SRC_SIM_INODE_H_
#define SRC_SIM_INODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/sim/binfmt.h"
#include "src/sim/mode.h"
#include "src/sim/types.h"

namespace pf::sim {

enum class InodeType {
  kRegular,
  kDirectory,
  kSymlink,
  kSocket,
  kFifo,
  kCharDev,
};

std::string_view InodeTypeName(InodeType t);

// A filesystem object. Directory entries map names to inode numbers within
// the same superblock (hard links across devices are rejected with EXDEV).
//
// Lifetime: the owning Superblock keeps a shared_ptr while the inode is
// linked or open. `generation` distinguishes successive inodes that recycle
// the same inode number — the attack surface behind the "cryogenic sleep"
// TOCTTOU variant, which the simulation must reproduce faithfully.
struct Inode {
  Ino ino = kInvalidIno;
  Dev dev = 0;
  InodeType type = InodeType::kRegular;
  FileMode mode = 0644;
  Uid uid = kRootUid;
  Gid gid = kRootGid;
  Sid sid = kInvalidSid;
  uint64_t generation = 0;

  uint32_t nlink = 0;
  uint32_t open_count = 0;  // open file descriptions referencing this inode

  // Logical timestamps (kernel tick values).
  uint64_t atime = 0;
  uint64_t mtime = 0;
  uint64_t ctime = 0;

  // Type-specific payloads.
  std::string data;                    // kRegular: file contents
  std::string symlink_target;          // kSymlink
  std::map<std::string, Ino> entries;  // kDirectory
  std::unique_ptr<BinaryImage> binary; // kRegular: executable image, if any

  // kSocket: bound-and-listening state for UNIX-domain sockets.
  bool socket_listening = false;
  Pid socket_owner = kInvalidPid;

  // kDirectory: the containing directory (".." target). The root of a
  // mounted filesystem points at the mountpoint's parent.
  FileId parent_dir;

  FileId id() const { return FileId{dev, ino}; }
  bool IsDir() const { return type == InodeType::kDirectory; }
  bool IsSymlink() const { return type == InodeType::kSymlink; }
  bool IsRegular() const { return type == InodeType::kRegular; }
  bool IsSocket() const { return type == InodeType::kSocket; }
  bool IsSetuid() const { return (mode & kModeSetuid) != 0; }
  bool IsSetgid() const { return (mode & kModeSetgid) != 0; }
  bool IsSticky() const { return (mode & kModeSticky) != 0; }
};

}  // namespace pf::sim

#endif  // SRC_SIM_INODE_H_
