#include "src/sim/mac_policy.h"

namespace pf::sim {

void MacPolicy::Allow(Sid subject, Sid object, uint32_t perms) {
  rules_[Key{subject, object}] |= perms;
  BumpEpoch();
  std::lock_guard<std::mutex> lock(adversary_mu_);
  adversary_cache_.clear();
}

void MacPolicy::Allow(std::string_view subject, std::string_view object, uint32_t perms) {
  Allow(labels_->Intern(subject), labels_->Intern(object), perms);
}

void MacPolicy::MarkUntrusted(Sid subject) {
  untrusted_.insert(subject);
  BumpEpoch();
  std::lock_guard<std::mutex> lock(adversary_mu_);
  adversary_cache_.clear();
}

void MacPolicy::MarkUntrusted(std::string_view subject) { MarkUntrusted(labels_->Intern(subject)); }

uint32_t MacPolicy::PermsFor(Sid subject, Sid object) const {
  auto it = rules_.find(Key{subject, object});
  return it == rules_.end() ? 0u : it->second;
}

bool MacPolicy::Grants(Sid subject, Sid object, uint32_t perms) const {
  return (PermsFor(subject, object) & perms) == perms;
}

bool MacPolicy::Check(Sid subject, Sid object, uint32_t perms) const {
  if (!enforcing_) {
    return true;
  }
  return Grants(subject, object, perms);
}

namespace {
constexpr uint8_t kCachedWritable = 1u << 0;
constexpr uint8_t kCachedReadable = 1u << 1;
constexpr uint8_t kCachedValid = 1u << 2;
}  // namespace

uint8_t MacPolicy::AdversaryBits(Sid object) const {
  {
    std::lock_guard<std::mutex> lock(adversary_mu_);
    auto it = adversary_cache_.find(object);
    if (it != adversary_cache_.end() && (it->second & kCachedValid)) {
      return it->second;
    }
  }
  // Compute outside the lock: rules_/untrusted_ only mutate on the control
  // plane, and a duplicate computation stores the same bits.
  uint8_t bits = kCachedValid;
  for (Sid adversary : untrusted_) {
    uint32_t perms = PermsFor(adversary, object);
    if (perms & (kMacWrite | kMacCreate)) {
      bits |= kCachedWritable;
    }
    if (perms & kMacRead) {
      bits |= kCachedReadable;
    }
  }
  std::lock_guard<std::mutex> lock(adversary_mu_);
  adversary_cache_[object] = bits;
  return bits;
}

bool MacPolicy::AdversaryWritable(Sid object) const {
  return (AdversaryBits(object) & kCachedWritable) != 0;
}

bool MacPolicy::AdversaryReadable(Sid object) const {
  return (AdversaryBits(object) & kCachedReadable) != 0;
}

bool MacPolicy::IsSyshighSubject(Sid subject) const { return !IsUntrusted(subject); }

bool MacPolicy::IsSyshighObject(Sid object) const { return !AdversaryWritable(object); }

std::vector<Sid> MacPolicy::SyshighObjects() const {
  std::vector<Sid> out;
  for (Sid sid = 1; sid < labels_->size(); ++sid) {
    if (IsSyshighObject(sid)) {
      out.push_back(sid);
    }
  }
  return out;
}

}  // namespace pf::sim
