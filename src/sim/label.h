// MAC label registry: interns SELinux-style type strings ("httpd_t",
// "shadow_t", ...) into dense security identifiers (Sid) for fast matching,
// mirroring the kernel's sidtab. pftables translates label names in rules to
// Sids at install time (paper Section 5.2).
#ifndef SRC_SIM_LABEL_H_
#define SRC_SIM_LABEL_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/sim/types.h"

namespace pf::sim {

class LabelRegistry {
 public:
  LabelRegistry();

  // Returns the Sid for a label, interning it on first use.
  Sid Intern(std::string_view name);

  // Returns the Sid for a label if it has been interned, otherwise nullopt.
  std::optional<Sid> Lookup(std::string_view name) const;

  // Returns the label string for a Sid ("<invalid>" for unknown Sids).
  const std::string& Name(Sid sid) const;

  // Sid that labels objects/subjects with no explicit label.
  Sid unlabeled() const { return unlabeled_; }

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Sid> ids_;
  Sid unlabeled_ = kInvalidSid;
};

}  // namespace pf::sim

#endif  // SRC_SIM_LABEL_H_
