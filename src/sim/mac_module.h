// SecurityModule adapter that enforces the MacPolicy at the hook layer
// (the SELinux-over-LSM analogue). Runs before the Process Firewall.
#ifndef SRC_SIM_MAC_MODULE_H_
#define SRC_SIM_MAC_MODULE_H_

#include "src/sim/lsm.h"
#include "src/sim/mac_policy.h"

namespace pf::sim {

class MacModule : public SecurityModule {
 public:
  explicit MacModule(MacPolicy* policy) : policy_(policy) {}

  std::string_view ModuleName() const override { return "mac"; }
  int64_t Authorize(AccessRequest& req) override;

  // Maps a hook operation to the MAC permission it requires (0 = unchecked).
  static uint32_t PermsFor(Op op);

 private:
  MacPolicy* policy_;
};

}  // namespace pf::sim

#endif  // SRC_SIM_MAC_MODULE_H_
