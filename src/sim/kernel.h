// The simulated kernel: VFS + namei, DAC, MAC, signals, system calls, and
// the authorization hook layer that the Process Firewall plugs into.
//
// All system calls take the calling Task (or its Proc wrapper for calls that
// interact with scheduling) and return int64_t in the Linux convention:
// >= 0 on success, -errno on failure (see src/sim/error.h).
#ifndef SRC_SIM_KERNEL_H_
#define SRC_SIM_KERNEL_H_

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/error.h"
#include "src/sim/label.h"
#include "src/sim/lsm.h"
#include "src/sim/mac_policy.h"
#include "src/sim/rng.h"
#include "src/sim/task.h"
#include "src/sim/vfs.h"

namespace pf::sim {

class Proc;
class Scheduler;

// Entry function of a registered program (what execve() "jumps to").
using ProgMain = std::function<int(Proc&)>;

// stat(2) result.
struct StatBuf {
  Dev dev = 0;
  Ino ino = kInvalidIno;
  InodeType type = InodeType::kRegular;
  FileMode mode = 0;
  Uid uid = 0;
  Gid gid = 0;
  uint64_t size = 0;
  uint32_t nlink = 0;
  Sid sid = kInvalidSid;  // exposed like getxattr(security.selinux)

  FileId id() const { return FileId{dev, ino}; }
  bool IsSymlink() const { return type == InodeType::kSymlink; }
};

// Result of pathname resolution.
struct Nameidata {
  std::shared_ptr<Inode> parent;  // directory containing the final component
  std::shared_ptr<Inode> inode;   // final inode; null when absent (with kWantParent)
  std::string last;               // final component name
};

// PathWalk flags.
enum WalkFlag : uint32_t {
  kFollowFinal = 1u << 0,  // follow a symlink in the final component
  kWantParent = 1u << 1,   // missing final component is not an error
  kNoHooks = 1u << 2,      // setup/diagnostic walks: skip DAC and LSM hooks
};

class Kernel {
 public:
  explicit Kernel(uint64_t seed);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- wiring ---
  Vfs& vfs() { return vfs_; }
  LabelRegistry& labels() { return labels_; }
  MacPolicy& policy() { return policy_; }
  SplitMix64& rng() { return rng_; }
  Scheduler* sched() { return sched_; }
  void set_sched(Scheduler* s) { sched_ = s; }
  uint64_t tick() const { return tick_; }

  // Baseline cost burned at each system-call entry (default 0). Benchmarks
  // set this to a calibrated value so that Process Firewall overhead is
  // measured against a realistic kernel-entry cost rather than the (much
  // cheaper) simulated dispatch; see EXPERIMENTS.md.
  void set_syscall_cost_ns(uint64_t ns) { syscall_cost_ns_ = ns; }
  uint64_t syscall_cost_ns() const { return syscall_cost_ns_; }

  // Registers a security module; returns its per-task state slot index.
  size_t AddModule(std::unique_ptr<SecurityModule> module);
  SecurityModule* FindModule(std::string_view name);

  // Registers a program entry function under a key named by BinaryImage.
  void RegisterProgram(const std::string& key, ProgMain main);
  const ProgMain* FindProgram(const std::string& key) const;

  // --- image construction (mkfs-style; bypasses hooks, used for setup) ---
  std::shared_ptr<Inode> MkDirAt(const std::string& path, FileMode mode, Uid uid, Gid gid,
                                 std::string_view label);
  std::shared_ptr<Inode> MkFileAt(const std::string& path, std::string contents, FileMode mode,
                                  Uid uid, Gid gid, std::string_view label);
  std::shared_ptr<Inode> MkSymlinkAt(const std::string& path, const std::string& target, Uid uid,
                                     Gid gid, std::string_view label);
  // Looks up an inode without hooks (diagnostics, pftables rule compilation).
  std::shared_ptr<Inode> LookupNoHooks(const std::string& path);

  // --- pathname resolution (fires DIR_SEARCH / LNK_FILE_READ hooks) ---
  int64_t PathWalk(Task& task, const std::string& path, uint32_t flags, Nameidata* nd);

  // --- system calls ---
  int64_t SysNull(Task& task);
  int64_t SysGetpid(Task& task);
  int64_t SysUmask(Task& task, FileMode mask);

  int64_t SysOpen(Task& task, const std::string& path, uint32_t flags, FileMode mode = 0644);
  int64_t SysClose(Task& task, int fd);
  int64_t SysRead(Task& task, int fd, std::string* out, uint64_t count);
  int64_t SysWrite(Task& task, int fd, std::string_view data);

  int64_t SysStat(Task& task, const std::string& path, StatBuf* st);
  int64_t SysLstat(Task& task, const std::string& path, StatBuf* st);
  int64_t SysFstat(Task& task, int fd, StatBuf* st);
  int64_t SysAccess(Task& task, const std::string& path, uint32_t bits);

  int64_t SysUnlink(Task& task, const std::string& path);
  int64_t SysMkdir(Task& task, const std::string& path, FileMode mode);
  int64_t SysRmdir(Task& task, const std::string& path);
  int64_t SysSymlink(Task& task, const std::string& target, const std::string& linkpath);
  int64_t SysLink(Task& task, const std::string& oldpath, const std::string& newpath);
  int64_t SysRename(Task& task, const std::string& oldpath, const std::string& newpath);
  int64_t SysChmod(Task& task, const std::string& path, FileMode mode);
  int64_t SysFchmod(Task& task, int fd, FileMode mode);
  int64_t SysChown(Task& task, const std::string& path, Uid uid, Gid gid);
  int64_t SysChdir(Task& task, const std::string& path);
  int64_t SysReaddir(Task& task, const std::string& path, std::vector<std::string>* names);

  // Maps an opened binary/library into the task's address space; returns the
  // (ASLR-randomized) base address.
  int64_t SysMmap(Task& task, int fd);

  int64_t SysSocket(Task& task);
  int64_t SysBind(Task& task, int fd, const std::string& path, FileMode mode = 0755);
  int64_t SysListen(Task& task, int fd);
  int64_t SysConnect(Task& task, int fd, const std::string& path);

  int64_t SysSigaction(Task& task, SigNum sig, std::function<void(SigNum)> handler);
  int64_t SysSigprocmask(Task& task, bool block, SigNum sig);
  int64_t SysKill(Task& task, Pid pid, SigNum sig);
  int64_t SysSigreturn(Task& task);

  int64_t SysFork(Proc& proc, std::function<void(Proc&)> body);
  int64_t SysWaitpid(Proc& proc, Pid pid, int* status);
  int64_t SysExecve(Proc& proc, const std::string& path, std::vector<std::string> argv,
                    std::map<std::string, std::string> env);
  [[noreturn]] void SysExit(Proc& proc, int code);
  int64_t SysPause(Proc& proc);

  // Delivers deliverable pending signals to the task (invoked by the
  // scheduling layer at yield points). Returns number delivered.
  int DeliverPendingSignals(Proc& proc);

  // Queues a signal on the target and wakes it if blocked. Used by kill(2)
  // and by the scheduler for SIGCHLD.
  void PostSignal(Task& target, SigNum sig, Pid sender);

  // Called by the scheduler when a task is being torn down.
  void ReleaseTaskResources(Task& task);

  // Maps an image into the task (used by execve and by Scheduler::Spawn).
  // Returns 0 or -errno.
  int64_t MapImage(Task& task, const std::shared_ptr<Inode>& inode, const std::string& path);

  // Exposed for the scheduler: allocate the next pid / a fresh stack base.
  Pid AllocPid() { return next_pid_++; }
  Addr AslrStackBase();
  Addr AslrMapBase();

  // Statistics.
  uint64_t authorize_calls() const { return authorize_calls_; }
  uint64_t denial_count() const { return denial_count_; }

 private:
  friend class SyscallScope;

  // Runs DAC (inline) + registered modules for one operation.
  int64_t Authorize(AccessRequest& req);

  // Internal walk; `task` may be null only with kNoHooks. `start` overrides
  // the walk origin for relative paths (used for symlink-target peeks).
  int64_t PathWalkInternal(Task* task, std::shared_ptr<Inode> start, const std::string& path,
                           uint32_t flags, Nameidata* nd);

  // Hook helpers: build an AccessRequest from the current syscall context.
  int64_t HookInode(Task& task, Op op, Inode& inode, std::string_view name,
                    Inode* link_target = nullptr);
  int64_t HookSyscallBegin(Task& task);

  // DAC permission check (root bypasses; write also checks read-only fs).
  bool DacPermitted(const Cred& cred, const Inode& inode, uint32_t access_bits) const;
  // Sticky-directory deletion restriction.
  bool DacMayDelete(const Cred& cred, const Inode& dir, const Inode& victim) const;

  int64_t DoUnlinkCommon(Task& task, const std::string& path, bool rmdir);
  void FillStat(const Inode& inode, StatBuf* st) const;
  std::shared_ptr<Inode> CreateAt(Task& task, Nameidata& nd, InodeType type, FileMode mode);
  void DropLink(const std::shared_ptr<Inode>& dir, const std::string& name,
                const std::shared_ptr<Inode>& victim);

  Vfs vfs_;
  LabelRegistry labels_;
  MacPolicy policy_{&labels_};
  SplitMix64 rng_;
  Scheduler* sched_ = nullptr;

  std::vector<std::unique_ptr<SecurityModule>> modules_;
  std::map<std::string, ProgMain> programs_;

  std::unique_ptr<Task> init_task_;  // used for setup-mode walks
  Pid next_pid_ = 2;
  uint64_t tick_ = 0;
  uint64_t syscall_cost_ns_ = 0;
  uint64_t authorize_calls_ = 0;
  uint64_t denial_count_ = 0;
};

// RAII scope that maintains the per-task syscall context, fires the
// SYSCALL_BEGIN hook, and notifies modules on entry/exit.
class SyscallScope {
 public:
  SyscallScope(Kernel& kernel, Task& task, SyscallNr nr,
               std::array<int64_t, 4> args = {0, 0, 0, 0});
  ~SyscallScope();

  SyscallScope(const SyscallScope&) = delete;
  SyscallScope& operator=(const SyscallScope&) = delete;

  bool denied() const { return denial_ != 0; }
  int64_t error() const { return denial_; }

 private:
  Kernel& kernel_;
  Task& task_;
  SyscallNr prev_nr_;
  std::array<int64_t, 4> prev_args_;
  int64_t denial_ = 0;
};

}  // namespace pf::sim

#endif  // SRC_SIM_KERNEL_H_
