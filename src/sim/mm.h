// Simulated user address space: mappings, the user stack, and call frames.
//
// Each task owns an Mm holding:
//  * a mapping table (binary + libraries, ASLR-randomized bases), and
//  * one backed memory region containing a bump-allocated arena (used by
//    interpreter runtimes for their frame lists) and the user stack.
//
// The user stack contains *real frame records* — 16-byte {saved frame
// pointer, return PC} pairs written into the region — and the task carries
// sp/fp "registers". The Process Firewall's entrypoint context module unwinds
// this memory with validated reads, exactly as the kernel patch unwinds real
// user stacks: a malicious process can scribble over its own frame records,
// and the unwinder must fail safe (paper Section 4.4).
//
// Frames pushed from images compiled without frame pointers get a scrambled
// saved-FP slot, breaking the FP chain; images with exception-handler info
// can still be unwound precisely, others only via the prologue-scan
// heuristic. A ground-truth frame list is kept alongside for (a) restoring
// sp/fp on return and (b) modelling DWARF/EH unwind tables, which describe
// exact frame locations but whose *contents* must still be validated against
// (untrusted) user memory.
#ifndef SRC_SIM_MM_H_
#define SRC_SIM_MM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/types.h"

namespace pf::sim {

inline constexpr uint64_t kUserRegionSize = 64 * 1024;
inline constexpr uint64_t kArenaSize = 16 * 1024;
inline constexpr uint64_t kFrameRecordSize = 16;

// One mapped executable image.
struct Mapping {
  std::string path;   // filesystem path it was mapped from
  FileId file;        // identity of the mapped inode
  Addr base = 0;      // ASLR-randomized load base
  uint64_t size = 0;  // text size; PCs fall in [base, base + size)
  bool has_eh_info = true;
  bool has_frame_pointers = true;

  bool Contains(Addr pc) const { return pc >= base && pc < base + size; }
};

// Ground-truth record of one pushed frame (see file comment).
struct FrameInfo {
  Addr pc = 0;           // return PC stored in the record
  Addr record = 0;       // address of the 16-byte frame record
  Addr prev_sp = 0;      // sp to restore on pop
  Addr prev_fp = 0;      // fp to restore on pop
};

class Mm {
 public:
  Mm() = default;

  // Initializes the region at an ASLR-randomized base and resets registers.
  void Reset(Addr region_base);

  // --- mappings ---
  void AddMapping(Mapping m) { maps_.push_back(std::move(m)); }
  const std::vector<Mapping>& mappings() const { return maps_; }
  const Mapping* FindMapping(Addr pc) const;
  // Matches a full path or a basename ("ld-2.15.so").
  const Mapping* FindMappingByPath(const std::string& path_or_name) const;

  // --- validated user-memory access (the copy_from_user analogue) ---
  bool CopyFromUser(Addr src, void* dst, uint64_t len) const;
  bool CopyToUser(Addr dst, const void* src, uint64_t len);
  bool ReadU64(Addr src, uint64_t* out) const;
  bool WriteU64(Addr dst, uint64_t value);

  bool ContainsUser(Addr addr, uint64_t len) const {
    return addr >= region_base_ && len <= kUserRegionSize &&
           addr - region_base_ <= kUserRegionSize - len;
  }

  // --- the user stack ---
  // Pushes a call frame returning to `pc`, reserving `locals` bytes of
  // callee stack space first. `scramble_fp` models a frame emitted without
  // frame-pointer bookkeeping.
  void PushFrame(Addr pc, uint64_t locals, bool scramble_fp);
  void PopFrame();

  Addr sp() const { return sp_; }
  Addr fp() const { return fp_; }
  void set_fp(Addr fp) { fp_ = fp; }  // test hook: corrupt the FP register

  const std::vector<FrameInfo>& frames() const { return frames_; }
  Addr region_base() const { return region_base_; }
  Addr stack_top() const { return region_base_ + kUserRegionSize; }

  // --- arena (interpreter frame lists live here) ---
  // Bump-allocates user memory; returns kNullAddr when exhausted.
  Addr ArenaAlloc(uint64_t len);
  // Returns the allocation if it was the most recent one (LIFO free).
  void ArenaRollback(Addr addr, uint64_t len);
  void ArenaReset();

  Addr interp_head() const { return interp_head_; }
  void set_interp_head(Addr a) { interp_head_ = a; }

  // Deep copy for fork(): same addresses, duplicated backing store.
  Mm Clone() const { return *this; }

 private:
  std::vector<Mapping> maps_;
  std::vector<uint8_t> region_;
  Addr region_base_ = 0;
  Addr sp_ = 0;
  Addr fp_ = 0;
  Addr arena_next_ = 0;
  Addr interp_head_ = kNullAddr;
  std::vector<FrameInfo> frames_;
};

}  // namespace pf::sim

#endif  // SRC_SIM_MM_H_
