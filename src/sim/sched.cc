#include "src/sim/sched.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace pf::sim {

// --- Proc --------------------------------------------------------------------

Proc::Proc(Scheduler& sched, Kernel& kernel, std::unique_ptr<Task> task)
    : sched_(sched), kernel_(kernel), task_(std::move(task)) {}

void Proc::AfterSyscall() {
  kernel_.DeliverPendingSignals(*this);
  sched_.SyscallExitPoint(*this);
}

int64_t Proc::Null() {
  int64_t rv = kernel_.SysNull(*task_);
  AfterSyscall();
  return rv;
}

int64_t Proc::Getpid() {
  int64_t rv = kernel_.SysGetpid(*task_);
  AfterSyscall();
  return rv;
}

int64_t Proc::Umask(FileMode mask) {
  int64_t rv = kernel_.SysUmask(*task_, mask);
  AfterSyscall();
  return rv;
}

int64_t Proc::Open(const std::string& path, uint32_t flags, FileMode mode) {
  int64_t rv = kernel_.SysOpen(*task_, path, flags, mode);
  AfterSyscall();
  return rv;
}

int64_t Proc::Close(int fd) {
  int64_t rv = kernel_.SysClose(*task_, fd);
  AfterSyscall();
  return rv;
}

int64_t Proc::Read(int fd, std::string* out, uint64_t count) {
  int64_t rv = kernel_.SysRead(*task_, fd, out, count);
  AfterSyscall();
  return rv;
}

int64_t Proc::Write(int fd, std::string_view data) {
  int64_t rv = kernel_.SysWrite(*task_, fd, data);
  AfterSyscall();
  return rv;
}

int64_t Proc::Stat(const std::string& path, StatBuf* st) {
  int64_t rv = kernel_.SysStat(*task_, path, st);
  AfterSyscall();
  return rv;
}

int64_t Proc::Lstat(const std::string& path, StatBuf* st) {
  int64_t rv = kernel_.SysLstat(*task_, path, st);
  AfterSyscall();
  return rv;
}

int64_t Proc::Fstat(int fd, StatBuf* st) {
  int64_t rv = kernel_.SysFstat(*task_, fd, st);
  AfterSyscall();
  return rv;
}

int64_t Proc::Access(const std::string& path, uint32_t bits) {
  int64_t rv = kernel_.SysAccess(*task_, path, bits);
  AfterSyscall();
  return rv;
}

int64_t Proc::Unlink(const std::string& path) {
  int64_t rv = kernel_.SysUnlink(*task_, path);
  AfterSyscall();
  return rv;
}

int64_t Proc::Mkdir(const std::string& path, FileMode mode) {
  int64_t rv = kernel_.SysMkdir(*task_, path, mode);
  AfterSyscall();
  return rv;
}

int64_t Proc::Rmdir(const std::string& path) {
  int64_t rv = kernel_.SysRmdir(*task_, path);
  AfterSyscall();
  return rv;
}

int64_t Proc::Symlink(const std::string& target, const std::string& linkpath) {
  int64_t rv = kernel_.SysSymlink(*task_, target, linkpath);
  AfterSyscall();
  return rv;
}

int64_t Proc::Link(const std::string& oldpath, const std::string& newpath) {
  int64_t rv = kernel_.SysLink(*task_, oldpath, newpath);
  AfterSyscall();
  return rv;
}

int64_t Proc::Rename(const std::string& oldpath, const std::string& newpath) {
  int64_t rv = kernel_.SysRename(*task_, oldpath, newpath);
  AfterSyscall();
  return rv;
}

int64_t Proc::Chmod(const std::string& path, FileMode mode) {
  int64_t rv = kernel_.SysChmod(*task_, path, mode);
  AfterSyscall();
  return rv;
}

int64_t Proc::Fchmod(int fd, FileMode mode) {
  int64_t rv = kernel_.SysFchmod(*task_, fd, mode);
  AfterSyscall();
  return rv;
}

int64_t Proc::Chown(const std::string& path, Uid uid, Gid gid) {
  int64_t rv = kernel_.SysChown(*task_, path, uid, gid);
  AfterSyscall();
  return rv;
}

int64_t Proc::Chdir(const std::string& path) {
  int64_t rv = kernel_.SysChdir(*task_, path);
  AfterSyscall();
  return rv;
}

int64_t Proc::Readdir(const std::string& path, std::vector<std::string>* names) {
  int64_t rv = kernel_.SysReaddir(*task_, path, names);
  AfterSyscall();
  return rv;
}

int64_t Proc::MmapFd(int fd) {
  int64_t rv = kernel_.SysMmap(*task_, fd);
  AfterSyscall();
  return rv;
}

int64_t Proc::Socket() {
  int64_t rv = kernel_.SysSocket(*task_);
  AfterSyscall();
  return rv;
}

int64_t Proc::Bind(int fd, const std::string& path, FileMode mode) {
  int64_t rv = kernel_.SysBind(*task_, fd, path, mode);
  AfterSyscall();
  return rv;
}

int64_t Proc::Listen(int fd) {
  int64_t rv = kernel_.SysListen(*task_, fd);
  AfterSyscall();
  return rv;
}

int64_t Proc::Connect(int fd, const std::string& path) {
  int64_t rv = kernel_.SysConnect(*task_, fd, path);
  AfterSyscall();
  return rv;
}

int64_t Proc::Sigaction(SigNum sig, std::function<void(SigNum)> handler) {
  int64_t rv = kernel_.SysSigaction(*task_, sig, std::move(handler));
  AfterSyscall();
  return rv;
}

int64_t Proc::Sigprocmask(bool block, SigNum sig) {
  int64_t rv = kernel_.SysSigprocmask(*task_, block, sig);
  AfterSyscall();
  return rv;
}

int64_t Proc::Kill(Pid pid, SigNum sig) {
  int64_t rv = kernel_.SysKill(*task_, pid, sig);
  AfterSyscall();
  return rv;
}

int64_t Proc::Fork(std::function<void(Proc&)> body) {
  int64_t rv = kernel_.SysFork(*this, std::move(body));
  AfterSyscall();
  return rv;
}

int64_t Proc::Waitpid(Pid pid, int* status) {
  int dummy = 0;
  int64_t rv = kernel_.SysWaitpid(*this, pid, status ? status : &dummy);
  AfterSyscall();
  return rv;
}

int64_t Proc::Execve(const std::string& path, std::vector<std::string> argv,
                     std::map<std::string, std::string> env) {
  int64_t rv = kernel_.SysExecve(*this, path, std::move(argv), std::move(env));
  AfterSyscall();
  return rv;
}

void Proc::Exit(int code) { kernel_.SysExit(*this, code); }

int64_t Proc::Pause() {
  int64_t rv = kernel_.SysPause(*this);
  AfterSyscall();
  return rv;
}

void Proc::Checkpoint(std::string_view label) {
  kernel_.DeliverPendingSignals(*this);
  sched_.CheckpointPoint(*this, label);
}

// --- UserFrame / InterpFrame ---------------------------------------------------

UserFrame::UserFrame(Proc& proc, const std::string& image, uint64_t offset, uint64_t locals) {
  Mm& mm = proc.task().mm;
  const Mapping* map = mm.FindMappingByPath(image);
  if (map == nullptr) {
    std::fprintf(stderr, "UserFrame: image '%s' is not mapped in pid %d (%s)\n", image.c_str(),
                 proc.pid(), proc.task().comm.c_str());
    std::abort();
  }
  pc_ = map->base + offset;
  mm.PushFrame(pc_, locals, /*scramble_fp=*/!map->has_frame_pointers);
  mm_ = &mm;
}

UserFrame::~UserFrame() {
  if (mm_ != nullptr) {
    mm_->PopFrame();
  }
}

InterpFrame::InterpFrame(Proc& proc, InterpLang lang, const std::string& script, uint32_t line)
    : proc_(proc) {
  Mm& mm = proc.task().mm;
  node_ = mm.ArenaAlloc(kNodeSize);
  if (node_ == kNullAddr) {
    return;  // arena exhausted: frame list simply ends here
  }
  prev_head_ = mm.interp_head();
  uint32_t script_id = proc.task().RegisterScript(script);
  uint32_t lang_tag = static_cast<uint32_t>(lang);
  mm.WriteU64(node_, prev_head_);
  mm.CopyToUser(node_ + 8, &script_id, sizeof(script_id));
  mm.CopyToUser(node_ + 12, &line, sizeof(line));
  mm.CopyToUser(node_ + 16, &lang_tag, sizeof(lang_tag));
  mm.set_interp_head(node_);
  proc.task().interp_lang = lang;
}

InterpFrame::~InterpFrame() {
  if (node_ == kNullAddr) {
    return;
  }
  Mm& mm = proc_.task().mm;
  mm.set_interp_head(prev_head_);
  mm.ArenaRollback(node_, kNodeSize);
}

// --- Scheduler -----------------------------------------------------------------

Scheduler::Scheduler(Kernel& kernel) : kernel_(kernel) { kernel_.set_sched(this); }

Scheduler::~Scheduler() {
  // Force-terminate anything still alive, then join.
  for (auto& [pid, rec] : recs_) {
    if (rec->state != Rec::State::kExited) {
      rec->kill_requested = true;
      RunProcOnce(rec.get());
    }
  }
  for (auto& [pid, rec] : recs_) {
    if (rec->thread.joinable()) {
      rec->thread.join();
    }
  }
  kernel_.set_sched(nullptr);
}

Scheduler::Rec* Scheduler::Find(Pid pid) {
  auto it = recs_.find(pid);
  return it == recs_.end() ? nullptr : it->second.get();
}

const Scheduler::Rec* Scheduler::Find(Pid pid) const {
  auto it = recs_.find(pid);
  return it == recs_.end() ? nullptr : it->second.get();
}

Pid Scheduler::Spawn(SpawnOpts opts, std::function<void(Proc&)> body) {
  auto task = std::make_unique<Task>();
  task->pid = kernel_.AllocPid();
  task->ppid = 1;
  task->comm = opts.name;
  task->cred = opts.cred;
  if (task->cred.sid == kInvalidSid) {
    task->cred.sid = kernel_.labels().unlabeled();
  }
  task->argv = opts.argv.empty() ? std::vector<std::string>{opts.name} : std::move(opts.argv);
  task->env = std::move(opts.env);
  task->mm.Reset(kernel_.AslrStackBase());

  auto cwd = kernel_.LookupNoHooks(opts.cwd);
  task->cwd = cwd ? cwd->id() : kernel_.vfs().root()->id();

  if (!opts.exe.empty()) {
    auto inode = kernel_.LookupNoHooks(opts.exe);
    if (inode && inode->binary) {
      kernel_.MapImage(*task, inode, opts.exe);
      task->exe = opts.exe;
      const Mapping* map = task->mm.FindMappingByPath(opts.exe);
      if (map != nullptr) {
        task->mm.PushFrame(map->base + kEntryOffset, 0, !map->has_frame_pointers);
      }
    }
  }
  return SpawnInternal(std::move(task), std::move(body));
}

Pid Scheduler::SpawnForked(std::unique_ptr<Task> task, std::function<void(Proc&)> body) {
  return SpawnInternal(std::move(task), std::move(body));
}

Pid Scheduler::SpawnInternal(std::unique_ptr<Task> task, std::function<void(Proc&)> body) {
  Pid pid = task->pid;
  auto rec = std::make_unique<Rec>();
  Rec* raw = rec.get();
  raw->pid = pid;
  raw->ppid = task->ppid;
  raw->name = task->comm;
  raw->proc = std::make_unique<Proc>(*this, kernel_, std::move(task));
  raw->proc->rec_ = raw;
  {
    std::lock_guard<std::mutex> lk(mu_);
    recs_[pid] = std::move(rec);
    order_.push_back(pid);
  }
  raw->thread = std::thread([this, raw, b = std::move(body)]() mutable {
    ThreadMain(raw, std::move(b));
  });
  return pid;
}

void Scheduler::ThreadMain(Rec* rec, std::function<void(Proc&)> body) {
  AwaitGrant(rec);
  int code = 0;
  if (!rec->kill_requested) {
    try {
      body(*rec->proc);
      // Falling off the end of the body is exit(0).
      try {
        kernel_.SysExit(*rec->proc, 0);
      } catch (const ProcExitException& e) {
        code = e.code;
      }
    } catch (const ProcExitException& e) {
      code = e.code;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "proc %d (%s): uncaught exception: %s\n", rec->pid,
                   rec->name.c_str(), e.what());
      code = -125;
    }
  } else {
    code = -1;
  }
  std::unique_lock<std::mutex> lk(mu_);
  if (exited_codes_.count(rec->pid) == 0) {
    // Abnormal path (kill / uncaught exception): SysExit did not run, so
    // record the exit and wake any waiting parent here.
    exited_codes_[rec->pid] = code;
    auto pit = recs_.find(rec->ppid);
    if (pit != recs_.end()) {
      Rec* parent = pit->second.get();
      if (parent->state == Rec::State::kBlocked && parent->block == Rec::Block::kChild &&
          (parent->wait_child == kInvalidPid || parent->wait_child == rec->pid)) {
        parent->state = Rec::State::kReady;
      }
    }
  }
  rec->exit_code = exited_codes_[rec->pid];
  rec->state = Rec::State::kExited;
  rec->yielded = true;
  cv_.notify_all();
}

void Scheduler::RunProcOnce(Rec* rec) {
  std::unique_lock<std::mutex> lk(mu_);
  rec->hit_stop = false;
  rec->grant = true;
  rec->yielded = false;
  cv_.notify_all();
  cv_.wait(lk, [&] { return rec->yielded; });
}

void Scheduler::YieldToDirector(Rec* rec) {
  std::unique_lock<std::mutex> lk(mu_);
  rec->yielded = true;
  cv_.notify_all();
  cv_.wait(lk, [&] { return rec->grant; });
  rec->grant = false;
  if (rec->kill_requested) {
    lk.unlock();
    throw ProcExitException{-1};
  }
}

void Scheduler::AwaitGrant(Rec* rec) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return rec->grant; });
  rec->grant = false;
}

void Scheduler::Deadlock(const std::string& why) {
  std::ostringstream oss;
  oss << "scheduler deadlock: " << why << " [";
  for (const auto& [pid, rec] : recs_) {
    oss << " " << rec->name << ":" << pid << "="
        << (rec->state == Rec::State::kReady
                ? (rec->hit_stop ? "paused" : "ready")
                : rec->state == Rec::State::kBlocked ? "blocked" : "exited");
  }
  oss << " ]";
  throw std::runtime_error(oss.str());
}

Scheduler::Rec* Scheduler::PickOther(Pid skip) {
  if (order_.empty()) {
    return nullptr;
  }
  for (size_t i = 0; i < order_.size(); ++i) {
    rr_cursor_ = (rr_cursor_ + 1) % order_.size();
    Rec* rec = Find(order_[rr_cursor_]);
    if (rec != nullptr && rec->pid != skip && rec->state == Rec::State::kReady &&
        !rec->hit_stop) {
      return rec;
    }
  }
  return nullptr;
}

int Scheduler::RunUntilExit(Pid pid) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = exited_codes_.find(pid);
      if (it != exited_codes_.end()) {
        Rec* rec = Find(pid);
        if (rec == nullptr || rec->state == Rec::State::kExited) {
          return it->second;
        }
      }
    }
    Rec* rec = Find(pid);
    if (rec == nullptr) {
      throw std::runtime_error("RunUntilExit: unknown pid " + std::to_string(pid));
    }
    Rec* next = rec->state == Rec::State::kReady ? rec : PickOther(pid);
    if (next == nullptr) {
      Deadlock("target " + std::to_string(pid) + " cannot run");
    }
    RunProcOnce(next);
  }
}

bool Scheduler::RunUntilLabel(Pid pid, std::string_view label) {
  Rec* rec = Find(pid);
  if (rec == nullptr) {
    return false;
  }
  rec->stop_at_label = true;
  rec->stop_label = std::string(label);
  for (;;) {
    if (rec->state == Rec::State::kExited) {
      rec->stop_at_label = false;
      return false;
    }
    Rec* next = rec->state == Rec::State::kReady && !rec->hit_stop ? rec : PickOther(pid);
    if (next == nullptr && rec->state == Rec::State::kReady) {
      next = rec;  // resume the paused target itself
    }
    if (next == nullptr) {
      Deadlock("target " + std::to_string(pid) + " blocked before label");
    }
    RunProcOnce(next);
    if (rec->hit_stop) {
      rec->stop_at_label = false;
      return true;
    }
  }
}

bool Scheduler::StepSyscalls(Pid pid, uint64_t n) {
  Rec* rec = Find(pid);
  if (rec == nullptr || n == 0) {
    return false;
  }
  rec->stop_syscalls = n;
  for (;;) {
    if (rec->state == Rec::State::kExited) {
      rec->stop_syscalls = 0;
      return false;
    }
    Rec* next = rec->state == Rec::State::kReady && !rec->hit_stop ? rec : PickOther(pid);
    if (next == nullptr && rec->state == Rec::State::kReady) {
      next = rec;
    }
    if (next == nullptr) {
      Deadlock("target " + std::to_string(pid) + " blocked mid-step");
    }
    RunProcOnce(next);
    if (rec->hit_stop) {
      return true;
    }
  }
}

void Scheduler::RunAll() {
  for (;;) {
    Rec* next = PickOther(kInvalidPid);
    if (next == nullptr) {
      // Resume paused (label-stopped) processes if that is all that is left.
      for (Pid pid : order_) {
        Rec* rec = Find(pid);
        if (rec != nullptr && rec->state == Rec::State::kReady && rec->hit_stop) {
          next = rec;
          break;
        }
      }
    }
    if (next == nullptr) {
      for (const auto& [pid, rec] : recs_) {
        if (rec->state == Rec::State::kBlocked) {
          Deadlock("RunAll: blocked processes remain");
        }
      }
      return;
    }
    RunProcOnce(next);
  }
}

void Scheduler::Wake(Pid pid) {
  std::lock_guard<std::mutex> lk(mu_);
  Rec* rec = Find(pid);
  if (rec == nullptr) {
    return;
  }
  if (rec->state == Rec::State::kBlocked) {
    rec->state = Rec::State::kReady;
  } else {
    // Not blocked yet: remember the wakeup so the next Pause() returns
    // immediately instead of blocking forever.
    rec->wake_pending = true;
  }
}

void Scheduler::NotifySignal(Pid pid) {
  std::lock_guard<std::mutex> lk(mu_);
  Rec* rec = Find(pid);
  if (rec != nullptr && rec->state == Rec::State::kBlocked) {
    rec->state = Rec::State::kReady;
  }
}

Task* Scheduler::FindTask(Pid pid) {
  Rec* rec = Find(pid);
  return rec != nullptr && rec->proc ? &rec->proc->task() : nullptr;
}

Proc* Scheduler::FindProc(Pid pid) {
  Rec* rec = Find(pid);
  return rec != nullptr ? rec->proc.get() : nullptr;
}

bool Scheduler::Exited(Pid pid) const {
  std::lock_guard<std::mutex> lk(mu_);
  return exited_codes_.count(pid) != 0;
}

int Scheduler::ExitCode(Pid pid) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = exited_codes_.find(pid);
  return it == exited_codes_.end() ? -255 : it->second;
}

size_t Scheduler::live_procs() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t n = 0;
  for (const auto& [pid, rec] : recs_) {
    if (rec->state != Rec::State::kExited) {
      ++n;
    }
  }
  return n;
}

void Scheduler::BlockOnChild(Proc& proc, Pid child) {
  Rec* rec = static_cast<Rec*>(proc.rec_);
  rec->state = Rec::State::kBlocked;
  rec->block = Rec::Block::kChild;
  rec->wait_child = child;
  YieldToDirector(rec);
  rec->state = Rec::State::kReady;
  rec->block = Rec::Block::kNone;
  rec->wait_child = kInvalidPid;
}

void Scheduler::BlockOnSignal(Proc& proc) {
  Rec* rec = static_cast<Rec*>(proc.rec_);
  if (rec->wake_pending) {
    rec->wake_pending = false;
    return;
  }
  rec->state = Rec::State::kBlocked;
  rec->block = Rec::Block::kSignal;
  YieldToDirector(rec);
  rec->state = Rec::State::kReady;
  rec->block = Rec::Block::kNone;
}

void Scheduler::OnTaskExited(Proc& proc, int code) {
  std::lock_guard<std::mutex> lk(mu_);
  exited_codes_[proc.pid()] = code;
  Rec* rec = static_cast<Rec*>(proc.rec_);
  rec->exit_code = code;
  // Wake a parent blocked in waitpid.
  Rec* parent = Find(rec->ppid);
  if (parent != nullptr && parent->state == Rec::State::kBlocked &&
      parent->block == Rec::Block::kChild &&
      (parent->wait_child == kInvalidPid || parent->wait_child == rec->pid)) {
    parent->state = Rec::State::kReady;
  }
}

Scheduler::ReapResult Scheduler::TryReap(Pid parent, Pid child, int* status, Pid* reaped_pid) {
  Rec* victim = nullptr;
  bool found_child = false;
  for (Pid pid : order_) {
    Rec* rec = Find(pid);
    if (rec == nullptr || rec->ppid != parent || rec->reaped) {
      continue;
    }
    if (child != kInvalidPid && rec->pid != child) {
      continue;
    }
    found_child = true;
    if (rec->state == Rec::State::kExited) {
      victim = rec;
      break;
    }
  }
  if (victim == nullptr) {
    return found_child ? ReapResult::kStillRunning : ReapResult::kNoChild;
  }
  *status = victim->exit_code;
  *reaped_pid = victim->pid;
  victim->reaped = true;
  if (victim->thread.joinable()) {
    victim->thread.join();
  }
  // Drop the record entirely: long-running fork benchmarks must not
  // accumulate dead tasks.
  Pid vpid = victim->pid;
  {
    std::lock_guard<std::mutex> lk(mu_);
    recs_.erase(vpid);
    for (size_t i = 0; i < order_.size(); ++i) {
      if (order_[i] == vpid) {
        order_.erase(order_.begin() + i);
        if (rr_cursor_ >= order_.size()) {
          rr_cursor_ = 0;
        }
        break;
      }
    }
  }
  return ReapResult::kReaped;
}

void Scheduler::SyscallExitPoint(Proc& proc) {
  Rec* rec = static_cast<Rec*>(proc.rec_);
  if (rec == nullptr) {
    return;
  }
  if (rec->stop_syscalls > 0 && --rec->stop_syscalls == 0) {
    rec->hit_stop = true;
    YieldToDirector(rec);
  }
}

void Scheduler::CheckpointPoint(Proc& proc, std::string_view label) {
  Rec* rec = static_cast<Rec*>(proc.rec_);
  if (rec == nullptr) {
    return;
  }
  if (rec->stop_at_label && rec->stop_label == label) {
    rec->stop_at_label = false;
    rec->hit_stop = true;
    YieldToDirector(rec);
  }
}

}  // namespace pf::sim
