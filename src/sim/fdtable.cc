#include "src/sim/fdtable.h"

namespace pf::sim {

int FdTable::Install(std::shared_ptr<File> file) {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i]) {
      slots_[i] = std::move(file);
      return static_cast<int>(i);
    }
  }
  slots_.push_back(std::move(file));
  return static_cast<int>(slots_.size() - 1);
}

std::shared_ptr<File> FdTable::Get(int fd) const {
  if (fd < 0 || static_cast<size_t>(fd) >= slots_.size()) {
    return nullptr;
  }
  return slots_[fd];
}

std::shared_ptr<File> FdTable::Remove(int fd) {
  if (fd < 0 || static_cast<size_t>(fd) >= slots_.size()) {
    return nullptr;
  }
  auto file = std::move(slots_[fd]);
  slots_[fd] = nullptr;
  return file;
}

std::vector<std::shared_ptr<File>> FdTable::Drain() {
  std::vector<std::shared_ptr<File>> out;
  for (auto& slot : slots_) {
    if (slot) {
      out.push_back(std::move(slot));
      slot = nullptr;
    }
  }
  return out;
}

size_t FdTable::open_count() const {
  size_t n = 0;
  for (const auto& slot : slots_) {
    if (slot) {
      ++n;
    }
  }
  return n;
}

}  // namespace pf::sim
